// Package numa models the hardware substrate the paper's testbed runs on:
// a multi-socket NUMA machine with per-node memory controllers, a shared
// last-level cache per socket, and an inter-socket interconnect (QPI).
//
// The topology is pure data plus a latency model. Contention dynamics
// (memory-controller and link queuing) live in internal/perf; this package
// only describes capacities and base latencies.
package numa

import (
	"fmt"
	"strings"
)

// NodeID identifies a NUMA node. Nodes are numbered 0..N-1.
type NodeID int

// CPUID identifies a physical CPU (core). PCPUs are numbered 0..P-1 across
// the whole machine; the topology maps each to its node.
type CPUID int

// NoNode is the sentinel for "no node assigned".
const NoNode NodeID = -1

// NodeSpec describes one NUMA node.
type NodeSpec struct {
	ID       NodeID
	CPUs     []CPUID // physical CPUs on this node (one socket in Table I)
	MemoryMB int64   // local DRAM capacity
	// IMCBandwidthGBs is the integrated memory controller bandwidth in
	// GB/s. Contention multiplies effective latency as utilization of
	// this bandwidth grows.
	IMCBandwidthGBs float64
	// LLCSizeKB is the size of the last-level cache shared by all CPUs
	// on this node (socket).
	LLCSizeKB int64
}

// LinkSpec describes one interconnect link between two nodes.
type LinkSpec struct {
	A, B NodeID
	// BandwidthGTs is the raw transfer rate in gigatransfers/s (QPI
	// convention); used only as a capacity for the contention model.
	BandwidthGTs float64
}

// Topology is an immutable description of the machine.
type Topology struct {
	name  string
	nodes []NodeSpec
	links []LinkSpec

	cpuNode []NodeID // indexed by CPUID

	clockGHz float64

	// Base (uncontended) latencies in nanoseconds.
	localMemLatencyNS  float64
	remoteMemLatencyNS float64
	llcHitLatencyNS    float64

	// distance[i][j] is a relative access-cost factor (ACPI SLIT style:
	// 10 = local).
	distance [][]int
}

// Config is the input for building a Topology.
type Config struct {
	Name               string
	Nodes              int
	CPUsPerNode        int
	MemoryPerNodeMB    int64
	IMCBandwidthGBs    float64
	LLCSizeKB          int64
	ClockGHz           float64
	LocalMemLatencyNS  float64
	RemoteMemLatencyNS float64
	LLCHitLatencyNS    float64
	LinkBandwidthGTs   float64
	// LinksPerPair is the number of parallel interconnect links between
	// each node pair (Table I lists 2 QPI links).
	LinksPerPair int
}

// Validate reports the first problem with the configuration, or nil.
func (c *Config) Validate() error {
	switch {
	case c.Nodes <= 0:
		return fmt.Errorf("numa: Nodes = %d, need >= 1", c.Nodes)
	case c.CPUsPerNode <= 0:
		return fmt.Errorf("numa: CPUsPerNode = %d, need >= 1", c.CPUsPerNode)
	case c.MemoryPerNodeMB <= 0:
		return fmt.Errorf("numa: MemoryPerNodeMB = %d, need > 0", c.MemoryPerNodeMB)
	case c.ClockGHz <= 0:
		return fmt.Errorf("numa: ClockGHz = %v, need > 0", c.ClockGHz)
	case c.LocalMemLatencyNS <= 0:
		return fmt.Errorf("numa: LocalMemLatencyNS = %v, need > 0", c.LocalMemLatencyNS)
	case c.Nodes > 1 && c.RemoteMemLatencyNS < c.LocalMemLatencyNS:
		return fmt.Errorf("numa: RemoteMemLatencyNS %v < LocalMemLatencyNS %v",
			c.RemoteMemLatencyNS, c.LocalMemLatencyNS)
	case c.LLCSizeKB <= 0:
		return fmt.Errorf("numa: LLCSizeKB = %d, need > 0", c.LLCSizeKB)
	case c.IMCBandwidthGBs <= 0:
		return fmt.Errorf("numa: IMCBandwidthGBs = %v, need > 0", c.IMCBandwidthGBs)
	}
	return nil
}

// New builds a Topology from the configuration.
func New(c Config) (*Topology, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if c.LinksPerPair <= 0 {
		c.LinksPerPair = 1
	}
	t := &Topology{
		name:               c.Name,
		clockGHz:           c.ClockGHz,
		localMemLatencyNS:  c.LocalMemLatencyNS,
		remoteMemLatencyNS: c.RemoteMemLatencyNS,
		llcHitLatencyNS:    c.LLCHitLatencyNS,
	}
	if t.llcHitLatencyNS <= 0 {
		t.llcHitLatencyNS = 15
	}
	cpu := CPUID(0)
	for n := 0; n < c.Nodes; n++ {
		spec := NodeSpec{
			ID:              NodeID(n),
			MemoryMB:        c.MemoryPerNodeMB,
			IMCBandwidthGBs: c.IMCBandwidthGBs,
			LLCSizeKB:       c.LLCSizeKB,
		}
		for i := 0; i < c.CPUsPerNode; i++ {
			spec.CPUs = append(spec.CPUs, cpu)
			t.cpuNode = append(t.cpuNode, NodeID(n))
			cpu++
		}
		t.nodes = append(t.nodes, spec)
	}
	for a := 0; a < c.Nodes; a++ {
		for b := a + 1; b < c.Nodes; b++ {
			for l := 0; l < c.LinksPerPair; l++ {
				t.links = append(t.links, LinkSpec{
					A: NodeID(a), B: NodeID(b), BandwidthGTs: c.LinkBandwidthGTs,
				})
			}
		}
	}
	t.distance = make([][]int, c.Nodes)
	ratio := 10
	if c.Nodes > 1 && c.LocalMemLatencyNS > 0 {
		ratio = int(10*c.RemoteMemLatencyNS/c.LocalMemLatencyNS + 0.5)
	}
	for i := range t.distance {
		t.distance[i] = make([]int, c.Nodes)
		for j := range t.distance[i] {
			if i == j {
				t.distance[i][j] = 10
			} else {
				t.distance[i][j] = ratio
			}
		}
	}
	return t, nil
}

// MustNew is New for known-good configurations (presets, tests).
func MustNew(c Config) *Topology {
	t, err := New(c)
	if err != nil {
		panic(err)
	}
	return t
}

// Name returns the topology's human-readable name.
func (t *Topology) Name() string { return t.name }

// NumNodes returns the node count.
func (t *Topology) NumNodes() int { return len(t.nodes) }

// NumCPUs returns the total physical CPU count.
func (t *Topology) NumCPUs() int { return len(t.cpuNode) }

// Node returns the spec for node id.
func (t *Topology) Node(id NodeID) NodeSpec { return t.nodes[id] }

// Nodes returns all node specs in id order.
func (t *Topology) Nodes() []NodeSpec { return t.nodes }

// Links returns all interconnect links.
func (t *Topology) Links() []LinkSpec { return t.links }

// NodeOf returns the node hosting the given CPU.
func (t *Topology) NodeOf(cpu CPUID) NodeID { return t.cpuNode[cpu] }

// CPUsOf returns the CPUs on node id.
func (t *Topology) CPUsOf(id NodeID) []CPUID { return t.nodes[id].CPUs }

// ClockGHz returns the core clock rate in GHz.
func (t *Topology) ClockGHz() float64 { return t.clockGHz }

// CyclesPerMicrosecond converts the clock rate to cycles/µs.
func (t *Topology) CyclesPerMicrosecond() float64 { return t.clockGHz * 1000 }

// LLCSizeKB returns the shared LLC capacity of the socket hosting node id.
func (t *Topology) LLCSizeKB(id NodeID) int64 { return t.nodes[id].LLCSizeKB }

// Distance returns the SLIT-style distance factor between nodes (10 = local).
func (t *Topology) Distance(a, b NodeID) int { return t.distance[a][b] }

// MemLatencyNS returns the uncontended latency in nanoseconds for a CPU on
// node from accessing memory on node to.
func (t *Topology) MemLatencyNS(from, to NodeID) float64 {
	if from == to {
		return t.localMemLatencyNS
	}
	return t.remoteMemLatencyNS
}

// LLCHitLatencyNS returns the uncontended LLC hit latency.
func (t *Topology) LLCHitLatencyNS() float64 { return t.llcHitLatencyNS }

// MemLatencyCycles converts MemLatencyNS to core cycles.
func (t *Topology) MemLatencyCycles(from, to NodeID) float64 {
	return t.MemLatencyNS(from, to) * t.clockGHz
}

// LLCHitLatencyCycles converts LLCHitLatencyNS to core cycles.
func (t *Topology) LLCHitLatencyCycles() float64 {
	return t.llcHitLatencyNS * t.clockGHz
}

// RemotePenaltyCycles is the extra cycles a remote access costs over local.
func (t *Topology) RemotePenaltyCycles() float64 {
	return (t.remoteMemLatencyNS - t.localMemLatencyNS) * t.clockGHz
}

// TotalMemoryMB returns machine-wide DRAM capacity.
func (t *Topology) TotalMemoryMB() int64 {
	var total int64
	for _, n := range t.nodes {
		total += n.MemoryMB
	}
	return total
}

// String renders a short multi-line description of the machine.
func (t *Topology) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d nodes, %d cpus @ %.2f GHz\n",
		t.name, t.NumNodes(), t.NumCPUs(), t.clockGHz)
	for _, n := range t.nodes {
		fmt.Fprintf(&b, "  node %d: cpus %v, %d MB, LLC %d KB, IMC %.1f GB/s\n",
			n.ID, n.CPUs, n.MemoryMB, n.LLCSizeKB, n.IMCBandwidthGBs)
	}
	fmt.Fprintf(&b, "  links: %d, local/remote latency %.0f/%.0f ns",
		len(t.links), t.localMemLatencyNS, t.remoteMemLatencyNS)
	return b.String()
}
