// Package vprobe is a simulation-based reproduction of "vProbe: Scheduling
// Virtual Machines on NUMA Systems" (Wu, Sun, Zhou, Gan, Jin — IEEE
// CLUSTER 2016).
//
// The paper implements a NUMA-aware VCPU scheduler inside Xen 4.0.1:
// per-VCPU PMU counters feed a classifier (LLC access pressure, memory
// node affinity), a periodical partitioning mechanism reassigns
// memory-intensive VCPUs to nodes every sampling period, and a NUMA-aware
// work-stealing policy keeps idle PCPUs from dragging cache-hungry VCPUs
// across sockets. This package reproduces the entire system — hypervisor,
// machine, workloads, and the five schedulers the paper evaluates — as a
// deterministic discrete-event simulation, because the original artifact
// (a hypervisor patch on a 2-socket Xeon E5620) cannot be run directly.
//
// # Quick start
//
//	sim, err := vprobe.NewSimulator(vprobe.Config{
//		Scheduler: vprobe.SchedulerVProbe,
//		Events: vprobe.EventFunc(func(ev vprobe.Event) {
//			log.Printf("%v %s %s", ev.At, ev.Kind, ev.Detail)
//		}),
//	})
//	vm, err := sim.AddVM(vprobe.VMConfig{Name: "vm1", MemoryMB: 8192, VCPUs: 8})
//	err = vm.RunApp("soplex")
//	report, err := sim.RunContext(ctx, 60*time.Second)
//	fmt.Println(report)
//
// Run is RunContext without cancellation; configuration failures wrap the
// package's sentinel errors (ErrUnknownTopology, ErrUnknownScheduler,
// ErrNoFreeVCPU, ErrAlreadyStarted) for errors.Is. Server workloads start
// with the typed VM.RunMemcached / VM.RunRedis helpers.
//
// # Layout
//
// The public API wraps the internal packages:
//
//   - internal/core — the paper's algorithms (Eqs. 1–3, Algorithm 1 and 2)
//   - internal/xen — the hypervisor model (Credit mechanics, run queues)
//   - internal/sched — the five policies: Credit, vProbe, VCPU-P, LB, BRM
//   - internal/perf — the analytic NUMA performance model
//   - internal/workload — calibrated SPEC/NPB/memcached/Redis profiles
//   - internal/experiments — one runner per paper table/figure
//
// Run `go run ./cmd/vprobe-sim` to regenerate every table and figure of the
// paper's evaluation; see EXPERIMENTS.md for the paper-vs-measured record.
package vprobe

import (
	"context"
	"fmt"
	"time"

	"vprobe/internal/core"
	"vprobe/internal/mem"
	"vprobe/internal/numa"
	"vprobe/internal/sched"
	"vprobe/internal/sim"
	"vprobe/internal/spec"
	"vprobe/internal/workload"
	"vprobe/internal/xen"
)

// newDynamicBounds builds the adaptive-bounds extension.
func newDynamicBounds() *core.DynamicBounds { return core.NewDynamicBounds() }

// Scheduler selects a VCPU scheduling policy (§V-A2 of the paper).
type Scheduler string

// The five schedulers of the paper's evaluation.
const (
	SchedulerCredit Scheduler = "credit"
	SchedulerVProbe Scheduler = "vprobe"
	SchedulerVCPUP  Scheduler = "vcpu-p"
	SchedulerLB     Scheduler = "lb"
	SchedulerBRM    Scheduler = "brm"
)

// Schedulers returns all selectable schedulers in the paper's order.
func Schedulers() []Scheduler {
	out := make([]Scheduler, 0, 5)
	for _, k := range sched.PaperOrder() {
		out = append(out, Scheduler(k))
	}
	return out
}

// Topology names a machine preset.
type Topology string

// Machine presets.
const (
	// TopologyXeonE5620 is the paper's Table I testbed: 2 sockets x 4
	// cores at 2.4 GHz, 12 MB LLC per socket, 12 GB per node.
	TopologyXeonE5620 Topology = "xeon-e5620"
	// TopologyFourNode is a synthetic 4-node machine exercising the
	// N > 2 paths of the paper's algorithms.
	TopologyFourNode Topology = "four-node"
	// TopologyUMA is a single-node machine (degenerate NUMA).
	TopologyUMA Topology = "uma"
)

// Config configures a Simulator.
type Config struct {
	// Scheduler is the policy under test (default SchedulerCredit).
	Scheduler Scheduler
	// Topology is the machine preset (default TopologyXeonE5620).
	Topology Topology
	// Seed makes runs reproducible (default 1).
	Seed uint64
	// SamplePeriod overrides vProbe-family sampling (default 1s).
	SamplePeriod time.Duration
	// DynamicBounds enables the paper's §VI future-work extension:
	// classification bounds adapt to the running pressure distribution.
	DynamicBounds bool
	// PageMigration enables the §VI page-migration extension.
	PageMigration bool
	// Events receives structured scheduling events when non-nil.
	Events EventSink
	// Telemetry, when non-nil, collects metric time series from the run
	// (see NewTelemetry). A collector serves exactly one simulator;
	// reusing one fails with ErrTelemetryAttached.
	Telemetry *Telemetry
	// Spans, when non-nil, records the run's span flight recorder: domain
	// lifecycle spans in virtual time (see NewTracing). A recorder serves
	// exactly one run; reusing one fails with ErrTracingAttached.
	Spans *Tracing
	// Trace receives formatted scheduling trace lines when non-nil.
	//
	// Deprecated: Trace is the old string-based hook; it is served by a
	// formatting adapter over Events (see TraceAdapter). New code should
	// set Events instead.
	Trace func(at time.Duration, line string)
}

// MemPolicy selects how a VM's memory is placed across nodes.
type MemPolicy int

// VM memory placement policies.
const (
	// MemFill packs memory node by node (Xen 4.0.1's default builder).
	MemFill MemPolicy = iota
	// MemStripe spreads memory evenly across nodes (the paper's VM1:
	// "split into two nodes").
	MemStripe
)

// VMConfig describes one virtual machine.
type VMConfig struct {
	Name     string
	MemoryMB int64
	VCPUs    int
	// Memory is the placement policy (default MemFill).
	Memory MemPolicy
	// FillGuestIdle attaches housekeeping bursts to VCPUs without apps
	// (realistic guest behaviour; default false).
	FillGuestIdle bool
}

// Simulator is a configured virtual NUMA machine ready to host VMs. A
// Simulator is single-use: running consumes it, and a second Run fails
// with ErrAlreadyRun.
type Simulator struct {
	h         *xen.Hypervisor
	cfg       Config
	started   bool
	ran       bool
	idleFlags map[*xen.Domain]bool
}

// NewSimulator builds a simulator.
func NewSimulator(cfg Config) (*Simulator, error) {
	if cfg.Scheduler == "" {
		cfg.Scheduler = SchedulerCredit
	}
	if cfg.Topology == "" {
		cfg.Topology = TopologyXeonE5620
	}
	mkTop, ok := numa.Presets[string(cfg.Topology)]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTopology, cfg.Topology)
	}
	pol, err := sched.New(sched.Kind(cfg.Scheduler))
	if err != nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownScheduler, cfg.Scheduler)
	}
	if vp, ok := pol.(*sched.VProbe); ok {
		if cfg.SamplePeriod > 0 {
			vp.SamplePeriod = sim.Duration(cfg.SamplePeriod.Microseconds())
		}
		if cfg.DynamicBounds {
			vp.Dynamic = newDynamicBounds()
		}
	}
	xcfg := xen.DefaultConfig()
	if cfg.Seed != 0 {
		xcfg.Seed = cfg.Seed
	}
	h := xen.New(mkTop(), pol, xcfg)
	if cfg.PageMigration {
		h.Migrator = mem.DefaultMigrator()
	}
	// Compatibility path for the deprecated string Trace hook (see
	// internal/spec/compat.go and DESIGN.md §11): the old callback is
	// served by a formatting adapter over the typed event stream.
	var trace EventSink
	if cfg.Trace != nil { //vet:deprecated compat wiring for the old hook
		trace = TraceAdapter(cfg.Trace) //vet:deprecated compat wiring for the old hook
	}
	h.EventFn = eventFanout(cfg.Events, trace)
	if cfg.Telemetry != nil {
		if err := cfg.Telemetry.attach(); err != nil {
			return nil, err
		}
		xen.AttachTelemetry(h, cfg.Telemetry.sampler)
	}
	if cfg.Spans != nil {
		// Span IDs derive from the effective seed (after the default), so
		// the same Config always records the same IDs.
		tracer, err := cfg.Spans.attach(xcfg.Seed)
		if err != nil {
			return nil, err
		}
		xen.AttachSpans(h, tracer)
	}
	return &Simulator{h: h, cfg: cfg, idleFlags: make(map[*xen.Domain]bool)}, nil
}

// Hypervisor exposes the underlying model for advanced use (inspection,
// custom policies). The returned value is owned by the simulator.
func (s *Simulator) Hypervisor() *xen.Hypervisor { return s.h }

// Tracing returns the run's span recorder, or nil when tracing is off —
// the handle a caller needs when CompileScenario created the recorder
// from a spec's trace field.
func (s *Simulator) Tracing() *Tracing { return s.cfg.Spans }

// VM is a created virtual machine.
type VM struct {
	sim *Simulator
	d   *xen.Domain
	cfg VMConfig
}

// AddVM creates a VM. All VMs must be added before Run; afterwards the
// call fails with ErrAlreadyStarted.
func (s *Simulator) AddVM(cfg VMConfig) (*VM, error) {
	if s.started {
		return nil, fmt.Errorf("%w: AddVM after Run", ErrAlreadyStarted)
	}
	pol := mem.PolicyFill
	if cfg.Memory == MemStripe {
		pol = mem.PolicyStripe
	}
	d, err := s.h.CreateDomain(cfg.Name, cfg.MemoryMB, cfg.VCPUs, pol)
	if err != nil {
		return nil, err
	}
	s.idleFlags[d] = cfg.FillGuestIdle
	return &VM{sim: s, d: d, cfg: cfg}, nil
}

// Domain exposes the underlying domain model.
func (vm *VM) Domain() *xen.Domain { return vm.d }

// RunApp starts one instance of a catalog application (by name: "soplex",
// "lu", "hungry", ...) on the VM's next free VCPU.
func (vm *VM) RunApp(name string) error {
	p, err := workload.ByName(name)
	if err != nil {
		return err
	}
	return vm.RunProfile(p.Clone())
}

// RunProfile starts an instance of an explicit profile on the next free
// VCPU of the VM, failing with ErrNoFreeVCPU when every VCPU is taken.
func (vm *VM) RunProfile(p *workload.Profile) error {
	for i, v := range vm.d.VCPUs {
		if v.App == nil {
			_, err := vm.sim.h.AttachApp(vm.d, i, p)
			return err
		}
	}
	return fmt.Errorf("%w: VM %q", ErrNoFreeVCPU, vm.cfg.Name)
}

// RunMemcached starts a memcached server profile driven at the given client
// concurrency (the swept parameter of the paper's Fig. 6).
func (vm *VM) RunMemcached(concurrency int) error {
	return vm.RunProfile(workload.Memcached(concurrency))
}

// RunRedis starts a Redis server profile loaded with the given client
// connection count (the swept parameter of the paper's Fig. 7).
func (vm *VM) RunRedis(connections int) error {
	return vm.RunProfile(workload.Redis(connections))
}

// RunServer starts a request-driven server profile ("memcached" with a
// concurrency, "redis" with a connection count). The string dispatch lives
// in the spec layer's compatibility path (spec.ServerApp), so this shim is
// a two-line adapter with no logic of its own.
//
// Deprecated: the string dispatch survives for old callers only. Use the
// typed RunMemcached or RunRedis instead.
func (vm *VM) RunServer(kind string, load int) error {
	app, err := spec.ServerApp(kind, load)
	if err != nil {
		return fmt.Errorf("vprobe: %w", err)
	}
	return vm.runSpecApp(app)
}

// fillGuestIdle attaches housekeeping apps to remaining VCPUs.
func (vm *VM) fillGuestIdle() error {
	for i, v := range vm.d.VCPUs {
		if v.App == nil {
			if _, err := vm.sim.h.AttachApp(vm.d, i, workload.GuestIdle()); err != nil {
				return err
			}
		}
	}
	return nil
}

// Run advances the simulation for at most horizon of virtual time,
// stopping earlier if every finite app in every VM completes, and returns
// the report.
func (s *Simulator) Run(horizon time.Duration) (*Report, error) {
	return s.run(context.Background(), horizon, true)
}

// RunContext is Run with cooperative cancellation: the engine polls ctx
// periodically, and a cancelled context aborts the simulation and returns
// an error wrapping the context's (so errors.Is matches context.Canceled
// or context.DeadlineExceeded).
func (s *Simulator) RunContext(ctx context.Context, horizon time.Duration) (*Report, error) {
	return s.run(ctx, horizon, true)
}

// RunWatching is Run but stops as soon as the listed VMs complete (other
// VMs may still hold unfinished work).
func (s *Simulator) RunWatching(horizon time.Duration, vms ...*VM) (*Report, error) {
	return s.RunWatchingContext(context.Background(), horizon, vms...)
}

// RunWatchingContext is RunWatching with the cancellation semantics of
// RunContext.
func (s *Simulator) RunWatchingContext(ctx context.Context, horizon time.Duration, vms ...*VM) (*Report, error) {
	var ds []*xen.Domain
	for _, vm := range vms {
		ds = append(ds, vm.d)
	}
	s.h.WatchDomains(ds...)
	return s.run(ctx, horizon, false)
}

func (s *Simulator) run(ctx context.Context, horizon time.Duration, watchAll bool) (*Report, error) {
	if horizon <= 0 {
		return nil, fmt.Errorf("vprobe: non-positive horizon %v", horizon)
	}
	if s.ran {
		return nil, fmt.Errorf("%w: build a fresh Simulator per run", ErrAlreadyRun)
	}
	// The value is consumed the moment the engine advances — even a
	// cancelled run leaves state a re-run would silently corrupt.
	s.ran = true
	if !s.started {
		for _, d := range s.h.Domains {
			if vmCfgWantsIdle(s, d) {
				vm := &VM{sim: s, d: d}
				if err := vm.fillGuestIdle(); err != nil {
					return nil, err
				}
			}
		}
		if watchAll && len(s.h.Domains) > 0 {
			s.h.WatchDomains(s.h.Domains...)
		}
		if err := s.h.Start(); err != nil {
			return nil, err
		}
		// The sampler starts after the policy tickers (Start armed them):
		// at shared period boundaries the model updates first, so each
		// snapshot sees a fresh census.
		if s.cfg.Telemetry != nil {
			sampler := s.cfg.Telemetry.sampler
			// Size the ring to the horizon so it never wraps and the
			// export covers the whole run.
			sampler.Reserve(int(sim.Duration(horizon.Microseconds())/sampler.Period()) + 2)
			sampler.Start(s.h.Engine)
		}
		s.started = true
	}
	end, err := s.h.RunContext(ctx, sim.Duration(horizon.Microseconds()))
	if err != nil {
		return nil, fmt.Errorf("vprobe: run interrupted at %v: %w",
			time.Duration(end)*time.Microsecond, err)
	}
	// Close still-open spans (live domains, the run span) at the end time
	// so exports never contain open intervals.
	s.h.Spans.Close()
	return buildReport(s, end), nil
}

// vmCfgWantsIdle finds the original VMConfig flag; domains created through
// AddVM with FillGuestIdle get housekeeping on their free VCPUs.
func vmCfgWantsIdle(s *Simulator, d *xen.Domain) bool {
	f, ok := s.idleFlags[d]
	return ok && f
}
