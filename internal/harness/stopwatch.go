package harness

import "time"

// Stopwatch measures real execution time for progress events. It lives in
// package harness deliberately: the determinism contract (DESIGN.md §8)
// bans wall-clock reads everywhere else in the simulation tree, and the
// harness — whose events report execution progress, never results — is the
// one sanctioned home for them. Callers that need a wall duration take a
// Stopwatch instead of importing time.Now themselves.
type Stopwatch struct {
	start time.Time
}

// StartStopwatch begins timing now.
func StartStopwatch() Stopwatch {
	return Stopwatch{start: time.Now()}
}

// Elapsed returns the wall-clock time since the stopwatch started.
func (s Stopwatch) Elapsed() time.Duration {
	return time.Since(s.start)
}
