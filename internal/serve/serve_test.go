package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"vprobe"
	"vprobe/internal/telemetry"
)

// testServer builds a Server plus an httptest front end.
func testServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// scenarioJSON is a small two-VM scenario that finishes fast.
const scenarioJSON = `{
  "scheduler": "vprobe",
  "horizon": "400ms",
  "vms": [
    {"name": "vm0", "memory_mb": 2048, "vcpus": 2,
     "apps": [{"name": "soplex"}, {"name": "mcf"}]},
    {"name": "vm1", "memory_mb": 1024, "vcpus": 1,
     "apps": [{"name": "milc"}]}
  ]
}`

// clusterJSON is a small cluster run.
const clusterJSON = `{
  "hosts": 2, "horizon": "30s", "workers": 1
}`

func postJSON(t *testing.T, url, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, v
}

func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// TestScenarioCacheByteIdentity is the tentpole contract: re-POSTing an
// identical spec answers from the cache with a byte-identical report,
// event stream, and telemetry export.
func TestScenarioCacheByteIdentity(t *testing.T) {
	_, ts := testServer(t, Options{})

	status, first := postJSON(t, ts.URL+"/v1/simulations", scenarioJSON)
	if status != http.StatusOK {
		t.Fatalf("first POST status = %d, body %v", status, first)
	}
	if first["state"] != string(StateDone) {
		t.Fatalf("first run state = %v", first["state"])
	}
	if cached, _ := first["cached"].(bool); cached {
		t.Fatal("first POST claims to be cached")
	}
	id, _ := first["id"].(string)
	_, events1 := getBody(t, fmt.Sprintf("%s/v1/runs/%s/events", ts.URL, id))
	_, tele1 := getBody(t, fmt.Sprintf("%s/v1/runs/%s/telemetry", ts.URL, id))
	_, prom1 := getBody(t, fmt.Sprintf("%s/v1/runs/%s/metrics", ts.URL, id))
	if len(events1) == 0 || len(tele1) == 0 || len(prom1) == 0 {
		t.Fatal("artifacts empty after a completed run")
	}

	// A spec that differs only in formatting and explicit defaults must
	// hit the same cache entry.
	respaced := strings.ReplaceAll(scenarioJSON, "\n", " ")
	respaced = strings.Replace(respaced, `"scheduler": "vprobe",`,
		`"version": "v1", "seed": 1, "scheduler": "vprobe",`, 1)
	status, second := postJSON(t, ts.URL+"/v1/simulations", respaced)
	if status != http.StatusOK {
		t.Fatalf("second POST status = %d", status)
	}
	if cached, _ := second["cached"].(bool); !cached {
		t.Fatal("identical spec missed the cache")
	}
	if second["id"] != first["id"] {
		t.Fatalf("cache returned run %v, want %v", second["id"], first["id"])
	}
	if second["report"] != first["report"] {
		t.Fatal("cached report differs from the original")
	}
	id2, _ := second["id"].(string)
	_, events2 := getBody(t, fmt.Sprintf("%s/v1/runs/%s/events", ts.URL, id2))
	_, tele2 := getBody(t, fmt.Sprintf("%s/v1/runs/%s/telemetry", ts.URL, id2))
	_, prom2 := getBody(t, fmt.Sprintf("%s/v1/runs/%s/metrics", ts.URL, id2))
	if string(events1) != string(events2) {
		t.Error("cached event stream not byte-identical")
	}
	if string(tele1) != string(tele2) {
		t.Error("cached telemetry not byte-identical")
	}
	if string(prom1) != string(prom2) {
		t.Error("cached Prometheus export not byte-identical")
	}
}

// TestClusterWorkersShareCache pins the cache-key contract: the same
// cluster at different worker counts is one cache entry, because results
// are byte-identical at every parallelism.
func TestClusterWorkersShareCache(t *testing.T) {
	_, ts := testServer(t, Options{})

	status, first := postJSON(t, ts.URL+"/v1/clusters", clusterJSON)
	if status != http.StatusOK {
		t.Fatalf("first POST status = %d, body %v", status, first)
	}
	w4 := strings.Replace(clusterJSON, `"workers": 1`, `"workers": 4`, 1)
	status, second := postJSON(t, ts.URL+"/v1/clusters", w4)
	if status != http.StatusOK {
		t.Fatalf("second POST status = %d", status)
	}
	if cached, _ := second["cached"].(bool); !cached {
		t.Fatal("worker count changed the cache key")
	}
	if second["report"] != first["report"] {
		t.Fatal("cached cluster report differs")
	}
}

// TestValidationStatuses exercises the 4xx paths of the POST endpoints.
func TestValidationStatuses(t *testing.T) {
	_, ts := testServer(t, Options{})
	cases := []struct {
		name, url, body string
		want            int
	}{
		{"no vms", "/v1/simulations", `{"vms":[]}`, http.StatusBadRequest},
		{"bad version", "/v1/simulations", `{"version":"v9","vms":[{"name":"a","memory_mb":512,"vcpus":1}]}`, http.StatusBadRequest},
		{"unknown field", "/v1/simulations", `{"vmz":[]}`, http.StatusBadRequest},
		{"unknown scheduler", "/v1/simulations", `{"scheduler":"fifo","vms":[{"name":"a","memory_mb":512,"vcpus":1}]}`, http.StatusBadRequest},
		{"bad mix", "/v1/clusters", `{"mix":"solo"}`, http.StatusBadRequest},
		{"trailing data", "/v1/clusters", `{} {}`, http.StatusBadRequest},
		{"not json", "/v1/clusters", `hosts=2`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		status, body := postJSON(t, ts.URL+tc.url, tc.body)
		if status != tc.want {
			t.Errorf("%s: status = %d, want %d (%v)", tc.name, status, tc.want, body)
		}
	}
}

// TestRunNotFound covers the {id} endpoints' 404s.
func TestRunNotFound(t *testing.T) {
	_, ts := testServer(t, Options{})
	for _, path := range []string{
		"/v1/runs/run-000042",
		"/v1/runs/run-000042/events",
		"/v1/runs/run-000042/telemetry",
		"/v1/runs/run-000042/metrics",
	} {
		status, _ := getBody(t, ts.URL+path)
		if status != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, status)
		}
	}
}

// TestStatusTableAudit mirrors the root package's sentinel audit from the
// HTTP side: every public sentinel maps to a deliberate (non-500) status,
// and unmapped errors fall through to 500.
func TestStatusTableAudit(t *testing.T) {
	sentinels := map[string]error{
		"ErrUnknownTopology":   vprobe.ErrUnknownTopology,
		"ErrUnknownScheduler":  vprobe.ErrUnknownScheduler,
		"ErrNoFreeVCPU":        vprobe.ErrNoFreeVCPU,
		"ErrAlreadyStarted":    vprobe.ErrAlreadyStarted,
		"ErrUnknownPolicy":     vprobe.ErrUnknownPolicy,
		"ErrTelemetryAttached": vprobe.ErrTelemetryAttached,
		"ErrAlreadyRun":        vprobe.ErrAlreadyRun,
		"ErrSpecVersion":       vprobe.ErrSpecVersion,
		"ErrInvalidSpec":       vprobe.ErrInvalidSpec,
	}
	if len(sentinels) != len(statusTable)-2 {
		// statusTable additionally carries the two context lifecycle rows.
		t.Errorf("statusTable has %d rows for %d public sentinels + 2 lifecycle rows",
			len(statusTable), len(sentinels))
	}
	for name, err := range sentinels {
		got := statusFor(fmt.Errorf("wrapped: %w", err))
		if got == http.StatusInternalServerError {
			t.Errorf("%s falls through to 500; add a deliberate row to statusTable", name)
		}
	}
	if got := statusFor(context.DeadlineExceeded); got != http.StatusGatewayTimeout {
		t.Errorf("DeadlineExceeded = %d, want 504", got)
	}
	if got := statusFor(context.Canceled); got != StatusClientClosedRequest {
		t.Errorf("Canceled = %d, want 499", got)
	}
	if got := statusFor(errors.New("novel")); got != http.StatusInternalServerError {
		t.Errorf("unmapped error = %d, want 500", got)
	}
}

// hungryScenario never finishes on its own: a hungry loop with a long
// horizon, so only cancellation or the server timeout can end it.
const hungryScenario = `{
  "horizon": "3600s",
  "vms": [{"name": "vm0", "memory_mb": 1024, "vcpus": 1,
           "apps": [{"name": "hungry"}]}]
}`

// TestCancelFreesSlot is the ISSUE's leak check: with a single worker
// slot, a cancelled request must release the slot (and its goroutines) so
// the next run can proceed.
func TestCancelFreesSlot(t *testing.T) {
	before := runtime.NumGoroutine()
	_, ts := testServer(t, Options{MaxConcurrent: 1})

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		ts.URL+"/v1/simulations", strings.NewReader(hungryScenario))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, rerr := http.DefaultClient.Do(req)
		if rerr == nil {
			resp.Body.Close()
		}
		errc <- rerr
	}()
	// Give the hungry run a moment to occupy the only slot, then abandon
	// the request.
	time.Sleep(100 * time.Millisecond)
	cancel()
	if rerr := <-errc; rerr == nil {
		t.Fatal("cancelled request returned a response")
	}

	// The slot must come free: a short run completes rather than queueing
	// behind a leaked hungry simulation.
	done := make(chan struct{})
	go func() {
		status, body := postJSON(t, ts.URL+"/v1/simulations", scenarioJSON)
		if status != http.StatusOK || body["state"] != string(StateDone) {
			t.Errorf("post-cancel run: status %d, body %v", status, body)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("slot never freed after cancellation")
	}

	// Goroutines must settle back near the baseline — the cancelled
	// simulation may take a moment to observe ctx and unwind.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+5 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Errorf("goroutines: %d before, %d after cancellation", before, runtime.NumGoroutine())
}

// TestRunTimeout pins the server-enforced cap: a hungry run against a
// tiny RunTimeout fails with 504 rather than holding the slot forever.
func TestRunTimeout(t *testing.T) {
	_, ts := testServer(t, Options{RunTimeout: 200 * time.Millisecond})
	status, body := postJSON(t, ts.URL+"/v1/simulations", hungryScenario)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (%v)", status, body)
	}
	if body["state"] != string(StateCancelled) {
		t.Errorf("state = %v, want cancelled", body["state"])
	}
}

// TestAsyncPolling drives the ?async=1 path: 202 with an ID, then poll to
// completion.
func TestAsyncPolling(t *testing.T) {
	_, ts := testServer(t, Options{})
	status, body := postJSON(t, ts.URL+"/v1/simulations?async=1", scenarioJSON)
	if status != http.StatusAccepted {
		t.Fatalf("async POST status = %d", status)
	}
	id, _ := body["id"].(string)
	if id == "" {
		t.Fatalf("async POST returned no id: %v", body)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, b := getBody(t, ts.URL+"/v1/runs/"+id)
		if st != http.StatusOK {
			t.Fatalf("poll status = %d", st)
		}
		var v map[string]any
		if err := json.Unmarshal(b, &v); err != nil {
			t.Fatal(err)
		}
		if State(v["state"].(string)).Terminal() {
			if v["state"] != string(StateDone) {
				t.Fatalf("async run ended %v: %v", v["state"], v["error"])
			}
			if v["report"] == "" {
				t.Fatal("async run finished without a report")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("async run never finished")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestCancelEndpoint cancels an async run via DELETE.
func TestCancelEndpoint(t *testing.T) {
	_, ts := testServer(t, Options{})
	status, body := postJSON(t, ts.URL+"/v1/simulations?async=1", hungryScenario)
	if status != http.StatusAccepted {
		t.Fatalf("async POST status = %d", status)
	}
	id, _ := body["id"].(string)

	// Wait until it actually starts before cancelling.
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, b := getBody(t, ts.URL+"/v1/runs/"+id)
		if strings.Contains(string(b), string(StateRunning)) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("async run never started")
		}
		time.Sleep(10 * time.Millisecond)
	}
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/runs/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE status = %d", resp.StatusCode)
	}
	for {
		_, b := getBody(t, ts.URL+"/v1/runs/"+id)
		var v map[string]any
		if err := json.Unmarshal(b, &v); err != nil {
			t.Fatal(err)
		}
		if State(v["state"].(string)).Terminal() {
			if v["state"] != string(StateCancelled) {
				t.Fatalf("cancelled run ended %v", v["state"])
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("run never observed the cancellation")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestEventsFollowLiveRun asserts the JSONL stream follows an in-flight
// run and terminates when the run does.
func TestEventsFollowLiveRun(t *testing.T) {
	_, ts := testServer(t, Options{})
	status, body := postJSON(t, ts.URL+"/v1/simulations?async=1", scenarioJSON)
	if status != http.StatusAccepted {
		t.Fatalf("async POST status = %d", status)
	}
	id, _ := body["id"].(string)
	st, stream := getBody(t, fmt.Sprintf("%s/v1/runs/%s/events", ts.URL, id))
	if st != http.StatusOK {
		t.Fatalf("events status = %d", st)
	}
	lines := strings.Split(strings.TrimSpace(string(stream)), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("event stream empty")
	}
	for i, ln := range lines {
		var ev jsonEvent
		if err := json.Unmarshal([]byte(ln), &ev); err != nil {
			t.Fatalf("line %d is not a jsonEvent: %v", i, err)
		}
		if ev.Kind == "" {
			t.Fatalf("line %d has no kind: %s", i, ln)
		}
	}
}

// TestCapacity runs the what-if endpoint on a small fleet.
func TestCapacity(t *testing.T) {
	_, ts := testServer(t, Options{})
	st, b := getBody(t, ts.URL+"/v1/capacity?hosts=2&horizon=30s&rate=0.1&factor=2&workers=1")
	if st != http.StatusOK {
		t.Fatalf("capacity status = %d: %s", st, b)
	}
	var v struct {
		Factor   float64 `json:"factor"`
		Absorbs  bool    `json:"absorbs"`
		Baseline struct {
			Rate   float64 `json:"arrivals_per_second"`
			RunID  string  `json:"run_id"`
			Cached bool    `json:"cached"`
		} `json:"baseline"`
		Scaled struct {
			Rate  float64 `json:"arrivals_per_second"`
			RunID string  `json:"run_id"`
		} `json:"scaled"`
	}
	if err := json.Unmarshal(b, &v); err != nil {
		t.Fatal(err)
	}
	if v.Factor != 2 || v.Baseline.Rate != 0.1 || v.Scaled.Rate != 0.2 {
		t.Fatalf("capacity echoed wrong knobs: %+v", v)
	}
	if v.Baseline.RunID == "" || v.Scaled.RunID == "" {
		t.Fatal("capacity legs carry no run IDs")
	}

	// A repeat of the same question must be answered entirely from cache.
	st, b2 := getBody(t, ts.URL+"/v1/capacity?hosts=2&horizon=30s&rate=0.1&factor=2&workers=1")
	if st != http.StatusOK {
		t.Fatalf("repeat capacity status = %d", st)
	}
	if !strings.Contains(string(b2), `"cached": true`) {
		t.Error("repeat capacity query did not hit the cache")
	}

	// Bad knobs are 400s.
	for _, q := range []string{"factor=0", "rate=lots", "horizon=later", "hosts=two"} {
		st, _ := getBody(t, ts.URL+"/v1/capacity?"+q)
		if st != http.StatusBadRequest {
			t.Errorf("capacity?%s = %d, want 400", q, st)
		}
	}
}

// TestMetricsEndpoint checks /metrics is valid Prometheus exposition and
// carries the serve counters.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := testServer(t, Options{})
	if st, _ := postJSON(t, ts.URL+"/v1/simulations", scenarioJSON); st != http.StatusOK {
		t.Fatalf("seed POST status = %d", st)
	}
	postJSON(t, ts.URL+"/v1/simulations", scenarioJSON) // cache hit

	st, body := getBody(t, ts.URL+"/metrics")
	if st != http.StatusOK {
		t.Fatalf("/metrics status = %d", st)
	}
	series, _, err := telemetry.ValidateExposition(body)
	if err != nil {
		t.Fatalf("/metrics is not valid exposition: %v", err)
	}
	if series == 0 {
		t.Fatal("/metrics exposed no series")
	}
	for _, want := range []string{
		`vprobe_serve_requests_total{endpoint="simulations"} 2`,
		`vprobe_serve_runs_total{state="done"} 1`,
		"vprobe_serve_cache_hits_total 1",
		"vprobe_serve_cache_misses_total 1",
		"vprobe_serve_runs_active 0",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestHealthz pins the liveness probe.
func TestHealthz(t *testing.T) {
	_, ts := testServer(t, Options{})
	st, b := getBody(t, ts.URL+"/healthz")
	if st != http.StatusOK || !strings.Contains(string(b), "true") {
		t.Fatalf("healthz = %d %s", st, b)
	}
}
