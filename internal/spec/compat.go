// Compatibility path for the deprecated string-dispatched pieces of the
// public API. The old surface survives only as thin adapters onto spec
// types, so there is exactly one audited dispatch table and the deprecated
// entry points cost nothing to delete when their grace period ends (both
// are marked for removal in DESIGN.md §11):
//
//   - vprobe.VM.RunServer(kind, load) delegates its string dispatch to
//     ServerApp below.
//   - vprobe.Config.Trace is served by a formatting adapter over the typed
//     Events sink (vprobe.TraceAdapter); specs never carry it — a trace
//     callback cannot cross a process boundary, which is the point of this
//     package.
//
// The vprobe-vet `deprecated` analyzer keeps the rest of the repository
// off both: any production use outside the shims themselves fails lint.

package spec

import "fmt"

// ServerApp converts the deprecated (kind, load) string form of a server
// workload into its typed AppV1. It is the single surviving home of the
// old RunServer dispatch table; unknown kinds wrap ErrInvalid.
func ServerApp(kind string, load int) (AppV1, error) {
	switch kind {
	case "memcached", "redis":
		app := AppV1{Server: kind, Load: load}
		if err := app.validate("server"); err != nil {
			return AppV1{}, err
		}
		return app, nil
	default:
		return AppV1{}, fmt.Errorf("%w: unknown server kind %q (have memcached, redis)", ErrInvalid, kind)
	}
}
