package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Fatalf("Mean = %v, want 5", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if s.Sum() != 40 {
		t.Fatalf("Sum = %v", s.Sum())
	}
	// Sample variance of this classic set is 32/7.
	if math.Abs(s.Variance()-32.0/7.0) > 1e-12 {
		t.Fatalf("Variance = %v, want %v", s.Variance(), 32.0/7.0)
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Variance() != 0 || s.Stddev() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty Summary should report zeros")
	}
}

func TestSummarySingle(t *testing.T) {
	var s Summary
	s.Add(-3)
	if s.Variance() != 0 {
		t.Fatalf("single-sample variance = %v", s.Variance())
	}
	if s.Min() != -3 || s.Max() != -3 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
}

func TestSummaryMatchesDirectComputation(t *testing.T) {
	check := func(xs []float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e9 {
				return true // skip pathological inputs
			}
		}
		if len(xs) < 2 {
			return true
		}
		var s Summary
		for _, x := range xs {
			s.Add(x)
		}
		mean := Mean(xs)
		var m2 float64
		for _, x := range xs {
			m2 += (x - mean) * (x - mean)
		}
		v := m2 / float64(len(xs)-1)
		scale := math.Max(1, math.Abs(v))
		return math.Abs(s.Mean()-mean) < 1e-6*math.Max(1, math.Abs(mean)) &&
			math.Abs(s.Variance()-v) < 1e-6*scale
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.75, 4},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); got != c.want {
			t.Fatalf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Interpolation between samples.
	if got := Quantile([]float64{0, 10}, 0.3); math.Abs(got-3) > 1e-12 {
		t.Fatalf("interpolated quantile = %v, want 3", got)
	}
	// Input must not be mutated.
	orig := []float64{5, 1, 3}
	Quantile(orig, 0.5)
	if orig[0] != 5 || orig[1] != 1 || orig[2] != 3 {
		t.Fatal("Quantile mutated its input")
	}
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile should be 0")
	}
}

func TestMeanGeoMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("Mean wrong")
	}
	if g := GeoMean([]float64{1, 100}); math.Abs(g-10) > 1e-9 {
		t.Fatalf("GeoMean = %v, want 10", g)
	}
	if GeoMean([]float64{1, 0}) != 0 {
		t.Fatal("GeoMean with zero should be 0")
	}
	if GeoMean(nil) != 0 {
		t.Fatal("GeoMean(nil) != 0")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 10) != 5 || Clamp(-1, 0, 10) != 0 || Clamp(11, 0, 10) != 10 {
		t.Fatal("Clamp wrong")
	}
}
