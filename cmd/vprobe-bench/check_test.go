package main

import (
	"reflect"
	"strings"
	"testing"
)

func snap(label string, benches map[string]Metrics) Snapshot {
	return Snapshot{Label: label, GoVersion: "go1.22", Benchmarks: benches}
}

func TestRunCheckClean(t *testing.T) {
	base := snap("baseline", map[string]Metrics{
		"BenchmarkHot":  {NsPerOp: 100, AllocsPerOp: 0},
		"BenchmarkWarm": {NsPerOp: 200, AllocsPerOp: 3},
	})
	fresh := snap("", map[string]Metrics{
		"BenchmarkHot":  {NsPerOp: 120, AllocsPerOp: 0}, // +20%, inside tolerance
		"BenchmarkWarm": {NsPerOp: 150, AllocsPerOp: 3}, // faster is always fine
	})
	if code := runCheck([]Snapshot{base}, fresh, "BENCH.json"); code != 0 {
		t.Errorf("exit = %d, want 0", code)
	}
}

func TestRunCheckNsRegression(t *testing.T) {
	base := snap("baseline", map[string]Metrics{"BenchmarkHot": {NsPerOp: 100}})
	fresh := snap("", map[string]Metrics{"BenchmarkHot": {NsPerOp: 126}}) // just past 1.25x
	if code := runCheck([]Snapshot{base}, fresh, "BENCH.json"); code != 1 {
		t.Errorf("exit = %d, want 1 for a >25%% ns/op regression", code)
	}
}

func TestRunCheckAllocRegression(t *testing.T) {
	base := snap("baseline", map[string]Metrics{"BenchmarkHot": {NsPerOp: 100, AllocsPerOp: 0}})
	fresh := snap("", map[string]Metrics{"BenchmarkHot": {NsPerOp: 100, AllocsPerOp: 1}})
	if code := runCheck([]Snapshot{base}, fresh, "BENCH.json"); code != 1 {
		t.Errorf("exit = %d, want 1 when a zero-alloc baseline gains allocs", code)
	}
}

func TestRunCheckAllocGrowthOnNonZeroBaseline(t *testing.T) {
	// Only the zero-alloc contract is enforced: a 3-alloc benchmark drifting
	// to 4 is ns/op-visible but not an alloc failure.
	base := snap("baseline", map[string]Metrics{"BenchmarkWarm": {NsPerOp: 100, AllocsPerOp: 3}})
	fresh := snap("", map[string]Metrics{"BenchmarkWarm": {NsPerOp: 100, AllocsPerOp: 4}})
	if code := runCheck([]Snapshot{base}, fresh, "BENCH.json"); code != 0 {
		t.Errorf("exit = %d, want 0: alloc growth on a non-zero baseline is not enforced", code)
	}
}

func TestRunCheckComparesLastSnapshot(t *testing.T) {
	older := snap("older", map[string]Metrics{"BenchmarkHot": {NsPerOp: 50}})
	newer := snap("newer", map[string]Metrics{"BenchmarkHot": {NsPerOp: 100}})
	fresh := snap("", map[string]Metrics{"BenchmarkHot": {NsPerOp: 110}})
	// 110 vs the last entry (100) is fine; vs the first (50) it would fail.
	if code := runCheck([]Snapshot{older, newer}, fresh, "BENCH.json"); code != 0 {
		t.Errorf("exit = %d, want 0: -check compares against the last entry", code)
	}
}

func TestRunCheckNewBenchmarkAndEmptyHistory(t *testing.T) {
	fresh := snap("", map[string]Metrics{"BenchmarkNew": {NsPerOp: 10}})
	if code := runCheck(nil, fresh, "BENCH.json"); code != 2 {
		t.Errorf("exit = %d, want 2 with no committed snapshot", code)
	}
	base := snap("baseline", map[string]Metrics{"BenchmarkOld": {NsPerOp: 10}})
	if code := runCheck([]Snapshot{base}, fresh, "BENCH.json"); code != 0 {
		t.Errorf("exit = %d, want 0: a benchmark without a baseline is noted, not failed", code)
	}
}

func TestParseBenchmarksAggregatesRepetitions(t *testing.T) {
	// -count=3 output: min ns/op wins (noise is one-sided), max allocs/op
	// wins (one clean repetition must not hide an allocating one).
	out := `BenchmarkHot-8   100   540.0 ns/op   0 B/op   0 allocs/op
BenchmarkHot-8   100   410.0 ns/op   16 B/op   1 allocs/op
BenchmarkHot-8   100   480.0 ns/op   0 B/op   0 allocs/op
BenchmarkCold 1000 52000 ns/op
PASS`
	got := map[string]Metrics{}
	if err := parseBenchmarks(strings.NewReader(out), got); err != nil {
		t.Fatal(err)
	}
	want := map[string]Metrics{
		"BenchmarkHot":  {NsPerOp: 410, BytesPerOp: 16, AllocsPerOp: 1},
		"BenchmarkCold": {NsPerOp: 52000},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("parsed %+v, want %+v", got, want)
	}
}

func TestBenchLineParsing(t *testing.T) {
	cases := []struct {
		line string
		name string
		ns   string
	}{
		{"BenchmarkQuantumHotPath-8   7270830   345.8 ns/op   0 B/op   0 allocs/op",
			"BenchmarkQuantumHotPath", "345.8"},
		{"BenchmarkPartition 1000 52000 ns/op", "BenchmarkPartition", "52000"},
		{"ok  \tvprobe\t2.1s", "", ""},
		{"PASS", "", ""},
	}
	for _, c := range cases {
		m := benchLine.FindStringSubmatch(c.line)
		if c.name == "" {
			if m != nil {
				t.Errorf("%q unexpectedly parsed: %v", c.line, m)
			}
			continue
		}
		if m == nil {
			t.Errorf("%q did not parse", c.line)
			continue
		}
		if m[1] != c.name || m[2] != c.ns {
			t.Errorf("%q parsed as (%q, %q), want (%q, %q)", c.line, m[1], m[2], c.name, c.ns)
		}
	}
}
