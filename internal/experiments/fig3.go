package experiments

import (
	"vprobe/internal/mem"
	"vprobe/internal/metrics"
	"vprobe/internal/numa"
	"vprobe/internal/sched"
	"vprobe/internal/workload"
	"vprobe/internal/xen"
)

// runFig3 reproduces the §IV-A calibration experiment: one VM with 4 GB of
// node-local memory and a single VCPU pinned to its local node runs each
// application alone; the measured LLC miss rate (Fig. 3a) and LLC
// references per thousand instructions (Fig. 3b) justify the (3, 20)
// classification bounds.
func runFig3(opts Options) (*Result, error) {
	opts = opts.normalized()
	r := &Result{ID: "fig3", Title: "Solo LLC miss rate and RPTI (paper Fig. 3)"}
	t := metrics.NewTable("Fig. 3", "app", "miss-rate", "RPTI", "class(Eq.3)")

	bounds := map[string]float64{"low": 3, "high": 20}
	for _, app := range workload.Fig3Apps() {
		pol, err := policyFor(sched.KindVProbe)
		if err != nil {
			return nil, err
		}
		cfg := xen.DefaultConfig()
		cfg.Seed = opts.Seed
		h := xen.New(numa.XeonE5620(), pol, cfg)
		d, err := h.CreateDomain("VM1", 4*1024, 1, mem.PolicyLocal)
		if err != nil {
			return nil, err
		}
		p := app.Clone()
		p.TotalInstructions *= opts.Scale
		v, err := h.AttachApp(d, 0, p)
		if err != nil {
			return nil, err
		}
		// Pin to PCPU 0; PolicyLocal put the VM's memory on node 0,
		// so the VCPU is local to its pages, as in the paper.
		if err := h.Pin(v, 0); err != nil {
			return nil, err
		}
		h.WatchDomains(d)
		h.Run(opts.Horizon)

		c := v.Counters
		missRate := 0.0
		if c.LLCRef > 0 {
			missRate = c.LLCMiss / c.LLCRef
		}
		rpti := 0.0
		if c.Instructions > 0 {
			rpti = c.LLCRef / c.Instructions * 1000
		}
		class := "LLC-FI"
		switch {
		case rpti < bounds["low"]:
			class = "LLC-FR"
		case rpti >= bounds["high"]:
			class = "LLC-T"
		}
		r.Set("missrate/solo", app.Name, missRate)
		r.Set("rpti/solo", app.Name, rpti)
		t.AddRow(app.Name, metrics.Pct(missRate), metrics.F(rpti), class)
	}
	t.AddNote("paper RPTI: povray 0.48, ep 2.01, lu 15.38, mg 16.33, milc 21.68, libquantum 22.41")
	t.AddNote("bounds chosen: low=3, high=20")
	r.Tables = append(r.Tables, t)
	return r, nil
}

func init() {
	register(&Experiment{
		ID:    "fig3",
		Title: "Bound calibration (solo miss rate and RPTI)",
		Paper: "Fig. 3: RPTI separates LLC-FR (<3), LLC-FI (3..20), LLC-T (>=20)",
		Run:   runFig3,
	})
}
