// Span recording for cluster runs: the placement flight recorder. Every
// control-plane decision — admission, retry, rejection, preemption, gang
// reserve/commit, backfill, descheduling, migration — records spans under
// the arriving VM's lifecycle span, and each placement decision re-derives
// its full per-plugin filter/score breakdown via Pipeline.Explain (which
// -place-check proves equivalent to the incremental score cache's answer).
//
// All recording happens on the cluster engine goroutine, where decisions
// are already serialized at every worker count, so span files are
// byte-identical at workers 1/4/8. Recording is read-only over model
// state, consumes no randomness, and schedules no events: simulation
// output is byte-identical with spans on or off. None of these functions
// is reachable from a hot-path root (decision sites sit above
// Cluster.place, never inside it), so recording may allocate freely.
package cluster

import (
	"fmt"
	"strings"

	"vprobe/internal/sim"
	"vprobe/internal/telemetry"
)

// spanTopCandidates caps the per-decision candidate spans: enough to see
// who the winner beat, without recording a thousand-host fleet per arrival.
const spanTopCandidates = 4

// spanVetoCap caps the per-plugin veto reasons recorded in one filter
// span's detail string.
const spanVetoCap = 16

// clusterSpans binds a Cluster to a span tracer. A nil *clusterSpans is
// the tracing-off state: every method nil-checks the receiver, so call
// sites stay unconditional.
type clusterSpans struct {
	c   *Cluster
	t   *telemetry.Tracer
	run telemetry.SpanRef
	vm  []telemetry.SpanRef       // by VM.ID
	mig map[int]telemetry.SpanRef // VM.ID → in-flight migrate span
}

// attachSpans binds t as the cluster's flight recorder and opens the root
// run span.
func (c *Cluster) attachSpans(t *telemetry.Tracer) {
	sp := &clusterSpans{c: c, t: t, mig: map[int]telemetry.SpanRef{}}
	sp.run = t.Begin(0, telemetry.NoSpan, telemetry.SpanRun, "", "",
		fmt.Sprintf("cluster: %d hosts, seed %d", len(c.hosts), c.cfg.Seed))
	c.spans = sp
}

// vmRef returns (growing on demand) the lifecycle span handle of vm.
func (sp *clusterSpans) vmRef(vm *VM) telemetry.SpanRef {
	for len(sp.vm) <= vm.ID {
		sp.vm = append(sp.vm, telemetry.NoSpan)
	}
	return sp.vm[vm.ID]
}

// vmArrive opens vm's lifecycle span.
func (sp *clusterSpans) vmArrive(vm *VM) {
	if sp == nil {
		return
	}
	ref := sp.t.Begin(sp.c.engine.Now(), sp.run, telemetry.SpanVM, "", vm.Spec.Name,
		fmt.Sprintf("vm %s", vm.Spec.Name))
	sp.t.SetDetail(ref, fmt.Sprintf("%d MB, %d vcpus, %s%s",
		vm.Spec.MemoryMB, vm.Spec.VCPUs, vm.Spec.Priority, gangTag(vm.Spec.Group)))
	sp.vmRef(vm) // grow
	sp.vm[vm.ID] = ref
}

// filterDetail renders one filter plugin's verdict for a span detail.
func filterDetail(fr FilterReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "admitted %d", fr.Admitted)
	if len(fr.Vetoes) == 0 {
		b.WriteString(", vetoed 0")
		return b.String()
	}
	fmt.Fprintf(&b, ", vetoed %d:", len(fr.Vetoes))
	for i, v := range fr.Vetoes {
		if i == spanVetoCap {
			fmt.Fprintf(&b, " … (+%d more)", len(fr.Vetoes)-spanVetoCap)
			break
		}
		fmt.Fprintf(&b, " %s: %s;", v.Host, v.Reason)
	}
	return strings.TrimSuffix(b.String(), ";")
}

// scoreDetail renders a candidate's per-plugin sum for a span detail.
func scoreDetail(scores []ScoreReport) string {
	parts := make([]string, len(scores))
	for i, s := range scores {
		parts[i] = fmt.Sprintf("%s %.2f", s.Plugin, s.Weighted)
	}
	return strings.Join(parts, " + ")
}

// placeDecision records one placement decision with its complete
// per-plugin provenance: the place span, one filter span per filter
// plugin, the winner's per-scorer score spans, and the top candidate
// spans. views must be the exact views the decision ran over, before any
// mutation from acting on the decision.
func (sp *clusterSpans) placeDecision(vm *VM, views []*HostView, chosen *HostView, err error, attempt int) {
	if sp == nil {
		return
	}
	now := sp.c.engine.Now()
	ex := sp.c.pipeline.Explain(&vm.Spec, views, spanTopCandidates)
	host := ""
	if chosen != nil {
		host = chosen.Name
	}
	ps := sp.t.Begin(now, sp.vmRef(vm), telemetry.SpanPlace, host, vm.Spec.Name,
		fmt.Sprintf("place %s attempt %d", vm.Spec.Name, attempt))
	if err != nil {
		sp.t.SetDetail(ps, err.Error())
	} else if len(ex.Candidates) > 0 {
		sp.t.SetScore(ps, ex.Candidates[0].Total)
		if ex.Candidates[0].Host != host {
			// Should be impossible: Explain mirrors Place, and -place-check
			// proves Place ≡ the incremental cache. Record loudly, not
			// silently, if the invariant ever breaks.
			sp.t.Note(ps, fmt.Sprintf("MISMATCH: decision chose %s, explain computed %s",
				host, ex.Candidates[0].Host))
		}
	}
	for _, fr := range ex.Filters {
		sp.t.Point(now, ps, telemetry.SpanFilter, host, vm.Spec.Name, fr.Plugin, filterDetail(fr))
	}
	if err == nil && len(ex.Candidates) > 0 {
		win := ex.Candidates[0]
		for _, sr := range win.Scores {
			ref := sp.t.Point(now, ps, telemetry.SpanScore, win.Host, vm.Spec.Name, sr.Plugin,
				fmt.Sprintf("raw %.2f × weight %.2f", sr.Raw, sr.Weight))
			sp.t.SetScore(ref, sr.Weighted)
		}
		for _, cand := range ex.Candidates {
			ref := sp.t.Point(now, ps, telemetry.SpanCandidate, cand.Host, vm.Spec.Name,
				"candidate "+cand.Host, scoreDetail(cand.Scores))
			sp.t.SetScore(ref, cand.Total)
		}
	}
	sp.t.End(ps, now)
}

// retry records one backoff retry decision on the unit's first VM.
func (sp *clusterSpans) retry(u *admitUnit, backoff sim.Duration) {
	if sp == nil {
		return
	}
	vm := u.vms[0]
	sp.t.Point(sp.c.engine.Now(), sp.vmRef(vm), telemetry.SpanRetry, "", vm.Spec.Name,
		fmt.Sprintf("retry %s", vm.Spec.Name),
		fmt.Sprintf("attempt %d failed, backoff %v", u.retries, backoff))
}

// reject records the terminal rejection and closes vm's lifecycle span.
func (sp *clusterSpans) reject(vm *VM, attempts int) {
	if sp == nil {
		return
	}
	now := sp.c.engine.Now()
	sp.t.Point(now, sp.vmRef(vm), telemetry.SpanReject, "", vm.Spec.Name,
		fmt.Sprintf("reject %s", vm.Spec.Name),
		fmt.Sprintf("rejected after %d attempts", attempts))
	sp.t.End(sp.vmRef(vm), now)
}

// depart closes vm's lifecycle span at departure.
func (sp *clusterSpans) depart(vm *VM) {
	if sp == nil {
		return
	}
	ref := sp.vmRef(vm)
	sp.t.Note(ref, fmt.Sprintf("departed %s after %v",
		vm.Host.Name, sp.c.engine.Now().Sub(vm.arriveAt)))
	sp.t.End(ref, sp.c.engine.Now())
}

// migrateStart opens a migration span priced by the page-copy cost model.
func (sp *clusterSpans) migrateStart(vm *VM, src, target *Host, blackout sim.Duration) {
	if sp == nil {
		return
	}
	ref := sp.t.Begin(sp.c.engine.Now(), sp.vmRef(vm), telemetry.SpanMigrate,
		target.Name, vm.Spec.Name,
		fmt.Sprintf("migrate %s %s→%s", vm.Spec.Name, src.Name, target.Name))
	sp.t.SetCost(ref, blackout)
	sp.t.SetDetail(ref, fmt.Sprintf("%d MB, blackout %v", vm.Spec.MemoryMB, blackout))
	sp.mig[vm.ID] = ref
}

// migrateDone closes vm's in-flight migration span.
func (sp *clusterSpans) migrateDone(vm *VM) {
	if sp == nil {
		return
	}
	if ref, ok := sp.mig[vm.ID]; ok {
		sp.t.End(ref, sp.c.engine.Now())
		delete(sp.mig, vm.ID)
	}
}

// preempt records a victim eviction on behalf of a beneficiary. cost is
// the migration blackout when the victim live-migrates, 0 when killed.
func (sp *clusterSpans) preempt(victim, beneficiary *VM, outcome string, cost sim.Duration) {
	if sp == nil {
		return
	}
	ref := sp.t.Point(sp.c.engine.Now(), sp.vmRef(victim), telemetry.SpanPreempt,
		victim.Host.Name, victim.Spec.Name,
		fmt.Sprintf("preempt %s", victim.Spec.Name),
		fmt.Sprintf("for %s (%s > %s), %s", beneficiary.Spec.Name,
			beneficiary.Spec.Priority, victim.Spec.Priority, outcome))
	if cost > 0 {
		sp.t.SetCost(ref, cost)
	}
}

// gangAdmitted records an all-or-nothing gang commit with its member→host
// mapping.
func (sp *clusterSpans) gangAdmitted(u *admitUnit) {
	if sp == nil {
		return
	}
	parts := make([]string, len(u.vms))
	for i, vm := range u.vms {
		parts[i] = vm.Spec.Name + "→" + vm.Host.Name
	}
	vm := u.vms[0]
	sp.t.Point(sp.c.engine.Now(), sp.vmRef(vm), telemetry.SpanGang, "", vm.Spec.Name,
		fmt.Sprintf("gang %s admitted", vm.Spec.Group),
		fmt.Sprintf("%d VMs all-or-nothing: %s", len(u.vms), strings.Join(parts, " ")))
}

// backfill records a small VM jumping a blocked head.
func (sp *clusterSpans) backfill(vm *VM, target *Host, head *VM) {
	if sp == nil {
		return
	}
	sp.t.Point(sp.c.engine.Now(), sp.vmRef(vm), telemetry.SpanBackfill,
		target.Name, vm.Spec.Name,
		fmt.Sprintf("backfill %s", vm.Spec.Name),
		fmt.Sprintf("onto %s ahead of blocked %s (shadow check passed)",
			target.Name, head.Spec.Name))
}

// deschedMove records one defragmentation drain move.
func (sp *clusterSpans) deschedMove(vm *VM, src, target *Host) {
	if sp == nil {
		return
	}
	sp.t.Point(sp.c.engine.Now(), sp.vmRef(vm), telemetry.SpanDeschedule,
		src.Name, vm.Spec.Name,
		fmt.Sprintf("deschedule %s", vm.Spec.Name),
		fmt.Sprintf("drained off %s to %s (defrag)", src.Name, target.Name))
}

// closeRun ends every still-open span at the horizon.
func (sp *clusterSpans) closeRun(at sim.Time) {
	if sp == nil {
		return
	}
	sp.t.CloseOpen(at)
}
