// Package perf is the analytic performance model that converts "VCPU v ran
// workload w on node n for quantum q alongside co-runners C" into retired
// instructions, LLC traffic, and per-node memory accesses.
//
// It captures the four performance-degrading factors the paper names
// (§II-A): remote memory access latency, memory-controller contention,
// interconnect-link contention, and LLC contention — plus the cold-cache
// refill cost of cross-socket migration, which is what makes careless load
// balancing expensive.
//
// Contention is resolved with epoch relaxation: per-node IMC and per-link
// QPI utilizations measured over the previous epoch determine this epoch's
// latency multipliers. That keeps each quantum O(nodes) to evaluate while
// still producing the feedback the paper's mechanisms exploit.
package perf

import (
	"fmt"
	"math"

	"vprobe/internal/mem"
	"vprobe/internal/numa"
	"vprobe/internal/sim"
	"vprobe/internal/workload"
)

// Params are the model constants. Defaults() documents each choice.
type Params struct {
	// Alpha is the paper's Eq. 2 scaling constant (set to 1000 in §IV-A).
	Alpha float64
	// MLP is the memory-level-parallelism overlap factor: the fraction
	// of each miss's latency that is exposed to the pipeline.
	MLP float64
	// HitVisible is the fraction of the LLC hit latency exposed.
	HitVisible float64
	// UtilCap bounds queueing utilization in the 1/(1-u) multiplier so
	// latencies stay finite under saturation.
	UtilCap float64
	// BytesPerMiss is the DRAM traffic per demand miss: one 64 B line
	// plus associated prefetch and write-back traffic.
	BytesPerMiss float64
	// QPIGBPerGT converts link GT/s into usable GB/s of payload per
	// direction, net of protocol, header, and coherence-snoop overhead.
	QPIGBPerGT float64
	// IMCEfficiency derates the nominal IMC bandwidth to what random
	// demand traffic actually sustains.
	IMCEfficiency float64
	// ColdRefill is the fraction of the working set that must be
	// refetched after a cross-socket migration.
	ColdRefill float64
	// EpochSmoothing is the EWMA weight on the newest epoch's measured
	// utilization (1 = no smoothing).
	EpochSmoothing float64
}

// Defaults returns the calibrated model constants.
func Defaults() Params {
	return Params{
		Alpha:          1000, // paper §IV-A
		MLP:            0.75, // LP solvers/pointer chasing expose most of each miss
		HitVisible:     0.30, // L3 hits mostly pipelined
		UtilCap:        0.88, // keeps 1/(1-u) <= 8.3x
		BytesPerMiss:   256,
		QPIGBPerGT:     0.3, // headers, snoops and coherence broadcasts eat most raw capacity
		IMCEfficiency:  0.6, // random access sustains ~60% of peak
		ColdRefill:     0.8, // migrations refill most of the hot set
		EpochSmoothing: 0.5,
	}
}

// Request describes one execution quantum to evaluate.
type Request struct {
	// Profile is the workload running on the VCPU.
	Profile *workload.Profile
	// InstrDone is the work already retired (selects the phase).
	InstrDone float64
	// Quantum is the wall-clock slice granted.
	Quantum sim.Duration
	// RunNode is the node of the PCPU executing the quantum.
	RunNode numa.NodeID
	// PageDist is the VCPU's current page distribution.
	PageDist mem.Dist
	// CoRunnerRPTI is the summed RPTI of the other VCPUs executing on
	// the same socket during this quantum (LLC share competition).
	CoRunnerRPTI float64
	// ColdLines is the number of cache lines still to refill after a
	// recent cross-socket migration; these turn would-be hits into
	// misses.
	ColdLines float64
	// MaxInstructions caps retired work (end of a batch app); 0 = no cap.
	MaxInstructions float64
	// OverheadCycles is scheduler bookkeeping (PMU reads, partitioning,
	// BRM lock waits) charged against the quantum before any
	// instructions retire.
	OverheadCycles float64
}

// Outcome is the result of evaluating a Request.
type Outcome struct {
	Instructions float64
	Cycles       float64 // total cycles consumed, including overhead
	LLCRef       float64
	LLCMiss      float64
	Node         []float64 // memory accesses served per node
	Remote       float64   // accesses served off RunNode
	ColdLines    float64   // refill debt remaining after the quantum
	MissRate     float64   // observed (cold-inflated) miss rate
	CPI          float64   // effective cycles per instruction
	Used         sim.Duration
}

// System holds the contention state shared by all VCPUs.
type System struct {
	top    *numa.Topology
	params Params

	imcMult  []float64   // per node
	linkMult [][]float64 // per node pair (symmetric)

	nodeBytes []float64
	pairBytes [][]float64
	epochAt   sim.Time

	// linkCap[a][b] is the usable bytes/s between a node pair, summed over
	// the links connecting it. The topology is immutable, so this is
	// computed once at construction instead of per epoch.
	linkCap [][]float64
}

// NewSystem builds the model for a topology with default parameters.
func NewSystem(top *numa.Topology) *System {
	return NewSystemParams(top, Defaults())
}

// NewSystemParams builds the model with explicit parameters.
func NewSystemParams(top *numa.Topology, p Params) *System {
	n := top.NumNodes()
	s := &System{
		top:       top,
		params:    p,
		imcMult:   make([]float64, n),
		linkMult:  make([][]float64, n),
		nodeBytes: make([]float64, n),
		pairBytes: make([][]float64, n),
	}
	for i := 0; i < n; i++ {
		s.imcMult[i] = 1
		s.linkMult[i] = make([]float64, n)
		s.pairBytes[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			s.linkMult[i][j] = 1
		}
	}
	s.linkCap = make([][]float64, n)
	for i := range s.linkCap {
		s.linkCap[i] = make([]float64, n)
	}
	for _, l := range top.Links() {
		bw := l.BandwidthGTs * p.QPIGBPerGT * 1e9
		s.linkCap[l.A][l.B] += bw
		s.linkCap[l.B][l.A] += bw
	}
	return s
}

// Params returns the model constants in use.
func (s *System) Params() Params { return s.params }

// Topology returns the machine model.
func (s *System) Topology() *numa.Topology { return s.top }

// IMCMultiplier returns the current latency multiplier for node id.
func (s *System) IMCMultiplier(id numa.NodeID) float64 { return s.imcMult[id] }

// LinkMultiplier returns the current latency multiplier between two nodes.
func (s *System) LinkMultiplier(a, b numa.NodeID) float64 {
	if a == b {
		return 1
	}
	return s.linkMult[a][b]
}

// ColdLinesFor returns the refill debt to charge when a VCPU running the
// given phase migrates across sockets.
func (s *System) ColdLinesFor(ph *workload.Phase) float64 {
	const lineBytes = 64
	return float64(ph.WorkingSetKB) * 1024 / lineBytes * s.params.ColdRefill
}

// EffectiveShareKB computes the LLC share of a VCPU with reference
// intensity own competing against co-runners with summed intensity co on a
// socket with llcKB of cache. Pressure-proportional sharing is the
// standard analytic cache-partitioning approximation.
func EffectiveShareKB(llcKB int64, own, co float64) float64 {
	if own <= 0 {
		return 0
	}
	if co < 0 {
		co = 0
	}
	return float64(llcKB) * own / (own + co)
}

// Execute evaluates one quantum. It is read-only with respect to contention
// state; callers must Record the outcome for the feedback loop.
//
// Execute allocates a fresh per-node vector per call; the quantum hot path
// uses ExecuteInto with a reusable Outcome instead.
func (s *System) Execute(r Request) Outcome {
	var out Outcome
	s.ExecuteInto(&out, r)
	return out
}

// ExecuteInto is Execute writing into a caller-owned Outcome: out's Node
// slice is reused when it has the capacity, so a VCPU that keeps one
// Outcome across quanta makes the evaluation allocation-free. All other
// fields of out are overwritten.
//
//vprobe:hotpath
func (s *System) ExecuteInto(out *Outcome, r Request) {
	node := out.Node
	if cap(node) < s.top.NumNodes() {
		node = make([]float64, s.top.NumNodes()) //vet:alloc only when the caller-owned Outcome is too small; VCPUs keep one across quanta
	}
	node = node[:s.top.NumNodes()]
	for i := range node {
		node[i] = 0
	}
	*out = Outcome{Node: node}
	if r.Quantum <= 0 {
		return
	}
	ph := r.Profile.PhaseAt(r.InstrDone)
	rpi := ph.RPTI / 1000 // LLC references per instruction

	cyclesAvail := float64(r.Quantum.Micros()) * s.top.CyclesPerMicrosecond()
	overhead := math.Min(r.OverheadCycles, cyclesAvail)
	cyclesAvail -= overhead

	share := EffectiveShareKB(s.top.LLCSizeKB(r.RunNode), ph.RPTI, r.CoRunnerRPTI)
	baseMiss := ph.MissRate(share)

	// Average memory latency in cycles over the page distribution,
	// inflated by last epoch's contention multipliers.
	var memLat float64
	for n := 0; n < s.top.NumNodes(); n++ {
		frac := r.PageDist.LocalFraction(numa.NodeID(n))
		if frac <= 0 {
			continue
		}
		lat := s.top.MemLatencyCycles(r.RunNode, numa.NodeID(n)) * s.imcMult[n]
		if numa.NodeID(n) != r.RunNode {
			lat *= s.linkMult[r.RunNode][n]
		}
		memLat += frac * lat
	}
	if memLat == 0 { // empty page dist: treat as local
		memLat = s.top.MemLatencyCycles(r.RunNode, r.RunNode) * s.imcMult[r.RunNode]
	}

	mlp := s.params.MLP
	if r.Profile.LatencyExposure > 0 {
		mlp = r.Profile.LatencyExposure
	}
	//vet:alloc non-escaping helper: called twice below and never stored, so it stays on the stack (escape baseline agrees)
	cpiAt := func(miss float64) float64 {
		hit := rpi * (1 - miss) * s.top.LLCHitLatencyCycles() * s.params.HitVisible
		mm := rpi * miss * memLat * mlp
		return r.Profile.BaseCPI + hit + mm
	}

	// First pass: estimate references to resolve the cold-refill debt.
	missEff := baseMiss
	coldLeft := r.ColdLines
	if r.ColdLines > 0 && rpi > 0 {
		instrEst := cyclesAvail / cpiAt(baseMiss)
		refsEst := instrEst * rpi
		wouldHit := refsEst * (1 - baseMiss)
		coldConv := math.Min(r.ColdLines, wouldHit)
		if refsEst > 0 {
			missEff = (refsEst*baseMiss + coldConv) / refsEst
			if missEff > 1 {
				missEff = 1
			}
		}
		coldLeft = r.ColdLines - coldConv
		if coldLeft < 0 {
			coldLeft = 0
		}
	}

	cpi := cpiAt(missEff)
	instr := cyclesAvail / cpi
	cycles := cyclesAvail
	if r.MaxInstructions > 0 && instr > r.MaxInstructions {
		instr = r.MaxInstructions
		cycles = instr * cpi
	}

	refs := instr * rpi
	misses := refs * missEff
	out.Instructions = instr
	out.Cycles = cycles + overhead
	out.LLCRef = refs
	out.LLCMiss = misses
	out.ColdLines = coldLeft
	out.MissRate = missEff
	out.CPI = cpi
	for n := 0; n < s.top.NumNodes(); n++ {
		served := misses * r.PageDist.LocalFraction(numa.NodeID(n))
		out.Node[n] = served
		if numa.NodeID(n) != r.RunNode {
			out.Remote += served
		}
	}
	usedMicros := out.Cycles / s.top.CyclesPerMicrosecond()
	out.Used = sim.Duration(math.Ceil(usedMicros))
	if out.Used > r.Quantum {
		out.Used = r.Quantum
	}
}

// Record feeds an outcome into the contention accumulators.
func (s *System) Record(o Outcome, runNode numa.NodeID) {
	for n := range o.Node {
		bytes := o.Node[n] * s.params.BytesPerMiss
		s.nodeBytes[n] += bytes
		if numa.NodeID(n) != runNode {
			s.pairBytes[runNode][n] += bytes
			s.pairBytes[n][runNode] += bytes
		}
	}
}

// EndEpoch recomputes the contention multipliers from the traffic recorded
// since the previous epoch boundary and resets the accumulators. now is the
// current virtual time.
func (s *System) EndEpoch(now sim.Time) {
	elapsed := now.Sub(s.epochAt)
	s.epochAt = now
	if elapsed <= 0 {
		return
	}
	secs := elapsed.Seconds()
	w := s.params.EpochSmoothing

	eff := s.params.IMCEfficiency
	if eff <= 0 {
		eff = 1
	}
	for n := 0; n < s.top.NumNodes(); n++ {
		bw := s.top.Node(numa.NodeID(n)).IMCBandwidthGBs * 1e9 * eff
		u := sim.Clamp(s.nodeBytes[n]/secs/bw, 0, s.params.UtilCap)
		target := 1 / (1 - u)
		s.imcMult[n] = (1-w)*s.imcMult[n] + w*target
		s.nodeBytes[n] = 0
		for m := n + 1; m < s.top.NumNodes(); m++ {
			cap := s.linkCap[n][m]
			if cap <= 0 {
				cap = 1e9 // disconnected pairs: nominal
			}
			u := sim.Clamp(s.pairBytes[n][m]/secs/cap, 0, s.params.UtilCap)
			target := 1 / (1 - u)
			mult := (1-w)*s.linkMult[n][m] + w*target
			s.linkMult[n][m] = mult
			s.linkMult[m][n] = mult
			s.pairBytes[n][m] = 0
			s.pairBytes[m][n] = 0
		}
	}
}

// String summarises the current contention state.
func (s *System) String() string {
	return fmt.Sprintf("perf: imc=%v", s.imcMult)
}
