module vprobe

go 1.22
