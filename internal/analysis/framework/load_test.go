package framework_test

import (
	"go/token"
	"testing"

	"vprobe/internal/analysis/framework"
	"vprobe/internal/analysis/framework/analysistest"
)

// TestModuleLoader typechecks a real package of the enclosing module,
// proving import resolution works for module-internal and stdlib imports.
func TestModuleLoader(t *testing.T) {
	ld, root, err := framework.NewModuleLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	modPath, err := framework.ModulePath(root)
	if err != nil {
		t.Fatal(err)
	}
	if modPath != "vprobe" {
		t.Fatalf("module path = %q, want vprobe", modPath)
	}
	pkg, err := ld.Load("vprobe/internal/sim")
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Types.Name() != "sim" {
		t.Fatalf("package name = %q, want sim", pkg.Types.Name())
	}
	if pkg.Types.Scope().Lookup("Clock") == nil && pkg.Types.Scope().Lookup("Time") == nil {
		t.Fatal("expected sim package scope to expose its clock types")
	}
}

// TestLoadPatterns expands ./... over a synthesized module and prunes
// testdata.
func TestLoadPatterns(t *testing.T) {
	dir := t.TempDir()
	analysistest.MustWriteTree(t, dir, map[string]string{
		"go.mod":            "module example.test\n\ngo 1.22\n",
		"a/a.go":            "package a\n\nfunc A() int { return 1 }\n",
		"a/testdata/bad.go": "package broken\n\nfunc !!!\n",
		"b/b.go":            "package b\n\nimport \"example.test/a\"\n\nvar _ = a.A\n",
		"b/skip_test.go":    "package b\n\nthis is not go\n",
		"_ignored/x.go":     "package x\n",
		".hidden/y.go":      "package y\n",
	})
	ld, root, err := framework.NewModuleLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := ld.LoadPatterns(root, "example.test", []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	var paths []string
	for _, p := range pkgs {
		paths = append(paths, p.Path)
	}
	want := []string{"example.test/a", "example.test/b"}
	if len(paths) != len(want) {
		t.Fatalf("loaded %v, want %v", paths, want)
	}
	for i := range want {
		if paths[i] != want[i] {
			t.Fatalf("loaded %v, want %v", paths, want)
		}
	}
}

// TestSuppressed covers same-line and line-above directive placement.
func TestSuppressed(t *testing.T) {
	dir := t.TempDir()
	analysistest.MustWriteTree(t, dir, map[string]string{
		"p/p.go": `package p

func A() int { return 1 } //vet:ordered same line

//vet:partial line above
func B() int { return 2 }

func C() int { return 3 }
`,
	})
	ld := framework.NewTreeLoader(dir)
	pkg, err := ld.Load("p")
	if err != nil {
		t.Fatal(err)
	}
	pass := &framework.Pass{Fset: pkg.Fset, Files: pkg.Files}
	posOf := func(line int) token.Pos {
		f := pkg.Fset.File(pkg.Files[0].Pos())
		return f.LineStart(line)
	}
	if !pass.Suppressed(posOf(3), "ordered") {
		t.Error("same-line directive not seen")
	}
	if !pass.Suppressed(posOf(6), "partial") {
		t.Error("line-above directive not seen")
	}
	if pass.Suppressed(posOf(8), "ordered") || pass.Suppressed(posOf(8), "partial") {
		t.Error("unrelated line reported suppressed")
	}
}
