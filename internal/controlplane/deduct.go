package controlplane

// What-if deduction helpers. The planners (and the cluster's gang
// reserve phase) need to charge a hypothetical placement against a free-
// memory vector without touching a real allocator. These mirror the
// arithmetic of mem.Allocator.Alloc for the three placement policies, so a
// what-if that fits here fits the real allocator too — and where rounding
// could diverge, the callers treat the subsequent real allocation failure
// as "capacity moved" and roll back rather than trusting the estimate.

// TakeFill deducts memMB from free in fill order (node 0 upward, spilling
// to the next node when one runs dry), mutating free in place. It returns
// the per-node takes and the amount that did not fit (0 when free covered
// the request).
func TakeFill(free []int64, memMB int64) (takes []int64, short int64) {
	takes = make([]int64, len(free))
	remaining := memMB
	for node := 0; node < len(free) && remaining > 0; node++ {
		take := remaining
		if take > free[node] {
			take = free[node]
		}
		if take <= 0 {
			continue
		}
		free[node] -= take
		takes[node] += take
		remaining -= take
	}
	return takes, remaining
}

// TakeLocal deducts memMB preferring one node, spilling in fill order.
func TakeLocal(free []int64, memMB int64, preferred int) (takes []int64, short int64) {
	takes = make([]int64, len(free))
	remaining := memMB
	if preferred >= 0 && preferred < len(free) {
		take := remaining
		if take > free[preferred] {
			take = free[preferred]
		}
		if take > 0 {
			free[preferred] -= take
			takes[preferred] += take
			remaining -= take
		}
	}
	for node := 0; node < len(free) && remaining > 0; node++ {
		take := remaining
		if take > free[node] {
			take = free[node]
		}
		if take <= 0 {
			continue
		}
		free[node] -= take
		takes[node] += take
		remaining -= take
	}
	return takes, remaining
}

// TakeStripe deducts memMB spread evenly over the nodes that still have
// room, looping on the remainder exactly like mem.Allocator's stripe pass.
func TakeStripe(free []int64, memMB int64) (takes []int64, short int64) {
	takes = make([]int64, len(free))
	remaining := memMB
	for remaining > 0 {
		withRoom := 0
		for _, f := range free {
			if f > 0 {
				withRoom++
			}
		}
		if withRoom == 0 {
			break
		}
		per := remaining / int64(withRoom)
		if per == 0 {
			per = 1
		}
		before := remaining
		for node := 0; node < len(free) && remaining > 0; node++ {
			want := per
			if want > remaining {
				want = remaining
			}
			if want > free[node] {
				want = free[node]
			}
			if want <= 0 {
				continue
			}
			free[node] -= want
			takes[node] += want
			remaining -= want
		}
		if remaining == before {
			break
		}
	}
	return takes, remaining
}

// addTo returns per-node free memory with deltas added (a departure or an
// eviction replayed onto a snapshot).
func addTo(free, deltas []int64) {
	for i := range deltas {
		if i < len(free) {
			free[i] += deltas[i]
		}
	}
}
