package walltime_test

import (
	"testing"

	"vprobe/internal/analysis/framework/analysistest"
	"vprobe/internal/analysis/walltime"
)

func TestWallTime(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), walltime.Analyzer,
		"walltime_a",
		// Exempt-by-path trees: fixtures under the module's own prefix
		// prove cmd/ and the harness stay lintable but unflagged.
		"vprobe/cmd/demo",
		"vprobe/internal/harness",
	)
}
