// Package metrics extracts the paper's evaluation metrics from finished
// simulations (§V-A3): execution time, throughput, total memory accesses,
// remote memory accesses — and renders results as aligned text tables.
package metrics

import (
	"fmt"
	"sort"
	"strings"

	"vprobe/internal/mem"
	"vprobe/internal/sim"
	"vprobe/internal/xen"
)

// AppRun summarises one application instance (one app-carrying VCPU).
type AppRun struct {
	App      string
	VCPU     xen.VCPUID
	Finished bool
	// ExecTime is wall-clock completion time for batch apps; for servers
	// it is the measurement horizon.
	ExecTime sim.Duration
	// Total and Remote are memory access counts (LLC misses and the
	// subset served by a remote node).
	Total, Remote float64
	// RemoteRatio is Remote/Total (access level).
	RemoteRatio float64
	// PageRemoteRatio is the paper's Fig. 1 page-level metric.
	PageRemoteRatio float64
	// Requests is the served request count for servers.
	Requests float64
	// Migrations and NodeMoves count placements.
	Migrations, NodeMoves int
}

// CollectDomain extracts an AppRun per app-carrying VCPU of the domain.
// horizon is the measurement end (used for unfinished/server apps).
func CollectDomain(d *xen.Domain, horizon sim.Time) []AppRun {
	var out []AppRun
	for _, v := range d.VCPUs {
		if v.App == nil {
			continue
		}
		if v.App.Endless() && !v.App.Server {
			continue // hungry loops / guest housekeeping are not measured
		}
		r := AppRun{
			App:        v.App.Name,
			VCPU:       v.ID,
			Finished:   v.Done,
			Total:      v.Counters.Total(),
			Remote:     v.Counters.Remote,
			Requests:   v.RequestsServed(),
			Migrations: v.Migrations,
			NodeMoves:  v.NodeMoves,
		}
		if v.Done {
			r.ExecTime = sim.Duration(v.FinishTime)
		} else {
			r.ExecTime = sim.Duration(horizon)
		}
		if r.Total > 0 {
			r.RemoteRatio = r.Remote / r.Total
		}
		r.PageRemoteRatio = mem.RemotePageRatio(r.RemoteRatio, v.App.TouchesPerPage)
		out = append(out, r)
	}
	return out
}

// AvgExecSeconds returns the mean execution time over the runs.
func AvgExecSeconds(runs []AppRun) float64 {
	if len(runs) == 0 {
		return 0
	}
	var sum float64
	for _, r := range runs {
		sum += r.ExecTime.Seconds()
	}
	return sum / float64(len(runs))
}

// MaxExecSeconds returns the latest completion (multi-threaded apps finish
// when their slowest thread does).
func MaxExecSeconds(runs []AppRun) float64 {
	var max float64
	for _, r := range runs {
		if s := r.ExecTime.Seconds(); s > max {
			max = s
		}
	}
	return max
}

// SumTotal returns the summed total memory accesses.
func SumTotal(runs []AppRun) float64 {
	var sum float64
	for _, r := range runs {
		sum += r.Total
	}
	return sum
}

// SumRemote returns the summed remote memory accesses.
func SumRemote(runs []AppRun) float64 {
	var sum float64
	for _, r := range runs {
		sum += r.Remote
	}
	return sum
}

// SumRequests returns the summed served requests.
func SumRequests(runs []AppRun) float64 {
	var sum float64
	for _, r := range runs {
		sum += r.Requests
	}
	return sum
}

// AvgRemoteRatio returns the access-weighted remote ratio.
func AvgRemoteRatio(runs []AppRun) float64 {
	t, r := SumTotal(runs), SumRemote(runs)
	if t <= 0 {
		return 0
	}
	return r / t
}

// AvgPageRemoteRatio returns the mean page-level remote ratio (Fig. 1).
func AvgPageRemoteRatio(runs []AppRun) float64 {
	if len(runs) == 0 {
		return 0
	}
	var sum float64
	for _, r := range runs {
		sum += r.PageRemoteRatio
	}
	return sum / float64(len(runs))
}

// Normalize divides every value by the value at baseline; missing or zero
// baseline yields an all-zero map copy.
func Normalize(values map[string]float64, baseline string) map[string]float64 {
	out := make(map[string]float64, len(values))
	base := values[baseline]
	for k, v := range values {
		if base != 0 {
			out[k] = v / base
		} else {
			out[k] = 0
		}
	}
	return out
}

// Table is a simple column-aligned text table, the harness's output form
// for every reproduced figure/table.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
	Notes   []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddNote appends a footnote.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Rows returns the formatted rows (for tests).
func (t *Table) Rows() [][]string { return t.rows }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

// F formats a float for table cells with 3 decimals, trimming noise.
func F(v float64) string { return fmt.Sprintf("%.3f", v) }

// Pct formats a ratio as a percentage with 2 decimals.
func Pct(v float64) string { return fmt.Sprintf("%.2f%%", 100*v) }

// SortedKeys returns map keys in sorted order for stable iteration.
func SortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
