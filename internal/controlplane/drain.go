package controlplane

import "sort"

// Move is one descheduler relocation: victim VM to target host.
type Move struct {
	VictimID   int
	TargetHost int
}

// DrainPlan empties host HostIndex by the listed moves, in order.
type DrainPlan struct {
	HostIndex int
	Moves     []Move
}

// PlanDrain is the descheduler's consolidation search: pick the emptiest
// feasible host — fewest live VMs, every one of them movable — whose
// entire population can be re-placed on the other hosts, and return the
// assignment. Hosts whose Victims list is shorter than LiveVMs have pinned
// residents (cooldown, mid-migration) and are never drained. Returns nil
// when no host can be fully drained.
//
// Victims are assigned in ID order, each to the other host with the most
// free memory after earlier assignments (ties to the lower index) that
// fits it — a deterministic first-fit-decreasing-space heuristic. The
// caller re-validates each move against the live pipeline at execution
// time, so an assignment here is a plan, not a promise.
func PlanDrain(hosts []*HostCap, fits FitFunc) *DrainPlan {
	// Source candidates: fully-movable, non-empty, emptiest first.
	var sources []*HostCap
	for _, h := range hosts {
		if h.LiveVMs > 0 && len(h.Victims) == h.LiveVMs {
			sources = append(sources, h)
		}
	}
	sort.Slice(sources, func(i, j int) bool {
		if sources[i].LiveVMs != sources[j].LiveVMs {
			return sources[i].LiveVMs < sources[j].LiveVMs
		}
		return sources[i].Index < sources[j].Index
	})

	for _, src := range sources {
		if plan := planDrainOf(src, hosts, fits); plan != nil {
			return plan
		}
	}
	return nil
}

// planDrainOf tries to re-place every victim of src on the other hosts.
func planDrainOf(src *HostCap, hosts []*HostCap, fits FitFunc) *DrainPlan {
	// What-if copies of every target.
	targets := make([]*HostCap, 0, len(hosts)-1)
	for _, h := range hosts {
		if h.Index == src.Index {
			continue
		}
		c := h.clone()
		targets = append(targets, &c)
	}
	if len(targets) == 0 {
		return nil
	}

	victims := append([]Victim(nil), src.Victims...)
	sort.Slice(victims, func(i, j int) bool { return victims[i].ID < victims[j].ID })

	plan := &DrainPlan{HostIndex: src.Index}
	for _, v := range victims {
		req := Request{ID: v.ID, MemoryMB: v.MemoryMB, VCPUs: v.VCPUs, Priority: v.Priority}
		var tgt *HostCap
		for _, t := range targets {
			if !fits(req, t) {
				continue
			}
			if tgt == nil || t.FreeMB() > tgt.FreeMB() ||
				(t.FreeMB() == tgt.FreeMB() && t.Index < tgt.Index) {
				tgt = t
			}
		}
		if tgt == nil {
			return nil // this source cannot fully drain
		}
		// Charge the move: deduct greedily from the target's fullest
		// nodes (the shape the pipeline's local/stripe plans prefer).
		charge(tgt, v)
		plan.Moves = append(plan.Moves, Move{VictimID: v.ID, TargetHost: tgt.Index})
	}
	return plan
}

// charge deducts a victim's footprint from a what-if target: largest free
// node first, mirroring the single-node-first preference of the real
// memory plans.
func charge(t *HostCap, v Victim) {
	remaining := v.MemoryMB
	for remaining > 0 {
		best, bestFree := -1, int64(0)
		for i, f := range t.FreePerNodeMB {
			if f > bestFree {
				best, bestFree = i, f
			}
		}
		if best < 0 {
			break
		}
		take := remaining
		if take > bestFree {
			take = bestFree
		}
		t.FreePerNodeMB[best] -= take
		remaining -= take
	}
	t.GuestVCPUs += v.VCPUs
	t.LiveVMs++
}
