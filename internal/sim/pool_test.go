package sim

import "testing"

// TestEventPooling checks the engine recycles fired events: after a burst
// of events fires, the free list holds them, and scheduling again drains
// the pool instead of allocating.
func TestEventPooling(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 10; i++ {
		e.Schedule(Duration(i), "ev", func(*Engine) {})
	}
	e.Run()
	if got := e.PoolSize(); got != 10 {
		t.Fatalf("PoolSize after firing 10 events = %d, want 10", got)
	}
	e.Schedule(0, "reuse", func(*Engine) {})
	if got := e.PoolSize(); got != 9 {
		t.Fatalf("PoolSize after scheduling from pool = %d, want 9", got)
	}
}

// TestCancelledEventPooled checks a cancelled event is recycled when it is
// discarded at the head of the queue, and that its Cancelled flag stays
// observable until the event is handed out again.
func TestCancelledEventPooled(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(5, "doomed", func(*Engine) { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("Cancelled() lost after discard")
	}
	if got := e.PoolSize(); got != 1 {
		t.Fatalf("PoolSize after discarding cancelled event = %d, want 1", got)
	}
	// Reuse must clear the stale cancel flag.
	ev2 := e.Schedule(1, "fresh", func(*Engine) {})
	if ev2.Cancelled() {
		t.Fatal("recycled event handed out with stale cancel flag")
	}
	if got := e.Run(); got != 1 {
		t.Fatalf("recycled event did not fire: fired %d events", got)
	}
}

// TestRecycledEventNeverFiresOldCallback is the pool's safety property: an
// event that fired (or was cancelled and discarded) and then got recycled
// for a new Schedule call must run only the new callback, exactly once.
// Exercised with a seeded randomized schedule so recycling happens under
// realistic interleavings of fire, cancel, and re-schedule.
func TestRecycledEventNeverFiresOldCallback(t *testing.T) {
	e := NewEngine()
	rng := NewRNG(42)

	fires := make(map[int]int) // schedule id -> times fired
	cancelled := make(map[int]bool)
	next := 0
	var schedule func()
	schedule = func() {
		id := next
		next++
		ev := e.Schedule(Duration(rng.Intn(50)), "rand", func(*Engine) {
			fires[id]++
			// Half the firings schedule a replacement, keeping the
			// pool churning for the whole run.
			if id < 2000 && rng.Float64() < 0.5 {
				schedule()
			}
		})
		if rng.Float64() < 0.3 {
			ev.Cancel()
			cancelled[id] = true
		}
	}
	for i := 0; i < 500; i++ {
		schedule()
	}
	e.Run()

	if e.PoolSize() == 0 {
		t.Fatal("randomized run never recycled an event; test is vacuous")
	}
	for id := 0; id < next; id++ {
		want := 1
		if cancelled[id] {
			want = 0
		}
		if fires[id] != want {
			t.Fatalf("schedule %d fired %d times, want %d (cancelled=%v)",
				id, fires[id], want, cancelled[id])
		}
	}
}

// TestTimerRearm checks a Timer can be stopped and re-armed arbitrarily,
// fires its bound callback at the armed time, and never double-fires.
func TestTimerRearm(t *testing.T) {
	e := NewEngine()
	var fires []Time
	tm := e.NewTimer("t", func(e *Engine) { fires = append(fires, e.Now()) })
	if tm.Pending() {
		t.Fatal("new timer pending")
	}
	tm.Arm(10)
	if !tm.Pending() {
		t.Fatal("armed timer not pending")
	}
	tm.Arm(20) // re-arm replaces the pending deadline
	e.Run()
	if len(fires) != 1 || fires[0] != 20 {
		t.Fatalf("re-armed timer fired at %v, want exactly [20]", fires)
	}
	if tm.Pending() {
		t.Fatal("fired timer still pending")
	}
	tm.Arm(5)
	e.Run()
	if len(fires) != 2 || fires[1] != 25 {
		t.Fatalf("second arming fired at %v, want 25", fires)
	}
}

// TestTimerStop checks Stop removes the pending firing immediately and
// reports whether the timer was armed.
func TestTimerStop(t *testing.T) {
	e := NewEngine()
	fired := false
	tm := e.NewTimer("t", func(*Engine) { fired = true })
	tm.Arm(10)
	if !tm.Stop() {
		t.Fatal("Stop on armed timer returned false")
	}
	if tm.Stop() {
		t.Fatal("Stop on idle timer returned true")
	}
	e.Run()
	if fired {
		t.Fatal("stopped timer fired")
	}
	if got := e.Pending(); got != 0 {
		t.Fatalf("stopped timer left %d events queued", got)
	}
	// A stopped timer is immediately re-armable.
	tm.Arm(3)
	e.Run()
	if !fired {
		t.Fatal("re-armed timer did not fire")
	}
}

// TestTimerEventsNotPooled checks a Timer's pinned event never enters the
// free list: pooling it would let an unrelated Schedule call hijack an
// event the timer still owns.
func TestTimerEventsNotPooled(t *testing.T) {
	e := NewEngine()
	tm := e.NewTimer("t", func(*Engine) {})
	tm.Arm(1)
	e.Run()
	if got := e.PoolSize(); got != 0 {
		t.Fatalf("fired timer event entered the pool (PoolSize=%d)", got)
	}
}

// TestTimerFIFOWithEvents checks pinned timer events share the engine's
// (time, seq) ordering with pooled events: arming consumes a sequence
// number like Schedule does, so same-time events fire in arming order.
func TestTimerFIFOWithEvents(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Schedule(10, "a", func(*Engine) { order = append(order, "a") })
	tm := e.NewTimer("b", func(*Engine) { order = append(order, "b") })
	tm.Arm(10)
	e.Schedule(10, "c", func(*Engine) { order = append(order, "c") })
	e.Run()
	if got := len(order); got != 3 {
		t.Fatalf("fired %d events, want 3", got)
	}
	if order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("same-time firing order %v, want [a b c]", order)
	}
}

// TestScheduleSteadyStateZeroAlloc pins the engine's own hot path: once
// the pool is primed, a schedule→fire cycle allocates nothing.
func TestScheduleSteadyStateZeroAlloc(t *testing.T) {
	e := NewEngine()
	fn := func(*Engine) {}
	e.Schedule(1, "prime", fn)
	e.Run()
	allocs := testing.AllocsPerRun(100, func() {
		e.Schedule(1, "hot", fn)
		e.Run()
	})
	if allocs != 0 {
		t.Fatalf("schedule→fire cycle allocates %.1f times, want 0", allocs)
	}
}

// TestTimerSteadyStateZeroAlloc pins the Timer hot path: arm→fire and
// arm→stop cycles allocate nothing after construction.
func TestTimerSteadyStateZeroAlloc(t *testing.T) {
	e := NewEngine()
	tm := e.NewTimer("t", func(*Engine) {})
	allocs := testing.AllocsPerRun(100, func() {
		tm.Arm(1)
		e.Run()
		tm.Arm(5)
		tm.Stop()
	})
	if allocs != 0 {
		t.Fatalf("timer arm/fire/stop allocates %.1f times, want 0", allocs)
	}
}

// TestTickerSteadyStateZeroAlloc pins the Ticker hot path: a running
// ticker re-arms its one pinned event without allocating.
func TestTickerSteadyStateZeroAlloc(t *testing.T) {
	e := NewEngine()
	n := 0
	e.Every(1, 10, "tick", func(*Engine) { n++ })
	e.RunUntil(100) // prime
	var next Time = 100
	allocs := testing.AllocsPerRun(50, func() {
		next = next.Add(100)
		e.RunUntil(next)
	})
	if allocs != 0 {
		t.Fatalf("running ticker allocates %.1f times per 100 ticks, want 0", allocs)
	}
	if n == 0 {
		t.Fatal("ticker never fired")
	}
}
