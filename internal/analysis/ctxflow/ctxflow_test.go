package ctxflow_test

import (
	"testing"

	"vprobe/internal/analysis/ctxflow"
	"vprobe/internal/analysis/framework/analysistest"
)

func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), ctxflow.Analyzer, "ctxflow_a")
}
