package experiments

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vprobe/internal/metrics"
)

func sampleResult() *Result {
	r := &Result{ID: "sample", Title: "Sample"}
	r.Set("exec/vprobe", "soplex", 0.694)
	r.Set("exec/credit", "soplex", 1.0)
	t := metrics.NewTable("T", "a", "b")
	t.AddRow("x", "y")
	t.AddNote("n")
	r.Tables = append(r.Tables, t)
	return r
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleResult().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "series,label,value" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != 3 {
		t.Fatalf("rows = %d, want 3:\n%s", len(lines), out)
	}
	// Sorted: credit before vprobe.
	if !strings.HasPrefix(lines[1], "exec/credit,soplex,1") {
		t.Fatalf("first row = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "exec/vprobe,soplex,0.694") {
		t.Fatalf("second row = %q", lines[2])
	}
}

func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleResult().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		ID     string                        `json:"id"`
		Series map[string]map[string]float64 `json:"series"`
		Tables []struct {
			Title string     `json:"title"`
			Rows  [][]string `json:"rows"`
		} `json:"tables"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.ID != "sample" {
		t.Fatalf("id = %q", decoded.ID)
	}
	if decoded.Series["exec/vprobe"]["soplex"] != 0.694 {
		t.Fatalf("series = %v", decoded.Series)
	}
	if len(decoded.Tables) != 1 || decoded.Tables[0].Rows[0][0] != "x" {
		t.Fatalf("tables = %+v", decoded.Tables)
	}
}

func TestExportFiles(t *testing.T) {
	dir := t.TempDir()
	paths, err := sampleResult().Export(filepath.Join(dir, "results"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("paths = %v", paths)
	}
	for _, p := range paths {
		info, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if info.Size() == 0 {
			t.Fatalf("%s is empty", p)
		}
	}
}
