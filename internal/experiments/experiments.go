// Package experiments reproduces every table and figure of the paper's
// evaluation (§II-B Fig. 1, §IV-A Fig. 3, §V Figs. 4–8 and Table III, plus
// Table I's platform description) as runnable experiments, and adds
// ablation experiments for the design choices DESIGN.md calls out.
//
// Each experiment builds fresh simulations, runs them, and produces text
// tables mirroring the paper's rows/series plus a machine-readable Series
// map for tests and benchmarks. Absolute values are model outputs; the
// reproduction targets are the shapes (orderings, rough factors,
// crossovers), recorded per experiment in EXPERIMENTS.md.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"time"

	"vprobe/internal/harness"
	"vprobe/internal/metrics"
	"vprobe/internal/sched"
	"vprobe/internal/sim"
)

// Options control experiment execution.
type Options struct {
	// Seed drives every stochastic element; experiments are
	// deterministic given (Seed, Scale) — every per-scenario seed is
	// derived from this root, never from execution order, so results are
	// identical at any worker count.
	Seed uint64
	// Scale multiplies workload lengths; 1.0 is the full paper-sized
	// runs, smaller values shorten benches and tests. Values <= 0 are
	// replaced by DefaultScale.
	Scale float64
	// Horizon caps each simulation's virtual time.
	Horizon sim.Duration
	// Schedulers selects the policies to compare; nil means the paper's
	// five (Credit, vProbe, VCPU-P, LB, BRM).
	Schedulers []sched.Kind
	// Repeats averages each measurement over this many seeds (initial
	// placement is randomized, so single runs carry placement luck).
	Repeats int
	// Workers bounds the harness fan-out: the parallel scenario runs
	// inside an experiment and the parallel experiments inside RunSuite.
	// Values <= 0 mean GOMAXPROCS. Worker count never changes results.
	Workers int
	// Timeout caps each experiment's wall-clock time in RunSuite
	// (0 = no limit).
	Timeout time.Duration
	// Events, when non-nil, receives harness progress events (scenario
	// and experiment completions). The sink must be safe for concurrent
	// use; results never flow through it.
	Events harness.Sink
}

// emitScenario reports one finished simulation to the progress sink.
func (o Options) emitScenario(name string, end sim.Time) {
	if o.Events != nil {
		o.Events.Emit(harness.Event{
			Kind:      harness.EventScenarioFinished,
			Scenario:  name,
			SimMicros: int64(end),
		})
	}
}

// DefaultScale keeps full experiment suites in the tens of virtual seconds
// per simulation.
const DefaultScale = 0.35

// normalized fills in defaults.
func (o Options) normalized() Options {
	if o.Scale <= 0 {
		o.Scale = DefaultScale
	}
	if o.Horizon <= 0 {
		o.Horizon = 1200 * sim.Second
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if len(o.Schedulers) == 0 {
		o.Schedulers = sched.PaperOrder()
	}
	if o.Repeats <= 0 {
		o.Repeats = 3
	}
	return o
}

// Result is an experiment's output.
type Result struct {
	ID     string
	Title  string
	Tables []*metrics.Table
	// Series holds machine-readable values keyed "metric/scheduler"
	// then by row label, e.g. Series["exec/vprobe"]["soplex"].
	Series map[string]map[string]float64
}

// Set records one series point.
func (r *Result) Set(series, label string, v float64) {
	if r.Series == nil {
		r.Series = make(map[string]map[string]float64)
	}
	if r.Series[series] == nil {
		r.Series[series] = make(map[string]float64)
	}
	r.Series[series][label] = v
}

// Get reads one series point (0 when absent).
func (r *Result) Get(series, label string) float64 {
	return r.Series[series][label]
}

// String renders all tables.
func (r *Result) String() string {
	s := fmt.Sprintf("== %s: %s ==\n", r.ID, r.Title)
	for _, t := range r.Tables {
		s += "\n" + t.String()
	}
	return s
}

// Experiment is a runnable reproduction of one paper artifact.
type Experiment struct {
	ID    string
	Title string
	// Paper describes what the original artifact showed.
	Paper string
	// run executes the experiment; see Run and RunContext.
	run func(context.Context, Options) (*Result, error)
}

// Run executes the experiment without cancellation support; it is a thin
// wrapper over RunContext for callers that predate the context API.
func (e *Experiment) Run(opts Options) (*Result, error) {
	//vet:ctx compat wrapper for pre-context callers; a background context never cancels
	return e.run(context.Background(), opts)
}

// RunContext executes the experiment under ctx: cancelling the context (or
// exceeding its deadline) aborts the in-flight simulations promptly and
// returns an error wrapping the context's.
func (e *Experiment) RunContext(ctx context.Context, opts Options) (*Result, error) {
	return e.run(ctx, opts)
}

var registry = map[string]*Experiment{}

func register(e *Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("experiments: duplicate id " + e.ID)
	}
	registry[e.ID] = e
}

// ByID returns the experiment with the given id.
func ByID(id string) (*Experiment, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
	}
	return e, nil
}

// IDs lists registered experiment ids in sorted order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// All returns the experiments in id order.
func All() []*Experiment {
	var out []*Experiment
	for _, id := range IDs() {
		out = append(out, registry[id])
	}
	return out
}

// schedLabel is the row/column label for a policy kind.
func schedLabel(k sched.Kind) string { return string(k) }
