package mem

import (
	"math"
	"testing"

	"vprobe/internal/sim"
)

// TestMigratorStepCost pins the cost model: cycles charged equal the
// fraction of pages actually moved times footprint times the per-MB cost.
func TestMigratorStepCost(t *testing.T) {
	m := &Migrator{RatePerSecond: 0.5, CostPerMBCycles: 2e6, MinRemoteFraction: 0.1}
	d := Dist{0.2, 0.8}
	remote := d.RemoteFraction(0) // 0.8
	elapsed := sim.Second / 2     // frac = 0.5 * 0.5 = 0.25
	moved := remote * 0.25
	want := moved * 1000 * m.CostPerMBCycles
	got := m.Step(d, 0, elapsed, 1000)
	if math.Abs(got-want) > 1e-6*want {
		t.Fatalf("Step cycles = %g, want %g", got, want)
	}
	// Cost scales linearly with footprint.
	d2 := Dist{0.2, 0.8}
	if got2 := m.Step(d2, 0, elapsed, 2000); math.Abs(got2-2*want) > 1e-6*want {
		t.Fatalf("2x footprint cost = %g, want %g", got2, 2*want)
	}
}

// TestMigratorStepFractionClamp asserts a long elapsed time moves at most
// all remote pages: the move fraction clamps at 1 and the cost clamps with
// it.
func TestMigratorStepFractionClamp(t *testing.T) {
	m := &Migrator{RatePerSecond: 0.2, CostPerMBCycles: 1e6, MinRemoteFraction: 0.05}
	d := Dist{0.4, 0.6}
	remote := d.RemoteFraction(0)
	// 100 s at 0.2/s is frac 20 — clamped to 1, so exactly the remote
	// pages move and the dist lands fully on the target node.
	got := m.Step(d, 0, 100*sim.Second, 500)
	want := remote * 500 * m.CostPerMBCycles
	if math.Abs(got-want) > 1e-6*want {
		t.Fatalf("clamped cost = %g, want %g", got, want)
	}
	if math.Abs(d[0]-1) > 1e-9 {
		t.Fatalf("full shift left dist %v", d)
	}
}

// TestMigratorMinRemoteGate asserts the churn gate: exactly at the
// threshold migration still runs, just below it nothing moves.
func TestMigratorMinRemoteGate(t *testing.T) {
	m := &Migrator{RatePerSecond: 1, CostPerMBCycles: 1e6, MinRemoteFraction: 0.30}
	at := Dist{0.70, 0.30}
	if c := m.Step(at, 0, sim.Second, 100); c <= 0 {
		t.Fatal("remote fraction == threshold should migrate")
	}
	below := Dist{0.71, 0.29}
	if c := m.Step(below, 0, sim.Second, 100); c != 0 || below[0] != 0.71 {
		t.Fatalf("below threshold migrated: cycles=%v dist=%v", c, below)
	}
}

// TestFullCopyCycles pins the inter-host transfer term used by the cluster
// rebalancer's blackout model.
func TestFullCopyCycles(t *testing.T) {
	m := DefaultMigrator()
	if got, want := m.FullCopyCycles(1), m.CostPerMBCycles; got != want {
		t.Fatalf("FullCopyCycles(1) = %g, want %g", got, want)
	}
	// Linear in footprint.
	if m.FullCopyCycles(4096) != 4096*m.CostPerMBCycles {
		t.Fatal("FullCopyCycles not linear in footprint")
	}
	// Non-positive footprints charge nothing.
	if m.FullCopyCycles(0) != 0 || m.FullCopyCycles(-512) != 0 {
		t.Fatal("non-positive footprint charged")
	}
	// Nil migrator charges nothing (migration disabled).
	var nilM *Migrator
	if nilM.FullCopyCycles(4096) != 0 {
		t.Fatal("nil migrator charged cycles")
	}
}
