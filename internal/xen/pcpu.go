package xen

import (
	"vprobe/internal/core"
	"vprobe/internal/numa"
	"vprobe/internal/sim"
)

// PCPU is a physical CPU with its own run queue, as in the Credit
// scheduler. Workload is the paper's per-PCPU queue-length counter
// (§IV-B): incremented on insert, decremented on remove.
type PCPU struct {
	ID   numa.CPUID
	Node numa.NodeID

	// queue holds runnable VCPUs in priority order: all UNDER before
	// all OVER, FIFO within a class.
	queue []*VCPU

	Current  *VCPU
	lastVCPU *VCPU // previous occupant, for context-switch detection

	// flight is the in-progress quantum (active when flight.v != nil),
	// kept so a BOOST wakeup can preempt it mid-way and account the
	// truncated work. Embedded by value and reused across quanta.
	flight flight

	// quantum is the reusable end-of-quantum timer, bound to this PCPU's
	// endQuantum at construction so dispatch never allocates a closure.
	quantum *sim.Timer

	// kickFn is the pre-bound "re-run the scheduler on this PCPU"
	// callback shared by boot and kick events.
	kickFn func(*sim.Engine)

	// stealScratch is QueueViews' reusable per-PCPU candidate buffer.
	stealScratch []core.RunnableVCPU

	Workload int

	idle      bool
	IdleSince sim.Time
	IdleTime  sim.Duration
	BusyTime  sim.Duration
}

// QueueLen returns the number of waiting (not running) VCPUs.
func (p *PCPU) QueueLen() int { return len(p.queue) }

// Queue returns the waiting VCPUs in queue order (shared slice; callers
// must not mutate).
func (p *PCPU) Queue() []*VCPU { return p.queue }

// Enqueue inserts v into the run queue according to its priority (BOOST
// before UNDER before OVER, FIFO within a class).
func (p *PCPU) Enqueue(v *VCPU) {
	v.State = StateRunnable
	v.OnPCPU = p.ID
	pos := len(p.queue)
	for i, q := range p.queue {
		if q.Priority > v.Priority {
			pos = i
			break
		}
	}
	p.queue = append(p.queue, nil) //vet:alloc queue grows to resident VCPU count during warmup, then slots are reused
	copy(p.queue[pos+1:], p.queue[pos:])
	p.queue[pos] = v
	p.Workload++
}

// PeekHead returns the queue head without removing it, or nil.
func (p *PCPU) PeekHead() *VCPU {
	if len(p.queue) == 0 {
		return nil
	}
	return p.queue[0]
}

// Dequeue removes and returns the queue head, or nil.
func (p *PCPU) Dequeue() *VCPU {
	if len(p.queue) == 0 {
		return nil
	}
	v := p.queue[0]
	copy(p.queue, p.queue[1:])
	p.queue[len(p.queue)-1] = nil
	p.queue = p.queue[:len(p.queue)-1]
	p.Workload--
	return v
}

// Remove extracts a specific VCPU from the queue; it returns false if the
// VCPU is not queued here.
func (p *PCPU) Remove(v *VCPU) bool {
	for i, q := range p.queue {
		if q == v {
			copy(p.queue[i:], p.queue[i+1:])
			p.queue[len(p.queue)-1] = nil
			p.queue = p.queue[:len(p.queue)-1]
			p.Workload--
			return true
		}
	}
	return false
}

// Stealable returns the queued VCPUs another PCPU may take: everything
// runnable and not pinned. It allocates a fresh slice per call, so the
// steal hot paths iterate the queue with QueueAt/CanSteal instead; this
// form remains for tests and external inspection.
func (p *PCPU) Stealable() []*VCPU {
	var out []*VCPU
	for _, v := range p.queue {
		if v.CanSteal() {
			out = append(out, v)
		}
	}
	return out
}

// QueueAt returns the i-th waiting VCPU (queue order, no bounds check
// beyond the slice's own). Allocation-free companion to Queue().
func (p *PCPU) QueueAt(i int) *VCPU { return p.queue[i] }

// CanSteal reports whether another PCPU may take this queued VCPU
// (i.e. it is not hard-pinned).
func (v *VCPU) CanSteal() bool { return v.PinnedPCPU < 0 }

// Idle reports whether nothing is running here.
func (p *PCPU) Idle() bool { return p.Current == nil }
