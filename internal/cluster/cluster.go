// Package cluster is the datacenter layer above internal/xen: N
// independent hosts — each a full hypervisor simulation with its own NUMA
// topology, per-host scheduler, and seeded RNG — receiving a dynamic
// stream of VM arrivals and departures. Placement runs through a
// kube-style two-phase Filter/Score plugin pipeline (see Pipeline) with
// pluggable named policies; rejected VMs retry with linear backoff; and a
// rebalancer live-migrates VMs off hosts whose aggregate LLC pressure or
// remote-access ratio crosses a threshold, pricing each move by the VM's
// memory footprint.
//
// Determinism: the cluster owns one discrete-event engine for
// cluster-level events (arrivals, retries, departures, rebalance ticks,
// migration completions). Between consecutive cluster events the hosts are
// mutually independent, so the cluster advances all host engines to the
// decision time in parallel (harness.Map) before any decision reads host
// state — results are byte-identical at every worker count. Host seeds
// derive from the cluster seed by name (harness.DeriveSeed), so adding a
// host never reshuffles the others' streams.
package cluster

import (
	"context"
	"errors"
	"fmt"

	"vprobe/internal/controlplane"
	"vprobe/internal/harness"
	"vprobe/internal/mem"
	"vprobe/internal/sched"
	"vprobe/internal/sim"
	"vprobe/internal/telemetry"
	"vprobe/internal/workload"
	"vprobe/internal/xen"
)

// Config parameterises a cluster run. Zero values select the defaults
// noted on each field.
type Config struct {
	// Hosts is the host count (default 4).
	Hosts int
	// Topology is the NUMA preset name or topology JSON path every host
	// uses (default "xeon-e5620").
	Topology string
	// Scheduler is the per-host scheduling policy (default credit).
	Scheduler sched.Kind
	// Policy is the placement policy name (default "numa"; see Policies).
	Policy string
	// Seed drives arrivals, workload mixes, and per-host streams
	// (default 1).
	Seed uint64
	// ArrivalsPerSecond is the Poisson arrival rate (default 0.35).
	ArrivalsPerSecond float64
	// MeanLifetime is the mean of the exponential VM lifetime, measured
	// from first placement (default 60 s).
	MeanLifetime sim.Duration
	// Horizon is the simulated duration of the run (default 300 s).
	Horizon sim.Duration
	// Workers bounds the goroutines advancing hosts in parallel
	// (<= 0 means GOMAXPROCS).
	Workers int
	// Mix selects the workload mix: "mixed" (default), "batch", or
	// "server".
	Mix string
	// MaxRetries is how many placement retries a VM gets before it is
	// rejected for good (default 3).
	MaxRetries int
	// RetryBackoff is the base retry delay; attempt k waits k*backoff
	// (default 5 s).
	RetryBackoff sim.Duration
	// RebalancePeriod is the rebalancer tick (default 10 s; < 0
	// disables).
	RebalancePeriod sim.Duration
	// LLCPressureLimit triggers migration off a host whose per-socket
	// LLC pressure sum exceeds it (default 50, ~2.5 thrashing apps per
	// socket).
	LLCPressureLimit float64
	// RemoteRatioLimit triggers migration off a host whose remote-access
	// ratio over the last rebalance interval exceeds it (default 0.45).
	RemoteRatioLimit float64
	// MigrationCooldown is the minimum time after a VM's (re)placement
	// before the rebalancer may move it (default 2*RebalancePeriod).
	MigrationCooldown sim.Duration
	// Overcommit is the VCPU overcommit factor per host (default 3.0).
	Overcommit float64
	// Preempt lets above-best-effort arrivals evict a minimal set of
	// strictly-lower-priority VMs when no host fits them outright
	// (default off). Victims are live-migrated when any other host fits
	// them, else killed and requeued with their remaining lifetime.
	Preempt bool
	// Gang admits multi-VM groups all-or-nothing (default off). With Gang
	// off, gang-generated members are admitted independently — the
	// arrival stream is identical either way, which is what makes
	// mechanism comparisons equal-load.
	Gang bool
	// GangFraction is the probability an arrival is a whole gang of
	// GangSize VMs rather than a single VM (default 0: no gangs).
	GangFraction float64
	// GangSize is the number of VMs per generated gang (default 3).
	GangSize int
	// Backfill lets a strictly smaller, strictly lower-priority single VM
	// jump the blocked admission queue into a fragmentation hole when the
	// shadow-placement check proves the jump cannot delay the blocked
	// head (default off).
	Backfill bool
	// DeschedulePeriod is the descheduler tick (default 0: disabled). Each
	// tick may drain one near-empty host during low load, consolidating
	// fragmented free memory.
	DeschedulePeriod sim.Duration
	// DescheduleUtilLimit gates the descheduler: it runs only while the
	// cluster-wide VCPU commitment fraction is at or below this limit
	// (default 0.4).
	DescheduleUtilLimit float64
	// Arrival selects and parameterises the arrival generator (default:
	// Poisson at ArrivalsPerSecond). See ArrivalConfig.
	Arrival ArrivalConfig
	// ArrivalSink, when set, receives one trace record per arriving VM,
	// in arrival order — a run's offered load exported in the replayable
	// JSONL schema. Attaching a sink never changes simulation results.
	ArrivalSink func(TraceArrival)
	// PlaceCheck cross-validates every incremental placement decision
	// against a full rescan of freshly built views and stops the run on
	// the first divergence (default off; costs O(hosts) per decision).
	PlaceCheck bool
	// Events, when set, receives cluster-scoped events.
	Events func(Event)
	// Telemetry, when set, collects the cluster's metric series:
	// admission/migration gauges plus every host's full xen series tagged
	// host="hostN". The sampler must be fresh (not yet started); Run
	// starts it on the cluster engine. Attaching telemetry never changes
	// simulation results.
	Telemetry *telemetry.Sampler
	// Spans, when set, records the placement flight recorder: VM
	// lifecycle, placement decisions with per-plugin filter/score
	// provenance, and migration/preemption/gang/backfill/deschedule
	// chains (see spans.go). The tracer must be fresh. Attaching spans
	// never changes simulation results: recording is read-only over
	// model state and happens only on the cluster engine goroutine, so
	// both the simulation output and the span file are byte-identical at
	// every worker count.
	Spans *telemetry.Tracer
}

// normalized fills defaults.
func (c Config) normalized() Config {
	if c.Hosts <= 0 {
		c.Hosts = 4
	}
	if c.Topology == "" {
		c.Topology = "xeon-e5620"
	}
	if c.Scheduler == "" {
		c.Scheduler = sched.KindCredit
	}
	if c.Policy == "" {
		c.Policy = "numa"
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.ArrivalsPerSecond <= 0 {
		c.ArrivalsPerSecond = 0.35
	}
	if c.MeanLifetime <= 0 {
		c.MeanLifetime = 60 * sim.Second
	}
	if c.Horizon <= 0 {
		c.Horizon = 300 * sim.Second
	}
	if c.Mix == "" {
		c.Mix = "mixed"
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 3
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 5 * sim.Second
	}
	if c.RebalancePeriod == 0 {
		c.RebalancePeriod = 10 * sim.Second
	}
	if c.LLCPressureLimit <= 0 {
		c.LLCPressureLimit = 50
	}
	if c.RemoteRatioLimit <= 0 {
		c.RemoteRatioLimit = 0.45
	}
	if c.MigrationCooldown <= 0 && c.RebalancePeriod > 0 {
		c.MigrationCooldown = 2 * c.RebalancePeriod
	}
	if c.Overcommit <= 0 {
		c.Overcommit = 3.0
	}
	if c.GangFraction < 0 {
		c.GangFraction = 0
	}
	if c.GangFraction > 1 {
		c.GangFraction = 1
	}
	if c.GangSize <= 0 {
		c.GangSize = 3
	}
	if c.DescheduleUtilLimit <= 0 {
		c.DescheduleUtilLimit = 0.4
	}
	c.Arrival = c.Arrival.normalized(c.Horizon)
	return c
}

// Cluster is one multi-host simulation.
type Cluster struct {
	cfg      Config
	engine   *sim.Engine
	arrRNG   *sim.RNG // arrival process and lifetimes
	mixRNG   *sim.RNG // VM composition (size class, workloads)
	hosts    []*Host
	pipeline *Pipeline
	migrator *mem.Migrator
	vms      []*VM

	// queue is the admission queue of pending units (see controlplane.go);
	// unitSeq numbers units in creation order for the final tiebreak.
	// gangSeq numbers generated gangs: it advances with the generator, not
	// the admission machinery, so group names are mechanism-independent.
	queue   []*admitUnit
	unitSeq int
	gangSeq int
	// tel is the telemetry handle set (nil when telemetry is off).
	tel *clusterTelemetry
	// spans is the flight recorder (nil when span tracing is off).
	spans *clusterSpans

	// Incremental placement engine state (incremental.go, scorecache.go):
	// viewSlice[i] points at hosts[i].view and never changes after New;
	// refreshList holds the hosts that may need a view refresh; scores is
	// the per-class score cache; oneView is the reusable single-host
	// slice for restricted Place calls.
	viewSlice   []*HostView
	refreshList []*Host
	scores      *scoreCache
	oneView     [1]*HostView

	// Per-tick scratch, reused per the caller-owned-scratch convention:
	// rebalance's hot flags and cool-view list, evictVictim's alternative
	// views, and the queue-drain order.
	hotScratch   []bool
	coolScratch  []*HostView
	altScratch   []*HostView
	orderScratch []*admitUnit

	// traceProfiles[i] holds the pre-resolved workload profiles of
	// Arrival.Trace[i], validated at New so replay cannot fail mid-run;
	// traceNext is the next unscheduled trace record.
	traceProfiles [][]*workload.Profile
	traceNext     int

	stats struct {
		Arrivals      int
		Placed        int
		Retries       int
		Rejected      int
		Departed      int
		Migrations    int
		Preemptions   int
		PreemptKills  int
		GangsAdmitted int
		Backfills     int
		DeschedMoves  int
	}
	// pstats tracks admission outcomes per priority class, indexed by
	// controlplane.Priority.
	pstats [3]priorityStats

	ctx      context.Context
	err      error // first host-advance failure; stops the run
	ran      bool  // Run consumes the value; see ErrAlreadyRun
	syncedTo sim.Time
}

// ErrAlreadyRun: Run was invoked twice on the same Cluster value. The
// public vprobe.ErrAlreadyRun mirrors this guard for Simulator.
var ErrAlreadyRun = errors.New("cluster: cluster already consumed by a run")

// New validates the configuration and builds the hosts (each started with
// zero domains — VMs arrive dynamically during Run).
func New(cfg Config) (*Cluster, error) {
	cfg = cfg.normalized()
	pipeline, err := NewPipeline(cfg.Policy)
	if err != nil {
		return nil, err
	}
	if cfg.Mix != "mixed" && cfg.Mix != "batch" && cfg.Mix != "server" {
		return nil, fmt.Errorf("cluster: unknown mix %q (have mixed, batch, server)", cfg.Mix)
	}
	if err := cfg.Arrival.validate(); err != nil {
		return nil, err
	}
	root := sim.NewRNG(cfg.Seed)
	c := &Cluster{
		cfg:      cfg,
		engine:   sim.NewEngine(),
		arrRNG:   root.Fork(1),
		mixRNG:   root.Fork(2),
		pipeline: pipeline,
		migrator: mem.DefaultMigrator(),
	}
	for i := 0; i < cfg.Hosts; i++ {
		ho, err := newHost(i, cfg.Topology, cfg.Scheduler,
			harness.DeriveSeed(cfg.Seed, "host", fmt.Sprintf("host%d", i)))
		if err != nil {
			return nil, err
		}
		c.hosts = append(c.hosts, ho)
	}
	c.scores = newScoreCache(c)
	c.viewSlice = make([]*HostView, len(c.hosts))
	for i, ho := range c.hosts {
		ho.initView(cfg.Overcommit)
		c.refreshHost(ho)
		c.viewSlice[i] = &ho.view
	}
	if cfg.Arrival.Process == ArrivalTrace {
		c.traceProfiles = make([][]*workload.Profile, len(cfg.Arrival.Trace))
		for i, rec := range cfg.Arrival.Trace {
			profs, err := resolveProfiles(rec.Profiles)
			if err != nil {
				return nil, fmt.Errorf("cluster: arrival trace record %d: %w", i, err)
			}
			c.traceProfiles[i] = profs
		}
	}
	if cfg.Telemetry != nil {
		c.attachTelemetry(cfg.Telemetry)
	}
	if cfg.Spans != nil {
		c.attachSpans(cfg.Spans)
	}
	return c, nil
}

// Run drives the cluster to its horizon and returns the report. It may be
// called once.
func (c *Cluster) Run(ctx context.Context) (*Report, error) {
	if c.ran {
		return nil, fmt.Errorf("%w: build a fresh Cluster per run", ErrAlreadyRun)
	}
	// Running consumes the value: arrivals, host engines, and telemetry
	// all advance monotonically, so a second Run would continue from —
	// and corrupt — this run's state.
	c.ran = true
	c.ctx = ctx
	if c.cfg.Telemetry != nil {
		// Size the sample ring to the horizon so it never wraps and the
		// export covers the whole run.
		c.cfg.Telemetry.Reserve(int(c.cfg.Horizon/c.cfg.Telemetry.Period()) + 2)
		c.cfg.Telemetry.Start(c.engine)
	}
	if c.cfg.Arrival.Process == ArrivalTrace {
		c.scheduleTraceArrivals()
	} else {
		c.scheduleNextArrival()
	}
	if c.cfg.RebalancePeriod > 0 {
		c.engine.Every(c.cfg.RebalancePeriod, c.cfg.RebalancePeriod, "rebalance",
			func(*sim.Engine) { c.rebalance() })
	}
	if c.cfg.DeschedulePeriod > 0 {
		c.engine.Every(c.cfg.DeschedulePeriod, c.cfg.DeschedulePeriod, "deschedule",
			func(*sim.Engine) { c.deschedule() })
	}
	if _, err := c.engine.RunUntilContext(ctx, sim.Time(c.cfg.Horizon)); err != nil {
		return nil, err
	}
	if c.err != nil {
		return nil, c.err
	}
	// Hosts last synced at the final cluster event; play them out to the
	// horizon so the report covers the full interval.
	if err := c.syncHosts(sim.Time(c.cfg.Horizon)); err != nil {
		return nil, err
	}
	// Close still-open spans (running VMs, in-flight migrations) at the
	// horizon so the span file never contains open intervals.
	c.spans.closeRun(sim.Time(c.cfg.Horizon))
	return c.report(), nil
}

// syncHosts advances every host engine to absolute time t, in parallel
// across the configured workers. Hosts are mutually independent between
// cluster events, so the advance order cannot affect results.
func (c *Cluster) syncHosts(t sim.Time) error {
	if t <= c.syncedTo {
		return nil
	}
	_, err := harness.Map(c.ctx, c.cfg.Workers, len(c.hosts),
		func(ctx context.Context, i int) (struct{}, error) {
			return struct{}{}, c.hosts[i].advanceTo(ctx, t)
		})
	if err != nil {
		c.err = err
		c.engine.Stop()
		return err
	}
	c.syncedTo = t
	return nil
}

// sync brings hosts current before a handler reads or mutates host state.
// It reports false when the run is already failing and the handler should
// bail.
func (c *Cluster) sync() bool {
	if c.err != nil {
		return false
	}
	return c.syncHosts(c.engine.Now()) == nil
}

// scheduleNextArrival arms the next generated arrival (Poisson, diurnal,
// or flash-crowd; trace replay schedules everything upfront instead).
func (c *Cluster) scheduleNextArrival() {
	wait := c.nextArrivalWait()
	if wait < sim.Microsecond {
		wait = sim.Microsecond
	}
	c.engine.Schedule(wait, "arrival", func(*sim.Engine) {
		c.onArrival()
		c.scheduleNextArrival()
	})
}

// onArrival admits one new request: a single VM, or — when GangFraction
// rolls it — a whole gang sharing one priority class. Lifetimes are drawn
// here, at arrival, so the offered load is byte-identical whatever the
// admission mechanisms later do with each request.
func (c *Cluster) onArrival() {
	if !c.sync() {
		return
	}
	now := c.engine.Now()
	members := 1
	gang := false
	if c.cfg.GangFraction > 0 && c.mixRNG.Float64() < c.cfg.GangFraction {
		gang = true
		members = c.cfg.GangSize
	}
	prio := c.drawPriority()
	group := ""
	if gang {
		group = fmt.Sprintf("g%03d", c.gangSeq)
		c.gangSeq++
	}
	vms := make([]*VM, 0, members)
	for i := 0; i < members; i++ {
		spec, refs := c.nextSpec()
		spec.Priority = prio
		spec.Group = group
		vm := &VM{
			ID:       len(c.vms),
			Spec:     spec,
			arriveAt: now,
			life:     c.drawLife(),
		}
		c.vms = append(c.vms, vm)
		vms = append(vms, vm)
		c.stats.Arrivals++
		c.pstats[prio].Arrivals++
		c.recordArrival(vm, refs)
		c.spans.vmArrive(vm)
		c.emit(EventVMArrive, nil, vm, "vm %s arrives: %d MB, %d vcpus, %s%s",
			spec.Name, spec.MemoryMB, spec.VCPUs, prio, gangTag(group))
	}
	if gang && c.cfg.Gang {
		// One all-or-nothing unit.
		c.enqueue(&admitUnit{id: c.unitSeq, vms: vms, gang: true,
			priority: prio, arriveAt: now, nextTry: now})
		c.unitSeq++
	} else {
		// Independent units (gang semantics off: members fend for
		// themselves, same offered load).
		for _, vm := range vms {
			c.enqueue(&admitUnit{id: c.unitSeq, vms: []*VM{vm},
				priority: prio, arriveAt: now, nextTry: now})
			c.unitSeq++
		}
	}
	c.drainQueue()
}

// gangTag renders the gang suffix of an arrival event.
func gangTag(group string) string {
	if group == "" {
		return ""
	}
	return ", gang " + group
}

// priorityWeights is the class mix of generated arrivals: mostly standard,
// a thick best-effort tail, and a critical head.
var priorityWeights = []float64{0.35, 0.45, 0.20}

// drawPriority picks the admission class of one arriving unit.
func (c *Cluster) drawPriority() controlplane.Priority {
	return controlplane.Priority(c.mixRNG.Pick(priorityWeights))
}

// drawLife draws one VM lifetime.
func (c *Cluster) drawLife() sim.Duration {
	life := sim.Duration(c.arrRNG.Exp(float64(c.cfg.MeanLifetime)))
	if life < sim.Second {
		life = sim.Second
	}
	return life
}

// sizeClasses are the VM shapes the generator draws from.
var sizeClasses = []struct {
	memMB  int64
	vcpus  int
	weight float64
}{
	{2 * 1024, 2, 0.50},
	{4 * 1024, 4, 0.35},
	{8 * 1024, 8, 0.15},
}

// batchNames is the pool of batch workloads for the mixed and batch mixes.
var batchNames = []string{"soplex", "mcf", "milc", "libquantum", "lu", "mg", "bt", "cg", "sp"}

// nextSpec draws one VM request from the configured mix. refs names the
// drawn workloads in the trace schema; it is built only when an
// ArrivalSink wants the stream exported.
func (c *Cluster) nextSpec() (VMSpec, []string) {
	weights := make([]float64, len(sizeClasses))
	for i, sc := range sizeClasses {
		weights[i] = sc.weight
	}
	sc := sizeClasses[c.mixRNG.Pick(weights)]
	spec := VMSpec{
		Name:     fmt.Sprintf("vm%03d", len(c.vms)),
		MemoryMB: sc.memMB,
		VCPUs:    sc.vcpus,
	}
	var refs []string
	if c.cfg.ArrivalSink != nil {
		refs = make([]string, 0, sc.vcpus)
	}
	for i := 0; i < sc.vcpus; i++ {
		ref := c.drawProfileRef()
		spec.Profiles = append(spec.Profiles, ref.resolve())
		if refs != nil {
			refs = append(refs, ref.String())
		}
	}
	return spec, refs
}

// drawProfileRef picks one per-VCPU workload according to the mix. It
// consumes exactly the RNG draws the pre-trace generator did, so adding
// the exportable ref changed no byte of any existing run.
func (c *Cluster) drawProfileRef() profileRef {
	server := func() profileRef {
		if c.mixRNG.Intn(2) == 0 {
			conc := []int{16, 64, 128}[c.mixRNG.Intn(3)]
			return profileRef{kind: refMemcached, param: conc}
		}
		conns := []int{1000, 2000, 4000}[c.mixRNG.Intn(3)]
		return profileRef{kind: refRedis, param: conns}
	}
	batch := func() profileRef {
		return profileRef{kind: refBatch, name: batchNames[c.mixRNG.Intn(len(batchNames))]}
	}
	switch c.cfg.Mix {
	case "batch":
		return batch()
	case "server":
		return server()
	default: // mixed
		if c.mixRNG.Float64() < 0.30 {
			return server()
		}
		return batch()
	}
}

// admitDomain builds, binds, and activates the VM's domain on a host. An
// AddDomain failure is returned to the caller — reserve-phase arithmetic
// is an estimate and may lag the allocator — while attach and activate
// failures are accounting bugs and stop the run.
func (c *Cluster) admitDomain(vm *VM, ho *Host, plan MemPlan) (*xen.Domain, error) {
	dom, err := ho.H.AddDomain(vm.Spec.Name, vm.Spec.MemoryMB, vm.Spec.VCPUs,
		plan.Policy, plan.Preferred)
	if err != nil {
		return nil, err // a failed AddDomain mutates nothing: no dirtying
	}
	c.markDirty(ho)
	for i, p := range vm.Spec.Profiles {
		if p == nil {
			continue
		}
		if _, err := ho.H.AttachApp(dom, i, p.Clone()); err != nil {
			c.err = fmt.Errorf("cluster: attach on %s: %w", ho.Name, err)
			c.engine.Stop()
			return nil, err
		}
	}
	if err := ho.H.ActivateDomain(dom); err != nil {
		c.err = fmt.Errorf("cluster: activate on %s: %w", ho.Name, err)
		c.engine.Stop()
		return nil, err
	}
	return dom, nil
}

// placeOn admits a VM whose host the pipeline approved against live views,
// so an allocator-level failure here is a pipeline/accounting bug worth
// surfacing loudly.
func (c *Cluster) placeOn(vm *VM, ho *Host, plan MemPlan, attempt int) {
	dom, err := c.admitDomain(vm, ho, plan)
	if err != nil {
		if c.err == nil {
			c.err = fmt.Errorf("cluster: place %s on %s: %w", vm.Spec.Name, ho.Name, err)
			c.engine.Stop()
		}
		return
	}
	c.finalizePlacement(vm, ho, dom, plan, attempt)
}

// finalizePlacement records a successful placement: VM state, per-class
// wait statistics (first admission only), the place event, and the
// departure timer armed with the lifetime drawn at arrival.
func (c *Cluster) finalizePlacement(vm *VM, ho *Host, dom *xen.Domain, plan MemPlan, attempt int) {
	vm.Host = ho
	vm.dom = dom
	vm.state = stateRunning
	vm.placedAt = c.engine.Now()
	ho.VMs = append(ho.VMs, vm)
	ho.Placed++
	c.markDirty(ho)
	c.stats.Placed++
	if !vm.admitted {
		vm.admitted = true
		wait := c.engine.Now().Sub(vm.arriveAt)
		ps := &c.pstats[vm.Spec.Priority]
		ps.Placed++
		ps.WaitTotal += wait
		if c.tel != nil {
			c.tel.waitHist[vm.Spec.Priority].Observe(wait.Seconds())
		}
	}
	c.emit(EventVMPlace, ho, vm,
		"vm %s placed on %s (%s memory, %s, attempt %d)",
		vm.Spec.Name, ho.Name, plan.Policy, vm.Spec.Priority, attempt)
	if vm.departAt == 0 {
		life := vm.life
		if life < sim.Second {
			life = sim.Second
		}
		vm.departAt = c.engine.Now().Add(life)
		seq := vm.departSeq
		c.engine.Schedule(life, "depart", func(*sim.Engine) {
			if vm.departSeq == seq {
				c.onDepart(vm)
			}
		})
	}
}

// onDepart ends a VM's lifetime: its domain is destroyed (freeing memory)
// wherever it currently is — even mid-migration, in which case the
// migration completion becomes a no-op.
func (c *Cluster) onDepart(vm *VM) {
	if vm.state != stateRunning && vm.state != stateMigrating {
		return
	}
	if !c.sync() {
		return
	}
	if !vm.dom.Destroyed {
		if err := vm.Host.H.DestroyDomain(vm.dom); err != nil {
			c.err = fmt.Errorf("cluster: depart %s: %w", vm.Spec.Name, err)
			c.engine.Stop()
			return
		}
	}
	vm.Host.removeVM(vm)
	c.markDirty(vm.Host)
	vm.state = stateDeparted
	c.stats.Departed++
	c.spans.depart(vm)
	c.emit(EventVMDepart, vm.Host, vm, "vm %s departs %s after %v",
		vm.Spec.Name, vm.Host.Name, c.engine.Now().Sub(vm.arriveAt))
	// The teardown freed capacity; give the queue a shot at it.
	c.drainQueue()
}

// rebalance scans for overloaded hosts and migrates at most one VM off
// each per tick. It reads the cached views (refreshed for exactly the
// dirty hosts) and reuses the per-tick scratch instead of rebuilding
// views, hot, and coolViews every tick.
func (c *Cluster) rebalance() {
	if !c.sync() {
		return
	}
	views := c.liveViews()
	if c.hotScratch == nil {
		c.hotScratch = make([]bool, len(c.hosts))
		c.coolScratch = make([]*HostView, 0, len(c.hosts))
	}
	hot := c.hotScratch
	for i, ho := range c.hosts {
		hot[i] = views[i].LLCPressure > c.cfg.LLCPressureLimit ||
			ho.intervalRemoteRatio() > c.cfg.RemoteRatioLimit
	}
	// Only cool hosts may receive migrations.
	coolViews := c.coolScratch[:0]
	for i, hv := range views {
		if !hot[i] {
			coolViews = append(coolViews, hv)
		}
	}
	c.coolScratch = coolViews[:0]
	for i, ho := range c.hosts {
		if !hot[i] || len(coolViews) == 0 {
			continue
		}
		vm := c.migrationCandidate(ho)
		if vm == nil {
			continue
		}
		hv, plan, err := c.pipeline.Place(&vm.Spec, coolViews)
		if err != nil {
			continue // nowhere to move it this tick
		}
		c.startMigration(vm, c.hosts[hv.Index], plan)
	}
}

// migrationCandidate picks the VM contributing the most LLC pressure on
// the host, skipping VMs already migrating or inside the cooldown window.
func (c *Cluster) migrationCandidate(ho *Host) *VM {
	now := c.engine.Now()
	var best *VM
	var bestPressure float64
	for _, vm := range ho.VMs {
		if vm.state != stateRunning {
			continue
		}
		if now.Sub(vm.placedAt) < c.cfg.MigrationCooldown {
			continue
		}
		var pressure float64
		for _, v := range vm.dom.VCPUs {
			if !v.Runnable() {
				continue
			}
			if ph := v.Phase(); ph != nil {
				pressure += ph.RPTI
			}
		}
		if best == nil || pressure > bestPressure {
			best, bestPressure = vm, pressure
		}
	}
	if best == nil || bestPressure <= 0 {
		return nil
	}
	return best
}

// startMigration moves a VM between hosts: the target domain is built
// immediately (reserving memory) with the source's remaining work, the
// source domain is destroyed, and the VM resumes on the target after a
// blackout priced from its memory footprint via the page-migration cost
// model (mem.Migrator.FullCopyCycles).
func (c *Cluster) startMigration(vm *VM, target *Host, plan MemPlan) {
	profiles := vm.migrationProfiles()
	dom, err := target.H.AddDomain(vm.Spec.Name, vm.Spec.MemoryMB, vm.Spec.VCPUs,
		plan.Policy, plan.Preferred)
	if err != nil {
		return // capacity moved under us; skip this tick
	}
	c.markDirty(target)
	for i, p := range profiles {
		if p == nil {
			continue
		}
		if _, err := target.H.AttachApp(dom, i, p); err != nil {
			c.err = fmt.Errorf("cluster: migrate attach on %s: %w", target.Name, err)
			c.engine.Stop()
			return
		}
	}
	src := vm.Host
	if err := src.H.DestroyDomain(vm.dom); err != nil {
		c.err = fmt.Errorf("cluster: migrate teardown on %s: %w", src.Name, err)
		c.engine.Stop()
		return
	}
	src.removeVM(vm)
	c.markDirty(src)
	vm.Host = target
	vm.dom = dom
	vm.state = stateMigrating
	vm.Migrations++
	target.VMs = append(target.VMs, vm)
	c.stats.Migrations++

	cycles := c.migrator.FullCopyCycles(vm.Spec.MemoryMB)
	blackout := sim.Duration(cycles / target.Top.CyclesPerMicrosecond())
	c.spans.migrateStart(vm, src, target, blackout)
	c.emit(EventMigrateStart, src, vm,
		"vm %s migrating %s -> %s (%d MB, blackout %v)",
		vm.Spec.Name, src.Name, target.Name, vm.Spec.MemoryMB, blackout)
	c.engine.Schedule(blackout, "migrate-done", func(*sim.Engine) { c.finishMigration(vm) })
}

// finishMigration activates the VM on its target host once the copy
// blackout elapses. A VM that departed mid-copy stays down.
func (c *Cluster) finishMigration(vm *VM) {
	if vm.state != stateMigrating {
		return
	}
	if !c.sync() {
		return
	}
	if err := vm.Host.H.ActivateDomain(vm.dom); err != nil {
		c.err = fmt.Errorf("cluster: migrate activate on %s: %w", vm.Host.Name, err)
		c.engine.Stop()
		return
	}
	vm.state = stateRunning
	vm.placedAt = c.engine.Now()
	vm.Host.Placed++
	// Activation flips the domain's VCPUs runnable, which moves the
	// view's LLC pressure — a placement delta like any other.
	c.markDirty(vm.Host)
	c.spans.migrateDone(vm)
	c.emit(EventMigrateDone, vm.Host, vm,
		"vm %s resumed on %s", vm.Spec.Name, vm.Host.Name)
}
