// Command vprobe-cluster simulates a multi-host cluster: VM arrivals and
// departures, Filter/Score placement, admission retries, and threshold-
// driven inter-host live migration, with an independent NUMA hypervisor
// simulation per host.
//
// Usage:
//
//	vprobe-cluster [-hosts n] [-topology name|file.json] [-sched policy]
//	               [-policy name] [-seed n] [-rate f] [-lifetime d]
//	               [-horizon d] [-workers n] [-mix name] [-rebalance d]
//	               [-llc-limit f] [-remote-limit f] [-trace]
//	               [-preempt] [-gang] [-gang-fraction f] [-gang-size n]
//	               [-backfill] [-deschedule d]
//	               [-arrival-process name] [-diurnal-period d]
//	               [-diurnal-amplitude f] [-flash-at d] [-flash-duration d]
//	               [-flash-factor f] [-arrivals-in file.jsonl]
//	               [-arrivals-out file.jsonl] [-place-check]
//	               [-spans file.jsonl] [-chrome file.json]
//	               [-metrics file.prom] [-metrics-every d]
//
// Durations are wall-style ("90s", "5m") and measured in simulated time.
// Results are byte-identical for a fixed seed at every -workers value —
// with or without -metrics, which samples cluster-level and per-host
// series in virtual time and exports Prometheus text exposition plus a
// .jsonl time series next to it. SIGINT or SIGTERM cancels the run.
//
// The arrival process defaults to Poisson at -rate; -arrival-process
// selects the diurnal sinusoid or flash-crowd generator, and
// -arrivals-in replays a JSONL trace (as written by -arrivals-out).
// -place-check cross-validates every placement decision of the
// incremental engine against a full rescan and fails the run on the
// first divergence.
//
// -spans records the placement flight recorder — VM lifecycle spans with
// per-plugin filter/score provenance, migration, preemption, gang, and
// backfill chains — as JSONL for vprobe-explain; -chrome exports the same
// spans as Chrome trace-event JSON for Perfetto. Recording never changes
// results: stdout stays byte-identical with spans on or off.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"vprobe/internal/cluster"
	"vprobe/internal/harness"
	"vprobe/internal/sched"
	"vprobe/internal/sim"
	"vprobe/internal/telemetry"
)

func main() {
	hosts := flag.Int("hosts", 4, "number of hosts")
	topology := flag.String("topology", "xeon-e5620", "NUMA preset name or topology JSON file")
	schedName := flag.String("sched", "credit", fmt.Sprintf("per-host scheduler (%s)", strings.Join(kindNames(), ", ")))
	policy := flag.String("policy", "numa", fmt.Sprintf("placement policy (%s)", strings.Join(cluster.Policies(), ", ")))
	seed := flag.Uint64("seed", 1, "simulation seed")
	rate := flag.Float64("rate", 0.35, "VM arrivals per simulated second")
	lifetime := flag.Duration("lifetime", 60*time.Second, "mean VM lifetime (simulated)")
	horizon := flag.Duration("horizon", 300*time.Second, "simulated duration")
	workers := flag.Int("workers", 0, "parallel host-advance workers (0 = GOMAXPROCS)")
	mix := flag.String("mix", "mixed", "workload mix: mixed, batch, server")
	rebalance := flag.Duration("rebalance", 10*time.Second, "rebalancer period (negative disables)")
	preempt := flag.Bool("preempt", false, "let high-priority arrivals evict lower-priority VMs")
	gang := flag.Bool("gang", false, "admit gang arrivals all-or-nothing")
	gangFraction := flag.Float64("gang-fraction", 0, "fraction of arrivals that form gangs [0,1]")
	gangSize := flag.Int("gang-size", 3, "VMs per gang")
	backfill := flag.Bool("backfill", false, "backfill small VMs past a blocked queue head")
	deschedule := flag.Duration("deschedule", 0, "descheduler (defrag) period (0 disables)")
	arrivalProcess := flag.String("arrival-process", "poisson",
		fmt.Sprintf("arrival generator (%s)", strings.Join(cluster.ArrivalProcesses(), ", ")))
	diurnalPeriod := flag.Duration("diurnal-period", 0, "diurnal sinusoid period (0 = horizon)")
	diurnalAmplitude := flag.Float64("diurnal-amplitude", 0, "diurnal rate swing [0,1] (0 = default 0.6)")
	flashAt := flag.Duration("flash-at", 0, "flash-crowd start (0 = horizon/3)")
	flashDuration := flag.Duration("flash-duration", 0, "flash-crowd length (0 = horizon/10)")
	flashFactor := flag.Float64("flash-factor", 0, "flash-crowd rate multiplier (0 = default 8)")
	arrivalsIn := flag.String("arrivals-in", "", "replay arrivals from this JSONL trace (sets -arrival-process trace)")
	arrivalsOut := flag.String("arrivals-out", "", "export the run's arrivals to this JSONL trace")
	placeCheck := flag.Bool("place-check", false, "cross-validate every placement against a full rescan")
	llcLimit := flag.Float64("llc-limit", 50, "per-socket LLC pressure migration threshold")
	remoteLimit := flag.Float64("remote-limit", 0.45, "remote-access ratio migration threshold")
	trace := flag.Bool("trace", false, "stream cluster events to stderr")
	spansOut := flag.String("spans", "", "write the placement span flight recorder as JSONL to this file (vprobe-explain input)")
	chromeOut := flag.String("chrome", "", "write the spans as Chrome trace-event JSON to this file")
	metrics := flag.String("metrics", "", "write Prometheus metrics to this file (plus a .jsonl time series next to it)")
	metricsEvery := flag.Duration("metrics-every", time.Second, "virtual-time sampling period for -metrics")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile (taken after the run) to this file")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "unexpected arguments: %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := cluster.Config{
		Hosts:             *hosts,
		Topology:          *topology,
		Scheduler:         sched.Kind(*schedName),
		Policy:            *policy,
		Seed:              *seed,
		ArrivalsPerSecond: *rate,
		MeanLifetime:      sim.Duration(lifetime.Microseconds()),
		Horizon:           sim.Duration(horizon.Microseconds()),
		Workers:           *workers,
		Mix:               *mix,
		LLCPressureLimit:  *llcLimit,
		RemoteRatioLimit:  *remoteLimit,
		Preempt:           *preempt,
		Gang:              *gang,
		GangFraction:      *gangFraction,
		GangSize:          *gangSize,
		Backfill:          *backfill,
		DeschedulePeriod:  sim.Duration(deschedule.Microseconds()),
		PlaceCheck:        *placeCheck,
		Arrival: cluster.ArrivalConfig{
			Process:          *arrivalProcess,
			DiurnalPeriod:    sim.Duration(diurnalPeriod.Microseconds()),
			DiurnalAmplitude: *diurnalAmplitude,
			FlashAt:          sim.Duration(flashAt.Microseconds()),
			FlashDuration:    sim.Duration(flashDuration.Microseconds()),
			FlashFactor:      *flashFactor,
		},
	}
	if *arrivalsIn != "" {
		f, err := os.Open(*arrivalsIn)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		recs, err := cluster.ReadTrace(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cfg.Arrival.Process = cluster.ArrivalTrace
		cfg.Arrival.Trace = recs
	}
	if *arrivalsOut != "" {
		f, err := os.Create(*arrivalsOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		enc := bufio.NewWriter(f)
		defer func() {
			enc.Flush()
			f.Close()
		}()
		cfg.ArrivalSink = func(rec cluster.TraceArrival) {
			if err := cluster.WriteTrace(enc, []cluster.TraceArrival{rec}); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
	if *rebalance < 0 {
		cfg.RebalancePeriod = -1
	} else {
		cfg.RebalancePeriod = sim.Duration(rebalance.Microseconds())
	}
	var sampler *telemetry.Sampler
	if *metrics != "" {
		sampler = telemetry.NewSampler(telemetry.NewRegistry(),
			sim.Duration(metricsEvery.Microseconds()))
		cfg.Telemetry = sampler
	}
	var tracer *telemetry.Tracer
	if *spansOut != "" || *chromeOut != "" {
		tracer = telemetry.NewTracer(*seed, 0)
		cfg.Spans = tracer
	}
	if *trace {
		cfg.Events = func(ev cluster.Event) {
			fmt.Fprintf(os.Stderr, "%12v %-14s %-7s %-8s %s\n",
				time.Duration(ev.At)*time.Microsecond, ev.Kind, ev.Host, ev.VM, ev.Detail)
		}
	}

	c, err := cluster.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	stopProfiles, err := harness.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	start := time.Now()
	rep, err := c.Run(ctx)
	// Profiles cover the simulation itself, not report formatting.
	if perr := stopProfiles(); perr != nil {
		fmt.Fprintln(os.Stderr, perr)
		os.Exit(1)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Print(rep.String())
	if tracer != nil {
		if err := writeSpans(tracer, *spansOut, *chromeOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "(%d spans recorded, %d dropped)\n",
			tracer.Len(), tracer.Dropped())
	}
	if sampler != nil {
		if err := writeMetrics(sampler, *metrics); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "(%d samples -> %s, %s)\n",
			sampler.Rows(), *metrics, jsonlPath(*metrics))
	}
	// Timing goes to stderr: stdout stays byte-identical across runs.
	fmt.Fprintf(os.Stderr, "(simulated %v in %.1fs wall)\n", *horizon, time.Since(start).Seconds())
}

// jsonlPath places the time-series export next to the Prometheus file.
func jsonlPath(promPath string) string {
	return strings.TrimSuffix(promPath, ".prom") + ".jsonl"
}

// writeSpans exports the flight recorder to the requested files.
func writeSpans(t *telemetry.Tracer, spansPath, chromePath string) error {
	write := func(path string, export func(*os.File) error) error {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := export(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := write(spansPath, func(f *os.File) error { return t.WriteSpansJSONL(f) }); err != nil {
		return err
	}
	return write(chromePath, func(f *os.File) error { return t.WriteChromeTrace(f) })
}

// writeMetrics exports the sampler: final state as Prometheus text to
// promPath, time series as JSON Lines next to it.
func writeMetrics(s *telemetry.Sampler, promPath string) error {
	pf, err := os.Create(promPath)
	if err != nil {
		return err
	}
	if err := s.Registry().WritePrometheus(pf); err != nil {
		pf.Close()
		return err
	}
	if err := pf.Close(); err != nil {
		return err
	}
	jf, err := os.Create(jsonlPath(promPath))
	if err != nil {
		return err
	}
	if err := s.WriteJSONL(jf); err != nil {
		jf.Close()
		return err
	}
	return jf.Close()
}

func kindNames() []string {
	kinds := sched.PaperOrder()
	out := make([]string, len(kinds))
	for i, k := range kinds {
		out[i] = string(k)
	}
	return out
}
