// Command vprobe-vet is the repo's determinism-and-correctness linter: a
// multichecker over the six custom analyzers that machine-check the
// determinism contract (DESIGN.md §8) and the deprecation fences (§11). CI runs it next to go vet; locally,
// `make lint` does the same.
//
// Usage:
//
//	vprobe-vet [-list] [-only name,name] [packages]
//
// Packages default to ./... resolved against the enclosing module. Exit
// status: 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"vprobe/internal/analysis/ctxflow"
	"vprobe/internal/analysis/deprecated"
	"vprobe/internal/analysis/errsentinel"
	"vprobe/internal/analysis/eventswitch"
	"vprobe/internal/analysis/framework"
	"vprobe/internal/analysis/mapiter"
	"vprobe/internal/analysis/walltime"
)

var analyzers = []*framework.Analyzer{
	ctxflow.Analyzer,
	deprecated.Analyzer,
	errsentinel.Analyzer,
	eventswitch.Analyzer,
	mapiter.Analyzer,
	walltime.Analyzer,
}

func main() {
	list := flag.Bool("list", false, "print the analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default all)")
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	active := analyzers
	if *only != "" {
		byName := make(map[string]*framework.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		active = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "vprobe-vet: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			active = append(active, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	ld, root, err := framework.NewModuleLoader(cwd)
	if err != nil {
		fatal(err)
	}
	modPath, err := framework.ModulePath(root)
	if err != nil {
		fatal(err)
	}
	pkgs, err := ld.LoadPatterns(root, modPath, patterns)
	if err != nil {
		fatal(err)
	}

	findings := 0
	for _, pkg := range pkgs {
		for _, a := range active {
			diags, err := framework.RunAnalyzer(a, pkg)
			if err != nil {
				fatal(err)
			}
			for _, d := range diags {
				pos := pkg.Fset.Position(d.Pos)
				name := pos.Filename
				if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
					name = rel
				}
				fmt.Printf("%s:%d:%d: [%s] %s\n", name, pos.Line, pos.Column, a.Name, d.Message)
				findings++
			}
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "vprobe-vet: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "vprobe-vet: %v\n", err)
	os.Exit(2)
}
