package deprecated_test

import (
	"testing"

	"vprobe/internal/analysis/deprecated"
	"vprobe/internal/analysis/framework/analysistest"
)

func TestDeprecated(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), deprecated.Analyzer, "deprecated_a")
}
