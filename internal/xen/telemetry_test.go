package xen_test

import (
	"bytes"
	"strings"
	"testing"

	"vprobe/internal/mem"
	"vprobe/internal/numa"
	"vprobe/internal/sched"
	"vprobe/internal/sim"
	"vprobe/internal/telemetry"
	"vprobe/internal/workload"
	"vprobe/internal/xen"
)

// attach builds a default sampler over a fresh registry and attaches it
// to h. The sampler is started immediately (the test hypervisors arm
// their own tickers inside Run's implicit Start, after this).
func attach(h *xen.Hypervisor) (*xen.Telemetry, *telemetry.Sampler) {
	s := telemetry.NewSampler(telemetry.NewRegistry(), sim.Second)
	t := xen.AttachTelemetry(h, s)
	s.Start(h.Engine)
	return t, s
}

// TestTelemetryCountsQuanta checks the xen-layer counters against model
// ground truth after a busy vProbe run with a mixed workload: thrashing
// apps (LLC-T) are the ones Algorithm 1 assigns to nodes, so the
// reassignment counter must move.
func TestTelemetryCountsQuanta(t *testing.T) {
	cfg := xen.DefaultConfig()
	cfg.GuestThreadMigrationMean = 0
	h := xen.New(numa.XeonE5620(), sched.MustNew(sched.KindVProbe), cfg)
	vm, err := h.CreateDomain("vm", 8192, 12, mem.PolicyStripe)
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range []string{
		"mcf", "milc", "mcf", "milc", "soplex", "soplex", "lu", "cg",
	} {
		prof, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h.AttachApp(vm, i, prof); err != nil {
			t.Fatal(err)
		}
	}
	for i := 8; i < 12; i++ {
		if _, err := h.AttachApp(vm, i, workload.Hungry()); err != nil {
			t.Fatal(err)
		}
	}
	tele, s := attach(h)
	h.Run(5 * sim.Second)

	disp := tele.Dispatches.Value()
	if disp == 0 {
		t.Fatal("no dispatches counted")
	}
	// Every dispatch ends in exactly one endQuantum; only quanta still in
	// flight at the horizon are unobserved.
	if n := float64(tele.QuantumUS.Count()); disp-n > float64(len(h.PCPUs)) || n > disp {
		t.Fatalf("quantum histogram count %v vs %v dispatches", n, disp)
	}
	// vProbe classifies every app-carrying VCPU each period.
	census := tele.CensusFR.Value() + tele.CensusFI.Value() + tele.CensusT.Value()
	if census != 12 {
		t.Fatalf("LLC class census = %v, want 12 (all app VCPUs)", census)
	}
	if tele.Reassignments.Value() == 0 {
		t.Fatal("vProbe applied no Algorithm 1 reassignments")
	}
	if s.Rows() != 5 {
		t.Fatalf("sampled %d rows over 5 s, want 5", s.Rows())
	}

	var buf bytes.Buffer
	if err := s.Registry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	series, _, err := telemetry.ValidateExposition(buf.Bytes())
	if err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
	if series < 10 {
		t.Fatalf("only %d series exported, want >= 10", series)
	}
}

// TestTelemetryBRMLockSeries checks the PolicyTelemetry forwarding: BRM
// registers its lock-model series and they move.
func TestTelemetryBRMLockSeries(t *testing.T) {
	h := newSteadyStateHV(t, sched.KindBRM)
	tele, s := attach(h)
	h.Run(3 * sim.Second)

	// BRM's biased-random stealing migrates across both node boundaries;
	// the locality classification must see both kinds.
	if tele.StealsLocal.Value() == 0 || tele.StealsRemote.Value() == 0 {
		t.Fatalf("steal classification: local=%v remote=%v, want both > 0",
			tele.StealsLocal.Value(), tele.StealsRemote.Value())
	}

	var buf bytes.Buffer
	if err := s.Registry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range []string{
		"sched_brm_lock_updates_total",
		"sched_brm_lock_wait_us_total",
		"sched_brm_lock_contenders",
	} {
		if !strings.Contains(out, name+" ") {
			t.Fatalf("exposition missing %s:\n%s", name, out)
		}
	}
	idx := strings.Index(out, "sched_brm_lock_wait_us_total ")
	if strings.HasPrefix(out[idx:], "sched_brm_lock_wait_us_total 0\n") {
		t.Fatal("12 active VCPUs (4 over the lock-free budget) accrued no convoy wait")
	}
}

// runFingerprint runs a fresh steady-state hypervisor for 5 s and digests
// everything observable: the full event stream and the per-VCPU outcome.
func runFingerprint(t *testing.T, kind sched.Kind, withTele bool) string {
	t.Helper()
	h := newSteadyStateHV(t, kind)
	var sb strings.Builder
	h.EventFn = func(ev xen.Event) {
		sb.WriteString(ev.At.String())
		sb.WriteByte(' ')
		sb.WriteString(string(ev.Kind))
		sb.WriteByte(' ')
		sb.WriteString(ev.Detail)
		sb.WriteByte('\n')
	}
	if withTele {
		attach(h)
	}
	h.Run(5 * sim.Second)
	for _, v := range h.AllVCPUs() {
		fmtState(&sb, v)
	}
	return sb.String()
}

func fmtState(sb *strings.Builder, v *xen.VCPU) {
	sb.WriteString(v.App.Name)
	sb.WriteString(v.RunTime.String())
	sb.WriteString(sim.Duration(v.Counters.Total()).String())
	sb.WriteString(sim.Duration(v.Counters.Remote).String())
}

// TestTelemetryDoesNotPerturb is the determinism acceptance criterion at
// the xen layer: with telemetry attached, the event stream and final
// model state are byte-identical to the telemetry-off run.
func TestTelemetryDoesNotPerturb(t *testing.T) {
	for _, kind := range []sched.Kind{sched.KindCredit, sched.KindVProbe, sched.KindBRM} {
		off := runFingerprint(t, kind, false)
		on := runFingerprint(t, kind, true)
		if off != on {
			t.Fatalf("%s: simulation diverges with telemetry attached", kind)
		}
	}
}
