package cluster

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"vprobe/internal/sim"
)

// TestGeneratedArrivalsDeterministicAcrossWorkers: every generated
// process must produce byte-identical reports and event logs at every
// worker count — the generators draw only from the arrival RNG stream,
// which the parallel host advance never touches.
func TestGeneratedArrivalsDeterministicAcrossWorkers(t *testing.T) {
	for _, proc := range []string{ArrivalPoisson, ArrivalDiurnal, ArrivalFlash} {
		t.Run(proc, func(t *testing.T) {
			base := Config{
				Hosts:             3,
				Horizon:           90 * sim.Second,
				Seed:              23,
				ArrivalsPerSecond: 0.8,
				MeanLifetime:      25 * sim.Second,
				Arrival:           ArrivalConfig{Process: proc},
			}
			var wantRep, wantLog string
			for _, workers := range []int{1, 4, 8} {
				cfg := base
				cfg.Workers = workers
				rep, log := runWith(t, cfg)
				if rep.Arrivals == 0 {
					t.Fatalf("%s generated no arrivals in 90s", proc)
				}
				if wantRep == "" {
					wantRep, wantLog = rep.String(), log
					continue
				}
				if rep.String() != wantRep {
					t.Fatalf("%s report diverges at workers=%d", proc, workers)
				}
				if log != wantLog {
					t.Fatalf("%s event log diverges at workers=%d", proc, workers)
				}
			}
		})
	}
}

// captureRun runs a cluster with an arrival sink attached and returns
// the recorded stream plus the report and event log.
func captureRun(t *testing.T, cfg Config) ([]TraceArrival, *Report, string) {
	t.Helper()
	var recs []TraceArrival
	cfg.ArrivalSink = func(rec TraceArrival) { recs = append(recs, rec) }
	rep, log := runWith(t, cfg)
	return recs, rep, log
}

// TestTraceRoundTrip is the replay acceptance test: record a generated
// run's offered load through the sink, replay it as a trace, and demand
// the identical report, event log, and re-recorded stream.
func TestTraceRoundTrip(t *testing.T) {
	base := Config{
		Hosts:             3,
		Horizon:           90 * sim.Second,
		Seed:              29,
		ArrivalsPerSecond: 0.7,
		MeanLifetime:      25 * sim.Second,
		GangFraction:      0.25,
		Gang:              true,
		Workers:           2,
	}
	recs, rep, log := captureRun(t, base)
	if len(recs) == 0 {
		t.Fatal("sink recorded nothing")
	}
	if int(rep.Arrivals) != len(recs) {
		t.Fatalf("sink recorded %d arrivals, report counted %d", len(recs), rep.Arrivals)
	}

	replay := base
	replay.Arrival = ArrivalConfig{Process: ArrivalTrace, Trace: recs}
	recs2, rep2, log2 := captureRun(t, replay)
	if rep2.String() != rep.String() {
		t.Fatalf("replayed report diverges:\n--- generated\n%s\n--- replayed\n%s",
			rep.String(), rep2.String())
	}
	if log2 != log {
		t.Fatal("replayed event log diverges from the generated run")
	}
	if !reflect.DeepEqual(recs2, recs) {
		t.Fatal("replaying a trace re-recorded a different trace")
	}
}

// TestArrivalStreamInvariantUnderToggles pins the equal-load guarantee:
// the recorded arrival stream is a pure function of (seed, arrival
// config) — admission mechanisms, placement policy, and worker count
// must not move it.
func TestArrivalStreamInvariantUnderToggles(t *testing.T) {
	base := Config{
		Hosts:             3,
		Horizon:           60 * sim.Second,
		Seed:              31,
		ArrivalsPerSecond: 0.9,
		MeanLifetime:      20 * sim.Second,
		GangFraction:      0.25,
		Workers:           1,
	}
	want, _, _ := captureRun(t, base)
	if len(want) == 0 {
		t.Fatal("baseline recorded nothing")
	}
	variants := map[string]func(*Config){
		"workers=4":  func(c *Config) { c.Workers = 4 },
		"mechanisms": func(c *Config) { c.Preempt = true; c.Gang = true; c.Backfill = true },
		"deschedule": func(c *Config) { c.DeschedulePeriod = 10 * sim.Second },
		"policy":     func(c *Config) { c.Policy = "pack" },
	}
	for name, mutate := range variants {
		cfg := base
		mutate(&cfg)
		got, _, _ := captureRun(t, cfg)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: recorded arrival stream moved", name)
		}
	}
}

// TestWriteReadTraceRoundTrip pins the JSONL wire format.
func TestWriteReadTraceRoundTrip(t *testing.T) {
	recs := []TraceArrival{
		{AtUS: 0, MemoryMB: 1024, VCPUs: 1, Priority: 0, LifeUS: 5_000_000,
			Profiles: []string{"mcf"}},
		{AtUS: 1_500_000, MemoryMB: 4096, VCPUs: 4, Priority: 2, Group: "g1",
			LifeUS: 30_000_000, Profiles: []string{"memcached:64", "redis:2000"}},
		{AtUS: 1_500_000, MemoryMB: 4096, VCPUs: 4, Priority: 2, Group: "g1",
			LifeUS: 30_000_000},
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, recs); err != nil {
		t.Fatal(err)
	}
	// Blank lines are legal in the JSONL schema.
	text := "\n" + strings.ReplaceAll(buf.String(), "\n", "\n\n")
	got, err := ReadTrace(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("round trip mutated the trace:\n got %+v\nwant %+v", got, recs)
	}
	if _, err := ReadTrace(strings.NewReader("{not json}")); err == nil {
		t.Fatal("malformed trace line decoded without error")
	}
}

// TestArrivalConfigNormalize pins the per-process defaults: they fill
// only for the selected process, and the zero config is Poisson.
func TestArrivalConfigNormalize(t *testing.T) {
	h := 300 * sim.Second
	a := ArrivalConfig{}.normalized(h)
	if a.Process != ArrivalPoisson {
		t.Fatalf("zero config normalized to %q", a.Process)
	}
	if a.DiurnalPeriod != 0 || a.FlashFactor != 0 {
		t.Fatal("poisson normalization filled another process's defaults")
	}
	d := ArrivalConfig{Process: ArrivalDiurnal}.normalized(h)
	if d.DiurnalPeriod != h || d.DiurnalAmplitude != 0.6 {
		t.Fatalf("diurnal defaults: period %v amplitude %v", d.DiurnalPeriod, d.DiurnalAmplitude)
	}
	f := ArrivalConfig{Process: ArrivalFlash}.normalized(h)
	if f.FlashFactor != 8 || f.FlashDuration != h/10 || f.FlashAt != h/3 {
		t.Fatalf("flash defaults: factor %v duration %v at %v",
			f.FlashFactor, f.FlashDuration, f.FlashAt)
	}
}

// TestArrivalConfigValidate covers the rejection paths.
func TestArrivalConfigValidate(t *testing.T) {
	ok := TraceArrival{AtUS: 0, MemoryMB: 1024, VCPUs: 1, LifeUS: 1_000_000}
	cases := []struct {
		name string
		cfg  ArrivalConfig
		want string // substring of the error; "" means valid
	}{
		{"poisson", ArrivalConfig{Process: ArrivalPoisson}, ""},
		{"unknown", ArrivalConfig{Process: "bursty"}, "unknown arrival process"},
		{"empty-trace", ArrivalConfig{Process: ArrivalTrace}, "non-empty trace"},
		{"amplitude", ArrivalConfig{Process: ArrivalDiurnal, DiurnalAmplitude: 1.5}, "amplitude"},
		{"flash-factor", ArrivalConfig{Process: ArrivalFlash, FlashFactor: 0.5}, "flash factor"},
		{"bad-record", ArrivalConfig{Process: ArrivalTrace,
			Trace: []TraceArrival{{AtUS: -1, MemoryMB: 1024, VCPUs: 1, LifeUS: 1}}},
			"record 0"},
		{"bad-profile", ArrivalConfig{Process: ArrivalTrace,
			Trace: []TraceArrival{{AtUS: 0, MemoryMB: 1024, VCPUs: 1, LifeUS: 1_000_000,
				Profiles: []string{"no-such-workload"}}}},
			"record 0"},
		{"unsorted", ArrivalConfig{Process: ArrivalTrace,
			Trace: []TraceArrival{{AtUS: 5, MemoryMB: 1024, VCPUs: 1, LifeUS: 1_000_000},
				{AtUS: 2, MemoryMB: 1024, VCPUs: 1, LifeUS: 1_000_000}}},
			"precedes"},
		{"trace-ok", ArrivalConfig{Process: ArrivalTrace, Trace: []TraceArrival{ok}}, ""},
	}
	for _, tc := range cases {
		err := tc.cfg.validate()
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

// TestRateAt pins the λ(t) shapes the thinning samplers draw against.
func TestRateAt(t *testing.T) {
	d := ArrivalConfig{Process: ArrivalDiurnal,
		DiurnalPeriod: 100 * sim.Second, DiurnalAmplitude: 0.5}
	quarter := sim.Time(25 * sim.Second)
	if got := d.rateAt(2, quarter); got < 2.99 || got > 3.01 {
		t.Fatalf("diurnal peak rate %v, want 3 at the quarter period", got)
	}
	if got := d.rateAt(2, 0); got < 1.99 || got > 2.01 {
		t.Fatalf("diurnal rate %v at t=0, want the base rate", got)
	}
	f := ArrivalConfig{Process: ArrivalFlash,
		FlashAt: 10 * sim.Second, FlashDuration: 5 * sim.Second, FlashFactor: 8}
	if got := f.rateAt(1, sim.Time(12*sim.Second)); got != 8 {
		t.Fatalf("flash rate %v inside the window, want 8", got)
	}
	if got := f.rateAt(1, sim.Time(20*sim.Second)); got != 1 {
		t.Fatalf("flash rate %v outside the window, want 1", got)
	}
}
