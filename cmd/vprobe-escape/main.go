// Command vprobe-escape baselines the compiler's escape-analysis
// decisions over the hot-path packages. The static hotpath analyzer
// (vprobe-vet) reasons about constructs; the compiler knows what actually
// reaches the heap. This tool runs `go build -gcflags=<module>/...=-m`
// over the hot-path package set, normalizes every "escapes to heap" /
// "moved to heap" line into a (file, function, message) site, and either
// writes the sorted manifest (-update) or compares it against the
// checked-in baseline (-diff).
//
// Site identity deliberately excludes the line number: moving code within
// a function must not churn the baseline. The line is carried for
// reporting only.
//
// The build runs under a dedicated GOCACHE (VPROBE_ESCAPE_GOCACHE, or a
// stable per-user temp directory) so the -m build never competes with the
// normal build cache for flags, and CI can cache it as its own artifact.
// Cache hits still replay the compiler's diagnostics, so a warm cache
// yields the full manifest in a few hundred milliseconds.
//
// Usage:
//
//	vprobe-escape -update [-baseline file] [packages]
//	vprobe-escape -diff   [-baseline file] [packages]
//
// Exit status: 0 clean, 1 new escape sites, 2 build or usage failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// hotPackages is the default analysis set: the packages the quantum and
// admission hot paths live in (the //vprobe:hotpath roots and everything
// they reach).
var hotPackages = []string{
	"./internal/xen",
	"./internal/sim",
	"./internal/perf",
	"./internal/mem",
	"./internal/core",
	"./internal/sched",
	"./internal/cluster",
}

// Site is one normalized escape decision.
type Site struct {
	File    string `json:"file"`
	Func    string `json:"func"`
	Message string `json:"message"`
	Line    int    `json:"line"`
}

// Manifest is the checked-in baseline format.
type Manifest struct {
	Packages []string `json:"packages"`
	Sites    []Site   `json:"sites"`
}

func (s Site) key() string { return s.File + "\x00" + s.Func + "\x00" + s.Message }

func main() {
	update := flag.Bool("update", false, "rewrite the baseline from the current build")
	diff := flag.Bool("diff", false, "compare the current build against the baseline")
	baseline := flag.String("baseline", "ESCAPES_hotpath.json", "baseline manifest path (relative to the module root)")
	flag.Parse()
	if *update == *diff {
		fmt.Fprintln(os.Stderr, "vprobe-escape: exactly one of -update or -diff is required")
		os.Exit(2)
	}

	pkgs := flag.Args()
	if len(pkgs) == 0 {
		pkgs = hotPackages
	}

	root, modPath, err := findModule()
	if err != nil {
		fatal(err)
	}
	sites, err := collect(root, modPath, pkgs)
	if err != nil {
		fatal(err)
	}
	manifest := Manifest{Packages: pkgs, Sites: sites}

	basePath := *baseline
	if !filepath.IsAbs(basePath) {
		basePath = filepath.Join(root, basePath)
	}

	if *update {
		data, err := json.MarshalIndent(manifest, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(basePath, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("vprobe-escape: wrote %d site(s) to %s\n", len(sites), *baseline)
		return
	}

	old, err := readManifest(basePath)
	if err != nil {
		fatal(fmt.Errorf("%w (run `make escape-baseline` to create it)", err))
	}
	fresh, gone := compare(old.Sites, manifest.Sites)
	for _, s := range gone {
		fmt.Printf("vprobe-escape: resolved: %s: %s: %s\n", s.File, s.Func, s.Message)
	}
	if len(gone) > 0 && len(fresh) == 0 {
		fmt.Printf("vprobe-escape: %d site(s) resolved; refresh with `make escape-baseline`\n", len(gone))
	}
	if len(fresh) > 0 {
		for _, s := range fresh {
			fmt.Printf("vprobe-escape: NEW escape site: %s:%d: in %s: %s\n", s.File, s.Line, s.Func, s.Message)
		}
		fmt.Fprintf(os.Stderr, "vprobe-escape: %d new escape site(s) vs %s; "+
			"fix them or refresh the baseline with `make escape-baseline`\n", len(fresh), *baseline)
		os.Exit(1)
	}
	fmt.Printf("vprobe-escape: clean (%d baselined site(s))\n", len(manifest.Sites))
}

// collect builds the packages with -m under the dedicated cache and
// normalizes the escape lines.
func collect(root, modPath string, pkgs []string) ([]Site, error) {
	args := append([]string{"build", "-gcflags=" + modPath + "/...=-m"}, pkgs...)
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	cmd.Env = append(os.Environ(), "GOCACHE="+cacheDir())
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("go build -gcflags=-m failed: %w\n%s", err, out)
	}

	type ref struct {
		file string
		line int
		msg  string
	}
	var refs []ref
	files := map[string]bool{}
	for _, raw := range strings.Split(string(out), "\n") {
		line := strings.TrimSpace(raw)
		if !strings.HasSuffix(line, "escapes to heap") && !strings.Contains(line, "moved to heap:") {
			continue
		}
		// file.go:line:col: message
		parts := strings.SplitN(line, ":", 4)
		if len(parts) != 4 || !strings.HasSuffix(parts[0], ".go") {
			continue
		}
		ln, err := strconv.Atoi(parts[1])
		if err != nil {
			continue
		}
		refs = append(refs, ref{file: parts[0], line: ln, msg: strings.TrimSpace(parts[3])})
		files[parts[0]] = true
	}

	// Resolve each site's enclosing function once per file.
	funcs := map[string]*fileFuncs{}
	for f := range files {
		ff, err := parseFuncs(filepath.Join(root, f))
		if err != nil {
			return nil, err
		}
		funcs[f] = ff
	}

	sites := make([]Site, 0, len(refs))
	for _, r := range refs {
		sites = append(sites, Site{
			File:    r.file,
			Func:    funcs[r.file].at(r.line),
			Message: r.msg,
			Line:    r.line,
		})
	}
	sort.Slice(sites, func(i, j int) bool {
		a, b := sites[i], sites[j]
		if a.key() != b.key() {
			return a.key() < b.key()
		}
		return a.Line < b.Line
	})
	return sites, nil
}

// compare multiset-diffs the two site lists by identity key: fresh are
// sites whose key count grew, gone are keys whose count shrank.
func compare(old, cur []Site) (fresh, gone []Site) {
	oldCount := map[string]int{}
	for _, s := range old {
		oldCount[s.key()]++
	}
	seen := map[string]int{}
	for _, s := range cur {
		seen[s.key()]++
		if seen[s.key()] > oldCount[s.key()] {
			fresh = append(fresh, s)
		}
	}
	curCount := map[string]int{}
	for _, s := range cur {
		curCount[s.key()]++
	}
	reported := map[string]int{}
	for _, s := range old {
		reported[s.key()]++
		if reported[s.key()] > curCount[s.key()] {
			gone = append(gone, s)
		}
	}
	return fresh, gone
}

// fileFuncs maps line numbers to enclosing top-level function names.
type fileFuncs struct {
	starts []int
	ends   []int
	names  []string
}

// at returns the name of the function declaration containing line, or
// "(package)" for package-scope positions.
func (f *fileFuncs) at(line int) string {
	for i := range f.starts {
		if line >= f.starts[i] && line <= f.ends[i] {
			return f.names[i]
		}
	}
	return "(package)"
}

// parseFuncs indexes a source file's function declarations by line range.
func parseFuncs(path string) (*fileFuncs, error) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, path, nil, 0)
	if err != nil {
		return nil, err
	}
	ff := &fileFuncs{}
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		ff.starts = append(ff.starts, fset.Position(fd.Pos()).Line)
		ff.ends = append(ff.ends, fset.Position(fd.End()).Line)
		ff.names = append(ff.names, funcName(fd))
	}
	return ff, nil
}

// funcName renders a declaration as it reads in the source: Partition,
// (*Hypervisor).dispatch, (Dist).CloneInto.
func funcName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	return "(" + typeText(fd.Recv.List[0].Type) + ")." + fd.Name.Name
}

func typeText(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.StarExpr:
		return "*" + typeText(e.X)
	case *ast.IndexExpr:
		return typeText(e.X)
	}
	return "?"
}

// cacheDir is the dedicated GOCACHE for -m builds.
func cacheDir() string {
	if dir := os.Getenv("VPROBE_ESCAPE_GOCACHE"); dir != "" {
		return dir
	}
	return filepath.Join(os.TempDir(), "vprobe-escape-gocache")
}

func readManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	return &m, nil
}

// findModule walks up from the working directory to the enclosing go.mod.
func findModule() (root, modPath string, err error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		gomod := filepath.Join(dir, "go.mod")
		if data, err := os.ReadFile(gomod); err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("no module line in %s", gomod)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "vprobe-escape: %v\n", err)
	os.Exit(2)
}
