package specfield_test

import (
	"testing"

	"vprobe/internal/analysis/framework/analysistest"
	"vprobe/internal/analysis/specfield"
)

func TestSpecField(t *testing.T) {
	analysistest.RunModule(t, analysistest.TestData(), specfield.Analyzer,
		"internal/spec", "compilefix")
}
