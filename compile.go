package vprobe

import (
	"fmt"
	"time"

	"vprobe/internal/spec"
	"vprobe/internal/workload"
)

// This file is the compile layer between the serializable spec types
// (internal/spec: plain data, JSON-round-trippable, versioned) and the
// runtime Config/ClusterConfig (which carry live callbacks — Events,
// Telemetry, Trace — that cannot cross a process boundary). Everything
// that turns a wire-format request into a running simulation goes through
// here: vprobe-serve, the CLIs, and programmatic callers alike, so there
// is exactly one audited front door. The compilation is exact by
// construction — a compiled spec runs byte-identical to hand-building the
// same Config — and the round-trip tests in compile_test.go pin that for
// every preset topology, scheduler, workload, and cluster policy.

// Public aliases of the spec types, so modules outside this one can
// build and compile specs without reaching into internal/spec (Go's
// internal rule gates the import path, not the types). The versioned
// names stay canonical in internal/spec; these are the same types.
type (
	// ScenarioSpec is spec.ScenarioV1: a serializable single-host run.
	ScenarioSpec = spec.ScenarioV1
	// ClusterSpec is spec.ClusterV1: a serializable cluster run.
	ClusterSpec = spec.ClusterV1
	// VMSpec is spec.VMV1: one virtual machine of a ScenarioSpec.
	VMSpec = spec.VMV1
	// AppSpec is spec.AppV1: one application instance on a VMSpec.
	AppSpec = spec.AppV1
	// ArrivalSpec is spec.ArrivalV1: one recorded arrival of a
	// ClusterSpec arrival trace.
	ArrivalSpec = spec.ArrivalV1
	// SpecDuration is spec.Duration: a JSON-friendly time.Duration that
	// accepts Go duration strings and float seconds.
	SpecDuration = spec.Duration
)

// CompileOptions carries the live, non-serializable attachments a caller
// may hang on a compiled run. All fields are optional.
type CompileOptions struct {
	// Events receives structured events exactly as Config.Events /
	// ClusterConfig.Events would.
	Events EventSink
	// Telemetry collects metric time series exactly as Config.Telemetry /
	// ClusterConfig.Telemetry would.
	Telemetry *Telemetry
	// Spans records the span flight recorder exactly as Config.Spans /
	// ClusterConfig.Spans would. When nil and the spec sets trace, the
	// compile layer creates a recorder itself (retrievable through
	// Simulator.Tracing or ClusterConfig.Spans), honoring the spec's
	// trace_limit.
	Spans *Tracing
}

// compileSpans resolves the recorder for a compiled run: the caller's, or
// a fresh one when the spec asks for tracing.
func compileSpans(opts CompileOptions, trace bool, limit int) *Tracing {
	if opts.Spans != nil {
		return opts.Spans
	}
	if trace {
		return NewTracing(TracingOptions{Limit: limit})
	}
	return nil
}

// CompileScenario lowers a ScenarioV1 onto a ready-to-run Simulator: it
// validates the spec (failures wrap spec.ErrVersion or spec.ErrInvalid),
// builds the Config, creates every VM, and attaches every app. The
// returned horizon is the spec's, for handing to RunContext. The compiled
// run is byte-identical to constructing the same Config by hand.
func CompileScenario(s spec.ScenarioV1, opts CompileOptions) (*Simulator, time.Duration, error) {
	if err := s.Validate(); err != nil {
		return nil, 0, err
	}
	n := s.Normalize()
	sim, err := NewSimulator(Config{
		Scheduler:     Scheduler(n.Scheduler),
		Topology:      Topology(n.Topology),
		Seed:          n.Seed,
		SamplePeriod:  n.SamplePeriod.Std(),
		DynamicBounds: n.DynamicBounds,
		PageMigration: n.PageMigration,
		Events:        opts.Events,
		Telemetry:     opts.Telemetry,
		Spans:         compileSpans(opts, n.Trace, n.TraceLimit),
	})
	if err != nil {
		return nil, 0, err
	}
	for i, vmSpec := range n.VMs {
		mp := MemFill
		if vmSpec.Memory == "stripe" {
			mp = MemStripe
		}
		vm, err := sim.AddVM(VMConfig{
			Name:          vmSpec.Name,
			MemoryMB:      vmSpec.MemoryMB,
			VCPUs:         vmSpec.VCPUs,
			Memory:        mp,
			FillGuestIdle: vmSpec.FillGuestIdle,
		})
		if err != nil {
			return nil, 0, fmt.Errorf("vprobe: compile vms[%d] %q: %w", i, vmSpec.Name, err)
		}
		for j, app := range vmSpec.Apps {
			if err := vm.runSpecApp(app); err != nil {
				return nil, 0, fmt.Errorf("vprobe: compile vms[%d].apps[%d]: %w", i, j, err)
			}
		}
	}
	return sim, n.Horizon.Std(), nil
}

// runSpecApp starts one AppV1 on the VM — the single lowering every app
// reference shares, including the deprecated RunServer shim.
func (vm *VM) runSpecApp(app spec.AppV1) error {
	switch {
	case app.Name != "":
		return vm.RunApp(app.Name)
	case app.Server == "memcached":
		return vm.RunProfile(workload.Memcached(app.Load))
	case app.Server == "redis":
		return vm.RunProfile(workload.Redis(app.Load))
	default:
		return fmt.Errorf("%w: app sets neither name nor server", spec.ErrInvalid)
	}
}

// CompileCluster lowers a ClusterV1 onto the ClusterConfig RunCluster
// accepts. Validation failures wrap spec.ErrVersion or spec.ErrInvalid;
// the compiled config runs byte-identical to hand-building the same
// ClusterConfig.
func CompileCluster(c spec.ClusterV1, opts CompileOptions) (ClusterConfig, error) {
	if err := c.Validate(); err != nil {
		return ClusterConfig{}, err
	}
	n := c.Normalize()
	cfg := ClusterConfig{
		Hosts:             n.Hosts,
		Topology:          Topology(n.Topology),
		Scheduler:         Scheduler(n.Scheduler),
		Policy:            Policy(n.Policy),
		Seed:              n.Seed,
		ArrivalsPerSecond: n.ArrivalsPerSecond,
		MeanLifetime:      n.MeanLifetime.Std(),
		Horizon:           n.Horizon.Std(),
		Workers:           n.Workers,
		Mix:               n.Mix,
		RebalancePeriod:   n.RebalancePeriod.Std(),
		Preempt:           n.Preempt,
		Gang:              n.Gang,
		GangFraction:      n.GangFraction,
		GangSize:          n.GangSize,
		Backfill:          n.Backfill,
		DeschedulePeriod:  n.DeschedulePeriod.Std(),
		Arrival:           ArrivalProcess(n.ArrivalProcess),
		DiurnalPeriod:     n.DiurnalPeriod.Std(),
		DiurnalAmplitude:  n.DiurnalAmplitude,
		FlashAt:           n.FlashAt.Std(),
		FlashDuration:     n.FlashDuration.Std(),
		FlashFactor:       n.FlashFactor,
		PlaceCheck:        n.PlaceCheck,
		Events:            opts.Events,
		Telemetry:         opts.Telemetry,
		Spans:             compileSpans(opts, n.Trace, n.TraceLimit),
	}
	for _, rec := range n.ArrivalTrace {
		cfg.ArrivalTrace = append(cfg.ArrivalTrace, ClusterArrival{
			At:       rec.At.Std(),
			MemoryMB: rec.MemoryMB,
			VCPUs:    rec.VCPUs,
			Priority: rec.Priority,
			Group:    rec.Group,
			Lifetime: rec.Lifetime.Std(),
			Profiles: rec.Profiles,
		})
	}
	return cfg, nil
}
