// Package spec defines the serializable, versioned request types of the
// public simulation API: plain-data descriptions of a single-host scenario
// (ScenarioV1) and a multi-host cluster run (ClusterV1) that survive a JSON
// round trip byte-for-byte and carry no live state — no callbacks, no
// channels, no attached collectors. They are the wire format of
// vprobe-serve and the one audited front door through which the HTTP
// layer, the CLIs, and programmatic callers construct simulations: the
// root package's CompileScenario / CompileCluster lower a validated spec
// onto the runtime vprobe.Config / vprobe.ClusterConfig, which keep the
// live fields (Events, Telemetry, Trace).
//
// Every spec type obeys three contracts:
//
//   - Versioned: the Version field names the schema ("v1"); unknown
//     versions fail validation with ErrVersion, so old servers reject new
//     specs loudly instead of silently dropping fields.
//   - Explicit defaults: Normalize fills every defaulted field with its
//     concrete value, so a normalized spec is self-describing and two
//     specs that mean the same run have identical normalized forms.
//   - Checked: Validate returns errors wrapping ErrInvalid (field-level
//     failures) or ErrVersion, with the offending field path in the
//     message, for errors.Is-based handling and HTTP status mapping.
//
// Key returns the canonical cache key of a spec: a SHA-256 over the
// normalized JSON with the execution-only Workers field zeroed. Because
// every simulation in this repository is deterministic — same spec and
// seed, same bytes out, at every worker count — the key identifies the
// result, not just the request, and completed runs are perfectly
// cacheable. See DESIGN.md §11 for the cache-key contract.
package spec

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"vprobe/internal/cluster"
	"vprobe/internal/numa"
	"vprobe/internal/sched"
	"vprobe/internal/workload"
)

// VersionV1 is the schema version of ScenarioV1 and ClusterV1.
const VersionV1 = "v1"

// Sentinel errors, wrapped by Validate and the compat helpers, for
// errors.Is matching (and the HTTP status table in internal/serve).
var (
	// ErrVersion: the spec's Version names no supported schema.
	ErrVersion = errors.New("spec: unsupported version")
	// ErrInvalid: a field value fails validation; the message carries the
	// field path and the accepted values.
	ErrInvalid = errors.New("spec: invalid field")
)

// Duration is a time.Duration that marshals to the Go duration string
// ("1.5s", "300ms") instead of integer nanoseconds, keeping specs human
// writable and the canonical form stable. It unmarshals from either a
// duration string or a JSON number of seconds.
type Duration time.Duration

// MarshalJSON renders the Go duration string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts "90s"-style strings and bare numbers (seconds).
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("%w: duration %q: %v", ErrInvalid, s, err) //vet:nowrap parse detail only; ErrInvalid carries the chain
		}
		*d = Duration(v)
		return nil
	}
	var secs float64
	if err := json.Unmarshal(b, &secs); err != nil {
		return fmt.Errorf("%w: duration must be a string like \"90s\" or a number of seconds", ErrInvalid)
	}
	*d = Duration(time.Duration(secs * float64(time.Second)))
	return nil
}

// Std returns the standard-library value.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// AppV1 describes one application instance on a VM's next free VCPU.
// Exactly one of Name (a catalog workload: "soplex", "lu", "hungry", ...)
// or Server (a request-driven server: "memcached", "redis") is set; Load
// is the server's client concurrency (memcached) or connection count
// (redis) and must be positive for servers.
type AppV1 struct {
	Name   string `json:"name,omitempty"`
	Server string `json:"server,omitempty"`
	Load   int    `json:"load,omitempty"`
}

// VMV1 describes one virtual machine of a scenario.
type VMV1 struct {
	Name     string `json:"name"`
	MemoryMB int64  `json:"memory_mb"`
	VCPUs    int    `json:"vcpus"`
	// Memory is the placement policy: "fill" (default) or "stripe".
	Memory string `json:"memory,omitempty"`
	// FillGuestIdle attaches housekeeping bursts to VCPUs without apps.
	FillGuestIdle bool `json:"fill_guest_idle,omitempty"`
	// Apps run on the VM's first VCPUs in order.
	Apps []AppV1 `json:"apps,omitempty"`
}

// ScenarioV1 is the serializable form of a single-host simulation: the
// plain-data subset of vprobe.Config plus the VM population and horizon.
type ScenarioV1 struct {
	// Version is the schema version; empty means VersionV1.
	//vet:spec version dispatch happens inside spec (Normalize/Validate); the compile layer only ever sees validated v1 values
	Version string `json:"version"`
	// Scheduler is the policy under test (default "credit").
	Scheduler string `json:"scheduler,omitempty"`
	// Topology is the machine preset (default "xeon-e5620").
	Topology string `json:"topology,omitempty"`
	// Seed makes runs reproducible (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// SamplePeriod overrides vProbe-family sampling (default 1s).
	SamplePeriod Duration `json:"sample_period,omitempty"`
	// DynamicBounds enables the §VI adaptive-bounds extension.
	DynamicBounds bool `json:"dynamic_bounds,omitempty"`
	// PageMigration enables the §VI page-migration extension.
	PageMigration bool `json:"page_migration,omitempty"`
	// Horizon caps the simulated duration (default 30s); the run stops
	// earlier when every finite app completes.
	Horizon Duration `json:"horizon,omitempty"`
	// VMs is the virtual machine population (at least one).
	VMs []VMV1 `json:"vms"`
	// Trace records the run's span flight recorder (domain lifecycle
	// spans). Diagnostic only: results are byte-identical with tracing on
	// or off, so — like place_check on clusters — it is zeroed out of the
	// canonical Key. TraceLimit caps recorded spans (0 = the default cap)
	// and requires Trace.
	Trace      bool `json:"trace,omitempty"`
	TraceLimit int  `json:"trace_limit,omitempty"`
}

// ClusterV1 is the serializable form of a multi-host cluster run: the
// plain-data subset of vprobe.ClusterConfig.
type ClusterV1 struct {
	// Version is the schema version; empty means VersionV1.
	//vet:spec version dispatch happens inside spec (Normalize/Validate); the compile layer only ever sees validated v1 values
	Version string `json:"version"`
	// Hosts is the number of simulated hosts (default 4).
	Hosts int `json:"hosts,omitempty"`
	// Topology is the per-host NUMA preset (default "xeon-e5620").
	Topology string `json:"topology,omitempty"`
	// Scheduler is the per-host VCPU scheduler (default "credit").
	Scheduler string `json:"scheduler,omitempty"`
	// Policy is the placement policy (default "numa").
	Policy string `json:"policy,omitempty"`
	// Seed makes runs reproducible (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// ArrivalsPerSecond is the Poisson VM arrival rate (default 0.35).
	ArrivalsPerSecond float64 `json:"arrivals_per_second,omitempty"`
	// MeanLifetime is the mean exponential VM lifetime (default 60s).
	MeanLifetime Duration `json:"mean_lifetime,omitempty"`
	// Horizon is the simulated duration (default 300s).
	Horizon Duration `json:"horizon,omitempty"`
	// Workers bounds host-advance parallelism (0 = GOMAXPROCS). Results
	// are byte-identical at every worker count, so Workers is excluded
	// from the canonical Key.
	Workers int `json:"workers,omitempty"`
	// Mix selects the workload mix: "mixed" (default), "batch", "server".
	Mix string `json:"mix,omitempty"`
	// RebalancePeriod is the inter-host rebalancer tick (default 10s; a
	// negative duration disables rebalancing).
	RebalancePeriod Duration `json:"rebalance_period,omitempty"`
	// Preempt lets arrivals above best-effort evict strictly-lower-priority
	// VMs when no host fits (default off).
	Preempt bool `json:"preempt,omitempty"`
	// Gang admits multi-VM groups all-or-nothing (default off).
	Gang bool `json:"gang,omitempty"`
	// GangFraction is the fraction of arrivals that form gangs, in [0, 1].
	// The arrival stream draws gangs whenever the fraction is positive, so
	// toggling Gang compares mechanisms at equal load.
	GangFraction float64 `json:"gang_fraction,omitempty"`
	// GangSize is the number of VMs per gang (default 3 when gangs are
	// drawn).
	GangSize int `json:"gang_size,omitempty"`
	// Backfill lets small low-priority VMs jump the queue into holes that
	// cannot delay the blocked head (default off).
	Backfill bool `json:"backfill,omitempty"`
	// DeschedulePeriod is the defragmentation pass tick; zero disables the
	// descheduler (the default).
	DeschedulePeriod Duration `json:"deschedule_period,omitempty"`
	// ArrivalProcess selects the arrival generator: "poisson" (default),
	// "diurnal", "flash", or "trace".
	ArrivalProcess string `json:"arrival_process,omitempty"`
	// DiurnalPeriod is the diurnal sinusoid's period (default: the
	// horizon) and DiurnalAmplitude its swing in [0, 1] around
	// ArrivalsPerSecond (default 0.6). Both normalize to their concrete
	// values only when ArrivalProcess is "diurnal".
	DiurnalPeriod    Duration `json:"diurnal_period,omitempty"`
	DiurnalAmplitude float64  `json:"diurnal_amplitude,omitempty"`
	// FlashAt starts a flash-crowd window of FlashDuration during which
	// the rate multiplies by FlashFactor (defaults: horizon/3,
	// horizon/10, 8). Normalized only when ArrivalProcess is "flash".
	FlashAt       Duration `json:"flash_at,omitempty"`
	FlashDuration Duration `json:"flash_duration,omitempty"`
	FlashFactor   float64  `json:"flash_factor,omitempty"`
	// ArrivalTrace is the recorded stream the "trace" process replays,
	// sorted by at. Consecutive records sharing a non-empty group and the
	// same at arrive together as one gang.
	ArrivalTrace []ArrivalV1 `json:"arrival_trace,omitempty"`
	// PlaceCheck cross-validates every placement of the incremental
	// engine against a full rescan, failing the run on the first
	// divergence. Diagnostic only: results are byte-identical either way,
	// so — like Workers — it is zeroed out of the canonical Key.
	PlaceCheck bool `json:"place_check,omitempty"`
	// Trace records the placement flight recorder: VM lifecycle spans with
	// per-plugin placement provenance, migration/preemption/gang/backfill
	// chains. Diagnostic only (results are byte-identical with tracing on
	// or off), so it is zeroed out of the canonical Key like Workers and
	// PlaceCheck. TraceLimit caps recorded spans (0 = the default cap) and
	// requires Trace.
	Trace      bool `json:"trace,omitempty"`
	TraceLimit int  `json:"trace_limit,omitempty"`
}

// ArrivalV1 is one recorded VM arrival of a ClusterV1 arrival trace:
// when the request arrives, the VM's shape and priority class, its
// lifetime once placed, and the workloads on its VCPUs.
type ArrivalV1 struct {
	At       Duration `json:"at"`
	MemoryMB int64    `json:"memory_mb"`
	VCPUs    int      `json:"vcpus"`
	// Priority is the admission class: 0 best-effort (default),
	// 1 standard, 2 critical.
	Priority int `json:"priority,omitempty"`
	// Group gangs consecutive same-instant records together.
	//vet:spec any string is a valid gang label; gang assembly itself is a runtime concern
	Group    string   `json:"group,omitempty"`
	Lifetime Duration `json:"lifetime"`
	// Profiles are per-VCPU workload references: a catalog name ("mcf"),
	// "memcached:<clients>", or "redis:<connections>"; VCPUs beyond the
	// list idle.
	Profiles []string `json:"profiles,omitempty"`
}

// internal lowers one record onto the cluster trace schema, so Validate
// enforces exactly the per-record rules the runtime does.
func (a ArrivalV1) internal() cluster.TraceArrival {
	return cluster.TraceArrival{
		AtUS:     a.At.Std().Microseconds(),
		MemoryMB: a.MemoryMB,
		VCPUs:    a.VCPUs,
		Priority: a.Priority,
		Group:    a.Group,
		LifeUS:   a.Lifetime.Std().Microseconds(),
		Profiles: a.Profiles,
	}
}

// ArrivalProcesses lists the arrival generators a ClusterV1 accepts,
// sorted.
func ArrivalProcesses() []string { return cluster.ArrivalProcesses() }

// Mixes lists the workload mixes a ClusterV1 accepts, sorted.
func Mixes() []string { return []string{"batch", "mixed", "server"} }

// memoryPolicies lists the VMV1.Memory values, sorted.
func memoryPolicies() []string { return []string{"fill", "stripe"} }

// Topologies lists the machine presets, sorted.
func Topologies() []string {
	names := make([]string, 0, len(numa.Presets))
	for n := range numa.Presets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Schedulers lists the scheduling policies, sorted.
func Schedulers() []string {
	kinds := sched.Kinds()
	names := make([]string, len(kinds))
	for i, k := range kinds {
		names[i] = string(k)
	}
	return names
}

// Policies lists the cluster placement policies, sorted.
func Policies() []string { return cluster.Policies() }

// Apps lists the catalog workloads an AppV1.Name may select, sorted.
func Apps() []string {
	return workload.Names(workload.Catalog())
}

// Normalize returns a copy with every defaulted field set to its concrete
// value, so equivalent specs share one canonical form.
func (s ScenarioV1) Normalize() ScenarioV1 {
	if s.Version == "" {
		s.Version = VersionV1
	}
	if s.Scheduler == "" {
		s.Scheduler = string(sched.KindCredit)
	}
	if s.Topology == "" {
		s.Topology = "xeon-e5620"
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.SamplePeriod == 0 {
		s.SamplePeriod = Duration(time.Second)
	}
	if s.Horizon == 0 {
		s.Horizon = Duration(30 * time.Second)
	}
	vms := make([]VMV1, len(s.VMs))
	for i, vm := range s.VMs {
		if vm.Memory == "" {
			vm.Memory = "fill"
		}
		vm.Apps = append([]AppV1(nil), vm.Apps...)
		vms[i] = vm
	}
	s.VMs = vms
	return s
}

// Validate checks a scenario; failures wrap ErrVersion or ErrInvalid.
// Validation is defined on the normalized form: Validate normalizes
// internally, so callers may pass either form.
func (s ScenarioV1) Validate() error {
	if s.Version != "" && s.Version != VersionV1 {
		return fmt.Errorf("%w: %q (have %s)", ErrVersion, s.Version, VersionV1)
	}
	n := s.Normalize()
	if _, ok := numa.Presets[n.Topology]; !ok {
		return fmt.Errorf("%w: topology %q (have %s)",
			ErrInvalid, n.Topology, strings.Join(Topologies(), ", "))
	}
	if !knownScheduler(n.Scheduler) {
		return fmt.Errorf("%w: scheduler %q (have %s)",
			ErrInvalid, n.Scheduler, strings.Join(Schedulers(), ", "))
	}
	if n.SamplePeriod < 0 {
		return fmt.Errorf("%w: sample_period %v must not be negative", ErrInvalid, n.SamplePeriod.Std())
	}
	if n.Horizon <= 0 {
		return fmt.Errorf("%w: horizon %v must be positive", ErrInvalid, n.Horizon.Std())
	}
	if len(n.VMs) == 0 {
		return fmt.Errorf("%w: vms must list at least one VM", ErrInvalid)
	}
	if err := validateTrace(n.Trace, n.TraceLimit); err != nil {
		return err
	}
	seen := make(map[string]bool, len(n.VMs))
	for i, vm := range n.VMs {
		path := fmt.Sprintf("vms[%d]", i)
		if vm.Name == "" {
			return fmt.Errorf("%w: %s.name must be set", ErrInvalid, path)
		}
		if seen[vm.Name] {
			return fmt.Errorf("%w: %s.name %q repeats an earlier VM", ErrInvalid, path, vm.Name)
		}
		seen[vm.Name] = true
		if vm.MemoryMB <= 0 {
			return fmt.Errorf("%w: %s.memory_mb %d must be positive", ErrInvalid, path, vm.MemoryMB)
		}
		if vm.VCPUs <= 0 {
			return fmt.Errorf("%w: %s.vcpus %d must be positive", ErrInvalid, path, vm.VCPUs)
		}
		if vm.Memory != "fill" && vm.Memory != "stripe" {
			return fmt.Errorf("%w: %s.memory %q (have %s)",
				ErrInvalid, path, vm.Memory, strings.Join(memoryPolicies(), ", "))
		}
		if len(vm.Apps) > vm.VCPUs {
			return fmt.Errorf("%w: %s lists %d apps for %d vcpus",
				ErrInvalid, path, len(vm.Apps), vm.VCPUs)
		}
		for j, app := range vm.Apps {
			if err := app.validate(fmt.Sprintf("%s.apps[%d]", path, j)); err != nil {
				return err
			}
		}
	}
	return nil
}

// validate checks one app reference.
func (a AppV1) validate(path string) error {
	switch {
	case a.Name != "" && a.Server != "":
		return fmt.Errorf("%w: %s sets both name and server", ErrInvalid, path)
	case a.Name != "":
		if a.Load != 0 {
			return fmt.Errorf("%w: %s.load only applies to servers", ErrInvalid, path)
		}
		if _, err := workload.ByName(a.Name); err != nil {
			return fmt.Errorf("%w: %s.name %q (have %s)",
				ErrInvalid, path, a.Name, strings.Join(Apps(), ", "))
		}
		return nil
	case a.Server != "":
		if a.Server != "memcached" && a.Server != "redis" {
			return fmt.Errorf("%w: %s.server %q (have memcached, redis)", ErrInvalid, path, a.Server)
		}
		if a.Load <= 0 {
			return fmt.Errorf("%w: %s.load %d must be positive for servers", ErrInvalid, path, a.Load)
		}
		return nil
	default:
		return fmt.Errorf("%w: %s must set name or server", ErrInvalid, path)
	}
}

// Normalize returns a copy with every defaulted field set to its concrete
// value.
func (c ClusterV1) Normalize() ClusterV1 {
	if c.Version == "" {
		c.Version = VersionV1
	}
	if c.Hosts == 0 {
		c.Hosts = 4
	}
	if c.Topology == "" {
		c.Topology = "xeon-e5620"
	}
	if c.Scheduler == "" {
		c.Scheduler = string(sched.KindCredit)
	}
	if c.Policy == "" {
		c.Policy = "numa"
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.ArrivalsPerSecond == 0 {
		c.ArrivalsPerSecond = 0.35
	}
	if c.MeanLifetime == 0 {
		c.MeanLifetime = Duration(60 * time.Second)
	}
	if c.Horizon == 0 {
		c.Horizon = Duration(300 * time.Second)
	}
	if c.Mix == "" {
		c.Mix = "mixed"
	}
	if c.RebalancePeriod == 0 {
		c.RebalancePeriod = Duration(10 * time.Second)
	} else if c.RebalancePeriod < 0 {
		// All disabled values share one canonical form.
		c.RebalancePeriod = Duration(-time.Second)
	}
	if c.GangFraction > 0 && c.GangSize == 0 {
		c.GangSize = 3
	}
	if c.ArrivalProcess == "" {
		c.ArrivalProcess = "poisson"
	}
	// Per-generator defaults become concrete only for the selected
	// process, mirroring cluster.ArrivalConfig.normalized — a spec that
	// switches process must not inherit another generator's shape.
	switch c.ArrivalProcess {
	case "diurnal":
		if c.DiurnalPeriod == 0 {
			c.DiurnalPeriod = c.Horizon
		}
		if c.DiurnalAmplitude == 0 {
			c.DiurnalAmplitude = 0.6
		}
	case "flash":
		if c.FlashFactor == 0 {
			c.FlashFactor = 8
		}
		if c.FlashDuration == 0 {
			c.FlashDuration = c.Horizon / 10
		}
		if c.FlashAt == 0 {
			c.FlashAt = c.Horizon / 3
		}
	}
	c.ArrivalTrace = append([]ArrivalV1(nil), c.ArrivalTrace...)
	for i := range c.ArrivalTrace {
		c.ArrivalTrace[i].Profiles = append([]string(nil), c.ArrivalTrace[i].Profiles...)
	}
	return c
}

// Validate checks a cluster spec; failures wrap ErrVersion or ErrInvalid.
func (c ClusterV1) Validate() error {
	if c.Version != "" && c.Version != VersionV1 {
		return fmt.Errorf("%w: %q (have %s)", ErrVersion, c.Version, VersionV1)
	}
	n := c.Normalize()
	if n.Hosts < 1 {
		return fmt.Errorf("%w: hosts %d must be positive", ErrInvalid, n.Hosts)
	}
	if _, ok := numa.Presets[n.Topology]; !ok {
		return fmt.Errorf("%w: topology %q (have %s)",
			ErrInvalid, n.Topology, strings.Join(Topologies(), ", "))
	}
	if !knownScheduler(n.Scheduler) {
		return fmt.Errorf("%w: scheduler %q (have %s)",
			ErrInvalid, n.Scheduler, strings.Join(Schedulers(), ", "))
	}
	if !knownPolicy(n.Policy) {
		return fmt.Errorf("%w: policy %q (have %s)",
			ErrInvalid, n.Policy, strings.Join(Policies(), ", "))
	}
	if n.ArrivalsPerSecond < 0 {
		return fmt.Errorf("%w: arrivals_per_second %v must not be negative", ErrInvalid, n.ArrivalsPerSecond)
	}
	if n.MeanLifetime <= 0 {
		return fmt.Errorf("%w: mean_lifetime %v must be positive", ErrInvalid, n.MeanLifetime.Std())
	}
	if n.Horizon <= 0 {
		return fmt.Errorf("%w: horizon %v must be positive", ErrInvalid, n.Horizon.Std())
	}
	if n.Workers < 0 {
		return fmt.Errorf("%w: workers %d must not be negative", ErrInvalid, n.Workers)
	}
	if n.Mix != "mixed" && n.Mix != "batch" && n.Mix != "server" {
		return fmt.Errorf("%w: mix %q (have %s)", ErrInvalid, n.Mix, strings.Join(Mixes(), ", "))
	}
	if n.GangFraction < 0 || n.GangFraction > 1 {
		return fmt.Errorf("%w: gang_fraction %v must be in [0, 1]", ErrInvalid, n.GangFraction)
	}
	if n.GangSize < 0 {
		return fmt.Errorf("%w: gang_size %d must not be negative", ErrInvalid, n.GangSize)
	}
	if n.Gang && n.GangFraction == 0 {
		return fmt.Errorf("%w: gang requires a positive gang_fraction", ErrInvalid)
	}
	if n.DeschedulePeriod < 0 {
		return fmt.Errorf("%w: deschedule_period %v must not be negative", ErrInvalid, n.DeschedulePeriod.Std())
	}
	if !knownArrivalProcess(n.ArrivalProcess) {
		return fmt.Errorf("%w: arrival_process %q (have %s)",
			ErrInvalid, n.ArrivalProcess, strings.Join(ArrivalProcesses(), ", "))
	}
	if n.DiurnalPeriod < 0 {
		return fmt.Errorf("%w: diurnal_period %v must not be negative", ErrInvalid, n.DiurnalPeriod.Std())
	}
	if n.DiurnalAmplitude < 0 || n.DiurnalAmplitude > 1 {
		return fmt.Errorf("%w: diurnal_amplitude %v must be in [0, 1]", ErrInvalid, n.DiurnalAmplitude)
	}
	if n.FlashAt < 0 || n.FlashDuration < 0 {
		return fmt.Errorf("%w: flash_at %v / flash_duration %v must not be negative",
			ErrInvalid, n.FlashAt.Std(), n.FlashDuration.Std())
	}
	if n.FlashFactor < 0 || (n.ArrivalProcess == "flash" && n.FlashFactor < 1) {
		return fmt.Errorf("%w: flash_factor %v must be at least 1", ErrInvalid, n.FlashFactor)
	}
	if err := validateTrace(n.Trace, n.TraceLimit); err != nil {
		return err
	}
	if n.ArrivalProcess == "trace" && len(n.ArrivalTrace) == 0 {
		return fmt.Errorf("%w: arrival_process \"trace\" needs a non-empty arrival_trace", ErrInvalid)
	}
	for i, rec := range n.ArrivalTrace {
		// Spec-level field paths for the two fields whose runtime message
		// would not name them; everything else delegates to the shared
		// record rules.
		if rec.Priority < 0 || rec.Priority > 2 {
			return fmt.Errorf("%w: arrival_trace[%d].priority %d must be in [0, 2]", ErrInvalid, i, rec.Priority)
		}
		if rec.Lifetime <= 0 {
			return fmt.Errorf("%w: arrival_trace[%d].lifetime %v must be positive", ErrInvalid, i, rec.Lifetime.Std())
		}
		if err := rec.internal().Validate(); err != nil {
			return fmt.Errorf("%w: arrival_trace[%d]: %v", ErrInvalid, i, err) //vet:nowrap record detail only; ErrInvalid carries the chain
		}
		if i > 0 && rec.At < n.ArrivalTrace[i-1].At {
			return fmt.Errorf("%w: arrival_trace[%d] at %v precedes arrival_trace[%d]",
				ErrInvalid, i, rec.At.Std(), i-1)
		}
	}
	return nil
}

// validateTrace checks the shared trace fields of both spec types.
func validateTrace(trace bool, limit int) error {
	if limit < 0 {
		return fmt.Errorf("%w: trace_limit %d must not be negative", ErrInvalid, limit)
	}
	if limit > 0 && !trace {
		return fmt.Errorf("%w: trace_limit requires trace", ErrInvalid)
	}
	return nil
}

func knownArrivalProcess(name string) bool {
	for _, p := range cluster.ArrivalProcesses() {
		if p == name {
			return true
		}
	}
	return false
}

func knownScheduler(name string) bool {
	for _, k := range sched.Kinds() {
		if string(k) == name {
			return true
		}
	}
	return false
}

func knownPolicy(name string) bool {
	for _, p := range cluster.Policies() {
		if p == name {
			return true
		}
	}
	return false
}

// Key returns the canonical cache key of the scenario: "scenario-v1-" plus
// the SHA-256 (hex) of the normalized JSON. Two specs that mean the same
// run — differing only in omitted defaults — share a key. The Trace
// fields are zeroed first: tracing never changes results, so traced and
// untraced runs share the cached result.
func (s ScenarioV1) Key() string {
	n := s.Normalize()
	n.Trace = false
	n.TraceLimit = 0
	return canonicalKey("scenario-v1", n)
}

// Key returns the canonical cache key of the cluster spec. The Workers,
// PlaceCheck, and Trace fields are zeroed first: results are
// byte-identical at every worker count, with or without the placement
// shadow check, and with tracing on or off, so runs differing only in
// execution mechanics share the cached result. The arrival-generator
// fields all stay in the key — they shape the arrival stream, so they
// shape the result.
func (c ClusterV1) Key() string {
	n := c.Normalize()
	n.Workers = 0
	n.PlaceCheck = false
	n.Trace = false
	n.TraceLimit = 0
	return canonicalKey("cluster-v1", n)
}

// canonicalKey hashes kind plus the canonical JSON of a normalized spec.
// encoding/json marshals struct fields in declaration order, so the bytes
// are deterministic for a given normalized value.
func canonicalKey(kind string, v any) string {
	data, err := json.Marshal(v)
	if err != nil {
		// Spec types contain only plain data; Marshal cannot fail.
		panic(fmt.Sprintf("spec: canonical marshal: %v", err))
	}
	h := sha256.New()
	h.Write([]byte(kind))
	h.Write([]byte{'\n'})
	h.Write(data)
	return kind + "-" + hex.EncodeToString(h.Sum(nil))
}
