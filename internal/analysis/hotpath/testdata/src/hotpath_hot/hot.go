// Package hotpath_hot holds the annotated roots: direct calls, interface
// dispatch resolved by class-hierarchy analysis, panic-path exemption, and
// both the justified and the bare form of //vet:alloc.
package hotpath_hot

import (
	"fmt"

	"hotpath_helper"
)

// Policy models the xen.Policy shape: the root calls through the
// interface, and every module implementation becomes reachable.
type Policy interface {
	Pick(n int) int
}

// RoundRobin is allocation-free: no diagnostics.
type RoundRobin struct{ next int }

func (r *RoundRobin) Pick(n int) int {
	r.next++
	if r.next >= n {
		r.next = 0
	}
	return r.next
}

// Greedy allocates inside the dispatched method.
type Greedy struct{}

func (Greedy) Pick(n int) int {
	order := make([]int, n) // want `make allocates`
	_ = order
	return 0
}

// Run is a quantum root.
//
//vprobe:hotpath
func Run(p Policy, buf []int) int {
	buf = hotpath_helper.Fill(buf, 1)
	idx := p.Pick(len(buf))
	if idx < 0 || idx >= len(buf) {
		panic(fmt.Sprintf("pick out of range: %d", idx)) // crash path: exempt
	}
	return buf[idx]
}

// Audit is a second root covering the remaining construct set.
//
//vprobe:hotpath
func Audit(id int, names []string) string {
	s := ""
	for _, n := range names {
		s += n // want `string concatenation allocates`
	}
	m := map[string]int{} // want `map literal allocates`
	_ = m
	f := func() int { return id } // want `closure creation may allocate`
	_ = f()
	var v any = id // want `interface boxing: non-pointer value converted to interface`
	_ = v
	return fmt.Sprintf("audit %d", id) // want `fmt.Sprintf allocates`
}

// Warm carries a justified waiver: suppressed, no diagnostic.
//
//vprobe:hotpath
func Warm(buf []int) []int {
	//vet:alloc warmup growth only; steady state reuses the backing array
	return append(buf, 0)
}

// Bare carries a waiver with no reason: that is itself a violation.
//
//vprobe:hotpath
func Bare(buf []int) []int {
	//vet:alloc
	return append(buf, 0) // want `//vet:alloc requires a written reason`
}
