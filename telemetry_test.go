package vprobe_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"vprobe"
)

// addStandardVMs populates the instrumented standard scenario: a measured
// VM beside an endless cache-hungry burner.
func addStandardVMs(t *testing.T, s *vprobe.Simulator) {
	t.Helper()
	vm, err := s.AddVM(vprobe.VMConfig{
		Name: "measured", MemoryMB: 8 * 1024, VCPUs: 8,
		Memory: vprobe.MemStripe, FillGuestIdle: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := vm.RunApp("soplex"); err != nil {
			t.Fatal(err)
		}
	}
	burner, err := s.AddVM(vprobe.VMConfig{Name: "burner", MemoryMB: 1024, VCPUs: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := burner.RunApp("hungry"); err != nil {
			t.Fatal(err)
		}
	}
}

// TestTelemetryExports covers the public collector end to end: >= 10
// distinct series in valid Prometheus exposition and one JSONL record per
// simulated second.
func TestTelemetryExports(t *testing.T) {
	tele := vprobe.NewTelemetry(vprobe.TelemetryOptions{})
	s, err := vprobe.NewSimulator(vprobe.Config{
		Scheduler: vprobe.SchedulerVProbe,
		Telemetry: tele,
	})
	if err != nil {
		t.Fatal(err)
	}
	addStandardVMs(t, s)
	if _, err := s.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if tele.Samples() != 10 {
		t.Fatalf("%d samples over 10 s at the default 1 s period, want 10", tele.Samples())
	}

	var prom bytes.Buffer
	if err := tele.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, line := range strings.Split(prom.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		names[strings.FieldsFunc(line, func(r rune) bool { return r == '{' || r == ' ' })[0]] = true
	}
	if len(names) < 8 { // distinct metric names; series incl. labels is larger
		t.Fatalf("only %d metric names exported: %v", len(names), names)
	}

	var jsonl bytes.Buffer
	if err := tele.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&jsonl)
	rows, series := 0, 0
	for sc.Scan() {
		var rec map[string]float64
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("JSONL row %d: %v", rows, err)
		}
		if want := float64(rows + 1); rec["t"] != want {
			t.Fatalf("row %d has t=%v, want %v (one record per simulated second)",
				rows, rec["t"], want)
		}
		rows++
		series = len(rec) - 1
	}
	if rows != 10 {
		t.Fatalf("%d JSONL rows, want 10", rows)
	}
	if series < 10 {
		t.Fatalf("JSONL rows carry %d series, want >= 10", series)
	}
}

// TestTelemetryAttachOnce pins the collector reuse error.
func TestTelemetryAttachOnce(t *testing.T) {
	tele := vprobe.NewTelemetry(vprobe.TelemetryOptions{})
	if _, err := vprobe.NewSimulator(vprobe.Config{Telemetry: tele}); err != nil {
		t.Fatal(err)
	}
	if _, err := vprobe.NewSimulator(vprobe.Config{Telemetry: tele}); !errors.Is(err, vprobe.ErrTelemetryAttached) {
		t.Fatalf("reusing a collector: err = %v, want ErrTelemetryAttached", err)
	}
	if _, err := vprobe.RunCluster(context.Background(), vprobe.ClusterConfig{
		Horizon: time.Second, Telemetry: tele,
	}); !errors.Is(err, vprobe.ErrTelemetryAttached) {
		t.Fatalf("reusing a collector for a cluster: err = %v, want ErrTelemetryAttached", err)
	}
}

// runStandard runs the standard scenario and returns the report text plus
// the full event stream.
func runStandard(t *testing.T, withTele bool) string {
	t.Helper()
	var sb strings.Builder
	cfg := vprobe.Config{
		Scheduler: vprobe.SchedulerVProbe,
		Events: vprobe.EventFunc(func(ev vprobe.Event) {
			sb.WriteString(ev.At.String())
			sb.WriteByte(' ')
			sb.WriteString(ev.Detail)
			sb.WriteByte('\n')
		}),
	}
	if withTele {
		cfg.Telemetry = vprobe.NewTelemetry(vprobe.TelemetryOptions{})
	}
	s, err := vprobe.NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addStandardVMs(t, s)
	rep, err := s.Run(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	sb.WriteString(rep.String())
	return sb.String()
}

// TestTelemetryReportIdentical is the acceptance criterion at the public
// API: report and event stream are byte-identical with telemetry on or
// off.
func TestTelemetryReportIdentical(t *testing.T) {
	off := runStandard(t, false)
	on := runStandard(t, true)
	if off != on {
		t.Fatal("simulation output diverges with telemetry attached")
	}
}

// TestEventFanoutNilFastPath pins the zero-cost-when-off contract: with no
// sinks configured the hypervisor-level hook must be nil (not an empty
// fanout), so event formatting is skipped entirely.
func TestEventFanoutNilFastPath(t *testing.T) {
	s, err := vprobe.NewSimulator(vprobe.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Hypervisor().EventFn != nil {
		t.Fatal("no sinks configured but hypervisor EventFn is non-nil")
	}

	s, err = vprobe.NewSimulator(vprobe.Config{
		Events: vprobe.EventFunc(func(vprobe.Event) {}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Hypervisor().EventFn == nil {
		t.Fatal("sink configured but hypervisor EventFn is nil")
	}
}

// TestEventFuncAndTraceAdapter covers the sink adapters: EventFunc
// forwards the event unchanged, TraceAdapter renders the deprecated
// (at, line) form, and both receive the same stream when configured
// together.
func TestEventFuncAndTraceAdapter(t *testing.T) {
	var fromFunc []vprobe.Event
	sink := vprobe.EventFunc(func(ev vprobe.Event) { fromFunc = append(fromFunc, ev) })
	want := vprobe.Event{At: 3 * time.Second, Kind: vprobe.EventDispatch, VCPU: 2, Node: 1, Detail: "x"}
	sink.HandleEvent(want)
	if len(fromFunc) != 1 || fromFunc[0] != want {
		t.Fatalf("EventFunc delivered %+v, want %+v", fromFunc, want)
	}

	var ats []time.Duration
	var lines []string
	ad := vprobe.TraceAdapter(func(at time.Duration, line string) {
		ats = append(ats, at)
		lines = append(lines, line)
	})
	ad.HandleEvent(want)
	if len(lines) != 1 || ats[0] != want.At || lines[0] != want.Detail {
		t.Fatalf("TraceAdapter delivered (%v, %q), want (%v, %q)",
			ats, lines, want.At, want.Detail)
	}

	// Events and the deprecated Trace hook fan out from one hypervisor
	// hook and see the same stream.
	var events, traced int
	s, err := vprobe.NewSimulator(vprobe.Config{
		Events: vprobe.EventFunc(func(vprobe.Event) { events++ }),
		Trace:  func(time.Duration, string) { traced++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	vm, err := s.AddVM(vprobe.VMConfig{Name: "vm", MemoryMB: 1024, VCPUs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.RunApp("hungry"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if events == 0 || events != traced {
		t.Fatalf("fanout delivered %d events, %d trace lines; want equal and > 0",
			events, traced)
	}
}
