// Package xen models the hypervisor substrate the paper modifies: domains
// (VMs), VCPUs, PCPUs with per-PCPU run queues, the Credit scheduler's
// accounting (30 ms accounting epochs, 10 ms ticks, UNDER/OVER priorities),
// context switching with cold-cache cost, idle-time work stealing, and
// virtualized per-VCPU PMU counters.
//
// Scheduling policy is pluggable (see Policy); internal/sched provides the
// five policies evaluated in the paper. The simulation is driven by
// internal/sim and produces work through internal/perf.
package xen

import (
	"fmt"

	"vprobe/internal/core"
	"vprobe/internal/mem"
	"vprobe/internal/numa"
	"vprobe/internal/perf"
	"vprobe/internal/pmu"
	"vprobe/internal/sim"
	"vprobe/internal/workload"
)

// VCPUID identifies a VCPU machine-wide.
type VCPUID int

// DomID identifies a domain (VM).
type DomID int

// VCPUState is the lifecycle state of a VCPU.
type VCPUState int

const (
	// StateBlocked: not runnable (idle guest CPU, or finished app).
	StateBlocked VCPUState = iota
	// StateRunnable: waiting in some PCPU's run queue.
	StateRunnable
	// StateRunning: currently executing on a PCPU.
	StateRunning
)

// String names the state.
func (s VCPUState) String() string {
	switch s {
	case StateBlocked:
		return "blocked"
	case StateRunnable:
		return "runnable"
	case StateRunning:
		return "running"
	default:
		return fmt.Sprintf("VCPUState(%d)", int(s))
	}
}

// Priority is the Credit scheduler's run-queue priority. Smaller values
// schedule first.
type Priority int

const (
	// PrioBoost: the VCPU just woke up (Xen's BOOST); it preempts
	// lower-priority runners and schedules ahead of everything. Boost
	// lasts until the VCPU is next dispatched.
	PrioBoost Priority = iota
	// PrioUnder: the VCPU has remaining credits.
	PrioUnder
	// PrioOver: the VCPU has exhausted its credits.
	PrioOver
)

// String names the priority.
func (p Priority) String() string {
	switch p {
	case PrioBoost:
		return "BOOST"
	case PrioUnder:
		return "UNDER"
	case PrioOver:
		return "OVER"
	default:
		return fmt.Sprintf("Priority(%d)", int(p))
	}
}

// VCPU is a virtual CPU. The csched_vcpu extensions the paper adds in
// §IV-B (node_affinity, LLC_pressure, vcpu_type) appear here verbatim.
type VCPU struct {
	ID  VCPUID
	Dom *Domain
	// App is the workload bound to this VCPU (guest thread pinning);
	// nil marks a guest-idle VCPU that never runs.
	App *workload.Profile
	// InstrDone is retired work; selects the app phase and decides
	// completion.
	InstrDone float64
	// PageDist is the VCPU's (its app's) current page placement.
	PageDist mem.Dist

	Counters *pmu.Counters
	Sampler  *pmu.Sampler

	State    VCPUState
	OnPCPU   numa.CPUID // valid while Running; queue PCPU while Runnable
	Credits  int
	Priority Priority

	// Paper §IV-B scheduler-visible characteristics (updated by the
	// PMU data analyzer at each sampling period).
	NodeAffinity numa.NodeID
	LLCPressure  float64
	Type         core.VCPUType
	// AssignedNode is the node the periodical partitioning assigned this
	// VCPU to for the current sampling period (NoNode when unassigned,
	// e.g. LLC-FR VCPUs). The NUMA-aware load balancer does not steal an
	// assigned VCPU across nodes; the default Credit balancer ignores
	// it — which is exactly why VCPU-P underperforms vProbe.
	AssignedNode numa.NodeID

	// Physical modelling state (invisible to schedulers).
	ColdLines  float64
	LastSocket numa.NodeID
	// lastQueuedAt is when the VCPU last entered a run queue, for the
	// cache-hot steal protection.
	lastQueuedAt sim.Time
	// nodeTime accumulates run time per node during the first-touch
	// window; firstTouched flips once the pages settle.
	nodeTime     []sim.Duration
	firstTouched bool
	// paused marks a VCPU stopped by PauseDomain; it ignores wakeups
	// until ResumeDomain.
	paused bool

	// PinnedPCPU, when >= 0, hard-pins the VCPU (used by the Fig. 3
	// calibration run). Pinned VCPUs are never stolen or migrated.
	PinnedPCPU numa.CPUID

	// pendingNode requests a migration to a node at next dequeue
	// (set by periodical partitioning while the VCPU is running).
	pendingNode numa.NodeID

	// pendingOverhead is hypervisor bookkeeping (PMU reads, lock waits,
	// partitioning) charged against the VCPU's next quantum.
	pendingOverhead float64

	// out is the VCPU's reusable quantum outcome: dispatch evaluates the
	// performance model into it (perf.ExecuteInto) and endQuantum consumes
	// it, so the per-quantum Node vector is allocated once per VCPU.
	out perf.Outcome

	// wakeTimer is the reusable unblock timer (bound to this VCPU at
	// creation); wakeLast is the PCPU the VCPU last blocked on, which the
	// pre-bound callback reads instead of capturing it per block.
	wakeTimer *sim.Timer
	wakeLast  *PCPU

	Done       bool
	FinishTime sim.Time
	StartNode  numa.NodeID

	// Lifetime totals for metrics.
	RunTime      sim.Duration
	Migrations   int // cross-PCPU placements
	NodeMoves    int // cross-node placements
	Switches     int // times scheduled in after another VCPU
	OverheadTime sim.Duration
}

// Runnable reports whether the VCPU wants CPU time.
func (v *VCPU) Runnable() bool {
	return v.App != nil && !v.Done && v.State != StateBlocked
}

// RemainingInstructions returns the work left for a batch app; servers and
// hungry loops effectively never finish.
func (v *VCPU) RemainingInstructions() float64 {
	if v.App == nil {
		return 0
	}
	rem := v.App.TotalInstructions - v.InstrDone
	if rem < 0 {
		return 0
	}
	return rem
}

// Phase returns the app phase currently executing.
func (v *VCPU) Phase() *workload.Phase {
	if v.App == nil {
		return nil
	}
	return v.App.PhaseAt(v.InstrDone)
}

// RequestsServed converts retired work to served requests for servers.
func (v *VCPU) RequestsServed() float64 {
	if v.App == nil || !v.App.Server || v.App.InstrPerRequest <= 0 {
		return 0
	}
	return v.InstrDone / v.App.InstrPerRequest
}

// AddOverhead charges hypervisor bookkeeping cycles to the VCPU's next
// quantum and to its lifetime overhead metric.
func (v *VCPU) AddOverhead(cycles float64, cyclesPerMicro float64) {
	if cycles <= 0 {
		return
	}
	v.pendingOverhead += cycles
	v.OverheadTime += sim.Duration(cycles / cyclesPerMicro)
}

// Domain is a VM.
type Domain struct {
	ID       DomID
	Name     string
	MemoryMB int64
	// MemDist is the machine-node distribution of the VM's memory.
	MemDist mem.Dist
	VCPUs   []*VCPU
	// Paused and Destroyed are lifecycle flags (see Hypervisor.PauseDomain).
	Paused    bool
	Destroyed bool
	// activated flips once the domain's VCPUs have been placed (by Start,
	// or by ActivateDomain for domains hot-added to a running host).
	activated bool
}

// RunnableVCPUs returns the domain's runnable or running VCPUs.
func (d *Domain) RunnableVCPUs() []*VCPU {
	var out []*VCPU
	for _, v := range d.VCPUs {
		if v.Runnable() {
			out = append(out, v)
		}
	}
	return out
}

// AllDone reports whether every finite app-carrying VCPU finished its
// work. Endless apps (hungry loops, guest housekeeping, open-ended
// servers) do not block completion, and a destroyed domain counts as
// complete.
func (d *Domain) AllDone() bool {
	if d.Destroyed {
		return true
	}
	for _, v := range d.VCPUs {
		if v.App != nil && !v.App.Endless() && !v.Done {
			return false
		}
	}
	return true
}
