package numa

import (
	"sort"
	"testing"

	"vprobe/internal/sim"
)

// refBest is the from-scratch best-node scan the cluster's bestNode uses:
// the lowest-numbered node of maximum free memory.
func refBest(free []int64) (NodeID, int64) {
	best, bestFree := NoNode, int64(-1)
	for n, f := range free {
		if f > bestFree {
			best, bestFree = NodeID(n), f
		}
	}
	return best, bestFree
}

func TestFreeIndexMatchesFromScratch(t *testing.T) {
	free := []int64{4096, 1024, 4096, 0}
	ix := NewFreeIndex(free)
	for k := 0; k <= 5; k++ {
		if got, want := ix.TopSum(k), AvailableMB(free, k); got != want {
			t.Fatalf("TopSum(%d) = %d, AvailableMB = %d", k, got, want)
		}
	}
	if n, f := ix.Best(); n != 0 || f != 4096 {
		t.Fatalf("Best() = (%d, %d), want (0, 4096): ties break toward the lowest id", n, f)
	}
	if ix.TotalMB() != 4096+1024+4096 {
		t.Fatalf("TotalMB() = %d", ix.TotalMB())
	}
}

// TestFreeIndexRandomizedDeltas is the satellite cross-check: after 10k
// mixed place/depart/migrate-shaped deltas the incremental index must
// agree with the from-scratch numa.AvailableMB computation (and the
// best-node scan) on every query.
func TestFreeIndexRandomizedDeltas(t *testing.T) {
	rng := sim.NewRNG(42)
	const nodes = 6
	free := make([]int64, nodes)
	for n := range free {
		free[n] = int64(rng.Intn(32768))
	}
	ix := NewFreeIndex(free)
	gen := ix.Generation()
	for step := 0; step < 10000; step++ {
		n := NodeID(rng.Intn(nodes))
		amt := int64(rng.Intn(4096))
		switch rng.Intn(3) {
		case 0: // place: deduct, clamped so free never goes negative
			if amt > free[n] {
				amt = free[n]
			}
			free[n] -= amt
			ix.Take(n, amt)
		case 1: // depart: return memory
			free[n] += amt
			ix.Give(n, amt)
		default: // migrate/refresh: set to an absolute readback value
			free[n] = amt
			ix.Set(n, amt)
		}
		if g := ix.Generation(); g < gen {
			t.Fatalf("step %d: generation moved backwards (%d -> %d)", step, gen, g)
		} else {
			gen = g
		}
		for k := 1; k <= nodes; k++ {
			if got, want := ix.TopSum(k), AvailableMB(free, k); got != want {
				t.Fatalf("step %d: TopSum(%d) = %d, from-scratch = %d (free %v)",
					step, k, got, want, free)
			}
		}
		bn, bf := ix.Best()
		wn, wf := refBest(free)
		if bn != wn || bf != wf {
			t.Fatalf("step %d: Best() = (%d, %d), from-scratch = (%d, %d) (free %v)",
				step, bn, bf, wn, wf, free)
		}
		var total int64
		for _, f := range free {
			total += f
		}
		if ix.TotalMB() != total {
			t.Fatalf("step %d: TotalMB() = %d, want %d", step, ix.TotalMB(), total)
		}
		for n := range free {
			if ix.FreeMB(NodeID(n)) != free[n] {
				t.Fatalf("step %d: FreeMB(%d) = %d, want %d", step, n, ix.FreeMB(NodeID(n)), free[n])
			}
		}
	}
}

func TestFreeIndexGeneration(t *testing.T) {
	ix := NewFreeIndex([]int64{100, 200})
	g := ix.Generation()
	ix.Set(0, 100) // no-op: value unchanged
	if ix.Generation() != g {
		t.Fatal("no-op Set bumped the generation")
	}
	ix.Set(0, 150)
	if ix.Generation() == g {
		t.Fatal("mutating Set left the generation unchanged")
	}
	g = ix.Generation()
	ix.Reset([]int64{1, 2})
	if ix.Generation() == g {
		t.Fatal("Reset left the generation unchanged")
	}
}

func TestFreeIndexResetLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Reset with a different node count did not panic")
		}
	}()
	NewFreeIndex([]int64{1, 2}).Reset([]int64{1, 2, 3})
}

// TestFreeIndexOrderInvariant pins the sorted-order representation the
// cluster relies on for deterministic tie-breaks.
func TestFreeIndexOrderInvariant(t *testing.T) {
	rng := sim.NewRNG(7)
	ix := NewFreeIndex(make([]int64, 5))
	free := make([]int64, 5)
	for step := 0; step < 2000; step++ {
		n := NodeID(rng.Intn(5))
		v := int64(rng.Intn(8)) * 512 // coarse values force frequent ties
		free[n] = v
		ix.Set(n, v)
		order := append([]NodeID(nil), ix.order...)
		if !sort.SliceIsSorted(order, func(i, j int) bool {
			a, b := order[i], order[j]
			if free[a] != free[b] {
				return free[a] > free[b]
			}
			return a < b
		}) {
			t.Fatalf("step %d: order %v not sorted by (free desc, id asc), free %v",
				step, order, free)
		}
		for i, n := range order {
			if ix.rank[n] != i {
				t.Fatalf("step %d: rank[%d] = %d, want %d", step, n, ix.rank[n], i)
			}
		}
	}
}
