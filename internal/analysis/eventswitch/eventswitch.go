// Package eventswitch requires switches over the repo's enum-like string
// types — EventKind (root API, xen, cluster, harness) and the scheduler
// registry's sched.Kind — to handle every declared constant. A `default:`
// clause does not count as coverage: the motivating failure is an event
// sink whose default arm silently drops a newly added cluster event kind,
// so the report under-counts without any test noticing.
//
// A switch that intentionally handles a subset (e.g. a console sink that
// only renders experiment-level progress) is annotated
// `//vet:partial <justification>`.
package eventswitch

import (
	"go/ast"
	"go/types"
	"strings"

	"vprobe/internal/analysis/framework"
)

// Analyzer is the eventswitch exhaustiveness check.
var Analyzer = &framework.Analyzer{
	Name: "eventswitch",
	Doc: "require switches over EventKind/Kind enums to cover every " +
		"declared constant (suppress with //vet:partial)",
	Run:        run,
	Directives: []string{"partial"},
}

// enumTypeName reports whether a named type is one of the contract's
// enum-like types. Matching by name keeps the check portable to the
// analysistest fixture tree; the repo has no unrelated types so named.
func enumTypeName(name string) bool {
	return name == "EventKind" || name == "Kind"
}

func run(pass *framework.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			checkSwitch(pass, sw)
			return true
		})
	}
	return nil, nil
}

func checkSwitch(pass *framework.Pass, sw *ast.SwitchStmt) {
	named, ok := pass.TypesInfo.TypeOf(sw.Tag).(*types.Named)
	if !ok || !enumTypeName(named.Obj().Name()) {
		return
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&(types.IsString|types.IsInteger) == 0 {
		return
	}
	enum := enumConstants(named)
	if len(enum) < 2 {
		return
	}
	covered := make(map[string]bool)
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, expr := range cc.List {
			if tv, ok := pass.TypesInfo.Types[expr]; ok && tv.Value != nil {
				covered[tv.Value.ExactString()] = true
			}
		}
	}
	var missing []string
	for _, c := range enum {
		if !covered[c.Val().ExactString()] {
			missing = append(missing, c.Name())
		}
	}
	if len(missing) == 0 || pass.Suppressed(sw.Pos(), "partial") {
		return
	}
	pass.Reportf(sw.Pos(),
		"switch over %s misses %s; events must not be dropped silently — add the cases or annotate //vet:partial",
		named.Obj().Name(), strings.Join(missing, ", "))
}

// enumConstants returns the package-level constants of exactly type named,
// in the defining package's (sorted, deterministic) scope order.
func enumConstants(named *types.Named) []*types.Const {
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return nil
	}
	var out []*types.Const
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		if c, ok := scope.Lookup(name).(*types.Const); ok && types.Identical(c.Type(), named) {
			out = append(out, c)
		}
	}
	return out
}
