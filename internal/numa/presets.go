package numa

// XeonE5620 reproduces Table I of the paper: a two-socket Intel Xeon E5620
// machine (4 cores per socket at 2.40 GHz, 12 MB shared L3 per socket,
// 12 GB DRAM per node behind a 25.6 GB/s IMC, 2 QPI links at 5.86 GT/s).
//
// The base latencies are typical published Nehalem-EP numbers: ~65 ns local
// DRAM, ~105 ns remote (one QPI hop); the absolute values only set the
// scale of the model, the local/remote ratio is what shapes the results.
func XeonE5620() *Topology {
	return MustNew(Config{
		Name:               "Intel Xeon E5620 (Table I)",
		Nodes:              2,
		CPUsPerNode:        4,
		MemoryPerNodeMB:    12 * 1024,
		IMCBandwidthGBs:    25.6,
		LLCSizeKB:          12 * 1024,
		ClockGHz:           2.40,
		LocalMemLatencyNS:  65,
		RemoteMemLatencyNS: 138,
		LLCHitLatencyNS:    15,
		LinkBandwidthGTs:   5.86,
		LinksPerPair:       2,
	})
}

// FourNode is a synthetic 4-node machine used to exercise the N > 2 code
// paths of the partitioning and load-balance algorithms (the paper's
// algorithms are written for arbitrary N).
func FourNode() *Topology {
	return MustNew(Config{
		Name:               "synthetic 4-node",
		Nodes:              4,
		CPUsPerNode:        4,
		MemoryPerNodeMB:    16 * 1024,
		IMCBandwidthGBs:    25.6,
		LLCSizeKB:          12 * 1024,
		ClockGHz:           2.40,
		LocalMemLatencyNS:  65,
		RemoteMemLatencyNS: 120,
		LLCHitLatencyNS:    15,
		LinkBandwidthGTs:   5.86,
		LinksPerPair:       1,
	})
}

// SingleNode is a degenerate UMA machine, useful for failure-injection
// tests: NUMA-aware policies must not misbehave when there is nowhere to
// migrate.
func SingleNode() *Topology {
	return MustNew(Config{
		Name:               "single-node UMA",
		Nodes:              1,
		CPUsPerNode:        8,
		MemoryPerNodeMB:    24 * 1024,
		IMCBandwidthGBs:    25.6,
		LLCSizeKB:          12 * 1024,
		ClockGHz:           2.40,
		LocalMemLatencyNS:  65,
		RemoteMemLatencyNS: 65,
		LLCHitLatencyNS:    15,
		LinkBandwidthGTs:   5.86,
		LinksPerPair:       1,
	})
}

// Presets maps preset names to constructors, for CLI use.
var Presets = map[string]func() *Topology{
	"xeon-e5620": XeonE5620,
	"four-node":  FourNode,
	"uma":        SingleNode,
}
