package core

import (
	"vprobe/internal/numa"
)

// RunnableVCPU describes one stealable VCPU waiting in a run queue.
type RunnableVCPU struct {
	VCPU     int
	Pressure float64 // last analysed LLC access pressure
}

// QueueView is the load-balance algorithm's view of one PCPU's run queue.
type QueueView struct {
	CPU numa.CPUID
	// Workload is the PCPU's queue length (the paper's per-PCPU
	// workload counter, §IV-B).
	Workload int
	// Runnable lists the VCPUs that may be stolen from this queue.
	Runnable []RunnableVCPU
}

// StealDecision is Algorithm 2's output.
type StealDecision struct {
	From numa.CPUID
	VCPU int
}

// PickSteal implements the paper's Algorithm 2, NUMA-aware Load Balance,
// as a pure decision function. When a PCPU on node local becomes idle it
// searches nodes in order — local first, then the others in nodeOrder —
// and within a node checks PCPUs from heaviest workload down. From the
// first queue that has stealable VCPUs it takes the one with the smallest
// LLC access pressure (smallest impact on the destination's LLC balance).
//
// queues maps node id to the run-queue views of that node's PCPUs; the
// function sorts each node's views by descending workload itself (stable:
// equal workloads keep caller order, matching the prototype's fixed PCPU
// iteration). It returns ok=false when no queue anywhere has work.
func PickSteal(local numa.NodeID, nodeOrder []numa.NodeID, queues map[numa.NodeID][]QueueView) (StealDecision, bool) {
	var s StealScratch
	return s.PickSteal(local, nodeOrder, queues)
}

// StealScratch holds PickSteal's working buffers so a caller on a hot path
// (one steal attempt per idle PCPU per quantum) can reuse them across
// calls. The zero value is ready to use; a scratch must not be shared by
// concurrent callers.
type StealScratch struct {
	visit []numa.NodeID
	order []int
}

// PickSteal is the allocation-free form of the package-level PickSteal,
// reusing the scratch's buffers once they have grown to topology size.
//
//vprobe:hotpath
func (s *StealScratch) PickSteal(local numa.NodeID, nodeOrder []numa.NodeID, queues map[numa.NodeID][]QueueView) (StealDecision, bool) {
	if cap(s.visit) < len(nodeOrder)+1 {
		s.visit = make([]numa.NodeID, 0, len(nodeOrder)+1) //vet:alloc warmup growth to topology size, then reused
	}
	visit := append(s.visit[:0], local) //vet:alloc capacity guaranteed by the guard above; never grows in steady state
	for _, n := range nodeOrder {
		if n != local {
			visit = append(visit, n) //vet:alloc capacity guaranteed by the guard above
		}
	}
	s.visit = visit
	for _, node := range visit {
		views := queues[node]
		// Stable selection sort by descending workload (tiny N; keeps
		// the package dependency-free and the order deterministic).
		if cap(s.order) < len(views) {
			s.order = make([]int, 0, len(views)) //vet:alloc warmup growth to queue width, then reused
		}
		order := s.order[:0]
		for i := range views {
			order = append(order, i) //vet:alloc capacity guaranteed by the guard above
		}
		s.order = order
		for i := 0; i < len(order); i++ {
			best := i
			for j := i + 1; j < len(order); j++ {
				if views[order[j]].Workload > views[order[best]].Workload {
					best = j
				}
			}
			order[i], order[best] = order[best], order[i]
		}
		for _, idx := range order {
			q := views[idx]
			if len(q.Runnable) == 0 {
				continue
			}
			pick := q.Runnable[0]
			for _, r := range q.Runnable[1:] {
				if r.Pressure < pick.Pressure {
					pick = r
				}
			}
			return StealDecision{From: q.CPU, VCPU: pick.VCPU}, true
		}
	}
	return StealDecision{}, false
}

// NodeOrderFrom returns the node visiting order for an idle PCPU on node
// local: the paper's nextNode() walks the remote nodes in increasing
// distance then id order. For the two-node testbed this is simply "the
// other node".
func NodeOrderFrom(top *numa.Topology, local numa.NodeID) []numa.NodeID {
	n := top.NumNodes()
	//vet:alloc called once per node on first steal, then cached by the hypervisor (nodeOrders)
	order := make([]numa.NodeID, 0, n-1)
	// Insertion by (distance, id).
	for id := 0; id < n; id++ {
		if numa.NodeID(id) == local {
			continue
		}
		order = append(order, numa.NodeID(id)) //vet:alloc capacity pre-sized to n-1 above
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0; j-- {
			a, b := order[j-1], order[j]
			da, db := top.Distance(local, a), top.Distance(local, b)
			if db < da || (db == da && b < a) {
				order[j-1], order[j] = b, a
			} else {
				break
			}
		}
	}
	return order
}
