package cluster

// Pluggable arrival generators. The original engine offered one arrival
// process — homogeneous Poisson — which is the wrong shape for a
// thousand-host fleet: production load breathes (diurnal), spikes (flash
// crowds), and is often replayed from recorded traces. This file adds
// those processes behind Config.Arrival while keeping the Poisson path
// bit-for-bit identical to the pre-refactor draw.
//
// The non-homogeneous processes (diurnal, flash) sample by Lewis-Shedler
// thinning: candidate gaps are drawn from a homogeneous Poisson at the
// peak rate λmax, and each candidate at time t survives with probability
// λ(t)/λmax. Both the candidate gap and the acceptance roll come from
// the arrival RNG stream, so the generated load is a pure function of
// (seed, config) — byte-identical at any worker count, and invariant
// under the admission-mechanism toggles, which never touch this stream.
//
// Trace replay schedules recorded arrivals verbatim. Replay is chained —
// each batch's handler schedules the next — mirroring the generator's
// control flow so same-microsecond collisions with retries and
// departures order identically to the run that exported the trace.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"vprobe/internal/controlplane"
	"vprobe/internal/sim"
	"vprobe/internal/workload"
)

// Arrival process names.
const (
	ArrivalPoisson = "poisson"
	ArrivalDiurnal = "diurnal"
	ArrivalFlash   = "flash"
	ArrivalTrace   = "trace"
)

// ArrivalProcesses lists the supported process names, sorted.
func ArrivalProcesses() []string {
	return []string{ArrivalDiurnal, ArrivalFlash, ArrivalPoisson, ArrivalTrace}
}

// ArrivalConfig selects and parameterises the arrival generator. Zero
// values select the defaults noted per field; defaults are filled only
// for the selected process.
type ArrivalConfig struct {
	// Process is "poisson" (default), "diurnal", "flash", or "trace".
	Process string

	// DiurnalPeriod is the sinusoid's period (default: the run horizon,
	// one full day-night cycle per run). DiurnalAmplitude in [0, 1] sets
	// the swing: the rate breathes between rate*(1-A) and rate*(1+A)
	// around ArrivalsPerSecond (default 0.6).
	DiurnalPeriod    sim.Duration
	DiurnalAmplitude float64

	// FlashAt starts a flash-crowd window of FlashDuration during which
	// the rate multiplies by FlashFactor (defaults: horizon/3, horizon/10,
	// 8). Outside the window the rate is ArrivalsPerSecond.
	FlashAt       sim.Duration
	FlashDuration sim.Duration
	FlashFactor   float64

	// Trace is the recorded arrival stream replayed by the "trace"
	// process, sorted by AtUS. Consecutive records sharing a non-empty
	// Group and the same AtUS arrive together as one gang.
	Trace []TraceArrival
}

// normalized fills the selected process's defaults.
func (a ArrivalConfig) normalized(horizon sim.Duration) ArrivalConfig {
	if a.Process == "" {
		a.Process = ArrivalPoisson
	}
	switch a.Process {
	case ArrivalDiurnal:
		if a.DiurnalPeriod <= 0 {
			a.DiurnalPeriod = horizon
		}
		if a.DiurnalAmplitude <= 0 {
			a.DiurnalAmplitude = 0.6
		}
	case ArrivalFlash:
		if a.FlashFactor <= 0 {
			a.FlashFactor = 8
		}
		if a.FlashDuration <= 0 {
			a.FlashDuration = horizon / 10
		}
		if a.FlashAt <= 0 {
			a.FlashAt = horizon / 3
		}
	}
	return a
}

// validate rejects configurations the generators cannot honor. It runs
// after normalized.
func (a ArrivalConfig) validate() error {
	switch a.Process {
	case ArrivalPoisson, ArrivalDiurnal, ArrivalFlash:
	case ArrivalTrace:
		if len(a.Trace) == 0 {
			return fmt.Errorf("cluster: arrival process %q needs a non-empty trace", a.Process)
		}
	default:
		return fmt.Errorf("cluster: unknown arrival process %q (have %v)",
			a.Process, ArrivalProcesses())
	}
	if a.Process == ArrivalDiurnal && a.DiurnalAmplitude > 1 {
		return fmt.Errorf("cluster: diurnal amplitude %v above 1 would need a negative rate",
			a.DiurnalAmplitude)
	}
	if a.Process == ArrivalFlash && a.FlashFactor < 1 {
		return fmt.Errorf("cluster: flash factor %v below 1 (the flash is the peak rate)",
			a.FlashFactor)
	}
	for i, rec := range a.Trace {
		if err := rec.Validate(); err != nil {
			return fmt.Errorf("cluster: arrival trace record %d: %w", i, err)
		}
		if i > 0 && rec.AtUS < a.Trace[i-1].AtUS {
			return fmt.Errorf("cluster: arrival trace record %d at %dus precedes record %d",
				i, rec.AtUS, i-1)
		}
	}
	return nil
}

// rateAt is λ(t) in arrivals per second for the non-homogeneous
// processes; rate is the configured base ArrivalsPerSecond.
func (a *ArrivalConfig) rateAt(rate float64, t sim.Time) float64 {
	switch a.Process {
	case ArrivalDiurnal:
		phase := 2 * math.Pi * float64(t) / float64(a.DiurnalPeriod)
		return rate * (1 + a.DiurnalAmplitude*math.Sin(phase))
	case ArrivalFlash:
		if sim.Duration(t) >= a.FlashAt && sim.Duration(t) < a.FlashAt+a.FlashDuration {
			return rate * a.FlashFactor
		}
	}
	return rate
}

// nextArrivalWait draws the gap to the next generated arrival.
func (c *Cluster) nextArrivalWait() sim.Duration {
	a := &c.cfg.Arrival
	rate := c.cfg.ArrivalsPerSecond
	switch a.Process {
	case ArrivalDiurnal, ArrivalFlash:
		lamMax := rate * (1 + a.DiurnalAmplitude)
		if a.Process == ArrivalFlash {
			lamMax = rate * a.FlashFactor
		}
		now := c.engine.Now()
		// Bound the rejection loop: once a candidate lands past the
		// horizon the arrival can never fire, so stop thinning there.
		limit := sim.Time(c.cfg.Horizon) + sim.Time(sim.Second)
		t := now
		for {
			t = t.Add(sim.Duration(c.arrRNG.Exp(1e6 / lamMax)))
			if t > limit {
				return t.Sub(now)
			}
			if c.arrRNG.Float64()*lamMax <= a.rateAt(rate, t) {
				return t.Sub(now)
			}
		}
	default:
		// Poisson: the exact pre-refactor draw — one Exp per arrival.
		return sim.Duration(c.arrRNG.Exp(1e6 / rate))
	}
}

// TraceArrival is one recorded VM arrival in the replayable JSONL trace
// schema: integer-microsecond times, the VM shape, and per-VCPU workload
// references ("mcf", "memcached:64", "redis:2000").
type TraceArrival struct {
	AtUS     int64    `json:"at_us"`
	MemoryMB int64    `json:"memory_mb"`
	VCPUs    int      `json:"vcpus"`
	Priority int      `json:"priority"`
	Group    string   `json:"group,omitempty"`
	LifeUS   int64    `json:"life_us"`
	Profiles []string `json:"profiles,omitempty"`
}

// Validate checks one trace record's fields. It is exported so the spec
// layer can report per-record failures with its own field paths without
// duplicating the rules.
func (rec TraceArrival) Validate() error {
	if rec.AtUS < 0 {
		return fmt.Errorf("negative arrival time %dus", rec.AtUS)
	}
	if rec.MemoryMB <= 0 {
		return fmt.Errorf("memory %d MB", rec.MemoryMB)
	}
	if rec.VCPUs <= 0 {
		return fmt.Errorf("%d vcpus", rec.VCPUs)
	}
	if rec.Priority < int(controlplane.BestEffort) || rec.Priority > int(controlplane.Critical) {
		return fmt.Errorf("priority %d outside [%d, %d]",
			rec.Priority, controlplane.BestEffort, controlplane.Critical)
	}
	if rec.LifeUS <= 0 {
		return fmt.Errorf("lifetime %dus", rec.LifeUS)
	}
	if len(rec.Profiles) > rec.VCPUs {
		return fmt.Errorf("%d profiles for %d vcpus", len(rec.Profiles), rec.VCPUs)
	}
	for _, ref := range rec.Profiles {
		if _, err := parseProfileRef(ref); err != nil {
			return err
		}
	}
	return nil
}

// ReadTrace decodes a JSONL arrival trace: one TraceArrival object per
// line, blank lines skipped.
func ReadTrace(r io.Reader) ([]TraceArrival, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var recs []TraceArrival
	line := 0
	for sc.Scan() {
		line++
		b := bytes.TrimSpace(sc.Bytes())
		if len(b) == 0 {
			continue
		}
		var rec TraceArrival
		if err := json.Unmarshal(b, &rec); err != nil {
			return nil, fmt.Errorf("cluster: trace line %d: %w", line, err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("cluster: read trace: %w", err)
	}
	return recs, nil
}

// WriteTrace encodes an arrival trace as JSONL.
func WriteTrace(w io.Writer, recs []TraceArrival) error {
	enc := json.NewEncoder(w)
	for i, rec := range recs {
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("cluster: write trace record %d: %w", i, err)
		}
	}
	return nil
}

// recordArrival hands one arriving VM to the configured sink in the
// trace schema, so a run's offered load can be exported and replayed.
func (c *Cluster) recordArrival(vm *VM, refs []string) {
	if c.cfg.ArrivalSink == nil {
		return
	}
	c.cfg.ArrivalSink(TraceArrival{
		AtUS:     int64(vm.arriveAt),
		MemoryMB: vm.Spec.MemoryMB,
		VCPUs:    vm.Spec.VCPUs,
		Priority: int(vm.Spec.Priority),
		Group:    vm.Spec.Group,
		LifeUS:   int64(vm.life),
		Profiles: refs,
	})
}

// scheduleTraceArrivals arms trace replay: batches are chained, each
// handler scheduling the next, mirroring the generator's control flow.
func (c *Cluster) scheduleTraceArrivals() {
	c.traceNext = 0
	c.scheduleNextTraceBatch()
}

// scheduleNextTraceBatch schedules the next arrival batch: one record,
// or a run of records sharing a non-empty group and the same timestamp
// (a gang arriving together).
func (c *Cluster) scheduleNextTraceBatch() {
	recs := c.cfg.Arrival.Trace
	i := c.traceNext
	if i >= len(recs) {
		return
	}
	j := i + 1
	if recs[i].Group != "" {
		for j < len(recs) && recs[j].Group == recs[i].Group && recs[j].AtUS == recs[i].AtUS {
			j++
		}
	}
	c.traceNext = j
	lo, hi := i, j
	delay := sim.Time(recs[i].AtUS).Sub(c.engine.Now())
	if delay < 0 {
		delay = 0
	}
	c.engine.Schedule(delay, "arrival", func(*sim.Engine) {
		c.onTraceArrival(lo, hi)
		c.scheduleNextTraceBatch()
	})
}

// onTraceArrival admits the replayed records [lo, hi) of the trace,
// mirroring onArrival's bookkeeping exactly: same stats, same events,
// same queueing — only the spec comes from the trace instead of the RNG.
func (c *Cluster) onTraceArrival(lo, hi int) {
	if !c.sync() {
		return
	}
	now := c.engine.Now()
	recs := c.cfg.Arrival.Trace[lo:hi]
	group := recs[0].Group
	vms := make([]*VM, 0, len(recs))
	for k, rec := range recs {
		life := sim.Duration(rec.LifeUS)
		if life < sim.Second {
			life = sim.Second
		}
		prio := controlplane.Priority(rec.Priority)
		spec := VMSpec{
			Name:     fmt.Sprintf("vm%03d", len(c.vms)),
			MemoryMB: rec.MemoryMB,
			VCPUs:    rec.VCPUs,
			Profiles: c.traceProfiles[lo+k],
			Priority: prio,
			Group:    rec.Group,
		}
		vm := &VM{
			ID:       len(c.vms),
			Spec:     spec,
			arriveAt: now,
			life:     life,
		}
		c.vms = append(c.vms, vm)
		vms = append(vms, vm)
		c.stats.Arrivals++
		c.pstats[prio].Arrivals++
		c.recordArrival(vm, rec.Profiles)
		c.emit(EventVMArrive, nil, vm, "vm %s arrives: %d MB, %d vcpus, %s%s",
			spec.Name, spec.MemoryMB, spec.VCPUs, prio, gangTag(rec.Group))
	}
	if group != "" && c.cfg.Gang {
		c.enqueue(&admitUnit{id: c.unitSeq, vms: vms, gang: true,
			priority: vms[0].Spec.Priority, arriveAt: now, nextTry: now})
		c.unitSeq++
	} else {
		for _, vm := range vms {
			c.enqueue(&admitUnit{id: c.unitSeq, vms: []*VM{vm},
				priority: vm.Spec.Priority, arriveAt: now, nextTry: now})
			c.unitSeq++
		}
	}
	c.drainQueue()
}

// ---- workload references ----

type refKind uint8

const (
	refBatch refKind = iota
	refMemcached
	refRedis
)

// profileRef names one per-VCPU workload in the trace schema: a batch
// workload by catalog name, or a server workload with its load parameter
// ("memcached:<concurrency>", "redis:<connections>").
type profileRef struct {
	kind  refKind
	name  string // batch catalog name
	param int    // memcached concurrency / redis connections
}

// String renders the ref in the trace schema.
func (r profileRef) String() string {
	switch r.kind {
	case refMemcached:
		return "memcached:" + strconv.Itoa(r.param)
	case refRedis:
		return "redis:" + strconv.Itoa(r.param)
	}
	return r.name
}

// resolve builds the workload profile the ref names. Refs are validated
// at parse time (and generated refs draw from static tables), so a
// failure here is a programming error.
func (r profileRef) resolve() *workload.Profile {
	switch r.kind {
	case refMemcached:
		return workload.Memcached(r.param)
	case refRedis:
		return workload.Redis(r.param)
	}
	p, err := workload.ByName(r.name)
	if err != nil {
		panic(err)
	}
	return p
}

// parseProfileRef parses the trace schema's workload reference.
func parseProfileRef(s string) (profileRef, error) {
	if name, param, ok := strings.Cut(s, ":"); ok {
		v, err := strconv.Atoi(param)
		if err != nil || v <= 0 {
			return profileRef{}, fmt.Errorf("workload ref %q: bad parameter %q", s, param)
		}
		switch name {
		case "memcached":
			return profileRef{kind: refMemcached, param: v}, nil
		case "redis":
			return profileRef{kind: refRedis, param: v}, nil
		}
		return profileRef{}, fmt.Errorf("workload ref %q: parameters apply to memcached and redis only", s)
	}
	if _, err := workload.ByName(s); err != nil {
		return profileRef{}, fmt.Errorf("workload ref %q: %v", s, err) //vet:nowrap the catalog's not-found error is context, not a matchable sentinel
	}
	return profileRef{kind: refBatch, name: s}, nil
}

// resolveProfiles parses and resolves a record's workload references.
func resolveProfiles(refs []string) ([]*workload.Profile, error) {
	if len(refs) == 0 {
		return nil, nil
	}
	profs := make([]*workload.Profile, 0, len(refs))
	for _, s := range refs {
		ref, err := parseProfileRef(s)
		if err != nil {
			return nil, err
		}
		profs = append(profs, ref.resolve())
	}
	return profs, nil
}

// sortTrace orders records by (AtUS, then original order) — the order
// validate demands. Exported traces are already sorted; this is for
// hand-assembled ones.
func sortTrace(recs []TraceArrival) {
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].AtUS < recs[j].AtUS })
}
