package numa

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleJSON = `{
  "name": "my-box",
  "nodes": 2,
  "cpusPerNode": 8,
  "memoryPerNodeMB": 65536,
  "imcBandwidthGBs": 40,
  "llcSizeKB": 32768,
  "clockGHz": 3.0,
  "localMemLatencyNS": 80,
  "remoteMemLatencyNS": 140,
  "llcHitLatencyNS": 14,
  "linkBandwidthGTs": 9.6,
  "linksPerPair": 1
}`

func TestDecode(t *testing.T) {
	top, err := Decode(strings.NewReader(sampleJSON))
	if err != nil {
		t.Fatal(err)
	}
	if top.Name() != "my-box" || top.NumCPUs() != 16 || top.ClockGHz() != 3.0 {
		t.Fatalf("decoded %s", top)
	}
	if top.MemLatencyNS(0, 1) != 140 {
		t.Fatalf("remote latency = %v", top.MemLatencyNS(0, 1))
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []string{
		`{`,                 // truncated
		`{"bogusField": 1}`, // unknown key
		`{"nodes": 0}`,      // invalid config
		`{"nodes": 2, "cpusPerNode": 4, "memoryPerNodeMB": 1024,
		  "imcBandwidthGBs": 10, "llcSizeKB": 1024, "clockGHz": 2,
		  "localMemLatencyNS": 100, "remoteMemLatencyNS": 50}`, // remote < local
	}
	for i, c := range cases {
		if _, err := Decode(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

// TestExportRoundTrip dumps every preset to its JSON form, reloads it,
// and asserts the rebuilt topology is indistinguishable from the original
// (this is the contract behind vprobe-topo -json).
func TestExportRoundTrip(t *testing.T) {
	for name, mk := range Presets {
		orig := mk()
		fc := Export(orig)
		data, err := json.Marshal(fc)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		back, err := Decode(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("%s: reload: %v", name, err)
		}
		if Export(back) != fc {
			t.Fatalf("%s: round trip drifted:\n  out  %+v\n  back %+v", name, fc, Export(back))
		}
		if back.Name() != orig.Name() || back.NumNodes() != orig.NumNodes() ||
			back.NumCPUs() != orig.NumCPUs() ||
			back.TotalMemoryMB() != orig.TotalMemoryMB() ||
			back.ClockGHz() != orig.ClockGHz() {
			t.Fatalf("%s: rebuilt topology differs: %s vs %s", name, back, orig)
		}
		for a := 0; a < orig.NumNodes(); a++ {
			for b := 0; b < orig.NumNodes(); b++ {
				if back.MemLatencyNS(NodeID(a), NodeID(b)) != orig.MemLatencyNS(NodeID(a), NodeID(b)) {
					t.Fatalf("%s: latency(%d,%d) drifted", name, a, b)
				}
			}
		}
	}
}

func TestLoadFileAndResolve(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "box.json")
	if err := os.WriteFile(path, []byte(sampleJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	top, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if top.NumNodes() != 2 {
		t.Fatalf("nodes = %d", top.NumNodes())
	}
	// Resolve: preset name wins.
	preset, err := Resolve("xeon-e5620")
	if err != nil {
		t.Fatal(err)
	}
	if preset.ClockGHz() != 2.40 {
		t.Fatal("preset resolution broken")
	}
	// Resolve: falls back to a file path.
	fromFile, err := Resolve(path)
	if err != nil {
		t.Fatal(err)
	}
	if fromFile.Name() != "my-box" {
		t.Fatal("file resolution broken")
	}
	// Resolve: neither.
	if _, err := Resolve("no-such-thing"); err == nil {
		t.Fatal("bogus name accepted")
	}
	if _, err := LoadFile(filepath.Join(dir, "absent.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}
