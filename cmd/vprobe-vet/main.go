// Command vprobe-vet is the repo's determinism-and-correctness linter: a
// multichecker over the custom analyzers that machine-check the
// determinism contract (DESIGN.md §8), the hot-path allocation contract
// (§13), and the deprecation fences (§11). Per-package analyzers run over
// each loaded package; module analyzers (hotpath, specfield,
// telemetryhandle) run once over the whole loaded set so they can follow
// call edges and contracts across package boundaries. A final pass
// reports dangling //vet: directives — suppressions naming no known
// analyzer, which would otherwise silently suppress nothing forever.
//
// CI runs it next to go vet; locally, `make lint` does the same.
//
// Usage:
//
//	vprobe-vet [-list] [-json] [-only name,name] [packages]
//
// Packages default to ./... resolved against the enclosing module. With
// -json, each finding is one JSON object per line ({"file": ...,
// "line": ..., "col": ..., "analyzer": ..., "message": ...}) for
// toolchain consumption. Exit status: 0 clean, 1 findings, 2 usage or
// load failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"vprobe/internal/analysis/ctxflow"
	"vprobe/internal/analysis/deprecated"
	"vprobe/internal/analysis/errsentinel"
	"vprobe/internal/analysis/eventswitch"
	"vprobe/internal/analysis/framework"
	"vprobe/internal/analysis/hotpath"
	"vprobe/internal/analysis/mapiter"
	"vprobe/internal/analysis/specfield"
	"vprobe/internal/analysis/telemetryhandle"
	"vprobe/internal/analysis/walltime"
)

var analyzers = []*framework.Analyzer{
	ctxflow.Analyzer,
	deprecated.Analyzer,
	errsentinel.Analyzer,
	eventswitch.Analyzer,
	mapiter.Analyzer,
	walltime.Analyzer,
}

var moduleAnalyzers = []*framework.ModuleAnalyzer{
	hotpath.Analyzer,
	specfield.Analyzer,
	telemetryhandle.Analyzer,
}

// directivesName is the pseudo-analyzer reporting dangling //vet:
// suppressions.
const directivesName = "directives"

// finding is one diagnostic in output form; the JSON field names are the
// -json wire format.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	list := flag.Bool("list", false, "print the analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit one JSON object per finding instead of text")
	only := flag.String("only", "", "comma-separated analyzer names to run (default all)")
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		for _, a := range moduleAnalyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		fmt.Printf("%-16s %s\n", directivesName,
			"report //vet: suppressions whose name no analyzer honours")
		return
	}

	activePkg, activeMod, runDangling, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vprobe-vet: %v\n", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	ld, root, err := framework.NewModuleLoader(cwd)
	if err != nil {
		fatal(err)
	}
	modPath, err := framework.ModulePath(root)
	if err != nil {
		fatal(err)
	}
	pkgs, err := ld.LoadPatterns(root, modPath, patterns)
	if err != nil {
		fatal(err)
	}

	var findings []finding
	add := func(name string, diags []framework.Diagnostic) {
		for _, d := range diags {
			pos := ld.Fset.Position(d.Pos)
			file := pos.Filename
			if rel, err := filepath.Rel(cwd, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = rel
			}
			findings = append(findings, finding{
				File: file, Line: pos.Line, Col: pos.Column,
				Analyzer: name, Message: d.Message,
			})
		}
	}

	for _, pkg := range pkgs {
		for _, a := range activePkg {
			diags, err := framework.RunAnalyzer(a, pkg)
			if err != nil {
				fatal(err)
			}
			add(a.Name, diags)
		}
	}
	for _, a := range activeMod {
		diags, err := framework.RunModuleAnalyzer(a, ld.Fset, pkgs)
		if err != nil {
			fatal(err)
		}
		add(a.Name, diags)
	}
	if runDangling {
		add(directivesName, framework.DanglingDirectives(ld.Fset, pkgs, knownDirectives()))
	}

	if err := render(os.Stdout, findings, *jsonOut); err != nil {
		fatal(err)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "vprobe-vet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// render sorts the findings deterministically and writes them as text
// lines or JSON objects (one per line).
func render(w io.Writer, findings []finding, jsonOut bool) error {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	enc := json.NewEncoder(w)
	for _, f := range findings {
		if jsonOut {
			if err := enc.Encode(f); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "%s:%d:%d: [%s] %s\n",
			f.File, f.Line, f.Col, f.Analyzer, f.Message); err != nil {
			return err
		}
	}
	return nil
}

// selectAnalyzers filters the registered analyzers by the -only flag. The
// dangling-directive pass runs with the full set (so filtering never
// makes a valid suppression look dangling) and is selectable by name.
func selectAnalyzers(only string) ([]*framework.Analyzer, []*framework.ModuleAnalyzer, bool, error) {
	if only == "" {
		return analyzers, moduleAnalyzers, true, nil
	}
	byName := make(map[string]*framework.Analyzer)
	for _, a := range analyzers {
		byName[a.Name] = a
	}
	modByName := make(map[string]*framework.ModuleAnalyzer)
	for _, a := range moduleAnalyzers {
		modByName[a.Name] = a
	}
	var pkgActive []*framework.Analyzer
	var modActive []*framework.ModuleAnalyzer
	dangling := false
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		switch {
		case byName[name] != nil:
			pkgActive = append(pkgActive, byName[name])
		case modByName[name] != nil:
			modActive = append(modActive, modByName[name])
		case name == directivesName:
			dangling = true
		default:
			return nil, nil, false, fmt.Errorf("unknown analyzer %q", name)
		}
	}
	return pkgActive, modActive, dangling, nil
}

// knownDirectives is the union of every analyzer's suppression names.
func knownDirectives() []string {
	var out []string
	for _, a := range analyzers {
		out = append(out, a.Directives...)
	}
	for _, a := range moduleAnalyzers {
		out = append(out, a.Directives...)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "vprobe-vet: %v\n", err)
	os.Exit(2)
}
