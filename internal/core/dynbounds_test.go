package core

import (
	"testing"
)

func TestDynamicBoundsStartsAtPaperDefaults(t *testing.T) {
	d := NewDynamicBounds()
	if d.Current() != DefaultBounds() {
		t.Fatalf("initial bounds = %+v", d.Current())
	}
	// Too few samples: unchanged.
	d.Observe([]float64{10, 20})
	if d.Current() != DefaultBounds() {
		t.Fatal("bounds moved with insufficient samples")
	}
}

func TestDynamicBoundsAdaptsToPopulation(t *testing.T) {
	d := NewDynamicBounds()
	// A population twice as cache-hungry as the paper's calibration set.
	pop := []float64{4, 6, 8, 30, 32, 34, 44, 46, 48, 50}
	for i := 0; i < 5; i++ {
		d.Observe(pop)
	}
	b := d.Current()
	if b == DefaultBounds() {
		t.Fatal("bounds did not adapt")
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if b.Low < 1 {
		t.Fatalf("low bound below floor: %v", b.Low)
	}
	if b.High <= b.Low {
		t.Fatalf("bounds inverted: %+v", b)
	}
	// The heaviest pressures classify as LLC-T, the lightest as LLC-FR.
	if b.Classify(50) != TypeT {
		t.Fatalf("pressure 50 classified %v with bounds %+v", b.Classify(50), b)
	}
	if b.Classify(0.5) != TypeFR {
		t.Fatalf("pressure 0.5 classified %v", b.Classify(0.5))
	}
}

func TestDynamicBoundsWindowSlides(t *testing.T) {
	d := NewDynamicBounds()
	d.Window = 16
	for i := 0; i < 10; i++ {
		d.Observe([]float64{5, 10, 15, 20})
	}
	if d.SampleCount() > 16 {
		t.Fatalf("window not trimmed: %d samples", d.SampleCount())
	}
}

func TestDynamicBoundsIgnoresIdle(t *testing.T) {
	d := NewDynamicBounds()
	d.Observe([]float64{0, 0, 0, -1})
	if d.SampleCount() != 0 {
		t.Fatalf("idle pressures buffered: %d", d.SampleCount())
	}
}

func TestDynamicBoundsDegeneratePopulation(t *testing.T) {
	d := NewDynamicBounds()
	// All-identical pressures: high falls back to 1.5x low.
	for i := 0; i < 4; i++ {
		d.Observe([]float64{10, 10, 10, 10})
	}
	b := d.Current()
	if b.High <= b.Low {
		t.Fatalf("degenerate population inverted bounds: %+v", b)
	}
}
