package metrics

import (
	"math"
	"strings"
	"testing"

	"vprobe/internal/mem"
	"vprobe/internal/numa"
	"vprobe/internal/sim"
	"vprobe/internal/workload"
	"vprobe/internal/xen"
)

// fakePolicy is a minimal policy for building domains in tests.
type fakePolicy struct{}

func (fakePolicy) Name() string                                      { return "fake" }
func (fakePolicy) UsesPMU() bool                                     { return false }
func (fakePolicy) NUMAAwareBalance() bool                            { return false }
func (fakePolicy) PickNext(h *xen.Hypervisor, p *xen.PCPU) *xen.VCPU { return h.NextLocal(p) }
func (fakePolicy) OnTick(*xen.Hypervisor, *xen.VCPU)                 {}
func (fakePolicy) Period() sim.Duration                              { return 0 }
func (fakePolicy) OnPeriod(*xen.Hypervisor)                          {}

func buildDomain(t *testing.T) (*xen.Hypervisor, *xen.Domain) {
	t.Helper()
	h := xen.New(numa.XeonE5620(), fakePolicy{}, xen.DefaultConfig())
	d, err := h.CreateDomain("vm", 4096, 4, mem.PolicyStripe)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.AttachApp(d, 0, workload.Povray().Scale(0.01)); err != nil {
		t.Fatal(err)
	}
	if _, err := h.AttachApp(d, 1, workload.Hungry()); err != nil {
		t.Fatal(err)
	}
	if _, err := h.AttachApp(d, 2, workload.Memcached(32)); err != nil {
		t.Fatal(err)
	}
	return h, d
}

func TestCollectDomainFilters(t *testing.T) {
	h, d := buildDomain(t)
	end := h.Run(2 * sim.Second)
	runs := CollectDomain(d, end)
	// povray (batch) and memcached (server) are measured; hungry is not.
	if len(runs) != 2 {
		t.Fatalf("collected %d runs, want 2: %+v", len(runs), runs)
	}
	byApp := map[string]AppRun{}
	for _, r := range runs {
		byApp[r.App] = r
	}
	if _, ok := byApp["hungry"]; ok {
		t.Fatal("hungry loop was measured")
	}
	srv, ok := byApp["memcached-c32"]
	if !ok {
		t.Fatal("server missing from runs")
	}
	if srv.Requests <= 0 {
		t.Fatal("server requests not counted")
	}
	if srv.ExecTime != sim.Duration(end) {
		t.Fatalf("unfinished server ExecTime = %v, want horizon", srv.ExecTime)
	}
	pov := byApp["povray"]
	if !pov.Finished {
		t.Fatal("scaled povray did not finish in 2s")
	}
	if pov.ExecTime >= sim.Duration(end) {
		t.Fatal("finished app should report completion time, not horizon")
	}
}

func TestAggregations(t *testing.T) {
	runs := []AppRun{
		{App: "a", ExecTime: 2 * sim.Second, Total: 100, Remote: 30, Requests: 5},
		{App: "b", ExecTime: 4 * sim.Second, Total: 300, Remote: 10, Requests: 15},
	}
	if got := AvgExecSeconds(runs); got != 3 {
		t.Fatalf("AvgExecSeconds = %v", got)
	}
	if got := MaxExecSeconds(runs); got != 4 {
		t.Fatalf("MaxExecSeconds = %v", got)
	}
	if got := SumTotal(runs); got != 400 {
		t.Fatalf("SumTotal = %v", got)
	}
	if got := SumRemote(runs); got != 40 {
		t.Fatalf("SumRemote = %v", got)
	}
	if got := SumRequests(runs); got != 20 {
		t.Fatalf("SumRequests = %v", got)
	}
	if got := AvgRemoteRatio(runs); got != 0.1 {
		t.Fatalf("AvgRemoteRatio = %v", got)
	}
}

func TestEmptyAggregations(t *testing.T) {
	if AvgExecSeconds(nil) != 0 || MaxExecSeconds(nil) != 0 ||
		AvgRemoteRatio(nil) != 0 || AvgPageRemoteRatio(nil) != 0 {
		t.Fatal("empty aggregations should be zero")
	}
}

func TestNormalize(t *testing.T) {
	out := Normalize(map[string]float64{"a": 10, "b": 5}, "a")
	if out["a"] != 1 || out["b"] != 0.5 {
		t.Fatalf("Normalize = %v", out)
	}
	zero := Normalize(map[string]float64{"a": 10}, "missing")
	if zero["a"] != 0 {
		t.Fatalf("missing baseline = %v", zero)
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("Title", "col1", "column-two")
	tab.AddRow("a", "1")
	tab.AddRow("bbbb") // short row padded
	tab.AddNote("note %d", 7)
	s := tab.String()
	for _, want := range []string{"Title", "col1", "column-two", "bbbb", "note: note 7", "----"} {
		if !strings.Contains(s, want) {
			t.Fatalf("table missing %q:\n%s", want, s)
		}
	}
	if tab.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tab.NumRows())
	}
	if len(tab.Rows()[1]) != 2 {
		t.Fatal("short row not padded to column count")
	}
}

func TestFormatters(t *testing.T) {
	if F(1.23456) != "1.235" {
		t.Fatalf("F = %q", F(1.23456))
	}
	if Pct(0.7741) != "77.41%" {
		t.Fatalf("Pct = %q", Pct(0.7741))
	}
}

func TestSortedKeys(t *testing.T) {
	keys := SortedKeys(map[string]int{"b": 1, "a": 2, "c": 3})
	if keys[0] != "a" || keys[1] != "b" || keys[2] != "c" {
		t.Fatalf("SortedKeys = %v", keys)
	}
}

func TestPageRemoteConsistency(t *testing.T) {
	h, d := buildDomain(t)
	end := h.Run(2 * sim.Second)
	for _, r := range CollectDomain(d, end) {
		want := mem.RemotePageRatio(r.RemoteRatio, touchesFor(t, d, r))
		if math.Abs(r.PageRemoteRatio-want) > 1e-9 {
			t.Fatalf("%s: page remote %v, want %v", r.App, r.PageRemoteRatio, want)
		}
	}
}

func touchesFor(t *testing.T, d *xen.Domain, r AppRun) float64 {
	t.Helper()
	for _, v := range d.VCPUs {
		if v.ID == r.VCPU {
			return v.App.TouchesPerPage
		}
	}
	t.Fatalf("VCPU %d not found", r.VCPU)
	return 0
}
