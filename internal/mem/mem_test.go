package mem

import (
	"math"
	"testing"
	"testing/quick"

	"vprobe/internal/numa"
	"vprobe/internal/sim"
)

func TestUniformAndConcentrated(t *testing.T) {
	u := Uniform(4)
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, f := range u {
		if f != 0.25 {
			t.Fatalf("uniform = %v", u)
		}
	}
	c := Concentrated(2, 1)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.LocalFraction(1) != 1 || c.LocalFraction(0) != 0 {
		t.Fatalf("concentrated = %v", c)
	}
	if c.Home() != 1 {
		t.Fatalf("Home = %v", c.Home())
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []Dist{
		{},
		{0.5, 0.4},          // sums to 0.9
		{1.5, -0.5},         // negative entry
		{math.NaN(), 1},     // NaN
		{math.Inf(1), -0.1}, // Inf
	}
	for i, d := range cases {
		if err := d.Validate(); err == nil {
			t.Errorf("case %d accepted: %v", i, d)
		}
	}
}

func TestNormalize(t *testing.T) {
	d := Dist{2, 6}
	d.Normalize()
	if d[0] != 0.25 || d[1] != 0.75 {
		t.Fatalf("normalized = %v", d)
	}
	z := Dist{0, 0, 0}
	z.Normalize()
	for _, f := range z {
		if math.Abs(f-1.0/3) > 1e-12 {
			t.Fatalf("zero vector normalized = %v", z)
		}
	}
	neg := Dist{-1, 1}
	neg.Normalize()
	if neg[0] != 0 || neg[1] != 1 {
		t.Fatalf("negative entries should clamp: %v", neg)
	}
}

func TestRemoteFraction(t *testing.T) {
	d := Dist{0.8, 0.2}
	if got := d.RemoteFraction(0); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("remote from node0 = %v", got)
	}
	if got := d.RemoteFraction(1); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("remote from node1 = %v", got)
	}
	if got := d.RemoteFraction(numa.NodeID(9)); got != 1 {
		t.Fatalf("remote from invalid node = %v, want 1", got)
	}
}

func TestHomeTieBreaksLow(t *testing.T) {
	d := Dist{0.5, 0.5}
	if d.Home() != 0 {
		t.Fatalf("tie should pick lowest id, got %v", d.Home())
	}
}

func TestBlendProperties(t *testing.T) {
	check := func(w float64, a0, b0 uint8) bool {
		if math.IsNaN(w) || math.IsInf(w, 0) {
			return true
		}
		a := Dist{float64(a0%100) / 100, 1 - float64(a0%100)/100}
		b := Dist{float64(b0%100) / 100, 1 - float64(b0%100)/100}
		out := Blend(a, b, w)
		return out.Validate() == nil
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
	// w=1 returns a, w=0 returns b.
	a, b := Dist{1, 0}, Dist{0, 1}
	if got := Blend(a, b, 1); got[0] != 1 {
		t.Fatalf("Blend w=1 = %v", got)
	}
	if got := Blend(a, b, 0); got[1] != 1 {
		t.Fatalf("Blend w=0 = %v", got)
	}
}

func TestShiftToward(t *testing.T) {
	d := Dist{0.5, 0.5}
	d.ShiftToward(0, 0.5)
	if math.Abs(d[0]-0.75) > 1e-12 || math.Abs(d[1]-0.25) > 1e-12 {
		t.Fatalf("shift = %v", d)
	}
	d.ShiftToward(0, 1)
	if math.Abs(d[0]-1) > 1e-12 {
		t.Fatalf("full shift = %v", d)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Clamped amounts.
	e := Dist{0.5, 0.5}
	e.ShiftToward(1, 2)
	if math.Abs(e[1]-1) > 1e-12 {
		t.Fatalf("over-shift = %v", e)
	}
	f := Dist{0.5, 0.5}
	f.ShiftToward(1, -1)
	if f[1] != 0.5 {
		t.Fatalf("negative shift changed dist: %v", f)
	}
}

func TestRemotePageRatio(t *testing.T) {
	// Soplex-like: r=0.5, k=2.1 -> ~76.7% (paper: 77.41%).
	got := RemotePageRatio(0.5, 2.1)
	if math.Abs(got-0.7667) > 0.01 {
		t.Fatalf("RemotePageRatio(0.5, 2.1) = %v", got)
	}
	// Monotone in both arguments, bounded in [0,1].
	check := func(r, k float64) bool {
		if math.IsNaN(r) || math.IsNaN(k) || math.IsInf(r, 0) || math.IsInf(k, 0) {
			return true
		}
		v := RemotePageRatio(r, k)
		if v < 0 || v > 1 {
			return false
		}
		return RemotePageRatio(math.Min(1, math.Abs(r)), 3) >= RemotePageRatio(math.Min(1, math.Abs(r)), 2)-1e-12
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
	if RemotePageRatio(0, 5) != 0 {
		t.Fatal("zero remote access should give zero page ratio")
	}
	if RemotePageRatio(1, 1) != 1 {
		t.Fatal("all-remote should give page ratio 1")
	}
}

func newAlloc(t *testing.T) *Allocator {
	t.Helper()
	return NewAllocator(numa.XeonE5620())
}

func TestAllocFillPacksNodeZero(t *testing.T) {
	a := newAlloc(t)
	d, err := a.Alloc(8*1024, PolicyFill, numa.NoNode)
	if err != nil {
		t.Fatal(err)
	}
	if d[0] != 1 || d[1] != 0 {
		t.Fatalf("fill dist = %v, want all on node 0", d)
	}
	// Next 8 GB spills: 4 GB left on node 0, 4 GB on node 1.
	d2, err := a.Alloc(8*1024, PolicyFill, numa.NoNode)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d2[0]-0.5) > 1e-9 || math.Abs(d2[1]-0.5) > 1e-9 {
		t.Fatalf("spill dist = %v, want 50/50", d2)
	}
	if a.FreeMB(0) != 0 {
		t.Fatalf("node 0 free = %d, want 0", a.FreeMB(0))
	}
}

func TestAllocStripe(t *testing.T) {
	a := newAlloc(t)
	d, err := a.Alloc(8*1024, PolicyStripe, numa.NoNode)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d[0]-0.5) > 1e-9 || math.Abs(d[1]-0.5) > 1e-9 {
		t.Fatalf("stripe dist = %v", d)
	}
	// 15 GB VM1 from the paper: striped over 24 GB total works and is
	// roughly even.
	d2, err := a.Alloc(15*1024-8, PolicyStripe, numa.NoNode)
	if err != nil {
		t.Fatal(err)
	}
	if err := d2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAllocLocal(t *testing.T) {
	a := newAlloc(t)
	d, err := a.Alloc(4*1024, PolicyLocal, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d[1] != 1 {
		t.Fatalf("local dist = %v", d)
	}
	// Preferred full -> spill.
	if _, err := a.Alloc(8*1024, PolicyLocal, 1); err != nil {
		t.Fatal(err)
	}
	d3, err := a.Alloc(2*1024, PolicyLocal, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d3[0] != 1 {
		t.Fatalf("spill-from-full dist = %v", d3)
	}
	if _, err := a.Alloc(10, PolicyLocal, numa.NodeID(7)); err == nil {
		t.Fatal("invalid preferred node accepted")
	}
}

func TestAllocErrors(t *testing.T) {
	a := newAlloc(t)
	if _, err := a.Alloc(0, PolicyFill, numa.NoNode); err == nil {
		t.Fatal("zero-size allocation accepted")
	}
	if _, err := a.Alloc(25*1024, PolicyFill, numa.NoNode); err == nil {
		t.Fatal("oversized allocation accepted")
	}
	if _, err := a.Alloc(10, Policy(42), numa.NoNode); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestAllocConservesCapacity(t *testing.T) {
	check := func(sz16 uint16, pol8 uint8) bool {
		a := NewAllocator(numa.XeonE5620())
		total := a.TotalFreeMB()
		size := int64(sz16%20000) + 1
		pol := Policy(int(pol8) % 3)
		d, err := a.Alloc(size, pol, 0)
		if err != nil {
			return a.TotalFreeMB() == total // failed alloc must not leak
		}
		if d.Validate() != nil {
			return false
		}
		if a.TotalFreeMB() != total-size {
			return false
		}
		a.Release(d, size)
		return a.TotalFreeMB() == total
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFirstTouch(t *testing.T) {
	vm := Dist{0.5, 0.5}
	d := FirstTouch(vm, 0, 0.8)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// 0.8*[1,0] + 0.2*[0.5,0.5] = [0.9, 0.1]
	if math.Abs(d[0]-0.9) > 1e-9 {
		t.Fatalf("first-touch dist = %v", d)
	}
	// Start node without VM memory: follows VM layout.
	vm2 := Dist{1, 0}
	d2 := FirstTouch(vm2, 1, 0.8)
	if d2[0] != 1 {
		t.Fatalf("first-touch on empty node = %v", d2)
	}
	// Zero locality reproduces the VM layout.
	d3 := FirstTouch(vm, 1, 0)
	if math.Abs(d3[0]-0.5) > 1e-9 {
		t.Fatalf("zero-locality dist = %v", d3)
	}
}

func TestMigratorStep(t *testing.T) {
	m := DefaultMigrator()
	d := Dist{0.2, 0.8}
	cycles := m.Step(d, 0, sim.Second, 1000)
	if cycles <= 0 {
		t.Fatal("migration reported zero cost")
	}
	if d[0] <= 0.2 {
		t.Fatalf("no pages moved: %v", d)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Below threshold: no movement.
	d2 := Dist{0.9, 0.1}
	if c := m.Step(d2, 0, sim.Second, 1000); c != 0 || d2[0] != 0.9 {
		t.Fatalf("migrated below threshold: cycles=%v dist=%v", c, d2)
	}
	// Nil migrator is a no-op.
	var nilM *Migrator
	d3 := Dist{0.5, 0.5}
	if c := nilM.Step(d3, 0, sim.Second, 1000); c != 0 {
		t.Fatal("nil migrator did work")
	}
	// Zero elapsed is a no-op.
	d4 := Dist{0.2, 0.8}
	if c := m.Step(d4, 0, 0, 1000); c != 0 || d4[0] != 0.2 {
		t.Fatal("zero-elapsed step did work")
	}
}

func TestMigratorConvergesHome(t *testing.T) {
	m := DefaultMigrator()
	d := Dist{0.1, 0.9}
	for i := 0; i < 200; i++ {
		m.Step(d, 0, sim.Second, 100)
	}
	// Converges until remote fraction drops below the threshold.
	if d.RemoteFraction(0) > m.MinRemoteFraction+1e-9 {
		t.Fatalf("did not converge: %v", d)
	}
}

func TestPolicyString(t *testing.T) {
	if PolicyFill.String() != "fill" || PolicyStripe.String() != "stripe" || PolicyLocal.String() != "local" {
		t.Fatal("policy names wrong")
	}
	if Policy(9).String() == "" {
		t.Fatal("unknown policy stringer empty")
	}
}
