package experiments

import (
	"context"
	"fmt"

	"vprobe/internal/harness"
	"vprobe/internal/mem"
	"vprobe/internal/metrics"
	"vprobe/internal/numa"
	"vprobe/internal/sched"
	"vprobe/internal/workload"
	"vprobe/internal/xen"
)

// runFig3 reproduces the §IV-A calibration experiment: one VM with 4 GB of
// node-local memory and a single VCPU pinned to its local node runs each
// application alone; the measured LLC miss rate (Fig. 3a) and LLC
// references per thousand instructions (Fig. 3b) justify the (3, 20)
// classification bounds.
func runFig3(ctx context.Context, opts Options) (*Result, error) {
	opts = opts.normalized()
	r := &Result{ID: "fig3", Title: "Solo LLC miss rate and RPTI (paper Fig. 3)"}
	t := metrics.NewTable("Fig. 3", "app", "miss-rate", "RPTI", "class(Eq.3)")

	bounds := map[string]float64{"low": 3, "high": 20}
	apps := workload.Fig3Apps()
	type solo struct{ missRate, rpti float64 }
	solos, err := harness.Map(ctx, harness.Workers(opts.Workers, len(apps)), len(apps),
		func(ctx context.Context, i int) (solo, error) {
			app := apps[i]
			pol, err := policyFor(sched.KindVProbe)
			if err != nil {
				return solo{}, err
			}
			cfg := xen.DefaultConfig()
			cfg.Seed = opts.Seed
			h := xen.New(numa.XeonE5620(), pol, cfg)
			d, err := h.CreateDomain("VM1", 4*1024, 1, mem.PolicyLocal)
			if err != nil {
				return solo{}, err
			}
			p := app.Clone()
			p.TotalInstructions *= opts.Scale
			v, err := h.AttachApp(d, 0, p)
			if err != nil {
				return solo{}, err
			}
			// Pin to PCPU 0; PolicyLocal put the VM's memory on node 0,
			// so the VCPU is local to its pages, as in the paper.
			if err := h.Pin(v, 0); err != nil {
				return solo{}, err
			}
			h.WatchDomains(d)
			end, err := h.RunContext(ctx, opts.Horizon)
			if err != nil {
				return solo{}, fmt.Errorf("%s: %w", app.Name, err)
			}
			opts.emitScenario(app.Name+"/solo", end)

			c := v.Counters
			var s solo
			if c.LLCRef > 0 {
				s.missRate = c.LLCMiss / c.LLCRef
			}
			if c.Instructions > 0 {
				s.rpti = c.LLCRef / c.Instructions * 1000
			}
			return s, nil
		})
	if err != nil {
		return nil, err
	}
	for i, app := range apps {
		s := solos[i]
		class := "LLC-FI"
		switch {
		case s.rpti < bounds["low"]:
			class = "LLC-FR"
		case s.rpti >= bounds["high"]:
			class = "LLC-T"
		}
		r.Set("missrate/solo", app.Name, s.missRate)
		r.Set("rpti/solo", app.Name, s.rpti)
		t.AddRow(app.Name, metrics.Pct(s.missRate), metrics.F(s.rpti), class)
	}
	t.AddNote("paper RPTI: povray 0.48, ep 2.01, lu 15.38, mg 16.33, milc 21.68, libquantum 22.41")
	t.AddNote("bounds chosen: low=3, high=20")
	r.Tables = append(r.Tables, t)
	return r, nil
}

func init() {
	register(&Experiment{
		ID:    "fig3",
		Title: "Bound calibration (solo miss rate and RPTI)",
		Paper: "Fig. 3: RPTI separates LLC-FR (<3), LLC-FI (3..20), LLC-T (>=20)",
		run:   runFig3,
	})
}
