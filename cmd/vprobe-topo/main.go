// Command vprobe-topo prints the machine presets: topology, latency
// matrix, and the paper's Table I configuration.
//
// Usage:
//
//	vprobe-topo [-json] [preset ...]
//
// With -json each topology is emitted in the JSON schema LoadFile reads,
// so a preset can be dumped, edited, and fed back via the -topology flag
// of vprobe-cluster (or any CLI that resolves topology files).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"vprobe/internal/numa"
)

func main() {
	asJSON := flag.Bool("json", false, "emit topologies as loadable JSON instead of text")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [-json] [preset ...]\npresets:\n", os.Args[0])
		for _, name := range presetNames() {
			fmt.Fprintf(os.Stderr, "  %s\n", name)
		}
	}
	flag.Parse()

	names := flag.Args()
	if len(names) == 0 {
		names = presetNames()
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	for _, name := range names {
		top, err := numa.Resolve(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *asJSON {
			if err := enc.Encode(numa.Export(top)); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			continue
		}
		fmt.Printf("topology %q\n%s\n", name, top)
		fmt.Println("  distance matrix (SLIT, 10 = local):")
		for a := 0; a < top.NumNodes(); a++ {
			fmt.Print("   ")
			for b := 0; b < top.NumNodes(); b++ {
				fmt.Printf(" %3d", top.Distance(numa.NodeID(a), numa.NodeID(b)))
			}
			fmt.Println()
		}
		fmt.Println()
	}
}

func presetNames() []string {
	names := make([]string, 0, len(numa.Presets))
	for n := range numa.Presets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
