package main

import (
	"bytes"
	"strings"
	"testing"

	"vprobe/internal/sim"
	"vprobe/internal/telemetry"
)

// sampleSpans renders a small recorded decision as the JSONL stream the
// CLI reads: one VM placed on host0 after a capacity veto of host2, with
// host1 the losing candidate, then preempted.
func sampleSpans(t *testing.T) []byte {
	t.Helper()
	tr := telemetry.NewTracer(3, 0)
	vm := tr.Begin(0, telemetry.NoSpan, telemetry.SpanVM, "", "vm000", "vm vm000")
	place := tr.Begin(sim.Time(sim.Second), vm, telemetry.SpanPlace, "host0", "vm000", "place vm000 attempt 1")
	tr.SetScore(place, 200)
	tr.Point(sim.Time(sim.Second), place, telemetry.SpanFilter, "host0", "vm000",
		"capacity", "admitted 2, vetoed 1: host2: out of memory")
	sc := tr.Point(sim.Time(sim.Second), place, telemetry.SpanScore, "host0", "vm000",
		"least-loaded", "raw 0.50 × weight 1.00")
	tr.SetScore(sc, 50)
	for _, cand := range []struct {
		host  string
		total float64
	}{{"host0", 200}, {"host1", 120}} {
		ref := tr.Point(sim.Time(sim.Second), place, telemetry.SpanCandidate, cand.host, "vm000",
			"candidate "+cand.host, "least-loaded "+cand.host)
		tr.SetScore(ref, cand.total)
	}
	tr.End(place, sim.Time(sim.Second))
	pre := tr.Point(sim.Time(2*sim.Second), vm, telemetry.SpanPreempt, "host0", "vm000",
		"preempt vm000", "for vm009 (critical > batch), killed")
	tr.SetCost(pre, sim.Duration(2500))
	tr.CloseOpen(sim.Time(3 * sim.Second))
	var buf bytes.Buffer
	if err := tr.WriteSpansJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestQuerySubcommands(t *testing.T) {
	raw := sampleSpans(t)
	cases := []struct {
		args []string
		want []string
	}{
		{[]string{"list"}, []string{"vm000"}},
		{[]string{"summary"}, []string{"place", "preempt", "vms: vm000"}},
		{[]string{"why", "vm000"}, []string{"→ host0", "capacity", "least-loaded"}},
		{[]string{"why-not", "vm000", "host2"}, []string{"vetoed by capacity", "out of memory"}},
		{[]string{"why-not", "vm000", "host1"}, []string{"scored 120.00 vs winner 200.00"}},
		{[]string{"why-not", "vm000", "host0"}, []string{"WAS placed"}},
		{[]string{"rejected", "vm000"}, []string{"never rejected"}},
		{[]string{"preempted", "vm000"}, []string{"for vm009", "cost 2.500ms"}},
		{[]string{"timeline", "vm000"}, []string{"timeline of vm000", "preempt"}},
	}
	for _, tc := range cases {
		out, err := query(bytes.NewReader(raw), tc.args)
		if err != nil {
			t.Fatalf("%v: %v", tc.args, err)
		}
		for _, want := range tc.want {
			if !strings.Contains(out, want) {
				t.Fatalf("%v: missing %q in:\n%s", tc.args, want, out)
			}
		}
	}
}

func TestQueryErrors(t *testing.T) {
	raw := sampleSpans(t)
	for _, args := range [][]string{
		{"why"},                     // missing vm
		{"why-not", "vm000"},        // missing host
		{"list", "extra"},           // extra arg
		{"frobnicate"},              // unknown subcommand
		{"why", "ghost"},            // unknown vm
		{"timeline", "vm000", "x"},  // extra arg
		{"preempted", "no-such-vm"}, // unknown vm
	} {
		if _, err := query(bytes.NewReader(raw), args); err == nil {
			t.Fatalf("query(%v) succeeded, want error", args)
		}
	}
}

func TestQueryEmptyStream(t *testing.T) {
	out, err := query(strings.NewReader(""), []string{"summary"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "empty trace") {
		t.Fatalf("summary of empty stream = %q", out)
	}
	if out, err := query(strings.NewReader(""), []string{"list"}); err != nil || out != "" {
		t.Fatalf("list of empty stream = %q, %v", out, err)
	}
}

func TestQueryBadStream(t *testing.T) {
	if _, err := query(strings.NewReader("not json\n"), []string{"summary"}); err == nil {
		t.Fatal("query accepted a malformed span stream")
	}
}
