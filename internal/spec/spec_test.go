package spec_test

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"vprobe/internal/spec"
)

// TestScenarioNormalizeDefaults asserts every defaulted field becomes
// explicit and normalization is idempotent.
func TestScenarioNormalizeDefaults(t *testing.T) {
	s := spec.ScenarioV1{VMs: []spec.VMV1{{Name: "vm", MemoryMB: 1024, VCPUs: 1}}}
	n := s.Normalize()
	if n.Version != spec.VersionV1 {
		t.Errorf("Version = %q, want %q", n.Version, spec.VersionV1)
	}
	if n.Scheduler != "credit" || n.Topology != "xeon-e5620" || n.Seed != 1 {
		t.Errorf("defaults = %q/%q/%d, want credit/xeon-e5620/1", n.Scheduler, n.Topology, n.Seed)
	}
	if n.Horizon.Std() != 30*time.Second || n.SamplePeriod.Std() != time.Second {
		t.Errorf("horizon/sample = %v/%v", n.Horizon.Std(), n.SamplePeriod.Std())
	}
	if n.VMs[0].Memory != "fill" {
		t.Errorf("vm memory = %q, want fill", n.VMs[0].Memory)
	}
	if again := n.Normalize(); !jsonEqual(t, again, n) {
		t.Error("Normalize is not idempotent")
	}
	if s.VMs[0].Memory != "" {
		t.Error("Normalize mutated its receiver's VM slice")
	}
}

// TestClusterNormalizeDefaults covers the cluster form, including the
// canonicalization of "rebalancing disabled".
func TestClusterNormalizeDefaults(t *testing.T) {
	n := spec.ClusterV1{}.Normalize()
	if n.Hosts != 4 || n.Policy != "numa" || n.Mix != "mixed" || n.Seed != 1 {
		t.Errorf("defaults = %d/%q/%q/%d", n.Hosts, n.Policy, n.Mix, n.Seed)
	}
	if n.ArrivalsPerSecond != 0.35 || n.MeanLifetime.Std() != 60*time.Second ||
		n.Horizon.Std() != 300*time.Second || n.RebalancePeriod.Std() != 10*time.Second {
		t.Errorf("rate/lifetime/horizon/rebalance = %v/%v/%v/%v",
			n.ArrivalsPerSecond, n.MeanLifetime.Std(), n.Horizon.Std(), n.RebalancePeriod.Std())
	}
	a := spec.ClusterV1{RebalancePeriod: spec.Duration(-3 * time.Minute)}
	b := spec.ClusterV1{RebalancePeriod: spec.Duration(-time.Millisecond)}
	if a.Key() != b.Key() {
		t.Error("two disabled-rebalance specs should share a canonical key")
	}
	// Control-plane defaults: gangs default to size 3 once the stream draws
	// them; without gangs the size stays unset and the descheduler off.
	if g := (spec.ClusterV1{GangFraction: 0.2}).Normalize(); g.GangSize != 3 {
		t.Errorf("gang_size with gangs drawn = %d, want 3", g.GangSize)
	}
	if n.GangSize != 0 || n.DeschedulePeriod != 0 || n.Preempt || n.Gang || n.Backfill {
		t.Error("control-plane mechanisms must default off")
	}
}

// TestValidateErrors walks the validation failures and asserts each wraps
// the right sentinel.
func TestValidateErrors(t *testing.T) {
	vm := spec.VMV1{Name: "vm", MemoryMB: 1024, VCPUs: 2}
	cases := []struct {
		name string
		s    spec.ScenarioV1
		want error
	}{
		{"version", spec.ScenarioV1{Version: "v9", VMs: []spec.VMV1{vm}}, spec.ErrVersion},
		{"topology", spec.ScenarioV1{Topology: "toaster", VMs: []spec.VMV1{vm}}, spec.ErrInvalid},
		{"scheduler", spec.ScenarioV1{Scheduler: "fifo", VMs: []spec.VMV1{vm}}, spec.ErrInvalid},
		{"no vms", spec.ScenarioV1{}, spec.ErrInvalid},
		{"negative horizon", spec.ScenarioV1{Horizon: spec.Duration(-time.Second), VMs: []spec.VMV1{vm}}, spec.ErrInvalid},
		{"vm name", spec.ScenarioV1{VMs: []spec.VMV1{{MemoryMB: 1, VCPUs: 1}}}, spec.ErrInvalid},
		{"dup vm", spec.ScenarioV1{VMs: []spec.VMV1{vm, vm}}, spec.ErrInvalid},
		{"memory_mb", spec.ScenarioV1{VMs: []spec.VMV1{{Name: "x", VCPUs: 1}}}, spec.ErrInvalid},
		{"memory policy", spec.ScenarioV1{VMs: []spec.VMV1{{Name: "x", MemoryMB: 1, VCPUs: 1, Memory: "shuffle"}}}, spec.ErrInvalid},
		{"unknown app", spec.ScenarioV1{VMs: []spec.VMV1{{Name: "x", MemoryMB: 1, VCPUs: 1,
			Apps: []spec.AppV1{{Name: "doom"}}}}}, spec.ErrInvalid},
		{"both app forms", spec.ScenarioV1{VMs: []spec.VMV1{{Name: "x", MemoryMB: 1, VCPUs: 1,
			Apps: []spec.AppV1{{Name: "soplex", Server: "redis", Load: 1}}}}}, spec.ErrInvalid},
		{"server load", spec.ScenarioV1{VMs: []spec.VMV1{{Name: "x", MemoryMB: 1, VCPUs: 1,
			Apps: []spec.AppV1{{Server: "redis"}}}}}, spec.ErrInvalid},
		{"too many apps", spec.ScenarioV1{VMs: []spec.VMV1{{Name: "x", MemoryMB: 1, VCPUs: 1,
			Apps: []spec.AppV1{{Name: "hungry"}, {Name: "hungry"}}}}}, spec.ErrInvalid},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.s.Validate()
			if !errors.Is(err, tc.want) {
				t.Fatalf("Validate() = %v, want %v", err, tc.want)
			}
		})
	}

	good := spec.ScenarioV1{VMs: []spec.VMV1{{Name: "vm", MemoryMB: 2048, VCPUs: 2,
		Apps: []spec.AppV1{{Name: "soplex"}, {Server: "memcached", Load: 64}}}}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}
}

// TestClusterValidateErrors covers the cluster-side failures.
func TestClusterValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		c    spec.ClusterV1
		want error
	}{
		{"version", spec.ClusterV1{Version: "v0"}, spec.ErrVersion},
		{"hosts", spec.ClusterV1{Hosts: -1}, spec.ErrInvalid},
		{"topology", spec.ClusterV1{Topology: "toaster"}, spec.ErrInvalid},
		{"scheduler", spec.ClusterV1{Scheduler: "fifo"}, spec.ErrInvalid},
		{"policy", spec.ClusterV1{Policy: "chaos"}, spec.ErrInvalid},
		{"mix", spec.ClusterV1{Mix: "spicy"}, spec.ErrInvalid},
		{"workers", spec.ClusterV1{Workers: -2}, spec.ErrInvalid},
		{"lifetime", spec.ClusterV1{MeanLifetime: spec.Duration(-time.Second)}, spec.ErrInvalid},
		{"gang-fraction-low", spec.ClusterV1{GangFraction: -0.1}, spec.ErrInvalid},
		{"gang-fraction-high", spec.ClusterV1{GangFraction: 1.5}, spec.ErrInvalid},
		{"gang-size", spec.ClusterV1{GangFraction: 0.2, GangSize: -1}, spec.ErrInvalid},
		{"gang-without-fraction", spec.ClusterV1{Gang: true}, spec.ErrInvalid},
		{"deschedule", spec.ClusterV1{DeschedulePeriod: spec.Duration(-time.Second)}, spec.ErrInvalid},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.c.Validate(); !errors.Is(err, tc.want) {
				t.Fatalf("Validate() = %v, want %v", err, tc.want)
			}
		})
	}
	if err := (spec.ClusterV1{}).Validate(); err != nil {
		t.Fatalf("default cluster spec rejected: %v", err)
	}
}

// TestJSONRoundTrip asserts encode→decode is lossless and that the
// canonical key is stable across the trip and across default omission.
func TestJSONRoundTrip(t *testing.T) {
	s := spec.ScenarioV1{
		Scheduler: "vprobe",
		Seed:      7,
		Horizon:   spec.Duration(1500 * time.Millisecond),
		VMs: []spec.VMV1{
			{Name: "a", MemoryMB: 4096, VCPUs: 2, Memory: "stripe",
				Apps: []spec.AppV1{{Name: "soplex"}, {Server: "redis", Load: 4000}}},
			{Name: "b", MemoryMB: 1024, VCPUs: 1, FillGuestIdle: true},
		},
	}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"horizon":"1.5s"`) {
		t.Fatalf("durations should marshal as Go strings, got %s", data)
	}
	var back spec.ScenarioV1
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !jsonEqual(t, back, s) {
		t.Fatalf("round trip changed the spec:\n  in:  %+v\n  out: %+v", s, back)
	}
	if back.Key() != s.Key() {
		t.Error("round trip changed the canonical key")
	}
	explicit := s.Normalize()
	if explicit.Key() != s.Key() {
		t.Error("spelling out defaults changed the canonical key")
	}
	if changed := s; true {
		changed.Seed = 8
		if changed.Key() == s.Key() {
			t.Error("seed change did not change the key")
		}
	}
}

// TestClusterKeyIgnoresWorkers pins the cache contract: parallelism never
// affects results, so it must not affect the key.
func TestClusterKeyIgnoresWorkers(t *testing.T) {
	base := spec.ClusterV1{Hosts: 2, Seed: 5}
	w8 := base
	w8.Workers = 8
	if base.Key() != w8.Key() {
		t.Error("Workers changed the cluster key")
	}
	other := base
	other.Policy = "pack"
	if other.Key() == base.Key() {
		t.Error("policy change did not change the key")
	}
}

// TestDurationJSON covers both accepted wire forms and the error path.
func TestDurationJSON(t *testing.T) {
	var d spec.Duration
	if err := json.Unmarshal([]byte(`"2m30s"`), &d); err != nil || d.Std() != 150*time.Second {
		t.Fatalf("string form: %v, %v", d.Std(), err)
	}
	if err := json.Unmarshal([]byte(`1.5`), &d); err != nil || d.Std() != 1500*time.Millisecond {
		t.Fatalf("number form: %v, %v", d.Std(), err)
	}
	err := json.Unmarshal([]byte(`"fortnight"`), &d)
	if !errors.Is(err, spec.ErrInvalid) {
		t.Fatalf("bad duration error = %v, want ErrInvalid", err)
	}
}

// TestServerAppCompat pins the deprecated string dispatch to its typed
// equivalent.
func TestServerAppCompat(t *testing.T) {
	app, err := spec.ServerApp("memcached", 64)
	if err != nil || app.Server != "memcached" || app.Load != 64 {
		t.Fatalf("ServerApp = %+v, %v", app, err)
	}
	if _, err := spec.ServerApp("etcd", 1); !errors.Is(err, spec.ErrInvalid) {
		t.Fatalf("unknown kind error = %v, want ErrInvalid", err)
	}
	if _, err := spec.ServerApp("redis", 0); !errors.Is(err, spec.ErrInvalid) {
		t.Fatalf("zero load error = %v, want ErrInvalid", err)
	}
}

// TestCatalogLists sanity-checks the advertised name lists against the
// registries they mirror.
func TestCatalogLists(t *testing.T) {
	for _, want := range []string{"xeon-e5620", "four-node", "uma"} {
		if !contains(spec.Topologies(), want) {
			t.Errorf("Topologies() missing %q", want)
		}
	}
	for _, want := range []string{"credit", "vprobe", "brm"} {
		if !contains(spec.Schedulers(), want) {
			t.Errorf("Schedulers() missing %q", want)
		}
	}
	for _, want := range []string{"numa", "pack", "spread"} {
		if !contains(spec.Policies(), want) {
			t.Errorf("Policies() missing %q", want)
		}
	}
	if !contains(spec.Apps(), "soplex") {
		t.Error("Apps() missing soplex")
	}
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

// jsonEqual compares two values by their canonical JSON.
func jsonEqual(t *testing.T, a, b any) bool {
	t.Helper()
	da, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	db, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	return string(da) == string(db)
}

// TestClusterArrivalNormalize pins the per-process arrival defaults:
// they fill only for the selected process, and the zero spec is Poisson.
func TestClusterArrivalNormalize(t *testing.T) {
	n := spec.ClusterV1{}.Normalize()
	if n.ArrivalProcess != "poisson" {
		t.Fatalf("default arrival_process %q", n.ArrivalProcess)
	}
	if n.DiurnalPeriod != 0 || n.DiurnalAmplitude != 0 || n.FlashFactor != 0 {
		t.Fatal("poisson normalization filled another process's defaults")
	}
	d := spec.ClusterV1{ArrivalProcess: "diurnal"}.Normalize()
	if d.DiurnalPeriod != d.Horizon || d.DiurnalAmplitude != 0.6 {
		t.Fatalf("diurnal defaults: period %v amplitude %v",
			d.DiurnalPeriod.Std(), d.DiurnalAmplitude)
	}
	f := spec.ClusterV1{ArrivalProcess: "flash"}.Normalize()
	if f.FlashFactor != 8 || f.FlashDuration != f.Horizon/10 || f.FlashAt != f.Horizon/3 {
		t.Fatalf("flash defaults: factor %v duration %v at %v",
			f.FlashFactor, f.FlashDuration.Std(), f.FlashAt.Std())
	}
	// Normalize must deep-copy the trace so the canonical value cannot
	// alias caller-held slices.
	trace := []spec.ArrivalV1{{At: 0, MemoryMB: 1024, VCPUs: 1,
		Lifetime: spec.Duration(time.Second), Profiles: []string{"mcf"}}}
	tn := spec.ClusterV1{ArrivalProcess: "trace", ArrivalTrace: trace}.Normalize()
	trace[0].Profiles[0] = "soplex"
	if tn.ArrivalTrace[0].Profiles[0] != "mcf" {
		t.Fatal("normalized trace aliases the caller's profile slice")
	}
}

// TestClusterArrivalValidateErrors covers the arrival-side rejection
// paths; each must wrap ErrInvalid and name the field.
func TestClusterArrivalValidateErrors(t *testing.T) {
	rec := spec.ArrivalV1{At: 0, MemoryMB: 1024, VCPUs: 1, Lifetime: spec.Duration(time.Second)}
	cases := []struct {
		name string
		c    spec.ClusterV1
		path string // substring the error must name
	}{
		{"process", spec.ClusterV1{ArrivalProcess: "bursty"}, "arrival_process"},
		{"diurnal-period", spec.ClusterV1{ArrivalProcess: "diurnal",
			DiurnalPeriod: spec.Duration(-time.Second)}, "diurnal_period"},
		{"amplitude", spec.ClusterV1{ArrivalProcess: "diurnal",
			DiurnalAmplitude: 1.5}, "diurnal_amplitude"},
		{"flash-at", spec.ClusterV1{ArrivalProcess: "flash",
			FlashAt: spec.Duration(-time.Second)}, "flash_at"},
		{"flash-factor", spec.ClusterV1{ArrivalProcess: "flash",
			FlashFactor: 0.5}, "flash_factor"},
		{"empty-trace", spec.ClusterV1{ArrivalProcess: "trace"}, "non-empty arrival_trace"},
		{"priority", spec.ClusterV1{ArrivalProcess: "trace",
			ArrivalTrace: []spec.ArrivalV1{func() spec.ArrivalV1 { r := rec; r.Priority = 3; return r }()}},
			"arrival_trace[0].priority"},
		{"lifetime", spec.ClusterV1{ArrivalProcess: "trace",
			ArrivalTrace: []spec.ArrivalV1{func() spec.ArrivalV1 { r := rec; r.Lifetime = 0; return r }()}},
			"arrival_trace[0].lifetime"},
		{"record", spec.ClusterV1{ArrivalProcess: "trace",
			ArrivalTrace: []spec.ArrivalV1{func() spec.ArrivalV1 { r := rec; r.MemoryMB = 0; return r }()}},
			"arrival_trace[0]"},
		{"profile", spec.ClusterV1{ArrivalProcess: "trace",
			ArrivalTrace: []spec.ArrivalV1{func() spec.ArrivalV1 { r := rec; r.Profiles = []string{"doom"}; return r }()}},
			"arrival_trace[0]"},
		{"unsorted", spec.ClusterV1{ArrivalProcess: "trace",
			ArrivalTrace: []spec.ArrivalV1{
				func() spec.ArrivalV1 { r := rec; r.At = spec.Duration(5 * time.Second); return r }(),
				func() spec.ArrivalV1 { r := rec; r.At = spec.Duration(2 * time.Second); return r }()}},
			"precedes"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.c.Validate()
			if !errors.Is(err, spec.ErrInvalid) {
				t.Fatalf("Validate() = %v, want ErrInvalid", err)
			}
			if !strings.Contains(err.Error(), tc.path) {
				t.Fatalf("Validate() = %v, want mention of %q", err, tc.path)
			}
		})
	}
	good := spec.ClusterV1{ArrivalProcess: "trace", ArrivalTrace: []spec.ArrivalV1{rec}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid trace spec rejected: %v", err)
	}
}

// TestClusterKeyArrivalFields pins the cache-key contract: arrival
// parameters shape results so they must move the key; PlaceCheck only
// verifies results so it must not.
func TestClusterKeyArrivalFields(t *testing.T) {
	base := spec.ClusterV1{Hosts: 2, Seed: 5}
	pc := base
	pc.PlaceCheck = true
	if base.Key() != pc.Key() {
		t.Error("place_check changed the cluster key")
	}
	variants := map[string]spec.ClusterV1{
		"process":   {Hosts: 2, Seed: 5, ArrivalProcess: "diurnal"},
		"amplitude": {Hosts: 2, Seed: 5, ArrivalProcess: "diurnal", DiurnalAmplitude: 0.3},
		"flash":     {Hosts: 2, Seed: 5, ArrivalProcess: "flash", FlashFactor: 4},
		"trace": {Hosts: 2, Seed: 5, ArrivalProcess: "trace",
			ArrivalTrace: []spec.ArrivalV1{{At: 0, MemoryMB: 1024, VCPUs: 1,
				Lifetime: spec.Duration(time.Second)}}},
	}
	seen := map[string]string{"base": base.Key()}
	for name, v := range variants {
		k := v.Key()
		for prev, pk := range seen {
			if k == pk {
				t.Errorf("%s and %s share a key", name, prev)
			}
		}
		seen[name] = k
	}
}
