package controlplane

import "sort"

// PreemptPlan is the outcome of a preemption search: evict VictimIDs (in
// eviction order) from host HostIndex and the blocked request fits there.
// CostCycles is the summed eviction price.
type PreemptPlan struct {
	HostIndex  int
	VictimIDs  []int
	CostCycles float64
}

// PlanPreemption searches every host for a minimal set of strictly-lower-
// priority victims whose eviction admits req, and returns the cheapest
// plan (ties: fewer victims, then lower host index), or nil when no host
// can be preempted into fitting.
//
// Per host the search is greedy-then-prune: victims are taken cheapest and
// lowest-priority first until the request fits, then each chosen victim is
// dropped again (most expensive first) if the fit survives without it. The
// result is minimal in the sense that no chosen victim is redundant —
// exact minimum-cost eviction is a knapsack variant not worth its
// nondeterminism risk here.
//
// Only victims with Priority < req.Priority are considered; callers may
// pre-filter but do not need to.
func PlanPreemption(req Request, hosts []*HostCap, fits FitFunc) *PreemptPlan {
	var best *PreemptPlan
	for _, host := range hosts {
		plan := planHostPreemption(req, host, fits)
		if plan == nil {
			continue
		}
		if best == nil ||
			plan.CostCycles < best.CostCycles ||
			(plan.CostCycles == best.CostCycles && len(plan.VictimIDs) < len(best.VictimIDs)) ||
			(plan.CostCycles == best.CostCycles && len(plan.VictimIDs) == len(best.VictimIDs) &&
				plan.HostIndex < best.HostIndex) {
			best = plan
		}
	}
	return best
}

// planHostPreemption finds this host's minimal victim set, or nil.
func planHostPreemption(req Request, host *HostCap, fits FitFunc) *PreemptPlan {
	var pool []Victim
	for _, v := range host.Victims {
		if v.Priority < req.Priority {
			pool = append(pool, v)
		}
	}
	if len(pool) == 0 {
		return nil
	}
	// Cheapest, lowest class first; ID breaks remaining ties so the
	// greedy order is total.
	sort.Slice(pool, func(i, j int) bool {
		a, b := pool[i], pool[j]
		if a.Priority != b.Priority {
			return a.Priority < b.Priority
		}
		if a.CostCycles != b.CostCycles {
			return a.CostCycles < b.CostCycles
		}
		return a.ID < b.ID
	})

	what := host.clone()
	var chosen []Victim
	fitted := false
	for _, v := range pool {
		addTo(what.FreePerNodeMB, v.FreesPerNodeMB)
		what.GuestVCPUs -= v.VCPUs
		chosen = append(chosen, v)
		if fits(req, &what) {
			fitted = true
			break
		}
	}
	if !fitted {
		return nil
	}
	// Prune pass: drop victims (most expensive first) whose eviction the
	// fit does not actually need.
	for i := len(chosen) - 1; i >= 0; i-- {
		trial := host.clone()
		for j, v := range chosen {
			if j == i {
				continue
			}
			addTo(trial.FreePerNodeMB, v.FreesPerNodeMB)
			trial.GuestVCPUs -= v.VCPUs
		}
		if fits(req, &trial) {
			chosen = append(chosen[:i], chosen[i+1:]...)
		}
	}
	plan := &PreemptPlan{HostIndex: host.Index}
	for _, v := range chosen {
		plan.VictimIDs = append(plan.VictimIDs, v.ID)
		plan.CostCycles += v.CostCycles
	}
	return plan
}
