package harness

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles starts the optional pprof profiles a command exposes via
// -cpuprofile / -memprofile flags. It returns a stop function the caller
// runs once after the profiled work: it stops and flushes the CPU profile
// and writes the heap profile. An empty path disables the corresponding
// profile; with both empty the returned stop is a no-op, so callers can
// invoke it unconditionally.
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("heap profile: %w", err)
			}
			defer f.Close()
			runtime.GC() // settle the live heap so the snapshot is stable
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("heap profile: %w", err)
			}
		}
		return nil
	}, nil
}
