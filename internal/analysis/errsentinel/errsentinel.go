// Package errsentinel keeps errors.Is working across the public API: a
// fmt.Errorf call that formats an error value with %v, %s, or %q flattens
// it to text and severs the chain — callers matching the package sentinels
// (vprobe.ErrUnknownTopology, ErrAlreadyStarted, ...) stop seeing them.
// Error arguments must be wrapped with %w. The rare call that deliberately
// flattens (e.g. to redact an internal error at an API boundary) is
// annotated `//vet:nowrap <justification>`.
package errsentinel

import (
	"go/ast"
	"go/constant"
	"go/types"

	"vprobe/internal/analysis/framework"
)

// Analyzer is the errsentinel wrapping check.
var Analyzer = &framework.Analyzer{
	Name: "errsentinel",
	Doc: "require fmt.Errorf to wrap error arguments with %w so errors.Is " +
		"keeps matching sentinels (suppress with //vet:nowrap)",
	Run:        run,
	Directives: []string{"nowrap"},
}

func run(pass *framework.Pass) (any, error) {
	errType := types.Universe.Lookup("error").Type()
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || fn.Name() != "Errorf" {
				return true
			}
			checkErrorf(pass, call, errType)
			return true
		})
	}
	return nil, nil
}

func checkErrorf(pass *framework.Pass, call *ast.CallExpr, errType types.Type) {
	if len(call.Args) < 2 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	verbs, ok := parseVerbs(constant.StringVal(tv.Value))
	if !ok {
		return // indexed or otherwise exotic format; stay silent
	}
	for i, verb := range verbs {
		argIdx := 1 + i
		if argIdx >= len(call.Args) {
			return // fmt itself will complain about missing args
		}
		if verb != 'v' && verb != 's' && verb != 'q' {
			continue
		}
		at := pass.TypesInfo.TypeOf(call.Args[argIdx])
		if at == nil || !types.AssignableTo(at, errType) {
			continue
		}
		if pass.Suppressed(call.Pos(), "nowrap") {
			continue
		}
		pass.Reportf(call.Args[argIdx].Pos(),
			"error formatted with %%%c loses the chain for errors.Is; wrap it with %%w (//vet:nowrap to flatten deliberately)", verb)
	}
}

// parseVerbs returns the verb letter consuming each successive argument of
// a fmt format string. A '*' width or precision consumes an argument and is
// recorded as '*'. Explicit argument indexes ("%[1]s") return ok=false —
// the analyzer skips those calls rather than mis-attributing verbs.
func parseVerbs(format string) (verbs []byte, ok bool) {
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
	spec:
		for ; i < len(format); i++ {
			switch c := format[i]; {
			case c == '%':
				break spec // literal %%
			case c == '[':
				return nil, false
			case c == '*':
				verbs = append(verbs, '*')
			case c == '+' || c == '-' || c == '#' || c == ' ' || c == '0' ||
				c == '.' || (c >= '1' && c <= '9'):
				// flags, width, precision: keep scanning
			default:
				verbs = append(verbs, c)
				break spec
			}
		}
	}
	return verbs, true
}
