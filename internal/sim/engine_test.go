package sim

import (
	"testing"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Schedule(30*Millisecond, "c", func(*Engine) { order = append(order, "c") })
	e.Schedule(10*Millisecond, "a", func(*Engine) { order = append(order, "a") })
	e.Schedule(20*Millisecond, "b", func(*Engine) { order = append(order, "b") })
	e.Run()
	want := []string{"a", "b", "c"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != Time(30*Millisecond) {
		t.Fatalf("clock = %v, want 30ms", e.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(Millisecond, "tie", func(*Engine) { order = append(order, i) })
	}
	e.Run()
	for i, got := range order {
		if got != i {
			t.Fatalf("simultaneous events fired out of FIFO order: %v", order)
		}
	}
}

func TestScheduleInPastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10*Millisecond, "advance", func(*Engine) {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.ScheduleAt(Time(Millisecond), "past", func(*Engine) {})
}

func TestNegativeDelayClampedToNow(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(-5, "neg", func(*Engine) { fired = true })
	e.Run()
	if !fired {
		t.Fatal("event with negative delay never fired")
	}
	if e.Now() != 0 {
		t.Fatalf("clock = %v, want 0", e.Now())
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(Millisecond, "x", func(*Engine) { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
}

func TestEventsScheduleMoreEvents(t *testing.T) {
	e := NewEngine()
	count := 0
	var chain func(*Engine)
	chain = func(en *Engine) {
		count++
		if count < 5 {
			en.Schedule(Millisecond, "chain", chain)
		}
	}
	e.Schedule(Millisecond, "chain", chain)
	e.Run()
	if count != 5 {
		t.Fatalf("chain fired %d times, want 5", count)
	}
	if e.Now() != Time(5*Millisecond) {
		t.Fatalf("clock = %v, want 5ms", e.Now())
	}
}

func TestRunUntilHorizon(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.Every(10*Millisecond, 10*Millisecond, "tick", func(*Engine) { fired++ })
	e.RunUntil(Time(55 * Millisecond))
	if fired != 5 {
		t.Fatalf("ticker fired %d times in 55ms, want 5", fired)
	}
	if e.Now() != Time(55*Millisecond) {
		t.Fatalf("clock = %v, want exactly the horizon", e.Now())
	}
	// Continuing past the first horizon resumes the ticker.
	e.RunUntil(Time(105 * Millisecond))
	if fired != 10 {
		t.Fatalf("ticker fired %d times in 105ms, want 10", fired)
	}
}

func TestTickerStop(t *testing.T) {
	e := NewEngine()
	fired := 0
	var tk *Ticker
	tk = e.Every(Millisecond, Millisecond, "tick", func(*Engine) {
		fired++
		if fired == 3 {
			tk.Stop()
		}
	})
	e.RunUntil(Time(100 * Millisecond))
	if fired != 3 {
		t.Fatalf("ticker fired %d times after Stop at 3, want 3", fired)
	}
}

func TestStopHaltsRun(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.Every(Millisecond, Millisecond, "tick", func(en *Engine) {
		fired++
		if fired == 7 {
			en.Stop()
		}
	})
	e.Run()
	if fired != 7 {
		t.Fatalf("fired = %d, want 7", fired)
	}
	// Run again: resumes from where it stopped.
	e.RunUntil(Time(10 * Millisecond))
	if fired != 10 {
		t.Fatalf("fired = %d after resume, want 10", fired)
	}
}

func TestFiredCount(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 4; i++ {
		e.Schedule(Duration(i)*Millisecond, "n", func(*Engine) {})
	}
	if n := e.Run(); n != 4 {
		t.Fatalf("Run returned %d, want 4", n)
	}
	if e.Fired() != 4 {
		t.Fatalf("Fired() = %d, want 4", e.Fired())
	}
}

func TestPending(t *testing.T) {
	e := NewEngine()
	e.Schedule(Millisecond, "a", func(*Engine) {})
	e.Schedule(2*Millisecond, "b", func(*Engine) {})
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
	e.Run()
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after Run, want 0", e.Pending())
	}
}

func TestZeroPeriodTickerPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("Every with zero period did not panic")
		}
	}()
	e.Every(0, 0, "bad", func(*Engine) {})
}

func TestTimeHelpers(t *testing.T) {
	tm := Time(0).Add(1500 * Millisecond)
	if tm.Seconds() != 1.5 {
		t.Fatalf("Seconds = %v, want 1.5", tm.Seconds())
	}
	if d := tm.Sub(Time(Second)); d != 500*Millisecond {
		t.Fatalf("Sub = %v, want 500ms", d)
	}
	if got := DurationFromSeconds(0.25); got != 250*Millisecond {
		t.Fatalf("DurationFromSeconds(0.25) = %v", got)
	}
	if s := (1500 * Millisecond).String(); s != "1.500s" {
		t.Fatalf("Duration.String = %q", s)
	}
	if s := (250 * Microsecond).String(); s != "250µs" {
		t.Fatalf("Duration.String = %q", s)
	}
}
