package vprobe

import (
	"context"
	"fmt"
	"time"

	"vprobe/internal/cluster"
	"vprobe/internal/numa"
	"vprobe/internal/sched"
	"vprobe/internal/sim"
)

// Policy names a cluster placement policy (the Filter/Score pipeline a
// cluster uses to admit VMs onto hosts).
type Policy string

// Built-in placement policies.
const (
	// PolicyPack consolidates: fullest feasible host wins.
	PolicyPack Policy = "pack"
	// PolicySpread balances: least-loaded feasible host wins.
	PolicySpread Policy = "spread"
	// PolicyNUMA is NUMA-aware: only hosts where the VM's memory fits in
	// few per-node chunks are feasible, scored by single-node fit and LLC
	// quiet-ness.
	PolicyNUMA Policy = "numa"
)

// knownArrivalProcess reports whether the name is a registered arrival
// generator.
func knownArrivalProcess(p ArrivalProcess) bool {
	for _, n := range cluster.ArrivalProcesses() {
		if n == string(p) {
			return true
		}
	}
	return false
}

// Policies returns all registered placement policies, sorted.
func Policies() []Policy {
	names := cluster.Policies()
	out := make([]Policy, len(names))
	for i, n := range names {
		out[i] = Policy(n)
	}
	return out
}

// ArrivalProcess names a cluster arrival generator (the process that
// decides when the next VM request enters admission).
type ArrivalProcess string

// Built-in arrival processes.
const (
	// ArrivalPoisson draws i.i.d. exponential gaps at ArrivalsPerSecond —
	// the classic memoryless open-loop load (the default).
	ArrivalPoisson ArrivalProcess = "poisson"
	// ArrivalDiurnal modulates the Poisson rate with a sinusoid: the rate
	// breathes between rate*(1-A) and rate*(1+A) over DiurnalPeriod.
	ArrivalDiurnal ArrivalProcess = "diurnal"
	// ArrivalFlash multiplies the rate by FlashFactor inside the
	// [FlashAt, FlashAt+FlashDuration) window — a flash crowd.
	ArrivalFlash ArrivalProcess = "flash"
	// ArrivalReplay replays the recorded stream in ClusterConfig.
	// ArrivalTrace instead of drawing arrivals.
	ArrivalReplay ArrivalProcess = "trace"
)

// ArrivalProcesses returns all arrival processes, sorted by name.
func ArrivalProcesses() []ArrivalProcess {
	names := cluster.ArrivalProcesses()
	out := make([]ArrivalProcess, len(names))
	for i, n := range names {
		out[i] = ArrivalProcess(n)
	}
	return out
}

// ClusterArrival is one recorded VM arrival of a replayable trace: when
// the request arrives, the VM's shape and priority, how long it lives
// once placed, and what runs on its VCPUs. Consecutive arrivals sharing
// a non-empty Group and the same At form one gang. Profiles entries are
// workload references — a catalog name ("mcf"), "memcached:<clients>",
// or "redis:<connections>"; VCPUs beyond the list idle.
type ClusterArrival struct {
	At       time.Duration
	MemoryMB int64
	VCPUs    int
	// Priority is the admission class: 0 best-effort, 1 standard,
	// 2 critical.
	Priority int
	Group    string
	Lifetime time.Duration
	Profiles []string
}

// internal lowers the public record onto the cluster trace schema.
func (a ClusterArrival) internal() cluster.TraceArrival {
	return cluster.TraceArrival{
		AtUS:     a.At.Microseconds(),
		MemoryMB: a.MemoryMB,
		VCPUs:    a.VCPUs,
		Priority: a.Priority,
		Group:    a.Group,
		LifeUS:   a.Lifetime.Microseconds(),
		Profiles: append([]string(nil), a.Profiles...),
	}
}

// ClusterConfig parameterises RunCluster. Zero values select defaults
// (4 hosts, TopologyXeonE5620, SchedulerCredit, PolicyNUMA, seed 1,
// Poisson arrivals at 0.35/s, 60 s mean lifetime, 300 s horizon, mixed
// workloads).
type ClusterConfig struct {
	// Hosts is the number of simulated hosts (default 4).
	Hosts int
	// Topology is the per-host NUMA preset (default TopologyXeonE5620).
	Topology Topology
	// Scheduler is the per-host VCPU scheduler (default SchedulerCredit).
	Scheduler Scheduler
	// Policy is the placement policy (default PolicyNUMA).
	Policy Policy
	// Seed makes runs reproducible (default 1).
	Seed uint64
	// ArrivalsPerSecond is the base VM arrival rate (default 0.35). The
	// non-homogeneous processes modulate it; trace replay ignores it.
	ArrivalsPerSecond float64
	// Arrival selects the arrival generator (default ArrivalPoisson).
	Arrival ArrivalProcess
	// DiurnalPeriod is the ArrivalDiurnal sinusoid's period (default: the
	// horizon — one full day-night cycle per run). DiurnalAmplitude in
	// [0, 1] sets the swing around ArrivalsPerSecond (default 0.6).
	DiurnalPeriod    time.Duration
	DiurnalAmplitude float64
	// FlashAt starts an ArrivalFlash window of FlashDuration during which
	// the rate multiplies by FlashFactor (defaults: horizon/3, horizon/10,
	// 8).
	FlashAt       time.Duration
	FlashDuration time.Duration
	FlashFactor   float64
	// ArrivalTrace is the recorded stream ArrivalReplay replays, sorted
	// by At.
	ArrivalTrace []ClusterArrival
	// ArrivalSink, when non-nil, receives every materialized arrival as a
	// replayable ClusterArrival — recording a generated run for later
	// ArrivalReplay. The stream depends only on the seed and the arrival
	// configuration, never on placement mechanisms or worker count.
	ArrivalSink func(ClusterArrival)
	// PlaceCheck cross-validates every placement decision of the
	// incremental engine against a full rescan of fresh host views and
	// fails the run on the first divergence. Purely diagnostic: it never
	// changes results, only costs time.
	PlaceCheck bool
	// MeanLifetime is the mean exponential VM lifetime (default 60s).
	MeanLifetime time.Duration
	// Horizon is the simulated duration (default 300s).
	Horizon time.Duration
	// Workers bounds host-advance parallelism (<= 0 means GOMAXPROCS).
	// The result is byte-identical at every worker count.
	Workers int
	// Mix selects the workload mix: "mixed" (default), "batch", "server".
	Mix string
	// RebalancePeriod is the inter-host rebalancer tick (default 10s;
	// negative disables rebalancing).
	RebalancePeriod time.Duration
	// Preempt lets arrivals above best-effort evict strictly-lower-priority
	// VMs when no host fits; victims migrate when any host takes them and
	// are otherwise killed and requeued (default off).
	Preempt bool
	// Gang admits multi-VM arrival groups all-or-nothing (default off).
	Gang bool
	// GangFraction is the fraction of arrivals that form gangs, in [0, 1].
	// Gangs are drawn into the arrival stream whenever the fraction is
	// positive — even with Gang off — so toggling the mechanism compares
	// admission policies at equal load.
	GangFraction float64
	// GangSize is the number of VMs per gang (default 3).
	GangSize int
	// Backfill lets small lower-priority VMs jump the admission queue into
	// fragmentation holes that cannot delay the blocked head (default off).
	Backfill bool
	// DeschedulePeriod is the defragmentation pass tick; zero disables the
	// descheduler (the default).
	DeschedulePeriod time.Duration
	// Events receives cluster-scoped events (EventVMArrive ...
	// EventMigrateDone) when non-nil. Event.Host and Event.VM carry the
	// subjects; VCPU and Node are -1.
	Events EventSink
	// Telemetry, when non-nil, collects cluster-level and per-host metric
	// time series from the run (see NewTelemetry). A collector serves
	// exactly one run; reusing one fails with ErrTelemetryAttached.
	Telemetry *Telemetry
	// Spans, when non-nil, records the placement flight recorder: VM
	// lifecycle spans with per-plugin placement provenance, migration,
	// preemption, gang, and backfill chains (see NewTracing). A recorder
	// serves exactly one run; reusing one fails with ErrTracingAttached.
	Spans *Tracing
}

// ClusterReport summarises a cluster run.
type ClusterReport struct {
	// Policy / Scheduler / Hosts / Horizon echo the configuration.
	Policy    Policy
	Scheduler Scheduler
	Hosts     int
	Horizon   time.Duration

	// Arrivals counts VMs that entered admission; Placed counts
	// placements (admissions plus migration re-placements); Rejected
	// counts VMs that exhausted their retries; Departed counts completed
	// lifetimes; Migrations counts inter-host live migrations.
	Arrivals   int
	Placed     int
	Retries    int
	Rejected   int
	Departed   int
	Migrations int

	// RejectionRate is Rejected/Arrivals; RemoteRatio is the
	// access-weighted remote-memory ratio across all hosts; Utilization
	// is aggregate PCPU busy time over capacity.
	RejectionRate float64
	RemoteRatio   float64
	Utilization   float64

	// Control-plane counters: Preemptions counts victims evicted for
	// higher-priority arrivals (PreemptKills of them killed and requeued
	// rather than migrated); GangsAdmitted counts all-or-nothing group
	// admissions; Backfills counts queue-jump placements; DeschedMoves
	// counts defragmentation migrations.
	Preemptions   int
	PreemptKills  int
	GangsAdmitted int
	Backfills     int
	DeschedMoves  int

	// PerPriority breaks admission down by priority class, ordered
	// best-effort, standard, critical.
	PerPriority []PriorityReport

	text string
}

// PriorityReport is one priority class's admission summary.
type PriorityReport struct {
	// Class is the priority class name ("best-effort", "standard",
	// "critical").
	Class string
	// Arrivals / Placed / Rejected count the class's VMs.
	Arrivals int
	Placed   int
	Rejected int
	// MeanWait is the mean arrival-to-first-placement wait of the class's
	// placed VMs.
	MeanWait time.Duration
}

// String renders the report as aligned tables.
func (r *ClusterReport) String() string { return r.text }

// RunCluster simulates a multi-host cluster under the given placement
// policy and per-host scheduler, driving a random stream of VM arrivals
// and departures to the horizon. Configuration failures wrap
// ErrUnknownTopology, ErrUnknownScheduler, or ErrUnknownPolicy.
func RunCluster(ctx context.Context, cfg ClusterConfig) (*ClusterReport, error) {
	if cfg.Topology != "" {
		if _, ok := numa.Presets[string(cfg.Topology)]; !ok {
			return nil, fmt.Errorf("%w: %q", ErrUnknownTopology, cfg.Topology)
		}
	}
	if cfg.Scheduler != "" {
		if _, err := sched.New(sched.Kind(cfg.Scheduler)); err != nil {
			return nil, fmt.Errorf("%w: %q", ErrUnknownScheduler, cfg.Scheduler)
		}
	}
	if cfg.Policy != "" {
		if _, err := cluster.NewPipeline(string(cfg.Policy)); err != nil {
			return nil, fmt.Errorf("%w: %q", ErrUnknownPolicy, cfg.Policy)
		}
	}
	if cfg.Arrival != "" && !knownArrivalProcess(cfg.Arrival) {
		return nil, fmt.Errorf("%w: %q", ErrUnknownArrivalProcess, cfg.Arrival)
	}
	ccfg := cluster.Config{
		Hosts:             cfg.Hosts,
		Topology:          string(cfg.Topology),
		Scheduler:         sched.Kind(cfg.Scheduler),
		Policy:            string(cfg.Policy),
		Seed:              cfg.Seed,
		ArrivalsPerSecond: cfg.ArrivalsPerSecond,
		MeanLifetime:      sim.Duration(cfg.MeanLifetime.Microseconds()),
		Horizon:           sim.Duration(cfg.Horizon.Microseconds()),
		Workers:           cfg.Workers,
		Mix:               cfg.Mix,
		RebalancePeriod:   sim.Duration(cfg.RebalancePeriod.Microseconds()),
		Preempt:           cfg.Preempt,
		Gang:              cfg.Gang,
		GangFraction:      cfg.GangFraction,
		GangSize:          cfg.GangSize,
		Backfill:          cfg.Backfill,
		DeschedulePeriod:  sim.Duration(cfg.DeschedulePeriod.Microseconds()),
		PlaceCheck:        cfg.PlaceCheck,
		Arrival: cluster.ArrivalConfig{
			Process:          string(cfg.Arrival),
			DiurnalPeriod:    sim.Duration(cfg.DiurnalPeriod.Microseconds()),
			DiurnalAmplitude: cfg.DiurnalAmplitude,
			FlashAt:          sim.Duration(cfg.FlashAt.Microseconds()),
			FlashDuration:    sim.Duration(cfg.FlashDuration.Microseconds()),
			FlashFactor:      cfg.FlashFactor,
		},
	}
	if len(cfg.ArrivalTrace) > 0 {
		ccfg.Arrival.Trace = make([]cluster.TraceArrival, len(cfg.ArrivalTrace))
		for i, rec := range cfg.ArrivalTrace {
			ccfg.Arrival.Trace[i] = rec.internal()
		}
	}
	if sink := cfg.ArrivalSink; sink != nil {
		ccfg.ArrivalSink = func(rec cluster.TraceArrival) {
			sink(ClusterArrival{
				At:       time.Duration(rec.AtUS) * time.Microsecond,
				MemoryMB: rec.MemoryMB,
				VCPUs:    rec.VCPUs,
				Priority: rec.Priority,
				Group:    rec.Group,
				Lifetime: time.Duration(rec.LifeUS) * time.Microsecond,
				Profiles: rec.Profiles,
			})
		}
	}
	if cfg.RebalancePeriod < 0 {
		ccfg.RebalancePeriod = -1
	}
	if cfg.Telemetry != nil {
		if err := cfg.Telemetry.attach(); err != nil {
			return nil, err
		}
		ccfg.Telemetry = cfg.Telemetry.sampler
	}
	if cfg.Spans != nil {
		seed := cfg.Seed
		if seed == 0 {
			seed = 1 // the cluster's own default, mirrored for span IDs
		}
		tracer, err := cfg.Spans.attach(seed)
		if err != nil {
			return nil, err
		}
		ccfg.Spans = tracer
	}
	if sink := cfg.Events; sink != nil {
		ccfg.Events = func(ev cluster.Event) {
			sink.HandleEvent(Event{
				At:     time.Duration(ev.At) * time.Microsecond,
				Kind:   EventKind(ev.Kind),
				VCPU:   -1,
				Node:   -1,
				Host:   ev.Host,
				VM:     ev.VM,
				Detail: ev.Detail,
			})
		}
	}
	c, err := cluster.New(ccfg)
	if err != nil {
		return nil, err
	}
	rep, err := c.Run(ctx)
	if err != nil {
		return nil, err
	}
	out := &ClusterReport{
		Policy:        Policy(rep.Policy),
		Scheduler:     Scheduler(rep.Scheduler),
		Hosts:         rep.Hosts,
		Horizon:       time.Duration(rep.Horizon) * time.Microsecond,
		Arrivals:      rep.Arrivals,
		Placed:        rep.Placed,
		Retries:       rep.Retries,
		Rejected:      rep.Rejected,
		Departed:      rep.Departed,
		Migrations:    rep.Migrations,
		RejectionRate: rep.RejectionRate,
		RemoteRatio:   rep.RemoteRatio,
		Utilization:   rep.Utilization,
		Preemptions:   rep.Preemptions,
		PreemptKills:  rep.PreemptKills,
		GangsAdmitted: rep.GangsAdmitted,
		Backfills:     rep.Backfills,
		DeschedMoves:  rep.DeschedMoves,
		text:          rep.String(),
	}
	for _, p := range rep.PerPriority {
		out.PerPriority = append(out.PerPriority, PriorityReport{
			Class:    p.Class,
			Arrivals: p.Arrivals,
			Placed:   p.Placed,
			Rejected: p.Rejected,
			MeanWait: time.Duration(p.MeanWait) * time.Microsecond,
		})
	}
	return out, nil
}
