// Package ctxflow enforces context threading inside internal/: a function
// that was handed a context.Context must pass that context on, never mint a
// fresh context.Background() or context.TODO() that detaches its callees
// from cancellation. Fresh root contexts belong in main functions and
// tests; internal code that genuinely needs one (compatibility wrappers for
// pre-context APIs) annotates the call `//vet:ctx <justification>`.
//
// Without this rule a single context.Background() buried in a helper makes
// harness cancellation (PR 1) silently stop propagating: the suite reports
// the run as cancelled while simulations keep burning CPU.
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"vprobe/internal/analysis/framework"
)

// Analyzer is the ctxflow cancellation-propagation check.
var Analyzer = &framework.Analyzer{
	Name: "ctxflow",
	Doc: "forbid context.Background/TODO in internal packages; thread the " +
		"caller's ctx (suppress with //vet:ctx)",
	Run:        run,
	Directives: []string{"ctx"},
}

func inScope(path string) bool {
	if !strings.HasPrefix(path, "vprobe") {
		return true // analysistest fixture tree
	}
	return strings.HasPrefix(path, "vprobe/internal/")
}

func run(pass *framework.Pass) (any, error) {
	if !inScope(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range pass.Files {
		// funcs records enclosing function literals/declarations that
		// have a context parameter, innermost last.
		var ctxFuncs []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil && hasCtxParam(pass, fn.Type) {
					ctxFuncs = append(ctxFuncs, fn)
				}
			case *ast.FuncLit:
				if hasCtxParam(pass, fn.Type) {
					ctxFuncs = append(ctxFuncs, fn)
				}
			case *ast.CallExpr:
				checkCall(pass, fn, ctxFuncs)
			}
			return true
		})
	}
	return nil, nil
}

func hasCtxParam(pass *framework.Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if isContextType(pass.TypesInfo.TypeOf(field.Type)) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func checkCall(pass *framework.Pass, call *ast.CallExpr, ctxFuncs []ast.Node) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return
	}
	if name := fn.Name(); name != "Background" && name != "TODO" {
		return
	}
	if pass.Suppressed(call.Pos(), "ctx") {
		return
	}
	// Tailor the message: minting a root context while one is in scope is
	// the sharper bug (it severs an existing cancellation chain).
	if enclosedByCtxFunc(call, ctxFuncs) {
		pass.Reportf(call.Pos(),
			"context.%s() discards the ctx already in scope; thread the caller's context (//vet:ctx to allow)", fn.Name())
		return
	}
	pass.Reportf(call.Pos(),
		"context.%s() in internal package; accept a context.Context parameter and thread it (//vet:ctx to allow)", fn.Name())
}

func enclosedByCtxFunc(call *ast.CallExpr, ctxFuncs []ast.Node) bool {
	for _, fn := range ctxFuncs {
		if call.Pos() >= fn.Pos() && call.End() <= fn.End() {
			return true
		}
	}
	return false
}
