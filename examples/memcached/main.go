// Memcached scenario: a consolidated host serves a memcached-like
// key-value cache from two VMs while a third VM burns spare CPU. The
// example sweeps client concurrency and reports how long each scheduler
// takes to serve a fixed request batch — the paper's Fig. 6 experiment in
// miniature.
//
//	go run ./examples/memcached
package main

import (
	"fmt"
	"log"
	"time"

	"vprobe"
	"vprobe/internal/workload"
)

const requestsPerWorker = 60000

func main() {
	fmt.Println("memcached scenario: request batch completion time (seconds)")
	fmt.Printf("%-12s", "concurrency")
	for _, s := range []vprobe.Scheduler{vprobe.SchedulerCredit, vprobe.SchedulerVProbe, vprobe.SchedulerLB} {
		fmt.Printf("%10s", s)
	}
	fmt.Println()

	for _, concurrency := range []int{16, 64, 112} {
		fmt.Printf("%-12d", concurrency)
		for _, scheduler := range []vprobe.Scheduler{vprobe.SchedulerCredit, vprobe.SchedulerVProbe, vprobe.SchedulerLB} {
			report, err := run(scheduler, concurrency)
			if err != nil {
				log.Fatal(err)
			}
			var last time.Duration
			for _, a := range report.VMApps("cache-a") {
				if a.ExecTime > last {
					last = a.ExecTime
				}
			}
			fmt.Printf("%10.1f", last.Seconds())
		}
		fmt.Println()
	}
	fmt.Println("\nlower is better; vProbe's edge grows with concurrency as the")
	fmt.Println("working set outgrows the shared LLC (paper Fig. 6).")
}

func run(scheduler vprobe.Scheduler, concurrency int) (*vprobe.Report, error) {
	sim, err := vprobe.NewSimulator(vprobe.Config{Scheduler: scheduler, Seed: 11})
	if err != nil {
		return nil, err
	}

	server := func(name string, memMB int64) (*vprobe.VM, error) {
		vm, err := sim.AddVM(vprobe.VMConfig{
			Name: name, MemoryMB: memMB, VCPUs: 8,
			Memory: vprobe.MemStripe, FillGuestIdle: true,
		})
		if err != nil {
			return nil, err
		}
		for i := 0; i < 8; i++ {
			// A worker thread with a finite request target; the
			// profile's working set scales with client concurrency.
			p := workload.Memcached(concurrency)
			p.TotalInstructions = requestsPerWorker * p.InstrPerRequest
			if err := vm.RunProfile(p); err != nil {
				return nil, err
			}
		}
		return vm, nil
	}

	vmA, err := server("cache-a", 15*1024)
	if err != nil {
		return nil, err
	}
	if _, err := server("cache-b", 5*1024); err != nil {
		return nil, err
	}

	burner, err := sim.AddVM(vprobe.VMConfig{Name: "burner", MemoryMB: 1024, VCPUs: 8})
	if err != nil {
		return nil, err
	}
	for i := 0; i < 8; i++ {
		if err := burner.RunApp("hungry"); err != nil {
			return nil, err
		}
	}
	return sim.RunWatching(30*time.Minute, vmA)
}
