package cluster

import (
	"vprobe/internal/sim"
	"vprobe/internal/workload"
	"vprobe/internal/xen"
)

// VMSpec is a placement request: the resources a VM asks for and the
// workloads its VCPUs will run. Profiles[i] is bound to VCPU i; a nil
// entry leaves that VCPU guest-idle.
type VMSpec struct {
	Name     string
	MemoryMB int64
	VCPUs    int
	Profiles []*workload.Profile
}

// vmState is the cluster-side lifecycle of a VM.
type vmState int

const (
	// statePending: arrived, not placed yet (possibly between retries).
	statePending vmState = iota
	// stateRunning: placed on a host.
	stateRunning
	// stateMigrating: being copied between hosts; the source domain is
	// gone and the target domain is built but not yet activated.
	stateMigrating
	// stateRejected: gave up after exhausting placement retries.
	stateRejected
	// stateDeparted: lifetime over, torn down.
	stateDeparted
)

// VM is one placement request tracked through its cluster lifetime.
type VM struct {
	ID   int
	Spec VMSpec

	// Host and dom are the current placement (nil until placed).
	Host *Host
	dom  *xen.Domain

	state      vmState
	retries    int
	arriveAt   sim.Time
	departAt   sim.Time // 0 until the first successful placement
	placedAt   sim.Time // last (re)placement time, for migration cooldown
	Migrations int
}

// migrationProfiles snapshots the remaining work of the VM's current
// domain as fresh profiles for re-attachment on a migration target. Batch
// apps carry over exactly their unretired instructions; endless apps
// (servers, burners) restart their open-ended streams. Finished or
// app-less VCPUs yield nil entries.
func (vm *VM) migrationProfiles() []*workload.Profile {
	out := make([]*workload.Profile, len(vm.dom.VCPUs))
	for i, v := range vm.dom.VCPUs {
		if v.App == nil || v.Done {
			continue
		}
		p := v.App.Clone()
		if !p.Endless() && !p.Server {
			rem := v.RemainingInstructions()
			if rem <= 0 {
				continue
			}
			p.TotalInstructions = rem
		}
		out[i] = p
	}
	return out
}
