package workload

import "fmt"

// The catalog encodes the paper's benchmark applications as synthetic
// profiles. RPTI values for the six apps in Fig. 3(b) are the paper's own
// measurements (povray 0.48, ep 2.01, lu 15.38, mg 16.33, milc 21.68,
// libquantum 22.41); the remaining RPTIs are placed consistently with the
// paper's classification (soplex/mcf memory-intensive; bt/cg/sp NPB kernels
// between the FI bound of 3 and the T bound of 20, mcf above 20). Working
// sets, miss-rate curves and footprints are plausible published figures for
// the reference inputs; they set the scale, while orderings and class
// boundaries are what the reproduction depends on.

// catalog builders, one per application.

// Povray is SPEC CPU2006 453.povray: compute-bound ray tracer (LLC-FR).
func Povray() *Profile {
	return &Profile{
		Name: "povray", Suite: "SPEC", TrueClass: ClassFriendly,
		BaseCPI: 0.85,
		Phases: []Phase{
			{Fraction: 1, RPTI: 0.48, WorkingSetKB: 900, SoloMissRate: 0.02, MaxMissRate: 0.25},
		},
		FootprintMB: 40, TotalInstructions: 2.4e10, TouchesPerPage: 2.2,
		BlockProb: 0.08, BlockMicrosMean: 1500,
	}
}

// EP is NPB EP: embarrassingly parallel, negligible cache demand (LLC-FR).
func EP() *Profile {
	return &Profile{
		Name: "ep", Suite: "NPB", TrueClass: ClassFriendly,
		BaseCPI: 0.90,
		Phases: []Phase{
			{Fraction: 1, RPTI: 2.01, WorkingSetKB: 1800, SoloMissRate: 0.035, MaxMissRate: 0.30},
		},
		FootprintMB: 60, TotalInstructions: 2.4e10, TouchesPerPage: 2.0,
		BlockProb: 0.12, BlockMicrosMean: 1000,
	}
}

// LU is NPB LU: pipelined SSOR solver, cache-fitting (LLC-FI).
func LU() *Profile {
	return &Profile{
		Name: "lu", Suite: "NPB", TrueClass: ClassFitting,
		BaseCPI: 1.00,
		Phases: []Phase{
			{Fraction: 0.5, RPTI: 12.50, WorkingSetKB: 6500, SoloMissRate: 0.10, MaxMissRate: 0.58},
			{Fraction: 0.5, RPTI: 18.26, WorkingSetKB: 8500, SoloMissRate: 0.14, MaxMissRate: 0.66},
		},
		FootprintMB: 700, TotalInstructions: 2.2e10, TouchesPerPage: 5.1,
		BlockProb: 0.12, BlockMicrosMean: 1000, LatencyExposure: 0.75,
	}
}

// MG is NPB MG: multigrid kernel, cache-fitting (LLC-FI).
func MG() *Profile {
	return &Profile{
		Name: "mg", Suite: "NPB", TrueClass: ClassFitting,
		BaseCPI: 1.00,
		Phases: []Phase{
			{Fraction: 0.4, RPTI: 11.00, WorkingSetKB: 8000, SoloMissRate: 0.11, MaxMissRate: 0.60},
			{Fraction: 0.6, RPTI: 19.88, WorkingSetKB: 10500, SoloMissRate: 0.16, MaxMissRate: 0.70},
		},
		FootprintMB: 3400, TotalInstructions: 2.2e10, TouchesPerPage: 4.4,
		BlockProb: 0.12, BlockMicrosMean: 1000, LatencyExposure: 0.75,
	}
}

// BT is NPB BT: block tridiagonal solver (LLC-FI).
func BT() *Profile {
	return &Profile{
		Name: "bt", Suite: "NPB", TrueClass: ClassFitting,
		BaseCPI: 1.00,
		Phases: []Phase{
			{Fraction: 0.5, RPTI: 12.00, WorkingSetKB: 7800, SoloMissRate: 0.10, MaxMissRate: 0.56},
			{Fraction: 0.5, RPTI: 16.40, WorkingSetKB: 8600, SoloMissRate: 0.12, MaxMissRate: 0.60},
		},
		FootprintMB: 1200, TotalInstructions: 2.4e10, TouchesPerPage: 5.4,
		BlockProb: 0.12, BlockMicrosMean: 1000, LatencyExposure: 0.75,
	}
}

// CG is NPB CG: conjugate gradient, irregular accesses (LLC-FI, high end).
func CG() *Profile {
	return &Profile{
		Name: "cg", Suite: "NPB", TrueClass: ClassFitting,
		BaseCPI: 1.05,
		Phases: []Phase{
			{Fraction: 1, RPTI: 17.50, WorkingSetKB: 10200, SoloMissRate: 0.18, MaxMissRate: 0.70},
		},
		FootprintMB: 900, TotalInstructions: 2.0e10, TouchesPerPage: 5.1,
		BlockProb: 0.12, BlockMicrosMean: 1000, LatencyExposure: 0.85,
	}
}

// SP is NPB SP: scalar pentadiagonal solver (LLC-FI; the paper's best case,
// 45.2% improvement). Its second phase crosses the LLC-T bound, so the
// classifier's view of it changes over time.
func SP() *Profile {
	return &Profile{
		Name: "sp", Suite: "NPB", TrueClass: ClassFitting,
		BaseCPI: 1.00,
		Phases: []Phase{
			{Fraction: 0.4, RPTI: 14.00, WorkingSetKB: 9800, SoloMissRate: 0.14, MaxMissRate: 0.68},
			{Fraction: 0.6, RPTI: 20.50, WorkingSetKB: 11800, SoloMissRate: 0.18, MaxMissRate: 0.74},
		},
		FootprintMB: 1100, TotalInstructions: 2.2e10, TouchesPerPage: 5.2,
		BlockProb: 0.12, BlockMicrosMean: 1000, LatencyExposure: 0.80,
	}
}

// Soplex is SPEC CPU2006 450.soplex: LP solver (LLC-FI; lowest remote ratio
// in the paper's Fig. 1 at 77.41%).
func Soplex() *Profile {
	return &Profile{
		Name: "soplex", Suite: "SPEC", TrueClass: ClassFitting,
		BaseCPI: 0.95,
		Phases: []Phase{
			{Fraction: 0.6, RPTI: 16.00, WorkingSetKB: 9200, SoloMissRate: 0.18, MaxMissRate: 0.66},
			{Fraction: 0.4, RPTI: 23.00, WorkingSetKB: 11500, SoloMissRate: 0.24, MaxMissRate: 0.72},
		},
		FootprintMB: 900, TotalInstructions: 2.2e10, TouchesPerPage: 3.7,
		BlockProb: 0.08, BlockMicrosMean: 1500, LatencyExposure: 0.85,
	}
}

// MCF is SPEC CPU2006 429.mcf: pointer-chasing network simplex (LLC-T;
// footprint so large that a 5 GB VM only fits two instances, as in §V-B1).
func MCF() *Profile {
	return &Profile{
		Name: "mcf", Suite: "SPEC", TrueClass: ClassThrashing,
		BaseCPI: 1.10,
		Phases: []Phase{
			{Fraction: 0.5, RPTI: 18.50, WorkingSetKB: 18500, SoloMissRate: 0.40, MaxMissRate: 0.78},
			{Fraction: 0.5, RPTI: 23.30, WorkingSetKB: 22000, SoloMissRate: 0.44, MaxMissRate: 0.82},
		},
		FootprintMB: 1700, TotalInstructions: 1.8e10, TouchesPerPage: 4.8,
		BlockProb: 0.08, BlockMicrosMean: 1500, LatencyExposure: 0.95,
	}
}

// Milc is SPEC CPU2006 433.milc: lattice QCD, streaming (LLC-T).
func Milc() *Profile {
	return &Profile{
		Name: "milc", Suite: "SPEC", TrueClass: ClassThrashing,
		BaseCPI: 1.00,
		Phases: []Phase{
			{Fraction: 0.5, RPTI: 19.00, WorkingSetKB: 24000, SoloMissRate: 0.52, MaxMissRate: 0.84},
			{Fraction: 0.5, RPTI: 24.36, WorkingSetKB: 28000, SoloMissRate: 0.58, MaxMissRate: 0.86},
		},
		FootprintMB: 680, TotalInstructions: 1.8e10, TouchesPerPage: 5.2,
		BlockProb: 0.08, BlockMicrosMean: 1500, LatencyExposure: 0.70,
	}
}

// Libquantum is SPEC CPU2006 462.libquantum: streaming over a large qubit
// vector (LLC-T; highest RPTI in Fig. 3).
func Libquantum() *Profile {
	return &Profile{
		Name: "libquantum", Suite: "SPEC", TrueClass: ClassThrashing,
		BaseCPI: 0.95,
		Phases: []Phase{
			{Fraction: 1, RPTI: 22.41, WorkingSetKB: 32000, SoloMissRate: 0.60, MaxMissRate: 0.88},
		},
		FootprintMB: 100, TotalInstructions: 2.0e10, TouchesPerPage: 5.5,
		BlockProb: 0.08, BlockMicrosMean: 1500, LatencyExposure: 0.55,
	}
}

// Hungry is the paper's "hungry-loop" CPU burner run in VM3 to consume
// spare CPU (LLC-FR, effectively no memory traffic, never finishes within
// any experiment horizon).
func Hungry() *Profile {
	return &Profile{
		Name: "hungry", Suite: "micro", TrueClass: ClassFriendly,
		BaseCPI: 0.70,
		Phases: []Phase{
			{Fraction: 1, RPTI: 0.05, WorkingSetKB: 16, SoloMissRate: 0.001, MaxMissRate: 0.02},
		},
		FootprintMB: 10, TotalInstructions: 1e18, TouchesPerPage: 1.5,
	}
}

// GuestIdle models a guest-idle VCPU's housekeeping: the guest kernel on
// an otherwise idle VCPU wakes for short timer/RCU/daemon bursts every few
// milliseconds. These wakeups are what keep real run queues churning: each
// burst's end leaves a PCPU momentarily idle, and idle PCPUs steal — the
// exact event the paper's Algorithm 2 intercepts.
func GuestIdle() *Profile {
	return &Profile{
		Name: "guest-idle", Suite: "micro", TrueClass: ClassFriendly,
		BaseCPI: 1.0,
		Phases: []Phase{
			{Fraction: 1, RPTI: 0.8, WorkingSetKB: 256, SoloMissRate: 0.05, MaxMissRate: 0.30},
		},
		FootprintMB: 50, TotalInstructions: 1e18, TouchesPerPage: 1.5,
		BlockProb: 1.0, BlockMicrosMean: 8000, BurstMicros: 200,
	}
}

// Memcached builds the profile of one memcached worker thread serving the
// given number of concurrent memslap calls (paper Fig. 6 sweeps 16..112).
// Connection state and the hot object mix grow with concurrency, so the
// working set crosses the LLC capacity as concurrency rises — that is the
// mechanism behind the paper's LB/VCPU-P crossover: at low concurrency
// remote latency dominates (LB wins), at high concurrency LLC contention
// dominates (VCPU-P wins).
func Memcached(concurrency int) *Profile {
	if concurrency < 1 {
		concurrency = 1
	}
	c := float64(concurrency)
	return &Profile{
		Name: fmt.Sprintf("memcached-c%d", concurrency), Suite: "server",
		TrueClass: ClassFitting,
		BaseCPI:   0.95,
		Phases: []Phase{
			{
				Fraction:     1,
				RPTI:         10 + 0.08*c,
				WorkingSetKB: 2000 + 120*int64(concurrency),
				SoloMissRate: minF(0.10+0.0020*c, 0.45),
				MaxMissRate:  0.72,
			},
		},
		FootprintMB: 3000, Server: true, InstrPerRequest: 9.0e4,
		TouchesPerPage: 2.4, BlockProb: 0.5, BlockMicrosMean: 800, LatencyExposure: 0.80,
		PageDriftPerSecond: 0.12,
	}
}

// Redis builds the profile of one redis-server instance with the given
// number of parallel benchmark connections (paper Fig. 7 sweeps
// 2000..10000). Redis working sets exceed the LLC across the whole sweep,
// which is why the paper finds VCPU-P ahead of LB throughout.
func Redis(connections int) *Profile {
	if connections < 1 {
		connections = 1
	}
	c := float64(connections)
	return &Profile{
		Name: fmt.Sprintf("redis-p%d", connections), Suite: "server",
		TrueClass: ClassThrashing,
		BaseCPI:   0.90,
		Phases: []Phase{
			{
				Fraction:     1,
				RPTI:         18.5 + 0.00035*c,
				WorkingSetKB: 9000 + int64(1.1*c),
				SoloMissRate: minF(0.25+0.00001*c, 0.5),
				MaxMissRate:  0.78,
			},
		},
		FootprintMB: 2500, Server: true, InstrPerRequest: 6.0e4,
		TouchesPerPage: 2.5, BlockProb: 0.5, BlockMicrosMean: 800, LatencyExposure: 0.85,
		PageDriftPerSecond: 0.12,
	}
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// Catalog returns all fixed (non-parameterised) profiles keyed by name.
func Catalog() map[string]*Profile {
	ps := []*Profile{
		Povray(), EP(), LU(), MG(), BT(), CG(), SP(),
		Soplex(), MCF(), Milc(), Libquantum(), Hungry(), GuestIdle(),
	}
	m := make(map[string]*Profile, len(ps))
	for _, p := range ps {
		m[p.Name] = p
	}
	return m
}

// ByName returns the named fixed profile or an error listing valid names.
func ByName(name string) (*Profile, error) {
	m := Catalog()
	p, ok := m[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown profile %q (have %v)", name, Names(m))
	}
	return p, nil
}

// Fig3Apps returns the six applications of the paper's Fig. 3 calibration
// experiment, in the paper's order.
func Fig3Apps() []*Profile {
	return []*Profile{Povray(), EP(), LU(), MG(), Milc(), Libquantum()}
}

// SPECApps returns the four memory-intensive SPEC applications of Fig. 4.
func SPECApps() []*Profile {
	return []*Profile{Soplex(), Libquantum(), MCF(), Milc()}
}

// NPBApps returns the five memory-intensive NPB applications of Fig. 5.
func NPBApps() []*Profile {
	return []*Profile{BT(), CG(), LU(), MG(), SP()}
}
