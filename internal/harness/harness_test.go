package harness

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestMapOrderIndependent asserts the core determinism property: results
// land at their input index no matter how many workers run or in what
// order jobs finish.
func TestMapOrderIndependent(t *testing.T) {
	const n = 64
	for _, workers := range []int{1, 2, 4, 16, 0} {
		out, err := Map(context.Background(), workers, n,
			func(_ context.Context, i int) (int, error) {
				if i%3 == 0 {
					runtime.Gosched() // shuffle completion order
				}
				return i * i, nil
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// TestMapErrorPreferred asserts a real job failure is reported even when
// the cancellation it triggers marks other jobs with context errors.
func TestMapErrorPreferred(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		_, err := Map(context.Background(), workers, 32,
			func(ctx context.Context, i int) (int, error) {
				if i == 5 {
					return 0, fmt.Errorf("job %d: %w", i, boom)
				}
				return i, nil
			})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want wrapped boom", workers, err)
		}
	}
}

// TestMapCancelledParent asserts a pre-cancelled context stops the fan-out
// without running jobs.
func TestMapCancelledParent(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	for _, workers := range []int{1, 4} {
		_, err := Map(ctx, workers, 16, func(_ context.Context, i int) (int, error) {
			ran.Add(1)
			return i, nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
	if ran.Load() != 0 {
		t.Fatalf("%d jobs ran under a cancelled context", ran.Load())
	}
}

// TestMapCancelMidFlight asserts cancellation reaches jobs through the
// context Map passes them.
func TestMapCancelMidFlight(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	_, err := Map(ctx, 4, 16, func(jobCtx context.Context, i int) (int, error) {
		if started.Add(1) == 1 {
			cancel()
		}
		<-jobCtx.Done()
		return 0, jobCtx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestWorkers(t *testing.T) {
	if w := Workers(0, 100); w != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0, 100) = %d, want GOMAXPROCS", w)
	}
	if w := Workers(-3, 100); w != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3, 100) = %d, want GOMAXPROCS", w)
	}
	if w := Workers(8, 3); w != 3 {
		t.Errorf("Workers(8, 3) = %d, want 3", w)
	}
	if w := Workers(2, 100); w != 2 {
		t.Errorf("Workers(2, 100) = %d, want 2", w)
	}
	if w := Workers(5, 0); w != 1 {
		t.Errorf("Workers(5, 0) = %d, want 1", w)
	}
}

func TestDeriveSeed(t *testing.T) {
	a := DeriveSeed(1, "fig4", "soplex")
	if a != DeriveSeed(1, "fig4", "soplex") {
		t.Fatal("DeriveSeed not stable")
	}
	if a == DeriveSeed(1, "fig4", "milc") {
		t.Fatal("label change did not change seed")
	}
	if a == DeriveSeed(2, "fig4", "soplex") {
		t.Fatal("root change did not change seed")
	}
	// ("ab","c") and ("a","bc") must differ: the separator is load-bearing.
	if DeriveSeed(1, "ab", "c") == DeriveSeed(1, "a", "bc") {
		t.Fatal("label boundaries not separated")
	}
	for root := uint64(0); root < 1000; root++ {
		if DeriveSeed(root) == 0 {
			t.Fatalf("DeriveSeed(%d) = 0", root)
		}
	}
}

// TestJSONLConcurrent asserts concurrent emitters produce whole lines, each
// valid JSON.
func TestJSONLConcurrent(t *testing.T) {
	var buf strings.Builder
	var mu sync.Mutex
	sink := NewJSONL(syncWriter{&mu, &buf})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sink.Emit(Event{Kind: EventScenarioFinished,
					Scenario: fmt.Sprintf("g%d/%d", g, i), SimMicros: int64(i)})
			}
		}(g)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 400 {
		t.Fatalf("got %d lines, want 400", len(lines))
	}
	for _, line := range lines {
		var ev Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad line %q: %v", line, err)
		}
		if ev.Kind != EventScenarioFinished {
			t.Fatalf("bad kind %q", ev.Kind)
		}
	}
}

type syncWriter struct {
	mu *sync.Mutex
	w  *strings.Builder
}

func (s syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

func TestMultiFansOut(t *testing.T) {
	var a, b []EventKind
	sink := Multi(
		SinkFunc(func(ev Event) { a = append(a, ev.Kind) }),
		SinkFunc(func(ev Event) { b = append(b, ev.Kind) }),
	)
	sink.Emit(Event{Kind: EventSuiteStarted})
	sink.Emit(Event{Kind: EventSuiteFinished})
	if len(a) != 2 || len(b) != 2 || a[0] != EventSuiteStarted || b[1] != EventSuiteFinished {
		t.Fatalf("fan-out wrong: a=%v b=%v", a, b)
	}
}

func TestConsoleRendering(t *testing.T) {
	var buf strings.Builder
	c := NewConsole(&buf)
	c.Emit(Event{Kind: EventSuiteStarted, Jobs: 3, Workers: 2})
	c.Emit(Event{Kind: EventExperimentStarted, Experiment: "fig4"})
	c.Emit(Event{Kind: EventScenarioFinished, Scenario: "noise"}) // dropped
	c.Emit(Event{Kind: EventExperimentFinished, Experiment: "fig4",
		Wall: 2 * time.Second, SimMicros: 40e6})
	c.Emit(Event{Kind: EventExperimentFinished, Experiment: "fig5",
		Wall: time.Second, Err: "bad"})
	c.Emit(Event{Kind: EventSuiteFinished, Wall: 3 * time.Second})
	out := buf.String()
	for _, want := range []string{
		"running 3 experiments on 2 workers",
		"[fig4] started",
		"[fig4] done in 2.0s (simulated 40s, 20x real-time)",
		"[fig5] FAILED after 1.0s: bad",
		"suite finished in 3.0s",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "noise") {
		t.Error("scenario event leaked into console output")
	}
}

func TestThroughput(t *testing.T) {
	ev := Event{Wall: 2 * time.Second, SimMicros: 10e6}
	if got := ev.Throughput(); got != 5 {
		t.Fatalf("Throughput = %v, want 5", got)
	}
	if (Event{}).Throughput() != 0 {
		t.Fatal("empty event should report 0 throughput")
	}
}
