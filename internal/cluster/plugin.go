package cluster

import (
	"errors"
	"fmt"
	"sort"

	"vprobe/internal/mem"
	"vprobe/internal/numa"
)

// HostView is an immutable snapshot of one host's placement-relevant
// state. Plugins see only views, never hosts, so a placement decision is a
// pure function of (spec, views) — which is what keeps cluster runs
// byte-identical at any worker count.
type HostView struct {
	Index int
	Name  string

	Nodes int
	CPUs  int

	// FreePerNodeMB is free machine memory per NUMA node; FreeMB and
	// TotalMB are the host-wide free and installed capacities.
	FreePerNodeMB []int64
	FreeMB        int64
	TotalMB       int64

	// GuestVCPUs counts VCPUs of live domains; VCPUCap is the overcommit
	// ceiling.
	GuestVCPUs int
	VCPUCap    int

	// VMs is the live VM count.
	VMs int

	// LLCPressure is the per-socket average of the active VCPUs' LLC
	// reference intensity (RPTI); RemoteRatio is the host's lifetime
	// remote-access ratio.
	LLCPressure float64
	RemoteRatio float64

	// FreeIdx, when non-nil, is the host's incremental free-chunk index,
	// maintained to mirror FreePerNodeMB exactly (refreshHost writes
	// both from the same allocator reads). Plugins use it to answer
	// available-space and best-node queries without copying or sorting;
	// they fall back to the from-scratch scan when it is nil. What-if
	// view copies that mutate FreePerNodeMB (gang reserve) must leave
	// FreeIdx nil, or the fast path would read the live host instead of
	// the hypothetical.
	FreeIdx *numa.FreeIndex
}

// bestNode returns the node with the most free memory (ties toward the
// lowest id) and that node's free MB. The FreeIndex answers in O(1) when
// present; FreeIndex.Best is defined to match this scan's tie-break.
//
//vprobe:hotpath
func (hv *HostView) bestNode() (numa.NodeID, int64) {
	if hv.FreeIdx != nil {
		return hv.FreeIdx.Best()
	}
	best, bestFree := numa.NoNode, int64(-1)
	for n, free := range hv.FreePerNodeMB {
		if free > bestFree {
			best, bestFree = numa.NodeID(n), free
		}
	}
	return best, bestFree
}

// FilterPlugin vetoes hosts that cannot take the VM. A nil error admits
// the host to scoring; the error explains the veto (surfaced when every
// host filters out).
type FilterPlugin interface {
	Name() string
	Filter(spec *VMSpec, host *HostView) error
}

// ScorePlugin ranks a host that passed all filters. Scores are on [0,
// 100]; the pipeline sums weighted scores and places on the maximum.
type ScorePlugin interface {
	Name() string
	Score(spec *VMSpec, host *HostView) float64
}

// WeightedScore pairs a score plugin with its weight in the sum.
type WeightedScore struct {
	Plugin ScorePlugin
	Weight float64
}

// MemPlan is a policy's memory-placement choice for an admitted VM: the
// allocation policy passed to the host's allocator and the preferred node
// for mem.PolicyLocal.
type MemPlan struct {
	Policy    mem.Policy
	Preferred numa.NodeID
}

// Pipeline is a kube-style two-phase placement policy: Filter plugins veto
// hosts, Score plugins rank the survivors, and MemPlan chooses how the
// winner lays the VM's memory out. Ties break toward the lowest host
// index.
type Pipeline struct {
	Name    string
	Filters []FilterPlugin
	Scorers []WeightedScore
	// MemPlan maps the winning (spec, view) to a memory layout. When nil
	// the pipeline defaults to striping across nodes.
	MemPlan func(spec *VMSpec, host *HostView) MemPlan

	// Place's scratch, reused across calls per the caller-owned-scratch
	// convention (a Pipeline serves one cluster, whose events are
	// serial). Without it every placement pass rebuilt both slices.
	vetoScratch     []veto
	feasibleScratch []*HostView
}

// veto records one filter rejection for the every-host-filtered error.
type veto struct {
	host, plugin, reason string
}

// ErrNoHostFits is wrapped into Place's error when every host filters out.
var ErrNoHostFits = errors.New("cluster: no host fits")

// Place runs the two phases over the views and returns the winning view
// and the memory plan for it.
func (pl *Pipeline) Place(spec *VMSpec, views []*HostView) (*HostView, MemPlan, error) {
	vetoes := pl.vetoScratch[:0]
	feasible := pl.feasibleScratch[:0]
	for _, hv := range views {
		admitted := true
		for _, f := range pl.Filters {
			if err := f.Filter(spec, hv); err != nil {
				//vet:alloc veto capture grows the reused scratch at most once per fleet size; the incremental fast path never reaches Place
				vetoes = append(vetoes, veto{hv.Name, f.Name(), err.Error()})
				admitted = false
				break
			}
		}
		if admitted {
			//vet:alloc grows the reused scratch at most once per fleet size
			feasible = append(feasible, hv)
		}
	}
	// Hand the (possibly grown) backing arrays back before any return.
	pl.vetoScratch = vetoes[:0]
	pl.feasibleScratch = feasible[:0]
	if len(feasible) == 0 {
		//vet:alloc the every-host-vetoed error renders once per failed generic placement; the incremental path returns bare ErrNoHostFits instead
		reasons := make([]string, 0, len(vetoes))
		for _, v := range vetoes {
			//vet:alloc failure-path rendering only
			reasons = append(reasons, fmt.Sprintf("%s: %s: %s", v.host, v.plugin, v.reason))
		}
		sort.Strings(reasons)
		// Cap the rendered reasons: on big clusters an every-host veto
		// would otherwise put hundreds of lines into one error string.
		// Sorting first keeps the surviving prefix deterministic.
		const maxReasons = 8
		if extra := len(reasons) - maxReasons; extra > 0 {
			//vet:alloc failure-path rendering only
			reasons = append(reasons[:maxReasons], fmt.Sprintf("… and %d more", extra))
		}
		//vet:alloc failure-path rendering only
		return nil, MemPlan{}, fmt.Errorf("%w for %s (%d MB, %d vcpus): %v",
			ErrNoHostFits, spec.Name, spec.MemoryMB, spec.VCPUs, reasons)
	}

	var best *HostView
	var bestScore float64
	for _, hv := range feasible {
		var score float64
		for _, ws := range pl.Scorers {
			score += ws.Weight * ws.Plugin.Score(spec, hv)
		}
		if best == nil || score > bestScore ||
			(score == bestScore && hv.Index < best.Index) {
			best, bestScore = hv, score
		}
	}
	plan := MemPlan{Policy: mem.PolicyStripe}
	if pl.MemPlan != nil {
		plan = pl.MemPlan(spec, best)
	}
	return best, plan, nil
}

// PluginVeto is one host a filter plugin excluded, with its reason.
type PluginVeto struct {
	Host   string
	Reason string
}

// FilterReport is one filter plugin's verdict over the candidate set.
// Vetoes lists only the hosts this plugin excluded (a host vetoed by an
// earlier plugin is never shown to later ones, mirroring Place's
// first-veto-wins loop).
type FilterReport struct {
	Plugin   string
	Admitted int
	Vetoes   []PluginVeto
}

// ScoreReport is one score plugin's contribution to a candidate's total.
type ScoreReport struct {
	Plugin   string
	Weight   float64
	Raw      float64
	Weighted float64
}

// CandidateReport is one feasible host's full scoring breakdown.
type CandidateReport struct {
	Host   string
	Index  int
	Total  float64
	Scores []ScoreReport
}

// Explanation is the complete provenance of one placement decision:
// every filter's verdict and the top-scoring candidates with per-plugin
// breakdowns. Candidates[0] is the winner when Feasible > 0.
type Explanation struct {
	Feasible   int
	Filters    []FilterReport
	Candidates []CandidateReport // sorted by (Total desc, Index asc), capped at topN
}

// Explain recomputes the decision Place (and the incremental score cache,
// which -place-check proves equivalent) makes over views, reporting the
// full per-plugin breakdown. It mirrors Place exactly — same first-veto
// filter loop, same weighted sum, same lowest-index tie-break — so
// Candidates[0].Host is the host Place returns. Explain allocates freely:
// it runs once per recorded decision on the provenance path, never on the
// placement hot path.
func (pl *Pipeline) Explain(spec *VMSpec, views []*HostView, topN int) Explanation {
	ex := Explanation{}
	filters := make([]FilterReport, len(pl.Filters))
	for i, f := range pl.Filters {
		filters[i].Plugin = f.Name()
	}
	var feasible []*HostView
	for _, hv := range views {
		admitted := true
		for i, f := range pl.Filters {
			if err := f.Filter(spec, hv); err != nil {
				filters[i].Vetoes = append(filters[i].Vetoes, PluginVeto{hv.Name, err.Error()})
				admitted = false
				break
			}
			filters[i].Admitted++
		}
		if admitted {
			feasible = append(feasible, hv)
		}
	}
	ex.Feasible = len(feasible)
	for _, hv := range feasible {
		cand := CandidateReport{Host: hv.Name, Index: hv.Index,
			Scores: make([]ScoreReport, len(pl.Scorers))}
		for i, ws := range pl.Scorers {
			raw := ws.Plugin.Score(spec, hv)
			cand.Scores[i] = ScoreReport{Plugin: ws.Plugin.Name(), Weight: ws.Weight,
				Raw: raw, Weighted: ws.Weight * raw}
			cand.Total += ws.Weight * raw
		}
		ex.Candidates = append(ex.Candidates, cand)
	}
	sort.SliceStable(ex.Candidates, func(i, j int) bool {
		if ex.Candidates[i].Total != ex.Candidates[j].Total {
			return ex.Candidates[i].Total > ex.Candidates[j].Total
		}
		return ex.Candidates[i].Index < ex.Candidates[j].Index
	})
	if topN > 0 && len(ex.Candidates) > topN {
		ex.Candidates = ex.Candidates[:topN]
	}
	ex.Filters = filters
	return ex
}

// ---- Built-in filter plugins ----

// CapacityFilter is the baseline admission check: the VM's memory must fit
// in the host's total free memory and its VCPUs under the overcommit cap.
type CapacityFilter struct{}

// Name implements FilterPlugin.
func (CapacityFilter) Name() string { return "capacity" }

// Filter implements FilterPlugin.
func (CapacityFilter) Filter(spec *VMSpec, hv *HostView) error {
	if spec.MemoryMB > hv.FreeMB {
		//vet:alloc veto errors render only for infeasible hosts; the score cache stores the boolean, not the error
		return fmt.Errorf("needs %d MB, %d MB free", spec.MemoryMB, hv.FreeMB)
	}
	if hv.GuestVCPUs+spec.VCPUs > hv.VCPUCap {
		//vet:alloc veto errors render only for infeasible hosts; the score cache stores the boolean, not the error
		return fmt.Errorf("needs %d vcpus, %d of %d committed",
			spec.VCPUs, hv.GuestVCPUs, hv.VCPUCap)
	}
	return nil
}

// NUMAFitFilter implements Gudkov-style available-space accounting: total
// free memory overstates what a NUMA host can give a VM, because a VM
// spread over many nodes pays remote latency for most of its accesses. The
// filter admits a host only if the VM fits within the MaxSplit largest
// per-node free chunks — the available space for a VM that tolerates
// spanning at most MaxSplit virtual NUMA nodes.
type NUMAFitFilter struct {
	// MaxSplit is the maximum number of nodes the VM may span (>= 1).
	MaxSplit int
}

// Name implements FilterPlugin.
func (f NUMAFitFilter) Name() string { return "numa-fit" }

// Filter implements FilterPlugin. It runs once per (pending VM, host)
// pair on every placement pass, which makes it the cluster layer's
// admission hot path.
//
//vprobe:hotpath
func (f NUMAFitFilter) Filter(spec *VMSpec, hv *HostView) error {
	split := f.MaxSplit
	if split < 1 {
		split = 1
	}
	var avail int64
	if hv.FreeIdx != nil {
		// Incremental path: the index keeps the chunks sorted, so the
		// available-space sum is O(split) with no copy. TopSum is defined
		// to equal the from-scratch branch below on the same free vector.
		avail = hv.FreeIdx.TopSum(split)
	} else {
		avail = numa.AvailableMB(hv.FreePerNodeMB, split)
	}
	if spec.MemoryMB > avail {
		//vet:alloc the veto error is an operator-facing diagnostic built once per rejection, not steady state
		return fmt.Errorf("needs %d MB within %d node(s), %d MB available",
			spec.MemoryMB, split, avail)
	}
	return nil
}

// ---- Built-in score plugins ----

// LeastLoadedScore prefers emptier hosts (spreading): the mean of the free
// memory fraction and the free VCPU-cap fraction, scaled to [0, 100].
type LeastLoadedScore struct{}

// Name implements ScorePlugin.
func (LeastLoadedScore) Name() string { return "least-loaded" }

// Score implements ScorePlugin.
func (LeastLoadedScore) Score(spec *VMSpec, hv *HostView) float64 {
	memFree := float64(hv.FreeMB) / float64(hv.TotalMB)
	cpuFree := 1 - float64(hv.GuestVCPUs)/float64(hv.VCPUCap)
	if cpuFree < 0 {
		cpuFree = 0
	}
	return 50 * (memFree + cpuFree)
}

// PackScore is the inverse of LeastLoadedScore: prefer fuller hosts, so
// VMs consolidate and empty hosts stay empty.
type PackScore struct{}

// Name implements ScorePlugin.
func (PackScore) Name() string { return "pack" }

// Score implements ScorePlugin.
func (PackScore) Score(spec *VMSpec, hv *HostView) float64 {
	return 100 - (LeastLoadedScore{}).Score(spec, hv)
}

// NUMAFitScore prefers hosts where the VM's memory fits on a single node:
// single-node placements score 60 plus up to 40 for headroom; hosts that
// would force a split score by the fraction that stays on the best node.
type NUMAFitScore struct{}

// Name implements ScorePlugin.
func (NUMAFitScore) Name() string { return "numa-fit" }

// Score implements ScorePlugin. Like Filter, it runs per (VM, host) pair
// on the admission hot path.
//
//vprobe:hotpath
func (NUMAFitScore) Score(spec *VMSpec, hv *HostView) float64 {
	_, bestFree := hv.bestNode()
	if bestFree >= spec.MemoryMB {
		if bestFree == 0 {
			// A zero-memory spec "fits" a full node; without this guard
			// the headroom below is 0/0 and the score goes NaN, poisoning
			// every weighted sum it joins.
			return 60
		}
		headroom := float64(bestFree-spec.MemoryMB) / float64(bestFree)
		return 60 + 40*headroom
	}
	if spec.MemoryMB <= 0 {
		return 0
	}
	return 50 * float64(bestFree) / float64(spec.MemoryMB)
}

// LLCBalanceScore prefers hosts with low aggregate LLC pressure, so
// cache-hungry VMs spread across sockets cluster-wide instead of stacking
// on one machine. The scale constant is the paper's LLC-T bound: a host
// whose per-socket pressure sum matches one thrashing app scores ~50.
type LLCBalanceScore struct{}

// Name implements ScorePlugin.
func (LLCBalanceScore) Name() string { return "llc-balance" }

// Score implements ScorePlugin.
func (LLCBalanceScore) Score(spec *VMSpec, hv *HostView) float64 {
	return 100 / (1 + hv.LLCPressure/20)
}
