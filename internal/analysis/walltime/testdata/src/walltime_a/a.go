// Package walltime_a is the walltime fixture.
package walltime_a

import (
	"math/rand"
	"time"
)

func wall() time.Duration {
	start := time.Now()      // want `wall-clock time\.Now in simulation code`
	return time.Since(start) // want `wall-clock time\.Since in simulation code`
}

func sleepy() {
	time.Sleep(time.Millisecond) // want `wall-clock time\.Sleep in simulation code`
}

func draw() int {
	return rand.Intn(10) // want `rand\.Intn is not seed-stable`
}

func seeded() *rand.Rand {
	return rand.New(rand.NewSource(42)) // want `rand\.New is not seed-stable` `rand\.NewSource is not seed-stable`
}

func measured() time.Duration {
	start := time.Now() //vet:wallclock deliberate wall measurement in fixture
	_ = start
	// Pure time types and constructors stay legal.
	return 5 * time.Millisecond
}

func legalTime() time.Time {
	return time.Unix(0, 0)
}
