package framework

import (
	"fmt"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ModuleAnalyzer is a whole-module static check: unlike Analyzer, whose Run
// sees one package at a time, a ModuleAnalyzer's Run sees every loaded
// package at once, so it can follow call edges and contracts across package
// boundaries (the hotpath reachability walk, the spec-field/compile-layer
// contract). It deliberately mirrors Analyzer's shape.
type ModuleAnalyzer struct {
	// Name identifies the analyzer in diagnostics and -only filters.
	Name string
	// Doc is the one-paragraph help text (first line is the summary).
	Doc string
	// Run applies the analyzer to the whole package set.
	Run func(*ModulePass) (any, error)
	// Directives lists the //vet:<name> suppression names this analyzer
	// honours; the driver uses the union to report dangling directives.
	Directives []string
}

// ModulePass carries the full typechecked package set through a
// ModuleAnalyzer.Run call, with the same Report/Suppressed vocabulary as
// the per-package Pass plus object-fact plumbing for analyzers that derive
// cross-package properties (reachability, consumed-field sets).
type ModulePass struct {
	Analyzer *ModuleAnalyzer
	Fset     *token.FileSet
	// Pkgs is every loaded package, in load order.
	Pkgs   []*Package
	Report func(Diagnostic)

	directives map[string]map[int][]Directive
	facts      map[types.Object][]any
}

// Reportf reports a formatted diagnostic at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Suppressed reports whether a `//vet:<name>` directive covers pos, with
// the same placement rules as Pass.Suppressed (same line or the line
// immediately above), across every loaded package.
func (p *ModulePass) Suppressed(pos token.Pos, name string) bool {
	_, ok := p.Suppression(pos, name)
	return ok
}

// Suppression returns the `//vet:<name>` directive covering pos, so the
// analyzer can check the written reason.
func (p *ModulePass) Suppression(pos token.Pos, name string) (Directive, bool) {
	if p.directives == nil {
		p.directives = map[string]map[int][]Directive{}
		for _, pkg := range p.Pkgs {
			for file, lines := range collectDirectives(p.Fset, pkg.Files) {
				p.directives[file] = lines
			}
		}
	}
	return lookupDirective(p.directives, p.Fset, pos, name)
}

// ExportObjectFact attaches a fact to obj. Facts are the cross-analyzer /
// cross-package plumbing: a module analyzer derives a property once (this
// function is hot-path reachable; this field is consumed by the compile
// layer) and later passes or tests read it back with ImportObjectFact.
func (p *ModulePass) ExportObjectFact(obj types.Object, fact any) {
	if p.facts == nil {
		p.facts = map[types.Object][]any{}
	}
	p.facts[obj] = append(p.facts[obj], fact)
}

// ImportObjectFact copies the first fact attached to obj whose type
// matches the type of *ptr into ptr, reporting whether one was found.
func (p *ModulePass) ImportObjectFact(obj types.Object, ptr any) bool {
	for _, f := range p.facts[obj] {
		if assignFact(ptr, f) {
			return true
		}
	}
	return false
}

// assignFact stores fact through ptr when the dynamic types line up.
func assignFact(ptr, fact any) bool {
	switch dst := ptr.(type) {
	case *bool:
		if v, ok := fact.(bool); ok {
			*dst = v
			return true
		}
	case *string:
		if v, ok := fact.(string); ok {
			*dst = v
			return true
		}
	case *any:
		*dst = fact
		return true
	}
	return false
}

// FindPackage returns the loaded package whose import path equals path or
// ends with "/"+path — so analyzers name real packages by full path
// ("vprobe/internal/spec") and analysistest fixtures by suffix ("spec").
func (p *ModulePass) FindPackage(path string) *Package {
	for _, pkg := range p.Pkgs {
		if pkg.Path == path || strings.HasSuffix(pkg.Path, "/"+path) {
			return pkg
		}
	}
	return nil
}

// RunModuleAnalyzer applies a to the whole package set and returns the
// diagnostics sorted by position.
func RunModuleAnalyzer(a *ModuleAnalyzer, fset *token.FileSet, pkgs []*Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &ModulePass{
		Analyzer: a,
		Fset:     fset,
		Pkgs:     pkgs,
		Report:   func(d Diagnostic) { diags = append(diags, d) },
	}
	if _, err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	sortDiagnostics(fset, diags)
	return diags, nil
}

// DanglingDirectives scans every //vet: comment of the loaded packages and
// returns a diagnostic for each directive whose name no analyzer claims —
// a typo ("//vet:allocs") or a suppression that outlived its analyzer
// would otherwise silently suppress nothing forever.
func DanglingDirectives(fset *token.FileSet, pkgs []*Package, known []string) []Diagnostic {
	knownSet := make(map[string]bool, len(known))
	for _, n := range known {
		knownSet[n] = true
	}
	sorted := append([]string(nil), known...)
	sort.Strings(sorted)
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, lines := range collectDirectives(fset, pkg.Files) {
			for _, ds := range lines {
				for _, d := range ds {
					if !knownSet[d.Name] {
						diags = append(diags, Diagnostic{Pos: d.Pos, Message: fmt.Sprintf(
							"dangling directive //vet:%s: no analyzer honours it (known: %s)",
							d.Name, strings.Join(sorted, ", "))})
					}
				}
			}
		}
	}
	sortDiagnostics(fset, diags)
	return diags
}
