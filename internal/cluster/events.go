package cluster

import (
	"fmt"

	"vprobe/internal/sim"
)

// EventKind labels a cluster-scoped event. Cluster events describe VM
// lifecycle and placement decisions across hosts; host-internal scheduling
// events stay inside each host's xen.Hypervisor.
type EventKind string

// Cluster event kinds.
const (
	// EventVMArrive: a VM request entered the cluster.
	EventVMArrive EventKind = "vm-arrive"
	// EventVMPlace: a VM was admitted and placed on a host.
	EventVMPlace EventKind = "vm-place"
	// EventVMRetry: placement failed; the VM re-queued with backoff.
	EventVMRetry EventKind = "vm-retry"
	// EventVMReject: the VM exhausted its retries and left the cluster.
	EventVMReject EventKind = "vm-reject"
	// EventVMDepart: the VM's lifetime ended and it was torn down.
	EventVMDepart EventKind = "vm-depart"
	// EventMigrateStart: the rebalancer began moving a VM between hosts.
	EventMigrateStart EventKind = "migrate-start"
	// EventMigrateDone: the inter-host migration completed and the VM
	// resumed on its new host.
	EventMigrateDone EventKind = "migrate-done"
	// EventVMPreempted: a lower-priority VM was evicted (migrated away or
	// killed and requeued) to admit a higher-priority arrival.
	EventVMPreempted EventKind = "vm-preempt"
	// EventGangAdmitted: every member of a VM group was placed in one
	// all-or-nothing commit.
	EventGangAdmitted EventKind = "gang-admit"
	// EventBackfill: a small low-priority VM jumped the admission queue
	// into a fragmentation hole after the shadow-placement check proved
	// the jump cannot delay the blocked queue head.
	EventBackfill EventKind = "vm-backfill"
	// EventDeschedule: the descheduler moved a VM off a near-empty host
	// during low load to defragment the cluster.
	EventDeschedule EventKind = "deschedule"
)

// Event is one structured cluster-level record. Host and VM carry the
// machine-readable identities; Detail is the human-readable rendering.
type Event struct {
	At   sim.Time
	Kind EventKind
	// Host names the host involved ("" when none, e.g. a rejection).
	Host string
	// VM names the subject VM.
	VM     string
	Detail string
}

// String renders the event as a trace line.
func (ev Event) String() string { return ev.Detail }

// emit delivers a cluster event; formatting is skipped when no listener is
// attached, so tracing is free when off. Identities are derived here from
// the model objects rather than threaded as loose strings, so an event can
// never carry a name its call site forgot to fill in: vm is required, ho
// is nil only for kinds that genuinely have no host (arrival, retry,
// rejection).
func (c *Cluster) emit(kind EventKind, ho *Host, vm *VM, format string, args ...any) {
	if c.cfg.Events == nil {
		return
	}
	host := ""
	if ho != nil {
		host = ho.Name
	}
	c.cfg.Events(Event{
		At:     c.engine.Now(),
		Kind:   kind,
		Host:   host,
		VM:     vm.Spec.Name,
		Detail: fmt.Sprintf(format, args...),
	})
}
