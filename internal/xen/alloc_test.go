package xen_test

import (
	"testing"

	"vprobe/internal/mem"
	"vprobe/internal/numa"
	"vprobe/internal/sched"
	"vprobe/internal/sim"
	"vprobe/internal/telemetry"
	"vprobe/internal/workload"
	"vprobe/internal/xen"
)

// newSteadyStateHV builds an overcommitted host (12 runnable VCPUs on 8
// PCPUs) that exercises the whole quantum loop forever: dispatch, quantum
// end, credit ticks and accounting, blocking and BOOST wakeups, preemption,
// and idle-PCPU stealing. All workloads are endless so the steady state
// never drains, and guest-thread re-placement is disabled because it is a
// rare housekeeping event (6 s mean), not part of the quantum loop.
func newSteadyStateHV(t testing.TB, kind sched.Kind) *xen.Hypervisor {
	t.Helper()
	cfg := xen.DefaultConfig()
	cfg.GuestThreadMigrationMean = 0
	h := xen.New(numa.XeonE5620(), sched.MustNew(kind), cfg)
	vm, err := h.CreateDomain("vm", 4096, 12, mem.PolicyStripe)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := h.AttachApp(vm, i, workload.Hungry()); err != nil {
			t.Fatal(err)
		}
	}
	for i := 8; i < 12; i++ {
		if _, err := h.AttachApp(vm, i, workload.GuestIdle()); err != nil {
			t.Fatal(err)
		}
	}
	return h
}

// TestQuantumSteadyStateZeroAlloc pins the whole quantum hot path —
// sim event pool, perf.ExecuteInto, the PCPU flight/quantum-timer reuse,
// the wake timers, and the steal scratch buffers — at zero allocations per
// simulated interval once buffers have grown to steady state (tracing
// off). Any regression that reintroduces a per-quantum allocation fails
// this test rather than quietly degrading throughput.
func TestQuantumSteadyStateZeroAlloc(t *testing.T) {
	testQuantumSteadyStateZeroAlloc(t, false, false)
}

// TestQuantumSteadyStateZeroAllocTelemetry re-runs the guardrail with the
// full metric set attached and the sampler ticking: pre-bound handles and
// the preallocated ring must keep the instrumented loop allocation-free
// too.
func TestQuantumSteadyStateZeroAllocTelemetry(t *testing.T) {
	testQuantumSteadyStateZeroAlloc(t, true, false)
}

// TestQuantumSteadyStateZeroAllocSpans re-runs the guardrail with the span
// flight recorder attached: span recording hooks only lifecycle
// transitions, never the quantum loop, so the steady state must stay
// allocation-free with tracing on as well.
func TestQuantumSteadyStateZeroAllocSpans(t *testing.T) {
	testQuantumSteadyStateZeroAlloc(t, false, true)
}

func testQuantumSteadyStateZeroAlloc(t *testing.T, withTele, withSpans bool) {
	h := newSteadyStateHV(t, sched.KindCredit)
	if withTele {
		s := telemetry.NewSampler(telemetry.NewRegistry(), sim.Second)
		xen.AttachTelemetry(h, s)
		s.Start(h.Engine)
	}
	if withSpans {
		xen.AttachSpans(h, telemetry.NewTracer(1, 0))
	}
	// Warm up past boot, first-touch windows, and buffer growth.
	h.Run(2 * sim.Second)
	next := sim.Time(2 * sim.Second)
	allocs := testing.AllocsPerRun(20, func() {
		next = next.Add(100 * sim.Millisecond)
		h.Engine.RunUntil(next)
	})
	if allocs != 0 {
		t.Fatalf("steady-state quantum loop allocates %.1f times per 100 ms "+
			"of simulation, want 0", allocs)
	}
	if h.TotalBusyTime() == 0 {
		t.Fatal("simulation did no work; zero-alloc result is vacuous")
	}
}
