package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// EventKind labels a harness progress event.
type EventKind string

// Progress event kinds, in the order a suite run emits them.
const (
	// EventSuiteStarted opens a suite run; Jobs and Workers are set.
	EventSuiteStarted EventKind = "suite-started"
	// EventExperimentStarted marks one experiment entering a worker.
	EventExperimentStarted EventKind = "experiment-started"
	// EventScenarioFinished reports one completed simulation inside an
	// experiment; SimMicros carries the scenario's virtual end time.
	EventScenarioFinished EventKind = "scenario-finished"
	// EventExperimentFinished carries the experiment's wall time and the
	// total virtual time it simulated (Err is set on failure).
	EventExperimentFinished EventKind = "experiment-finished"
	// EventSuiteFinished closes the run with the suite's total wall time.
	EventSuiteFinished EventKind = "suite-finished"
)

// Event is one structured progress record. Events describe execution
// progress only — experiment results never flow through them — so the
// wall-clock fields do not threaten result determinism.
type Event struct {
	Kind       EventKind `json:"kind"`
	Experiment string    `json:"experiment,omitempty"`
	// Scenario names one simulation inside an experiment, e.g.
	// "vprobe/seed2" or "period/1.000s".
	Scenario string `json:"scenario,omitempty"`
	// Jobs and Workers describe the fan-out (suite events only).
	Jobs    int `json:"jobs,omitempty"`
	Workers int `json:"workers,omitempty"`
	// Wall is elapsed wall-clock time (finished events).
	Wall time.Duration `json:"wall_ns,omitempty"`
	// SimMicros is virtual time simulated, in microseconds.
	SimMicros int64 `json:"sim_micros,omitempty"`
	// Err carries the failure message of a finished job, if any.
	Err string `json:"err,omitempty"`
}

// Throughput returns simulated seconds per wall-clock second (0 when
// either quantity is missing).
func (ev Event) Throughput() float64 {
	if ev.Wall <= 0 || ev.SimMicros <= 0 {
		return 0
	}
	return (float64(ev.SimMicros) / 1e6) / ev.Wall.Seconds()
}

// Sink consumes progress events. Implementations must be safe for
// concurrent use: workers emit from their own goroutines.
type Sink interface {
	Emit(Event)
}

// SinkFunc adapts a function to Sink. The function must be safe for
// concurrent use.
type SinkFunc func(Event)

// Emit calls f.
func (f SinkFunc) Emit(ev Event) { f(ev) }

// Multi fans every event out to each sink in order.
func Multi(sinks ...Sink) Sink {
	return SinkFunc(func(ev Event) {
		for _, s := range sinks {
			s.Emit(ev)
		}
	})
}

// JSONL writes events as JSON Lines — one self-contained object per event —
// the format the `-out` export of cmd/vprobe-sim produces for downstream
// tooling. A mutex serializes concurrent emitters.
type JSONL struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewJSONL returns a JSONL sink writing to w.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{enc: json.NewEncoder(w)}
}

// Emit writes one JSON line. Encoding errors are swallowed: progress export
// must never fail a simulation run.
func (j *JSONL) Emit(ev Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	_ = j.enc.Encode(ev)
}

// Console renders experiment-level events as single human-readable progress
// lines (scenario-level events are dropped to keep the output short).
type Console struct {
	mu sync.Mutex
	w  io.Writer
}

// NewConsole returns a console sink writing to w.
func NewConsole(w io.Writer) *Console { return &Console{w: w} }

// Emit prints one progress line per experiment start/finish.
func (c *Console) Emit(ev Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	//vet:partial scenario-finished events are dropped on purpose to keep console output short
	switch ev.Kind {
	case EventSuiteStarted:
		fmt.Fprintf(c.w, "running %d experiments on %d workers\n", ev.Jobs, ev.Workers)
	case EventExperimentStarted:
		fmt.Fprintf(c.w, "[%s] started\n", ev.Experiment)
	case EventExperimentFinished:
		if ev.Err != "" {
			fmt.Fprintf(c.w, "[%s] FAILED after %.1fs: %s\n",
				ev.Experiment, ev.Wall.Seconds(), ev.Err)
			return
		}
		fmt.Fprintf(c.w, "[%s] done in %.1fs (simulated %.0fs, %.0fx real-time)\n",
			ev.Experiment, ev.Wall.Seconds(), float64(ev.SimMicros)/1e6, ev.Throughput())
	case EventSuiteFinished:
		fmt.Fprintf(c.w, "suite finished in %.1fs\n", ev.Wall.Seconds())
	}
}
