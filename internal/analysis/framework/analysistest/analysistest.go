// Package analysistest runs a framework.Analyzer over fixture packages laid
// out GOPATH-style under testdata/src/<path>, checking reported diagnostics
// against `// want "regexp"` comments — the same convention as
// golang.org/x/tools/go/analysis/analysistest, re-implemented on the
// dependency-free framework.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"vprobe/internal/analysis/framework"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData() string {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return dir
}

// want is one expectation: a diagnostic whose position is on line of file
// and whose message matches re.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run loads each fixture package under testdata/src and applies the
// analyzer, failing the test on any diagnostic without a matching want
// comment and on any want comment without a matching diagnostic.
func Run(t *testing.T, testdata string, a *framework.Analyzer, paths ...string) {
	t.Helper()
	ld := framework.NewTreeLoader(filepath.Join(testdata, "src"))
	for _, path := range paths {
		pkg, err := ld.Load(path)
		if err != nil {
			t.Fatalf("load %s: %v", path, err)
		}
		wants, err := collectWants(pkg)
		if err != nil {
			t.Fatal(err)
		}
		diags, err := framework.RunAnalyzer(a, pkg)
		if err != nil {
			t.Fatalf("run %s on %s: %v", a.Name, path, err)
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			if !claim(wants, pos.Filename, pos.Line, d.Message) {
				t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
			}
		}
		for _, w := range wants {
			if !w.matched {
				t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
			}
		}
	}
}

// RunModule loads every listed fixture package under testdata/src into one
// loader and applies the module analyzer once over the whole set — the
// module-analyzer counterpart of Run, for analyzers whose findings depend
// on cross-package edges (hotpath reachability, spec-field consumption).
// Want comments from every listed package participate.
func RunModule(t *testing.T, testdata string, a *framework.ModuleAnalyzer, paths ...string) {
	t.Helper()
	ld := framework.NewTreeLoader(filepath.Join(testdata, "src"))
	var pkgs []*framework.Package
	var wants []*want
	for _, path := range paths {
		pkg, err := ld.Load(path)
		if err != nil {
			t.Fatalf("load %s: %v", path, err)
		}
		pkgs = append(pkgs, pkg)
		ws, err := collectWants(pkg)
		if err != nil {
			t.Fatal(err)
		}
		wants = append(wants, ws...)
	}
	diags, err := framework.RunModuleAnalyzer(a, ld.Fset, pkgs)
	if err != nil {
		t.Fatalf("run %s: %v", a.Name, err)
	}
	for _, d := range diags {
		pos := ld.Fset.Position(d.Pos)
		if !claim(wants, pos.Filename, pos.Line, d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

// claim marks the first unmatched want on (file, line) whose pattern
// matches msg.
func claim(wants []*want, file string, line int, msg string) bool {
	for _, w := range wants {
		if !w.matched && w.file == file && w.line == line && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

// collectWants parses `// want "re" "re" ...` comments from the package
// sources. The expectation applies to the line the comment starts on.
func collectWants(pkg *framework.Package) ([]*want, error) {
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				patterns, err := splitQuoted(rest)
				if err != nil {
					return nil, fmt.Errorf("%s: bad want comment: %w", pos, err)
				}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want pattern %q: %w", pos, p, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants, nil
}

// splitQuoted parses a sequence of Go double- or back-quoted strings.
func splitQuoted(s string) ([]string, error) {
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out, nil
		}
		switch s[0] {
		case '"':
			end := findStringEnd(s)
			if end < 0 {
				return nil, fmt.Errorf("unterminated string in %q", s)
			}
			unq, err := strconv.Unquote(s[:end+1])
			if err != nil {
				return nil, err
			}
			out = append(out, unq)
			s = s[end+1:]
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated raw string in %q", s)
			}
			out = append(out, s[1:end+1])
			s = s[end+2:]
		default:
			return nil, fmt.Errorf("expected quoted pattern at %q", s)
		}
	}
}

// findStringEnd returns the index of the closing double quote of the
// Go string literal starting at s[0], honoring backslash escapes.
func findStringEnd(s string) int {
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			return i
		}
	}
	return -1
}

// MustWriteTree is a test helper materializing an in-memory fixture tree
// under dir (used by framework self-tests that synthesize fixtures).
func MustWriteTree(t *testing.T, dir string, files map[string]string) {
	t.Helper()
	for name, src := range files {
		p := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
