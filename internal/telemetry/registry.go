// Package telemetry is the deterministic, virtual-time metrics subsystem.
//
// Instrumented code pre-registers typed handles — Counter, Gauge,
// Histogram — in a Registry before the simulation starts, then updates
// them through direct field access on hot paths (an update is a plain
// float64 store; no locks, no maps, no allocation). A Sampler snapshots
// every registered series into an in-memory time-series ring at a fixed
// virtual-time period (default every simulated second, aligned with the
// PMU sampling period of the vProbe policies). The ring is exported as
// JSONL (one record per sample) and the final cumulative state as
// Prometheus text exposition.
//
// Determinism contract: nothing in this package reads wall-clock time or
// randomness; sampling is driven entirely by the owning sim.Engine, and
// every export walks series in registration order — never map order — so
// output bytes are identical across runs and worker counts. Telemetry
// must also never feed back into the simulation: handles are write-only
// from the model's point of view, and sample hooks only read model state.
//
// Memory discipline: registration happens once, up front; after the
// sampler starts the registry is sealed. The ring is preallocated at
// Start, so steady-state sampling performs zero allocations (enforced by
// the AllocsPerRun guardrails in this package's tests and internal/xen's).
package telemetry

import (
	"fmt"
	"sort"
)

// Kind is the metric type of a registered series.
type Kind uint8

// Metric kinds, with their Prometheus TYPE names.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String returns the Prometheus TYPE keyword.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Label is one key="value" pair attached to a series at registration.
type Label struct {
	Key, Value string
}

// Counter is a monotonically non-decreasing value (events counted since
// the start of the run). Updates are plain stores: handles are owned by
// exactly one single-threaded simulation.
type Counter struct {
	v float64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v++ }

// Add adds d, which must be non-negative for the counter to keep its
// monotonic meaning (not checked on the hot path).
func (c *Counter) Add(d float64) { c.v += d }

// Value returns the current total.
func (c *Counter) Value() float64 { return c.v }

// Gauge is an instantaneous value that can go up and down.
type Gauge struct {
	v float64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.v = v }

// Add adjusts the value by d.
func (g *Gauge) Add(d float64) { g.v += d }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v }

// Histogram accumulates observations into fixed buckets chosen at
// registration. Observe is allocation-free; bucket counts are stored
// per-bin and cumulated only at export time.
type Histogram struct {
	bounds []float64 // ascending upper bounds; +Inf is implicit
	counts []uint64  // per-bin counts, counts[i] covers (bounds[i-1], bounds[i]]
	over   uint64    // observations above the last bound
	sum    float64
	count  uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.sum += v
	h.count++
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
	h.over++
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return h.sum }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// series is one registered metric with its rendered identity.
type series struct {
	name   string // metric name without labels
	id     string // name plus rendered label block (Prometheus form)
	help   string
	kind   Kind
	labels []Label

	c *Counter
	g *Gauge
	h *Histogram
}

// Registry holds the registered series, in registration order. It is not
// safe for concurrent registration; register everything up front, before
// the simulation (and any host-advance parallelism) starts.
type Registry struct {
	series []*series
	byID   map[string]*series // duplicate detection only; never ranged
	byName map[string]Kind    // name -> kind consistency check
	sealed bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		byID:   make(map[string]*series),
		byName: make(map[string]Kind),
	}
}

// renderID renders the Prometheus series id: name{k="v",...} with labels
// sorted by key so the same label set always renders the same id.
func renderID(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	id := name + "{"
	for i, l := range ls {
		if i > 0 {
			id += ","
		}
		id += fmt.Sprintf("%s=%q", l.Key, l.Value)
	}
	return id + "}"
}

// register validates and appends one series.
func (r *Registry) register(name, help string, kind Kind, labels []Label) *series {
	if r.sealed {
		panic(fmt.Sprintf("telemetry: register %q after the sampler started", name))
	}
	if !validMetricName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	if k, ok := r.byName[name]; ok && k != kind {
		panic(fmt.Sprintf("telemetry: metric %q re-registered as %v (was %v)", name, kind, k))
	}
	id := renderID(name, labels)
	if _, ok := r.byID[id]; ok {
		panic(fmt.Sprintf("telemetry: duplicate series %q", id))
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	s := &series{name: name, id: id, help: help, kind: kind, labels: ls}
	r.series = append(r.series, s)
	r.byID[id] = s
	r.byName[name] = kind
	return s
}

// Counter registers (and returns) a counter series. Registering a
// duplicate (name, labels) pair, an invalid name, or the same name under
// a different kind panics: registration happens at build time, where a
// loud failure is a programming-error report, not a runtime hazard.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.register(name, help, KindCounter, labels)
	s.c = &Counter{}
	return s.c
}

// Gauge registers (and returns) a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.register(name, help, KindGauge, labels)
	s.g = &Gauge{}
	return s.g
}

// Histogram registers (and returns) a histogram series with the given
// ascending bucket upper bounds (the +Inf bucket is implicit). The bounds
// slice is copied.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if len(bounds) == 0 {
		panic(fmt.Sprintf("telemetry: histogram %q with no buckets", name))
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %q buckets not ascending", name))
		}
	}
	s := r.register(name, help, KindHistogram, labels)
	s.h = &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)),
	}
	return s.h
}

// Len returns the number of registered series.
func (r *Registry) Len() int { return len(r.series) }

// seal freezes the registry; further registration panics.
func (r *Registry) seal() { r.sealed = true }

// validMetricName checks the Prometheus metric-name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		alpha := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':'
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}
