// Package handles exercises the nil-guarded pre-bound handle pattern:
// guarded uses, early-return guards, compound conditions, an unguarded
// violation, and a waived site.
package handles

import "telemetry"

// Handles is a pre-bound handle set (has *telemetry.Counter fields).
type Handles struct {
	Dispatches *telemetry.Counter
	Steals     *telemetry.Counter
	Load       *telemetry.Gauge
}

// HV owns an optional handle set, nil when telemetry is not attached.
type HV struct {
	Tele *Handles
	n    int
}

// Quantum is the hot root.
//
//vprobe:hotpath
func (v *HV) Quantum() {
	if v.Tele != nil {
		v.Tele.Dispatches.Inc()
	}
	v.helper()
	v.compound()
	v.bad()
	v.waived()
}

// helper uses the early-return guard form.
func (v *HV) helper() {
	if v.Tele == nil {
		return
	}
	v.Tele.Steals.Inc()
}

// compound guards inside a && condition.
func (v *HV) compound() {
	if v.Tele != nil && v.n > 0 {
		v.Tele.Load.Set(float64(v.n))
	}
}

// bad dereferences the possibly-nil handle set with no guard.
func (v *HV) bad() {
	v.Tele.Dispatches.Inc() // want `telemetry handle field Dispatches read through possibly-nil v.Tele`
}

// waived carries a written justification.
func (v *HV) waived() {
	//vet:handle Quantum only runs after attach, which always binds Tele
	v.Tele.Dispatches.Inc()
}

// Cold is not reachable from any root: unguarded use is fine off the hot
// path.
func Cold(v *HV) {
	v.Tele.Dispatches.Inc()
}
