package experiments

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// WriteCSV emits the result's machine-readable series as CSV rows of the
// form (series, label, value), sorted for stable diffs. This is the format
// the plotting scripts of a typical artifact evaluation consume.
func (r *Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"series", "label", "value"}); err != nil {
		return err
	}
	for _, series := range sortedSeriesKeys(r.Series) {
		labels := r.Series[series]
		keys := make([]string, 0, len(labels))
		for k := range labels {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, label := range keys {
			err := cw.Write([]string{series, label, fmt.Sprintf("%g", labels[label])})
			if err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON emits the result (id, title, series, and rendered tables) as
// indented JSON.
func (r *Result) WriteJSON(w io.Writer) error {
	type table struct {
		Title   string     `json:"title"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
		Notes   []string   `json:"notes,omitempty"`
	}
	out := struct {
		ID     string                        `json:"id"`
		Title  string                        `json:"title"`
		Series map[string]map[string]float64 `json:"series"`
		Tables []table                       `json:"tables"`
	}{ID: r.ID, Title: r.Title, Series: r.Series}
	for _, t := range r.Tables {
		out.Tables = append(out.Tables, table{
			Title: t.Title, Columns: t.Columns, Rows: t.Rows(), Notes: t.Notes,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Export writes both CSV and JSON files for the result into dir, named by
// the experiment id, and returns the paths written.
func (r *Result) Export(dir string) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var paths []string
	csvPath := filepath.Join(dir, r.ID+".csv")
	f, err := os.Create(csvPath)
	if err != nil {
		return nil, err
	}
	if err := r.WriteCSV(f); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	paths = append(paths, csvPath)

	jsonPath := filepath.Join(dir, r.ID+".json")
	g, err := os.Create(jsonPath)
	if err != nil {
		return nil, err
	}
	if err := r.WriteJSON(g); err != nil {
		g.Close()
		return nil, err
	}
	if err := g.Close(); err != nil {
		return nil, err
	}
	return append(paths, jsonPath), nil
}

func sortedSeriesKeys(m map[string]map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
