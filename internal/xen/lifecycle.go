package xen

import (
	"fmt"

	"vprobe/internal/numa"
	"vprobe/internal/sim"
)

// PauseDomain stops all of a domain's VCPUs: running ones are preempted
// mid-quantum (partial work accounted), queued ones are removed from their
// run queues, and pending wakeups are discarded. The schedulers simply see
// the VCPUs disappear — pausing mid-sampling-period must not confuse the
// analyzer (a paused VCPU's next window is just short).
func (h *Hypervisor) PauseDomain(d *Domain) error {
	if d.Paused {
		return fmt.Errorf("xen: domain %q already paused", d.Name)
	}
	d.Paused = true
	for _, v := range d.VCPUs {
		if v.App == nil || v.Done {
			continue
		}
		switch v.State {
		case StateRunning:
			h.preempt(h.PCPUs[v.OnPCPU])
			// preempt requeued it (or it blocked/finished); fall
			// through to pull it back off the queue.
		}
		if v.State == StateRunnable {
			h.PCPUs[v.OnPCPU].Remove(v)
		}
		if v.wakeTimer != nil {
			v.wakeTimer.Stop()
		}
		v.State = StateBlocked
		v.paused = true
	}
	h.Spans.domainPoint(d, "pause", "all vcpus stopped")
	h.emit(EventDomPause, -1, -1, numa.NoNode, "", "domain %s paused", d.Name)
	return nil
}

// ResumeDomain re-enqueues a paused domain's VCPUs on the least-loaded
// PCPUs and kicks idle PCPUs to pick them up.
func (h *Hypervisor) ResumeDomain(d *Domain) error {
	if !d.Paused {
		return fmt.Errorf("xen: domain %q is not paused", d.Name)
	}
	if d.Destroyed {
		return fmt.Errorf("xen: domain %q is destroyed", d.Name)
	}
	d.Paused = false
	for _, v := range d.VCPUs {
		if v.App == nil || v.Done || !v.paused {
			continue
		}
		v.paused = false
		target := h.leastLoadedAnywhere()
		if v.PinnedPCPU >= 0 {
			target = h.PCPUs[v.PinnedPCPU]
		}
		v.Priority = priorityFromCredits(v)
		h.enqueue(target, v)
	}
	h.kickIdle()
	h.Spans.domainPoint(d, "resume", "vcpus re-enqueued")
	h.emit(EventDomResume, -1, -1, numa.NoNode, "", "domain %s resumed", d.Name)
	return nil
}

// DestroyDomain tears a domain down: VCPUs stop permanently and its
// machine memory returns to the free pools. Watch conditions treat a
// destroyed domain as complete.
func (h *Hypervisor) DestroyDomain(d *Domain) error {
	if d.Destroyed {
		return fmt.Errorf("xen: domain %q already destroyed", d.Name)
	}
	if !d.Paused {
		if err := h.PauseDomain(d); err != nil {
			return err
		}
	}
	d.Destroyed = true
	h.Alloc.Release(d.MemDist, d.MemoryMB)
	h.Spans.domainDestroyed(d)
	h.emit(EventDomDestroy, -1, -1, numa.NoNode, "", "domain %s destroyed", d.Name)
	h.checkWatch()
	return nil
}

// leastLoadedAnywhere returns the machine's least-loaded PCPU.
func (h *Hypervisor) leastLoadedAnywhere() *PCPU {
	best := h.PCPUs[0]
	for _, p := range h.PCPUs[1:] {
		if p.Workload < best.Workload {
			best = p
		}
	}
	return best
}

// ScheduleDomainEvent runs fn at a virtual-time offset — a convenience for
// scripting lifecycle events (failure injection, staged arrivals) before
// Run.
func (h *Hypervisor) ScheduleDomainEvent(after sim.Duration, label string, fn func()) {
	h.Engine.Schedule(after, label, func(*sim.Engine) { fn() })
}

// NodeOfVCPU reports the node a VCPU currently sits on, or NoNode when it
// is not placed.
func (h *Hypervisor) NodeOfVCPU(v *VCPU) numa.NodeID {
	if v.OnPCPU < 0 {
		return numa.NoNode
	}
	return h.Top.NodeOf(v.OnPCPU)
}
