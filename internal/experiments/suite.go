package experiments

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"vprobe/internal/harness"
	"vprobe/internal/sim"
)

// SuiteItem is one experiment's outcome inside a RunSuite call.
type SuiteItem struct {
	Experiment *Experiment
	// Result is nil when the experiment failed or was cancelled.
	Result *Result
	Err    error
	// Wall is the experiment's wall-clock duration (zero when it never
	// started because the suite was already cancelled).
	Wall time.Duration
	// SimTime totals the virtual time of all simulations the experiment
	// ran, as reported by its scenario-finished events.
	SimTime sim.Duration
}

// RunSuite runs the named experiments (all registered ones when ids is
// empty) across a bounded worker pool and returns one SuiteItem per
// experiment, in request order.
//
// Unlike Experiment.RunContext, a failing experiment does not abort its
// siblings: the failure lands in its SuiteItem.Err and the rest keep
// running. Cancelling ctx stops everything promptly; experiments that never
// started carry the context's error. opts.Timeout, when set, caps each
// experiment's wall-clock time individually.
//
// Results are deterministic in (opts.Seed, opts.Scale): worker count and
// completion order never influence them, only how fast they arrive.
// Progress events flow to opts.Events tagged with the experiment id.
func RunSuite(ctx context.Context, ids []string, opts Options) ([]SuiteItem, error) {
	if len(ids) == 0 {
		ids = IDs()
	}
	exps := make([]*Experiment, len(ids))
	for i, id := range ids {
		e, err := ByID(id)
		if err != nil {
			return nil, err
		}
		exps[i] = e
	}

	items := make([]SuiteItem, len(exps))
	for i, e := range exps {
		items[i] = SuiteItem{Experiment: e}
	}

	workers := harness.Workers(opts.Workers, len(exps))
	emit := func(ev harness.Event) {
		if opts.Events != nil {
			opts.Events.Emit(ev)
		}
	}
	suiteWatch := harness.StartStopwatch()
	emit(harness.Event{Kind: harness.EventSuiteStarted, Jobs: len(exps), Workers: workers})

	// Each worker slot runs one experiment at a time; the experiment's own
	// internal fan-out shares opts.Workers, so memory stays bounded by the
	// worker budget at each level. Errors are captured per item — the
	// callback never fails — so one broken experiment cannot cancel its
	// siblings through Map's first-error propagation.
	_, err := harness.Map(ctx, opts.Workers, len(exps),
		func(ctx context.Context, i int) (struct{}, error) {
			e := exps[i]
			runCtx := ctx
			var cancel context.CancelFunc
			if opts.Timeout > 0 {
				runCtx, cancel = context.WithTimeout(ctx, opts.Timeout)
				defer cancel()
			}

			// Tag this experiment's events with its id and accumulate its
			// total simulated time from scenario completions.
			var simMicros atomic.Int64
			ropts := opts
			ropts.Events = harness.SinkFunc(func(ev harness.Event) {
				ev.Experiment = e.ID
				if ev.Kind == harness.EventScenarioFinished {
					simMicros.Add(ev.SimMicros)
				}
				emit(ev)
			})

			emit(harness.Event{Kind: harness.EventExperimentStarted, Experiment: e.ID})
			watch := harness.StartStopwatch()
			res, err := e.run(runCtx, ropts)
			wall := watch.Elapsed()

			items[i].Result = res
			items[i].Err = err
			items[i].Wall = wall
			items[i].SimTime = sim.Duration(simMicros.Load())

			fin := harness.Event{
				Kind:       harness.EventExperimentFinished,
				Experiment: e.ID,
				Wall:       wall,
				SimMicros:  simMicros.Load(),
			}
			if err != nil {
				fin.Err = err.Error()
			}
			emit(fin)
			return struct{}{}, nil
		})

	// Experiments skipped by cancellation carry the context's error.
	for i := range items {
		if items[i].Result == nil && items[i].Err == nil {
			if cerr := ctx.Err(); cerr != nil {
				items[i].Err = fmt.Errorf("experiments: %s did not run: %w",
					items[i].Experiment.ID, cerr)
			}
		}
	}
	emit(harness.Event{Kind: harness.EventSuiteFinished,
		Jobs: len(exps), Workers: workers, Wall: suiteWatch.Elapsed()})
	return items, err
}
