package experiments

import (
	"context"
	"fmt"

	"vprobe/internal/cluster"
	"vprobe/internal/harness"
	"vprobe/internal/metrics"
	"vprobe/internal/sched"
	"vprobe/internal/sim"
)

// clusterScheds is the per-host scheduler comparison the cluster
// experiment runs: the baseline against the paper's scheduler.
var clusterScheds = []sched.Kind{sched.KindCredit, sched.KindVProbe}

// runCluster compares the placement policies (pack, spread, numa) on a
// multi-host cluster under a dynamic VM arrival/departure stream, once per
// per-host scheduler. It reports admission quality (rejection rate),
// placement quality (cluster-wide remote-access ratio), and rebalancer
// activity (inter-host migrations).
func runCluster(ctx context.Context, opts Options) (*Result, error) {
	opts = opts.normalized()

	// Honor an explicit scheduler restriction, but never leave the
	// credit-vs-vprobe frame this experiment is about.
	var kinds []sched.Kind
	for _, k := range opts.Schedulers {
		for _, want := range clusterScheds {
			if k == want {
				kinds = append(kinds, k)
			}
		}
	}
	if len(kinds) == 0 {
		kinds = clusterScheds
	}
	policies := cluster.Policies()

	// ~400 virtual seconds at full scale; VMs live half the horizon so the
	// cluster reaches a churning steady state.
	horizon := sim.Duration(float64(400*sim.Second) * opts.Scale)
	if opts.Horizon > 0 && horizon > opts.Horizon {
		horizon = opts.Horizon
	}

	type cell struct {
		pol  string
		kind sched.Kind
		rep  int
	}
	var cells []cell
	for _, pol := range policies {
		for _, kind := range kinds {
			for rep := 0; rep < opts.Repeats; rep++ {
				cells = append(cells, cell{pol, kind, rep})
			}
		}
	}

	type outcome struct {
		reject, remote, util, migrations float64
	}
	outs, err := harness.Map(ctx, harness.Workers(opts.Workers, len(cells)), len(cells),
		func(ctx context.Context, i int) (outcome, error) {
			cl := cells[i]
			c, err := cluster.New(cluster.Config{
				Hosts:     3,
				Scheduler: cl.kind,
				Policy:    cl.pol,
				Seed: harness.DeriveSeed(opts.Seed, "cluster", cl.pol,
					string(cl.kind), fmt.Sprint(cl.rep)),
				ArrivalsPerSecond: 0.6,
				MeanLifetime:      horizon / 2,
				Horizon:           horizon,
				// The experiment already fans cells across workers; hosts
				// inside each cluster advance serially.
				Workers:          1,
				LLCPressureLimit: 25,
				RebalancePeriod:  5 * sim.Second,
			})
			if err != nil {
				return outcome{}, err
			}
			rep, err := c.Run(ctx)
			if err != nil {
				return outcome{}, fmt.Errorf("cluster %s/%s: %w", cl.pol, cl.kind, err)
			}
			opts.emitScenario(fmt.Sprintf("cluster/%s/%s", cl.pol, cl.kind),
				sim.Time(horizon))
			return outcome{
				reject:     rep.RejectionRate,
				remote:     rep.RemoteRatio,
				util:       rep.Utilization,
				migrations: float64(rep.Migrations),
			}, nil
		})
	if err != nil {
		return nil, err
	}

	r := &Result{ID: "cluster", Title: "Placement policies on a multi-host cluster"}
	t := metrics.NewTable(
		fmt.Sprintf("3 hosts, %v horizon, dynamic arrivals (mean of %d seeds)",
			horizon, opts.Repeats),
		"policy", "scheduler", "reject-rate", "remote-ratio", "migrations", "utilization")
	for _, pol := range policies {
		for _, kind := range kinds {
			var avg outcome
			for i, cl := range cells {
				if cl.pol == pol && cl.kind == kind {
					avg.reject += outs[i].reject
					avg.remote += outs[i].remote
					avg.util += outs[i].util
					avg.migrations += outs[i].migrations
				}
			}
			n := float64(opts.Repeats)
			avg.reject /= n
			avg.remote /= n
			avg.util /= n
			avg.migrations /= n

			label := schedLabel(kind)
			r.Set("reject/"+label, pol, avg.reject)
			r.Set("remote/"+label, pol, avg.remote)
			r.Set("migrations/"+label, pol, avg.migrations)
			r.Set("util/"+label, pol, avg.util)
			t.AddRow(pol, label, metrics.Pct(avg.reject), metrics.Pct(avg.remote),
				metrics.F(avg.migrations), metrics.Pct(avg.util))
		}
	}
	t.AddNote("numa filters hosts by per-node free chunks (Gudkov-style accounting) before scoring")
	t.AddNote("migrations: rebalancer moves off hosts past the LLC-pressure/remote-ratio thresholds")
	r.Tables = append(r.Tables, t)
	return r, nil
}

func init() {
	register(&Experiment{
		ID:    "cluster",
		Title: "Multi-host placement policy comparison",
		Paper: "beyond the paper: pack vs spread vs numa admission on a cluster of vProbe hosts",
		run:   runCluster,
	})
}
