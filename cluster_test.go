package vprobe_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"vprobe"
)

// TestRunCluster drives the public cluster API end-to-end: a short
// multi-host run produces a populated report and cluster-scoped events.
func TestRunCluster(t *testing.T) {
	var events []vprobe.Event
	rep, err := vprobe.RunCluster(context.Background(), vprobe.ClusterConfig{
		Hosts:   2,
		Policy:  vprobe.PolicyNUMA,
		Seed:    9,
		Horizon: 60 * time.Second,
		Workers: 2,
		Events: vprobe.EventFunc(func(ev vprobe.Event) {
			events = append(events, ev)
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Hosts != 2 || rep.Policy != vprobe.PolicyNUMA || rep.Scheduler != vprobe.SchedulerCredit {
		t.Fatalf("report echoes wrong config: %+v", rep)
	}
	if rep.Arrivals == 0 || rep.Placed == 0 || rep.Utilization <= 0 {
		t.Fatalf("empty run: %+v", rep)
	}
	if rep.String() == "" {
		t.Fatal("report renders empty")
	}
	if len(events) == 0 {
		t.Fatal("no cluster events delivered")
	}
	sawPlace := false
	for _, ev := range events {
		if ev.VCPU != -1 || ev.Node != -1 {
			t.Fatalf("cluster event carries VCPU/Node: %+v", ev)
		}
		if ev.Kind == vprobe.EventVMPlace {
			sawPlace = true
			if ev.Host == "" || ev.VM == "" {
				t.Fatalf("placement without subjects: %+v", ev)
			}
		}
	}
	if !sawPlace {
		t.Fatal("no vm-place event in a 60s run")
	}
}

// TestRunClusterSentinels asserts configuration failures wrap the
// package's sentinel errors.
func TestRunClusterSentinels(t *testing.T) {
	ctx := context.Background()
	if _, err := vprobe.RunCluster(ctx, vprobe.ClusterConfig{Policy: "roulette"}); !errors.Is(err, vprobe.ErrUnknownPolicy) {
		t.Fatalf("err = %v, want ErrUnknownPolicy", err)
	}
	if _, err := vprobe.RunCluster(ctx, vprobe.ClusterConfig{Topology: "toaster"}); !errors.Is(err, vprobe.ErrUnknownTopology) {
		t.Fatalf("err = %v, want ErrUnknownTopology", err)
	}
	if _, err := vprobe.RunCluster(ctx, vprobe.ClusterConfig{Scheduler: "fifo"}); !errors.Is(err, vprobe.ErrUnknownScheduler) {
		t.Fatalf("err = %v, want ErrUnknownScheduler", err)
	}
}

// TestPoliciesList asserts the public policy enumeration covers the three
// built-ins.
func TestPoliciesList(t *testing.T) {
	have := map[vprobe.Policy]bool{}
	for _, p := range vprobe.Policies() {
		have[p] = true
	}
	for _, want := range []vprobe.Policy{vprobe.PolicyPack, vprobe.PolicySpread, vprobe.PolicyNUMA} {
		if !have[want] {
			t.Fatalf("Policies() = %v missing %q", vprobe.Policies(), want)
		}
	}
}
