package main

import (
	"strings"
	"testing"
)

// unsorted findings as the drivers produce them: module analyzers report
// after per-package ones, so positions arrive out of order.
var goldenFindings = []finding{
	{File: "internal/xen/policy.go", Line: 80, Col: 9, Analyzer: "mapiter",
		Message: "map iteration order feeds scheduling state"},
	{File: "internal/core/partition.go", Line: 12, Col: 2, Analyzer: "hotpath",
		Message: "append may grow its backing array (hot via Partition)"},
	{File: "internal/core/partition.go", Line: 12, Col: 2, Analyzer: "directives",
		Message: "dangling directive //vet:allocs: no analyzer honours it"},
	{File: "internal/core/partition.go", Line: 9, Col: 14, Analyzer: "walltime",
		Message: "time.Now() in simulation code"},
}

const goldenText = `internal/core/partition.go:9:14: [walltime] time.Now() in simulation code
internal/core/partition.go:12:2: [directives] dangling directive //vet:allocs: no analyzer honours it
internal/core/partition.go:12:2: [hotpath] append may grow its backing array (hot via Partition)
internal/xen/policy.go:80:9: [mapiter] map iteration order feeds scheduling state
`

const goldenJSON = `{"file":"internal/core/partition.go","line":9,"col":14,"analyzer":"walltime","message":"time.Now() in simulation code"}
{"file":"internal/core/partition.go","line":12,"col":2,"analyzer":"directives","message":"dangling directive //vet:allocs: no analyzer honours it"}
{"file":"internal/core/partition.go","line":12,"col":2,"analyzer":"hotpath","message":"append may grow its backing array (hot via Partition)"}
{"file":"internal/xen/policy.go","line":80,"col":9,"analyzer":"mapiter","message":"map iteration order feeds scheduling state"}
`

func TestRenderGolden(t *testing.T) {
	for _, mode := range []struct {
		name string
		json bool
		want string
	}{
		{"text", false, goldenText},
		{"json", true, goldenJSON},
	} {
		t.Run(mode.name, func(t *testing.T) {
			in := append([]finding(nil), goldenFindings...)
			var buf strings.Builder
			if err := render(&buf, in, mode.json); err != nil {
				t.Fatal(err)
			}
			if got := buf.String(); got != mode.want {
				t.Errorf("render(%s) mismatch:\ngot:\n%swant:\n%s", mode.name, got, mode.want)
			}
		})
	}
}

func TestRenderEmpty(t *testing.T) {
	var buf strings.Builder
	if err := render(&buf, nil, true); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("no findings must render nothing, got %q", buf.String())
	}
}

func TestSelectAnalyzers(t *testing.T) {
	pkgA, modA, dangling, err := selectAnalyzers("")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgA) != len(analyzers) || len(modA) != len(moduleAnalyzers) || !dangling {
		t.Errorf("empty -only must select everything (got %d pkg, %d mod, dangling=%v)",
			len(pkgA), len(modA), dangling)
	}

	pkgA, modA, dangling, err = selectAnalyzers("hotpath, walltime")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgA) != 1 || pkgA[0].Name != "walltime" {
		t.Errorf("pkg selection = %v, want [walltime]", pkgA)
	}
	if len(modA) != 1 || modA[0].Name != "hotpath" {
		t.Errorf("module selection = %v, want [hotpath]", modA)
	}
	if dangling {
		t.Errorf("directives pass selected without being named")
	}

	if _, _, _, err := selectAnalyzers("nosuch"); err == nil {
		t.Errorf("unknown analyzer name must error")
	}

	_, _, dangling, err = selectAnalyzers("directives")
	if err != nil || !dangling {
		t.Errorf("-only directives: dangling=%v err=%v", dangling, err)
	}
}

// knownDirectives must cover every suppression name used in the tree; a
// rename here without a rename there would make live suppressions dangle.
func TestKnownDirectivesComplete(t *testing.T) {
	known := map[string]bool{}
	for _, n := range knownDirectives() {
		known[n] = true
	}
	for _, want := range []string{"ordered", "wallclock", "ctx", "partial", "nowrap", "deprecated",
		"alloc", "spec", "handle"} {
		if !known[want] {
			t.Errorf("directive %q not claimed by any analyzer", want)
		}
	}
}
