package numa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestXeonE5620MatchesTableI(t *testing.T) {
	top := XeonE5620()
	if top.NumNodes() != 2 {
		t.Fatalf("nodes = %d, want 2", top.NumNodes())
	}
	if top.NumCPUs() != 8 {
		t.Fatalf("cpus = %d, want 8 (2 sockets x 4 cores)", top.NumCPUs())
	}
	if top.ClockGHz() != 2.40 {
		t.Fatalf("clock = %v, want 2.40", top.ClockGHz())
	}
	for _, n := range top.Nodes() {
		if n.LLCSizeKB != 12*1024 {
			t.Fatalf("LLC = %d KB, want 12 MB", n.LLCSizeKB)
		}
		if n.MemoryMB != 12*1024 {
			t.Fatalf("node memory = %d MB, want 12 GB", n.MemoryMB)
		}
		if n.IMCBandwidthGBs != 25.6 {
			t.Fatalf("IMC bandwidth = %v, want 25.6", n.IMCBandwidthGBs)
		}
		if len(n.CPUs) != 4 {
			t.Fatalf("cpus on node %d = %d, want 4", n.ID, len(n.CPUs))
		}
	}
	if len(top.Links()) != 2 {
		t.Fatalf("links = %d, want 2 QPI links", len(top.Links()))
	}
	for _, l := range top.Links() {
		if l.BandwidthGTs != 5.86 {
			t.Fatalf("link bandwidth = %v, want 5.86 GT/s", l.BandwidthGTs)
		}
	}
	if top.TotalMemoryMB() != 24*1024 {
		t.Fatalf("total memory = %d MB, want 24 GB", top.TotalMemoryMB())
	}
}

func TestNodeOfMapping(t *testing.T) {
	top := XeonE5620()
	for n := 0; n < top.NumNodes(); n++ {
		for _, cpu := range top.CPUsOf(NodeID(n)) {
			if top.NodeOf(cpu) != NodeID(n) {
				t.Fatalf("NodeOf(%d) = %d, want %d", cpu, top.NodeOf(cpu), n)
			}
		}
	}
	// CPUs are numbered contiguously.
	if top.NodeOf(0) != 0 || top.NodeOf(3) != 0 || top.NodeOf(4) != 1 || top.NodeOf(7) != 1 {
		t.Fatal("contiguous CPU numbering broken")
	}
}

func TestLatencyModel(t *testing.T) {
	top := XeonE5620()
	local := top.MemLatencyNS(0, 0)
	remote := top.MemLatencyNS(0, 1)
	if local != 65 || remote != 138 {
		t.Fatalf("local/remote = %v/%v, want 65/138 (loaded-Nehalem calibration)", local, remote)
	}
	if top.MemLatencyNS(1, 0) != remote {
		t.Fatal("latency not symmetric")
	}
	if got := top.MemLatencyCycles(0, 0); got != 65*2.40 {
		t.Fatalf("local cycles = %v", got)
	}
	if got := top.RemotePenaltyCycles(); got != 73*2.40 {
		t.Fatalf("remote penalty cycles = %v", got)
	}
	if top.LLCHitLatencyCycles() != 15*2.40 {
		t.Fatalf("llc hit cycles = %v", top.LLCHitLatencyCycles())
	}
}

func TestDistanceMatrixProperties(t *testing.T) {
	for name, mk := range Presets {
		top := mk()
		n := top.NumNodes()
		for i := 0; i < n; i++ {
			if top.Distance(NodeID(i), NodeID(i)) != 10 {
				t.Fatalf("%s: diagonal distance != 10", name)
			}
			for j := 0; j < n; j++ {
				if top.Distance(NodeID(i), NodeID(j)) != top.Distance(NodeID(j), NodeID(i)) {
					t.Fatalf("%s: distance not symmetric", name)
				}
				if i != j && top.Distance(NodeID(i), NodeID(j)) < 10 {
					t.Fatalf("%s: remote distance < local", name)
				}
			}
		}
	}
}

func TestConfigValidation(t *testing.T) {
	base := Config{
		Nodes: 2, CPUsPerNode: 4, MemoryPerNodeMB: 1024,
		IMCBandwidthGBs: 25.6, LLCSizeKB: 12288, ClockGHz: 2.4,
		LocalMemLatencyNS: 65, RemoteMemLatencyNS: 105,
	}
	if _, err := New(base); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []func(c *Config){
		func(c *Config) { c.Nodes = 0 },
		func(c *Config) { c.CPUsPerNode = 0 },
		func(c *Config) { c.MemoryPerNodeMB = 0 },
		func(c *Config) { c.ClockGHz = 0 },
		func(c *Config) { c.LocalMemLatencyNS = 0 },
		func(c *Config) { c.RemoteMemLatencyNS = 10 }, // < local
		func(c *Config) { c.LLCSizeKB = 0 },
		func(c *Config) { c.IMCBandwidthGBs = 0 },
	}
	for i, mutate := range bad {
		c := base
		mutate(&c)
		if _, err := New(c); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestSingleNodeRemoteEqualsLocal(t *testing.T) {
	top := SingleNode()
	if top.NumNodes() != 1 {
		t.Fatalf("nodes = %d", top.NumNodes())
	}
	if top.RemotePenaltyCycles() != 0 {
		t.Fatalf("UMA remote penalty = %v, want 0", top.RemotePenaltyCycles())
	}
}

func TestFourNodeLinkCount(t *testing.T) {
	top := FourNode()
	// Full mesh: C(4,2) = 6 pairs x 1 link.
	if len(top.Links()) != 6 {
		t.Fatalf("links = %d, want 6", len(top.Links()))
	}
	if top.NumCPUs() != 16 {
		t.Fatalf("cpus = %d, want 16", top.NumCPUs())
	}
}

func TestCPUNodePartition(t *testing.T) {
	// Every CPU belongs to exactly one node; union of node CPU lists is
	// the full CPU set.
	check := func(nodes8, cpus8 uint8) bool {
		nodes := int(nodes8%4) + 1
		cpus := int(cpus8%4) + 1
		top := MustNew(Config{
			Nodes: nodes, CPUsPerNode: cpus, MemoryPerNodeMB: 1024,
			IMCBandwidthGBs: 10, LLCSizeKB: 1024, ClockGHz: 2,
			LocalMemLatencyNS: 60, RemoteMemLatencyNS: 100,
		})
		seen := make(map[CPUID]int)
		for _, n := range top.Nodes() {
			for _, c := range n.CPUs {
				seen[c]++
				if top.NodeOf(c) != n.ID {
					return false
				}
			}
		}
		if len(seen) != top.NumCPUs() {
			return false
		}
		for _, count := range seen {
			if count != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringContainsEssentials(t *testing.T) {
	s := XeonE5620().String()
	for _, want := range []string{"2 nodes", "8 cpus", "2.40 GHz", "12288 KB"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestPresetsRegistry(t *testing.T) {
	for name, mk := range Presets {
		top := mk()
		if top == nil {
			t.Fatalf("preset %q returned nil", name)
		}
		if top.NumCPUs() == 0 {
			t.Fatalf("preset %q has no CPUs", name)
		}
	}
}
