package framework

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// FuncNode is one function (or method) declared in a loaded package,
// together with its statically resolved call edges. Function literals are
// folded into their enclosing declaration: a closure's body — its callees
// and its allocation sites — belongs to the function that creates it.
type FuncNode struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	// Callees are the resolved outgoing edges in first-appearance order:
	// direct calls to module functions, concrete method calls, and — for
	// calls through an interface method — every module type's
	// implementation of that method (class-hierarchy analysis). Calls of
	// plain func values (stored callbacks) are not resolvable and carry no
	// edge; the vet contract handles those by annotating the callback
	// bodies themselves.
	Callees []*types.Func
}

// CallGraph is the module-wide static call graph over every function
// declared in the loaded packages. Edges into the standard library are
// dropped (those bodies are not loaded); edges across loaded packages are
// kept, which is the point.
type CallGraph struct {
	// Nodes maps each declared function to its node.
	Nodes map[*types.Func]*FuncNode
}

// BuildCallGraph constructs the call graph for the loaded package set.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{Nodes: make(map[*types.Func]*FuncNode)}

	// Every named non-interface type of the module, sorted by (package
	// path, name) so class-hierarchy expansion is deterministic.
	var concrete []*types.Named
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() { // Names() is sorted
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			concrete = append(concrete, named)
		}
	}
	sort.Slice(concrete, func(i, j int) bool {
		pi, pj := concrete[i].Obj().Pkg().Path(), concrete[j].Obj().Pkg().Path()
		if pi != pj {
			return pi < pj
		}
		return concrete[i].Obj().Name() < concrete[j].Obj().Name()
	})

	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &FuncNode{Fn: fn, Decl: fd, Pkg: pkg}
				seen := map[*types.Func]bool{}
				add := func(callee *types.Func) {
					if callee != nil && !seen[callee] {
						seen[callee] = true
						node.Callees = append(node.Callees, callee)
					}
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					callee := calleeOf(pkg.Info, call)
					if callee == nil {
						return true
					}
					if iface := interfaceReceiver(callee); iface != nil {
						for _, impl := range implementations(concrete, iface, callee.Name()) {
							add(impl)
						}
						return true
					}
					add(callee)
					return true
				})
				g.Nodes[fn] = node
			}
		}
	}
	return g
}

// calleeOf resolves a call expression to the *types.Func it invokes, or
// nil for calls of func values, conversions, and builtins.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// interfaceReceiver returns the interface type a method is declared on, or
// nil for package functions and concrete methods.
func interfaceReceiver(fn *types.Func) *types.Interface {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	iface, _ := sig.Recv().Type().Underlying().(*types.Interface)
	return iface
}

// implementations finds, for an interface-method call, every module type's
// concrete method that the dynamic dispatch could reach.
func implementations(concrete []*types.Named, iface *types.Interface, method string) []*types.Func {
	var out []*types.Func
	for _, named := range concrete {
		ptr := types.NewPointer(named)
		if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
			continue
		}
		sel := types.NewMethodSet(ptr).Lookup(named.Obj().Pkg(), method)
		if sel == nil {
			// Exported interface method implemented from another package.
			sel = types.NewMethodSet(ptr).Lookup(nil, method)
		}
		if sel == nil {
			continue
		}
		if fn, ok := sel.Obj().(*types.Func); ok {
			out = append(out, fn)
		}
	}
	return out
}

// FuncAnnotated reports whether decl carries the given //marker comment
// ("vprobe:hotpath") in its doc comment. Markers follow Go's directive
// convention: the comment starts exactly with //marker, optionally
// followed by free text after a space.
func FuncAnnotated(decl *ast.FuncDecl, marker string) bool {
	if decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		if text == marker || strings.HasPrefix(text, marker+" ") {
			return true
		}
	}
	return false
}
