package errsentinel_test

import (
	"testing"

	"vprobe/internal/analysis/errsentinel"
	"vprobe/internal/analysis/framework/analysistest"
)

func TestErrSentinel(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), errsentinel.Analyzer, "errsentinel_a")
}
