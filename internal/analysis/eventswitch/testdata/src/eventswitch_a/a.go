// Package eventswitch_a is the eventswitch fixture.
package eventswitch_a

// EventKind mirrors the repo's enum-like event label types.
type EventKind string

const (
	EventStart  EventKind = "start"
	EventTick   EventKind = "tick"
	EventFinish EventKind = "finish"
)

// Kind mirrors the scheduler registry names.
type Kind string

const (
	KindCredit Kind = "credit"
	KindVProbe Kind = "vprobe"
)

// full covers every constant: clean.
func full(k EventKind) int {
	switch k {
	case EventStart:
		return 1
	case EventTick:
		return 2
	case EventFinish:
		return 3
	}
	return 0
}

// drops misses EventTick; the default arm does not excuse the gap.
func drops(k EventKind) int {
	switch k { // want `switch over EventKind misses EventTick`
	case EventStart:
		return 1
	case EventFinish:
		return 3
	default:
		return 0
	}
}

// multiCase lists two kinds in one clause: still counted.
func multiCase(k EventKind) bool {
	switch k {
	case EventStart, EventFinish:
		return true
	case EventTick:
		return false
	}
	return false
}

// converted matches by value even through a conversion: counted.
func converted(k EventKind) bool {
	switch k {
	case EventKind("start"), EventTick, EventFinish:
		return true
	}
	return false
}

// partial is the sanctioned subset-sink escape.
func partial(k EventKind) bool {
	//vet:partial console sink renders start/finish only
	switch k {
	case EventStart, EventFinish:
		return true
	}
	return false
}

// registry switches over Kind are held to the same rule.
func registry(k Kind) int {
	switch k { // want `switch over Kind misses KindVProbe`
	case KindCredit:
		return 1
	}
	return 0
}

// plainString is not an enum type: ignored.
func plainString(s string) bool {
	switch s {
	case "a":
		return true
	}
	return false
}
