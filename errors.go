package vprobe

import (
	"errors"

	"vprobe/internal/spec"
)

// Sentinel errors returned (wrapped) by the public API, for callers to
// match with errors.Is.
var (
	// ErrUnknownTopology: Config.Topology names no machine preset.
	ErrUnknownTopology = errors.New("vprobe: unknown topology")
	// ErrUnknownScheduler: Config.Scheduler names no registered policy.
	ErrUnknownScheduler = errors.New("vprobe: unknown scheduler")
	// ErrNoFreeVCPU: every VCPU of the VM already carries an app.
	ErrNoFreeVCPU = errors.New("vprobe: no free VCPU")
	// ErrAlreadyStarted: the operation is only valid before Run.
	ErrAlreadyStarted = errors.New("vprobe: simulation already started")
	// ErrUnknownPolicy: ClusterConfig.Policy names no registered placement
	// policy.
	ErrUnknownPolicy = errors.New("vprobe: unknown placement policy")
	// ErrUnknownArrivalProcess: ClusterConfig.Arrival names no registered
	// arrival generator.
	ErrUnknownArrivalProcess = errors.New("vprobe: unknown arrival process")
	// ErrTelemetryAttached: the Telemetry collector was already handed to
	// another run; each collector records exactly one.
	ErrTelemetryAttached = errors.New("vprobe: telemetry already attached to a run")
	// ErrTracingAttached: the Tracing recorder was already handed to
	// another run; each recorder holds exactly one run's spans.
	ErrTracingAttached = errors.New("vprobe: tracing already attached to a run")
	// ErrAlreadyRun: the Simulator (or internal cluster) value has already
	// completed a run; simulation state is consumed by running, so a
	// second Run on the same value would continue from — and corrupt —
	// the first run's state. Build a fresh Simulator instead. The guard
	// exists for pooled reuse under vprobe-serve, where recycling a used
	// simulator must fail loudly rather than return wrong results.
	ErrAlreadyRun = errors.New("vprobe: simulator already consumed by a run")

	// ErrSpecVersion and ErrInvalidSpec re-export the spec layer's
	// sentinels (internal/spec), so API callers can match validation
	// failures from CompileScenario / CompileCluster without reaching
	// into internal packages.
	ErrSpecVersion = spec.ErrVersion
	ErrInvalidSpec = spec.ErrInvalid
)
