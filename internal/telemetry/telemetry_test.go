package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"vprobe/internal/sim"
)

func TestHandleBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	g := r.Gauge("g", "a gauge")
	h := r.Histogram("h_us", "a histogram", []float64{10, 100})

	c.Inc()
	c.Add(2)
	if c.Value() != 3 {
		t.Fatalf("counter = %v, want 3", c.Value())
	}
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %v, want 5", g.Value())
	}
	for _, v := range []float64{5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 3 || h.Sum() != 555 {
		t.Fatalf("histogram count=%d sum=%v, want 3/555", h.Count(), h.Sum())
	}
}

func TestRegistryPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: want panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.Counter("dup_total", "x")
	mustPanic("duplicate id", func() { r.Counter("dup_total", "x") })
	mustPanic("kind clash", func() { r.Gauge("dup_total", "x") })
	mustPanic("bad name", func() { r.Counter("1bad", "x") })
	mustPanic("empty buckets", func() { r.Histogram("h", "x", nil) })
	mustPanic("unsorted buckets", func() { r.Histogram("h", "x", []float64{2, 1}) })

	// Same name with different labels is two series, not a duplicate.
	r.Gauge("labeled", "x", Label{Key: "host", Value: "host0"})
	r.Gauge("labeled", "x", Label{Key: "host", Value: "host1"})

	s := NewSampler(r, sim.Second)
	s.Start(sim.NewEngine())
	mustPanic("register after seal", func() { r.Counter("late_total", "x") })
	mustPanic("hook after start", func() { s.OnSample(func() {}) })
	mustPanic("double start", func() { s.Start(sim.NewEngine()) })
}

// TestWritePrometheusValidates round-trips the exporter through the
// checker the CI lint job uses, and spot-checks the format.
func TestWritePrometheusValidates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("xen_dispatches_total", "dispatches", Label{Key: "host", Value: "host0"})
	g := r.Gauge("xen_runq_depth", "queue depth")
	h := r.Histogram("xen_quantum_us", "quantum length", []float64{100, 30000})
	c.Add(4)
	g.Set(2)
	h.Observe(50)
	h.Observe(50000)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE xen_dispatches_total counter",
		`xen_dispatches_total{host="host0"} 4`,
		"# TYPE xen_runq_depth gauge",
		"xen_runq_depth 2",
		"# TYPE xen_quantum_us histogram",
		`xen_quantum_us_bucket{le="100"} 1`,
		`xen_quantum_us_bucket{le="30000"} 1`,
		`xen_quantum_us_bucket{le="+Inf"} 2`,
		"xen_quantum_us_sum 50050",
		"xen_quantum_us_count 2",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	series, samples, err := ValidateExposition(buf.Bytes())
	if err != nil {
		t.Fatalf("ValidateExposition: %v\n%s", err, out)
	}
	if series != 7 || samples != 7 {
		t.Fatalf("series=%d samples=%d, want 7/7", series, samples)
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	for _, tc := range []struct{ name, in string }{
		{"empty", ""},
		{"no value", "# TYPE a gauge\na\n"},
		{"bad value", "# TYPE a gauge\na one\n"},
		{"no type", "a 1\n"},
		{"bad name", "# TYPE a gauge\n1a 1\n"},
		{"bad label", "# TYPE a gauge\na{k=v} 1\n"},
		{"unterminated", "# TYPE a gauge\na{k=\"v\" 1\n"},
		{"bad comment", "# NOPE a\n"},
	} {
		if _, _, err := ValidateExposition([]byte(tc.in)); err == nil {
			t.Errorf("%s: want error", tc.name)
		}
	}
}

// TestSamplerRing checks cadence (one row per period), hook ordering, and
// the JSONL export shape.
func TestSamplerRing(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events_total", "events")
	g := r.Gauge("depth", "depth", Label{Key: "host", Value: "h0"})
	h := r.Histogram("lat_us", "latency", []float64{10})
	e := sim.NewEngine()
	s := NewSampler(r, 0) // default 1 s
	var hookOrder []int
	s.OnSample(func() { hookOrder = append(hookOrder, 1) })
	s.OnSample(func() { hookOrder = append(hookOrder, 2); g.Set(c.Value()) })
	s.Start(e)

	e.Every(100*sim.Millisecond, 100*sim.Millisecond, "work", func(*sim.Engine) {
		c.Inc()
		h.Observe(5)
	})
	e.RunUntil(sim.Time(5 * sim.Second))

	if s.Rows() != 5 {
		t.Fatalf("rows = %d, want 5 (one per simulated second)", s.Rows())
	}
	if len(hookOrder) != 10 || hookOrder[0] != 1 || hookOrder[1] != 2 {
		t.Fatalf("hook order = %v, want 1,2 pairs", hookOrder)
	}

	var buf bytes.Buffer
	if err := s.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("jsonl lines = %d, want 5", len(lines))
	}
	for i, line := range lines {
		var rec map[string]float64
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d: %v: %s", i, err, line)
		}
		if want := float64(i + 1); rec["t"] != want {
			t.Fatalf("line %d: t=%v, want %v", i, rec["t"], want)
		}
		// Work ticks land at 0.1 s intervals; the tick sharing the sample's
		// timestamp was armed after the sampler's pending event (higher
		// seq), so the row sees the 10k-1 ticks strictly before it.
		if want := float64((i+1)*10 - 1); rec["events_total"] != want {
			t.Fatalf("line %d: events_total=%v, want %v", i, rec["events_total"], want)
		}
		if rec["depth{host=h0}"] != rec["events_total"] {
			t.Fatalf("line %d: hook-set gauge %v != counter %v",
				i, rec["depth{host=h0}"], rec["events_total"])
		}
		if rec["lat_us_count"] != rec["events_total"] {
			t.Fatalf("line %d: lat_us_count=%v, want %v", i, rec["lat_us_count"], rec["events_total"])
		}
	}
}

// TestSamplerZeroAlloc pins the per-sample cost at zero allocations once
// the ring is preallocated (the sampler's share of the PR's zero-alloc
// contract; the full quantum-loop guardrail lives in internal/xen).
func TestSamplerZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "c")
	g := r.Gauge("g", "g")
	h := r.Histogram("h_us", "h", []float64{1, 10, 100})
	e := sim.NewEngine()
	s := NewSampler(r, sim.Second)
	s.OnSample(func() { g.Set(c.Value()) })
	s.Start(e)

	next := sim.Time(0)
	allocs := testing.AllocsPerRun(50, func() {
		c.Inc()
		h.Observe(5)
		next = next.Add(sim.Second)
		e.RunUntil(next)
	})
	if allocs != 0 {
		t.Fatalf("sampling allocates %.1f per period, want 0", allocs)
	}
	if s.Rows() == 0 {
		t.Fatal("no rows sampled; zero-alloc result is vacuous")
	}
}
