// Package hotpath_helper exercises cross-package reachability: Fill is
// called from the annotated root in hotpath_hot, so its allocation must be
// flagged even though this package declares no root of its own.
package hotpath_helper

// Fill is reached cross-package from the hot root.
func Fill(dst []int, v int) []int {
	return append(dst, v) // want `append may grow its backing array`
}

// Cold is never reached from a root; its allocations are nobody's business.
func Cold() []int {
	out := make([]int, 8)
	for i := range out {
		out[i] = i
	}
	return out
}
