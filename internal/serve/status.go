package serve

import (
	"context"
	"errors"
	"net/http"

	"vprobe"
)

// StatusClientClosedRequest is nginx's conventional code for a request
// the client abandoned; net/http has no constant for it.
const StatusClientClosedRequest = 499

// statusTable is THE error-to-HTTP-status mapping: every public sentinel
// of the vprobe package appears here with a deliberate status, and the
// audit test fails when a new sentinel is added without a row. Order
// matters only for readability — sentinels are pairwise distinct.
var statusTable = []struct {
	Sentinel error
	Status   int
}{
	// Malformed or unsatisfiable requests: the client must change the spec.
	{vprobe.ErrSpecVersion, http.StatusBadRequest},
	{vprobe.ErrInvalidSpec, http.StatusBadRequest},
	{vprobe.ErrUnknownTopology, http.StatusBadRequest},
	{vprobe.ErrUnknownScheduler, http.StatusBadRequest},
	{vprobe.ErrUnknownPolicy, http.StatusBadRequest},
	{vprobe.ErrNoFreeVCPU, http.StatusBadRequest},

	// State conflicts: the request raced or repeated a one-shot operation.
	{vprobe.ErrAlreadyStarted, http.StatusConflict},
	{vprobe.ErrAlreadyRun, http.StatusConflict},
	{vprobe.ErrTelemetryAttached, http.StatusConflict},

	// Lifecycle: server-enforced timeout and client disconnect.
	{context.DeadlineExceeded, http.StatusGatewayTimeout},
	{context.Canceled, StatusClientClosedRequest},
}

// statusFor maps err to its HTTP status via statusTable; unmapped errors
// are internal faults (500).
func statusFor(err error) int {
	for _, row := range statusTable {
		if errors.Is(err, row.Sentinel) {
			return row.Status
		}
	}
	return http.StatusInternalServerError
}
