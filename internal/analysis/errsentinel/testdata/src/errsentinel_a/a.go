// Package errsentinel_a is the errsentinel fixture.
package errsentinel_a

import (
	"errors"
	"fmt"
)

// ErrBusy is a package sentinel callers match with errors.Is.
var ErrBusy = errors.New("busy")

// flattened loses the chain: errors.Is(err, ErrBusy) stops matching.
func flattened(err error) error {
	return fmt.Errorf("op failed: %v", err) // want `error formatted with %v loses the chain`
}

// stringed is the same bug through %s.
func stringed(err error) error {
	return fmt.Errorf("op failed: %s", err) // want `error formatted with %s loses the chain`
}

// plused: flags and modifiers do not hide the verb.
func plused(err error) error {
	return fmt.Errorf("op failed: %+v", err) // want `error formatted with %v loses the chain`
}

// wrapped keeps the chain: clean.
func wrapped(err error) error {
	return fmt.Errorf("op failed: %w", err)
}

// mixed wraps the error and prints the rest: clean.
func mixed(name string, n int, err error) error {
	return fmt.Errorf("%s[%d]: %w", name, n, err)
}

// widthArgs: a * width consumes an argument slot without shifting the
// verb-to-argument mapping off the error.
func widthArgs(pad int, err error) error {
	return fmt.Errorf("%*d %v", pad, pad, err) // want `error formatted with %v loses the chain`
}

// noError formats plain values: clean.
func noError(name string) error {
	return fmt.Errorf("unknown profile %q (have %v)", name, []string{"a"})
}

// redacted deliberately flattens at an API boundary.
func redacted(err error) error {
	return fmt.Errorf("internal failure: %v", err) //vet:nowrap redact internals at the API boundary
}

// indexed formats are skipped rather than guessed at.
func indexed(err error) error {
	return fmt.Errorf("%[1]v", err)
}
