package telemetry

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus exports the current (cumulative) state of every series
// in Prometheus text exposition format, in registration order. HELP and
// TYPE lines are emitted once per metric name, before its first series.
// Histograms expand into cumulative `_bucket{le=...}` series plus `_sum`
// and `_count`.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	described := make(map[string]bool, len(r.byName))
	for _, sr := range r.series {
		if !described[sr.name] {
			described[sr.name] = true
			fmt.Fprintf(bw, "# HELP %s %s\n", sr.name, sr.help)
			fmt.Fprintf(bw, "# TYPE %s %s\n", sr.name, sr.kind)
		}
		switch sr.kind {
		case KindCounter:
			writeSample(bw, sr.id, sr.c.v)
		case KindGauge:
			writeSample(bw, sr.id, sr.g.v)
		case KindHistogram:
			h := sr.h
			var cum uint64
			for i, b := range h.bounds {
				cum += h.counts[i]
				id := renderID(sr.name+"_bucket", withLabel(sr.labels,
					Label{Key: "le", Value: formatFloat(b)}))
				writeSample(bw, id, float64(cum))
			}
			id := renderID(sr.name+"_bucket", withLabel(sr.labels,
				Label{Key: "le", Value: "+Inf"}))
			writeSample(bw, id, float64(h.count))
			writeSample(bw, renderID(sr.name+"_sum", sr.labels), h.sum)
			writeSample(bw, renderID(sr.name+"_count", sr.labels), float64(h.count))
		}
	}
	return bw.Flush()
}

// withLabel returns labels plus l in a fresh slice (never aliasing the
// series' own label storage).
func withLabel(labels []Label, l Label) []Label {
	out := make([]Label, 0, len(labels)+1)
	out = append(out, labels...)
	return append(out, l)
}

// writeSample emits one `id value` line.
func writeSample(w io.Writer, id string, v float64) {
	fmt.Fprintf(w, "%s %s\n", id, formatFloat(v))
}

// formatFloat renders a value the shortest way that round-trips.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ValidateExposition is a trivial Prometheus text-format checker (the CI
// lint gate behind `vprobe-metrics check`): every line must be blank, a
// `# HELP`/`# TYPE` comment, or a `series value` sample whose name obeys
// the metric grammar, whose labels parse, and whose family has a TYPE
// declared earlier in the stream. It returns the distinct series and
// total sample counts.
func ValidateExposition(data []byte) (seriesCount, samples int, err error) {
	typed := make(map[string]string)
	seen := make(map[string]bool)
	lineNo := 0
	for len(data) > 0 {
		lineNo++
		var line string
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			line = string(data[:i])
			data = data[i+1:]
		} else {
			line = string(data)
			data = nil
		}
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return 0, 0, fmt.Errorf("line %d: malformed comment %q", lineNo, line)
			}
			name := fields[2]
			if !validMetricName(name) {
				return 0, 0, fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
			}
			if fields[1] == "TYPE" {
				if len(fields) < 4 {
					return 0, 0, fmt.Errorf("line %d: TYPE without a type", lineNo)
				}
				typ := fields[3]
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return 0, 0, fmt.Errorf("line %d: unknown type %q", lineNo, typ)
				}
				typed[name] = typ
			}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return 0, 0, fmt.Errorf("line %d: no value in sample %q", lineNo, line)
		}
		id, val := line[:sp], line[sp+1:]
		if _, err := strconv.ParseFloat(val, 64); err != nil {
			return 0, 0, fmt.Errorf("line %d: bad value %q: %w", lineNo, val, err)
		}
		name := id
		if i := strings.IndexByte(id, '{'); i >= 0 {
			if !strings.HasSuffix(id, "}") {
				return 0, 0, fmt.Errorf("line %d: unterminated label block in %q", lineNo, id)
			}
			name = id[:i]
			if err := validateLabels(id[i+1 : len(id)-1]); err != nil {
				return 0, 0, fmt.Errorf("line %d: %w", lineNo, err)
			}
		}
		if !validMetricName(name) {
			return 0, 0, fmt.Errorf("line %d: invalid series name %q", lineNo, name)
		}
		if familyOf(name, typed) == "" {
			return 0, 0, fmt.Errorf("line %d: series %q has no TYPE declaration", lineNo, name)
		}
		if !seen[id] {
			seen[id] = true
			seriesCount++
		}
		samples++
	}
	if samples == 0 {
		return 0, 0, fmt.Errorf("no samples")
	}
	return seriesCount, samples, nil
}

// familyOf resolves a sample name to its declared family: the name
// itself, or — for histogram/summary components — the name with its
// _bucket/_sum/_count suffix stripped.
func familyOf(name string, typed map[string]string) string {
	if _, ok := typed[name]; ok {
		return name
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base == name {
			continue
		}
		if t, ok := typed[base]; ok && (t == "histogram" || t == "summary") {
			return base
		}
	}
	return ""
}

// validateLabels checks a k="v",... label block.
func validateLabels(block string) error {
	if block == "" {
		return nil
	}
	for _, pair := range splitLabels(block) {
		eq := strings.IndexByte(pair, '=')
		if eq < 0 {
			return fmt.Errorf("label %q has no '='", pair)
		}
		k, v := pair[:eq], pair[eq+1:]
		if !validMetricName(k) || strings.ContainsAny(k, ":") {
			return fmt.Errorf("invalid label name %q", k)
		}
		if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
			return fmt.Errorf("label value %s not quoted", v)
		}
	}
	return nil
}

// splitLabels splits on commas outside quotes.
func splitLabels(block string) []string {
	var out []string
	start, inQuote := 0, false
	for i := 0; i < len(block); i++ {
		switch block[i] {
		case '"':
			inQuote = !inQuote
		case ',':
			if !inQuote {
				out = append(out, block[start:i])
				start = i + 1
			}
		}
	}
	return append(out, block[start:])
}
