package vprobe

import (
	"fmt"
	"strings"
	"time"

	"vprobe/internal/metrics"
	"vprobe/internal/sim"
)

// AppResult summarises one application instance after a run.
type AppResult struct {
	// VM and App identify the instance.
	VM  string
	App string
	// Finished reports whether the app completed its work.
	Finished bool
	// ExecTime is the completion time (or the measurement horizon for
	// unfinished and server apps).
	ExecTime time.Duration
	// TotalAccesses and RemoteAccesses are memory access counts.
	TotalAccesses, RemoteAccesses float64
	// RemoteRatio is the access-level remote fraction.
	RemoteRatio float64
	// PageRemoteRatio is the paper's Fig. 1 page-level remote metric.
	PageRemoteRatio float64
	// Requests is the served request count (servers only).
	Requests float64
	// Migrations and NodeMoves count VCPU placement changes.
	Migrations, NodeMoves int
}

// Report is the outcome of a Simulator run.
type Report struct {
	// Scheduler that produced the run.
	Scheduler Scheduler
	// End is the virtual time the run stopped at.
	End time.Duration
	// Apps holds one entry per measured application instance (endless
	// background load — hungry loops, guest housekeeping — is omitted).
	Apps []AppResult
	// OverheadFraction is the paper's Table III metric: PMU collection
	// plus partitioning time as a fraction of total execution time
	// (zero for the Credit scheduler).
	OverheadFraction float64
	// CPUBusy and CPUIdle aggregate PCPU time.
	CPUBusy, CPUIdle time.Duration
}

func buildReport(s *Simulator, end sim.Time) *Report {
	r := &Report{
		Scheduler:        s.cfg.Scheduler,
		End:              time.Duration(end) * time.Microsecond,
		OverheadFraction: s.h.OverheadFraction(),
	}
	if r.Scheduler == "" {
		r.Scheduler = SchedulerCredit
	}
	for _, d := range s.h.Domains {
		for _, run := range metrics.CollectDomain(d, end) {
			r.Apps = append(r.Apps, AppResult{
				VM:              d.Name,
				App:             run.App,
				Finished:        run.Finished,
				ExecTime:        time.Duration(run.ExecTime) * time.Microsecond,
				TotalAccesses:   run.Total,
				RemoteAccesses:  run.Remote,
				RemoteRatio:     run.RemoteRatio,
				PageRemoteRatio: run.PageRemoteRatio,
				Requests:        run.Requests,
				Migrations:      run.Migrations,
				NodeMoves:       run.NodeMoves,
			})
		}
	}
	for _, p := range s.h.PCPUs {
		r.CPUBusy += time.Duration(p.BusyTime) * time.Microsecond
		r.CPUIdle += time.Duration(p.IdleTime) * time.Microsecond
	}
	return r
}

// VMApps returns the results for one VM.
func (r *Report) VMApps(vm string) []AppResult {
	var out []AppResult
	for _, a := range r.Apps {
		if a.VM == vm {
			out = append(out, a)
		}
	}
	return out
}

// AllFinished reports whether every measured app completed.
func (r *Report) AllFinished() bool {
	for _, a := range r.Apps {
		if !a.Finished {
			return false
		}
	}
	return true
}

// MeanExecTime averages completion time over the given VM's apps (all VMs
// when vm is empty).
func (r *Report) MeanExecTime(vm string) time.Duration {
	var sum time.Duration
	n := 0
	for _, a := range r.Apps {
		if vm != "" && a.VM != vm {
			continue
		}
		sum += a.ExecTime
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / time.Duration(n)
}

// TotalRequests sums served requests (servers).
func (r *Report) TotalRequests() float64 {
	var sum float64
	for _, a := range r.Apps {
		sum += a.Requests
	}
	return sum
}

// String renders the report as an aligned table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scheduler=%s end=%v busy=%v idle=%v overhead=%.5f%%\n",
		r.Scheduler, r.End.Round(time.Millisecond),
		r.CPUBusy.Round(time.Millisecond), r.CPUIdle.Round(time.Millisecond),
		100*r.OverheadFraction)
	t := metrics.NewTable("", "vm", "app", "done", "exec", "remote", "page-remote", "moves")
	for _, a := range r.Apps {
		done := "yes"
		if !a.Finished {
			done = "no"
		}
		t.AddRow(a.VM, a.App, done,
			a.ExecTime.Round(time.Millisecond).String(),
			metrics.Pct(a.RemoteRatio), metrics.Pct(a.PageRemoteRatio),
			fmt.Sprintf("%d", a.NodeMoves))
	}
	b.WriteString(t.String())
	return b.String()
}
