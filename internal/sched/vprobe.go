package sched

import (
	"vprobe/internal/core"
	"vprobe/internal/sim"
	"vprobe/internal/xen"
)

// VProbe is the paper's full scheduler: PMU data analyzer + VCPU
// periodical partitioning (Algorithm 1) + NUMA-aware load balance
// (Algorithm 2).
type VProbe struct {
	// Analyzer computes per-VCPU characteristics (Eqs. 1–3).
	Analyzer *core.Analyzer
	// SamplePeriod is the partitioning cadence (paper default: 1 s).
	SamplePeriod sim.Duration
	// Dynamic, when non-nil, adapts the classification bounds each
	// period (the §VI future-work extension).
	Dynamic *core.DynamicBounds
	// DisableAffinity is an ablation switch: Algorithm 1 runs with all
	// affinity information erased, isolating the value of Eq. 1.
	DisableAffinity bool
	// DisablePartition is an ablation switch turning vProbe into LB.
	DisablePartition bool
	// DisableNUMALB is an ablation switch turning vProbe into VCPU-P.
	DisableNUMALB bool
}

// NewVProbe returns the full scheduler with the paper's constants
// (α = 1000, bounds (3, 20), 1 s sampling period).
func NewVProbe() *VProbe {
	return &VProbe{
		Analyzer:     core.NewAnalyzer(),
		SamplePeriod: sim.Second,
	}
}

// Name implements xen.Policy.
func (s *VProbe) Name() string {
	switch {
	case s.DisablePartition && s.DisableNUMALB:
		return "vProbe(neither)"
	case s.DisablePartition:
		return "LB"
	case s.DisableNUMALB:
		return "VCPU-P"
	case s.Dynamic != nil:
		return "vProbe(dynamic)"
	case s.DisableAffinity:
		return "vProbe(no-affinity)"
	default:
		return "vProbe"
	}
}

// UsesPMU implements xen.Policy.
func (*VProbe) UsesPMU() bool { return true }

// NUMAAwareBalance implements xen.Policy: vProbe and LB keep periodic
// re-placement on the local node; the VCPU-P ablation retains the default
// oblivious balancing (the paper's point about its weakness).
func (s *VProbe) NUMAAwareBalance() bool { return !s.DisableNUMALB }

// PickNext implements xen.Policy: the same csched_schedule skeleton as
// Credit (run an UNDER local head, balance otherwise), with Algorithm 2
// replacing the NUMA-oblivious steal. The VCPU-P ablation keeps the
// default Credit stealing.
func (s *VProbe) PickNext(h *xen.Hypervisor, p *xen.PCPU) *xen.VCPU {
	if p.HeadIsRunnableUnder() {
		return h.NextLocal(p)
	}
	idle := p.PeekHead() == nil
	var v *xen.VCPU
	if s.DisableNUMALB {
		v = h.CreditSteal(p, idle)
	} else {
		// Algorithm 2 is an idle-PCPU mechanism; the head-is-OVER
		// balancing path stays on the local node, so only a genuinely
		// idle PCPU ever pulls work across sockets.
		v = h.NUMAAwareSteal(p, !idle, !idle)
	}
	if v != nil {
		return v
	}
	return h.NextLocal(p)
}

// OnTick implements xen.Policy: the running VCPU's counters are refreshed
// every 10 ms (§IV-B), costing one PMU read.
func (s *VProbe) OnTick(h *xen.Hypervisor, v *xen.VCPU) {
	cpm := h.Top.CyclesPerMicrosecond()
	v.AddOverhead(h.Config.PMUUpdateMicros*cpm, cpm)
	h.SampleOverhead += sim.Duration(h.Config.PMUUpdateMicros)
}

// Period implements xen.Policy.
func (s *VProbe) Period() sim.Duration { return s.SamplePeriod }

// OnPeriod implements xen.Policy: sample all VCPUs, optionally adapt
// bounds, and run the periodical partitioning.
//
//vprobe:hotpath
func (s *VProbe) OnPeriod(h *xen.Hypervisor) {
	stats := h.SampleAll(s.Analyzer)
	if s.Dynamic != nil {
		ps := make([]float64, 0, len(stats)) //vet:alloc per-period pressure vector; OnPeriod cadence is 1s simulated
		for _, st := range stats {
			ps = append(ps, st.Pressure) //vet:alloc capacity pre-sized to len(stats) above
		}
		s.Dynamic.Observe(ps)
		s.Analyzer.Bounds = s.Dynamic.Current()
	}
	if s.DisablePartition {
		return
	}
	if s.DisableAffinity {
		for i := range stats {
			stats[i].Affinity = 0
		}
	}
	as := core.Partition(stats, h.Top.NumNodes())
	h.ApplyPartition(as)
}

// NewVCPUP returns the VCPU-P ablation: periodical partitioning with the
// default Credit load balancing.
func NewVCPUP() *VProbe {
	s := NewVProbe()
	s.DisableNUMALB = true
	return s
}

// NewLB returns the LB ablation: NUMA-aware load balancing only (the PMU
// analyzer still runs so stealing has pressures to compare, but no
// partitioning happens).
func NewLB() *VProbe {
	s := NewVProbe()
	s.DisablePartition = true
	return s
}
