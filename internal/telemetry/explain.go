// Explain: provenance queries over a recorded span file. The engine
// indexes a span slice by ID, parent, and VM, and renders the answers the
// flight recorder exists for — "why did this VM land where it did", "why
// was host H not chosen", "why was it rejected", "who preempted it" —
// from the per-plugin filter/score sub-spans the placement decisions
// recorded. Shared by cmd/vprobe-explain and the vprobe-serve
// /v1/runs/{id}/explain endpoint.
package telemetry

import (
	"fmt"
	"sort"
	"strings"
)

// SpanIndex is a queryable view over a recorded span slice.
type SpanIndex struct {
	spans    []Span
	byID     map[uint64]int
	children map[uint64][]int // parent ID → child indexes, record order
	byVM     map[string][]int // VM name → span indexes, record order
}

// NewSpanIndex indexes spans (as returned by ReadSpans or Tracer.Spans).
func NewSpanIndex(spans []Span) *SpanIndex {
	ix := &SpanIndex{
		spans:    spans,
		byID:     make(map[uint64]int, len(spans)),
		children: make(map[uint64][]int),
		byVM:     make(map[string][]int),
	}
	for i := range spans {
		s := &spans[i]
		ix.byID[s.ID] = i
		if s.Parent != 0 {
			ix.children[s.Parent] = append(ix.children[s.Parent], i)
		}
		if s.VM != "" {
			ix.byVM[s.VM] = append(ix.byVM[s.VM], i)
		}
	}
	return ix
}

// Len returns the number of indexed spans.
func (ix *SpanIndex) Len() int { return len(ix.spans) }

// VMs returns the distinct VM names with at least one span, sorted.
func (ix *SpanIndex) VMs() []string {
	out := make([]string, 0, len(ix.byVM))
	for vm := range ix.byVM {
		out = append(out, vm)
	}
	sort.Strings(out)
	return out
}

// vmSpans returns the indexes of vm's spans of the given kind.
func (ix *SpanIndex) vmSpans(vm string, kind SpanKind) []int {
	var out []int
	for _, i := range ix.byVM[vm] {
		if ix.spans[i].Kind == kind {
			out = append(out, i)
		}
	}
	return out
}

// childrenOf returns the child indexes of span i of the given kind.
func (ix *SpanIndex) childrenOf(i int, kind SpanKind) []int {
	var out []int
	for _, c := range ix.children[ix.spans[i].ID] {
		if ix.spans[c].Kind == kind {
			out = append(out, c)
		}
	}
	return out
}

// fmtTime renders a virtual time as seconds.
func fmtTime(s *Span) string { return fmt.Sprintf("t=%.3fs", s.Start.Seconds()) }

// ExplainVM renders vm's full recorded lifecycle: every span touching it,
// indented by causality.
func (ix *SpanIndex) ExplainVM(vm string) (string, error) {
	idx := ix.byVM[vm]
	if len(idx) == 0 {
		return "", fmt.Errorf("no spans recorded for VM %q (known: %s)", vm, strings.Join(ix.VMs(), ", "))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "timeline of %s (%d spans):\n", vm, len(idx))
	for _, i := range idx {
		s := &ix.spans[i]
		fmt.Fprintf(&b, "  %s  %-10s %s", fmtTime(s), s.Kind, s.Name)
		if s.Host != "" {
			fmt.Fprintf(&b, " [%s]", s.Host)
		}
		if s.hasScore {
			fmt.Fprintf(&b, " score=%.2f", s.Score)
		}
		if s.hasCost {
			fmt.Fprintf(&b, " cost=%.3fms", float64(s.Cost.Micros())/1000)
		}
		if s.Detail != "" {
			fmt.Fprintf(&b, " — %s", s.Detail)
		}
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// lastPlace returns the index of vm's last successful place span (one with
// a host), or the last place span of any outcome if none succeeded, or -1.
func (ix *SpanIndex) lastPlace(vm string) int {
	places := ix.vmSpans(vm, SpanPlace)
	for i := len(places) - 1; i >= 0; i-- {
		if ix.spans[places[i]].Host != "" {
			return places[i]
		}
	}
	if len(places) > 0 {
		return places[len(places)-1]
	}
	return -1
}

// renderDecision renders one place span with its filter, score, and
// candidate sub-spans — the full per-plugin breakdown the decision used.
func (ix *SpanIndex) renderDecision(b *strings.Builder, i int) {
	s := &ix.spans[i]
	fmt.Fprintf(b, "%s decision %s", fmtTime(s), s.Name)
	if s.Host != "" {
		fmt.Fprintf(b, " → %s", s.Host)
	} else {
		b.WriteString(" → no host fits")
	}
	if s.hasScore {
		fmt.Fprintf(b, " (total %.2f)", s.Score)
	}
	if s.Detail != "" {
		fmt.Fprintf(b, "\n  %s", s.Detail)
	}
	b.WriteByte('\n')
	if filters := ix.childrenOf(i, SpanFilter); len(filters) > 0 {
		b.WriteString("  filters:\n")
		for _, f := range filters {
			fs := &ix.spans[f]
			fmt.Fprintf(b, "    %-12s %s\n", fs.Name, fs.Detail)
		}
	}
	if scores := ix.childrenOf(i, SpanScore); len(scores) > 0 {
		fmt.Fprintf(b, "  scores for %s:\n", s.Host)
		for _, sc := range scores {
			ss := &ix.spans[sc]
			fmt.Fprintf(b, "    %-12s %+8.2f  %s\n", ss.Name, ss.Score, ss.Detail)
		}
	}
	if cands := ix.childrenOf(i, SpanCandidate); len(cands) > 0 {
		b.WriteString("  candidates:\n")
		for _, c := range cands {
			cs := &ix.spans[c]
			fmt.Fprintf(b, "    %-8s total %8.2f  %s\n", cs.Host, cs.Score, cs.Detail)
		}
	}
}

// ExplainWhy answers "why did vm land on its host": the last successful
// placement decision with its complete per-plugin breakdown.
func (ix *SpanIndex) ExplainWhy(vm string) (string, error) {
	i := ix.lastPlace(vm)
	if i < 0 {
		return "", fmt.Errorf("no placement decision recorded for VM %q", vm)
	}
	var b strings.Builder
	ix.renderDecision(&b, i)
	return b.String(), nil
}

// ExplainWhyNot answers "why did vm not land on host": a veto reason if a
// filter excluded it, its score gap if it lost the scoring round, or the
// fact that it scored below the recorded top candidates.
func (ix *SpanIndex) ExplainWhyNot(vm, host string) (string, error) {
	i := ix.lastPlace(vm)
	if i < 0 {
		return "", fmt.Errorf("no placement decision recorded for VM %q", vm)
	}
	s := &ix.spans[i]
	if s.Host == host {
		return fmt.Sprintf("%s WAS placed on %s — ask `why %s` for the breakdown\n", vm, host, vm), nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s decision %s → %s; why not %s:\n", fmtTime(s), s.Name, s.Host, host)
	needle := host + ":"
	for _, f := range ix.childrenOf(i, SpanFilter) {
		fs := &ix.spans[f]
		if k := strings.Index(fs.Detail, needle); k >= 0 {
			reason := fs.Detail[k+len(needle):]
			if e := strings.IndexByte(reason, ';'); e >= 0 {
				reason = reason[:e]
			}
			fmt.Fprintf(&b, "  vetoed by %s:%s\n", fs.Name, reason)
			return b.String(), nil
		}
	}
	for _, c := range ix.childrenOf(i, SpanCandidate) {
		cs := &ix.spans[c]
		if cs.Host == host {
			fmt.Fprintf(&b, "  %s passed every filter but scored %.2f vs winner %.2f: %s\n",
				host, cs.Score, s.Score, cs.Detail)
			return b.String(), nil
		}
	}
	fmt.Fprintf(&b, "  %s passed every filter but scored below the recorded top candidates (winner %.2f)\n",
		host, s.Score)
	return b.String(), nil
}

// ExplainRejected answers "why was vm rejected": the terminal reject span
// plus the veto breakdown of every failed placement attempt.
func (ix *SpanIndex) ExplainRejected(vm string) (string, error) {
	rejects := ix.vmSpans(vm, SpanReject)
	places := ix.vmSpans(vm, SpanPlace)
	retries := ix.vmSpans(vm, SpanRetry)
	if len(rejects) == 0 && len(places) == 0 {
		return "", fmt.Errorf("no admission spans recorded for VM %q", vm)
	}
	var b strings.Builder
	if len(rejects) == 0 {
		fmt.Fprintf(&b, "%s was never rejected (%d placement attempts, %d retries)\n",
			vm, len(places), len(retries))
	} else {
		rs := &ix.spans[rejects[len(rejects)-1]]
		fmt.Fprintf(&b, "%s rejected at %s — %s\n", vm, fmtTime(rs), rs.Detail)
	}
	for _, i := range places {
		if ix.spans[i].Host == "" {
			ix.renderDecision(&b, i)
		}
	}
	return b.String(), nil
}

// ExplainPreempted answers "who preempted vm": every preempt span naming
// it as the victim, with the beneficiary and outcome.
func (ix *SpanIndex) ExplainPreempted(vm string) (string, error) {
	pre := ix.vmSpans(vm, SpanPreempt)
	if len(pre) == 0 {
		if len(ix.byVM[vm]) == 0 {
			return "", fmt.Errorf("no spans recorded for VM %q", vm)
		}
		return fmt.Sprintf("%s was never preempted\n", vm), nil
	}
	var b strings.Builder
	for _, i := range pre {
		s := &ix.spans[i]
		fmt.Fprintf(&b, "%s %s preempted off %s — %s", fmtTime(s), vm, s.Host, s.Detail)
		if s.hasCost {
			fmt.Fprintf(&b, " (migration cost %.3fms)", float64(s.Cost.Micros())/1000)
		}
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// Summary renders a one-screen overview of the span file: span counts by
// kind and the VM list.
func (ix *SpanIndex) Summary() string {
	counts := map[SpanKind]int{}
	for i := range ix.spans {
		counts[ix.spans[i].Kind]++
	}
	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	var b strings.Builder
	fmt.Fprintf(&b, "%d spans", len(ix.spans))
	if len(ix.spans) == 0 {
		b.WriteString(" (empty trace)\n")
		return b.String()
	}
	b.WriteString(":\n")
	for _, k := range kinds {
		fmt.Fprintf(&b, "  %-12s %d\n", k, counts[SpanKind(k)])
	}
	if vms := ix.VMs(); len(vms) > 0 {
		fmt.Fprintf(&b, "vms: %s\n", strings.Join(vms, " "))
	}
	return b.String()
}
