// Command vprobe-bench parses `go test -bench` output on stdin and appends
// one snapshot entry to a JSON history file (default BENCH_hotpath.json).
// Each snapshot records ns/op, B/op, and allocs/op per benchmark, so the
// file accumulates an ordered before/after history of the hot-path numbers:
// the first entry is the pre-refactor baseline, later entries track every
// `make bench` run since. See EXPERIMENTS.md for how to read the file.
//
// With -check, the fresh run is compared against the last committed
// snapshot instead of appended: a benchmark that regresses more than 25%
// in ns/op, or that gains any allocs/op while the committed entry reports
// zero, fails the check. ns/op on shared CI hardware is noisy, hence the
// wide tolerance; allocs/op is deterministic, hence none.
//
// Repeated result lines for the same benchmark (from `go test -count=N`)
// are aggregated: minimum ns/op — the least noise-sensitive statistic,
// since contention only ever adds time — and maximum B/op and allocs/op,
// so a single clean repetition cannot hide an allocating one. Feed both
// `make bench` and `make bench-check` -count=3 output and a one-off noisy
// scheduling window neither pollutes the baseline nor fakes a regression.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | go run ./cmd/vprobe-bench -label my-change
//	go test -run '^$' -bench . -benchmem . | go run ./cmd/vprobe-bench -check
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
)

// Metrics is one benchmark's reported costs.
type Metrics struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Snapshot is one appended history entry: every benchmark parsed from a
// single `go test -bench` run.
type Snapshot struct {
	Label      string             `json:"label"`
	GoVersion  string             `json:"go_version"`
	Benchmarks map[string]Metrics `json:"benchmarks"`
}

// maxNsRegression is the tolerated ns/op growth factor in -check mode.
const maxNsRegression = 1.25

// benchLine matches one result line, e.g.
//
//	BenchmarkQuantumHotPath-8   7270830   345.8 ns/op   0 B/op   0 allocs/op
//
// The -8 GOMAXPROCS suffix is stripped so snapshots from different machines
// key identically; B/op and allocs/op are optional (absent without
// -benchmem or b.ReportAllocs).
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op\s+([\d.]+) allocs/op)?`)

func main() {
	out := flag.String("out", "BENCH_hotpath.json", "history file to append the snapshot to")
	label := flag.String("label", "", "snapshot label (required unless -check)")
	check := flag.Bool("check", false,
		"compare stdin against the last committed snapshot instead of appending")
	flag.Parse()
	if !*check && *label == "" {
		fmt.Fprintln(os.Stderr, "vprobe-bench: -label is required")
		os.Exit(2)
	}

	snap := Snapshot{
		Label:      *label,
		GoVersion:  runtime.Version(),
		Benchmarks: map[string]Metrics{},
	}
	if err := parseBenchmarks(os.Stdin, snap.Benchmarks); err != nil {
		fmt.Fprintf(os.Stderr, "vprobe-bench: reading stdin: %v\n", err)
		os.Exit(1)
	}
	if len(snap.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "vprobe-bench: no benchmark lines on stdin")
		os.Exit(1)
	}

	var history []Snapshot
	if data, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(data, &history); err != nil {
			fmt.Fprintf(os.Stderr, "vprobe-bench: %s is not a snapshot history: %v\n", *out, err)
			os.Exit(1)
		}
	} else if !os.IsNotExist(err) {
		fmt.Fprintf(os.Stderr, "vprobe-bench: %v\n", err)
		os.Exit(1)
	}

	if *check {
		os.Exit(runCheck(history, snap, *out))
	}

	history = append(history, snap)

	data, err := json.MarshalIndent(history, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "vprobe-bench: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "vprobe-bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("vprobe-bench: appended snapshot %q (%d benchmarks) to %s (%d entries)\n",
		snap.Label, len(snap.Benchmarks), *out, len(history))
}

// parseBenchmarks scans `go test -bench` output and fills into with one
// Metrics per benchmark name. Repetitions of the same benchmark (`go test
// -count=N`) collapse to min ns/op and max B/op / allocs/op: time noise
// is one-sided (contention adds, never subtracts), while the alloc gate
// must see the worst repetition.
func parseBenchmarks(r io.Reader, into map[string]Metrics) error {
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		var met Metrics
		met.NsPerOp, _ = strconv.ParseFloat(m[2], 64)
		if m[3] != "" {
			met.BytesPerOp, _ = strconv.ParseFloat(m[3], 64)
			met.AllocsPerOp, _ = strconv.ParseFloat(m[4], 64)
		}
		if prev, ok := into[m[1]]; ok {
			met.NsPerOp = math.Min(met.NsPerOp, prev.NsPerOp)
			met.BytesPerOp = math.Max(met.BytesPerOp, prev.BytesPerOp)
			met.AllocsPerOp = math.Max(met.AllocsPerOp, prev.AllocsPerOp)
		}
		into[m[1]] = met
	}
	return sc.Err()
}

// runCheck compares the fresh snapshot against the last committed entry
// and returns the process exit code: 0 clean, 1 regression.
func runCheck(history []Snapshot, fresh Snapshot, out string) int {
	if len(history) == 0 {
		fmt.Fprintf(os.Stderr, "vprobe-bench: -check needs at least one committed snapshot in %s\n", out)
		return 2
	}
	base := history[len(history)-1]

	names := make([]string, 0, len(fresh.Benchmarks))
	for name := range fresh.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	failures := 0
	compared := 0
	for _, name := range names {
		cur := fresh.Benchmarks[name]
		ref, ok := base.Benchmarks[name]
		if !ok {
			fmt.Printf("vprobe-bench: %s: new benchmark, no baseline (label %q)\n", name, base.Label)
			continue
		}
		compared++
		if ref.AllocsPerOp == 0 && cur.AllocsPerOp > 0 {
			fmt.Printf("vprobe-bench: FAIL %s: %.0f allocs/op, baseline %q is allocation-free\n",
				name, cur.AllocsPerOp, base.Label)
			failures++
		}
		if ref.NsPerOp > 0 && cur.NsPerOp > ref.NsPerOp*maxNsRegression {
			fmt.Printf("vprobe-bench: FAIL %s: %.1f ns/op vs %.1f ns/op in %q (+%.0f%%, tolerance %.0f%%)\n",
				name, cur.NsPerOp, ref.NsPerOp, base.Label,
				(cur.NsPerOp/ref.NsPerOp-1)*100, (maxNsRegression-1)*100)
			failures++
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "vprobe-bench: %d regression(s) vs snapshot %q\n", failures, base.Label)
		return 1
	}
	fmt.Printf("vprobe-bench: check clean: %d benchmark(s) within bounds of snapshot %q\n",
		compared, base.Label)
	return 0
}
