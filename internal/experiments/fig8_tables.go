package experiments

import (
	"context"
	"fmt"

	"vprobe/internal/harness"
	"vprobe/internal/mem"
	"vprobe/internal/metrics"
	"vprobe/internal/numa"
	"vprobe/internal/sched"
	"vprobe/internal/sim"
	"vprobe/internal/workload"
	"vprobe/internal/xen"
)

// runFig8 reproduces §V-C2: the mix workload under vProbe with the
// sampling period swept from 0.1 s to 10 s. The paper finds a U-shape:
// short periods burn overhead and churn placements, long periods let the
// characteristics go stale; 1 s is the chosen operating point.
func runFig8(ctx context.Context, opts Options) (*Result, error) {
	opts = opts.normalized()
	r := &Result{ID: "fig8", Title: "Mix workload vs sampling period (paper Fig. 8)"}
	t := metrics.NewTable("Fig. 8", "period", "exec-time(s)", "overhead", "node-moves")

	periods := []sim.Duration{
		100 * sim.Millisecond,
		200 * sim.Millisecond,
		500 * sim.Millisecond,
		1 * sim.Second,
		2 * sim.Second,
		5 * sim.Second,
		10 * sim.Second,
	}
	type point struct {
		exec     float64
		overhead float64
		moves    int
	}
	points, err := harness.Map(ctx, harness.Workers(opts.Workers, len(periods)), len(periods),
		func(ctx context.Context, i int) (point, error) {
			period := periods[i]
			pol := sched.NewVProbe()
			pol.SamplePeriod = period
			cfg := xen.DefaultConfig()
			cfg.Seed = opts.Seed
			h := xen.New(numa.XeonE5620(), pol, cfg)
			sc, err := buildStandardVMs(h, mixApps(), mixApps(), opts)
			if err != nil {
				return point{}, err
			}
			runs, end, err := sc.runMeasured(ctx, opts)
			if err != nil {
				return point{}, fmt.Errorf("period %s: %w", period, err)
			}
			opts.emitScenario("period/"+period.String(), end)
			p := point{exec: metrics.AvgExecSeconds(runs), overhead: h.OverheadFraction()}
			for _, run := range runs {
				p.moves += run.NodeMoves
			}
			return p, nil
		})
	if err != nil {
		return nil, err
	}
	for i, period := range periods {
		label := period.String()
		r.Set("exec/vprobe", label, points[i].exec)
		r.Set("overhead/vprobe", label, points[i].overhead)
		t.AddRow(label, fmt.Sprintf("%.2f", points[i].exec),
			fmt.Sprintf("%.5f%%", 100*points[i].overhead), fmt.Sprintf("%d", points[i].moves))
	}
	t.AddNote("paper: execution time minimized at a 1s period")
	r.Tables = append(r.Tables, t)
	return r, nil
}

// buildStandardVMs attaches the standard three-VM setup onto an existing
// hypervisor (used when the policy needs custom construction, e.g. a
// non-default sampling period).
func buildStandardVMs(h *xen.Hypervisor, apps1, apps2 []*workload.Profile, opts Options) (*scenario, error) {
	vm1, err := h.CreateDomain("VM1", 15*1024, 8, mem.PolicyStripe)
	if err != nil {
		return nil, err
	}
	vm2, err := h.CreateDomain("VM2", 5*1024, 8, mem.PolicyFill)
	if err != nil {
		return nil, err
	}
	vm3, err := h.CreateDomain("VM3", 1*1024, 8, mem.PolicyFill)
	if err != nil {
		return nil, err
	}
	attach := func(d *xen.Domain, apps []*workload.Profile) error {
		for i, app := range apps {
			p := app.Clone()
			if p.TotalInstructions > 0 && p.TotalInstructions < 1e17 {
				p.TotalInstructions *= opts.Scale
			}
			if _, err := h.AttachApp(d, i, p); err != nil {
				return err
			}
		}
		return nil
	}
	if err := attach(vm1, padGuestIdle(apps1, len(vm1.VCPUs))); err != nil {
		return nil, err
	}
	if err := attach(vm2, padGuestIdle(apps2, len(vm2.VCPUs))); err != nil {
		return nil, err
	}
	var hungry []*workload.Profile
	for i := 0; i < 8; i++ {
		hungry = append(hungry, workload.Hungry())
	}
	if err := attach(vm3, hungry); err != nil {
		return nil, err
	}
	return &scenario{H: h, VM1: vm1, VM2: vm2, VM3: vm3}, nil
}

// runTable1 renders the platform description (paper Table I) from the
// topology preset, verifying the encoded machine matches the paper.
func runTable1(_ context.Context, opts Options) (*Result, error) {
	top := numa.XeonE5620()
	r := &Result{ID: "table1", Title: "Platform configuration (paper Table I)"}
	t := metrics.NewTable("Table I", "item", "value")
	t.AddRow("Cores", fmt.Sprintf("%d cores (%d sockets)", top.NumCPUs(), top.NumNodes()))
	t.AddRow("Clock frequency", fmt.Sprintf("%.2f GHz", top.ClockGHz()))
	t.AddRow("L3 cache", fmt.Sprintf("%d MB unified, shared by %d cores",
		top.LLCSizeKB(0)/1024, len(top.CPUsOf(0))))
	t.AddRow("IMC", fmt.Sprintf("%.1f GB/s bandwidth, %d memory nodes, each node has %d GB",
		top.Node(0).IMCBandwidthGBs, top.NumNodes(), top.Node(0).MemoryMB/1024))
	t.AddRow("QPI", fmt.Sprintf("%d links, %.2f GT/s", len(top.Links()), top.Links()[0].BandwidthGTs))
	t.AddRow("Latency (model)", fmt.Sprintf("local %.0f ns, remote %.0f ns",
		top.MemLatencyNS(0, 0), top.MemLatencyNS(0, 1)))
	r.Set("nodes/config", "nodes", float64(top.NumNodes()))
	r.Set("cpus/config", "cpus", float64(top.NumCPUs()))
	r.Tables = append(r.Tables, t)
	return r, nil
}

// runTable3 reproduces §V-C1: the percentage of "overhead time" (PMU
// collection + periodical partitioning) in total execution time, for one to
// four VMs each running two soplex instances on two VCPUs.
func runTable3(ctx context.Context, opts Options) (*Result, error) {
	opts = opts.normalized()
	r := &Result{ID: "table3", Title: "vProbe overhead time (paper Table III)"}
	t := metrics.NewTable("Table III", "VMs", "overhead-time %")
	const counts = 4
	fracs, err := harness.Map(ctx, harness.Workers(opts.Workers, counts), counts,
		func(ctx context.Context, idx int) (float64, error) {
			n := idx + 1
			pol := sched.NewVProbe()
			cfg := xen.DefaultConfig()
			cfg.Seed = opts.Seed
			h := xen.New(numa.XeonE5620(), pol, cfg)
			var doms []*xen.Domain
			for i := 0; i < n; i++ {
				d, err := h.CreateDomain(fmt.Sprintf("VM%d", i+1), 4*1024, 2, mem.PolicyStripe)
				if err != nil {
					return 0, err
				}
				for j := 0; j < 2; j++ {
					p := workload.Soplex().Clone()
					p.TotalInstructions *= opts.Scale
					if _, err := h.AttachApp(d, j, p); err != nil {
						return 0, err
					}
				}
				doms = append(doms, d)
			}
			h.WatchDomains(doms...)
			end, err := h.RunContext(ctx, opts.Horizon)
			if err != nil {
				return 0, fmt.Errorf("%d VMs: %w", n, err)
			}
			opts.emitScenario(fmt.Sprintf("vms/%d", n), end)
			return h.OverheadFraction(), nil
		})
	if err != nil {
		return nil, err
	}
	for idx, frac := range fracs {
		label := fmt.Sprintf("%d", idx+1)
		r.Set("overhead/vprobe", label, 100*frac)
		t.AddRow(label, fmt.Sprintf("%.5f", 100*frac))
	}
	t.AddNote("paper: 0.00847 / 0.01206 / 0.01619 / 0.01062 %% — all far below 0.1%%")
	r.Tables = append(r.Tables, t)
	return r, nil
}

func init() {
	register(&Experiment{
		ID:    "fig8",
		Title: "Sampling-period sensitivity",
		Paper: "Fig. 8: U-shaped execution time, minimum at 1 s",
		run:   runFig8,
	})
	register(&Experiment{
		ID:    "table1",
		Title: "Platform configuration",
		Paper: "Table I: 2x quad-core Xeon E5620, 12 MB L3/socket, 12 GB/node, 2 QPI links",
		run:   runTable1,
	})
	register(&Experiment{
		ID:    "table3",
		Title: "Overhead time",
		Paper: "Table III: overhead well below 0.1%, rising 1->3 VMs, dipping at 4",
		run:   runTable3,
	})
}
