package experiments

import (
	"context"
	"fmt"

	"vprobe/internal/core"
	"vprobe/internal/harness"
	"vprobe/internal/mem"
	"vprobe/internal/metrics"
	"vprobe/internal/numa"
	"vprobe/internal/sched"
	"vprobe/internal/sim"
	"vprobe/internal/workload"
	"vprobe/internal/xen"
)

// coreDynamic builds the adaptive-bounds tracker.
func coreDynamic() *core.DynamicBounds { return core.NewDynamicBounds() }

// ablationVariant is one configuration of the vProbe family under test.
type ablationVariant struct {
	Label string
	Make  func() xen.Policy
	// Migrate enables the §VI page-migration extension.
	Migrate bool
}

// runVariants executes the standard mix scenario for each variant over the
// option seeds and reports mean VM1 execution time and remote ratio. The
// (variant, seed) grid fans out across opts.Workers; rows keep the
// variants' declared order.
func runVariants(ctx context.Context, r *Result, variants []ablationVariant, opts Options, top func() *numa.Topology) error {
	t := metrics.NewTable(r.Title, "variant", "exec(s)", "remote", "node-moves")
	type cell struct{ exec, remote, moves float64 }
	n := len(variants) * opts.Repeats
	cells, err := harness.Map(ctx, harness.Workers(opts.Workers, n), n,
		func(ctx context.Context, i int) (cell, error) {
			variant := variants[i/opts.Repeats]
			rep := i % opts.Repeats
			cfg := xen.DefaultConfig()
			cfg.Seed = opts.Seed + uint64(rep)
			h := xen.New(top(), variant.Make(), cfg)
			if variant.Migrate {
				h.Migrator = mem.DefaultMigrator()
			}
			sc, err := buildStandardVMs(h, mixApps(), mixApps(), opts)
			if err != nil {
				return cell{}, err
			}
			runs, end, err := sc.runMeasured(ctx, opts)
			if err != nil {
				return cell{}, fmt.Errorf("%s/seed%d: %w", variant.Label, rep, err)
			}
			opts.emitScenario(scenarioName("", variant.Label, rep), end)
			c := cell{
				exec:   metrics.AvgExecSeconds(runs),
				remote: metrics.AvgRemoteRatio(runs),
			}
			for _, run := range runs {
				c.moves += float64(run.NodeMoves)
			}
			return c, nil
		})
	if err != nil {
		return err
	}
	for vi, variant := range variants {
		var execs, remotes, moves []float64
		for _, c := range cells[vi*opts.Repeats : (vi+1)*opts.Repeats] {
			execs = append(execs, c.exec)
			remotes = append(remotes, c.remote)
			moves = append(moves, c.moves)
		}
		exec := sim.Mean(execs)
		remote := sim.Mean(remotes)
		r.Set("exec/"+variant.Label, "mix", exec)
		r.Set("remote/"+variant.Label, "mix", remote)
		t.AddRow(variant.Label, fmt.Sprintf("%.2f", exec),
			metrics.Pct(remote), fmt.Sprintf("%.0f", sim.Mean(moves)))
	}
	r.Tables = append(r.Tables, t)
	return nil
}

// runAblateAffinity isolates Eq. 1's value: vProbe with the memory node
// affinity information erased (partitioning balances counts but places
// VCPUs blindly) against full vProbe and Credit.
func runAblateAffinity(ctx context.Context, opts Options) (*Result, error) {
	opts = opts.normalized()
	r := &Result{ID: "ablate-affinity", Title: "Ablation: memory node affinity (Eq. 1)"}
	variants := []ablationVariant{
		{Label: "credit", Make: func() xen.Policy { return sched.NewCredit() }},
		{Label: "vprobe", Make: func() xen.Policy { return sched.NewVProbe() }},
		{Label: "vprobe-no-affinity", Make: func() xen.Policy {
			p := sched.NewVProbe()
			p.DisableAffinity = true
			return p
		}},
	}
	if err := runVariants(ctx, r, variants, opts, numa.XeonE5620); err != nil {
		return nil, err
	}
	r.Tables[0].AddNote("without Eq. 1, partitioning balances LLC pressure but scatters memory")
	return r, nil
}

// runAblateDynamic evaluates the §VI dynamic-bounds extension.
func runAblateDynamic(ctx context.Context, opts Options) (*Result, error) {
	opts = opts.normalized()
	r := &Result{ID: "ablate-dynamic", Title: "Extension: dynamic classification bounds (§VI)"}
	variants := []ablationVariant{
		{Label: "vprobe-static", Make: func() xen.Policy { return sched.NewVProbe() }},
		{Label: "vprobe-dynamic", Make: func() xen.Policy {
			p := sched.NewVProbe()
			p.Dynamic = coreDynamic()
			return p
		}},
	}
	if err := runVariants(ctx, r, variants, opts, numa.XeonE5620); err != nil {
		return nil, err
	}
	r.Tables[0].AddNote("bounds adapt to the running pressure distribution instead of (3, 20)")
	return r, nil
}

// runAblatePageMigration evaluates the §VI page-migration extension
// combined with each scheduler.
func runAblatePageMigration(ctx context.Context, opts Options) (*Result, error) {
	opts = opts.normalized()
	r := &Result{ID: "ablate-pagemig", Title: "Extension: page migration (§VI)"}
	variants := []ablationVariant{
		{Label: "credit", Make: func() xen.Policy { return sched.NewCredit() }},
		{Label: "credit+pagemig", Make: func() xen.Policy { return sched.NewCredit() }, Migrate: true},
		{Label: "vprobe", Make: func() xen.Policy { return sched.NewVProbe() }},
		{Label: "vprobe+pagemig", Make: func() xen.Policy { return sched.NewVProbe() }, Migrate: true},
	}
	if err := runVariants(ctx, r, variants, opts, numa.XeonE5620); err != nil {
		return nil, err
	}
	r.Tables[0].AddNote("pages lazily follow the VCPU; the paper expects this to help Credit most")
	return r, nil
}

// runFourNode exercises the N > 2 paths of Algorithms 1 and 2 on a
// synthetic 4-node machine.
func runFourNode(ctx context.Context, opts Options) (*Result, error) {
	opts = opts.normalized()
	r := &Result{ID: "fournode", Title: "4-node topology (N > 2 algorithm paths)"}
	t := metrics.NewTable(r.Title, "scheduler", "exec(s)", "remote")
	apps := []*workload.Profile{
		workload.Soplex(), workload.Libquantum(), workload.MCF(), workload.Milc(),
		workload.LU(), workload.MG(), workload.SP(), workload.CG(),
	}
	kinds := []sched.Kind{sched.KindCredit, sched.KindVProbe, sched.KindLB}
	type cell struct{ exec, remote float64 }
	n := len(kinds) * opts.Repeats
	cells, err := harness.Map(ctx, harness.Workers(opts.Workers, n), n,
		func(ctx context.Context, i int) (cell, error) {
			kind := kinds[i/opts.Repeats]
			rep := i % opts.Repeats
			pol, err := sched.New(kind)
			if err != nil {
				return cell{}, err
			}
			cfg := xen.DefaultConfig()
			cfg.Seed = opts.Seed + uint64(rep)
			h := xen.New(numa.FourNode(), pol, cfg)
			vm1, err := h.CreateDomain("VM1", 32*1024, 16, mem.PolicyStripe)
			if err != nil {
				return cell{}, err
			}
			vm2, err := h.CreateDomain("VM2", 16*1024, 16, mem.PolicyFill)
			if err != nil {
				return cell{}, err
			}
			for i, app := range apps {
				p := app.Clone()
				p.TotalInstructions *= opts.Scale
				if _, err := h.AttachApp(vm1, i, p); err != nil {
					return cell{}, err
				}
				q := app.Clone()
				q.TotalInstructions *= opts.Scale
				if _, err := h.AttachApp(vm2, i, q); err != nil {
					return cell{}, err
				}
			}
			for i := len(apps); i < 16; i++ {
				h.AttachApp(vm1, i, workload.GuestIdle())
				h.AttachApp(vm2, i, workload.Hungry())
			}
			h.WatchDomains(vm1)
			end, err := h.RunContext(ctx, opts.Horizon)
			if err != nil {
				return cell{}, fmt.Errorf("%s/seed%d: %w", kind, rep, err)
			}
			opts.emitScenario(scenarioName("fournode", string(kind), rep), end)
			runs := metrics.CollectDomain(vm1, end)
			return cell{
				exec:   metrics.AvgExecSeconds(runs),
				remote: metrics.AvgRemoteRatio(runs),
			}, nil
		})
	if err != nil {
		return nil, err
	}
	for ki, kind := range kinds {
		var execs, remotes []float64
		for _, c := range cells[ki*opts.Repeats : (ki+1)*opts.Repeats] {
			execs = append(execs, c.exec)
			remotes = append(remotes, c.remote)
		}
		exec := sim.Mean(execs)
		remote := sim.Mean(remotes)
		r.Set("exec/"+string(kind), "fournode", exec)
		r.Set("remote/"+string(kind), "fournode", remote)
		t.AddRow(string(kind), fmt.Sprintf("%.2f", exec), metrics.Pct(remote))
	}
	t.AddNote("16 CPUs over 4 nodes; Algorithm 1 balances across all four")
	r.Tables = append(r.Tables, t)
	return r, nil
}

func init() {
	register(&Experiment{
		ID:    "ablate-affinity",
		Title: "Affinity ablation",
		Paper: "DESIGN.md extension: isolates the value of Eq. 1 inside Algorithm 1",
		run:   runAblateAffinity,
	})
	register(&Experiment{
		ID:    "ablate-dynamic",
		Title: "Dynamic bounds extension",
		Paper: "Paper §VI future work: workload-adaptive classification bounds",
		run:   runAblateDynamic,
	})
	register(&Experiment{
		ID:    "ablate-pagemig",
		Title: "Page migration extension",
		Paper: "Paper §VI future work: combine VCPU scheduling with page migration",
		run:   runAblatePageMigration,
	})
	register(&Experiment{
		ID:    "fournode",
		Title: "Four-node topology",
		Paper: "DESIGN.md extension: N > 2 paths of Algorithms 1 and 2",
		run:   runFourNode,
	})
}
