package experiments

import (
	"context"
	"fmt"

	"vprobe/internal/harness"
	"vprobe/internal/metrics"
	"vprobe/internal/numa"
	"vprobe/internal/sched"
	"vprobe/internal/sim"
	"vprobe/internal/xen"
)

// runBoundsSensitivity sweeps the classification bounds of Eq. 3 around
// the paper's (3, 20) operating point on the mix workload. §IV-A notes
// that moving either bound changes how many VCPUs land in LLC-T / LLC-FI
// and thereby what the partitioner does; this experiment quantifies that.
func runBoundsSensitivity(ctx context.Context, opts Options) (*Result, error) {
	opts = opts.normalized()
	r := &Result{ID: "sensitivity-bounds", Title: "Sensitivity: classification bounds (low, high)"}
	t := metrics.NewTable(r.Title, "low", "high", "exec(s)", "remote")

	type point struct{ low, high float64 }
	points := []point{
		{3, 20},  // paper operating point
		{1, 20},  // aggressive: almost everything memory-intensive
		{8, 20},  // conservative low bound
		{3, 10},  // most VCPUs become LLC-T
		{3, 30},  // almost nothing is LLC-T
		{1, 100}, // one class: everything LLC-FI
		{20, 25}, // only extreme thrashers partitioned
	}
	type cell struct{ exec, remote float64 }
	n := len(points) * opts.Repeats
	cells, err := harness.Map(ctx, harness.Workers(opts.Workers, n), n,
		func(ctx context.Context, i int) (cell, error) {
			pt := points[i/opts.Repeats]
			rep := i % opts.Repeats
			pol := sched.NewVProbe()
			pol.Analyzer.Bounds.Low = pt.low
			pol.Analyzer.Bounds.High = pt.high
			cfg := xen.DefaultConfig()
			cfg.Seed = opts.Seed + uint64(rep)
			h := xen.New(numa.XeonE5620(), pol, cfg)
			sc, err := buildStandardVMs(h, mixApps(), mixApps(), opts)
			if err != nil {
				return cell{}, err
			}
			runs, end, err := sc.runMeasured(ctx, opts)
			if err != nil {
				return cell{}, fmt.Errorf("bounds %g/%g seed%d: %w", pt.low, pt.high, rep, err)
			}
			opts.emitScenario(fmt.Sprintf("bounds-%g-%g/seed%d", pt.low, pt.high, rep), end)
			return cell{
				exec:   metrics.AvgExecSeconds(runs),
				remote: metrics.AvgRemoteRatio(runs),
			}, nil
		})
	if err != nil {
		return nil, err
	}
	for pi, pt := range points {
		var execs, remotes []float64
		for _, c := range cells[pi*opts.Repeats : (pi+1)*opts.Repeats] {
			execs = append(execs, c.exec)
			remotes = append(remotes, c.remote)
		}
		exec := sim.Mean(execs)
		label := fmt.Sprintf("%g/%g", pt.low, pt.high)
		r.Set("exec/vprobe", label, exec)
		r.Set("remote/vprobe", label, sim.Mean(remotes))
		t.AddRow(fmt.Sprintf("%g", pt.low), fmt.Sprintf("%g", pt.high),
			fmt.Sprintf("%.2f", exec), metrics.Pct(sim.Mean(remotes)))
	}
	t.AddNote("paper operating point is (3, 20); §IV-A discusses the trade-off")
	r.Tables = append(r.Tables, t)
	return r, nil
}

func init() {
	register(&Experiment{
		ID:    "sensitivity-bounds",
		Title: "Bound sensitivity sweep",
		Paper: "§IV-A: changing low/high shifts VCPUs between classes and changes partitioning",
		run:   runBoundsSensitivity,
	})
}
