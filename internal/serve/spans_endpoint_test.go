package serve

import (
	"bytes"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"vprobe/internal/telemetry"
)

// tracedClusterJSON is clusterJSON with the flight recorder on.
const tracedClusterJSON = `{
  "hosts": 2, "horizon": "30s", "workers": 1, "trace": true
}`

// TestSpansEndpoint runs a traced cluster and exercises both span export
// formats plus the format validation.
func TestSpansEndpoint(t *testing.T) {
	_, ts := testServer(t, Options{})
	status, run := postJSON(t, ts.URL+"/v1/clusters", tracedClusterJSON)
	if status != http.StatusOK {
		t.Fatalf("POST status = %d, body %v", status, run)
	}
	id, _ := run["id"].(string)

	status, raw := getBody(t, fmt.Sprintf("%s/v1/runs/%s/spans", ts.URL, id))
	if status != http.StatusOK {
		t.Fatalf("GET spans = %d: %s", status, raw)
	}
	spans, err := telemetry.ReadSpans(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) == 0 {
		t.Fatal("traced run exported no spans")
	}

	status, chrome := getBody(t, fmt.Sprintf("%s/v1/runs/%s/spans?format=chrome", ts.URL, id))
	if status != http.StatusOK {
		t.Fatalf("GET chrome spans = %d", status)
	}
	if _, err := telemetry.ValidateChromeTrace(chrome); err != nil {
		t.Fatal(err)
	}

	status, _ = getBody(t, fmt.Sprintf("%s/v1/runs/%s/spans?format=bogus", ts.URL, id))
	if status != http.StatusBadRequest {
		t.Fatalf("GET spans?format=bogus = %d, want 400", status)
	}
}

// TestExplainEndpoint answers provenance queries over a traced scenario
// and a traced cluster.
func TestExplainEndpoint(t *testing.T) {
	_, ts := testServer(t, Options{})
	status, run := postJSON(t, ts.URL+"/v1/clusters", tracedClusterJSON)
	if status != http.StatusOK {
		t.Fatalf("POST status = %d", status)
	}
	id, _ := run["id"].(string)
	explainURL := fmt.Sprintf("%s/v1/runs/%s/explain", ts.URL, id)

	// No ?vm: the VM list and summary.
	status, body := getBody(t, explainURL)
	if status != http.StatusOK {
		t.Fatalf("GET explain = %d: %s", status, body)
	}
	if !bytes.Contains(body, []byte(`"vms"`)) || !bytes.Contains(body, []byte("vm000")) {
		t.Fatalf("explain index missing vms: %s", body)
	}

	for _, q := range []string{"", "q=why", "q=rejected", "q=preempted", "q=timeline"} {
		url := explainURL + "?vm=vm000"
		if q != "" {
			url += "&" + q
		}
		status, body := getBody(t, url)
		if status != http.StatusOK {
			t.Fatalf("GET explain %s = %d: %s", q, status, body)
		}
		if !bytes.Contains(body, []byte(`"answer"`)) {
			t.Fatalf("explain %s carries no answer: %s", q, body)
		}
	}

	// The why answer must carry the per-plugin breakdown.
	status, body = getBody(t, explainURL+"?vm=vm000&q=why")
	if status != http.StatusOK || !bytes.Contains(body, []byte("filters")) {
		t.Fatalf("explain why lacks the plugin breakdown (%d): %s", status, body)
	}

	// Errors: unknown vm is 404, why-not without host and unknown q are 400.
	if status, _ := getBody(t, explainURL+"?vm=ghost"); status != http.StatusNotFound {
		t.Fatalf("explain unknown vm = %d, want 404", status)
	}
	if status, _ := getBody(t, explainURL+"?vm=vm000&q=why-not"); status != http.StatusBadRequest {
		t.Fatalf("explain why-not without host = %d, want 400", status)
	}
	if status, _ := getBody(t, explainURL+"?vm=vm000&q=frob"); status != http.StatusBadRequest {
		t.Fatalf("explain unknown q = %d, want 400", status)
	}
}

// TestScenarioTraceSpans covers the single-host path: a traced scenario
// exports domain lifecycle spans.
func TestScenarioTraceSpans(t *testing.T) {
	_, ts := testServer(t, Options{})
	traced := strings.Replace(scenarioJSON, `"scheduler": "vprobe",`,
		`"scheduler": "vprobe", "trace": true,`, 1)
	status, run := postJSON(t, ts.URL+"/v1/simulations", traced)
	if status != http.StatusOK {
		t.Fatalf("POST status = %d, body %v", status, run)
	}
	id, _ := run["id"].(string)
	status, raw := getBody(t, fmt.Sprintf("%s/v1/runs/%s/spans", ts.URL, id))
	if status != http.StatusOK {
		t.Fatalf("GET spans = %d", status)
	}
	spans, err := telemetry.ReadSpans(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[telemetry.SpanKind]bool{}
	for i := range spans {
		kinds[spans[i].Kind] = true
	}
	if !kinds[telemetry.SpanRun] || !kinds[telemetry.SpanDomain] {
		t.Fatalf("scenario spans missing run/domain kinds: %v", kinds)
	}
}

// TestUntracedRunSpans404 pins the cache-key contract around tracing: the
// trace fields are excluded from the determinism key, so a traced re-POST
// of an untraced spec hits the untraced cache entry — and its span
// endpoints answer 404 with an actionable message, not an empty stream.
func TestUntracedRunSpans404(t *testing.T) {
	_, ts := testServer(t, Options{})
	status, run := postJSON(t, ts.URL+"/v1/clusters", clusterJSON)
	if status != http.StatusOK {
		t.Fatalf("POST status = %d", status)
	}
	id, _ := run["id"].(string)
	for _, path := range []string{"spans", "explain"} {
		status, body := getBody(t, fmt.Sprintf("%s/v1/runs/%s/%s", ts.URL, id, path))
		if status != http.StatusNotFound {
			t.Fatalf("GET %s on untraced run = %d, want 404", path, status)
		}
		if !bytes.Contains(body, []byte(`\"trace\": true`)) {
			t.Fatalf("%s 404 lacks the actionable hint: %s", path, body)
		}
	}

	// Same spec with trace on: cache hit, still the untraced entry.
	status, second := postJSON(t, ts.URL+"/v1/clusters", tracedClusterJSON)
	if status != http.StatusOK {
		t.Fatalf("traced re-POST status = %d", status)
	}
	if cached, _ := second["cached"].(bool); !cached {
		t.Fatal("trace flag changed the cache key")
	}
	id2, _ := second["id"].(string)
	if id2 != id {
		t.Fatalf("traced re-POST ran fresh: %s vs %s", id2, id)
	}
	if status, _ := getBody(t, fmt.Sprintf("%s/v1/runs/%s/spans", ts.URL, id2)); status != http.StatusNotFound {
		t.Fatalf("cache-hit spans = %d, want 404 (cached result was untraced)", status)
	}
}
