package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"vprobe/internal/spec"
	"vprobe/internal/telemetry"
)

// decodeSpec reads and decodes a request body into dst, enforcing the
// body cap and rejecting unknown fields so typos fail loudly instead of
// silently running the default scenario.
func (s *Server) decodeSpec(w http.ResponseWriter, r *http.Request, dst any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("%w: %v", spec.ErrInvalid, err) //vet:nowrap decode errors carry no sentinel worth chaining
	}
	if dec.More() {
		return fmt.Errorf("%w: trailing data after spec", spec.ErrInvalid)
	}
	return nil
}

// handleSimulations accepts a ScenarioV1 and runs it. Synchronous by
// default: the response is the completed run, and closing the request
// aborts the simulation and frees its worker slot. ?async=1 answers 202
// immediately with the run ID for polling.
func (s *Server) handleSimulations(w http.ResponseWriter, r *http.Request) {
	var sp spec.ScenarioV1
	if err := s.decodeSpec(w, r, &sp); err != nil {
		writeError(w, err)
		return
	}
	if err := sp.Validate(); err != nil {
		writeError(w, err)
		return
	}
	s.dispatch(w, r, "scenario", sp.Key(), s.scenarioBody(sp.Normalize()))
}

// handleClusters is handleSimulations for ClusterV1 specs.
func (s *Server) handleClusters(w http.ResponseWriter, r *http.Request) {
	var sp spec.ClusterV1
	if err := s.decodeSpec(w, r, &sp); err != nil {
		writeError(w, err)
		return
	}
	if err := sp.Validate(); err != nil {
		writeError(w, err)
		return
	}
	s.dispatch(w, r, "cluster", sp.Key(), s.clusterBody(sp.Normalize()))
}

// dispatch answers a validated POST: from the cache when the canonical
// key has already completed, otherwise by executing the body — inline for
// sync requests, on a fresh goroutine rooted in the server's BaseContext
// for ?async=1.
func (s *Server) dispatch(w http.ResponseWriter, r *http.Request, kind, key string, body func(ctx context.Context, rn *Run) error) {
	if rn, ok := s.runs.lookup(key); ok {
		s.metrics.inc(s.metrics.cacheHit)
		resp := rn.snapshot()
		resp["cached"] = true
		writeJSON(w, http.StatusOK, resp)
		return
	}
	s.metrics.inc(s.metrics.cacheMiss)
	rn := s.runs.create(kind, key)
	if r.URL.Query().Get("async") == "1" {
		go s.execute(s.opts.BaseContext, rn, body)
		writeJSON(w, http.StatusAccepted, rn.snapshot())
		return
	}
	s.execute(r.Context(), rn, body)
	rn.mu.Lock()
	status := http.StatusOK
	if rn.state != StateDone {
		status = rn.status
		if status == 0 {
			status = http.StatusInternalServerError
		}
	}
	rn.mu.Unlock()
	writeJSON(w, status, rn.snapshot())
}

// runFromPath resolves the {id} wildcard; a nil return means the 404 has
// been written.
func (s *Server) runFromPath(w http.ResponseWriter, r *http.Request) *Run {
	id := r.PathValue("id")
	rn, ok := s.runs.get(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]any{
			"error":  fmt.Sprintf("serve: no run %q", id),
			"status": http.StatusNotFound,
		})
		return nil
	}
	return rn
}

// handleRunGet reports a run's state and, once done, its result.
func (s *Server) handleRunGet(w http.ResponseWriter, r *http.Request) {
	rn := s.runFromPath(w, r)
	if rn == nil {
		return
	}
	writeJSON(w, http.StatusOK, rn.snapshot())
}

// handleRunCancel aborts a live run; cancelling a finished run is a 409.
func (s *Server) handleRunCancel(w http.ResponseWriter, r *http.Request) {
	rn := s.runFromPath(w, r)
	if rn == nil {
		return
	}
	if !rn.requestCancel() {
		writeJSON(w, http.StatusConflict, map[string]any{
			"error":  fmt.Sprintf("serve: run %s already finished", rn.ID),
			"status": http.StatusConflict,
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": rn.ID, "cancelling": true})
}

// handleRunEvents streams the run's JSONL event log. For a live run it
// follows: bytes are flushed as the simulation emits them, and the stream
// ends when the run reaches a terminal state or the client disconnects.
func (s *Server) handleRunEvents(w http.ResponseWriter, r *http.Request) {
	rn := s.runFromPath(w, r)
	if rn == nil {
		return
	}
	w.Header().Set("Content-Type", "application/jsonl")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	// Wake the follower loop when the client goes away; without this a
	// disconnected follower would sleep on the cond until the next event.
	stop := context.AfterFunc(r.Context(), func() { rn.cond.Broadcast() })
	defer stop()

	offset := 0
	for {
		rn.mu.Lock()
		for len(rn.events) == offset && !rn.state.Terminal() && r.Context().Err() == nil {
			rn.cond.Wait()
		}
		chunk := rn.events[offset:]
		offset = len(rn.events)
		terminal := rn.state.Terminal()
		rn.mu.Unlock()

		if r.Context().Err() != nil {
			return
		}
		if len(chunk) > 0 {
			if _, err := w.Write(chunk); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if terminal && len(chunk) == 0 {
			return
		}
	}
}

// handleRunSpans streams the run's span flight recorder: the JSONL span
// stream by default (vprobe-explain's input format), Chrome trace-event
// JSON with ?format=chrome. Runs whose spec did not set trace answer 404
// — including cache hits, where the cached result was recorded without
// tracing (the canonical key zeroes the trace fields).
func (s *Server) handleRunSpans(w http.ResponseWriter, r *http.Request) {
	rn := s.runFromPath(w, r)
	if rn == nil {
		return
	}
	contentType := "application/jsonl"
	pick := func(rn *Run) []byte { return rn.spans }
	switch r.URL.Query().Get("format") {
	case "", "jsonl":
	case "chrome":
		contentType = "application/json"
		pick = func(rn *Run) []byte { return rn.chrome }
	default:
		writeError(w, fmt.Errorf("%w: format %q (have jsonl, chrome)",
			spec.ErrInvalid, r.URL.Query().Get("format")))
		return
	}
	rn.mu.Lock()
	state, traced, body := rn.state, rn.traced, pick(rn)
	rn.mu.Unlock()
	if state != StateDone {
		writeJSON(w, http.StatusConflict, map[string]any{
			"error":  fmt.Sprintf("serve: run %s is %s, artifacts exist once done", rn.ID, state),
			"status": http.StatusConflict,
		})
		return
	}
	if !traced {
		writeJSON(w, http.StatusNotFound, map[string]any{
			"error":  fmt.Sprintf("serve: run %s recorded no spans; POST the spec with \"trace\": true", rn.ID),
			"status": http.StatusNotFound,
		})
		return
	}
	w.Header().Set("Content-Type", contentType)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

// handleRunExplain answers placement provenance queries over a traced
// run's recorded spans: ?vm=NAME with q=why (default: why did the VM land
// where it did), q=why-not&host=H (why was H not chosen), q=rejected,
// q=preempted, or q=timeline (the VM's full span timeline). Without ?vm
// it lists the recorded VMs and a span summary.
func (s *Server) handleRunExplain(w http.ResponseWriter, r *http.Request) {
	rn := s.runFromPath(w, r)
	if rn == nil {
		return
	}
	rn.mu.Lock()
	state, traced, body := rn.state, rn.traced, rn.spans
	rn.mu.Unlock()
	if state != StateDone {
		writeJSON(w, http.StatusConflict, map[string]any{
			"error":  fmt.Sprintf("serve: run %s is %s, artifacts exist once done", rn.ID, state),
			"status": http.StatusConflict,
		})
		return
	}
	if !traced {
		writeJSON(w, http.StatusNotFound, map[string]any{
			"error":  fmt.Sprintf("serve: run %s recorded no spans; POST the spec with \"trace\": true", rn.ID),
			"status": http.StatusNotFound,
		})
		return
	}
	spans, err := telemetry.ReadSpans(bytes.NewReader(body))
	if err != nil {
		writeError(w, err)
		return
	}
	ix := telemetry.NewSpanIndex(spans)
	q := r.URL.Query()
	vm, query := q.Get("vm"), q.Get("q")
	if vm == "" {
		writeJSON(w, http.StatusOK, map[string]any{
			"run":     rn.ID,
			"vms":     ix.VMs(),
			"summary": ix.Summary(),
		})
		return
	}
	var answer string
	switch query {
	case "", "why":
		query = "why"
		answer, err = ix.ExplainWhy(vm)
	case "why-not":
		host := q.Get("host")
		if host == "" {
			writeError(w, fmt.Errorf("%w: q=why-not needs a host parameter", spec.ErrInvalid))
			return
		}
		answer, err = ix.ExplainWhyNot(vm, host)
	case "rejected":
		answer, err = ix.ExplainRejected(vm)
	case "preempted":
		answer, err = ix.ExplainPreempted(vm)
	case "timeline":
		answer, err = ix.ExplainVM(vm)
	default:
		writeError(w, fmt.Errorf("%w: q %q (have why, why-not, rejected, preempted, timeline)",
			spec.ErrInvalid, query))
		return
	}
	if err != nil {
		writeJSON(w, http.StatusNotFound, map[string]any{
			"error":  err.Error(),
			"status": http.StatusNotFound,
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"run":    rn.ID,
		"vm":     vm,
		"q":      query,
		"answer": answer,
	})
}

// handleRunTelemetry serves the run's metric time series as JSONL.
func (s *Server) handleRunTelemetry(w http.ResponseWriter, r *http.Request) {
	s.serveArtifact(w, r, "application/jsonl", func(rn *Run) []byte { return rn.telemetry })
}

// handleRunMetrics serves the run's final metric values as Prometheus
// text exposition.
func (s *Server) handleRunMetrics(w http.ResponseWriter, r *http.Request) {
	s.serveArtifact(w, r, "text/plain; version=0.0.4", func(rn *Run) []byte { return rn.prom })
}

// serveArtifact writes a completed run's rendered artifact; runs that are
// not done yet answer 409 so clients learn to poll /v1/runs/{id} first.
func (s *Server) serveArtifact(w http.ResponseWriter, r *http.Request, contentType string, pick func(*Run) []byte) {
	rn := s.runFromPath(w, r)
	if rn == nil {
		return
	}
	rn.mu.Lock()
	state := rn.state
	body := pick(rn)
	rn.mu.Unlock()
	if state != StateDone {
		writeJSON(w, http.StatusConflict, map[string]any{
			"error":  fmt.Sprintf("serve: run %s is %s, artifacts exist once done", rn.ID, state),
			"status": http.StatusConflict,
		})
		return
	}
	w.Header().Set("Content-Type", contentType)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

// handleCapacity answers the planning question "can this fleet absorb a
// demand spike?" by running the described cluster twice — at the baseline
// arrival rate and at rate*factor — and comparing rejection rates against
// the allowed ceiling. Both runs flow through the result cache, so
// repeated what-ifs over the same fleet are free.
func (s *Server) handleCapacity(w http.ResponseWriter, r *http.Request) {
	base, factor, maxRejection, err := capacityQuery(r)
	if err != nil {
		writeError(w, err)
		return
	}
	if err := base.Validate(); err != nil {
		writeError(w, err)
		return
	}
	scaled := base
	scaled.ArrivalsPerSecond = base.ArrivalsPerSecond * factor

	type leg struct {
		Rate          float64 `json:"arrivals_per_second"`
		RunID         string  `json:"run_id"`
		Cached        bool    `json:"cached"`
		RejectionRate float64 `json:"rejection_rate"`
		Utilization   float64 `json:"utilization"`
	}
	runLeg := func(sp spec.ClusterV1) (leg, error) {
		l := leg{Rate: sp.ArrivalsPerSecond}
		rn, ok := s.runs.lookup(sp.Key())
		if ok {
			s.metrics.inc(s.metrics.cacheHit)
			l.Cached = true
		} else {
			s.metrics.inc(s.metrics.cacheMiss)
			rn = s.runs.create("cluster", sp.Key())
			s.execute(r.Context(), rn, s.clusterBody(sp.Normalize()))
		}
		rn.mu.Lock()
		defer rn.mu.Unlock()
		l.RunID = rn.ID
		if rn.state != StateDone {
			return l, fmt.Errorf("serve: capacity leg %s: %s", rn.ID, rn.err)
		}
		sum, ok := rn.summary.(map[string]any)
		if !ok {
			return l, fmt.Errorf("serve: capacity leg %s has no cluster summary", rn.ID)
		}
		l.RejectionRate, _ = sum["rejection_rate"].(float64)
		l.Utilization, _ = sum["utilization"].(float64)
		return l, nil
	}

	baseLeg, err := runLeg(base)
	if err != nil {
		writeError(w, err)
		return
	}
	scaledLeg, err := runLeg(scaled)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"factor":             factor,
		"max_rejection_rate": maxRejection,
		"baseline":           baseLeg,
		"scaled":             scaledLeg,
		"absorbs":            scaledLeg.RejectionRate <= maxRejection,
	})
}

// capacityQuery builds the baseline ClusterV1 from query parameters.
func capacityQuery(r *http.Request) (base spec.ClusterV1, factor, maxRejection float64, err error) {
	q := r.URL.Query()
	factor, maxRejection = 1.2, 0.05
	base = spec.ClusterV1{
		Topology:  q.Get("topology"),
		Scheduler: q.Get("sched"),
		Policy:    q.Get("policy"),
		Mix:       q.Get("mix"),
	}
	var perr error
	fail := func(key string) (spec.ClusterV1, float64, float64, error) {
		return base, factor, maxRejection,
			fmt.Errorf("%w: query %s: %v", spec.ErrInvalid, key, perr) //vet:nowrap strconv errors carry no sentinel worth chaining
	}
	floats := []struct {
		key string
		dst *float64
	}{
		{"rate", &base.ArrivalsPerSecond},
		{"factor", &factor},
		{"max_rejection", &maxRejection},
	}
	for _, p := range floats {
		if v := q.Get(p.key); v != "" {
			if *p.dst, perr = strconv.ParseFloat(v, 64); perr != nil {
				return fail(p.key)
			}
		}
	}
	ints := []struct {
		key string
		dst *int
	}{
		{"hosts", &base.Hosts},
		{"workers", &base.Workers},
	}
	for _, p := range ints {
		if v := q.Get(p.key); v != "" {
			if *p.dst, perr = strconv.Atoi(v); perr != nil {
				return fail(p.key)
			}
		}
	}
	if v := q.Get("seed"); v != "" {
		if base.Seed, perr = strconv.ParseUint(v, 10, 64); perr != nil {
			return fail("seed")
		}
	}
	durs := []struct {
		key string
		dst *spec.Duration
	}{
		{"lifetime", &base.MeanLifetime},
		{"horizon", &base.Horizon},
	}
	for _, p := range durs {
		if v := q.Get(p.key); v != "" {
			if perr = p.dst.UnmarshalJSON([]byte(strconv.Quote(v))); perr != nil {
				return fail(p.key)
			}
		}
	}
	if factor <= 0 {
		return base, factor, maxRejection, fmt.Errorf("%w: factor must be positive", spec.ErrInvalid)
	}
	return base, factor, maxRejection, nil
}
