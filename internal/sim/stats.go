package sim

import (
	"math"
	"sort"
)

// Summary accumulates streaming summary statistics (Welford's algorithm)
// without storing samples.
type Summary struct {
	n          int64
	mean, m2   float64
	min, max   float64
	total      float64
	hasSamples bool
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	s.n++
	s.total += x
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
	if !s.hasSamples || x < s.min {
		s.min = x
	}
	if !s.hasSamples || x > s.max {
		s.max = x
	}
	s.hasSamples = true
}

// N returns the number of observations.
func (s *Summary) N() int64 { return s.n }

// Mean returns the arithmetic mean, or 0 with no observations.
func (s *Summary) Mean() float64 { return s.mean }

// Sum returns the total of all observations.
func (s *Summary) Sum() float64 { return s.total }

// Min returns the smallest observation, or 0 with no observations.
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation, or 0 with no observations.
func (s *Summary) Max() float64 { return s.max }

// Variance returns the sample variance, or 0 with fewer than two samples.
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Stddev returns the sample standard deviation.
func (s *Summary) Stddev() float64 { return math.Sqrt(s.Variance()) }

// Quantile returns the q-th quantile (0 <= q <= 1) of xs by linear
// interpolation. It copies and sorts xs; the input is not modified.
// It returns 0 for an empty slice.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of xs; non-positive values and empty
// input yield 0.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// Clamp bounds v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
