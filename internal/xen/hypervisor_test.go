package xen_test

import (
	"math"
	"testing"

	"vprobe/internal/mem"
	"vprobe/internal/numa"
	"vprobe/internal/sched"
	"vprobe/internal/sim"
	"vprobe/internal/workload"
	"vprobe/internal/xen"
)

func newHV(t *testing.T, kind sched.Kind) *xen.Hypervisor {
	t.Helper()
	return xen.New(numa.XeonE5620(), sched.MustNew(kind), xen.DefaultConfig())
}

// runBatch builds one domain with n instances of app, runs to completion,
// and returns the hypervisor and finish time of the last instance.
func runBatch(t *testing.T, kind sched.Kind, app *workload.Profile, n int) (*xen.Hypervisor, sim.Time) {
	t.Helper()
	h := newHV(t, kind)
	d, err := h.CreateDomain("vm1", 4096, n, mem.PolicyStripe)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := h.AttachApp(d, i, app.Clone()); err != nil {
			t.Fatal(err)
		}
	}
	h.WatchDomains(d)
	end := h.Run(sim.Duration(10 * 60 * sim.Second))
	if !d.AllDone() {
		t.Fatalf("domain not done at %v", end)
	}
	var last sim.Time
	for _, v := range d.VCPUs {
		if v.FinishTime > last {
			last = v.FinishTime
		}
	}
	return h, last
}

func TestSingleAppCompletes(t *testing.T) {
	app := workload.Povray().Scale(0.02) // 4.8e8 instructions
	h, finish := runBatch(t, sched.KindCredit, app, 1)
	// Solo povray: CPI ~ BaseCPI (negligible memory), so runtime is
	// roughly instr * CPI / clock.
	wantSec := app.TotalInstructions * 0.86 / (2.4e9)
	got := finish.Seconds()
	if got < wantSec*0.9 || got > wantSec*1.3 {
		t.Fatalf("finish = %vs, analytic estimate %vs", got, wantSec)
	}
	v := h.Domains[0].VCPUs[0]
	if v.Counters.Instructions < app.TotalInstructions*0.999 {
		t.Fatalf("counters report %v instructions, want ~%v",
			v.Counters.Instructions, app.TotalInstructions)
	}
}

func TestParallelSpeedup(t *testing.T) {
	app := workload.Povray().Scale(0.02)
	_, solo := runBatch(t, sched.KindCredit, app, 1)
	_, four := runBatch(t, sched.KindCredit, app, 4)
	// Four compute-bound instances on 8 PCPUs: near-ideal parallelism.
	if float64(four) > float64(solo)*1.25 {
		t.Fatalf("4-way run %v took much longer than solo %v", four, solo)
	}
}

func TestOvercommitFairness(t *testing.T) {
	app := workload.Povray().Scale(0.02)
	_, solo := runBatch(t, sched.KindCredit, app, 1)
	h, sixteen := runBatch(t, sched.KindCredit, app, 16)
	// 16 identical VCPUs on 8 PCPUs: ~2x solo runtime.
	ratio := float64(sixteen) / float64(solo)
	if ratio < 1.7 || ratio > 2.6 {
		t.Fatalf("overcommit ratio = %v, want ~2", ratio)
	}
	// Fairness: finish times are clustered.
	var min, max sim.Time
	for _, v := range h.Domains[0].VCPUs {
		if min == 0 || v.FinishTime < min {
			min = v.FinishTime
		}
		if v.FinishTime > max {
			max = v.FinishTime
		}
	}
	if float64(max)/float64(min) > 1.3 {
		t.Fatalf("unfair finishes: min=%v max=%v", min, max)
	}
}

func TestWorkConservation(t *testing.T) {
	// With more runnable VCPUs than PCPUs, no PCPU idles while work
	// waits: total busy time ~= horizon * numPCPUs.
	h := newHV(t, sched.KindCredit)
	d, _ := h.CreateDomain("vm1", 2048, 16, mem.PolicyStripe)
	for i := 0; i < 16; i++ {
		h.AttachApp(d, i, workload.Hungry())
	}
	h.Run(5 * sim.Second)
	busy := h.TotalBusyTime().Seconds()
	want := 5.0 * 8
	if busy < want*0.97 {
		t.Fatalf("busy = %vs, want ~%vs (idling with runnable work)", busy, want)
	}
}

func TestCountersMatchOutcomes(t *testing.T) {
	app := workload.Soplex().Scale(0.01)
	h, _ := runBatch(t, sched.KindCredit, app, 2)
	for _, v := range h.Domains[0].VCPUs {
		c := v.Counters
		if c.LLCMiss > c.LLCRef {
			t.Fatal("misses exceed references")
		}
		var nodeSum float64
		for _, x := range c.Node {
			nodeSum += x
		}
		if math.Abs(nodeSum-c.LLCMiss) > 1e-6*c.LLCMiss {
			t.Fatalf("node accesses %v != misses %v", nodeSum, c.LLCMiss)
		}
		if c.Remote > nodeSum {
			t.Fatal("remote exceeds total accesses")
		}
	}
}

func TestPinnedVCPUNeverMoves(t *testing.T) {
	h := newHV(t, sched.KindCredit)
	d, _ := h.CreateDomain("vm1", 2048, 2, mem.PolicyStripe)
	pinned, _ := h.AttachApp(d, 0, workload.Milc().Scale(0.01))
	h.AttachApp(d, 1, workload.Hungry())
	if err := h.Pin(pinned, 5); err != nil {
		t.Fatal(err)
	}
	if err := h.Pin(pinned, 99); err == nil {
		t.Fatal("invalid pin accepted")
	}
	h.WatchDomains(d)
	h.Run(60 * sim.Second)
	if !pinned.Done {
		t.Fatal("pinned app did not finish")
	}
	if pinned.Migrations != 0 || pinned.NodeMoves != 0 {
		t.Fatalf("pinned VCPU moved: migrations=%d nodeMoves=%d",
			pinned.Migrations, pinned.NodeMoves)
	}
	if pinned.StartNode != h.Top.NodeOf(5) {
		t.Fatalf("start node = %v", pinned.StartNode)
	}
}

func TestCreditStealingMigratesAcrossNodes(t *testing.T) {
	// Overcommitted Credit: VCPUs bounce between sockets (the paper's
	// §II-B premise).
	app := workload.LU().Scale(0.02)
	h, _ := runBatch(t, sched.KindCredit, app, 12)
	moves := 0
	for _, v := range h.Domains[0].VCPUs {
		moves += v.NodeMoves
	}
	if moves == 0 {
		t.Fatal("no cross-node migrations under overcommitted Credit")
	}
}

func TestDeterminism(t *testing.T) {
	app := workload.MCF().Scale(0.01)
	_, a := runBatch(t, sched.KindVProbe, app, 6)
	_, b := runBatch(t, sched.KindVProbe, app, 6)
	if a != b {
		t.Fatalf("same-seed runs differ: %v vs %v", a, b)
	}
}

func TestVProbeAnalyzerClassifies(t *testing.T) {
	h := newHV(t, sched.KindVProbe)
	d, _ := h.CreateDomain("vm1", 4096, 3, mem.PolicyStripe)
	thrasher, _ := h.AttachApp(d, 0, workload.Libquantum())
	fitting, _ := h.AttachApp(d, 1, workload.LU())
	friendly, _ := h.AttachApp(d, 2, workload.Povray())
	h.Run(3 * sim.Second) // a few sampling periods
	if thrasher.Type.String() != "LLC-T" {
		t.Fatalf("libquantum classified %v (pressure %.2f)", thrasher.Type, thrasher.LLCPressure)
	}
	if fitting.Type.String() != "LLC-FI" {
		t.Fatalf("lu classified %v (pressure %.2f)", fitting.Type, fitting.LLCPressure)
	}
	if friendly.Type.String() != "LLC-FR" {
		t.Fatalf("povray classified %v (pressure %.2f)", friendly.Type, friendly.LLCPressure)
	}
	if thrasher.NodeAffinity == numa.NoNode {
		t.Fatal("no affinity derived for a memory-intensive VCPU")
	}
}

func TestVProbeOverheadAccounted(t *testing.T) {
	h := newHV(t, sched.KindVProbe)
	d, _ := h.CreateDomain("vm1", 4096, 2, mem.PolicyStripe)
	h.AttachApp(d, 0, workload.Soplex())
	h.AttachApp(d, 1, workload.Soplex())
	h.Run(10 * sim.Second)
	f := h.OverheadFraction()
	if f <= 0 {
		t.Fatal("vProbe reported zero overhead")
	}
	if f > 0.001 {
		t.Fatalf("overhead fraction %v, want < 0.1%% (paper Table III)", f)
	}
}

func TestCreditHasNoSamplingOverhead(t *testing.T) {
	h := newHV(t, sched.KindCredit)
	d, _ := h.CreateDomain("vm1", 4096, 2, mem.PolicyStripe)
	h.AttachApp(d, 0, workload.Soplex())
	h.AttachApp(d, 1, workload.Soplex())
	h.Run(5 * sim.Second)
	if h.SampleOverhead != 0 {
		t.Fatalf("Credit accumulated sampling overhead %v", h.SampleOverhead)
	}
}

func TestDomainCreationErrors(t *testing.T) {
	h := newHV(t, sched.KindCredit)
	if _, err := h.CreateDomain("bad", 1024, 0, mem.PolicyStripe); err == nil {
		t.Fatal("zero VCPUs accepted")
	}
	if _, err := h.CreateDomain("big", 1<<30, 1, mem.PolicyStripe); err == nil {
		t.Fatal("oversized memory accepted")
	}
	d, err := h.CreateDomain("ok", 1024, 2, mem.PolicyFill)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.AttachApp(d, 5, workload.Povray()); err == nil {
		t.Fatal("out-of-range VCPU index accepted")
	}
	if _, err := h.AttachApp(d, 0, &workload.Profile{}); err == nil {
		t.Fatal("invalid profile accepted")
	}
	if _, err := h.AttachApp(d, 0, workload.Povray()); err != nil {
		t.Fatal(err)
	}
	if _, err := h.AttachApp(d, 0, workload.Povray()); err == nil {
		t.Fatal("double attach accepted")
	}
	h.Run(sim.Millisecond)
	if _, err := h.CreateDomain("late", 1024, 1, mem.PolicyFill); err == nil {
		t.Fatal("CreateDomain after Start accepted")
	}
}

func TestGuestIdleVCPUsNeverRun(t *testing.T) {
	h := newHV(t, sched.KindCredit)
	d, _ := h.CreateDomain("vm1", 4096, 8, mem.PolicyStripe)
	for i := 0; i < 4; i++ {
		h.AttachApp(d, i, workload.Hungry())
	}
	h.Run(2 * sim.Second)
	for i := 4; i < 8; i++ {
		v := d.VCPUs[i]
		if v.RunTime != 0 || v.State != xen.StateBlocked {
			t.Fatalf("idle VCPU %d ran (%v, state %v)", i, v.RunTime, v.State)
		}
	}
}

func TestMigrateToNode(t *testing.T) {
	h := newHV(t, sched.KindCredit)
	d, _ := h.CreateDomain("vm1", 2048, 10, mem.PolicyStripe)
	for i := 0; i < 10; i++ {
		h.AttachApp(d, i, workload.Hungry())
	}
	h.Run(100 * sim.Millisecond)
	// Find a queued VCPU and force it to the other node.
	var v *xen.VCPU
	for _, cand := range d.VCPUs {
		if cand.State == xen.StateRunnable {
			v = cand
			break
		}
	}
	if v == nil {
		t.Skip("no queued VCPU at this instant")
	}
	from := h.Top.NodeOf(v.OnPCPU)
	target := numa.NodeID(1 - int(from))
	h.MigrateToNode(v, target)
	if h.Top.NodeOf(v.OnPCPU) != target {
		t.Fatalf("queued VCPU not migrated: on node %v", h.Top.NodeOf(v.OnPCPU))
	}
	// Invalid node: no-op.
	h.MigrateToNode(v, numa.NodeID(9))
	if h.Top.NodeOf(v.OnPCPU) != target {
		t.Fatal("invalid node migration moved the VCPU")
	}
}

func TestStartTwiceFails(t *testing.T) {
	h := newHV(t, sched.KindCredit)
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	if err := h.Start(); err == nil {
		t.Fatal("second Start accepted")
	}
}

func TestServerVCPURunsIndefinitely(t *testing.T) {
	h := newHV(t, sched.KindCredit)
	d, _ := h.CreateDomain("vm1", 4096, 1, mem.PolicyStripe)
	v, _ := h.AttachApp(d, 0, workload.Memcached(64))
	h.Run(3 * sim.Second)
	if v.Done {
		t.Fatal("server marked done")
	}
	if v.RequestsServed() <= 0 {
		t.Fatal("server served nothing")
	}
}

func TestPageMigrationExtension(t *testing.T) {
	mk := func(migrate bool) *xen.VCPU {
		cfg := xen.DefaultConfig()
		// Keep first-touch from re-settling the manually imposed layout.
		cfg.FirstTouchDelay = 10 * 60 * sim.Second
		h := xen.New(numa.XeonE5620(), sched.MustNew(sched.KindCredit), cfg)
		if migrate {
			h.Migrator = mem.DefaultMigrator()
		}
		d, _ := h.CreateDomain("vm1", 4096, 1, mem.PolicyStripe)
		v, _ := h.AttachApp(d, 0, workload.Libquantum().Scale(0.05))
		h.Pin(v, 0)
		// Pages deliberately remote.
		h.WatchDomains(d)
		h.Start()
		v.PageDist = mem.Dist{0.1, 0.9}
		h.Run(120 * sim.Second)
		return v
	}
	plain := mk(false)
	migrated := mk(true)
	if !plain.Done || !migrated.Done {
		t.Fatal("apps did not finish")
	}
	if migrated.PageDist[0] <= plain.PageDist[0] {
		t.Fatalf("page migration did not localize pages: %v vs %v",
			migrated.PageDist, plain.PageDist)
	}
	remotePlain := plain.Counters.Remote / plain.Counters.Total()
	remoteMigrated := migrated.Counters.Remote / migrated.Counters.Total()
	if remoteMigrated >= remotePlain {
		t.Fatalf("page migration did not reduce remote ratio: %v vs %v",
			remoteMigrated, remotePlain)
	}
}
