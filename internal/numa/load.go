package numa

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// FileConfig is the JSON schema for user-supplied topologies, mirroring
// Config with lower-camel keys. Example:
//
//	{
//	  "name": "my-box",
//	  "nodes": 2,
//	  "cpusPerNode": 8,
//	  "memoryPerNodeMB": 65536,
//	  "imcBandwidthGBs": 40,
//	  "llcSizeKB": 32768,
//	  "clockGHz": 3.0,
//	  "localMemLatencyNS": 80,
//	  "remoteMemLatencyNS": 140,
//	  "llcHitLatencyNS": 14,
//	  "linkBandwidthGTs": 9.6,
//	  "linksPerPair": 1
//	}
type FileConfig struct {
	Name               string  `json:"name"`
	Nodes              int     `json:"nodes"`
	CPUsPerNode        int     `json:"cpusPerNode"`
	MemoryPerNodeMB    int64   `json:"memoryPerNodeMB"`
	IMCBandwidthGBs    float64 `json:"imcBandwidthGBs"`
	LLCSizeKB          int64   `json:"llcSizeKB"`
	ClockGHz           float64 `json:"clockGHz"`
	LocalMemLatencyNS  float64 `json:"localMemLatencyNS"`
	RemoteMemLatencyNS float64 `json:"remoteMemLatencyNS"`
	LLCHitLatencyNS    float64 `json:"llcHitLatencyNS"`
	LinkBandwidthGTs   float64 `json:"linkBandwidthGTs"`
	LinksPerPair       int     `json:"linksPerPair"`
}

// toConfig converts the JSON form to the builder's Config.
func (fc FileConfig) toConfig() Config {
	return Config{
		Name:               fc.Name,
		Nodes:              fc.Nodes,
		CPUsPerNode:        fc.CPUsPerNode,
		MemoryPerNodeMB:    fc.MemoryPerNodeMB,
		IMCBandwidthGBs:    fc.IMCBandwidthGBs,
		LLCSizeKB:          fc.LLCSizeKB,
		ClockGHz:           fc.ClockGHz,
		LocalMemLatencyNS:  fc.LocalMemLatencyNS,
		RemoteMemLatencyNS: fc.RemoteMemLatencyNS,
		LLCHitLatencyNS:    fc.LLCHitLatencyNS,
		LinkBandwidthGTs:   fc.LinkBandwidthGTs,
		LinksPerPair:       fc.LinksPerPair,
	}
}

// Decode reads a topology configuration from JSON and builds it.
func Decode(r io.Reader) (*Topology, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var fc FileConfig
	if err := dec.Decode(&fc); err != nil {
		return nil, fmt.Errorf("numa: decode topology: %w", err)
	}
	top, err := New(fc.toConfig())
	if err != nil {
		return nil, err
	}
	return top, nil
}

// LoadFile builds a topology from a JSON file.
func LoadFile(path string) (*Topology, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Decode(f)
}

// Export renders a topology back to the JSON file schema, so presets can
// be dumped, edited, and reloaded through LoadFile. Topologies built by
// New are homogeneous (same memory, cache, and link spec everywhere), so
// the round trip Export -> Decode reproduces the topology exactly.
func Export(t *Topology) FileConfig {
	fc := FileConfig{
		Name:               t.name,
		Nodes:              len(t.nodes),
		CPUsPerNode:        len(t.cpuNode) / len(t.nodes),
		MemoryPerNodeMB:    t.nodes[0].MemoryMB,
		IMCBandwidthGBs:    t.nodes[0].IMCBandwidthGBs,
		LLCSizeKB:          t.nodes[0].LLCSizeKB,
		ClockGHz:           t.clockGHz,
		LocalMemLatencyNS:  t.localMemLatencyNS,
		RemoteMemLatencyNS: t.remoteMemLatencyNS,
		LLCHitLatencyNS:    t.llcHitLatencyNS,
	}
	if len(t.links) > 0 {
		fc.LinkBandwidthGTs = t.links[0].BandwidthGTs
		first := t.links[0]
		for _, l := range t.links {
			if l.A == first.A && l.B == first.B {
				fc.LinksPerPair++
			}
		}
	}
	return fc
}

// AvailableMB is the from-scratch Gudkov-style available-space
// computation: the memory a VM allowed to span at most maxSplit NUMA
// nodes can actually use, i.e. the sum of the maxSplit largest entries of
// the per-node free vector. It copies and sorts, so it costs O(n log n)
// and allocates — it is the reference semantics that FreeIndex.TopSum
// reproduces incrementally, kept as the definition the randomized
// cross-check in freeindex_test.go and the cluster's -place-check shadow
// mode compare against. maxSplit below 1 is treated as 1.
func AvailableMB(freePerNodeMB []int64, maxSplit int) int64 {
	if maxSplit < 1 {
		maxSplit = 1
	}
	//vet:alloc the from-scratch fallback copies so the caller's vector stays untouched; the hot path uses FreeIndex.TopSum instead
	free := append([]int64(nil), freePerNodeMB...)
	//vet:alloc sort.Slice's interface conversion and closure live only on the fallback path
	sort.Slice(free, func(i, j int) bool { return free[i] > free[j] })
	var avail int64
	for i := 0; i < maxSplit && i < len(free); i++ {
		avail += free[i]
	}
	return avail
}

// Resolve returns a topology for a preset name or, when the name is not a
// preset, treats it as a path to a JSON topology file. This is the lookup
// the CLIs use.
func Resolve(nameOrPath string) (*Topology, error) {
	if mk, ok := Presets[nameOrPath]; ok {
		return mk(), nil
	}
	if _, err := os.Stat(nameOrPath); err == nil {
		return LoadFile(nameOrPath)
	}
	return nil, fmt.Errorf("numa: %q is neither a preset %v nor a readable file",
		nameOrPath, presetNameList())
}

func presetNameList() []string {
	names := make([]string, 0, len(Presets))
	for n := range Presets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
