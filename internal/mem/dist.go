// Package mem models guest memory placement on NUMA nodes: per-application
// page-distribution vectors, a node-capacity-aware allocator with the
// placement policies relevant to Xen 4.0.1-era behaviour, and an optional
// page-migration mechanism (the paper's §VI future work).
//
// The model is deliberately aggregate: instead of tracking individual page
// frames, each application carries a distribution vector dist[n] = fraction
// of its pages resident on node n. That is exactly the granularity the
// paper's mechanisms consume (Eq. 1 only needs per-node access counts).
package mem

import (
	"fmt"
	"math"

	"vprobe/internal/numa"
)

// Dist is a page-distribution vector over NUMA nodes; entries are fractions
// of the owner's pages resident on each node and sum to 1.
type Dist []float64

// Uniform returns an even distribution over n nodes.
func Uniform(n int) Dist {
	d := make(Dist, n)
	for i := range d {
		d[i] = 1 / float64(n)
	}
	return d
}

// Concentrated returns a distribution with all pages on the given node.
func Concentrated(n int, node numa.NodeID) Dist {
	d := make(Dist, n)
	d[node] = 1
	return d
}

// Validate reports whether the vector is a proper distribution.
func (d Dist) Validate() error {
	if len(d) == 0 {
		return fmt.Errorf("mem: empty distribution")
	}
	var sum float64
	for i, f := range d {
		if f < -1e-9 || math.IsNaN(f) || math.IsInf(f, 0) {
			return fmt.Errorf("mem: dist[%d] = %v invalid", i, f)
		}
		sum += f
	}
	if math.Abs(sum-1) > 1e-6 {
		return fmt.Errorf("mem: distribution sums to %v, want 1", sum)
	}
	return nil
}

// Clone returns an independent copy.
func (d Dist) Clone() Dist {
	return d.CloneInto(nil)
}

// CloneInto copies d into dst, reusing dst's storage when it has the
// capacity, and returns the result. dst may be nil (a fresh vector is
// allocated) but must not alias d unless identical.
//
//vprobe:hotpath
func (d Dist) CloneInto(dst Dist) Dist {
	if cap(dst) < len(d) {
		dst = make(Dist, len(d)) //vet:alloc only when the caller-owned buffer is too small; steady state passes pre-grown vectors
	}
	dst = dst[:len(d)]
	copy(dst, d)
	return dst
}

// Normalize rescales the vector in place to sum to 1; an all-zero vector
// becomes uniform.
func (d Dist) Normalize() {
	var sum float64
	for _, f := range d {
		if f > 0 {
			sum += f
		}
	}
	if sum <= 0 {
		for i := range d {
			d[i] = 1 / float64(len(d))
		}
		return
	}
	for i := range d {
		if d[i] < 0 {
			d[i] = 0
		}
		d[i] /= sum
	}
}

// LocalFraction returns the fraction of pages on the given node.
func (d Dist) LocalFraction(node numa.NodeID) float64 {
	if int(node) < 0 || int(node) >= len(d) {
		return 0
	}
	return d[node]
}

// RemoteFraction returns the fraction of pages not on the given node — the
// access-level remote ratio for a VCPU running there.
func (d Dist) RemoteFraction(node numa.NodeID) float64 {
	return 1 - d.LocalFraction(node)
}

// Home returns the node holding the plurality of pages (lowest id wins
// ties) — the ground-truth "memory node affinity" of Eq. 1.
func (d Dist) Home() numa.NodeID {
	best := 0
	for i := 1; i < len(d); i++ {
		if d[i] > d[best] {
			best = i
		}
	}
	return numa.NodeID(best)
}

// Blend returns w*a + (1-w)*b, renormalised. Used to mix a VM-wide layout
// with a first-touch concentration.
func Blend(a, b Dist, w float64) Dist {
	if len(a) != len(b) {
		panic("mem: Blend length mismatch")
	}
	w = math.Max(0, math.Min(1, w))
	out := make(Dist, len(a))
	for i := range out {
		out[i] = w*a[i] + (1-w)*b[i]
	}
	out.Normalize()
	return out
}

// ShiftToward moves fraction amount of pages from other nodes onto node,
// proportionally to where they currently are. It models page migration:
// amount is clamped to [0, 1].
func (d Dist) ShiftToward(node numa.NodeID, amount float64) {
	amount = math.Max(0, math.Min(1, amount))
	moved := 0.0
	for i := range d {
		if numa.NodeID(i) == node {
			continue
		}
		m := d[i] * amount
		d[i] -= m
		moved += m
	}
	d[node] += moved
}

// RemotePageRatio converts an access-level remote ratio r into the paper's
// Fig. 1 page-level metric: the probability that a page was touched from a
// remote node at least once during an analysis window, given k independent
// touches per page. ratio = 1 - (1-r)^k.
//
// On a two-node machine an uncorrelated schedule bounds r near 0.5, yet the
// paper reports >80% — consistent only with this page-level reading of
// "percentage of accessed pages belonging to each node"; see DESIGN.md.
func RemotePageRatio(r, touchesPerPage float64) float64 {
	r = math.Max(0, math.Min(1, r))
	if touchesPerPage < 1 {
		touchesPerPage = 1
	}
	return 1 - math.Pow(1-r, touchesPerPage)
}
