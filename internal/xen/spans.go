// Span recording for single-host runs: domain lifecycle spans (add →
// destroy, with pause/resume points) under a root run span. The cluster
// layer records its own spans on the cluster engine goroutine and leaves
// h.Spans nil on its hosts — host engines advance in parallel between
// cluster events, and the tracer is single-goroutine by design.
//
// No recording happens on the quantum hot path (dispatch/endQuantum):
// lifecycle transitions are the only hooks, so the zero-alloc guarantee
// of the benchmarked path holds with spans attached, and a nil h.Spans
// (tracing compiled in but disabled) costs one pointer test per
// lifecycle call.
package xen

import (
	"fmt"

	"vprobe/internal/telemetry"
)

// Spans is the hypervisor's span handle set (nil when tracing is off).
type Spans struct {
	h    *Hypervisor
	t    *telemetry.Tracer
	host string
	run  telemetry.SpanRef
	dom  map[*Domain]telemetry.SpanRef
}

// AttachSpans binds a tracer to h and opens the root run span. The
// optional label names the host in exported spans (cluster-style
// "hostN"); without it spans carry no host and land on the main thread
// of the Chrome export.
func AttachSpans(h *Hypervisor, t *telemetry.Tracer, label ...string) *Spans {
	host := ""
	if len(label) > 0 {
		host = label[0]
	}
	s := &Spans{h: h, t: t, host: host, dom: map[*Domain]telemetry.SpanRef{}}
	s.run = t.Begin(h.Engine.Now(), telemetry.NoSpan, telemetry.SpanRun, host, "",
		fmt.Sprintf("xen: %s, %s", h.Top.Name(), h.Policy.Name()))
	h.Spans = s
	// Domains built before attach (the common CreateDomain-then-run flow)
	// get their lifecycle spans opened retroactively at the current time.
	for _, d := range h.Domains {
		s.domainAdded(d)
	}
	return s
}

// domainAdded opens d's lifecycle span.
func (s *Spans) domainAdded(d *Domain) {
	if s == nil {
		return
	}
	ref := s.t.Begin(s.h.Engine.Now(), s.run, telemetry.SpanDomain, s.host, d.Name,
		fmt.Sprintf("domain %s", d.Name))
	s.t.SetDetail(ref, fmt.Sprintf("%d MB, %d vcpus", d.MemoryMB, len(d.VCPUs)))
	s.dom[d] = ref
}

// domainPoint records an instant lifecycle annotation under d's span.
func (s *Spans) domainPoint(d *Domain, name, detail string) {
	if s == nil {
		return
	}
	s.t.Point(s.h.Engine.Now(), s.dom[d], telemetry.SpanPoint, s.host, d.Name, name, detail)
}

// domainDestroyed closes d's lifecycle span.
func (s *Spans) domainDestroyed(d *Domain) {
	if s == nil {
		return
	}
	ref, ok := s.dom[d]
	if !ok {
		return
	}
	s.t.End(ref, s.h.Engine.Now())
	delete(s.dom, d)
}

// Close ends the run span and every still-open domain span at the
// current engine time. Safe to call on a nil receiver (tracing off) and
// after every run segment — already-closed spans are left untouched.
func (s *Spans) Close() {
	if s == nil {
		return
	}
	s.t.CloseOpen(s.h.Engine.Now())
}
