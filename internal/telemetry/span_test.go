package telemetry

import (
	"bytes"
	"strings"
	"testing"

	"vprobe/internal/sim"
)

// recordDecision records a small but complete placement decision tree on
// tr: a vm lifecycle span, a place decision with filter/score/candidate
// sub-spans, and a preemption priced by the cost model. Used by the
// determinism, round-trip, and explain tests below.
func recordDecision(tr *Tracer) {
	vm := tr.Begin(0, NoSpan, SpanVM, "", "vm1", "vm1 lifecycle")
	place := tr.Begin(sim.Time(sim.Second), vm, SpanPlace, "host0", "vm1", "place vm1")
	tr.SetScore(place, 236.67)
	f := tr.Point(sim.Time(sim.Second), place, SpanFilter, "", "vm1", "capacity",
		"admitted 2, vetoed 1; host2: out of memory")
	_ = f
	sc := tr.Point(sim.Time(sim.Second), place, SpanScore, "host0", "vm1", "numa-fit", "fits node 0")
	tr.SetScore(sc, 86.67)
	c0 := tr.Point(sim.Time(sim.Second), place, SpanCandidate, "host0", "vm1", "host0", "winner")
	tr.SetScore(c0, 236.67)
	c1 := tr.Point(sim.Time(sim.Second), place, SpanCandidate, "host1", "vm1", "host1", "runner-up")
	tr.SetScore(c1, 120)
	tr.End(place, sim.Time(sim.Second))
	pre := tr.Point(sim.Time(2*sim.Second), vm, SpanPreempt, "host0", "vm1",
		"preempt vm1", "evicted for vm9 (priority 10 > 1)")
	tr.SetCost(pre, sim.Duration(1500))
	tr.End(vm, sim.Time(3*sim.Second))
}

func TestTracerDeterministicIDs(t *testing.T) {
	a, b := NewTracer(42, 0), NewTracer(42, 0)
	recordDecision(a)
	recordDecision(b)
	as, bs := a.Spans(), b.Spans()
	if len(as) == 0 || len(as) != len(bs) {
		t.Fatalf("span counts differ: %d vs %d", len(as), len(bs))
	}
	for i := range as {
		if as[i].ID != bs[i].ID || as[i].Parent != bs[i].Parent {
			t.Fatalf("span %d: same seed produced different IDs: %x/%x vs %x/%x",
				i, as[i].ID, as[i].Parent, bs[i].ID, bs[i].Parent)
		}
	}
	other := NewTracer(43, 0)
	recordDecision(other)
	if other.Spans()[0].ID == as[0].ID {
		t.Fatal("different seeds produced the same span ID")
	}
	seen := map[uint64]bool{}
	for _, s := range as {
		if seen[s.ID] {
			t.Fatalf("duplicate span ID %x within one run", s.ID)
		}
		seen[s.ID] = true
	}
}

func TestTracerNilAndNoSpanSafe(t *testing.T) {
	var tr *Tracer
	if ref := tr.Begin(0, NoSpan, SpanVM, "", "vm", "x"); ref != NoSpan {
		t.Fatalf("nil tracer Begin returned %d, want NoSpan", ref)
	}
	tr.End(NoSpan, 0)
	tr.CloseOpen(0)
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Spans() != nil {
		t.Fatal("nil tracer should report empty state")
	}
	live := NewTracer(1, 0)
	live.SetScore(NoSpan, 1)
	live.SetCost(NoSpan, 1)
	live.SetDetail(NoSpan, "x")
	live.Note(NoSpan, "x")
	live.End(NoSpan, 0)
	if live.Len() != 0 {
		t.Fatal("decorating NoSpan must not record spans")
	}
}

func TestTracerLimitDrops(t *testing.T) {
	tr := NewTracer(1, 3)
	var last SpanRef
	for i := 0; i < 5; i++ {
		last = tr.Begin(sim.Time(i), NoSpan, SpanPoint, "", "", "p")
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}
	if tr.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", tr.Dropped())
	}
	if last != NoSpan {
		t.Fatalf("over-limit Begin returned %d, want NoSpan", last)
	}
}

func TestTracerCloseOpen(t *testing.T) {
	tr := NewTracer(1, 0)
	ref := tr.Begin(sim.Time(10), NoSpan, SpanDomain, "host0", "vm1", "vm1")
	tr.CloseOpen(sim.Time(99))
	s := tr.Spans()[0]
	if s.End != sim.Time(99) {
		t.Fatalf("CloseOpen end = %d, want 99", s.End)
	}
	// Explicit End after CloseOpen must not reopen or move the span.
	tr.End(ref, sim.Time(500))
	if tr.Spans()[0].End != sim.Time(99) {
		t.Fatal("End after close moved the span")
	}
}

func TestSpanJSONLRoundTrip(t *testing.T) {
	tr := NewTracer(7, 0)
	recordDecision(tr)
	var buf bytes.Buffer
	if err := tr.WriteSpansJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSpans(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := tr.Spans()
	if len(got) != len(want) {
		t.Fatalf("round trip lost spans: %d vs %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if g.ID != w.ID || g.Parent != w.Parent || g.Kind != w.Kind ||
			g.Name != w.Name || g.Host != w.Host || g.VM != w.VM ||
			g.Start != w.Start || g.End != w.End || g.Detail != w.Detail {
			t.Fatalf("span %d changed in round trip:\n got %+v\nwant %+v", i, g, w)
		}
		if g.HasScore() != w.HasScore() || (w.HasScore() && g.Score != w.Score) {
			t.Fatalf("span %d score lost: %+v vs %+v", i, g, w)
		}
		if g.HasCost() != w.HasCost() || (w.HasCost() && g.Cost != w.Cost) {
			t.Fatalf("span %d cost lost: %+v vs %+v", i, g, w)
		}
	}
}

func TestSpanJSONLEmptyStream(t *testing.T) {
	tr := NewTracer(1, 0)
	var buf bytes.Buffer
	if err := tr.WriteSpansJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("empty tracer wrote %d bytes, want a zero-line stream", buf.Len())
	}
	spans, err := ReadSpans(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 0 {
		t.Fatalf("empty stream parsed to %d spans", len(spans))
	}
}

func TestReadSpansRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"not json\n",
		`{"id":"zz","kind":"vm","name":"x","start":0,"end":0}` + "\n",
		`{"id":"1","parent":"zz","kind":"vm","name":"x","start":0,"end":0}` + "\n",
	} {
		if _, err := ReadSpans(strings.NewReader(bad)); err == nil {
			t.Fatalf("ReadSpans accepted %q", bad)
		}
	}
}

func TestChromeTraceRoundTrip(t *testing.T) {
	tr := NewTracer(7, 0)
	recordDecision(tr)
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	// metadata: process_name + main + 2 hosts; then one X event per span.
	want := 4 + tr.Len()
	if n != want {
		t.Fatalf("validator counted %d events, want %d", n, want)
	}
}

func TestValidateChromeTraceRejectsMalformed(t *testing.T) {
	for name, data := range map[string]string{
		"not array":    `{"a":1}`,
		"empty":        `[]`,
		"missing ph":   `[{"name":"x","pid":0,"tid":0}]`,
		"missing dur":  `[{"name":"x","ph":"X","ts":1,"pid":0,"tid":0}]`,
		"negative ts":  `[{"name":"x","ph":"X","ts":-1,"dur":0,"pid":0,"tid":0}]`,
		"weird phase":  `[{"name":"x","ph":"Q","ts":1,"pid":0,"tid":0}]`,
		"string pid":   `[{"name":"x","ph":"M","pid":"0","tid":0}]`,
		"missing name": `[{"ph":"M","pid":0,"tid":0}]`,
	} {
		if _, err := ValidateChromeTrace([]byte(data)); err == nil {
			t.Fatalf("%s: validator accepted %s", name, data)
		}
	}
}

func TestSpanIndexExplain(t *testing.T) {
	tr := NewTracer(7, 0)
	recordDecision(tr)
	ix := NewSpanIndex(tr.Spans())
	if ix.Len() != tr.Len() {
		t.Fatalf("index Len = %d, want %d", ix.Len(), tr.Len())
	}
	if vms := ix.VMs(); len(vms) != 1 || vms[0] != "vm1" {
		t.Fatalf("VMs = %v, want [vm1]", vms)
	}

	why, err := ix.ExplainWhy("vm1")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"→ host0", "total 236.67", "capacity", "numa-fit", "+86.67", "host1"} {
		if !strings.Contains(why, want) {
			t.Fatalf("ExplainWhy missing %q:\n%s", want, why)
		}
	}

	// host2 was vetoed by the capacity filter; host1 lost on score.
	whyNot, err := ix.ExplainWhyNot("vm1", "host2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(whyNot, "vetoed by capacity") || !strings.Contains(whyNot, "out of memory") {
		t.Fatalf("ExplainWhyNot(host2) missing veto reason:\n%s", whyNot)
	}
	whyNot, err = ix.ExplainWhyNot("vm1", "host1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(whyNot, "scored 120.00 vs winner 236.67") {
		t.Fatalf("ExplainWhyNot(host1) missing score gap:\n%s", whyNot)
	}
	winner, err := ix.ExplainWhyNot("vm1", "host0")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(winner, "WAS placed") {
		t.Fatalf("ExplainWhyNot(winner) = %q", winner)
	}

	pre, err := ix.ExplainPreempted("vm1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(pre, "evicted for vm9") || !strings.Contains(pre, "cost 1.500ms") {
		t.Fatalf("ExplainPreempted missing chain:\n%s", pre)
	}

	rej, err := ix.ExplainRejected("vm1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rej, "never rejected") {
		t.Fatalf("ExplainRejected = %q", rej)
	}

	tl, err := ix.ExplainVM("vm1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tl, "timeline of vm1") || !strings.Contains(tl, "preempt") {
		t.Fatalf("ExplainVM missing spans:\n%s", tl)
	}

	sum := ix.Summary()
	for _, want := range []string{"place", "filter", "candidate", "vms: vm1"} {
		if !strings.Contains(sum, want) {
			t.Fatalf("Summary missing %q:\n%s", want, sum)
		}
	}

	if _, err := ix.ExplainWhy("ghost"); err == nil {
		t.Fatal("ExplainWhy of unknown VM should error")
	}
	if _, err := ix.ExplainPreempted("ghost"); err == nil {
		t.Fatal("ExplainPreempted of unknown VM should error")
	}
}

func TestSpanIndexRejectedDecision(t *testing.T) {
	tr := NewTracer(9, 0)
	vm := tr.Begin(0, NoSpan, SpanVM, "", "vm2", "vm2 lifecycle")
	place := tr.Begin(0, vm, SpanPlace, "", "vm2", "place vm2")
	tr.Point(0, place, SpanFilter, "", "vm2", "capacity", "admitted 0, vetoed 1; host0: out of memory")
	tr.End(place, 0)
	tr.Point(0, vm, SpanReject, "", "vm2", "reject vm2", "no host fits after 3 retries")
	tr.End(vm, 0)

	ix := NewSpanIndex(tr.Spans())
	out, err := ix.ExplainRejected("vm2")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"rejected at", "no host fits after 3 retries", "no host fits", "capacity"} {
		if !strings.Contains(out, want) {
			t.Fatalf("ExplainRejected missing %q:\n%s", want, out)
		}
	}
	if sum := ix.Summary(); !strings.Contains(sum, "reject") {
		t.Fatalf("Summary missing reject kind:\n%s", sum)
	}
}

func TestSpanIndexEmpty(t *testing.T) {
	ix := NewSpanIndex(nil)
	if ix.Len() != 0 || len(ix.VMs()) != 0 {
		t.Fatal("empty index should be empty")
	}
	if sum := ix.Summary(); !strings.Contains(sum, "empty trace") {
		t.Fatalf("Summary of empty index = %q", sum)
	}
}
