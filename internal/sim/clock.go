// Package sim provides a deterministic discrete-event simulation engine:
// a virtual clock in integer microseconds, a binary-heap event queue with
// stable FIFO ordering for simultaneous events, a seedable SplitMix64 random
// number generator, and small summary-statistics helpers.
//
// The engine is single-threaded by design. Determinism is a hard requirement
// for the vProbe reproduction: two runs with the same seed and configuration
// must produce bit-identical schedules, counters, and metrics.
package sim

import "fmt"

// Time is a point in virtual time, in microseconds since simulation start.
type Time int64

// Duration is a span of virtual time in microseconds.
type Duration int64

// Common durations, expressed in the engine's microsecond base unit.
const (
	Microsecond Duration = 1
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
)

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from earlier to t.
func (t Time) Sub(earlier Time) Duration { return Duration(t - earlier) }

// Seconds converts the time to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Seconds converts the duration to floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Millis converts the duration to floating-point milliseconds.
func (d Duration) Millis() float64 { return float64(d) / float64(Millisecond) }

// Micros returns the duration as an int64 count of microseconds.
func (d Duration) Micros() int64 { return int64(d) }

// DurationFromSeconds converts floating-point seconds to a Duration,
// rounding to the nearest microsecond.
func DurationFromSeconds(s float64) Duration {
	return Duration(s*float64(Second) + 0.5)
}

// String renders the time as seconds with microsecond precision.
func (t Time) String() string {
	return fmt.Sprintf("%.6fs", t.Seconds())
}

// String renders the duration in the most natural unit.
func (d Duration) String() string {
	switch {
	case d >= Second || d <= -Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= Millisecond || d <= -Millisecond:
		return fmt.Sprintf("%.3fms", d.Millis())
	default:
		return fmt.Sprintf("%dµs", int64(d))
	}
}
