package xen_test

import (
	"testing"

	"vprobe/internal/mem"
	"vprobe/internal/sched"
	"vprobe/internal/sim"
	"vprobe/internal/workload"
)

// TestAddDomainAfterStart exercises the hot-add path the cluster layer
// depends on: a domain added to a running hypervisor stays inert until
// ActivateDomain, then runs, and destroying it returns its memory.
func TestAddDomainAfterStart(t *testing.T) {
	h := newHV(t, sched.KindCredit)

	d0, err := h.CreateDomain("boot-vm", 2*1024, 2, mem.PolicyStripe)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.AttachApp(d0, 0, workload.Hungry()); err != nil {
		t.Fatal(err)
	}
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	h.Run(1 * sim.Second)

	freeBefore := h.Alloc.TotalFreeMB()
	d1, err := h.AddDomain("late-vm", 4*1024, 2, mem.PolicyLocal, 1)
	if err != nil {
		t.Fatalf("AddDomain after Start: %v", err)
	}
	if got := freeBefore - h.Alloc.TotalFreeMB(); got != 4*1024 {
		t.Fatalf("AddDomain reserved %d MB, want %d", got, 4*1024)
	}
	if d1.MemDist.Home() != 1 {
		t.Fatalf("PolicyLocal(1) homed on node %d", d1.MemDist.Home())
	}

	// Inert until activation: advancing the clock runs nothing of d1.
	h.Run(2 * sim.Second)
	for _, v := range d1.VCPUs {
		if v.RunTime != 0 {
			t.Fatalf("inactive domain ran %v", v.RunTime)
		}
	}

	for i := 0; i < 2; i++ {
		if _, err := h.AttachApp(d1, i, workload.Hungry()); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.ActivateDomain(d1); err != nil {
		t.Fatal(err)
	}
	if err := h.ActivateDomain(d1); err == nil {
		t.Fatal("double activation accepted")
	}
	h.Run(4 * sim.Second)
	for _, v := range d1.VCPUs {
		if v.RunTime == 0 {
			t.Fatal("activated domain never ran")
		}
	}

	if err := h.DestroyDomain(d1); err != nil {
		t.Fatal(err)
	}
	if h.Alloc.TotalFreeMB() != freeBefore {
		t.Fatalf("destroy freed to %d MB, want %d", h.Alloc.TotalFreeMB(), freeBefore)
	}
}

func TestActivateDomainGuards(t *testing.T) {
	h := newHV(t, sched.KindCredit)
	d, err := h.CreateDomain("vm", 1024, 1, mem.PolicyFill)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.ActivateDomain(d); err == nil {
		t.Fatal("ActivateDomain before Start accepted")
	}
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	// Start already activated the pre-existing domain.
	if err := h.ActivateDomain(d); err == nil {
		t.Fatal("re-activating a Start-placed domain accepted")
	}

	d2, err := h.AddDomain("late", 1024, 1, mem.PolicyFill, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.DestroyDomain(d2); err != nil {
		t.Fatal(err)
	}
	if err := h.ActivateDomain(d2); err == nil {
		t.Fatal("activating a destroyed domain accepted")
	}
}
