package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"vprobe/internal/numa"
)

func rv(id int, p float64) RunnableVCPU { return RunnableVCPU{VCPU: id, Pressure: p} }

func TestPickStealPrefersLocalNode(t *testing.T) {
	queues := map[numa.NodeID][]QueueView{
		0: {{CPU: 1, Workload: 1, Runnable: []RunnableVCPU{rv(10, 5)}}},
		1: {{CPU: 4, Workload: 9, Runnable: []RunnableVCPU{rv(20, 1)}}},
	}
	d, ok := PickSteal(0, []numa.NodeID{1}, queues)
	if !ok {
		t.Fatal("no steal found")
	}
	// Local node wins even though the remote queue is heavier and its
	// VCPU has lower pressure.
	if d.From != 1 || d.VCPU != 10 {
		t.Fatalf("stole %+v, want local VCPU 10 from CPU 1", d)
	}
}

func TestPickStealHeaviestPCPUFirst(t *testing.T) {
	queues := map[numa.NodeID][]QueueView{
		0: {
			{CPU: 0, Workload: 2, Runnable: []RunnableVCPU{rv(1, 1)}},
			{CPU: 1, Workload: 5, Runnable: []RunnableVCPU{rv(2, 50)}},
		},
	}
	d, ok := PickSteal(0, nil, queues)
	if !ok || d.From != 1 || d.VCPU != 2 {
		// Algorithm 2 checks the heaviest queue first and takes its
		// min-pressure VCPU — not the global min-pressure VCPU.
		t.Fatalf("stole %+v, want VCPU 2 from the heaviest CPU 1", d)
	}
}

func TestPickStealMinPressureWithinQueue(t *testing.T) {
	queues := map[numa.NodeID][]QueueView{
		0: {{CPU: 3, Workload: 3, Runnable: []RunnableVCPU{rv(1, 22), rv(2, 3), rv(3, 15)}}},
	}
	d, ok := PickSteal(0, nil, queues)
	if !ok || d.VCPU != 2 {
		t.Fatalf("stole %+v, want the min-pressure VCPU 2", d)
	}
}

func TestPickStealFallsBackToRemote(t *testing.T) {
	queues := map[numa.NodeID][]QueueView{
		0: {{CPU: 0, Workload: 0, Runnable: nil}},
		1: {{CPU: 5, Workload: 2, Runnable: []RunnableVCPU{rv(9, 8)}}},
	}
	d, ok := PickSteal(0, []numa.NodeID{1}, queues)
	if !ok || d.From != 5 || d.VCPU != 9 {
		t.Fatalf("stole %+v, want remote VCPU 9", d)
	}
}

func TestPickStealSkipsEmptyHeavyQueue(t *testing.T) {
	// A queue can report workload > 0 (its running VCPU) but have no
	// stealable VCPUs; Algorithm 2 moves on to the next PCPU.
	queues := map[numa.NodeID][]QueueView{
		0: {
			{CPU: 0, Workload: 7, Runnable: nil},
			{CPU: 1, Workload: 3, Runnable: []RunnableVCPU{rv(4, 2)}},
		},
	}
	d, ok := PickSteal(0, nil, queues)
	if !ok || d.VCPU != 4 {
		t.Fatalf("stole %+v, want VCPU 4", d)
	}
}

func TestPickStealNothingRunnable(t *testing.T) {
	queues := map[numa.NodeID][]QueueView{
		0: {{CPU: 0, Workload: 0}},
		1: {{CPU: 4, Workload: 0}},
	}
	if _, ok := PickSteal(0, []numa.NodeID{1}, queues); ok {
		t.Fatal("stole from empty machine")
	}
	if _, ok := PickSteal(0, nil, nil); ok {
		t.Fatal("stole from nil queues")
	}
}

func TestPickStealStableOnWorkloadTies(t *testing.T) {
	queues := map[numa.NodeID][]QueueView{
		0: {
			{CPU: 0, Workload: 4, Runnable: []RunnableVCPU{rv(1, 10)}},
			{CPU: 1, Workload: 4, Runnable: []RunnableVCPU{rv(2, 1)}},
		},
	}
	d, _ := PickSteal(0, nil, queues)
	if d.From != 0 || d.VCPU != 1 {
		t.Fatalf("tie-break changed caller order: %+v", d)
	}
}

// Property: PickSteal returns a VCPU that actually exists in the declared
// queues, never steals when everything is empty, and always prefers a
// non-empty local node over remote ones.
func TestPickStealProperties(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		numNodes := rng.Intn(3) + 1
		queues := make(map[numa.NodeID][]QueueView)
		exists := map[int]numa.NodeID{}
		id := 1
		localHasWork := false
		for n := 0; n < numNodes; n++ {
			var views []QueueView
			for c := 0; c < rng.Intn(3)+1; c++ {
				var run []RunnableVCPU
				for v := 0; v < rng.Intn(3); v++ {
					run = append(run, rv(id, float64(rng.Intn(30))))
					exists[id] = numa.NodeID(n)
					if n == 0 {
						localHasWork = true
					}
					id++
				}
				views = append(views, QueueView{
					CPU: numa.CPUID(n*4 + c), Workload: rng.Intn(5), Runnable: run,
				})
			}
			queues[numa.NodeID(n)] = views
		}
		var order []numa.NodeID
		for n := 1; n < numNodes; n++ {
			order = append(order, numa.NodeID(n))
		}
		d, ok := PickSteal(0, order, queues)
		if !ok {
			return len(exists) == 0
		}
		home, known := exists[d.VCPU]
		if !known {
			return false
		}
		if localHasWork && home != 0 {
			return false // stole remote while local work existed
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestNodeOrderFrom(t *testing.T) {
	two := numa.XeonE5620()
	if got := NodeOrderFrom(two, 0); len(got) != 1 || got[0] != 1 {
		t.Fatalf("order from 0 = %v", got)
	}
	if got := NodeOrderFrom(two, 1); len(got) != 1 || got[0] != 0 {
		t.Fatalf("order from 1 = %v", got)
	}
	four := numa.FourNode()
	got := NodeOrderFrom(four, 2)
	if len(got) != 3 {
		t.Fatalf("order length = %d", len(got))
	}
	seen := map[numa.NodeID]bool{2: true}
	for _, n := range got {
		if seen[n] {
			t.Fatalf("duplicate/self in order: %v", got)
		}
		seen[n] = true
	}
	// Equal distances: id order.
	if got[0] != 0 || got[1] != 1 || got[2] != 3 {
		t.Fatalf("order = %v, want [0 1 3]", got)
	}
	uma := numa.SingleNode()
	if got := NodeOrderFrom(uma, 0); len(got) != 0 {
		t.Fatalf("UMA order = %v, want empty", got)
	}
}
