package cluster

import (
	"errors"
	"strings"
	"testing"

	"vprobe/internal/mem"
)

func view(index int, freePerNode []int64, totalMB int64, guestVCPUs, cap int) *HostView {
	hv := &HostView{
		Index:         index,
		Name:          "host" + string(rune('0'+index)),
		Nodes:         len(freePerNode),
		CPUs:          cap / 3,
		FreePerNodeMB: freePerNode,
		TotalMB:       totalMB,
		GuestVCPUs:    guestVCPUs,
		VCPUCap:       cap,
	}
	for _, f := range freePerNode {
		hv.FreeMB += f
	}
	return hv
}

func TestCapacityFilter(t *testing.T) {
	f := CapacityFilter{}
	spec := &VMSpec{Name: "vm", MemoryMB: 4096, VCPUs: 4}

	if err := f.Filter(spec, view(0, []int64{4096, 4096}, 24576, 0, 24)); err != nil {
		t.Fatalf("fitting VM filtered: %v", err)
	}
	if err := f.Filter(spec, view(0, []int64{1024, 1024}, 24576, 0, 24)); err == nil {
		t.Fatal("memory-starved host admitted")
	}
	if err := f.Filter(spec, view(0, []int64{8192, 8192}, 24576, 22, 24)); err == nil {
		t.Fatal("vcpu-overcommitted host admitted")
	}
}

func TestNUMAFitFilter(t *testing.T) {
	spec := &VMSpec{Name: "vm", MemoryMB: 6000, VCPUs: 4}

	// 4 nodes with 2000 MB each: total 8000 covers the VM, but no 2 nodes do.
	hv := view(0, []int64{2000, 2000, 2000, 2000}, 65536, 0, 48)
	if err := (CapacityFilter{}).Filter(spec, hv); err != nil {
		t.Fatalf("capacity filter should pass on total: %v", err)
	}
	if err := (NUMAFitFilter{MaxSplit: 2}).Filter(spec, hv); err == nil {
		t.Fatal("VM needing a 3-way split admitted with MaxSplit=2")
	}
	if err := (NUMAFitFilter{MaxSplit: 3}).Filter(spec, hv); err != nil {
		t.Fatalf("3-way split should fit with MaxSplit=3: %v", err)
	}

	// Uneven free memory: the two largest chunks are what counts.
	hv = view(0, []int64{500, 4000, 2500, 100}, 65536, 0, 48)
	if err := (NUMAFitFilter{MaxSplit: 2}).Filter(spec, hv); err != nil {
		t.Fatalf("4000+2500 >= 6000 should fit: %v", err)
	}
}

func TestScorerOrdering(t *testing.T) {
	spec := &VMSpec{Name: "vm", MemoryMB: 2048, VCPUs: 2}
	empty := view(0, []int64{12288, 12288}, 24576, 0, 24)
	full := view(1, []int64{2048, 1024}, 24576, 18, 24)

	if (LeastLoadedScore{}).Score(spec, empty) <= (LeastLoadedScore{}).Score(spec, full) {
		t.Fatal("least-loaded should prefer the empty host")
	}
	if (PackScore{}).Score(spec, full) <= (PackScore{}).Score(spec, empty) {
		t.Fatal("pack should prefer the full host")
	}

	oneNode := view(2, []int64{4096, 0}, 24576, 0, 24)
	split := view(3, []int64{1024, 1024}, 24576, 0, 24)
	if (NUMAFitScore{}).Score(spec, oneNode) <= (NUMAFitScore{}).Score(spec, split) {
		t.Fatal("numa-fit should prefer the single-node-fitting host")
	}

	calm := view(4, []int64{8192, 8192}, 24576, 4, 24)
	loud := view(5, []int64{8192, 8192}, 24576, 4, 24)
	loud.LLCPressure = 60
	if (LLCBalanceScore{}).Score(spec, calm) <= (LLCBalanceScore{}).Score(spec, loud) {
		t.Fatal("llc-balance should prefer the quiet host")
	}
}

func TestPipelinePlace(t *testing.T) {
	pl, err := NewPipeline("spread")
	if err != nil {
		t.Fatal(err)
	}
	spec := &VMSpec{Name: "vm", MemoryMB: 2048, VCPUs: 2}
	views := []*HostView{
		view(0, []int64{2048, 2048}, 24576, 18, 24),
		view(1, []int64{12288, 12288}, 24576, 0, 24),
	}
	hv, plan, err := pl.Place(spec, views)
	if err != nil {
		t.Fatal(err)
	}
	if hv.Index != 1 {
		t.Fatalf("spread picked host %d, want the empty host 1", hv.Index)
	}
	if plan.Policy != mem.PolicyStripe {
		t.Fatalf("spread plan = %v, want stripe", plan.Policy)
	}
}

func TestPipelineTieBreak(t *testing.T) {
	pl := &Pipeline{
		Name:    "flat",
		Filters: []FilterPlugin{CapacityFilter{}},
		Scorers: nil, // all scores zero: pure tie
	}
	spec := &VMSpec{Name: "vm", MemoryMB: 1024, VCPUs: 1}
	views := []*HostView{
		view(2, []int64{8192, 8192}, 24576, 0, 24),
		view(0, []int64{8192, 8192}, 24576, 0, 24),
		view(1, []int64{8192, 8192}, 24576, 0, 24),
	}
	hv, _, err := pl.Place(spec, views)
	if err != nil {
		t.Fatal(err)
	}
	if hv.Index != 0 {
		t.Fatalf("tie broke to host %d, want lowest index 0", hv.Index)
	}
}

func TestPipelineNoHostFits(t *testing.T) {
	pl, err := NewPipeline("numa")
	if err != nil {
		t.Fatal(err)
	}
	spec := &VMSpec{Name: "vm", MemoryMB: 64 * 1024, VCPUs: 2}
	views := []*HostView{view(0, []int64{8192, 8192}, 24576, 0, 24)}
	_, _, err = pl.Place(spec, views)
	if !errors.Is(err, ErrNoHostFits) {
		t.Fatalf("err = %v, want ErrNoHostFits", err)
	}
	if !strings.Contains(err.Error(), "capacity") {
		t.Fatalf("veto reason missing plugin name: %v", err)
	}
}

func TestPolicyRegistry(t *testing.T) {
	names := Policies()
	if len(names) < 3 {
		t.Fatalf("want >= 3 registered policies, have %v", names)
	}
	for _, n := range names {
		pl, err := NewPipeline(n)
		if err != nil {
			t.Fatalf("NewPipeline(%q): %v", n, err)
		}
		if pl.Name != n || len(pl.Filters) == 0 {
			t.Fatalf("policy %q malformed: %+v", n, pl)
		}
	}
	if _, err := NewPipeline("roulette"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}
