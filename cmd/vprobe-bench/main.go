// Command vprobe-bench parses `go test -bench` output on stdin and appends
// one snapshot entry to a JSON history file (default BENCH_hotpath.json).
// Each snapshot records ns/op, B/op, and allocs/op per benchmark, so the
// file accumulates an ordered before/after history of the hot-path numbers:
// the first entry is the pre-refactor baseline, later entries track every
// `make bench` run since. See EXPERIMENTS.md for how to read the file.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | go run ./cmd/vprobe-bench -label my-change
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strconv"
)

// Metrics is one benchmark's reported costs.
type Metrics struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Snapshot is one appended history entry: every benchmark parsed from a
// single `go test -bench` run.
type Snapshot struct {
	Label      string             `json:"label"`
	GoVersion  string             `json:"go_version"`
	Benchmarks map[string]Metrics `json:"benchmarks"`
}

// benchLine matches one result line, e.g.
//
//	BenchmarkQuantumHotPath-8   7270830   345.8 ns/op   0 B/op   0 allocs/op
//
// The -8 GOMAXPROCS suffix is stripped so snapshots from different machines
// key identically; B/op and allocs/op are optional (absent without
// -benchmem or b.ReportAllocs).
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op\s+([\d.]+) allocs/op)?`)

func main() {
	out := flag.String("out", "BENCH_hotpath.json", "history file to append the snapshot to")
	label := flag.String("label", "", "snapshot label (required; e.g. the change being measured)")
	flag.Parse()
	if *label == "" {
		fmt.Fprintln(os.Stderr, "vprobe-bench: -label is required")
		os.Exit(2)
	}

	snap := Snapshot{
		Label:      *label,
		GoVersion:  runtime.Version(),
		Benchmarks: map[string]Metrics{},
	}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		var met Metrics
		met.NsPerOp, _ = strconv.ParseFloat(m[2], 64)
		if m[3] != "" {
			met.BytesPerOp, _ = strconv.ParseFloat(m[3], 64)
			met.AllocsPerOp, _ = strconv.ParseFloat(m[4], 64)
		}
		snap.Benchmarks[m[1]] = met
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "vprobe-bench: reading stdin: %v\n", err)
		os.Exit(1)
	}
	if len(snap.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "vprobe-bench: no benchmark lines on stdin")
		os.Exit(1)
	}

	var history []Snapshot
	if data, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(data, &history); err != nil {
			fmt.Fprintf(os.Stderr, "vprobe-bench: %s is not a snapshot history: %v\n", *out, err)
			os.Exit(1)
		}
	} else if !os.IsNotExist(err) {
		fmt.Fprintf(os.Stderr, "vprobe-bench: %v\n", err)
		os.Exit(1)
	}
	history = append(history, snap)

	data, err := json.MarshalIndent(history, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "vprobe-bench: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "vprobe-bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("vprobe-bench: appended snapshot %q (%d benchmarks) to %s (%d entries)\n",
		snap.Label, len(snap.Benchmarks), *out, len(history))
}
