package cluster

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"vprobe/internal/sched"
	"vprobe/internal/sim"
)

// runWith runs a small cluster and returns the report plus the rendered
// event log.
func runWith(t *testing.T, cfg Config) (*Report, string) {
	t.Helper()
	var log strings.Builder
	cfg.Events = func(ev Event) {
		fmt.Fprintf(&log, "%v %s %s %s %s\n", ev.At, ev.Kind, ev.Host, ev.VM, ev.Detail)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return rep, log.String()
}

func TestClusterLifecycle(t *testing.T) {
	rep, log := runWith(t, Config{
		Hosts:   2,
		Horizon: 90 * sim.Second,
		Seed:    7,
		Workers: 1,
	})
	if rep.Arrivals == 0 {
		t.Fatal("no arrivals in 90s at the default rate")
	}
	if rep.Placed == 0 {
		t.Fatal("nothing placed")
	}
	if rep.Departed == 0 {
		t.Fatal("nothing departed in 90s with 60s mean lifetime")
	}
	if rep.Utilization <= 0 {
		t.Fatal("hosts never ran anything")
	}
	// Conservation: every arrival is placed, rejected, or still pending.
	resident := 0
	for _, h := range rep.PerHost {
		resident += h.Resident
	}
	if resident > rep.Placed {
		t.Fatalf("resident %d > placed %d", resident, rep.Placed)
	}
	for _, kind := range []EventKind{EventVMArrive, EventVMPlace, EventVMDepart} {
		if !strings.Contains(log, string(kind)) {
			t.Fatalf("event log missing %q:\n%s", kind, log)
		}
	}
}

// TestClusterDeterministicAcrossWorkers is the acceptance criterion: a
// fixed seed must produce byte-identical reports and event logs at every
// worker count.
func TestClusterDeterministicAcrossWorkers(t *testing.T) {
	base := Config{
		Hosts:             3,
		Horizon:           60 * sim.Second,
		Seed:              11,
		ArrivalsPerSecond: 0.5,
		MeanLifetime:      25 * sim.Second,
	}
	var wantRep, wantLog string
	for _, workers := range []int{1, 3, 0} {
		cfg := base
		cfg.Workers = workers
		rep, log := runWith(t, cfg)
		if wantRep == "" {
			wantRep, wantLog = rep.String(), log
			continue
		}
		if rep.String() != wantRep {
			t.Fatalf("report diverges at workers=%d:\n--- workers=1\n%s\n--- workers=%d\n%s",
				workers, wantRep, workers, rep.String())
		}
		if log != wantLog {
			t.Fatalf("event log diverges at workers=%d", workers)
		}
	}
}

func TestClusterPerSchedulerAndPolicy(t *testing.T) {
	// Every registered policy must drive a run to completion under both
	// per-host schedulers the experiment compares.
	for _, pol := range Policies() {
		for _, kind := range []sched.Kind{sched.KindCredit, sched.KindVProbe} {
			rep, _ := runWith(t, Config{
				Hosts:     2,
				Policy:    pol,
				Scheduler: kind,
				Horizon:   30 * sim.Second,
				Seed:      3,
				Workers:   2,
			})
			if rep.Policy != pol || rep.Scheduler != string(kind) {
				t.Fatalf("report labels %q/%q, want %q/%q",
					rep.Policy, rep.Scheduler, pol, kind)
			}
			if rep.Placed == 0 {
				t.Fatalf("%s/%s placed nothing", pol, kind)
			}
		}
	}
}

func TestClusterRejectsWhenFull(t *testing.T) {
	rep, log := runWith(t, Config{
		Hosts:             1,
		Horizon:           120 * sim.Second,
		Seed:              5,
		ArrivalsPerSecond: 1.0,
		MeanLifetime:      500 * sim.Second, // VMs effectively never leave
		Workers:           1,
	})
	if rep.Retries == 0 {
		t.Fatal("an overloaded single host never queued a retry")
	}
	if rep.Rejected == 0 {
		t.Fatal("an overloaded single host never rejected")
	}
	if !strings.Contains(log, string(EventVMReject)) {
		t.Fatal("no vm-reject event logged")
	}
	if rep.RejectionRate <= 0 || rep.RejectionRate > 1 {
		t.Fatalf("rejection rate %v out of range", rep.RejectionRate)
	}
}

func TestClusterMigrates(t *testing.T) {
	// pack piles cache-hungry VMs onto one host while the others idle —
	// exactly the asymmetry the rebalancer exists to repair. (Under
	// spread/numa all hosts heat up together, and with no cooler target
	// the rebalancer correctly stays put.)
	rep, log := runWith(t, Config{
		Hosts:             3,
		Horizon:           150 * sim.Second,
		Seed:              2,
		ArrivalsPerSecond: 0.6,
		MeanLifetime:      120 * sim.Second,
		Mix:               "batch", // cache-hungry mix drives LLC pressure up
		Policy:            "pack",
		LLCPressureLimit:  20, // low threshold: one thrashing app trips it
		RebalancePeriod:   5 * sim.Second,
		Workers:           2,
	})
	if rep.Migrations == 0 {
		t.Fatal("no migrations despite a low LLC pressure limit")
	}
	starts := strings.Count(log, string(EventMigrateStart))
	dones := strings.Count(log, string(EventMigrateDone))
	if starts != rep.Migrations {
		t.Fatalf("%d migrate-start events, stats say %d", starts, rep.Migrations)
	}
	// Every start completes unless the VM departed mid-copy; allow that
	// slack but not the reverse.
	if dones > starts {
		t.Fatalf("%d migrate-done > %d migrate-start", dones, starts)
	}
}

func TestClusterCancellation(t *testing.T) {
	c, err := New(Config{Hosts: 2, Horizon: 300 * sim.Second, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Run(ctx); err == nil {
		t.Fatal("cancelled run reported success")
	}
}

func TestClusterConfigValidation(t *testing.T) {
	if _, err := New(Config{Policy: "roulette"}); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if _, err := New(Config{Topology: "toaster"}); err == nil {
		t.Fatal("unknown topology accepted")
	}
	if _, err := New(Config{Scheduler: "fifo"}); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
	if _, err := New(Config{Mix: "chaos"}); err == nil {
		t.Fatal("unknown mix accepted")
	}
}
