// Package harness (fixture) proves the real harness package path is exempt:
// progress events legitimately carry wall-clock durations.
package harness

import "time"

// Elapsed measures real execution time for progress reporting.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start)
}
