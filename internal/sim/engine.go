package sim

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
)

// Event is a scheduled callback. The callback runs at the event's firing
// time with the engine passed in so it can schedule follow-up events.
//
// Events returned by Schedule/ScheduleAt are owned by the engine: once an
// event has fired (or a cancelled event has been discarded), the engine
// recycles it through an internal free list and the pointer must not be
// used again. Cancel is therefore only meaningful while the event is
// pending. Callers that need an event they can safely re-arm or cancel at
// any time should use a Timer, which owns its event for its whole lifetime
// and is never pooled. See DESIGN.md §9 "Hot-path memory discipline".
type Event struct {
	at     Time
	seq    uint64 // tie-breaker: FIFO among simultaneous events
	index  int    // heap index, -1 when not queued
	fire   func(e *Engine)
	label  string
	cancel bool
	pinned bool // owned by a Timer/Ticker; never returned to the pool
}

// At reports the virtual time the event fires at.
func (ev *Event) At() Time { return ev.at }

// Label reports the human-readable label given at scheduling time.
func (ev *Event) Label() string { return ev.label }

// Cancel marks the event so it will be skipped when it reaches the head of
// the queue. Cancelling an already-fired event is a no-op — but note that
// a fired event may have been recycled for an unrelated later Schedule
// call, so Cancel must only be called while the event is known pending.
func (ev *Event) Cancel() { ev.cancel = true }

// Cancelled reports whether Cancel was called on the event.
func (ev *Event) Cancelled() bool { return ev.cancel }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event simulator.
//
// The zero value is not usable; construct with NewEngine.
type Engine struct {
	now     Time
	queue   eventHeap
	seq     uint64
	fired   uint64
	stopped bool
	horizon Time // 0 means unbounded

	// free is the event pool: fired and discarded-after-cancel events are
	// recycled here, so a steady-state simulation allocates no events.
	// LIFO reuse keeps the pool cache-hot and, because the engine is
	// single-threaded, fully deterministic.
	free []*Event
}

// NewEngine returns an engine with the clock at zero and an empty queue.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of events waiting in the queue, including
// cancelled events that have not yet been discarded.
func (e *Engine) Pending() int { return len(e.queue) }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// PoolSize returns the number of recycled events currently in the free
// list (exposed for the pooling tests).
func (e *Engine) PoolSize() int { return len(e.free) }

// alloc takes an event from the free list, or makes a new one.
func (e *Engine) alloc() *Event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	return &Event{} //vet:alloc pool warmup: only when the free list is empty; steady state recycles released events
}

// release recycles a popped event. The callback reference is dropped
// immediately so a recycled event can never re-fire its old callback;
// the cancel flag is left as-is (so Cancelled() stays observable on a
// just-discarded event) and reset when the event is handed out again.
// Pinned events belong to a Timer or Ticker and are never pooled.
func (e *Engine) release(ev *Event) {
	if ev.pinned {
		return
	}
	ev.fire = nil
	e.free = append(e.free, ev) //vet:alloc free list grows to peak in-flight events during warmup, then flattens
}

// ErrPastEvent is returned by ScheduleAt when the requested time precedes
// the current clock.
var ErrPastEvent = errors.New("sim: event scheduled in the past")

// ScheduleAt queues fn to run at absolute time at. It panics if at is in
// the past: scheduling into the past is always a programming error in a
// discrete-event model and silently clamping would hide causality bugs.
func (e *Engine) ScheduleAt(at Time, label string, fn func(*Engine)) *Event {
	if at < e.now {
		panic(fmt.Errorf("%w: now=%v at=%v label=%q", ErrPastEvent, e.now, at, label))
	}
	ev := e.alloc()
	ev.at = at
	ev.seq = e.seq
	ev.fire = fn
	ev.label = label
	ev.cancel = false
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// Schedule queues fn to run after delay d (d < 0 is clamped to 0).
func (e *Engine) Schedule(d Duration, label string, fn func(*Engine)) *Event {
	if d < 0 {
		d = 0
	}
	return e.ScheduleAt(e.now.Add(d), label, fn)
}

// armPinnedAt queues a caller-owned (pinned) event. The event must not be
// queued already; pinned events are re-armed in place rather than pooled.
func (e *Engine) armPinnedAt(ev *Event, at Time) {
	if at < e.now {
		panic(fmt.Errorf("%w: now=%v at=%v label=%q", ErrPastEvent, e.now, at, ev.label))
	}
	if ev.index >= 0 {
		panic(fmt.Sprintf("sim: pinned event %q armed while pending", ev.label))
	}
	ev.at = at
	ev.seq = e.seq
	ev.cancel = false
	e.seq++
	heap.Push(&e.queue, ev)
}

// unqueue removes a pending event from the queue immediately (as opposed
// to Cancel's lazy skip-at-pop). Reports whether the event was queued.
func (e *Engine) unqueue(ev *Event) bool {
	if ev.index < 0 {
		return false
	}
	heap.Remove(&e.queue, ev.index)
	return true
}

// Timer is a reusable one-shot event with a callback bound at construction
// time. Arming, firing, and stopping a Timer never allocates: the Timer
// owns one pinned event that is pushed back into the engine's queue on
// every Arm. Use it for recurring hot-path deadlines (quantum ends, VCPU
// wakeups) where Schedule's per-call closure would churn the GC.
type Timer struct {
	engine *Engine
	ev     Event
}

// NewTimer returns an unarmed timer that runs fn each time it fires.
func (e *Engine) NewTimer(label string, fn func(*Engine)) *Timer {
	t := &Timer{engine: e}
	t.ev.pinned = true
	t.ev.index = -1
	t.ev.label = label
	t.ev.fire = fn
	return t
}

// Arm schedules the timer to fire after delay d (d < 0 is clamped to 0).
// An already-pending timer is re-armed at the new deadline.
func (t *Timer) Arm(d Duration) {
	if d < 0 {
		d = 0
	}
	t.ArmAt(t.engine.now.Add(d))
}

// ArmAt schedules the timer to fire at absolute time at, replacing any
// pending arming.
func (t *Timer) ArmAt(at Time) {
	t.engine.unqueue(&t.ev)
	t.engine.armPinnedAt(&t.ev, at)
}

// Stop removes a pending firing; it reports whether the timer was armed.
// Unlike Event.Cancel, a stopped Timer can be re-armed immediately.
func (t *Timer) Stop() bool {
	return t.engine.unqueue(&t.ev)
}

// Pending reports whether the timer is armed.
func (t *Timer) Pending() bool { return t.ev.index >= 0 }

// Every schedules fn to run now+first and then every period thereafter,
// until the returned ticker is stopped or the engine halts. period must be
// positive.
func (e *Engine) Every(first, period Duration, label string, fn func(*Engine)) *Ticker {
	if period <= 0 {
		panic(fmt.Sprintf("sim: non-positive ticker period %v (label %q)", period, label))
	}
	t := &Ticker{engine: e, period: period, fn: fn}
	t.ev.pinned = true
	t.ev.index = -1
	t.ev.label = label
	t.ev.fire = t.tick // one closure for the ticker's whole lifetime
	if first < 0 {
		first = 0
	}
	e.armPinnedAt(&t.ev, e.now.Add(first))
	return t
}

// Ticker repeatedly fires a callback at a fixed period. It owns one pinned
// event that is re-armed after each firing, so a running ticker performs
// zero allocations.
type Ticker struct {
	engine  *Engine
	period  Duration
	fn      func(*Engine)
	ev      Event
	stopped bool
}

func (t *Ticker) tick(e *Engine) {
	if t.stopped {
		return
	}
	t.fn(e)
	if !t.stopped {
		e.armPinnedAt(&t.ev, e.now.Add(t.period))
	}
}

// Stop prevents all future firings of the ticker.
func (t *Ticker) Stop() {
	t.stopped = true
	t.engine.unqueue(&t.ev)
}

// Period returns the ticker period.
func (t *Ticker) Period() Duration { return t.period }

// Stop halts the run loop after the currently-firing event returns.
func (e *Engine) Stop() { e.stopped = true }

// SetHorizon makes Run stop once the clock would pass t. A zero horizon
// means no limit.
func (e *Engine) SetHorizon(t Time) { e.horizon = t }

// interruptStride is how many events RunContext executes between context
// polls: rare enough that the hot loop is unaffected, frequent enough that
// cancellation lands within microseconds of wall time.
const interruptStride = 4096

// Run executes events in time order until the queue is empty, Stop is
// called, or the horizon is reached. It returns the number of events fired
// during this call.
func (e *Engine) Run() uint64 {
	n, _ := e.run(nil)
	return n
}

// RunContext is Run with cooperative cancellation: every interruptStride
// events the context is polled, and a cancelled context halts the run (as
// if Stop had been called) and returns the context's error. A nil error
// means the run ended for one of Run's normal reasons.
func (e *Engine) RunContext(ctx context.Context) (uint64, error) {
	return e.run(ctx)
}

// run is the event loop proper: the innermost steady-state code in the
// repo.
//
//vprobe:hotpath
func (e *Engine) run(ctx context.Context) (uint64, error) {
	start := e.fired
	e.stopped = false
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			e.stopped = true
			return 0, err
		}
	}
	for len(e.queue) > 0 && !e.stopped {
		if ctx != nil && e.fired%interruptStride == 0 {
			if err := ctx.Err(); err != nil {
				e.stopped = true
				return e.fired - start, err
			}
		}
		ev := e.queue[0]
		if e.horizon > 0 && ev.at > e.horizon {
			e.now = e.horizon
			break
		}
		heap.Pop(&e.queue)
		if ev.cancel {
			e.release(ev)
			continue
		}
		if ev.at < e.now {
			panic(fmt.Sprintf("sim: time went backwards: now=%v event=%v", e.now, ev.at))
		}
		e.now = ev.at
		e.fired++
		fn := ev.fire
		fn(e)
		e.release(ev)
	}
	return e.fired - start, nil
}

// RunUntil executes events with the clock bounded by t. If the event
// supply ran dry before t (without an explicit Stop), the clock advances to
// exactly t; after a Stop the clock stays where the stop happened.
func (e *Engine) RunUntil(t Time) uint64 {
	n, _ := e.runUntil(nil, t)
	return n
}

// RunUntilContext is RunUntil with the cancellation semantics of
// RunContext. On cancellation the clock stays wherever the run was
// interrupted.
func (e *Engine) RunUntilContext(ctx context.Context, t Time) (uint64, error) {
	return e.runUntil(ctx, t)
}

// runUntil is run bounded by a horizon override.
//
//vprobe:hotpath
func (e *Engine) runUntil(ctx context.Context, t Time) (uint64, error) {
	prev := e.horizon
	e.SetHorizon(t)
	n, err := e.run(ctx)
	if e.now < t && !e.stopped {
		e.now = t
	}
	e.horizon = prev
	return n, err
}
