package hotpath_test

import (
	"testing"

	"vprobe/internal/analysis/framework/analysistest"
	"vprobe/internal/analysis/hotpath"
)

func TestHotPath(t *testing.T) {
	analysistest.RunModule(t, analysistest.TestData(), hotpath.Analyzer,
		"hotpath_hot", "hotpath_helper")
}
