package framework

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and typechecked package, the unit an Analyzer runs
// over. It corresponds to the subset of packages.Package the analyzers need.
type Package struct {
	// Path is the import path ("vprobe/internal/sim", or a bare fixture
	// path like "mapiter_a" under an analysistest tree).
	Path string
	// Dir is the directory the sources were read from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and typechecks packages of a source tree without invoking
// the go tool. Import paths inside the tree resolve to directories via the
// resolve hook; everything else (the standard library) goes through the
// compiler's export data, falling back to typechecking the library source.
type Loader struct {
	Fset    *token.FileSet
	resolve func(path string) (dir string, ok bool)
	std     types.Importer
	stdSrc  types.Importer
	pkgs    map[string]*loadEntry
}

type loadEntry struct {
	pkg     *Package
	err     error
	loading bool
}

func newLoader(resolve func(string) (string, bool)) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		resolve: resolve,
		std:     importer.Default(),
		stdSrc:  importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*loadEntry),
	}
}

// NewModuleLoader returns a loader rooted at the Go module containing dir:
// import paths under the module path resolve into the module tree. It fails
// when no go.mod is found walking up from dir.
func NewModuleLoader(dir string) (*Loader, string, error) {
	root, err := findModuleRoot(dir)
	if err != nil {
		return nil, "", err
	}
	modPath, err := readModulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, "", err
	}
	ld := newLoader(func(path string) (string, bool) {
		if path == modPath {
			return root, true
		}
		if rel, ok := strings.CutPrefix(path, modPath+"/"); ok {
			d := filepath.Join(root, filepath.FromSlash(rel))
			if st, err := os.Stat(d); err == nil && st.IsDir() {
				return d, true
			}
		}
		return "", false
	})
	return ld, root, nil
}

// NewTreeLoader returns a loader that resolves every import path GOPATH-style
// against srcRoot — the layout analysistest fixtures use (testdata/src/<path>).
func NewTreeLoader(srcRoot string) *Loader {
	return newLoader(func(path string) (string, bool) {
		d := filepath.Join(srcRoot, filepath.FromSlash(path))
		if st, err := os.Stat(d); err == nil && st.IsDir() {
			return d, true
		}
		return "", false
	})
}

// ModulePath reads the module path from root's go.mod.
func ModulePath(root string) (string, error) {
	return readModulePath(filepath.Join(root, "go.mod"))
}

func findModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("framework: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("framework: no module line in %s", gomod)
}

// Import implements types.Importer, so in-tree imports recurse through the
// loader while standard-library imports use export data (with a source
// fallback for toolchains that ship none).
func (l *Loader) Import(path string) (*types.Package, error) {
	if _, ok := l.resolve(path); ok {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	if pkg, err := l.std.Import(path); err == nil {
		return pkg, nil
	}
	return l.stdSrc.Import(path)
}

// Load parses and typechecks the package at the given import path
// (memoized). Test files are skipped: the contract governs production code,
// and fixtures never carry tests.
func (l *Loader) Load(path string) (*Package, error) {
	if e, ok := l.pkgs[path]; ok {
		if e.loading {
			return nil, fmt.Errorf("framework: import cycle through %q", path)
		}
		return e.pkg, e.err
	}
	entry := &loadEntry{loading: true}
	l.pkgs[path] = entry
	pkg, err := l.loadDir(path)
	entry.pkg, entry.err, entry.loading = pkg, err, false
	return pkg, err
}

func (l *Loader) loadDir(path string) (*Package, error) {
	dir, ok := l.resolve(path)
	if !ok {
		return nil, fmt.Errorf("framework: cannot resolve %q to a directory", path)
	}
	names, err := goFileNames(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("framework: no buildable Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("framework: typecheck %s: %w", path, typeErrs[0])
	}
	return &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}, nil
}

// goFileNames lists the non-test .go files of dir in sorted order.
func goFileNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// LoadPatterns expands go-tool-style patterns ("./...", "./internal/sim")
// relative to the module root and loads every matched package. Directories
// named testdata (analyzer fixtures are deliberate violations), vendor, or
// starting with "." or "_" are pruned.
func (l *Loader) LoadPatterns(root, modPath string, patterns []string) ([]*Package, error) {
	dirSet := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !dirSet[dir] {
			dirSet[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		pat = filepath.ToSlash(pat)
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive, pat = true, rest
		} else if pat == "..." {
			recursive, pat = true, "."
		}
		base := filepath.Join(root, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
		if !recursive {
			add(base)
			continue
		}
		err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if names, err := goFileNames(p); err == nil && len(names) > 0 {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		path := modPath
		if rel != "." {
			path = modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}
