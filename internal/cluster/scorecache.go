package cluster

// The per-(pipeline, host) score cache behind Cluster.place. Every
// built-in filter and score plugin reads the spec only through MemoryMB
// and VCPUs — names, profiles, priorities, and groups never enter a
// placement decision — so cached scores are shared per spec *class*:
// one (memMB, vcpus) shape. The generated mix draws from three classes,
// so the cache holds three heaps regardless of fleet size.
//
// Invalidation is generation-based: a host refresh bumps Host.gen and
// appends the host to every class's dirty list. The next place() for a
// class drains its list — re-filters, re-scores, repairs the heap — and
// then reads the max. Draining the whole list before reading is load-
// bearing: a stale entry *below* the top can rise above it (a departure
// frees memory, a busy host cools down), so checking only the top entry's
// generation would return stale winners.
//
// The heap order is (feasible first, score desc, host index asc) — the
// exact total order the pre-refactor linear scan induced, so the heap max
// is always the host that scan would have picked.

import (
	"container/heap"

	"vprobe/internal/mem"
)

type scoreCache struct {
	c       *Cluster
	classes []*classScores
}

// classScores caches one spec class's per-host filter verdicts and
// weighted scores, arranged as a max-heap over host indices.
type classScores struct {
	memMB int64
	vcpus int
	// spec is the synthetic class representative handed to plugins; only
	// MemoryMB and VCPUs are set, per the class contract above.
	spec    VMSpec
	entries []scoreEntry // indexed by host
	order   []int32      // heap of host indices
	pos     []int32      // pos[host] is the host's position in order
	dirty   []int32      // hosts whose generation moved since last drain
	inDirty []bool
}

type scoreEntry struct {
	gen      uint64
	score    float64
	feasible bool
}

func newScoreCache(c *Cluster) *scoreCache { return &scoreCache{c: c} }

// invalidate marks one host stale in every class. Cheap by design: a
// host refresh must not pay per-class rescoring for classes that may
// never place again.
//
//vprobe:hotpath
func (sc *scoreCache) invalidate(host int) {
	for _, cs := range sc.classes {
		if !cs.inDirty[host] {
			cs.inDirty[host] = true
			//vet:alloc the dirty list's backing array grows to at most len(hosts) once, then is reused forever
			cs.dirty = append(cs.dirty, int32(host))
		}
	}
}

// place returns the winning view, memory plan, and error for one spec,
// deciding exactly as Pipeline.Place over fresh views would. The failure
// error is the bare ErrNoHostFits: the admission path only branches on
// err != nil, and rendering per-host veto reasons would put an O(hosts)
// string build on the hot path. Callers that want the diagnostic rerun
// the generic pipeline (as -place-check does).
//
//vprobe:hotpath
func (sc *scoreCache) place(spec *VMSpec) (*HostView, MemPlan, error) {
	cs := sc.class(spec)
	if len(cs.dirty) > 0 {
		for _, h := range cs.dirty {
			cs.inDirty[h] = false
			cs.rescore(sc.c, int(h))
		}
		cs.dirty = cs.dirty[:0]
	}
	top := cs.order[0]
	e := &cs.entries[top]
	if !e.feasible {
		return nil, MemPlan{}, ErrNoHostFits
	}
	hv := sc.c.viewSlice[top]
	plan := MemPlan{Policy: mem.PolicyStripe}
	if sc.c.pipeline.MemPlan != nil {
		plan = sc.c.pipeline.MemPlan(spec, hv)
	}
	return hv, plan, nil
}

// class finds or builds the cache for a spec's (memMB, vcpus) class. The
// class list stays tiny (the generator draws three shapes), so a linear
// scan beats any map — and keeps iteration order deterministic for free.
//
//vprobe:hotpath
func (sc *scoreCache) class(spec *VMSpec) *classScores {
	for _, cs := range sc.classes {
		if cs.memMB == spec.MemoryMB && cs.vcpus == spec.VCPUs {
			return cs
		}
	}
	hosts := len(sc.c.hosts)
	//vet:alloc building a class is a once-per-VM-shape event, amortized over the whole run
	cs := &classScores{
		memMB:   spec.MemoryMB,
		vcpus:   spec.VCPUs,
		spec:    VMSpec{Name: "class", MemoryMB: spec.MemoryMB, VCPUs: spec.VCPUs},
		entries: make([]scoreEntry, hosts), //vet:alloc once per VM shape
		order:   make([]int32, hosts),      //vet:alloc once per VM shape
		pos:     make([]int32, hosts),      //vet:alloc once per VM shape
		dirty:   make([]int32, 0, hosts),   //vet:alloc once per VM shape
		inDirty: make([]bool, hosts),       //vet:alloc once per VM shape
	}
	for h := 0; h < hosts; h++ {
		cs.order[h] = int32(h)
		cs.pos[h] = int32(h)
		cs.compute(sc.c, h)
	}
	heap.Init(cs)
	//vet:alloc class registration is once per VM shape
	sc.classes = append(sc.classes, cs)
	return cs
}

// compute refreshes one host's cached entry from its current view.
//
//vprobe:hotpath
func (cs *classScores) compute(c *Cluster, h int) {
	ho := c.hosts[h]
	e := &cs.entries[h]
	e.gen = ho.gen
	hv := &ho.view
	e.feasible = true
	for _, f := range c.pipeline.Filters {
		if f.Filter(&cs.spec, hv) != nil {
			e.feasible = false
			break
		}
	}
	e.score = 0
	if e.feasible {
		for _, ws := range c.pipeline.Scorers {
			e.score += ws.Weight * ws.Plugin.Score(&cs.spec, hv)
		}
	}
}

// rescore recomputes a dirtied host's entry and repairs its heap
// position. Hosts whose generation did not actually move (invalidated
// twice between drains) are skipped.
//
//vprobe:hotpath
func (cs *classScores) rescore(c *Cluster, h int) {
	if cs.entries[h].gen == c.hosts[h].gen {
		return
	}
	cs.compute(c, h)
	heap.Fix(cs, int(cs.pos[h]))
}

// Len, Less, Swap, Push, Pop implement heap.Interface over order. Less
// ranks i before j when i's host must win: feasible beats infeasible,
// then higher score, then lower host index — the linear scan's order.
func (cs *classScores) Len() int { return len(cs.order) }

func (cs *classScores) Less(i, j int) bool {
	a, b := cs.order[i], cs.order[j]
	ea, eb := &cs.entries[a], &cs.entries[b]
	if ea.feasible != eb.feasible {
		return ea.feasible
	}
	if ea.score != eb.score {
		return ea.score > eb.score
	}
	return a < b
}

func (cs *classScores) Swap(i, j int) {
	cs.order[i], cs.order[j] = cs.order[j], cs.order[i]
	cs.pos[cs.order[i]] = int32(i)
	cs.pos[cs.order[j]] = int32(j)
}

// Push and Pop are required by heap.Interface but never used: class heaps
// have fixed membership (every host, always), only priorities move.
func (cs *classScores) Push(any) { panic("cluster: classScores.Push: fixed membership") }
func (cs *classScores) Pop() any { panic("cluster: classScores.Pop: fixed membership") }
