// Package controlplane holds the cluster's policy brain: the pure,
// deterministic planners behind priority-aware admission. Where
// internal/cluster's Filter/Score pipeline answers "which host takes this
// VM?", this package answers the harder control-plane questions that only
// arise when the pipeline says "none":
//
//   - Preemption (PlanPreemption): find, per host, a minimal set of
//     strictly-lower-priority victims whose eviction admits a blocked
//     arrival, priced by the migration cost model, and pick the cheapest
//     host.
//   - Backfill (ShadowReservation / CanBackfill): decide whether a small
//     low-priority VM may jump the admission queue into a fragmentation
//     hole without delaying the blocked queue head, by shadow-placing the
//     head against the known departure schedule.
//   - Defragmentation (PlanDrain): during low load, pick the emptiest host
//     whose entire population can be re-placed elsewhere, so the cluster
//     consolidates and fragmentation holes close.
//
// Every planner is a pure function of plain-data snapshots (Request,
// HostCap, Departure) plus a caller-supplied FitFunc wrapping the real
// placement filters. Nothing here touches live hosts, RNGs, or clocks, and
// every search order carries a total tiebreak (priority, cost, ID, host
// index) — which is what lets internal/cluster call these planners between
// parallel host advances and still produce byte-identical runs at any
// worker count.
package controlplane

import (
	"fmt"
	"strings"
)

// Priority is a VM's admission priority class. Higher values outrank
// lower: the admission queue drains in descending priority, and preemption
// may evict only strictly-lower-priority victims.
type Priority int

// The priority classes, lowest first.
const (
	// BestEffort VMs are the preemption fodder: placed when room exists,
	// evicted first when a higher class needs the space.
	BestEffort Priority = iota
	// Standard is the default class for ordinary workloads.
	Standard
	// Critical VMs outrank everything and may preempt both lower classes.
	Critical
)

// String returns the class name used in specs, flags, and reports.
func (p Priority) String() string {
	switch p {
	case BestEffort:
		return "best-effort"
	case Standard:
		return "standard"
	case Critical:
		return "critical"
	}
	return fmt.Sprintf("Priority(%d)", int(p))
}

// Weight is the class's weight in priority-weighted latency aggregates
// (best-effort 1, standard 2, critical 4).
func (p Priority) Weight() float64 {
	switch p {
	case Standard:
		return 2
	case Critical:
		return 4
	}
	return 1
}

// Priorities returns the classes lowest-first.
func Priorities() []Priority { return []Priority{BestEffort, Standard, Critical} }

// ParsePriority maps a class name to its Priority.
func ParsePriority(s string) (Priority, error) {
	for _, p := range Priorities() {
		if p.String() == s {
			return p, nil
		}
	}
	names := make([]string, 0, 3)
	for _, p := range Priorities() {
		names = append(names, p.String())
	}
	return 0, fmt.Errorf("controlplane: unknown priority %q (have %s)",
		s, strings.Join(names, ", "))
}

// Request is a pending placement as the control plane sees it: the
// resource ask and the class, stripped of workload detail.
type Request struct {
	ID       int
	MemoryMB int64
	VCPUs    int
	Priority Priority
}

// Victim is one evictable running VM on a host: what evicting it frees,
// and what the eviction costs (the full-copy migration price, charged
// whether the victim is live-migrated or killed and requeued).
type Victim struct {
	ID             int
	MemoryMB       int64
	VCPUs          int
	Priority       Priority
	FreesPerNodeMB []int64
	CostCycles     float64
}

// HostCap is the capacity snapshot of one host the planners search over.
// Victims lists the evictable VMs relevant to the current question
// (strictly-lower-priority residents for PlanPreemption, every movable
// resident for PlanDrain); LiveVMs is the host's total live population, so
// PlanDrain can tell "all residents movable" from "some pinned".
type HostCap struct {
	Index         int
	FreePerNodeMB []int64
	GuestVCPUs    int
	VCPUCap       int
	LiveVMs       int
	Victims       []Victim
}

// FreeMB sums the per-node free memory.
func (h *HostCap) FreeMB() int64 {
	var t int64
	for _, f := range h.FreePerNodeMB {
		t += f
	}
	return t
}

// clone deep-copies the capacity fields (Victims are shared; planners
// never mutate them).
func (h *HostCap) clone() HostCap {
	c := *h
	c.FreePerNodeMB = append([]int64(nil), h.FreePerNodeMB...)
	return c
}

// FitFunc reports whether req fits host at the given what-if capacity. The
// cluster wraps its placement pipeline's filter phase here, so every
// planner admits exactly what the real pipeline would.
type FitFunc func(req Request, host *HostCap) bool
