// Package core implements the paper's contribution as pure, independently
// testable algorithms: the PMU data analyzer (Eqs. 1–3), the VCPU
// periodical partitioning mechanism (Algorithm 1), and the NUMA-aware load
// balance mechanism (Algorithm 2). It also implements the §VI future-work
// extension of dynamically adapted classification bounds.
//
// Nothing here depends on the hypervisor model; internal/sched adapts these
// functions into scheduler policies. That separation mirrors the paper's
// own: the mechanisms are defined over per-VCPU memory-access
// characteristics, however obtained.
package core

import (
	"fmt"

	"vprobe/internal/numa"
	"vprobe/internal/pmu"
)

// VCPUType is the paper's three-way classification (Eq. 3).
type VCPUType int

const (
	// TypeFR is LLC friendly: negligible LLC demand.
	TypeFR VCPUType = iota
	// TypeFI is LLC fitting: fits alone, degrades under contention.
	TypeFI
	// TypeT is LLC thrashing: misses heavily regardless of share.
	TypeT
)

// String returns the paper's name for the type.
func (t VCPUType) String() string {
	switch t {
	case TypeFR:
		return "LLC-FR"
	case TypeFI:
		return "LLC-FI"
	case TypeT:
		return "LLC-T"
	default:
		return fmt.Sprintf("VCPUType(%d)", int(t))
	}
}

// MemoryIntensive reports whether the type participates in periodical
// partitioning (LLC-T and LLC-FI do; LLC-FR VCPUs stay with the default
// load balancing, §III-C).
func (t VCPUType) MemoryIntensive() bool { return t == TypeFI || t == TypeT }

// Bounds are the classification thresholds of Eq. 3. The paper calibrates
// low=3 and high=20 from Fig. 3 (§IV-A).
type Bounds struct {
	Low  float64
	High float64
}

// DefaultBounds returns the paper's calibrated bounds.
func DefaultBounds() Bounds { return Bounds{Low: 3, High: 20} }

// Validate reports whether the bounds are ordered.
func (b Bounds) Validate() error {
	if b.Low < 0 || b.High < b.Low {
		return fmt.Errorf("core: invalid bounds low=%v high=%v", b.Low, b.High)
	}
	return nil
}

// Classify applies Eq. 3 to an LLC access pressure.
func (b Bounds) Classify(pressure float64) VCPUType {
	switch {
	case pressure < b.Low:
		return TypeFR
	case pressure < b.High:
		return TypeFI
	default:
		return TypeT
	}
}

// Stat is the analyzer's per-VCPU output for one sampling period: the two
// memory access characteristics of §III-B plus the derived type.
type Stat struct {
	// VCPU is an opaque identifier assigned by the caller.
	VCPU int
	// Pressure is the LLC access pressure R of Eq. 2.
	Pressure float64
	// Affinity is the memory node affinity of Eq. 1 (NoNode when the
	// VCPU made no memory accesses during the period).
	Affinity numa.NodeID
	// Type is the Eq. 3 classification of Pressure.
	Type VCPUType
}

// Analyzer computes Stats from sampled PMU windows. This is the paper's
// "PMU data analyzer" component.
type Analyzer struct {
	// Alpha is Eq. 2's scaling constant (paper: 1000).
	Alpha float64
	// Bounds classify the resulting pressures.
	Bounds Bounds
}

// NewAnalyzer returns an analyzer with the paper's constants.
func NewAnalyzer() *Analyzer {
	return &Analyzer{Alpha: 1000, Bounds: DefaultBounds()}
}

// Analyze converts one VCPU's sampling-period delta into a Stat.
func (a *Analyzer) Analyze(vcpu int, d pmu.Delta) Stat {
	p := d.Pressure(a.Alpha)
	return Stat{
		VCPU:     vcpu,
		Pressure: p,
		Affinity: d.AffinityNode(),
		Type:     a.Bounds.Classify(p),
	}
}
