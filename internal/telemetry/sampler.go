package telemetry

import (
	"fmt"
	"io"
	"strconv"

	"vprobe/internal/sim"
)

// preallocRows is the default sample-row capacity of the ring. 2048 rows
// covers over half an hour of simulated time at the default one-second
// period. The ring is a true circular buffer: capacity is fixed at Start
// (raise it with Reserve before Start when the horizon is known) and
// snapshots past it overwrite the oldest rows, so the snapshot path never
// allocates no matter how long the run.
const preallocRows = 2048

// cellKind selects how one ring cell reads its source series.
type cellKind uint8

const (
	cellCounter cellKind = iota
	cellGauge
	cellHistSum
	cellHistCount
)

// cell is one column of the time-series ring: a series id plus how to
// read one float64 from its handle. Histograms contribute two cells
// (name_sum, name_count); their per-bucket breakdown is exported through
// the Prometheus endpoint only, keeping rows compact.
type cell struct {
	id   string
	kind cellKind
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// value reads the cell's current value.
func (cl *cell) value() float64 {
	switch cl.kind {
	case cellCounter:
		return cl.c.v
	case cellGauge:
		return cl.g.v
	case cellHistSum:
		return cl.h.sum
	default:
		return float64(cl.h.count)
	}
}

// Sampler snapshots a Registry's series into an in-memory time-series
// ring at a fixed virtual-time period. Hooks registered with OnSample run
// (in registration order) immediately before each snapshot, so gauges
// derived from model state are fresh in every row.
type Sampler struct {
	reg     *Registry
	period  sim.Duration
	hooks   []func()
	cells   []cell
	capRows int
	times   []sim.Time
	data    []float64 // row-major: capRows rows of len(cells) columns
	rows    int       // total snapshots taken (may exceed capRows)
	started bool
}

// NewSampler builds a sampler over reg. A non-positive period defaults to
// one simulated second (the paper's PMU sampling period).
func NewSampler(reg *Registry, period sim.Duration) *Sampler {
	if period <= 0 {
		period = sim.Second
	}
	return &Sampler{reg: reg, period: period}
}

// Registry returns the registry the sampler snapshots.
func (s *Sampler) Registry() *Registry { return s.reg }

// Period returns the sampling period.
func (s *Sampler) Period() sim.Duration { return s.period }

// Reserve raises the ring's row capacity to at least rows before Start.
// Run entry points that know the horizon call Reserve(horizon/period+2)
// so the ring never wraps and the export covers the whole run; the
// default capacity only matters for open-ended callers.
func (s *Sampler) Reserve(rows int) {
	if s.started {
		panic("telemetry: Reserve after Start")
	}
	if rows > s.capRows {
		s.capRows = rows
	}
}

// OnSample registers a hook to run before each snapshot, after any hooks
// registered earlier. Hooks must only read simulation state (never mutate
// it, consume randomness, or schedule events): the telemetry-off and
// telemetry-on runs of the same seed must stay byte-identical.
func (s *Sampler) OnSample(fn func()) {
	if s.started {
		panic("telemetry: OnSample after Start")
	}
	s.hooks = append(s.hooks, fn)
}

// Start seals the registry, preallocates the ring, and arms the sampling
// ticker on e: the first snapshot lands at one period after the current
// engine time, then every period thereafter. Call it once, after the
// model's own tickers are armed, so same-timestamp model updates (e.g.
// the PMU period pass) order before the snapshot that reads them.
func (s *Sampler) Start(e *sim.Engine) {
	if s.started {
		panic("telemetry: Start called twice")
	}
	s.started = true
	s.reg.seal()
	for _, sr := range s.reg.series {
		switch sr.kind {
		case KindCounter:
			s.cells = append(s.cells, cell{id: sr.id, kind: cellCounter, c: sr.c})
		case KindGauge:
			s.cells = append(s.cells, cell{id: sr.id, kind: cellGauge, g: sr.g})
		case KindHistogram:
			s.cells = append(s.cells,
				cell{id: renderID(sr.name+"_sum", sr.labels), kind: cellHistSum, h: sr.h},
				cell{id: renderID(sr.name+"_count", sr.labels), kind: cellHistCount, h: sr.h})
		}
	}
	if s.capRows < preallocRows {
		s.capRows = preallocRows
	}
	s.times = make([]sim.Time, s.capRows)
	s.data = make([]float64, s.capRows*len(s.cells))
	e.Every(s.period, s.period, "telemetry-sample", func(e *sim.Engine) { s.snapshot(e.Now()) })
}

// snapshot runs the hooks and writes one row into the ring, overwriting
// the oldest row once capacity is exceeded. The whole path is
// allocation-free: the backing arrays are sized at Start and only ever
// written in place.
//
//vprobe:hotpath
func (s *Sampler) snapshot(now sim.Time) {
	for _, fn := range s.hooks {
		fn()
	}
	slot := s.rows % s.capRows
	s.rows++
	s.times[slot] = now
	base := slot * len(s.cells)
	for i := range s.cells {
		s.data[base+i] = s.cells[i].value()
	}
}

// Rows returns the number of samples retained in the ring (total taken,
// capped at the ring capacity).
func (s *Sampler) Rows() int {
	if s.rows > s.capRows && s.capRows > 0 {
		return s.capRows
	}
	return s.rows
}

// row maps a logical row (0 = oldest retained) to its ring slot.
func (s *Sampler) row(logical int) int {
	if s.rows <= s.capRows {
		return logical
	}
	return (s.rows + logical) % s.capRows
}

// WriteJSONL exports the ring as JSON Lines: one object per sample, with
// "t" (the sample's virtual time in seconds) first and then one key per
// cell in registration order. Label blocks appear in the key unquoted —
// `xen_steals_total{kind=local}` — so keys need no JSON escaping and stay
// grep-friendly.
func (s *Sampler) WriteJSONL(w io.Writer) error {
	if !s.started {
		return fmt.Errorf("telemetry: WriteJSONL before Start")
	}
	buf := make([]byte, 0, 64*len(s.cells))
	for logical := 0; logical < s.Rows(); logical++ {
		row := s.row(logical)
		buf = buf[:0]
		buf = append(buf, `{"t":`...)
		buf = strconv.AppendFloat(buf, s.times[row].Seconds(), 'g', -1, 64)
		base := row * len(s.cells)
		for i := range s.cells {
			buf = append(buf, ',', '"')
			buf = appendJSONKey(buf, s.cells[i].id)
			buf = append(buf, '"', ':')
			buf = strconv.AppendFloat(buf, s.data[base+i], 'g', -1, 64)
		}
		buf = append(buf, '}', '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// appendJSONKey appends the series id with its label values unquoted
// (`name{k=v}`), which keeps the key free of characters needing JSON
// escapes (ids are built from metric names and label literals only).
func appendJSONKey(buf []byte, id string) []byte {
	for i := 0; i < len(id); i++ {
		if id[i] != '"' {
			buf = append(buf, id[i])
		}
	}
	return buf
}
