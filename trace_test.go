package vprobe_test

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"vprobe"
	"vprobe/internal/telemetry"
)

// TestTracingExports covers the public flight recorder end to end: a
// traced single-host run records lifecycle spans, exports valid JSONL and
// a valid Chrome trace, and drops nothing at the default limit.
func TestTracingExports(t *testing.T) {
	tracing := vprobe.NewTracing(vprobe.TracingOptions{})
	s, err := vprobe.NewSimulator(vprobe.Config{
		Scheduler: vprobe.SchedulerVProbe,
		Spans:     tracing,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Tracing() != tracing {
		t.Fatal("Simulator.Tracing() does not return the attached recorder")
	}
	addStandardVMs(t, s)
	if _, err := s.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if tracing.Spans() == 0 {
		t.Fatal("traced run recorded no spans")
	}
	if tracing.Dropped() != 0 {
		t.Fatalf("default limit dropped %d spans", tracing.Dropped())
	}

	var jsonl bytes.Buffer
	if err := tracing.WriteSpans(&jsonl); err != nil {
		t.Fatal(err)
	}
	spans, err := telemetry.ReadSpans(&jsonl)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != tracing.Spans() {
		t.Fatalf("JSONL carries %d spans, recorder says %d", len(spans), tracing.Spans())
	}
	// Both standard VMs have lifecycle spans under the run root.
	vms := map[string]bool{}
	for i := range spans {
		if spans[i].Kind == telemetry.SpanDomain {
			vms[spans[i].VM] = true
		}
	}
	if !vms["measured"] || !vms["burner"] {
		t.Fatalf("domain spans missing VMs: %v", vms)
	}

	var chrome bytes.Buffer
	if err := tracing.WriteChromeTrace(&chrome); err != nil {
		t.Fatal(err)
	}
	if _, err := telemetry.ValidateChromeTrace(chrome.Bytes()); err != nil {
		t.Fatal(err)
	}
}

// TestTracingAttachOnce pins the recorder reuse error on both run kinds.
func TestTracingAttachOnce(t *testing.T) {
	tracing := vprobe.NewTracing(vprobe.TracingOptions{})
	if _, err := vprobe.NewSimulator(vprobe.Config{Spans: tracing}); err != nil {
		t.Fatal(err)
	}
	if _, err := vprobe.NewSimulator(vprobe.Config{Spans: tracing}); !errors.Is(err, vprobe.ErrTracingAttached) {
		t.Fatalf("reusing a recorder: err = %v, want ErrTracingAttached", err)
	}
	if _, err := vprobe.RunCluster(context.Background(), vprobe.ClusterConfig{
		Horizon: time.Second, Spans: tracing,
	}); !errors.Is(err, vprobe.ErrTracingAttached) {
		t.Fatalf("reusing a recorder for a cluster: err = %v, want ErrTracingAttached", err)
	}
}

// runStandardSpans runs the standard scenario and returns the rendered
// report plus the event stream, optionally with the flight recorder on.
func runStandardSpans(t *testing.T, withSpans bool) string {
	t.Helper()
	var sb strings.Builder
	cfg := vprobe.Config{
		Scheduler: vprobe.SchedulerVProbe,
		Events: vprobe.EventFunc(func(ev vprobe.Event) {
			sb.WriteString(ev.At.String())
			sb.WriteByte(' ')
			sb.WriteString(ev.Detail)
			sb.WriteByte('\n')
		}),
	}
	if withSpans {
		cfg.Spans = vprobe.NewTracing(vprobe.TracingOptions{})
	}
	s, err := vprobe.NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addStandardVMs(t, s)
	rep, err := s.Run(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	sb.WriteString(rep.String())
	return sb.String()
}

// TestTracingReportIdentical is the acceptance criterion at the public
// API: report and event stream are byte-identical with tracing on or off.
func TestTracingReportIdentical(t *testing.T) {
	off := runStandardSpans(t, false)
	on := runStandardSpans(t, true)
	if off != on {
		t.Fatal("simulation output diverges with tracing attached")
	}
}

// TestClusterTracing runs a traced public cluster and checks the span
// file answers a provenance query end to end.
func TestClusterTracing(t *testing.T) {
	tracing := vprobe.NewTracing(vprobe.TracingOptions{})
	rep, err := vprobe.RunCluster(context.Background(), vprobe.ClusterConfig{
		Hosts:   2,
		Seed:    9,
		Horizon: 60 * time.Second,
		Workers: 4,
		Spans:   tracing,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Placed == 0 {
		t.Fatal("nothing placed")
	}
	if tracing.Spans() == 0 {
		t.Fatal("traced cluster recorded no spans")
	}
	var jsonl bytes.Buffer
	if err := tracing.WriteSpans(&jsonl); err != nil {
		t.Fatal(err)
	}
	spans, err := telemetry.ReadSpans(&jsonl)
	if err != nil {
		t.Fatal(err)
	}
	ix := telemetry.NewSpanIndex(spans)
	vms := ix.VMs()
	if len(vms) == 0 {
		t.Fatal("span index has no VMs")
	}
	why, err := ix.ExplainWhy(vms[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(why, "decision place") {
		t.Fatalf("ExplainWhy(%s) = %q", vms[0], why)
	}
}
