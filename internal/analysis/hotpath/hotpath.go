// Package hotpath enforces the allocation-free quantum contract at compile
// time. Functions annotated `//vprobe:hotpath` (the quantum roots: the
// xen dispatch/quantum-end/account/wake callbacks, the sim engine loop,
// the perf/mem evaluation kernels, Algorithm 1's partition pass, and the
// cluster numa admission path) become roots of a reachability walk over
// the module-wide call graph — including calls made through interfaces,
// resolved to every module implementation — and any reachable function
// containing an allocating construct is a diagnostic:
//
//   - append (may grow its backing array)
//   - make / new / map and slice literals / &composite literals
//   - fmt.* calls
//   - string concatenation and string<->[]byte/[]rune conversions
//   - closure creation (func literals)
//   - interface boxing: non-pointer-shaped values converted to interface
//     types at call arguments or assignments, and variadic interface
//     calls (the argument slice itself allocates)
//
// Constructs that only feed panic() are exempt (a crash path is not the
// steady state). Everything else must carry an explicit, written
// justification: `//vet:alloc <reason>` on the same line or the line
// above. A bare `//vet:alloc` with no reason is itself a diagnostic — the
// contract requires the why, not just the waiver. The runtime guardrail
// (TestQuantumSteadyStateZeroAlloc) catches regressions that execute;
// this analyzer catches the ones hiding in rarely-taken branches.
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"

	"vprobe/internal/analysis/framework"
)

// Marker is the annotation that makes a function a hot-path root.
const Marker = "vprobe:hotpath"

// Analyzer is the hot-path allocation check.
var Analyzer = &framework.ModuleAnalyzer{
	Name: "hotpath",
	Doc: "flag allocating constructs reachable from //vprobe:hotpath roots " +
		"(suppress with //vet:alloc <reason>; the reason is required)",
	Run:        run,
	Directives: []string{"alloc"},
}

// HotFact is exported (via ModulePass.ExportObjectFact) for every function
// the walk reaches: the short name of the root it was first reached from.
type HotFact = string

func run(pass *framework.ModulePass) (any, error) {
	g := framework.BuildCallGraph(pass.Pkgs)

	// Roots in (package, file, declaration) order — never map order.
	var queue []*types.Func
	rootOf := map[*types.Func]*types.Func{}
	for _, pkg := range pass.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || !framework.FuncAnnotated(fd, Marker) {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok || g.Nodes[fn] == nil {
					continue
				}
				rootOf[fn] = fn
				queue = append(queue, fn)
			}
		}
	}

	// Breadth-first reachability over the module graph.
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		node := g.Nodes[fn]
		if node == nil {
			continue // declared outside the loaded set (stdlib)
		}
		for _, callee := range node.Callees {
			if _, seen := rootOf[callee]; seen {
				continue
			}
			rootOf[callee] = rootOf[fn]
			queue = append(queue, callee)
		}
	}

	for fn, root := range rootOf {
		node := g.Nodes[fn]
		if node == nil {
			continue
		}
		pass.ExportObjectFact(fn, HotFact(shortName(root)))
	}

	// Scan reachable bodies in deterministic package/file order.
	for _, pkg := range pass.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				root, hot := rootOf[fn]
				if !hot {
					continue
				}
				s := &scanner{pass: pass, info: pkg.Info, fn: fn, root: root}
				s.scan(fd.Body)
			}
		}
	}
	return nil, nil
}

// scanner walks one reachable function body and reports allocating
// constructs.
type scanner struct {
	pass *framework.ModulePass
	info *types.Info
	fn   *types.Func
	root *types.Func
	// panicSpans are the argument ranges of panic() calls: allocation on a
	// crash path is exempt.
	panicSpans []span
}

type span struct{ lo, hi token.Pos }

func (s *scanner) scan(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if b, ok := s.info.ObjectOf(id).(*types.Builtin); ok && b.Name() == "panic" {
				s.panicSpans = append(s.panicSpans, span{call.Pos(), call.End()})
			}
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			s.checkCall(n)
		case *ast.CompositeLit:
			s.checkComposite(n)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					s.report(n.Pos(), "address-of composite literal may escape to the heap")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && s.isString(n) && !s.isConst(n) {
				s.report(n.Pos(), "string concatenation allocates")
			}
		case *ast.AssignStmt:
			s.checkAssign(n)
		case *ast.ValueSpec:
			s.checkValueSpec(n)
		case *ast.FuncLit:
			s.report(n.Pos(), "closure creation may allocate (captured variables escape)")
		}
		return true
	})
}

// report files one diagnostic unless the site is on a panic path or
// carries a justified //vet:alloc directive.
func (s *scanner) report(pos token.Pos, what string) {
	for _, sp := range s.panicSpans {
		if pos >= sp.lo && pos < sp.hi {
			return
		}
	}
	if d, ok := s.pass.Suppression(pos, "alloc"); ok {
		if d.Reason == "" {
			s.pass.Reportf(pos, "//vet:alloc requires a written reason (suppressing: %s)", what)
		}
		return
	}
	s.pass.Reportf(pos, "%s in %s, reachable from //vprobe:hotpath root %s; "+
		"justify with //vet:alloc <reason> or move it off the hot path",
		what, shortName(s.fn), shortName(s.root))
}

func (s *scanner) checkCall(call *ast.CallExpr) {
	fun := ast.Unparen(call.Fun)

	// Conversions: T(x).
	if tv, ok := s.info.Types[call.Fun]; ok && tv.IsType() {
		s.checkConversion(call, tv.Type)
		return
	}

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := s.info.ObjectOf(id).(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				s.report(call.Pos(), "append may grow its backing array")
			case "make":
				s.report(call.Pos(), "make allocates")
			case "new":
				s.report(call.Pos(), "new allocates")
			}
			return
		}
	}

	// fmt.* — formatting always allocates.
	if fn := calleeFunc(s.info, fun); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		s.report(call.Pos(), "fmt."+fn.Name()+" allocates")
		return
	}

	// Interface boxing at the call boundary.
	sig, ok := s.info.Types[call.Fun].Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	if sig.Variadic() && call.Ellipsis == token.NoPos {
		fixed := params.Len() - 1
		elem := params.At(fixed).Type().(*types.Slice).Elem()
		if types.IsInterface(elem) && len(call.Args) > fixed {
			s.report(call.Pos(), "variadic interface call allocates its argument slice")
			return
		}
	}
	for i, arg := range call.Args {
		if i >= params.Len() || (sig.Variadic() && i >= params.Len()-1) {
			break
		}
		if s.boxes(params.At(i).Type(), arg) {
			s.report(arg.Pos(), "interface boxing: non-pointer value converted to interface")
			return
		}
	}
}

func (s *scanner) checkConversion(call *ast.CallExpr, to types.Type) {
	if len(call.Args) != 1 {
		return
	}
	from := s.info.TypeOf(call.Args[0])
	if from == nil {
		return
	}
	if tv, ok := s.info.Types[call]; ok && tv.Value != nil {
		return // constant conversion, folded at compile time
	}
	switch {
	case isString(to) && (isByteOrRuneSlice(from) || isInteger(from)):
		s.report(call.Pos(), "conversion to string allocates")
	case isByteOrRuneSlice(to) && isString(from):
		s.report(call.Pos(), "string-to-slice conversion allocates")
	case types.IsInterface(to.Underlying()) && !types.IsInterface(from.Underlying()) && !pointerShaped(from):
		s.report(call.Pos(), "interface boxing: non-pointer value converted to interface")
	}
}

func (s *scanner) checkComposite(lit *ast.CompositeLit) {
	t := s.info.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Map:
		s.report(lit.Pos(), "map literal allocates")
	case *types.Slice:
		s.report(lit.Pos(), "slice literal allocates")
	}
}

func (s *scanner) checkAssign(as *ast.AssignStmt) {
	if as.Tok == token.ADD_ASSIGN && len(as.Lhs) == 1 && s.isString(as.Lhs[0]) {
		s.report(as.Pos(), "string concatenation allocates")
		return
	}
	for i, lhs := range as.Lhs {
		if i >= len(as.Rhs) {
			break
		}
		lt := s.info.TypeOf(lhs)
		if lt == nil {
			continue
		}
		if s.boxes(lt, as.Rhs[i]) {
			s.report(as.Rhs[i].Pos(), "interface boxing: non-pointer value converted to interface")
		}
	}
}

func (s *scanner) checkValueSpec(vs *ast.ValueSpec) {
	if vs.Type == nil {
		return
	}
	dt := s.info.TypeOf(vs.Type)
	if dt == nil {
		return
	}
	for _, v := range vs.Values {
		if s.boxes(dt, v) {
			s.report(v.Pos(), "interface boxing: non-pointer value converted to interface")
		}
	}
}

// boxes reports whether assigning expr to a destination of type dst is an
// allocating interface conversion.
func (s *scanner) boxes(dst types.Type, expr ast.Expr) bool {
	if !types.IsInterface(dst.Underlying()) {
		return false
	}
	et := s.info.TypeOf(expr)
	if et == nil || types.IsInterface(et.Underlying()) || pointerShaped(et) {
		return false
	}
	if tv, ok := s.info.Types[expr]; ok && tv.Value != nil && isString(et) {
		return true // non-empty constant strings still box through a heap header
	}
	return true
}

func (s *scanner) isString(e ast.Expr) bool {
	t := s.info.TypeOf(e)
	return t != nil && isString(t)
}

func (s *scanner) isConst(e ast.Expr) bool {
	tv, ok := s.info.Types[e]
	return ok && tv.Value != nil
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isInteger(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// pointerShaped reports whether values of t fit an interface word without
// allocating: pointers, maps, channels, funcs, unsafe pointers.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer || u.Kind() == types.UntypedNil
	}
	return false
}

func calleeFunc(info *types.Info, fun ast.Expr) *types.Func {
	switch fun := fun.(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// shortName renders a function as it reads in the source: Partition,
// (*Hypervisor).dispatch, (Dist).CloneInto.
func shortName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Name()
	}
	recv := types.TypeString(sig.Recv().Type(), func(p *types.Package) string { return "" })
	// TypeString with an empty qualifier leaves a leading dot for named
	// types ("*.Hypervisor"); strip it.
	out := make([]byte, 0, len(recv))
	for i := 0; i < len(recv); i++ {
		if recv[i] == '.' && (i == 0 || recv[i-1] == '*' || recv[i-1] == '[' || recv[i-1] == ' ') {
			continue
		}
		out = append(out, recv[i])
	}
	return "(" + string(out) + ")." + fn.Name()
}
