package numa

// FreeIndex maintains one host's per-node free-memory state incrementally
// under placement deltas, following Gudkov et al.'s available-space
// formulation: the memory a multi-NUMA VM can actually use is not the
// host-wide free total but the sum of the largest per-node free chunks it
// is allowed to span. The cluster layer's admission filter asks that
// question once per (pending VM, host) pair on every placement pass, so
// recomputing it by copying and sorting the free vector — the from-scratch
// AvailableMB — is the placement hot path's dominant cost on large fleets.
//
// The index keeps the node order sorted by (free desc, node asc) and
// repairs it locally on each delta: a Set, Take, or Give shifts at most
// the one changed node through its neighbours, so an update is O(nodes)
// worst case with nodes a small constant (2–8 on every supported
// topology), and the TopSum / Best queries the admission filter and the
// memory planner ask are O(split) and O(1) with zero allocation.
//
// Every query is defined to agree exactly with the from-scratch
// computation on the same free vector: TopSum(k) equals AvailableMB(free,
// k) and Best equals the lowest-numbered node of maximum free. The
// randomized cross-check in freeindex_test.go pins that equivalence over
// long mixed delta sequences, which is what lets the cluster layer trust
// the incremental state for byte-identical placement decisions.
//
// Generation counts mutations. Consumers that cache decisions derived
// from the index (the cluster's score cache) compare generations instead
// of values: a bumped generation means every derived decision must be
// recomputed.
type FreeIndex struct {
	free  []int64  // free[node] is the node's free MB
	order []NodeID // node ids sorted by (free desc, node asc)
	rank  []int    // rank[node] is the node's position in order
	total int64
	gen   uint64
}

// NewFreeIndex builds an index over a copy of the given per-node free
// vector.
func NewFreeIndex(free []int64) *FreeIndex {
	ix := &FreeIndex{
		free:  make([]int64, len(free)),
		order: make([]NodeID, len(free)),
		rank:  make([]int, len(free)),
	}
	ix.Reset(free)
	return ix
}

// Reset reloads the index from a full free vector of the same length,
// keeping the backing storage. It counts as one mutation.
func (ix *FreeIndex) Reset(free []int64) {
	if len(free) != len(ix.free) {
		panic("numa: FreeIndex.Reset with a different node count")
	}
	ix.total = 0
	for n, f := range free {
		ix.free[n] = f
		ix.order[n] = NodeID(n)
		ix.rank[n] = n
		ix.total += f
	}
	// Insertion sort into (free desc, node asc) order: node counts are
	// tiny and the identity permutation is already sorted on ties.
	for i := 1; i < len(ix.order); i++ {
		for j := i; j > 0 && ix.less(ix.order[j], ix.order[j-1]); j-- {
			ix.swap(j, j-1)
		}
	}
	ix.gen++
}

// less orders node a strictly before node b: more free memory first, ties
// toward the lower node id — the same total order the from-scratch sort
// and bestNode tie-break use.
func (ix *FreeIndex) less(a, b NodeID) bool {
	if ix.free[a] != ix.free[b] {
		return ix.free[a] > ix.free[b]
	}
	return a < b
}

// swap exchanges order positions i and j and repairs the rank map.
func (ix *FreeIndex) swap(i, j int) {
	ix.order[i], ix.order[j] = ix.order[j], ix.order[i]
	ix.rank[ix.order[i]] = i
	ix.rank[ix.order[j]] = j
}

// Set is the incremental delta: node's free amount becomes mb, and the
// node shifts through its sorted neighbours to its new position. Setting
// the current value is a no-op that leaves the generation untouched.
//
//vprobe:hotpath
func (ix *FreeIndex) Set(node NodeID, mb int64) {
	if ix.free[node] == mb {
		return
	}
	ix.total += mb - ix.free[node]
	ix.free[node] = mb
	i := ix.rank[node]
	for i > 0 && ix.less(ix.order[i], ix.order[i-1]) {
		ix.swap(i, i-1)
		i--
	}
	for i < len(ix.order)-1 && ix.less(ix.order[i+1], ix.order[i]) {
		ix.swap(i, i+1)
		i++
	}
	ix.gen++
}

// Take deducts a placement's per-node share from the node.
//
//vprobe:hotpath
func (ix *FreeIndex) Take(node NodeID, mb int64) { ix.Set(node, ix.free[node]-mb) }

// Give returns a departure's per-node share to the node.
//
//vprobe:hotpath
func (ix *FreeIndex) Give(node NodeID, mb int64) { ix.Set(node, ix.free[node]+mb) }

// FreeMB returns one node's free memory.
func (ix *FreeIndex) FreeMB(node NodeID) int64 { return ix.free[node] }

// TotalMB returns the host-wide free memory.
func (ix *FreeIndex) TotalMB() int64 { return ix.total }

// Nodes returns the node count.
func (ix *FreeIndex) Nodes() int { return len(ix.free) }

// TopSum returns the available space for a VM allowed to span at most k
// nodes: the sum of the k largest free chunks, equal to AvailableMB on
// the same vector. k below 1 is treated as 1; k beyond the node count
// sums everything.
//
//vprobe:hotpath
func (ix *FreeIndex) TopSum(k int) int64 {
	if k < 1 {
		k = 1
	}
	if k >= len(ix.order) {
		return ix.total
	}
	var sum int64
	for i := 0; i < k; i++ {
		sum += ix.free[ix.order[i]]
	}
	return sum
}

// Best returns the node with the most free memory (ties toward the lowest
// id) and that node's free MB. An empty index returns (NoNode, -1),
// matching the from-scratch scan over an empty vector.
//
//vprobe:hotpath
func (ix *FreeIndex) Best() (NodeID, int64) {
	if len(ix.order) == 0 {
		return NoNode, -1
	}
	n := ix.order[0]
	return n, ix.free[n]
}

// Generation counts mutations since construction. Equal generations imply
// identical index state; consumers cache derived decisions against it.
func (ix *FreeIndex) Generation() uint64 { return ix.gen }
