package cluster

// The incremental placement engine. The pre-refactor arrival path rebuilt
// every host's view and rescored every host per event — O(hosts) work per
// arrival, which melts at datacenter scale. This file replaces the rebuild
// with persistent views plus a dirty-set:
//
//   - Every Host owns one HostView, refreshed in place when the host is
//     dirty. A host is dirty after an explicit placement delta (domain
//     added, destroyed, or activated), or when it can still execute guest
//     work and its engine advanced past the view's timestamp (running
//     guests move the LLC-pressure and remote-ratio fields). Hosts that
//     are settled — no VMs, no runnable VCPU, every PCPU idle; the
//     overwhelming majority of a large fleet — are never revisited: with
//     nothing current or runnable no quantum can retire, so counters and
//     pressure are frozen, and wakeups of paused VCPUs are no-ops. (The
//     settled test checks PCPUs, not just VCPU states: a domain teardown
//     can race the scheduler's redispatch and leave a VCPU current with
//     an armed quantum while its state reads blocked, so "no VMs and
//     nothing runnable" alone does not mean "quiescent"; see
//     Host.settled.)
//
//   - refreshViews walks only the refresh list (hosts that ever received
//     a delta and still hold VMs), so bringing the fleet current costs
//     O(dirty hosts), not O(hosts).
//
//   - Each refresh bumps the host's generation, which is what invalidates
//     the score cache (scorecache.go). An arrival then costs
//     O(dirty hosts + log H): rescore the dirtied hosts, repair the heap,
//     read the max.
//
// Every value the cached path serves is defined to equal what the
// from-scratch path (Host.freshView + Pipeline.Place) would produce at the
// same instant; the -place-check shadow mode (placecheck.go) enforces that
// equivalence decision by decision.

import "vprobe/internal/numa"

// markDirty flags a placement delta on the host and puts it on the
// refresh list. Call it after any mutation that changes what a view would
// show: AddDomain, DestroyDomain, ActivateDomain, or the VM-list edits
// around them.
//
//vprobe:hotpath
func (c *Cluster) markDirty(ho *Host) {
	ho.dirty = true
	if !ho.queued {
		ho.queued = true
		//vet:alloc the refresh list's backing array grows to at most len(hosts) once, then is reused forever
		c.refreshList = append(c.refreshList, ho)
	}
}

// refreshViews brings every possibly-stale cached view current. Hosts
// drop off the refresh list once they are empty and settled (see
// Host.settled): nothing on such a host can change a view until the
// cluster places something there again, and that placement re-queues it.
// A host that is empty but still winding down guest work (a teardown
// racing the scheduler's redispatch) stays on the list until it
// quiesces, so its pressure and counters keep tracking the truth.
//
//vprobe:hotpath
func (c *Cluster) refreshViews() {
	kept := c.refreshList[:0]
	for _, ho := range c.refreshList {
		if ho.dirty || ho.H.Engine.Now() > ho.viewTime {
			c.refreshHost(ho)
		}
		if len(ho.VMs) > 0 || !ho.settled() {
			//vet:alloc compaction into the list's own backing array; kept starts at refreshList[:0] and can never outgrow it
			kept = append(kept, ho)
		} else {
			ho.queued = false
		}
	}
	c.refreshList = kept
}

// refreshHost recomputes the host's persistent view in place, mirrors the
// per-node free vector into the FreeIndex, bumps the view generation, and
// invalidates the host's cached scores. The field-by-field computation is
// freshView's, so a refreshed cached view always equals a from-scratch
// snapshot taken at the same instant.
//
//vprobe:hotpath
func (c *Cluster) refreshHost(ho *Host) {
	v := &ho.view
	v.GuestVCPUs = ho.guestVCPUs()
	v.VMs = len(ho.VMs)
	v.LLCPressure = ho.llcPressure()
	total, remote := ho.counterTotals()
	ho.ctrTotal, ho.ctrRemote = total, remote
	if total > 0 {
		v.RemoteRatio = remote / total
	} else {
		v.RemoteRatio = 0
	}
	v.FreeMB = 0
	for n := 0; n < v.Nodes; n++ {
		free := ho.H.Alloc.FreeMB(numa.NodeID(n))
		v.FreePerNodeMB[n] = free
		v.FreeMB += free
		ho.freeIdx.Set(numa.NodeID(n), free)
	}
	ho.dirty = false
	ho.viewTime = ho.H.Engine.Now()
	ho.gen++
	c.scores.invalidate(ho.Index)
}

// liveViews returns the stable all-hosts view slice after refreshing
// stale entries. The returned slice and the views it points to are owned
// by the cluster and valid until the next mutation; callers must not hold
// them across events.
func (c *Cluster) liveViews() []*HostView {
	c.refreshViews()
	return c.viewSlice
}

// liveView returns one host's refreshed view wrapped in a reusable
// single-entry slice, for the restricted Place calls (preemption re-place,
// descheduler move checks) that consider exactly one host.
func (c *Cluster) liveView(ho *Host) []*HostView {
	c.refreshViews()
	c.oneView[0] = &ho.view
	return c.oneView[:]
}

// place routes one VM spec through the incremental engine: refresh the
// dirty views, rescore only hosts whose generation moved, and read the
// winner off the class heap. This is the per-arrival hot path; it must
// decide exactly as Pipeline.Place over fresh views of every host would,
// and with -place-check on, checkPlacement verifies that it did.
//
//vprobe:hotpath
func (c *Cluster) place(spec *VMSpec) (*HostView, MemPlan, error) {
	c.refreshViews()
	hv, plan, err := c.scores.place(spec)
	if c.cfg.PlaceCheck {
		c.checkPlacement(spec, hv, plan, err)
	}
	return hv, plan, err
}
