package framework_test

import (
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vprobe/internal/analysis/framework"
)

// loadTree writes sources into a GOPATH-style tree under a temp dir and
// loads the named packages through a TreeLoader, mirroring how analysistest
// fixtures load.
func loadTree(t *testing.T, sources map[string]string, paths ...string) (*framework.Loader, []*framework.Package) {
	t.Helper()
	root := t.TempDir()
	for rel, src := range sources {
		full := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	ld := framework.NewTreeLoader(root)
	var pkgs []*framework.Package
	for _, p := range paths {
		pkg, err := ld.Load(p)
		if err != nil {
			t.Fatalf("Load(%q): %v", p, err)
		}
		pkgs = append(pkgs, pkg)
	}
	return ld, pkgs
}

// lineStart returns the position of the first character of a 1-based line.
func lineStart(t *testing.T, pkg *framework.Package, line int) token.Pos {
	t.Helper()
	return pkg.Fset.File(pkg.Files[0].Pos()).LineStart(line)
}

const suppressionSrc = `package s

func f() []int {
	var out []int
	out = append(out, 1) //vet:alloc grows once during warmup
	out = append(out, 2)
	//vet:alloc the preceding-line form
	out = append(out, 3)
	//vet:alloc
	out = append(out, 4)
	//vet:alloc — em-dash separated reason
	out = append(out, 5)
	//vet:alloc two lines above covers nothing

	out = append(out, 6)
	return out
}
`

func TestSuppressionPlacementAndReason(t *testing.T) {
	_, pkgs := loadTree(t, map[string]string{"s/s.go": suppressionSrc}, "s")
	pkg := pkgs[0]
	pass := &framework.Pass{Fset: pkg.Fset, Files: pkg.Files}

	cases := []struct {
		line       int
		name       string
		suppressed bool
		reason     string
	}{
		{5, "alloc", true, "grows once during warmup"}, // same line
		{6, "alloc", true, "grows once during warmup"}, // line 5's directive sits on the line above
		{8, "alloc", true, "the preceding-line form"},  // preceding line
		{10, "alloc", true, ""},                        // bare directive: covered, no reason
		{12, "alloc", true, "em-dash separated reason"},
		{15, "alloc", false, ""},  // directive two lines up with a blank line between
		{5, "ordered", false, ""}, // a different directive name never matches
	}
	for _, c := range cases {
		pos := lineStart(t, pkg, c.line)
		d, ok := pass.Suppression(pos, c.name)
		if ok != c.suppressed {
			t.Errorf("line %d, name %q: suppressed = %v, want %v", c.line, c.name, ok, c.suppressed)
			continue
		}
		if ok && d.Reason != c.reason {
			t.Errorf("line %d: reason = %q, want %q", c.line, d.Reason, c.reason)
		}
		if got := pass.Suppressed(pos, c.name); got != c.suppressed {
			t.Errorf("line %d: Suppressed = %v disagrees with Suppression", c.line, got)
		}
	}

	// Line 6's match comes from the directive on line 5 (same-line form
	// doubles as the preceding-line form for the next statement). Its
	// reason must carry over unchanged.
	if d, ok := pass.Suppression(lineStart(t, pkg, 6), "alloc"); !ok || d.Reason != "grows once during warmup" {
		t.Errorf("line 6: directive = %+v, ok = %v; want line 5's reason", d, ok)
	}
}

func TestDanglingDirectives(t *testing.T) {
	_, pkgs := loadTree(t, map[string]string{"d/d.go": `package d

func g() {
	_ = map[int]int{} //vet:alloc fine, known
	_ = 1             //vet:allocs typo: trailing s
	//vet:retired this analyzer no longer exists
	_ = 2
}
`}, "d")
	pkg := pkgs[0]
	diags := framework.DanglingDirectives(pkg.Fset, pkgs, []string{"alloc", "ordered"})
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %+v", len(diags), diags)
	}
	for i, want := range []string{"//vet:allocs", "//vet:retired"} {
		if !strings.Contains(diags[i].Message, want) {
			t.Errorf("diag %d = %q, want mention of %s", i, diags[i].Message, want)
		}
		if !strings.Contains(diags[i].Message, "alloc, ordered") {
			t.Errorf("diag %d = %q, want the sorted known list", i, diags[i].Message)
		}
	}
}

// The call-graph fixture spans two packages: pkg a's Root calls b.Helper
// directly, dispatches through an interface (so class-hierarchy analysis
// must add every implementation), and calls b.Other from inside a closure
// (folded into Root).
var callgraphSrc = map[string]string{
	"b/b.go": `package b

func Helper() int { return 1 }

func Other() int { return 2 }

func Unreached() int { return 3 }
`,
	"a/a.go": `package a

import "b"

type Picker interface{ Pick() int }

type First struct{}

func (First) Pick() int { return b.Other() }

type Second struct{}

func (*Second) Pick() int { return 0 }

func Root(p Picker) int {
	n := b.Helper()
	f := func() int { return b.Other() }
	return n + p.Pick() + f()
}
`,
}

func TestBuildCallGraphCrossPackage(t *testing.T) {
	_, pkgs := loadTree(t, callgraphSrc, "b", "a")
	g := framework.BuildCallGraph(pkgs)

	find := func(name string) *framework.FuncNode {
		t.Helper()
		for fn, node := range g.Nodes {
			if fn.Name() == name {
				return node
			}
		}
		t.Fatalf("no node for %s", name)
		return nil
	}
	calleeNames := func(n *framework.FuncNode) map[string]bool {
		out := map[string]bool{}
		for _, c := range n.Callees {
			out[types.ObjectString(c, func(*types.Package) string { return "" })] = true
		}
		return out
	}

	root := calleeNames(find("Root"))
	for _, want := range []string{
		"func Helper() int",         // direct cross-package call
		"func Other() int",          // via the closure, folded into Root
		"func (First).Pick() int",   // CHA: every implementation of Picker
		"func (*Second).Pick() int", //
	} {
		if !root[want] {
			t.Errorf("Root callees missing %q; have %v", want, root)
		}
	}
	if len(root) != 4 {
		t.Errorf("Root has %d callees, want 4: %v", len(root), root)
	}

	// b.Unreached is a node (every declared function is) but nothing calls
	// it — reachability from Root must not include it.
	reached := map[*types.Func]bool{}
	var walk func(fn *types.Func)
	walk = func(fn *types.Func) {
		if reached[fn] {
			return
		}
		reached[fn] = true
		if n := g.Nodes[fn]; n != nil {
			for _, c := range n.Callees {
				walk(c)
			}
		}
	}
	walk(find("Root").Fn)
	if fn := find("Unreached").Fn; reached[fn] {
		t.Errorf("Unreached is reachable from Root")
	}
	if fn := find("Other").Fn; !reached[fn] {
		t.Errorf("Other (via First.Pick and the closure) not reachable from Root")
	}
}

func TestModulePassFacts(t *testing.T) {
	_, pkgs := loadTree(t, map[string]string{"f/f.go": `package f

func A() {}
func B() {}
`}, "f")
	pkg := pkgs[0]
	pass := &framework.ModulePass{Fset: pkg.Fset, Pkgs: pkgs}

	objA := pkg.Types.Scope().Lookup("A")
	objB := pkg.Types.Scope().Lookup("B")
	pass.ExportObjectFact(objA, "hot via Root")
	pass.ExportObjectFact(objA, true)

	var s string
	if !pass.ImportObjectFact(objA, &s) || s != "hot via Root" {
		t.Errorf("string fact on A = %q, found = %v", s, s != "")
	}
	var b bool
	if !pass.ImportObjectFact(objA, &b) || !b {
		t.Errorf("bool fact on A not found")
	}
	if pass.ImportObjectFact(objB, &s) {
		t.Errorf("B has no facts but ImportObjectFact returned true")
	}
}

func TestFindPackageSuffix(t *testing.T) {
	_, pkgs := loadTree(t, map[string]string{"internal/spec/spec.go": "package spec\n"}, "internal/spec")
	pass := &framework.ModulePass{Pkgs: pkgs}
	if pass.FindPackage("internal/spec") == nil {
		t.Errorf("exact path lookup failed")
	}
	if pass.FindPackage("spec") == nil {
		t.Errorf("suffix lookup failed")
	}
	if pass.FindPackage("notloaded") != nil {
		t.Errorf("unknown path resolved")
	}
}
