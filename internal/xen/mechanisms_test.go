package xen_test

import (
	"testing"

	"vprobe/internal/mem"
	"vprobe/internal/numa"
	"vprobe/internal/sched"
	"vprobe/internal/sim"
	"vprobe/internal/workload"
	"vprobe/internal/xen"
)

// TestBoostPreemptsRunner: a waking housekeeping VCPU must not wait a full
// 30 ms timeslice behind a CPU hog — BOOST preempts.
func TestBoostPreemptsRunner(t *testing.T) {
	h := newHV(t, sched.KindCredit)
	d, _ := h.CreateDomain("vm", 2048, 2, mem.PolicyStripe)
	hog, _ := h.AttachApp(d, 0, workload.Hungry())
	gi, _ := h.AttachApp(d, 1, workload.GuestIdle())
	// Pin both to the same PCPU so the burst must preempt the hog.
	h.Pin(hog, 0)
	h.Pin(gi, 0)
	h.Run(2 * sim.Second)
	// Guest idle: ~200µs burst every ~8ms -> ~2.4% duty. Without
	// preemption it would get at most one burst per 30ms hog quantum and
	// spend most time queued; with BOOST its runtime approaches the duty
	// cycle.
	frac := gi.RunTime.Seconds() / 2.0
	if frac < 0.015 {
		t.Fatalf("guest-idle got %.2f%% CPU; BOOST preemption not working", 100*frac)
	}
	if hog.RunTime.Seconds() < 1.5 {
		t.Fatalf("hog starved: %v", hog.RunTime)
	}
	// Preemption truncates quanta: total accounted time can't exceed
	// the horizon.
	if total := hog.RunTime + gi.RunTime; total.Seconds() > 2.01 {
		t.Fatalf("over-accounted CPU: %v", total)
	}
}

// TestPreemptionPreservesWork: truncated quanta account partial
// instructions consistently (no work invented or lost at preemption).
func TestPreemptionPreservesWork(t *testing.T) {
	h := newHV(t, sched.KindCredit)
	d, _ := h.CreateDomain("vm", 2048, 3, mem.PolicyStripe)
	app, _ := h.AttachApp(d, 0, workload.Povray().Scale(0.1))
	gi1, _ := h.AttachApp(d, 1, workload.GuestIdle())
	gi2, _ := h.AttachApp(d, 2, workload.GuestIdle())
	h.Pin(app, 3)
	h.Pin(gi1, 3)
	h.Pin(gi2, 3)
	h.WatchDomains(d)
	h.Run(60 * sim.Second)
	if !app.Done {
		t.Fatal("app did not finish")
	}
	if app.Counters.Instructions < app.App.TotalInstructions*0.999 {
		t.Fatalf("counters %.4g < total %.4g", app.Counters.Instructions, app.App.TotalInstructions)
	}
	// Many preemptions must have happened (gi bursts every ~8ms).
	if app.Switches < 50 {
		t.Fatalf("only %d switches; preemption not exercised", app.Switches)
	}
}

// TestGuestThreadSwap: server threads move between VCPUs of a domain; the
// app's progress follows the thread.
func TestGuestThreadSwap(t *testing.T) {
	cfg := xen.DefaultConfig()
	cfg.GuestThreadMigrationMean = 500 * sim.Millisecond
	h := xen.New(numa.XeonE5620(), sched.MustNew(sched.KindCredit), cfg)
	d, _ := h.CreateDomain("vm", 4096, 8, mem.PolicyStripe)
	srv, err := h.AttachApp(d, 0, workload.Memcached(64))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 8; i++ {
		h.AttachApp(d, i, workload.GuestIdle())
	}
	h.Run(10 * sim.Second)
	// The server profile should have visited more than one VCPU.
	holder := 0
	var instr float64
	for _, v := range d.VCPUs {
		if v.App != nil && v.App.Server {
			holder++
			instr = v.InstrDone
		}
	}
	if holder != 1 {
		t.Fatalf("server profile on %d VCPUs, want exactly 1", holder)
	}
	if srv.App != nil && srv.App.Server {
		t.Log("server never moved (possible but unlikely at this rate)")
	}
	if instr <= 0 {
		t.Fatal("server lost its progress across swaps")
	}
}

// TestGuestSwapDisabled: zero mean disables thread parking entirely.
func TestGuestSwapDisabled(t *testing.T) {
	cfg := xen.DefaultConfig()
	cfg.GuestThreadMigrationMean = 0
	h := xen.New(numa.XeonE5620(), sched.MustNew(sched.KindCredit), cfg)
	d, _ := h.CreateDomain("vm", 4096, 4, mem.PolicyStripe)
	h.AttachApp(d, 0, workload.Memcached(64))
	for i := 1; i < 4; i++ {
		h.AttachApp(d, i, workload.GuestIdle())
	}
	h.Run(10 * sim.Second)
	if d.VCPUs[0].App == nil || !d.VCPUs[0].App.Server {
		t.Fatal("server moved with guest migration disabled")
	}
}

// TestDeferredFirstTouch: pages settle on the node where the app ran
// during its allocation window.
func TestDeferredFirstTouch(t *testing.T) {
	h := newHV(t, sched.KindCredit)
	d, _ := h.CreateDomain("vm", 4096, 1, mem.PolicyStripe)
	v, _ := h.AttachApp(d, 0, workload.Libquantum())
	h.Pin(v, 6) // node 1
	h.Run(3 * sim.Second)
	if v.PageDist.Home() != 1 {
		t.Fatalf("pages settled on node %v, app ran on node 1 (dist %v)",
			v.PageDist.Home(), v.PageDist)
	}
	if v.PageDist[1] < 0.8 {
		t.Fatalf("weak concentration: %v", v.PageDist)
	}
	// Before the window closes the app sees the VM-wide layout.
	h2 := newHV(t, sched.KindCredit)
	d2, _ := h2.CreateDomain("vm", 4096, 1, mem.PolicyStripe)
	v2, _ := h2.AttachApp(d2, 0, workload.Libquantum())
	h2.Pin(v2, 6)
	h2.Run(500 * sim.Millisecond)
	if v2.PageDist[1] > 0.6 {
		t.Fatalf("pages concentrated before the first-touch window: %v", v2.PageDist)
	}
}

// TestRepickObliviousVsAware: under sustained imbalance, the oblivious
// re-pick crosses nodes while the NUMA-aware one stays local.
func TestRepickObliviousVsAware(t *testing.T) {
	moves := func(kind sched.Kind) int {
		cfg := xen.DefaultConfig()
		cfg.GuestThreadMigrationMean = 0
		cfg.Seed = 5
		h := xen.New(numa.XeonE5620(), sched.MustNew(kind), cfg)
		d, _ := h.CreateDomain("vm", 8*1024, 8, mem.PolicyStripe)
		for i := 0; i < 4; i++ {
			h.AttachApp(d, i, workload.Soplex())
		}
		for i := 4; i < 8; i++ {
			h.AttachApp(d, i, workload.GuestIdle())
		}
		d2, _ := h.CreateDomain("vm2", 1024, 8, mem.PolicyFill)
		for i := 0; i < 8; i++ {
			h.AttachApp(d2, i, workload.Hungry())
		}
		h.Run(20 * sim.Second)
		total := 0
		for i := 0; i < 4; i++ {
			total += d.VCPUs[i].NodeMoves
		}
		return total
	}
	credit := moves(sched.KindCredit)
	lb := moves(sched.KindLB)
	if credit <= lb {
		t.Fatalf("Credit cross-node moves (%d) not above LB (%d)", credit, lb)
	}
}

// TestOverheadTimeTracksPolicy: sampling overhead only accrues for
// PMU-driven policies and scales with the sampling rate.
func TestOverheadTimeTracksPolicy(t *testing.T) {
	mk := func(pol xen.Policy) *xen.Hypervisor {
		h := xen.New(numa.XeonE5620(), pol, xen.DefaultConfig())
		d, _ := h.CreateDomain("vm", 4096, 4, mem.PolicyStripe)
		for i := 0; i < 4; i++ {
			h.AttachApp(d, i, workload.Hungry())
		}
		h.Run(5 * sim.Second)
		return h
	}
	fast := sched.NewVProbe()
	fast.SamplePeriod = 100 * sim.Millisecond
	slow := sched.NewVProbe()
	slow.SamplePeriod = 2 * sim.Second
	hf := mk(fast)
	hs := mk(slow)
	if hf.SampleOverhead <= hs.SampleOverhead {
		t.Fatalf("10x sampling rate overhead %v not above %v", hf.SampleOverhead, hs.SampleOverhead)
	}
}

// TestPMUNoiseShrinksWithWindow: classification is stable at 1 s windows
// and unstable at 0.1 s windows for a near-bound workload.
func TestPMUNoiseShrinksWithWindow(t *testing.T) {
	flips := func(period sim.Duration) int {
		pol := sched.NewVProbe()
		pol.SamplePeriod = period
		cfg := xen.DefaultConfig()
		h := xen.New(numa.XeonE5620(), pol, cfg)
		d, _ := h.CreateDomain("vm", 4096, 1, mem.PolicyStripe)
		// CG's RPTI (17.5) sits near the LLC-T bound (20).
		v, _ := h.AttachApp(d, 0, workload.CG())
		h.Pin(v, 0)
		prev := v.Type
		count := 0
		h.Engine.Every(period, period, "watch", func(*sim.Engine) {
			if v.Type != prev {
				count++
				prev = v.Type
			}
		})
		h.Run(20 * sim.Second)
		return count
	}
	noisy := flips(100 * sim.Millisecond)
	stable := flips(sim.Second)
	if noisy <= stable {
		t.Fatalf("0.1s windows flipped %d times, 1s windows %d — noise model inverted", noisy, stable)
	}
}

// TestAssignedNodeProtectsFromRemoteSteal: a partition-assigned VCPU is
// never pulled across nodes by the NUMA-aware balancer.
func TestAssignedNodeProtectsFromRemoteSteal(t *testing.T) {
	h := newHV(t, sched.KindVProbe)
	d, _ := h.CreateDomain("vm", 8*1024, 8, mem.PolicyStripe)
	for i := 0; i < 8; i++ {
		h.AttachApp(d, i, workload.Libquantum())
	}
	h.Run(10 * sim.Second)
	moved := 0
	for _, v := range d.VCPUs {
		if v.AssignedNode == numa.NoNode {
			continue
		}
		if h.Top.NodeOf(v.OnPCPU) != v.AssignedNode && v.State != xen.StateBlocked {
			moved++
		}
	}
	if moved > 0 {
		t.Fatalf("%d assigned VCPUs found off their node", moved)
	}
}

// TestFourNodePartitioning: Algorithm 1 balances across four nodes.
func TestFourNodePartitioning(t *testing.T) {
	cfg := xen.DefaultConfig()
	h := xen.New(numa.FourNode(), sched.MustNew(sched.KindVProbe), cfg)
	d, _ := h.CreateDomain("vm", 16*1024, 8, mem.PolicyStripe)
	for i := 0; i < 8; i++ {
		h.AttachApp(d, i, workload.Milc())
	}
	h.Run(3 * sim.Second)
	loads := make(map[numa.NodeID]int)
	for _, v := range d.VCPUs {
		if v.AssignedNode != numa.NoNode {
			loads[v.AssignedNode]++
		}
	}
	if len(loads) != 4 {
		t.Fatalf("assignments cover %d nodes, want 4: %v", len(loads), loads)
	}
	for n, c := range loads {
		if c != 2 {
			t.Fatalf("node %v got %d VCPUs, want 2: %v", n, c, loads)
		}
	}
}

// TestCacheHotProtection: widening the cache-hot window suppresses
// migration churn (steals skip recently-run VCPUs).
func TestCacheHotProtection(t *testing.T) {
	movesWith := func(hotMicros float64) int {
		cfg := xen.DefaultConfig()
		cfg.CacheHotMicros = hotMicros
		cfg.Seed = 2
		h := xen.New(numa.XeonE5620(), sched.MustNew(sched.KindCredit), cfg)
		d, _ := h.CreateDomain("vm", 8*1024, 8, mem.PolicyStripe)
		for i := 0; i < 4; i++ {
			h.AttachApp(d, i, workload.Soplex())
		}
		for i := 4; i < 8; i++ {
			h.AttachApp(d, i, workload.GuestIdle())
		}
		d2, _ := h.CreateDomain("vm2", 1024, 8, mem.PolicyFill)
		for i := 0; i < 8; i++ {
			h.AttachApp(d2, i, workload.Hungry())
		}
		h.Run(30 * sim.Second)
		total := 0
		for i := 0; i < 4; i++ {
			total += d.VCPUs[i].Migrations
		}
		return total
	}
	hot := movesWith(1e9) // everything always hot: UNDER steals suppressed
	cold := movesWith(0)
	if hot >= cold {
		t.Fatalf("hot-window migrations %d not below no-window %d", hot, cold)
	}
}
