package cluster

import (
	"fmt"
	"strings"

	"vprobe/internal/controlplane"
	"vprobe/internal/metrics"
	"vprobe/internal/sim"
)

// priorityStats accumulates admission outcomes for one priority class.
type priorityStats struct {
	Arrivals  int
	Placed    int
	Rejected  int
	WaitTotal sim.Duration // arrival-to-first-placement, summed over Placed
}

// Report summarises one cluster run: admission outcomes, migration
// activity, and placement quality (remote-access ratio, utilization),
// cluster-wide and per host.
type Report struct {
	Policy    string
	Scheduler string
	Hosts     int
	Horizon   sim.Duration

	Arrivals   int
	Placed     int
	Retries    int
	Rejected   int
	Departed   int
	Migrations int

	// Control-plane activity: preemption victims evicted (PreemptKills of
	// them killed and requeued rather than migrated), gangs admitted
	// all-or-nothing, queue jumps through backfill, and descheduler
	// defragmentation moves.
	Preemptions   int
	PreemptKills  int
	GangsAdmitted int
	Backfills     int
	DeschedMoves  int

	// RejectionRate is Rejected/Arrivals.
	RejectionRate float64
	// RemoteRatio is the access-weighted remote-memory-access ratio over
	// every VCPU any host ever ran.
	RemoteRatio float64
	// Utilization is total PCPU busy time over Hosts*CPUs*Horizon.
	Utilization float64

	PerHost []HostReport
	// PerPriority is one row per admission class, best-effort first.
	PerPriority []PriorityReport
}

// PriorityReport is one admission class's slice of the run.
type PriorityReport struct {
	Class    string
	Arrivals int
	Placed   int
	Rejected int
	// MeanWait is the mean arrival-to-first-placement latency of the
	// class's placed VMs.
	MeanWait sim.Duration
}

// HostReport is one host's slice of the run.
type HostReport struct {
	Name string
	// Placed counts cumulative placements (admissions + migrations in);
	// Resident is the live VM count at the horizon.
	Placed   int
	Resident int
	// RemoteRatio and Utilization are the host-local qualities.
	RemoteRatio float64
	Utilization float64
}

// report assembles the Report after the final host sync.
func (c *Cluster) report() *Report {
	r := &Report{
		Policy:     c.cfg.Policy,
		Scheduler:  string(c.cfg.Scheduler),
		Hosts:      len(c.hosts),
		Horizon:    c.cfg.Horizon,
		Arrivals:   c.stats.Arrivals,
		Placed:     c.stats.Placed,
		Retries:    c.stats.Retries,
		Rejected:   c.stats.Rejected,
		Departed:   c.stats.Departed,
		Migrations: c.stats.Migrations,

		Preemptions:   c.stats.Preemptions,
		PreemptKills:  c.stats.PreemptKills,
		GangsAdmitted: c.stats.GangsAdmitted,
		Backfills:     c.stats.Backfills,
		DeschedMoves:  c.stats.DeschedMoves,
	}
	for _, p := range controlplane.Priorities() {
		ps := c.pstats[p]
		pr := PriorityReport{
			Class:    p.String(),
			Arrivals: ps.Arrivals,
			Placed:   ps.Placed,
			Rejected: ps.Rejected,
		}
		if ps.Placed > 0 {
			pr.MeanWait = ps.WaitTotal / sim.Duration(ps.Placed)
		}
		r.PerPriority = append(r.PerPriority, pr)
	}
	if r.Arrivals > 0 {
		r.RejectionRate = float64(r.Rejected) / float64(r.Arrivals)
	}
	var total, remote float64
	var busy sim.Duration
	var cpus int
	for _, ho := range c.hosts {
		t, rem := ho.counterTotals()
		total += t
		remote += rem
		hostBusy := ho.H.TotalBusyTime()
		busy += hostBusy
		cpus += ho.Top.NumCPUs()
		hr := HostReport{
			Name:        ho.Name,
			Placed:      ho.Placed,
			Resident:    len(ho.VMs),
			RemoteRatio: ho.remoteRatio(),
		}
		if c.cfg.Horizon > 0 {
			hr.Utilization = hostBusy.Seconds() /
				(float64(ho.Top.NumCPUs()) * c.cfg.Horizon.Seconds())
		}
		r.PerHost = append(r.PerHost, hr)
	}
	if total > 0 {
		r.RemoteRatio = remote / total
	}
	if cpus > 0 && c.cfg.Horizon > 0 {
		r.Utilization = busy.Seconds() / (float64(cpus) * c.cfg.Horizon.Seconds())
	}
	return r
}

// String renders the report as aligned tables.
func (r *Report) String() string {
	var b strings.Builder
	sum := metrics.NewTable(
		fmt.Sprintf("cluster: %d hosts, policy %s, per-host scheduler %s, %v horizon",
			r.Hosts, r.Policy, r.Scheduler, r.Horizon),
		"arrivals", "placed", "retries", "rejected", "departed", "migrations",
		"reject-rate", "remote-ratio", "utilization")
	sum.AddRow(
		fmt.Sprint(r.Arrivals), fmt.Sprint(r.Placed), fmt.Sprint(r.Retries),
		fmt.Sprint(r.Rejected), fmt.Sprint(r.Departed), fmt.Sprint(r.Migrations),
		metrics.Pct(r.RejectionRate), metrics.Pct(r.RemoteRatio),
		metrics.Pct(r.Utilization))
	b.WriteString(sum.String())

	cp := metrics.NewTable("control plane",
		"preemptions", "preempt-kills", "gangs", "backfills", "desched-moves")
	cp.AddRow(fmt.Sprint(r.Preemptions), fmt.Sprint(r.PreemptKills),
		fmt.Sprint(r.GangsAdmitted), fmt.Sprint(r.Backfills),
		fmt.Sprint(r.DeschedMoves))
	b.WriteString(cp.String())

	pp := metrics.NewTable("per priority class", "class", "arrivals",
		"placed", "rejected", "mean-wait")
	for _, p := range r.PerPriority {
		pp.AddRow(p.Class, fmt.Sprint(p.Arrivals), fmt.Sprint(p.Placed),
			fmt.Sprint(p.Rejected), p.MeanWait.String())
	}
	b.WriteString(pp.String())

	ph := metrics.NewTable("per host", "host", "placed", "resident",
		"remote-ratio", "utilization")
	for _, h := range r.PerHost {
		ph.AddRow(h.Name, fmt.Sprint(h.Placed), fmt.Sprint(h.Resident),
			metrics.Pct(h.RemoteRatio), metrics.Pct(h.Utilization))
	}
	b.WriteString(ph.String())
	return b.String()
}
