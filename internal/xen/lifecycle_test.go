package xen_test

import (
	"testing"

	"vprobe/internal/mem"
	"vprobe/internal/sched"
	"vprobe/internal/sim"
	"vprobe/internal/workload"
	"vprobe/internal/xen"
)

func lifecycleHV(t *testing.T) (*xen.Hypervisor, *xen.Domain, *xen.Domain) {
	t.Helper()
	h := newHV(t, sched.KindVProbe)
	victim, err := h.CreateDomain("victim", 4*1024, 4, mem.PolicyStripe)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := h.AttachApp(victim, i, workload.Soplex().Scale(0.1)); err != nil {
			t.Fatal(err)
		}
	}
	other, err := h.CreateDomain("other", 4*1024, 4, mem.PolicyFill)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := h.AttachApp(other, i, workload.Hungry()); err != nil {
			t.Fatal(err)
		}
	}
	return h, victim, other
}

func TestPauseStopsExecution(t *testing.T) {
	h, victim, _ := lifecycleHV(t)
	h.ScheduleDomainEvent(sim.Second, "pause", func() {
		if err := h.PauseDomain(victim); err != nil {
			t.Error(err)
		}
	})
	h.Run(3 * sim.Second)
	var atPause []float64
	for _, v := range victim.VCPUs {
		atPause = append(atPause, v.InstrDone)
		if v.State != xen.StateBlocked {
			t.Fatalf("paused VCPU %d in state %v", v.ID, v.State)
		}
	}
	// Two more seconds: no progress while paused.
	h.Run(5 * sim.Second)
	for i, v := range victim.VCPUs {
		if v.InstrDone != atPause[i] {
			t.Fatalf("paused VCPU %d progressed: %v -> %v", v.ID, atPause[i], v.InstrDone)
		}
	}
}

func TestPauseResumeCompletes(t *testing.T) {
	h, victim, _ := lifecycleHV(t)
	h.ScheduleDomainEvent(sim.Second, "pause", func() { h.PauseDomain(victim) })
	h.ScheduleDomainEvent(3*sim.Second, "resume", func() { h.ResumeDomain(victim) })
	h.WatchDomains(victim)
	h.Run(120 * sim.Second)
	if !victim.AllDone() {
		t.Fatal("victim did not finish after resume")
	}
	// The pause window must show up in completion time: at least the 2
	// paused seconds beyond the unpaused baseline.
	for _, v := range victim.VCPUs {
		if v.FinishTime < sim.Time(3*sim.Second) {
			t.Fatalf("VCPU %d finished during the pause window: %v", v.ID, v.FinishTime)
		}
	}
}

func TestPauseDoubleFails(t *testing.T) {
	h, victim, _ := lifecycleHV(t)
	h.Run(100 * sim.Millisecond)
	if err := h.PauseDomain(victim); err != nil {
		t.Fatal(err)
	}
	if err := h.PauseDomain(victim); err == nil {
		t.Fatal("double pause accepted")
	}
	if err := h.ResumeDomain(victim); err != nil {
		t.Fatal(err)
	}
	if err := h.ResumeDomain(victim); err == nil {
		t.Fatal("double resume accepted")
	}
}

func TestDestroyReleasesMemoryAndWatch(t *testing.T) {
	h, victim, other := lifecycleHV(t)
	free := h.Alloc.TotalFreeMB()
	h.ScheduleDomainEvent(sim.Second, "destroy", func() {
		if err := h.DestroyDomain(victim); err != nil {
			t.Error(err)
		}
	})
	h.WatchDomains(victim)
	end := h.Run(60 * sim.Second)
	// Watch treats the destroyed domain as complete: the run stops at the
	// destroy, not at the horizon.
	if end > sim.Time(2*sim.Second) {
		t.Fatalf("run continued past destroy: %v", end)
	}
	if h.Alloc.TotalFreeMB() != free+victim.MemoryMB {
		t.Fatalf("memory not released: free %d", h.Alloc.TotalFreeMB())
	}
	if err := h.ResumeDomain(victim); err == nil {
		t.Fatal("resumed a destroyed domain")
	}
	if err := h.DestroyDomain(victim); err == nil {
		t.Fatal("double destroy accepted")
	}
	_ = other
}

func TestDestroyDuringSamplingPeriodSafe(t *testing.T) {
	// Killing a domain right before the analyzer's period boundary must
	// not break partitioning for the survivors.
	h, victim, other := lifecycleHV(t)
	h.ScheduleDomainEvent(990*sim.Millisecond, "destroy", func() { h.DestroyDomain(victim) })
	h.Run(5 * sim.Second)
	for _, v := range other.VCPUs {
		if v.App != nil && v.RunTime == 0 {
			t.Fatalf("survivor VCPU %d starved after destroy", v.ID)
		}
	}
}

func TestPausedVCPUIgnoresWake(t *testing.T) {
	// Pause while VCPUs are blocked (mid block timer): the pending wake
	// must not re-enqueue them.
	h, victim, _ := lifecycleHV(t)
	h.Run(500 * sim.Millisecond)
	if err := h.PauseDomain(victim); err != nil {
		t.Fatal(err)
	}
	h.Run(2 * sim.Second) // any pending wakes fire into the pause
	for _, v := range victim.VCPUs {
		if v.State != xen.StateBlocked {
			t.Fatalf("VCPU %d woke while paused: %v", v.ID, v.State)
		}
	}
	if err := h.ResumeDomain(victim); err != nil {
		t.Fatal(err)
	}
	h.WatchDomains(victim)
	h.Run(120 * sim.Second)
	if !victim.AllDone() {
		t.Fatal("victim did not recover after blocked-pause-resume")
	}
}

func TestWorkConservationAcrossPause(t *testing.T) {
	// While the victim is paused, the four burners each get a whole
	// PCPU: their run time jumps from a shared slice to ~full speed.
	h, victim, other := lifecycleHV(t)
	h.ScheduleDomainEvent(sim.Second, "pause", func() { h.PauseDomain(victim) })
	h.Run(4 * sim.Second)
	for _, v := range other.VCPUs {
		if v.App == nil {
			continue
		}
		// ~1s shared (8 VCPUs / 8 PCPUs) + ~3s exclusive.
		if v.RunTime.Seconds() < 3.5 {
			t.Fatalf("burner VCPU %d ran only %.2fs; pause did not free CPUs", v.ID, v.RunTime.Seconds())
		}
	}
}
