package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCatalogValidates(t *testing.T) {
	for name, p := range Catalog() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	for _, c := range []int{1, 16, 64, 112} {
		if err := Memcached(c).Validate(); err != nil {
			t.Errorf("memcached(%d): %v", c, err)
		}
	}
	for _, c := range []int{1, 2000, 10000} {
		if err := Redis(c).Validate(); err != nil {
			t.Errorf("redis(%d): %v", c, err)
		}
	}
}

func TestFig3RPTIMatchesPaper(t *testing.T) {
	// Paper Fig. 3(b): measured LLC references per thousand instructions.
	want := map[string]float64{
		"povray":     0.48,
		"ep":         2.01,
		"lu":         15.38,
		"mg":         16.33,
		"milc":       21.68,
		"libquantum": 22.41,
	}
	cat := Catalog()
	for name, rpti := range want {
		got := cat[name].AvgRPTI()
		if math.Abs(got-rpti) > 0.02 {
			t.Errorf("%s: AvgRPTI = %v, paper says %v", name, got, rpti)
		}
	}
}

func TestClassificationBoundsSeparateClasses(t *testing.T) {
	// The paper's bounds low=3, high=20 must separate the catalog's
	// ground-truth classes by mean RPTI.
	const low, high = 3, 20
	for name, p := range Catalog() {
		r := p.AvgRPTI()
		var want Class
		switch {
		case r < low:
			want = ClassFriendly
		case r < high:
			want = ClassFitting
		default:
			want = ClassThrashing
		}
		if p.TrueClass != want {
			t.Errorf("%s: RPTI %.2f implies %v but TrueClass is %v", name, r, want, p.TrueClass)
		}
	}
}

func TestMissRateCurveMonotone(t *testing.T) {
	check := func(wsKB16 uint16, solo8, max8 uint8, a, b float64) bool {
		ws := int64(wsKB16%30000) + 100
		solo := float64(solo8%50) / 100
		maxR := solo + float64(max8%40)/100 + 0.01
		if maxR > 1 {
			maxR = 1
		}
		ph := Phase{Fraction: 1, RPTI: 10, WorkingSetKB: ws, SoloMissRate: solo, MaxMissRate: maxR}
		sa := math.Abs(a)
		sb := math.Abs(b)
		if math.IsNaN(sa) || math.IsNaN(sb) || math.IsInf(sa, 0) || math.IsInf(sb, 0) {
			return true
		}
		lo, hi := math.Min(sa, sb), math.Max(sa, sb)
		// Monotone non-increasing in share, bounded by [solo, max].
		mLo, mHi := ph.MissRate(hi), ph.MissRate(lo)
		return mLo <= mHi+1e-12 && mLo >= solo-1e-12 && mHi <= maxR+1e-12
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMissRateEndpoints(t *testing.T) {
	ph := Phase{Fraction: 1, RPTI: 10, WorkingSetKB: 10000, SoloMissRate: 0.1, MaxMissRate: 0.7}
	if got := ph.MissRate(10000); got != 0.1 {
		t.Fatalf("full share miss = %v, want solo", got)
	}
	if got := ph.MissRate(20000); got != 0.1 {
		t.Fatalf("surplus share miss = %v, want solo", got)
	}
	if got := ph.MissRate(0); got != 0.7 {
		t.Fatalf("zero share miss = %v, want max", got)
	}
	if got := ph.MissRate(-5); got != 0.7 {
		t.Fatalf("negative share miss = %v, want max", got)
	}
	if got := ph.MissRate(5000); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("half share miss = %v, want 0.4", got)
	}
}

func TestPhaseAtProgression(t *testing.T) {
	p := Soplex() // phases 0.6 / 0.4
	if ph := p.PhaseAt(0); ph.RPTI != 16.00 {
		t.Fatalf("start phase RPTI = %v", ph.RPTI)
	}
	if ph := p.PhaseAt(0.59 * p.TotalInstructions); ph.RPTI != 16.00 {
		t.Fatalf("phase at 59%% RPTI = %v", ph.RPTI)
	}
	if ph := p.PhaseAt(0.61 * p.TotalInstructions); ph.RPTI != 23.00 {
		t.Fatalf("phase at 61%% RPTI = %v", ph.RPTI)
	}
	if ph := p.PhaseAt(2 * p.TotalInstructions); ph.RPTI != 23.00 {
		t.Fatalf("overshoot phase RPTI = %v", ph.RPTI)
	}
	if ph := p.PhaseAt(-1); ph.RPTI != 16.00 {
		t.Fatalf("negative progress phase RPTI = %v", ph.RPTI)
	}
}

func TestServersReportPhaseZero(t *testing.T) {
	p := Memcached(64)
	if ph := p.PhaseAt(1e15); ph != &p.Phases[0] {
		t.Fatal("server PhaseAt should always be phase 0")
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := LU()
	q := p.Clone()
	q.Phases[0].RPTI = 99
	if p.Phases[0].RPTI == 99 {
		t.Fatal("Clone shares phase storage")
	}
}

func TestScale(t *testing.T) {
	p := LU()
	q := p.Scale(0.5)
	if q.TotalInstructions != p.TotalInstructions/2 {
		t.Fatalf("Scale: got %v", q.TotalInstructions)
	}
	if p.TotalInstructions != 2.2e10 {
		t.Fatal("Scale mutated the original")
	}
}

func TestMemcachedWorkingSetGrowsWithConcurrency(t *testing.T) {
	// The Fig. 6 crossover mechanism: working set must cross the
	// 12 MB LLC capacity somewhere inside the 16..112 sweep.
	lo := Memcached(16).Phases[0].WorkingSetKB
	hi := Memcached(112).Phases[0].WorkingSetKB
	const llcKB = 12 * 1024
	if lo >= llcKB {
		t.Fatalf("memcached(16) ws=%d KB already exceeds LLC", lo)
	}
	if hi <= llcKB {
		t.Fatalf("memcached(112) ws=%d KB does not exceed LLC", hi)
	}
	prev := int64(0)
	for c := 16; c <= 112; c += 16 {
		ws := Memcached(c).Phases[0].WorkingSetKB
		if ws <= prev {
			t.Fatalf("working set not strictly increasing at c=%d", c)
		}
		prev = ws
	}
}

func TestRedisAlwaysCacheHeavy(t *testing.T) {
	// Fig. 7: VCPU-P beats LB throughout, because redis pressures the
	// LLC at every connection count tested.
	for _, c := range []int{2000, 4000, 6000, 8000, 10000} {
		p := Redis(c)
		if p.AvgRPTI() < 18 {
			t.Fatalf("redis(%d) RPTI %v too low", c, p.AvgRPTI())
		}
		if p.Phases[0].WorkingSetKB < 10000 {
			t.Fatalf("redis(%d) working set %d KB too small", c, p.Phases[0].WorkingSetKB)
		}
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("soplex"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("doom"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestSuiteSelections(t *testing.T) {
	if got := len(Fig3Apps()); got != 6 {
		t.Fatalf("Fig3Apps = %d, want 6", got)
	}
	if got := len(SPECApps()); got != 4 {
		t.Fatalf("SPECApps = %d, want 4", got)
	}
	if got := len(NPBApps()); got != 5 {
		t.Fatalf("NPBApps = %d, want 5", got)
	}
}

func TestValidateCatchesBadProfiles(t *testing.T) {
	bad := []*Profile{
		{},
		{Name: "x", BaseCPI: 1},
		{Name: "x", BaseCPI: 1, Phases: []Phase{{Fraction: 0.5, RPTI: 1, WorkingSetKB: 1, MaxMissRate: 0.1}},
			FootprintMB: 1, TotalInstructions: 1, TouchesPerPage: 1},
		{Name: "x", BaseCPI: 1, Phases: []Phase{{Fraction: 1, RPTI: 1, WorkingSetKB: 1, SoloMissRate: 0.5, MaxMissRate: 0.1}},
			FootprintMB: 1, TotalInstructions: 1, TouchesPerPage: 1},
		{Name: "x", BaseCPI: 1, Phases: []Phase{{Fraction: 1, RPTI: 1, WorkingSetKB: 1, MaxMissRate: 0.1}},
			FootprintMB: 1, TouchesPerPage: 1}, // batch without instructions
		{Name: "x", BaseCPI: 1, Phases: []Phase{{Fraction: 1, RPTI: 1, WorkingSetKB: 1, MaxMissRate: 0.1}},
			FootprintMB: 1, TotalInstructions: 1, TouchesPerPage: 0.5},
		{Name: "x", BaseCPI: 1, Server: true, Phases: []Phase{{Fraction: 1, RPTI: 1, WorkingSetKB: 1, MaxMissRate: 0.1}},
			FootprintMB: 1, TouchesPerPage: 1}, // server without InstrPerRequest
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad profile %d accepted", i)
		}
	}
}

func TestClassString(t *testing.T) {
	if ClassFriendly.String() != "LLC-FR" || ClassFitting.String() != "LLC-FI" || ClassThrashing.String() != "LLC-T" {
		t.Fatal("class names do not match the paper")
	}
	if Class(9).String() == "" {
		t.Fatal("unknown class stringer empty")
	}
}
