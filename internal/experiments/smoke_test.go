package experiments

import (
	"strings"
	"testing"

	"vprobe/internal/sim"
)

// TestAllExperimentsSmoke runs every registered experiment end-to-end at a
// small scale, asserting each produces populated tables and series. This
// is the cheap guarantee that `vprobe-sim` can always regenerate every
// paper artifact.
func TestAllExperimentsSmoke(t *testing.T) {
	opts := Options{
		Scale:   0.15,
		Repeats: 1,
		Seed:    1,
		Horizon: 60 * sim.Second,
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			res, err := e.Run(opts)
			if err != nil {
				t.Fatal(err)
			}
			if res.ID != e.ID {
				t.Fatalf("result id %q, want %q", res.ID, e.ID)
			}
			if len(res.Tables) == 0 {
				t.Fatal("no tables produced")
			}
			for _, tab := range res.Tables {
				if tab.NumRows() == 0 {
					t.Fatalf("table %q empty", tab.Title)
				}
			}
			if len(res.Series) == 0 {
				t.Fatal("no machine-readable series produced")
			}
			if !strings.Contains(res.String(), e.ID) {
				t.Fatal("String() missing experiment id")
			}
			// Exports must not fail on any experiment's data.
			paths, err := res.Export(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			if len(paths) != 2 {
				t.Fatalf("exported %v", paths)
			}
		})
	}
}
