// Package vprobe is a fixture stand-in for the real root package: just
// enough surface for the deprecated analyzer to resolve the shims.
package vprobe

// Config mirrors the root Config's deprecated Trace hook next to the
// typed replacement.
type Config struct {
	Events EventSink
	// Trace is the deprecated string hook.
	Trace func(string)
}

// EventSink mirrors the typed sink.
type EventSink interface{ Emit(string) }

// VM mirrors the root VM.
type VM struct{}

// RunServer is the deprecated string-dispatch shim.
func (vm *VM) RunServer(kind string, load int) error { return nil }

// RunApp is the supported path; same name shape, not banned.
func (vm *VM) RunApp(name string) error { return nil }
