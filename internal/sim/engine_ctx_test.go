package sim

import (
	"context"
	"errors"
	"testing"
	"time"
)

// selfFeeding schedules an event chain that never drains, so only
// cancellation (or a horizon) can stop the run.
func selfFeeding(e *Engine) {
	var tick func(*Engine)
	tick = func(e *Engine) { e.Schedule(Microsecond, "tick", tick) }
	e.Schedule(Microsecond, "tick", tick)
}

func TestRunContextBackgroundMatchesRun(t *testing.T) {
	a, b := NewEngine(), NewEngine()
	for _, e := range []*Engine{a, b} {
		n := 0
		var count func(*Engine)
		count = func(e *Engine) {
			n++
			if n < 100 {
				e.Schedule(Millisecond, "count", count)
			}
		}
		e.Schedule(Millisecond, "count", count)
	}
	fired := a.Run()
	firedCtx, err := b.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if fired != firedCtx || a.Now() != b.Now() {
		t.Fatalf("Run (%d events, now %v) != RunContext (%d events, now %v)",
			fired, a.Now(), firedCtx, b.Now())
	}
}

func TestRunContextCancelled(t *testing.T) {
	e := NewEngine()
	selfFeeding(e)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.RunContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunContextCancelMidRun cancels from a timer goroutine while the
// engine spins on a self-feeding event chain; the run must return promptly
// instead of spinning forever.
func TestRunContextCancelMidRun(t *testing.T) {
	e := NewEngine()
	selfFeeding(e)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	done := make(chan error, 1)
	go func() {
		_, err := e.RunContext(ctx)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancellation did not stop the run")
	}
}

func TestRunUntilContextDeadline(t *testing.T) {
	e := NewEngine()
	selfFeeding(e)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := e.RunUntilContext(ctx, Time(time.Hour/time.Microsecond))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestRunUntilContextBackgroundMatchesRunUntil(t *testing.T) {
	a, b := NewEngine(), NewEngine()
	horizon := Time(50 * Millisecond)
	for _, e := range []*Engine{a, b} {
		selfFeeding(e)
	}
	fired := a.RunUntil(horizon)
	firedCtx, err := b.RunUntilContext(context.Background(), horizon)
	if err != nil {
		t.Fatal(err)
	}
	if fired != firedCtx || a.Now() != b.Now() {
		t.Fatalf("RunUntil (%d, %v) != RunUntilContext (%d, %v)",
			fired, a.Now(), firedCtx, b.Now())
	}
}
