package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"vprobe/internal/numa"
)

func st(id int, typ VCPUType, aff numa.NodeID) Stat {
	p := 1.0
	switch typ {
	case TypeFI:
		p = 10
	case TypeT:
		p = 25
	}
	return Stat{VCPU: id, Pressure: p, Affinity: aff, Type: typ}
}

func TestPartitionBalancesEvenly(t *testing.T) {
	// 6 memory-intensive VCPUs over 2 nodes -> 3 per node.
	stats := []Stat{
		st(0, TypeT, 0), st(1, TypeT, 0), st(2, TypeT, 0),
		st(3, TypeFI, 1), st(4, TypeFI, 1), st(5, TypeFI, 1),
	}
	as := Partition(stats, 2)
	if len(as) != 6 {
		t.Fatalf("assigned %d, want 6", len(as))
	}
	loads := NodeLoads(as, 2)
	if loads[0] != 3 || loads[1] != 3 {
		t.Fatalf("loads = %v, want [3 3]", loads)
	}
}

func TestPartitionPrefersLocalNode(t *testing.T) {
	// Equal counts per affinity: everyone can stay local.
	stats := []Stat{
		st(0, TypeT, 0), st(1, TypeT, 1),
		st(2, TypeFI, 0), st(3, TypeFI, 1),
	}
	as := Partition(stats, 2)
	for _, a := range as {
		want := numa.NodeID(a.VCPU % 2)
		if a.Node != want {
			t.Fatalf("VCPU %d assigned to %v, local is %v (assignments %v)", a.VCPU, a.Node, want, as)
		}
	}
}

func TestPartitionThrashersFirst(t *testing.T) {
	// With one T and one FI per node and room for everyone, the T VCPUs
	// must be assigned before the FI ones (Algorithm 1 line 3-6).
	stats := []Stat{
		st(10, TypeFI, 0), st(11, TypeFI, 1),
		st(20, TypeT, 0), st(21, TypeT, 1),
	}
	as := Partition(stats, 2)
	if len(as) != 4 {
		t.Fatalf("assigned %d", len(as))
	}
	// First two assignments are the LLC-T VCPUs.
	for _, a := range as[:2] {
		if a.VCPU < 20 {
			t.Fatalf("FI VCPU %d assigned before all T VCPUs: %v", a.VCPU, as)
		}
	}
}

func TestPartitionIgnoresFR(t *testing.T) {
	stats := []Stat{
		st(0, TypeFR, 0), st(1, TypeFR, 1),
		st(2, TypeT, 0),
	}
	as := Partition(stats, 2)
	if len(as) != 1 || as[0].VCPU != 2 {
		t.Fatalf("assignments = %v, want only VCPU 2", as)
	}
}

func TestPartitionDrainsLargestGroup(t *testing.T) {
	// All four T VCPUs have affinity 0. Two must move to node 1, and
	// they are taken from the (only) largest group. FIFO order within
	// the group means VCPUs 0,2 go to node 0 (min-node alternates).
	stats := []Stat{
		st(0, TypeT, 0), st(1, TypeT, 0), st(2, TypeT, 0), st(3, TypeT, 0),
	}
	as := Partition(stats, 2)
	loads := NodeLoads(as, 2)
	if loads[0] != 2 || loads[1] != 2 {
		t.Fatalf("loads = %v", loads)
	}
	// First pick: min-node 0 (tie), group(T,0) non-empty -> VCPU 0 local.
	if as[0] != (Assignment{VCPU: 0, Node: 0}) {
		t.Fatalf("first assignment = %v", as[0])
	}
	// Second: min-node 1, group(T,1) empty -> drain max group -> VCPU 1 to node 1.
	if as[1] != (Assignment{VCPU: 1, Node: 1}) {
		t.Fatalf("second assignment = %v", as[1])
	}
}

func TestPartitionNoAffinitySignal(t *testing.T) {
	stats := []Stat{
		{VCPU: 0, Pressure: 25, Affinity: numa.NoNode, Type: TypeT},
		{VCPU: 1, Pressure: 25, Affinity: numa.NoNode, Type: TypeT},
	}
	as := Partition(stats, 2)
	if len(as) != 2 {
		t.Fatalf("assigned %d, want 2", len(as))
	}
	loads := NodeLoads(as, 2)
	if loads[0] != 1 || loads[1] != 1 {
		t.Fatalf("loads = %v", loads)
	}
}

func TestPartitionDegenerateInputs(t *testing.T) {
	if as := Partition(nil, 2); len(as) != 0 {
		t.Fatal("nil stats produced assignments")
	}
	if as := Partition([]Stat{st(0, TypeT, 0)}, 0); as != nil {
		t.Fatal("zero nodes produced assignments")
	}
	// Single node: everything lands on node 0.
	as := Partition([]Stat{st(0, TypeT, 0), st(1, TypeFI, 0)}, 1)
	for _, a := range as {
		if a.Node != 0 {
			t.Fatalf("single-node assignment = %v", a)
		}
	}
	// Out-of-range affinity is tolerated.
	as2 := Partition([]Stat{{VCPU: 5, Pressure: 30, Affinity: 9, Type: TypeT}}, 2)
	if len(as2) != 1 {
		t.Fatal("out-of-range affinity dropped the VCPU")
	}
}

// Property: Algorithm 1's invariants hold for arbitrary inputs.
func TestPartitionProperties(t *testing.T) {
	check := func(seed int64, n8, v8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		numNodes := int(n8%4) + 1
		nv := int(v8 % 40)
		stats := make([]Stat, nv)
		for i := range stats {
			typ := VCPUType(rng.Intn(3))
			aff := numa.NodeID(rng.Intn(numNodes + 1))
			if int(aff) == numNodes {
				aff = numa.NoNode
			}
			stats[i] = st(i, typ, aff)
		}
		as := Partition(stats, numNodes)

		// (1) Every memory-intensive VCPU assigned exactly once; no
		// FR VCPU assigned.
		want := map[int]bool{}
		for _, s := range stats {
			if s.Type.MemoryIntensive() {
				want[s.VCPU] = true
			}
		}
		seen := map[int]bool{}
		for _, a := range as {
			if !want[a.VCPU] || seen[a.VCPU] {
				return false
			}
			seen[a.VCPU] = true
			if int(a.Node) < 0 || int(a.Node) >= numNodes {
				return false
			}
		}
		if len(seen) != len(want) {
			return false
		}

		// (2) Node loads balanced within 1.
		loads := NodeLoads(as, numNodes)
		lo, hi := loads[0], loads[0]
		for _, l := range loads {
			if l < lo {
				lo = l
			}
			if l > hi {
				hi = l
			}
		}
		return hi-lo <= 1
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Property: when every memory-intensive VCPU has the same type and each
// affinity group is no larger than the balanced share, every VCPU is placed
// on its local node. (With mixed types this does NOT hold: Algorithm 1
// drains all LLC-T VCPUs before any LLC-FI, so a T VCPU can be pulled to a
// min-node whose local group holds only FI VCPUs — faithful to the paper.)
func TestPartitionLocalityWhenFeasible(t *testing.T) {
	check := func(seed int64, n8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		numNodes := int(n8%3) + 2
		perNode := rng.Intn(4) + 1
		typ := TypeT
		if rng.Intn(2) == 0 {
			typ = TypeFI
		}
		var stats []Stat
		id := 0
		for n := 0; n < numNodes; n++ {
			for i := 0; i < perNode; i++ {
				stats = append(stats, st(id, typ, numa.NodeID(n)))
				id++
			}
		}
		// Shuffle input order.
		rng.Shuffle(len(stats), func(i, j int) { stats[i], stats[j] = stats[j], stats[i] })
		local := make(map[int]numa.NodeID)
		for _, s := range stats {
			local[s.VCPU] = s.Affinity
		}
		for _, a := range Partition(stats, numNodes) {
			if a.Node != local[a.VCPU] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionDeterministic(t *testing.T) {
	stats := []Stat{
		st(0, TypeT, 1), st(1, TypeFI, 0), st(2, TypeT, 0),
		st(3, TypeFI, 1), st(4, TypeT, 1), st(5, TypeFI, 0),
	}
	a := Partition(stats, 2)
	b := Partition(stats, 2)
	if len(a) != len(b) {
		t.Fatal("nondeterministic length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestNodeLoadsIgnoresOutOfRange(t *testing.T) {
	as := []Assignment{{VCPU: 0, Node: 0}, {VCPU: 1, Node: 5}}
	loads := NodeLoads(as, 2)
	if loads[0] != 1 || loads[1] != 0 {
		t.Fatalf("loads = %v", loads)
	}
}
