package mapiter_test

import (
	"testing"

	"vprobe/internal/analysis/framework/analysistest"
	"vprobe/internal/analysis/mapiter"
)

func TestMapIter(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), mapiter.Analyzer, "mapiter_a")
}
