// Package spec is the fixture counterpart of internal/spec: exported wire
// structs whose fields must be tagged, consumed, and validated.
package spec

import "errors"

// ScenarioV1 is a versioned wire struct.
type ScenarioV1 struct {
	Version string `json:"version"`
	VCPUs   int    `json:"vcpus"`
	Seed    int64  `json:"seed"` //vet:spec any int64 is a valid seed; nothing to validate
	Debug   bool   `json:"debug"`
	NoTag   int    // want `spec field ScenarioV1.NoTag has no json tag`
	Orphan  int    `json:"orphan"` // want `spec field ScenarioV1.Orphan \(json "orphan"\) is never read outside internal/spec`
	Loose   int    `json:"loose"`  // want `spec field ScenarioV1.Loose \(json "loose"\) is neither validated nor defaulted`
}

// Validate checks the invariants; the field paths in its messages use the
// json names.
func (s *ScenarioV1) Validate() error {
	if s.Version == "" {
		return errors.New("version is required")
	}
	if s.VCPUs <= 0 {
		return errors.New("vcpus must be positive")
	}
	return nil
}

// The reserved-name note mentions "orphan" so only the consumption rule
// fires for it.
var _ = "orphan is reserved for the v2 schema"

// unexported structs are outside the wire contract.
type scratch struct {
	NoTagEither int
}
