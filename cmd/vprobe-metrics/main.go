// Command vprobe-metrics works with the telemetry exports of vprobe-sim
// and vprobe-cluster.
//
// Usage:
//
//	vprobe-metrics check file.prom
//	vprobe-metrics diff a.jsonl b.jsonl
//
// check validates a Prometheus text exposition file and reports the series
// and sample counts. diff compares two runs' JSONL time series, printing
// the final-value and mean deltas of every series present in both files
// and noting series present in only one — the intended workflow for
// before/after comparisons of a scheduler or configuration change.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"vprobe/internal/telemetry"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "check":
		if len(os.Args) != 3 {
			usage()
		}
		err = check(os.Args[2])
	case "diff":
		if len(os.Args) != 4 {
			usage()
		}
		err = diff(os.Args[2], os.Args[3])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: %s check file.prom | diff a.jsonl b.jsonl\n", os.Args[0])
	os.Exit(2)
}

// check validates one Prometheus exposition file.
func check(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	series, samples, err := telemetry.ValidateExposition(data)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	fmt.Printf("ok: %d series, %d samples\n", series, samples)
	return nil
}

// seriesData is one run's JSONL export: per-series value sequences, plus
// the row count for mean computation.
type seriesData struct {
	rows   int
	final  map[string]float64
	sum    map[string]float64
	counts map[string]int
}

// readJSONL parses one JSONL time-series file.
func readJSONL(path string) (*seriesData, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	d := &seriesData{
		final:  make(map[string]float64),
		sum:    make(map[string]float64),
		counts: make(map[string]int),
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec map[string]float64
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, fmt.Errorf("%s line %d: %w", path, d.rows+1, err)
		}
		d.rows++
		for k, v := range rec {
			if k == "t" {
				continue
			}
			d.final[k] = v
			d.sum[k] += v
			d.counts[k]++
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if d.rows == 0 {
		return nil, fmt.Errorf("%s: no samples", path)
	}
	return d, nil
}

// diff compares two JSONL exports series by series.
func diff(pathA, pathB string) error {
	a, err := readJSONL(pathA)
	if err != nil {
		return err
	}
	b, err := readJSONL(pathB)
	if err != nil {
		return err
	}
	// Union of series names, sorted for a stable report.
	nameSet := make(map[string]bool, len(a.final))
	for k := range a.final {
		nameSet[k] = true
	}
	for k := range b.final {
		nameSet[k] = true
	}
	names := make([]string, 0, len(nameSet))
	for k := range nameSet {
		names = append(names, k)
	}
	sort.Strings(names)

	fmt.Printf("a: %s (%d samples)\nb: %s (%d samples)\n\n", pathA, a.rows, pathB, b.rows)
	fmt.Printf("%-52s %14s %14s %14s\n", "series", "final a", "final b", "mean delta")
	onlyA, onlyB := 0, 0
	for _, k := range names {
		fa, inA := a.final[k]
		fb, inB := b.final[k]
		switch {
		case !inB:
			onlyA++
			fmt.Printf("%-52s %14.6g %14s %14s\n", k, fa, "-", "only in a")
		case !inA:
			onlyB++
			fmt.Printf("%-52s %14s %14.6g %14s\n", k, "-", fb, "only in b")
		default:
			meanA := a.sum[k] / float64(a.counts[k])
			meanB := b.sum[k] / float64(b.counts[k])
			fmt.Printf("%-52s %14.6g %14.6g %+14.6g\n", k, fa, fb, meanB-meanA)
		}
	}
	if onlyA+onlyB > 0 {
		fmt.Printf("\n%d series only in a, %d only in b\n", onlyA, onlyB)
	}
	return nil
}
