package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vprobe/internal/telemetry"
)

var update = flag.Bool("update", false, "rewrite golden files")

// golden compares got against testdata/name, rewriting it under -update.
func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s differs from golden file (re-bless with -update):\n got: %q\nwant: %q",
			name, got, want)
	}
}

// checkJSONL asserts every non-blank line of stream is a JSON object.
func checkJSONL(t *testing.T, stream []byte) int {
	t.Helper()
	lines := 0
	for i, line := range strings.Split(string(stream), "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		lines++
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("line %d is not a JSON object: %v\n%s", i+1, err, line)
		}
	}
	return lines
}

// TestEmptyRunJSONGolden is the empty-run contract: -json with no apps
// emits a valid, empty JSONL event stream on stdout (zero lines is a
// well-formed document), the report on stderr, and a valid span file that
// still carries the run and domain lifecycle spans.
func TestEmptyRunJSONGolden(t *testing.T) {
	var stdout, stderr, spans bytes.Buffer
	opts := options{sched: "vprobe", seconds: 1, apps: "", seed: 1, asJSON: true, spans: &spans}
	if err := run(opts, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if n := checkJSONL(t, stdout.Bytes()); n != 0 {
		t.Fatalf("empty run emitted %d events, want 0", n)
	}
	golden(t, "empty_events.jsonl", stdout.Bytes())
	golden(t, "empty_spans.jsonl", spans.Bytes())
	if !strings.Contains(stderr.String(), "scheduler") {
		t.Fatalf("-json moved no report to stderr: %q", stderr.String())
	}
	parsed, err := telemetry.ReadSpans(bytes.NewReader(spans.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// Even an empty run records provenance: the run root plus the traced
	// domain's lifecycle span.
	if len(parsed) != 2 {
		t.Fatalf("empty run recorded %d spans, want 2 (run + domain)", len(parsed))
	}
}

// TestSpansEnabledGolden runs a real traced second and pins the span
// flight recorder output: golden JSONL, a Chrome export the independent
// validator accepts, and a machine-readable event stream.
func TestSpansEnabledGolden(t *testing.T) {
	var stdout, stderr, spans, chrome bytes.Buffer
	opts := options{
		sched: "vprobe", seconds: 1, apps: "soplex", seed: 1,
		asJSON: true, spans: &spans, chrome: &chrome,
	}
	if err := run(opts, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if n := checkJSONL(t, stdout.Bytes()); n == 0 {
		t.Fatal("traced run emitted no events")
	}
	golden(t, "soplex_spans.jsonl", spans.Bytes())
	if _, err := telemetry.ValidateChromeTrace(chrome.Bytes()); err != nil {
		t.Fatal(err)
	}

	// Same options, second run: the span file is byte-identical.
	var spans2 bytes.Buffer
	opts2 := opts
	opts2.spans, opts2.chrome = &spans2, nil
	var so, se bytes.Buffer
	if err := run(opts2, &so, &se); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(spans.Bytes(), spans2.Bytes()) {
		t.Fatal("two same-seed runs produced different span files")
	}
	if !bytes.Equal(stdout.Bytes(), so.Bytes()) {
		t.Fatal("two same-seed runs produced different event streams")
	}
}

// TestBlankAppsSkipped pins the -apps parsing contract: blanks and stray
// commas mean "no apps", not an error.
func TestBlankAppsSkipped(t *testing.T) {
	for _, apps := range []string{"", " ", ",", "soplex,", " soplex , "} {
		var stdout, stderr bytes.Buffer
		opts := options{sched: "vprobe", seconds: 0.01, apps: apps, seed: 1, asJSON: true}
		if err := run(opts, &stdout, &stderr); err != nil {
			t.Fatalf("-apps %q: %v", apps, err)
		}
	}
}
