// Benchmarks regenerating every table and figure of the paper's evaluation
// (one benchmark per artifact), plus micro-benchmarks of the core
// algorithms. Figure benchmarks run the corresponding experiment at a
// reduced workload scale per iteration; the printed tables of the full
// harness come from `go run ./cmd/vprobe-sim`.
//
// Reported custom metrics:
//
//	improvement_pct — vProbe's execution-time gain over Credit
//	remote_pct      — remote access ratio of the relevant configuration
package vprobe_test

import (
	"context"
	"encoding/json"
	"testing"

	"vprobe"

	"vprobe/internal/core"
	"vprobe/internal/experiments"
	"vprobe/internal/mem"
	"vprobe/internal/numa"
	"vprobe/internal/perf"
	"vprobe/internal/sched"
	"vprobe/internal/sim"
	"vprobe/internal/spec"
	"vprobe/internal/telemetry"
	"vprobe/internal/workload"
	"vprobe/internal/xen"
)

// benchOpts keeps one benchmark iteration around a second of wall time.
func benchOpts() experiments.Options {
	return experiments.Options{Scale: 0.25, Repeats: 1, Seed: 1}
}

func runExperiment(b *testing.B, id string, opts experiments.Options) *experiments.Result {
	b.Helper()
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var res *experiments.Result
	for i := 0; i < b.N; i++ {
		res, err = e.Run(opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	return res
}

// BenchmarkTable1 regenerates the platform description (paper Table I).
func BenchmarkTable1(b *testing.B) {
	b.ReportAllocs()
	runExperiment(b, "table1", benchOpts())
}

// BenchmarkFig1 regenerates the Credit remote-access ratios (paper Fig. 1).
func BenchmarkFig1(b *testing.B) {
	b.ReportAllocs()
	res := runExperiment(b, "fig1", benchOpts())
	b.ReportMetric(100*res.Get("page-remote/credit", "soplex"), "soplex_page_remote_pct")
}

// BenchmarkFig3 regenerates the bound calibration (paper Fig. 3).
func BenchmarkFig3(b *testing.B) {
	b.ReportAllocs()
	res := runExperiment(b, "fig3", benchOpts())
	b.ReportMetric(res.Get("rpti/solo", "libquantum"), "libquantum_rpti")
}

// BenchmarkFig4 regenerates the SPEC comparison (paper Fig. 4).
func BenchmarkFig4(b *testing.B) {
	b.ReportAllocs()
	opts := benchOpts()
	opts.Schedulers = []sched.Kind{sched.KindCredit, sched.KindVProbe}
	res := runExperiment(b, "fig4", opts)
	b.ReportMetric(100*(1-res.Get("exec/vprobe", "soplex")), "soplex_improvement_pct")
}

// BenchmarkFig5 regenerates the NPB comparison (paper Fig. 5).
func BenchmarkFig5(b *testing.B) {
	b.ReportAllocs()
	opts := benchOpts()
	opts.Schedulers = []sched.Kind{sched.KindCredit, sched.KindVProbe}
	res := runExperiment(b, "fig5", opts)
	b.ReportMetric(100*(1-res.Get("exec/vprobe", "sp")), "sp_improvement_pct")
}

// BenchmarkFig6 regenerates the memcached sweep (paper Fig. 6).
func BenchmarkFig6(b *testing.B) {
	b.ReportAllocs()
	opts := benchOpts()
	opts.Schedulers = []sched.Kind{sched.KindCredit, sched.KindVProbe}
	res := runExperiment(b, "fig6", opts)
	b.ReportMetric(100*(1-res.Get("exec/vprobe", "80")), "c80_improvement_pct")
}

// BenchmarkFig7 regenerates the Redis sweep (paper Fig. 7).
func BenchmarkFig7(b *testing.B) {
	b.ReportAllocs()
	opts := benchOpts()
	opts.Schedulers = []sched.Kind{sched.KindCredit, sched.KindVProbe}
	opts.Horizon = 60 * sim.Second
	res := runExperiment(b, "fig7", opts)
	base := res.Get("throughput/credit", "2000")
	if base > 0 {
		b.ReportMetric(100*(res.Get("throughput/vprobe", "2000")/base-1), "conn2000_gain_pct")
	}
}

// BenchmarkFig8 regenerates the sampling-period sweep (paper Fig. 8).
func BenchmarkFig8(b *testing.B) {
	b.ReportAllocs()
	res := runExperiment(b, "fig8", benchOpts())
	b.ReportMetric(res.Get("exec/vprobe", "1.000s"), "exec_at_1s_sec")
}

// BenchmarkTable3 regenerates the overhead measurement (paper Table III).
func BenchmarkTable3(b *testing.B) {
	b.ReportAllocs()
	res := runExperiment(b, "table3", benchOpts())
	b.ReportMetric(res.Get("overhead/vprobe", "4"), "overhead_4vm_pct")
}

// BenchmarkAblateAffinity regenerates the Eq. 1 ablation.
func BenchmarkAblateAffinity(b *testing.B) {
	b.ReportAllocs()
	runExperiment(b, "ablate-affinity", benchOpts())
}

// BenchmarkFourNode regenerates the 4-node extension experiment.
func BenchmarkFourNode(b *testing.B) {
	b.ReportAllocs()
	runExperiment(b, "fournode", benchOpts())
}

// --- Parallel harness benchmarks ---------------------------------------

// suiteBenchIDs is a pair of multi-simulation experiments whose inner
// scenario grids the harness fans out.
var suiteBenchIDs = []string{"fig4", "fig5"}

func suiteBenchOpts(workers int) experiments.Options {
	opts := benchOpts()
	opts.Scale = 0.1
	opts.Schedulers = []sched.Kind{sched.KindCredit, sched.KindVProbe}
	opts.Workers = workers
	return opts
}

func runSuiteBench(b *testing.B, workers int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		items, err := experiments.RunSuite(context.Background(), suiteBenchIDs,
			suiteBenchOpts(workers))
		if err != nil {
			b.Fatal(err)
		}
		for _, item := range items {
			if item.Err != nil {
				b.Fatal(item.Err)
			}
		}
	}
}

// BenchmarkSuiteSequential runs the suite on one worker — the baseline for
// the parallel harness speedup (compare with BenchmarkSuiteParallel).
func BenchmarkSuiteSequential(b *testing.B) {
	b.ReportAllocs()
	runSuiteBench(b, 1)
}

// BenchmarkSuiteParallel runs the same suite on GOMAXPROCS workers. Results
// are byte-identical to the sequential run; on a 4-core machine wall time
// drops by well over 2x because every (workload, scheduler, seed) scenario
// is an independent simulation.
func BenchmarkSuiteParallel(b *testing.B) {
	b.ReportAllocs()
	runSuiteBench(b, 0)
}

// --- Micro-benchmarks of the core algorithms ---------------------------

// BenchmarkPartition measures Algorithm 1 on a 24-VCPU, 4-node input.
func BenchmarkPartition(b *testing.B) {
	b.ReportAllocs()
	rng := sim.NewRNG(1)
	stats := make([]core.Stat, 24)
	for i := range stats {
		typ := core.TypeT
		if rng.Intn(2) == 0 {
			typ = core.TypeFI
		}
		stats[i] = core.Stat{
			VCPU: i, Pressure: 5 + rng.Float64()*25,
			Affinity: numa.NodeID(rng.Intn(4)), Type: typ,
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Partition(stats, 4)
	}
}

// BenchmarkPickSteal measures Algorithm 2 on a loaded 4-node machine.
func BenchmarkPickSteal(b *testing.B) {
	b.ReportAllocs()
	rng := sim.NewRNG(2)
	queues := make(map[numa.NodeID][]core.QueueView)
	for n := 0; n < 4; n++ {
		var views []core.QueueView
		for c := 0; c < 4; c++ {
			var run []core.RunnableVCPU
			for v := 0; v < 3; v++ {
				run = append(run, core.RunnableVCPU{
					VCPU: n*100 + c*10 + v, Pressure: rng.Float64() * 30,
				})
			}
			views = append(views, core.QueueView{
				CPU: numa.CPUID(n*4 + c), Workload: rng.Intn(5), Runnable: run,
			})
		}
		queues[numa.NodeID(n)] = views
	}
	order := []numa.NodeID{1, 2, 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.PickSteal(0, order, queues)
	}
}

// BenchmarkPerfExecute measures one quantum evaluation of the performance
// model (the simulation's inner loop).
func BenchmarkPerfExecute(b *testing.B) {
	b.ReportAllocs()
	s := perf.NewSystem(numa.XeonE5620())
	req := perf.Request{
		Profile:      workload.Soplex(),
		Quantum:      30 * sim.Millisecond,
		RunNode:      0,
		PageDist:     mem.Dist{0.7, 0.3},
		CoRunnerRPTI: 40,
		ColdLines:    5000,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Execute(req)
	}
}

// BenchmarkQuantumHotPath isolates one dispatch→endQuantum cycle: a single
// endless CPU-bound VCPU on an otherwise idle host, stepped one timeslice
// per iteration after the simulation reaches steady state. allocs/op is
// the per-quantum allocation count the refactor pins at zero (also
// enforced by TestQuantumSteadyStateZeroAlloc in internal/xen).
func BenchmarkQuantumHotPath(b *testing.B) {
	benchQuantumHotPath(b, false)
}

// BenchmarkQuantumHotPathTelemetry is the same cycle with the full metric
// set attached and the sampler ticking — the overhead delta against
// BenchmarkQuantumHotPath is the cost of telemetry on the hot path, and
// allocs/op must stay 0.
func BenchmarkQuantumHotPathTelemetry(b *testing.B) {
	benchQuantumHotPath(b, true)
}

func benchQuantumHotPath(b *testing.B, withTele bool) {
	b.ReportAllocs()
	cfg := xen.DefaultConfig()
	cfg.GuestThreadMigrationMean = 0
	h := xen.New(numa.XeonE5620(), sched.MustNew(sched.KindCredit), cfg)
	vm, err := h.CreateDomain("vm", 1024, 1, mem.PolicyStripe)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := h.AttachApp(vm, 0, workload.Hungry()); err != nil {
		b.Fatal(err)
	}
	if withTele {
		s := telemetry.NewSampler(telemetry.NewRegistry(), sim.Second)
		xen.AttachTelemetry(h, s)
		s.Start(h.Engine)
	}
	h.Run(sim.Second) // warm up: boot, first touch, buffer growth
	next := sim.Time(sim.Second)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		next = next.Add(cfg.Timeslice)
		h.Engine.RunUntil(next)
	}
}

// BenchmarkSimulationSecond measures simulating one virtual second of the
// full standard scenario under vProbe (events/sec of the engine).
func BenchmarkSimulationSecond(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := xen.New(numa.XeonE5620(), sched.MustNew(sched.KindVProbe), xen.DefaultConfig())
		vm, err := h.CreateDomain("vm", 8*1024, 8, mem.PolicyStripe)
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 4; j++ {
			if _, err := h.AttachApp(vm, j, workload.Soplex()); err != nil {
				b.Fatal(err)
			}
		}
		for j := 4; j < 8; j++ {
			if _, err := h.AttachApp(vm, j, workload.GuestIdle()); err != nil {
				b.Fatal(err)
			}
		}
		h.Run(sim.Second)
	}
}

// BenchmarkSpecCompile measures the serve layer's request setup cost:
// decoding a ScenarioV1 from JSON, validating it, and compiling it onto a
// ready-to-run Simulator. This is pure front-door overhead — the
// simulation itself never starts — so allocations here are per-request
// daemon cost.
func BenchmarkSpecCompile(b *testing.B) {
	doc := []byte(`{
	  "scheduler": "vprobe",
	  "horizon": "30s",
	  "vms": [
	    {"name": "vm0", "memory_mb": 4096, "vcpus": 4,
	     "apps": [{"name": "soplex"}, {"name": "mcf"}, {"server": "memcached", "load": 64}]},
	    {"name": "vm1", "memory_mb": 2048, "vcpus": 2,
	     "apps": [{"name": "milc"}, {"server": "redis", "load": 8}]}
	  ]
	}`)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var sp spec.ScenarioV1
		if err := json.Unmarshal(doc, &sp); err != nil {
			b.Fatal(err)
		}
		if err := sp.Validate(); err != nil {
			b.Fatal(err)
		}
		if _, _, err := vprobe.CompileScenario(sp, vprobe.CompileOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
