package cluster

import (
	"vprobe/internal/controlplane"
	"vprobe/internal/sim"
	"vprobe/internal/workload"
	"vprobe/internal/xen"
)

// VMSpec is a placement request: the resources a VM asks for and the
// workloads its VCPUs will run. Profiles[i] is bound to VCPU i; a nil
// entry leaves that VCPU guest-idle.
type VMSpec struct {
	Name     string
	MemoryMB int64
	VCPUs    int
	Profiles []*workload.Profile

	// Priority is the VM's admission class: higher classes sort first in
	// the admission queue and, when preemption is enabled, may evict
	// strictly lower classes. The zero value is BestEffort.
	Priority controlplane.Priority
	// Group names the VM's gang ("" for singletons): members of one group
	// arrive together and, when gang admission is enabled, are placed
	// all-or-nothing.
	Group string
}

// vmState is the cluster-side lifecycle of a VM.
type vmState int

const (
	// statePending: arrived, not placed yet (possibly between retries).
	statePending vmState = iota
	// stateRunning: placed on a host.
	stateRunning
	// stateMigrating: being copied between hosts; the source domain is
	// gone and the target domain is built but not yet activated.
	stateMigrating
	// stateRejected: gave up after exhausting placement retries.
	stateRejected
	// stateDeparted: lifetime over, torn down.
	stateDeparted
)

// VM is one placement request tracked through its cluster lifetime.
type VM struct {
	ID   int
	Spec VMSpec

	// Host and dom are the current placement (nil until placed).
	Host *Host
	dom  *xen.Domain

	state      vmState
	arriveAt   sim.Time
	departAt   sim.Time // 0 while unplaced (including after a preemption kill)
	placedAt   sim.Time // last (re)placement time, for migration cooldown
	Migrations int

	// life is the lifetime still owed: drawn at arrival (so the arrival
	// stream is identical whatever the admission mechanisms do with it)
	// and rewritten to the remaining balance when a preemption kill
	// returns the VM to the queue.
	life sim.Duration
	// departSeq invalidates scheduled departure timers: a preemption kill
	// bumps it, so the timer armed at the previous placement fires as a
	// no-op and a fresh one is armed at re-placement.
	departSeq int
	// admitted marks that the first placement already happened, so wait
	// statistics are recorded once per VM, not once per re-placement.
	admitted bool
}

// migrationProfiles snapshots the remaining work of the VM's current
// domain as fresh profiles for re-attachment on a migration target. Batch
// apps carry over exactly their unretired instructions; endless apps
// (servers, burners) restart their open-ended streams. Finished or
// app-less VCPUs yield nil entries.
func (vm *VM) migrationProfiles() []*workload.Profile {
	out := make([]*workload.Profile, len(vm.dom.VCPUs))
	for i, v := range vm.dom.VCPUs {
		if v.App == nil || v.Done {
			continue
		}
		p := v.App.Clone()
		if !p.Endless() && !p.Server {
			rem := v.RemainingInstructions()
			if rem <= 0 {
				continue
			}
			p.TotalInstructions = rem
		}
		out[i] = p
	}
	return out
}
