// Command vprobe-trace runs a small scenario with scheduling trace output,
// showing quantum dispatches, blocks/wakes, migrations, guest thread
// parking, and app completions.
//
// Usage:
//
//	vprobe-trace [-sched vprobe] [-seconds 3] [-apps soplex,libquantum]
//	             [-json] [-spans file.jsonl] [-chrome file.json]
//
// With -json each event is emitted as one JSON object per line on stdout
// (machine-readable stream); the report moves to stderr so stdout stays
// pure JSONL. An empty -apps list still emits a valid (possibly empty)
// JSONL stream — zero events is a well-formed document, not an error.
//
// -spans records the run's span flight recorder (domain lifecycle spans
// over virtual time) as JSONL — the input format of vprobe-explain —
// and -chrome exports the same spans as Chrome trace-event JSON loadable
// in Perfetto or chrome://tracing.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"vprobe"
)

// jsonEvent is the -json wire form of one vprobe.Event: virtual time in
// seconds plus the typed identity fields. Empty identities are omitted.
type jsonEvent struct {
	T      float64 `json:"t"`
	Kind   string  `json:"kind"`
	VCPU   int     `json:"vcpu"`
	Node   int     `json:"node"`
	App    string  `json:"app,omitempty"`
	Host   string  `json:"host,omitempty"`
	VM     string  `json:"vm,omitempty"`
	Detail string  `json:"detail"`
}

// jsonSink streams events as JSON Lines.
func jsonSink(w io.Writer) vprobe.EventSink {
	enc := json.NewEncoder(w)
	return vprobe.EventFunc(func(ev vprobe.Event) {
		enc.Encode(jsonEvent{
			T:      ev.At.Seconds(),
			Kind:   string(ev.Kind),
			VCPU:   ev.VCPU,
			Node:   ev.Node,
			App:    ev.App,
			Host:   ev.Host,
			VM:     ev.VM,
			Detail: ev.Detail,
		})
	})
}

// options carries the parsed flags, so run is testable end to end.
type options struct {
	sched   string
	seconds float64
	apps    string
	seed    uint64
	asJSON  bool
	spans   io.Writer // span JSONL destination (nil = off)
	chrome  io.Writer // Chrome trace destination (nil = off)
}

// run executes the traced scenario, writing the event stream and report to
// stdout/stderr per the -json contract and the span exports to the
// configured writers.
func run(opts options, stdout, stderr io.Writer) error {
	out := bufio.NewWriter(stdout)
	defer out.Flush()
	var sink vprobe.EventSink
	if opts.asJSON {
		sink = jsonSink(out)
	} else {
		sink = vprobe.EventFunc(func(ev vprobe.Event) {
			fmt.Fprintf(out, "%12.6f  %-14s %s\n", ev.At.Seconds(), ev.Kind, ev.Detail)
		})
	}
	var tracing *vprobe.Tracing
	if opts.spans != nil || opts.chrome != nil {
		tracing = vprobe.NewTracing(vprobe.TracingOptions{})
	}
	sim, err := vprobe.NewSimulator(vprobe.Config{
		Scheduler: vprobe.Scheduler(opts.sched),
		Seed:      opts.seed,
		Events:    sink,
		Spans:     tracing,
	})
	if err != nil {
		return err
	}

	// Blanks and stray commas are skipped, so -apps "" means "no apps": an
	// empty run — nothing runnable, no burner — whose event stream is a
	// valid, empty JSONL document rather than an error.
	var appList []string
	for _, app := range strings.Split(opts.apps, ",") {
		if app = strings.TrimSpace(app); app != "" {
			appList = append(appList, app)
		}
	}
	vm, err := sim.AddVM(vprobe.VMConfig{
		Name: "traced", MemoryMB: 8 * 1024, VCPUs: 8,
		Memory: vprobe.MemStripe, FillGuestIdle: len(appList) > 0,
	})
	if err != nil {
		return err
	}
	for _, app := range appList {
		if err := vm.RunApp(app); err != nil {
			return err
		}
	}
	if len(appList) > 0 {
		burner, err := sim.AddVM(vprobe.VMConfig{Name: "burner", MemoryMB: 1024, VCPUs: 8})
		if err != nil {
			return err
		}
		for i := 0; i < 8; i++ {
			if err := burner.RunApp("hungry"); err != nil {
				return err
			}
		}
	}

	report, err := sim.Run(time.Duration(opts.seconds * float64(time.Second)))
	if err != nil {
		return err
	}
	if tracing != nil {
		if opts.spans != nil {
			if err := tracing.WriteSpans(opts.spans); err != nil {
				return fmt.Errorf("span export: %w", err)
			}
		}
		if opts.chrome != nil {
			if err := tracing.WriteChromeTrace(opts.chrome); err != nil {
				return fmt.Errorf("chrome export: %w", err)
			}
		}
	}
	if opts.asJSON {
		out.Flush()
		fmt.Fprint(stderr, report)
		return nil
	}
	fmt.Fprintln(out)
	fmt.Fprint(out, report)
	return nil
}

func main() {
	schedName := flag.String("sched", "vprobe", "scheduler: credit|vprobe|vcpu-p|lb|brm")
	seconds := flag.Float64("seconds", 2, "virtual seconds to trace")
	apps := flag.String("apps", "soplex,libquantum", "comma-separated catalog apps for the traced VM (empty = none)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	asJSON := flag.Bool("json", false, "emit one JSON object per event (report goes to stderr)")
	spansPath := flag.String("spans", "", "write the span flight recorder as JSONL to this file")
	chromePath := flag.String("chrome", "", "write the spans as Chrome trace-event JSON to this file")
	flag.Parse()

	opts := options{
		sched:   *schedName,
		seconds: *seconds,
		apps:    *apps,
		seed:    *seed,
		asJSON:  *asJSON,
	}
	var closers []*os.File
	open := func(path string) io.Writer {
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		closers = append(closers, f)
		return f
	}
	if *spansPath != "" {
		opts.spans = open(*spansPath)
	}
	if *chromePath != "" {
		opts.chrome = open(*chromePath)
	}
	err := run(opts, os.Stdout, os.Stderr)
	for _, f := range closers {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
