package controlplane

import (
	"sort"

	"vprobe/internal/sim"
)

// Departure is one known future capacity release: VM lifetimes are drawn
// at admission, so every resident's departure time — and the memory it
// hands back per node — is part of the deterministic record the backfill
// planner may consult.
type Departure struct {
	At             sim.Time
	HostIndex      int
	ID             int
	FreesPerNodeMB []int64
	VCPUs          int
}

// Placement is a hypothetical residency charged against one host: what a
// backfill candidate would take if admitted now.
type Placement struct {
	HostIndex    int
	TakesPerNode []int64
	VCPUs        int
}

// Reservation is the shadow placement of a blocked request: the earliest
// (time, host) at which the request fits given the known departure
// schedule. Found is false when it fits nowhere even after every known
// departure.
type Reservation struct {
	Found     bool
	HostIndex int
	At        sim.Time
}

// ShadowReservation computes the blocked request's earliest feasible
// (time, host) by replaying each host's departure schedule in time order
// and testing the fit after each release. extra, when non-nil, charges a
// hypothetical backfill placement against its host first — the "would the
// head still start on time?" probe. Ties break to the earlier time, then
// the lower host index.
func ShadowReservation(req Request, hosts []*HostCap, deps []Departure, fits FitFunc, extra *Placement) Reservation {
	ordered := append([]Departure(nil), deps...)
	sort.Slice(ordered, func(i, j int) bool {
		a, b := ordered[i], ordered[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.HostIndex != b.HostIndex {
			return a.HostIndex < b.HostIndex
		}
		return a.ID < b.ID
	})

	var best Reservation
	for _, host := range hosts {
		what := host.clone()
		if extra != nil && extra.HostIndex == host.Index {
			for i, take := range extra.TakesPerNode {
				if i < len(what.FreePerNodeMB) {
					what.FreePerNodeMB[i] -= take
				}
			}
			what.GuestVCPUs += extra.VCPUs
		}
		at, ok := sim.Time(0), fits(req, &what)
		if !ok {
			for _, d := range ordered {
				if d.HostIndex != host.Index {
					continue
				}
				addTo(what.FreePerNodeMB, d.FreesPerNodeMB)
				what.GuestVCPUs -= d.VCPUs
				if fits(req, &what) {
					at, ok = d.At, true
					break
				}
			}
		}
		if !ok {
			continue
		}
		if !best.Found || at < best.At ||
			(at == best.At && host.Index < best.HostIndex) {
			best = Reservation{Found: true, HostIndex: host.Index, At: at}
		}
	}
	return best
}

// CanBackfill reports whether admitting cand now cannot delay the blocked
// head's shadow reservation. Three cases:
//
//   - the head has no reservation (it fits nowhere even after every known
//     departure): nothing to delay, backfill freely;
//   - cand lands on a different host than the reservation: the reserved
//     capacity is untouched;
//   - cand lands on the reserved host: recompute the reservation with cand
//     charged (conservatively assumed to never depart — its lifetime is
//     only drawn at admission) and require the head to still fit no later
//     than before.
func CanBackfill(head Request, res Reservation, hosts []*HostCap, deps []Departure, fits FitFunc, cand Placement) bool {
	if !res.Found {
		return true
	}
	if cand.HostIndex != res.HostIndex {
		return true
	}
	after := ShadowReservation(head, hosts, deps, fits, &cand)
	return after.Found && after.At <= res.At
}
