package vprobe

import "errors"

// Sentinel errors returned (wrapped) by the public API, for callers to
// match with errors.Is.
var (
	// ErrUnknownTopology: Config.Topology names no machine preset.
	ErrUnknownTopology = errors.New("vprobe: unknown topology")
	// ErrUnknownScheduler: Config.Scheduler names no registered policy.
	ErrUnknownScheduler = errors.New("vprobe: unknown scheduler")
	// ErrNoFreeVCPU: every VCPU of the VM already carries an app.
	ErrNoFreeVCPU = errors.New("vprobe: no free VCPU")
	// ErrAlreadyStarted: the operation is only valid before Run.
	ErrAlreadyStarted = errors.New("vprobe: simulation already started")
	// ErrUnknownPolicy: ClusterConfig.Policy names no registered placement
	// policy.
	ErrUnknownPolicy = errors.New("vprobe: unknown placement policy")
	// ErrTelemetryAttached: the Telemetry collector was already handed to
	// another run; each collector records exactly one.
	ErrTelemetryAttached = errors.New("vprobe: telemetry already attached to a run")
)
