package core

import (
	"vprobe/internal/numa"
)

// Assignment is one output row of Algorithm 1: the VCPU identified by VCPU
// should run on Node for the next sampling period.
type Assignment struct {
	VCPU int
	Node numa.NodeID
}

// Partition implements the paper's Algorithm 1, VCPU Periodical
// Partitioning. It reassigns every memory-intensive VCPU (types LLC-T and
// LLC-FI) to a node such that the per-node counts differ by at most one,
// preferring to place each VCPU on its memory node affinity (local node),
// and otherwise draining the largest remaining affinity group to maximise
// other VCPUs' chances of local placement.
//
// LLC-FR VCPUs are not assigned (the default load balancing handles them);
// they simply do not appear in the output.
//
// The input order within each (type, affinity) group is preserved — the
// algorithm's "first VCPU of the group" is the first in stats order, so
// callers control tie-breaking by ordering their input (the prototype
// iterates Xen's per-domain VCPU lists).
//
// VCPUs with no affinity signal (numa.NoNode) are grouped under node 0;
// for a memory-intensive VCPU this only happens in degenerate windows.
//
//vprobe:hotpath
func Partition(stats []Stat, numNodes int) []Assignment {
	if numNodes <= 0 {
		return nil
	}

	// groupOfVc(c, p): unassigned VCPUs of category c with affinity p.
	// Index 0 = LLC-T, 1 = LLC-FI (assignment priority order).
	groups := [2][]([]int){}
	for i := range groups {
		//vet:alloc Algorithm 1 runs once per sampling period (1s simulated); trimming its 23 allocs/op is a tracked ROADMAP item
		groups[i] = make([][]int, numNodes)
	}
	for _, s := range stats {
		var cat int
		switch s.Type {
		case TypeT:
			cat = 0
		case TypeFI:
			cat = 1
		default:
			continue // LLC-FR: default strategy
		}
		aff := int(s.Affinity)
		if aff < 0 || aff >= numNodes {
			aff = 0
		}
		groups[cat][aff] = append(groups[cat][aff], s.VCPU) //vet:alloc per-period grouping pass, see make above
	}

	remaining := 0
	for cat := range groups {
		for _, g := range groups[cat] {
			remaining += len(g)
		}
	}

	load := make([]int, numNodes) //vet:alloc per-period scratch, see the grouping pass above
	//vet:alloc the returned assignment slice is the function's product; callers own it across the period
	out := make([]Assignment, 0, remaining)

	// getMinNode: smallest reassigned_load, ties toward lowest id.
	minNode := func() int { //vet:alloc per-period helper; one closure header per Partition call
		best := 0
		for i := 1; i < numNodes; i++ {
			if load[i] < load[best] {
				best = i
			}
		}
		return best
	}
	// Largest group of a category, ties toward lowest node id.
	maxGroup := func(cat int) int { //vet:alloc per-period helper; one closure header per Partition call
		best := -1
		for i := 0; i < numNodes; i++ {
			if len(groups[cat][i]) == 0 {
				continue
			}
			if best == -1 || len(groups[cat][i]) > len(groups[cat][best]) {
				best = i
			}
		}
		return best
	}
	catEmpty := func(cat int) bool { //vet:alloc per-period helper; one closure header per Partition call
		for _, g := range groups[cat] {
			if len(g) > 0 {
				return false
			}
		}
		return true
	}

	for remaining > 0 {
		node := minNode()
		cat := 0 // prefer LLC-T
		if catEmpty(0) {
			cat = 1
		}
		src := node
		if len(groups[cat][node]) == 0 {
			src = maxGroup(cat)
		}
		vc := groups[cat][src][0]
		groups[cat][src] = groups[cat][src][1:]
		out = append(out, Assignment{VCPU: vc, Node: numa.NodeID(node)}) //vet:alloc capacity pre-sized to remaining above
		load[node]++
		remaining--
	}
	return out
}

// NodeLoads tallies how many assignments landed on each node.
func NodeLoads(as []Assignment, numNodes int) []int {
	loads := make([]int, numNodes)
	for _, a := range as {
		if int(a.Node) >= 0 && int(a.Node) < numNodes {
			loads[a.Node]++
		}
	}
	return loads
}
