// Package serve is the simulation-as-a-service layer: a stdlib-only
// net/http JSON daemon over the spec front door (internal/spec +
// vprobe.CompileScenario / CompileCluster). It accepts serializable
// scenario and cluster specs, runs them on a bounded worker pool with
// per-request context cancellation and a server-enforced timeout, streams
// progress events as JSONL while a run is in flight, exports each run's
// telemetry through the existing internal/telemetry exporters, and caches
// completed runs keyed by the spec's canonical hash — determinism makes a
// cached result byte-identical to re-running it.
//
// Endpoints (see cmd/vprobe-serve for the daemon):
//
//	POST /v1/simulations          run a ScenarioV1 (sync; ?async=1 queues)
//	POST /v1/clusters             run a ClusterV1  (sync; ?async=1 queues)
//	GET  /v1/runs/{id}            run status and result
//	GET  /v1/runs/{id}/events     JSONL event stream (follows a live run)
//	GET  /v1/runs/{id}/spans      span flight recorder (JSONL; ?format=chrome)
//	GET  /v1/runs/{id}/explain    placement provenance queries over the spans
//	GET  /v1/runs/{id}/telemetry  JSONL metric time series of the run
//	GET  /v1/runs/{id}/metrics    Prometheus text exposition of the run
//	DELETE /v1/runs/{id}          cancel a live run
//	GET  /v1/capacity             what-if: can the fleet absorb +N% arrivals?
//	GET  /healthz                 liveness
//	GET  /metrics                 server metrics, Prometheus text
//
// The error-to-HTTP-status mapping is one table in status.go; every public
// sentinel of the vprobe package maps to a deliberate status, audited by
// this package's tests.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"time"

	"vprobe/internal/harness"
	"vprobe/internal/telemetry"
)

// Options configures a Server. Zero values select the noted defaults.
type Options struct {
	// MaxConcurrent bounds simultaneous simulation runs, like the harness
	// pool bounds experiment fan-out (default GOMAXPROCS, via
	// harness.Workers). Requests beyond the bound queue for a slot.
	MaxConcurrent int
	// RunTimeout is the server-enforced wall-clock cap per run (default
	// 2 minutes). A run that exceeds it fails with 504.
	RunTimeout time.Duration
	// MaxBodyBytes caps request bodies (default 1 MiB).
	MaxBodyBytes int64
	// BaseContext is the lifecycle context for async runs, which outlive
	// their originating request (default context.Background; cmd passes
	// the signal-cancelled context so shutdown aborts queued runs).
	BaseContext context.Context
}

// Server routes the API. Create with New, serve via Handler.
type Server struct {
	opts    Options
	mux     *http.ServeMux
	slots   chan struct{}
	runs    *registry
	metrics *serverMetrics
}

// New builds a Server.
func New(opts Options) *Server {
	if opts.MaxConcurrent <= 0 {
		opts.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	opts.MaxConcurrent = harness.Workers(opts.MaxConcurrent, opts.MaxConcurrent)
	if opts.RunTimeout <= 0 {
		opts.RunTimeout = 2 * time.Minute
	}
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = 1 << 20
	}
	if opts.BaseContext == nil {
		opts.BaseContext = context.Background() //vet:ctx daemon lifecycle root; cmd overrides with its signal ctx
	}
	s := &Server{
		opts:    opts,
		mux:     http.NewServeMux(),
		slots:   make(chan struct{}, opts.MaxConcurrent),
		runs:    newRegistry(),
		metrics: newServerMetrics(),
	}
	s.mux.HandleFunc("POST /v1/simulations", s.instrument("simulations", s.handleSimulations))
	s.mux.HandleFunc("POST /v1/clusters", s.instrument("clusters", s.handleClusters))
	s.mux.HandleFunc("GET /v1/runs/{id}", s.instrument("runs", s.handleRunGet))
	s.mux.HandleFunc("DELETE /v1/runs/{id}", s.instrument("runs", s.handleRunCancel))
	s.mux.HandleFunc("GET /v1/runs/{id}/events", s.instrument("events", s.handleRunEvents))
	s.mux.HandleFunc("GET /v1/runs/{id}/spans", s.instrument("spans", s.handleRunSpans))
	s.mux.HandleFunc("GET /v1/runs/{id}/explain", s.instrument("explain", s.handleRunExplain))
	s.mux.HandleFunc("GET /v1/runs/{id}/telemetry", s.instrument("telemetry", s.handleRunTelemetry))
	s.mux.HandleFunc("GET /v1/runs/{id}/metrics", s.instrument("telemetry", s.handleRunMetrics))
	s.mux.HandleFunc("GET /v1/capacity", s.instrument("capacity", s.handleCapacity))
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// Handler returns the HTTP handler for the API.
func (s *Server) Handler() http.Handler { return s.mux }

// instrument counts requests per endpoint.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	c := s.metrics.requests(endpoint)
	return func(w http.ResponseWriter, r *http.Request) {
		s.metrics.inc(c)
		h(w, r)
	}
}

// handleHealthz is the liveness probe.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

// handleMetrics exports the server's own counters as Prometheus text,
// through the same exposition writer the simulation telemetry uses.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.write(w)
}

// writeJSON writes v as a JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) // a failed write means the client left; nothing to do
}

// writeError renders err with the status the table in status.go assigns.
func writeError(w http.ResponseWriter, err error) {
	status := statusFor(err)
	writeJSON(w, status, map[string]any{
		"error":  err.Error(),
		"status": status,
	})
}

// serverMetrics is the daemon's own instrumentation: a telemetry.Registry
// (so /metrics reuses the existing Prometheus exposition writer) guarded
// by a mutex, because unlike a single-threaded simulation the daemon
// updates counters from concurrent request goroutines.
type serverMetrics struct {
	mu         sync.Mutex
	reg        *telemetry.Registry
	byEndpoint map[string]*telemetry.Counter
	runsDone   *telemetry.Counter
	runsFail   *telemetry.Counter
	runsCanc   *telemetry.Counter
	cacheHit   *telemetry.Counter
	cacheMiss  *telemetry.Counter
	active     *telemetry.Gauge
}

// metricEndpoints lists the instrumented endpoint labels, sorted; every
// series is pre-registered so scrape output is stable from the first
// request.
var metricEndpoints = []string{
	"capacity", "clusters", "events", "explain", "runs", "simulations",
	"spans", "telemetry",
}

func newServerMetrics() *serverMetrics {
	reg := telemetry.NewRegistry()
	m := &serverMetrics{reg: reg, byEndpoint: make(map[string]*telemetry.Counter)}
	for _, ep := range metricEndpoints {
		m.byEndpoint[ep] = reg.Counter("vprobe_serve_requests_total",
			"API requests received, by endpoint.",
			telemetry.Label{Key: "endpoint", Value: ep})
	}
	m.runsDone = reg.Counter("vprobe_serve_runs_total",
		"Simulation runs finished, by final state.",
		telemetry.Label{Key: "state", Value: "done"})
	m.runsFail = reg.Counter("vprobe_serve_runs_total",
		"Simulation runs finished, by final state.",
		telemetry.Label{Key: "state", Value: "failed"})
	m.runsCanc = reg.Counter("vprobe_serve_runs_total",
		"Simulation runs finished, by final state.",
		telemetry.Label{Key: "state", Value: "cancelled"})
	m.cacheHit = reg.Counter("vprobe_serve_cache_hits_total",
		"Requests answered from the determinism-keyed result cache.")
	m.cacheMiss = reg.Counter("vprobe_serve_cache_misses_total",
		"Requests that had to run a fresh simulation.")
	m.active = reg.Gauge("vprobe_serve_runs_active",
		"Simulation runs currently holding a worker slot.")
	return m
}

func (m *serverMetrics) requests(endpoint string) *telemetry.Counter {
	c, ok := m.byEndpoint[endpoint]
	if !ok {
		panic(fmt.Sprintf("serve: endpoint %q not pre-registered", endpoint))
	}
	return c
}

func (m *serverMetrics) inc(c *telemetry.Counter) {
	m.mu.Lock()
	c.Inc()
	m.mu.Unlock()
}

func (m *serverMetrics) addActive(d float64) {
	m.mu.Lock()
	m.active.Add(d)
	m.mu.Unlock()
}

func (m *serverMetrics) write(w http.ResponseWriter) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.reg.WritePrometheus(w) // a failed write means the client left
}
