package cluster

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"

	"vprobe/internal/sim"
	"vprobe/internal/telemetry"
)

// runSpans runs cfg with a flight recorder attached and returns the
// rendered report, the event log, and the span JSONL export.
func runSpans(t *testing.T, cfg Config) (report, log string, spans []byte) {
	t.Helper()
	var logB strings.Builder
	cfg.Events = func(ev Event) {
		fmt.Fprintf(&logB, "%v %s %s %s %s\n", ev.At, ev.Kind, ev.Host, ev.VM, ev.Detail)
	}
	tr := telemetry.NewTracer(cfg.Seed, 0)
	cfg.Spans = tr
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if tr.Dropped() != 0 {
		t.Fatalf("tracer dropped %d spans at the default limit", tr.Dropped())
	}
	var buf bytes.Buffer
	if err := tr.WriteSpansJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return rep.String(), logB.String(), buf.Bytes()
}

// controlPlaneCfg exercises every recorded decision kind: an overloaded
// cluster with preemption, gangs, backfill, and descheduling all on.
func controlPlaneCfg(workers int) Config {
	return Config{
		Hosts:             2,
		Horizon:           120 * sim.Second,
		Seed:              5,
		ArrivalsPerSecond: 1.0,
		MeanLifetime:      500 * sim.Second,
		Preempt:           true,
		Gang:              true,
		GangFraction:      0.2,
		GangSize:          2,
		Backfill:          true,
		Workers:           workers,
	}
}

// TestClusterSpansDeterministicAcrossWorkers is the flight recorder's
// acceptance criterion: a fixed seed produces byte-identical span files at
// workers 1/4/8 and across two runs of the same seed.
func TestClusterSpansDeterministicAcrossWorkers(t *testing.T) {
	_, _, want := runSpans(t, controlPlaneCfg(1))
	if len(want) == 0 {
		t.Fatal("control-plane run recorded no spans")
	}
	for _, workers := range []int{4, 8} {
		_, _, got := runSpans(t, controlPlaneCfg(workers))
		if !bytes.Equal(got, want) {
			t.Fatalf("span file at workers=%d differs from workers=1", workers)
		}
	}
	_, _, again := runSpans(t, controlPlaneCfg(8))
	if !bytes.Equal(again, want) {
		t.Fatal("two same-seed runs produced different span files")
	}
}

// TestClusterOutputIdenticalWithSpans is the observer contract: attaching
// the flight recorder must not change the report or the event log by a
// single byte, at any worker count.
func TestClusterOutputIdenticalWithSpans(t *testing.T) {
	for _, workers := range []int{1, 4, 8} {
		cfg := controlPlaneCfg(workers)
		baseRep, baseLog := runWith(t, cfg)
		tracedRep, tracedLog, _ := runSpans(t, controlPlaneCfg(workers))
		if tracedRep != baseRep.String() {
			t.Fatalf("workers=%d: report differs with spans on", workers)
		}
		if tracedLog != baseLog {
			t.Fatalf("workers=%d: event log differs with spans on", workers)
		}
	}
}

// TestClusterSpansMatchPlaceCheck runs spans and the -place-check shadow
// rescan together: Explain (which the recorder uses for the per-plugin
// breakdown) must agree with the incremental score cache on every
// decision, so the span file never contains a MISMATCH note and the
// shadow check never fires.
func TestClusterSpansMatchPlaceCheck(t *testing.T) {
	cfg := controlPlaneCfg(4)
	cfg.PlaceCheck = true
	_, _, spans := runSpans(t, cfg)
	if bytes.Contains(spans, []byte("MISMATCH")) {
		t.Fatalf("span file contains an explain/decision mismatch:\n%s", spans)
	}
}

// TestClusterSpansExplainChain loads the recorded span file back the way
// vprobe-explain does and checks the provenance answers: every control
// plane mechanism left its span kind, and a placed VM's "why" carries the
// per-plugin filter and score breakdown.
func TestClusterSpansExplainChain(t *testing.T) {
	_, log, raw := runSpans(t, controlPlaneCfg(1))
	spans, err := telemetry.ReadSpans(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[telemetry.SpanKind]int{}
	for i := range spans {
		kinds[spans[i].Kind]++
	}
	for _, kind := range []telemetry.SpanKind{
		telemetry.SpanRun, telemetry.SpanVM, telemetry.SpanPlace,
		telemetry.SpanFilter, telemetry.SpanScore, telemetry.SpanCandidate,
		telemetry.SpanPreempt,
	} {
		if kinds[kind] == 0 {
			t.Fatalf("no %q spans recorded; kinds: %v", kind, kinds)
		}
	}
	ix := telemetry.NewSpanIndex(spans)

	// Find a VM the event log shows as placed and ask why.
	var placed string
	for _, line := range strings.Split(log, "\n") {
		if strings.Contains(line, string(EventVMPlace)) {
			placed = strings.Fields(line)[3]
			break
		}
	}
	if placed == "" {
		t.Fatal("event log shows no placement")
	}
	why, err := ix.ExplainWhy(placed)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"decision place " + placed, "filters:", "scores for", "candidates:"} {
		if !strings.Contains(why, want) {
			t.Fatalf("ExplainWhy(%s) missing %q:\n%s", placed, want, why)
		}
	}

	// A preemption event in the log must be answerable from the spans.
	var victim string
	for _, line := range strings.Split(log, "\n") {
		if strings.Contains(line, string(EventVMPreempted)) {
			victim = strings.Fields(line)[3]
			break
		}
	}
	if victim == "" {
		t.Fatal("control-plane run never preempted")
	}
	pre, err := ix.ExplainPreempted(victim)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(pre, victim+" preempted off") {
		t.Fatalf("ExplainPreempted(%s) = %q", victim, pre)
	}
}

// TestClusterSpansChromeExport validates the Chrome trace-event twin of
// the JSONL file with the independent checker.
func TestClusterSpansChromeExport(t *testing.T) {
	cfg := controlPlaneCfg(1)
	tr := telemetry.NewTracer(cfg.Seed, 0)
	cfg.Spans = tr
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	n, err := telemetry.ValidateChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if n <= tr.Len() {
		t.Fatalf("chrome export has %d events for %d spans; metadata missing", n, tr.Len())
	}
}
