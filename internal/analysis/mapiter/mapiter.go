// Package mapiter flags `range` loops over maps whose bodies produce
// order-sensitive output: appending to a slice declared outside the loop
// with no deterministic sort afterwards, writing to an output sink (fmt
// printing, io/table/event sinks, channel sends), or accumulating into an
// outer floating-point variable (float addition is not associative, so the
// sum depends on Go's randomized map order).
//
// Map iteration order is the single easiest way to break the repo's
// byte-identical-replay guarantee, so the determinism contract requires the
// keys-then-sort idiom on any map iteration that feeds a report, export, or
// event stream. A loop whose order is genuinely irrelevant (or sorted by
// other means) is annotated `//vet:ordered` with a justification.
package mapiter

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"vprobe/internal/analysis/framework"
)

// Analyzer is the mapiter determinism check.
var Analyzer = &framework.Analyzer{
	Name: "mapiter",
	Doc: "flag map iterations that feed order-sensitive sinks without a " +
		"deterministic sort (suppress with //vet:ordered)",
	Run:        run,
	Directives: []string{"ordered"},
}

// scopePrefixes are the packages the determinism contract covers: the
// simulation core and everything that computes or exports results.
var scopePrefixes = []string{
	"vprobe/internal/sim",
	"vprobe/internal/core",
	"vprobe/internal/sched",
	"vprobe/internal/cluster",
	"vprobe/internal/experiments",
	"vprobe/internal/mem",
	"vprobe/internal/numa",
	"vprobe/internal/xen",
}

func inScope(path string) bool {
	if !strings.HasPrefix(path, "vprobe") {
		return true // analysistest fixture tree
	}
	for _, p := range scopePrefixes {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// sinkMethods are method names treated as order-sensitive output targets.
var sinkMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Emit": true, "HandleEvent": true, "AddRow": true, "Encode": true,
	"Record": true, "Publish": true, "Push": true,
}

func run(pass *framework.Pass) (any, error) {
	if !inScope(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			list := stmtList(n)
			for i, stmt := range list {
				rs, ok := unlabel(stmt).(*ast.RangeStmt)
				if !ok {
					continue
				}
				checkRange(pass, rs, list[i+1:])
			}
			return true
		})
	}
	return nil, nil
}

// stmtList returns the statement list a node carries, if any; every
// statement (range loops included) lives in exactly one such list.
func stmtList(n ast.Node) []ast.Stmt {
	switch n := n.(type) {
	case *ast.BlockStmt:
		return n.List
	case *ast.CaseClause:
		return n.Body
	case *ast.CommClause:
		return n.Body
	}
	return nil
}

func unlabel(s ast.Stmt) ast.Stmt {
	for {
		ls, ok := s.(*ast.LabeledStmt)
		if !ok {
			return s
		}
		s = ls.Stmt
	}
}

// checkRange analyzes one range statement; tail is the rest of the
// enclosing statement list, searched for a sort of appended-to slices.
func checkRange(pass *framework.Pass, rs *ast.RangeStmt, tail []ast.Stmt) {
	t := pass.TypesInfo.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	if pass.Suppressed(rs.Pos(), "ordered") {
		return
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(n.Pos(),
				"channel send inside map iteration publishes values in randomized order; iterate sorted keys or annotate //vet:ordered")
		case *ast.CallExpr:
			checkSinkCall(pass, n)
		case *ast.AssignStmt:
			checkAssign(pass, rs, tail, n)
		}
		return true
	})
}

// checkSinkCall flags calls that emit output from inside the loop body.
func checkSinkCall(pass *framework.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	name := sel.Sel.Name
	if !sinkMethods[name] {
		return
	}
	// Package-level fmt.Print* / fmt.Fprint* and any method of the same
	// names (io.Writer, strings.Builder, event sinks, metric tables).
	if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil {
		pass.Reportf(call.Pos(),
			"%s inside map iteration writes in randomized order; iterate sorted keys or annotate //vet:ordered", name)
	}
}

// checkAssign flags (a) appends into slices declared outside the loop that
// are not sorted afterwards and (b) compound floating-point accumulation
// into outer variables.
func checkAssign(pass *framework.Pass, rs *ast.RangeStmt, tail []ast.Stmt, as *ast.AssignStmt) {
	for i, lhs := range as.Lhs {
		obj := baseObject(pass, lhs)
		if obj == nil || within(obj.Pos(), rs) {
			continue
		}
		if as.Tok == token.ASSIGN || as.Tok == token.DEFINE {
			if i < len(as.Rhs) && isAppendCall(pass, as.Rhs[i]) && !sortedLater(pass, tail, obj) {
				pass.Reportf(as.Pos(),
					"append to %s inside map iteration without a later sort; sort it (sort/slices) after the loop or annotate //vet:ordered", obj.Name())
			}
			continue
		}
		// Compound assignment: only floating-point accumulation is
		// order-sensitive (integer +=, counters, etc. are commutative).
		if isFloat(pass.TypesInfo.TypeOf(lhs)) {
			pass.Reportf(as.Pos(),
				"floating-point accumulation into %s inside map iteration is order-dependent; iterate sorted keys or annotate //vet:ordered", obj.Name())
		}
	}
}

// baseObject resolves the root identifier of an assignable expression
// (x, x.f, x[i], *x ...) to its object.
func baseObject(pass *framework.Pass, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return pass.TypesInfo.ObjectOf(x)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func within(pos token.Pos, rs *ast.RangeStmt) bool {
	return pos >= rs.Pos() && pos <= rs.End()
}

func isAppendCall(pass *framework.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.ObjectOf(id).(*types.Builtin)
	return ok && b.Name() == "append"
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// sortedLater reports whether a later statement of the enclosing block
// passes obj to a sort.* or slices.* call — the keys-then-sort idiom.
func sortedLater(pass *framework.Pass, tail []ast.Stmt, obj types.Object) bool {
	for _, stmt := range tail {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
				return true
			}
			for _, arg := range call.Args {
				ast.Inspect(arg, func(an ast.Node) bool {
					if id, ok := an.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
						found = true
					}
					return !found
				})
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
