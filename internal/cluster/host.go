package cluster

import (
	"context"
	"fmt"

	"vprobe/internal/numa"
	"vprobe/internal/sched"
	"vprobe/internal/sim"
	"vprobe/internal/xen"
)

// Host is one hypervisor in the cluster: an independent xen.Hypervisor
// with its own NUMA topology, scheduling policy, seeded RNG, and event
// engine. Hosts share nothing, which is what lets the cluster advance them
// in parallel between cluster-level decisions.
type Host struct {
	Index int
	Name  string
	Top   *numa.Topology
	H     *xen.Hypervisor

	// VMs are the live (placed or migrating-in) VMs, in placement order.
	VMs []*VM
	// Placed counts cumulative placements, including migrations in.
	Placed int

	// Rebalance-interval counter snapshot (see intervalRemoteRatio).
	lastTotal, lastRemote float64
}

// newHost builds and starts one host. Starting with zero domains is valid:
// the tickers arm and every PCPU idles until the first VM activates.
func newHost(index int, topoName string, kind sched.Kind, seed uint64) (*Host, error) {
	top, err := numa.Resolve(topoName)
	if err != nil {
		return nil, err
	}
	pol, err := sched.New(kind)
	if err != nil {
		return nil, err
	}
	cfg := xen.DefaultConfig()
	cfg.Seed = seed
	h := xen.New(top, pol, cfg)
	if err := h.Start(); err != nil {
		return nil, err
	}
	return &Host{
		Index: index,
		Name:  fmt.Sprintf("host%d", index),
		Top:   top,
		H:     h,
	}, nil
}

// advanceTo runs the host's own event engine up to absolute cluster time
// t. Host clocks and the cluster clock share t=0, so this keeps every
// host's state current before a cluster-level decision reads it.
func (ho *Host) advanceTo(ctx context.Context, t sim.Time) error {
	if ho.H.Engine.Now() >= t {
		return nil
	}
	_, err := ho.H.RunContext(ctx, sim.Duration(t))
	return err
}

// guestVCPUs counts VCPUs of live domains (the CPU overcommit figure).
func (ho *Host) guestVCPUs() int {
	n := 0
	for _, vm := range ho.VMs {
		n += vm.Spec.VCPUs
	}
	return n
}

// removeVM drops a VM from the live list.
func (ho *Host) removeVM(vm *VM) {
	for i, v := range ho.VMs {
		if v == vm {
			ho.VMs = append(ho.VMs[:i], ho.VMs[i+1:]...)
			return
		}
	}
}

// llcPressure sums the current-phase LLC reference intensity (RPTI) of the
// host's active VCPUs, averaged per socket — the cluster-level analogue of
// the paper's per-socket pressure sum that periodical partitioning
// balances inside one host.
func (ho *Host) llcPressure() float64 {
	var sum float64
	for _, v := range ho.H.AllVCPUs() {
		if !v.Runnable() {
			continue
		}
		if ph := v.Phase(); ph != nil {
			sum += ph.RPTI
		}
	}
	return sum / float64(ho.Top.NumNodes())
}

// counterTotals sums lifetime memory-access counters over every VCPU the
// host has ever run (including departed domains, whose counters survive).
func (ho *Host) counterTotals() (total, remote float64) {
	for _, v := range ho.H.AllVCPUs() {
		total += v.Counters.Total()
		remote += v.Counters.Remote
	}
	return total, remote
}

// remoteRatio is the host's lifetime remote-access ratio.
func (ho *Host) remoteRatio() float64 {
	total, remote := ho.counterTotals()
	if total <= 0 {
		return 0
	}
	return remote / total
}

// intervalRemoteRatio returns the remote-access ratio since the previous
// call and advances the snapshot. The rebalancer uses this (not the
// lifetime ratio) so an old imbalance that was already fixed does not keep
// triggering migrations.
func (ho *Host) intervalRemoteRatio() float64 {
	total, remote := ho.counterTotals()
	dt, dr := total-ho.lastTotal, remote-ho.lastRemote
	ho.lastTotal, ho.lastRemote = total, remote
	if dt <= 0 {
		return 0
	}
	return dr / dt
}

// view snapshots the host's placement-relevant state for the filter/score
// pipeline. overcommit is the cluster's VCPU overcommit factor, baked into
// the view so plugins stay pure functions of (spec, view).
func (ho *Host) view(overcommit float64) *HostView {
	v := &HostView{
		Index:       ho.Index,
		Name:        ho.Name,
		Nodes:       ho.Top.NumNodes(),
		CPUs:        ho.Top.NumCPUs(),
		TotalMB:     ho.Top.TotalMemoryMB(),
		GuestVCPUs:  ho.guestVCPUs(),
		VCPUCap:     int(overcommit * float64(ho.Top.NumCPUs())),
		VMs:         len(ho.VMs),
		LLCPressure: ho.llcPressure(),
		RemoteRatio: ho.remoteRatio(),
	}
	for n := 0; n < ho.Top.NumNodes(); n++ {
		free := ho.H.Alloc.FreeMB(numa.NodeID(n))
		v.FreePerNodeMB = append(v.FreePerNodeMB, free)
		v.FreeMB += free
	}
	return v
}
