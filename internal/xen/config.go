package xen

import "vprobe/internal/sim"

// Config holds the hypervisor's timing and cost constants. Sub-microsecond
// costs are expressed as float64 microseconds and charged in cycles.
type Config struct {
	// Timeslice is the Credit scheduler's scheduling quantum (30 ms).
	Timeslice sim.Duration
	// TickPeriod is the credit-debit tick (10 ms); PMU-based policies
	// also refresh counters on this tick (§IV-B: "every 10ms after this
	// VCPU burns its credits").
	TickPeriod sim.Duration
	// AccountPeriod is the credit replenishment period (30 ms).
	AccountPeriod sim.Duration
	// CreditsPerTick is debited from a running VCPU each tick (Xen: 100).
	CreditsPerTick int
	// CreditCap bounds a VCPU's credit balance.
	CreditCap int
	// ContextSwitchMicros is the base cost of switching VCPUs on a PCPU.
	ContextSwitchMicros float64
	// PMUUpdateMicros is the Perfctr-Xen counter save/restore/read cost,
	// charged per update by policies that use the PMU. Calibrated so
	// Table III's "overhead time" lands near the paper's ~0.01%.
	PMUUpdateMicros float64
	// PartitionFixedMicros and PartitionPerVCPUMicros are the periodical
	// partitioning pass costs (the other Table III source).
	PartitionFixedMicros   float64
	PartitionPerVCPUMicros float64
	// CacheHotMicros protects recently-run VCPUs from being stolen
	// (__csched_vcpu_is_cache_hot): a VCPU enqueued less than this long
	// ago is skipped by work stealing.
	CacheHotMicros float64
	// RepickProb is the per-accounting-period probability that a running
	// VCPU re-evaluates its placement (csched_vcpu_acct's migration is
	// sticky in practice; this rate-limits the mixing).
	RepickProb float64
	// QueuedLLCWeight is how much a queued (not currently running) VCPU
	// on a socket still competes for that socket's LLC. Cache residency
	// outlives a context switch, so time-shared VCPUs contend with
	// weight < 1 rather than 0 — this is what makes an unbalanced
	// distribution of cache-hungry VCPUs expensive.
	QueuedLLCWeight float64
	// FirstTouchLocality is the fraction of an app's pages that land on
	// the node where it predominantly runs during its first-touch window
	// (guest first-touch behaviour).
	FirstTouchLocality float64
	// FirstTouchDelay is how long after start an app keeps allocating:
	// until then its accesses follow the VM-wide layout, after which its
	// pages concentrate on the node where it ran most.
	FirstTouchDelay sim.Duration
	// GuestThreadMigrationMean is the mean interval between guest-OS
	// thread re-placements inside each VM (a busy thread parks on a
	// formerly idle VCPU). The hypervisor cannot see these events — it
	// only notices the per-VCPU characteristics change, which is why
	// periodic re-sampling matters. Zero disables.
	GuestThreadMigrationMean sim.Duration
	// BatchMigrationFraction is the fraction of guest re-placement
	// events that move a CPU-bound batch thread (the guest scheduler
	// mostly moves blocking server threads; batch threads move rarely).
	BatchMigrationFraction float64
	// PMUNoiseFactor is the relative standard deviation of a pressure
	// measurement over a 1e9-instruction window; shorter windows are
	// noisier (counter multiplexing, interrupt skew), scaling as
	// 1/sqrt(instructions). This is what makes very short sampling
	// periods produce unstable classifications.
	PMUNoiseFactor float64
	// Seed drives all stochastic choices (e.g. BRM's randomness).
	Seed uint64
}

// DefaultConfig returns the Xen 4.0.1 Credit constants plus calibrated
// overhead costs.
func DefaultConfig() Config {
	return Config{
		Timeslice:                30 * sim.Millisecond,
		TickPeriod:               10 * sim.Millisecond,
		AccountPeriod:            30 * sim.Millisecond,
		CreditsPerTick:           100,
		CreditCap:                300,
		ContextSwitchMicros:      3,
		PMUUpdateMicros:          0.85,
		PartitionFixedMicros:     20,
		PartitionPerVCPUMicros:   2,
		CacheHotMicros:           15000,
		RepickProb:               0.12,
		QueuedLLCWeight:          0.5,
		FirstTouchLocality:       0.85,
		FirstTouchDelay:          1500 * sim.Millisecond,
		GuestThreadMigrationMean: 6 * sim.Second,
		BatchMigrationFraction:   0.4,
		PMUNoiseFactor:           0.035,
		Seed:                     1,
	}
}
