// Package framework is a minimal, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer holds a name, a doc
// string, and a Run function; a Pass hands the Run function one typechecked
// package plus a Report callback for diagnostics.
//
// The build environment for this repository is a zero-dependency module (no
// network, no module proxy), so the real x/tools framework cannot be pulled
// in. The types here keep the same field names and shapes as x/tools so
// that, the day the dependency can be pinned, migrating an analyzer is a
// one-line import change. See DESIGN.md §8 "Determinism contract".
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static check. It mirrors analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -only filters.
	Name string
	// Doc is the one-paragraph help text (first line is the summary).
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) (any, error)
}

// Diagnostic is one finding, anchored at a token position. It mirrors
// analysis.Diagnostic (minus suggested fixes).
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one typechecked package through an Analyzer.Run call. It
// mirrors analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)

	// directives maps filename -> line -> directive names present on that
	// line, built lazily from the files' comments.
	directives map[string]map[int][]string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// DirectivePrefix introduces suppression comments: `//vet:<name>` on the
// flagged line, or alone on the line directly above it. Anything after the
// name (separated by a space) is free-form justification.
const DirectivePrefix = "vet:"

// Suppressed reports whether a `//vet:<name>` directive covers pos: on the
// same line as pos or on the line immediately above.
func (p *Pass) Suppressed(pos token.Pos, name string) bool {
	if p.directives == nil {
		p.directives = collectDirectives(p.Fset, p.Files)
	}
	position := p.Fset.Position(pos)
	lines := p.directives[position.Filename]
	for _, line := range []int{position.Line, position.Line - 1} {
		for _, d := range lines[line] {
			if d == name {
				return true
			}
		}
	}
	return false
}

// collectDirectives scans every comment of every file for //vet: markers,
// keyed by the line the comment starts on.
func collectDirectives(fset *token.FileSet, files []*ast.File) map[string]map[int][]string {
	out := make(map[string]map[int][]string)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if !strings.HasPrefix(text, DirectivePrefix) {
					continue
				}
				name := strings.TrimPrefix(text, DirectivePrefix)
				if i := strings.IndexAny(name, " \t—"); i >= 0 {
					name = name[:i]
				}
				if name == "" {
					continue
				}
				pos := fset.Position(c.Pos())
				if out[pos.Filename] == nil {
					out[pos.Filename] = make(map[int][]string)
				}
				out[pos.Filename][pos.Line] = append(out[pos.Filename][pos.Line], name)
			}
		}
	}
	return out
}

// RunAnalyzer applies a to pkg and returns the diagnostics sorted by
// position. Errors from the analyzer itself (not findings) are returned.
func RunAnalyzer(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Report:    func(d Diagnostic) { diags = append(diags, d) },
	}
	if _, err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
	}
	sortDiagnostics(pkg.Fset, diags)
	return diags, nil
}

// sortDiagnostics orders findings by file, then line, then column, then
// message, so vprobe-vet output is stable run to run (the linter holds
// itself to the determinism contract it enforces).
func sortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	key := func(d Diagnostic) string {
		p := fset.Position(d.Pos)
		return fmt.Sprintf("%s\x00%08d\x00%08d\x00%s", p.Filename, p.Line, p.Column, d.Message)
	}
	for i := 1; i < len(diags); i++ {
		for j := i; j > 0 && key(diags[j]) < key(diags[j-1]); j-- {
			diags[j], diags[j-1] = diags[j-1], diags[j]
		}
	}
}
