// Package deprecated fences off the root package's legacy surface: the
// string-typed Config.Trace hook and the string-dispatch VM.RunServer
// shim, both superseded by the spec layer (spec.AppV1 / vprobe.Compile*
// and the typed Events sink). The shims stay for source compatibility,
// but no in-repo caller may use them: this analyzer flags every use
// outside the compat wiring itself, which carries `//vet:deprecated`
// directives. Test files are never loaded, so the shims' own tests are
// exempt by construction.
package deprecated

import (
	"go/ast"
	"go/types"

	"vprobe/internal/analysis/framework"
)

// Analyzer is the deprecated-surface check.
var Analyzer = &framework.Analyzer{
	Name: "deprecated",
	Doc: "forbid in-repo use of the deprecated Config.Trace and VM.RunServer " +
		"shims (suppress with //vet:deprecated)",
	Run:        run,
	Directives: []string{"deprecated"},
}

// banned maps deprecated root-package symbols to their replacement hint.
// Funcs are matched by name; fields additionally require *types.Var
// field-hood — the names are unique within the vprobe package.
var banned = map[string]struct {
	field bool
	hint  string
}{
	"RunServer": {false, "declare the server as spec.AppV1{Server: kind, Load: n} and compile the scenario"},
	"Trace":     {true, "set Config.Events (vprobe.TraceAdapter bridges old string sinks)"},
}

func run(pass *framework.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			b, ok := banned[id.Name]
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "vprobe" {
				return true
			}
			switch o := obj.(type) {
			case *types.Func:
				if b.field {
					return true
				}
			case *types.Var:
				if !b.field || !o.IsField() {
					return true
				}
			default:
				return true
			}
			if !pass.Suppressed(id.Pos(), "deprecated") {
				pass.Reportf(id.Pos(),
					"vprobe.%s is deprecated; %s, or //vet:deprecated for the compat shims", id.Name, b.hint)
			}
			return true
		})
	}
	return nil, nil
}
