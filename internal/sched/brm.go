package sched

import (
	"vprobe/internal/core"
	"vprobe/internal/numa"
	"vprobe/internal/sim"
	"vprobe/internal/telemetry"
	"vprobe/internal/xen"
)

// BRM models the Bias Random vCPU Migration scheduler of Rao et al.
// (HPCA'13), the paper's external comparator. BRM estimates each VCPU's
// "uncore penalty" — a single scalar folding together remote-access and
// shared-resource cost — and steals with a probability bias toward moves
// that reduce the system-wide penalty.
//
// Its documented weakness (paper §V-B5) is a system-wide lock serialising
// every penalty update; past ~8 active VCPUs the convoy cost overwhelms
// the placement gains. Cacheline bouncing and IPI-driven wakeup storms
// grow superlinearly with contenders, so the model charges
// LockMicros * max(0, active-8)^2 per update — a phenomenological fit to
// the paper's observation that BRM ≈ Credit at 24 VCPUs despite lower
// memory traffic (see DESIGN.md).
type BRM struct {
	// Analyzer supplies pressures/affinities for the penalty estimate.
	Analyzer *core.Analyzer
	// SamplePeriod refreshes penalties (1 s, matching vProbe's cadence).
	SamplePeriod sim.Duration
	// LockMicros scales the global-lock convoy cost.
	LockMicros float64
	// LockFreeVCPUs is the contention-free VCPU budget (the paper puts
	// the knee at 8).
	LockFreeVCPUs int
	// Epsilon is the fully-random exploration probability of the biased
	// migration.
	Epsilon float64

	// cands/weights are PickNext's reusable candidate buffers (one steal
	// attempt per idle PCPU per quantum; a scheduler instance serves one
	// hypervisor, so one set suffices).
	cands   []brmCand
	weights []float64

	// Pre-bound telemetry handles for the global-lock model (nil until
	// AttachTelemetry): update count, accumulated convoy wait, and the
	// contender census the quadratic cost is computed from.
	lockUpdates    *telemetry.Counter
	lockWaitUS     *telemetry.Counter
	lockContenders *telemetry.Gauge
}

// brmCand pairs a stealable VCPU with the queue holding it.
type brmCand struct {
	v *xen.VCPU
	q *xen.PCPU
}

// NewBRM returns the comparator with its calibrated constants.
func NewBRM() *BRM {
	return &BRM{
		Analyzer:      core.NewAnalyzer(),
		SamplePeriod:  sim.Second,
		LockMicros:    8,
		LockFreeVCPUs: 8,
		Epsilon:       0.1,
	}
}

// Name implements xen.Policy.
func (*BRM) Name() string { return "BRM" }

// UsesPMU implements xen.Policy.
func (*BRM) UsesPMU() bool { return true }

// NUMAAwareBalance implements xen.Policy: BRM biases steals but keeps the
// default machine-wide placement re-pick.
func (*BRM) NUMAAwareBalance() bool { return false }

// AttachTelemetry implements xen.PolicyTelemetry: BRM's documented
// weakness is only diagnosable as a time series, so the lock model
// exports its update count, accumulated convoy wait, and contender
// census.
func (s *BRM) AttachTelemetry(reg *telemetry.Registry, labels ...telemetry.Label) {
	s.lockUpdates = reg.Counter("sched_brm_lock_updates_total",
		"Penalty updates taken under BRM's system-wide lock.", labels...)
	s.lockWaitUS = reg.Counter("sched_brm_lock_wait_us_total",
		"Accumulated convoy wait charged by the lock-contention model.", labels...)
	s.lockContenders = reg.Gauge("sched_brm_lock_contenders",
		"Active VCPUs contending for the penalty lock at the last update.", labels...)
}

// lockCost returns the convoy cost in microseconds of one penalty update.
// Contention scales with the number of VCPUs whose penalties the update
// walks (the paper's observation: fine above 8 VCPUs, pathological at 24).
func (s *BRM) lockCost(h *xen.Hypervisor) float64 {
	vcpus := 0
	for _, v := range h.AllVCPUs() {
		if v.App != nil && !v.Done {
			vcpus++
		}
	}
	if s.lockContenders != nil {
		s.lockContenders.Set(float64(vcpus))
	}
	excess := vcpus - s.LockFreeVCPUs
	if excess <= 0 {
		return 0
	}
	cost := s.LockMicros * float64(excess) * float64(excess)
	if s.lockWaitUS != nil {
		s.lockWaitUS.Add(cost)
	}
	return cost
}

// OnTick implements xen.Policy: each running VCPU's uncore penalty is
// refreshed under the global lock.
func (s *BRM) OnTick(h *xen.Hypervisor, v *xen.VCPU) {
	cpm := h.Top.CyclesPerMicrosecond()
	cost := h.Config.PMUUpdateMicros + s.lockCost(h)
	if s.lockUpdates != nil {
		s.lockUpdates.Inc()
	}
	v.AddOverhead(cost*cpm, cpm)
	h.SampleOverhead += sim.Duration(h.Config.PMUUpdateMicros)
}

// PickNext implements xen.Policy: own queue first, then biased-random
// stealing — candidates whose memory is local to p look exponentially more
// attractive; with probability Epsilon the choice is uniform.
func (s *BRM) PickNext(h *xen.Hypervisor, p *xen.PCPU) *xen.VCPU {
	if p.HeadIsRunnableUnder() {
		return h.NextLocal(p)
	}
	idle := p.PeekHead() == nil
	cands := s.cands[:0]
	for _, q := range h.PCPUs {
		if q == p {
			continue
		}
		queue := q.Queue()
		for qi := 0; qi < len(queue); qi++ {
			v := queue[qi]
			if !v.CanSteal() {
				continue
			}
			if !idle && v.Priority != xen.PrioUnder {
				continue
			}
			cands = append(cands, brmCand{v, q}) //vet:alloc s.cands is reused; grows to population size during warmup
		}
	}
	s.cands = cands
	if len(cands) == 0 {
		return h.NextLocal(p)
	}
	var idx int
	if h.RNG.Float64() < s.Epsilon {
		idx = h.RNG.Intn(len(cands))
	} else {
		weights := s.weights[:0]
		for _, c := range cands {
			weights = append(weights, 1/(0.05+s.penaltyOn(h, c.v, p.Node))) //vet:alloc s.weights is reused; grows to candidate count during warmup
		}
		s.weights = weights
		idx = h.RNG.Pick(weights)
	}
	c := cands[idx]
	if !c.q.Remove(c.v) {
		return nil
	}
	if h.Tele != nil {
		h.Tele.NoteSteal(c.q.Node == p.Node)
	}
	return c.v
}

// penaltyOn estimates the uncore penalty of running v on node: the remote
// fraction of its pages weighted by its measured pressure. All
// performance-degrading factors are folded into one number — the paper's
// §I criticism of BRM.
func (s *BRM) penaltyOn(h *xen.Hypervisor, v *xen.VCPU, node numa.NodeID) float64 {
	remote := v.PageDist.RemoteFraction(node)
	return remote * (1 + v.LLCPressure/10)
}

// Period implements xen.Policy.
func (s *BRM) Period() sim.Duration { return s.SamplePeriod }

// OnPeriod implements xen.Policy: refresh the per-VCPU characteristics the
// penalty estimate reads (under the lock).
func (s *BRM) OnPeriod(h *xen.Hypervisor) {
	h.SampleAll(s.Analyzer)
	cpm := h.Top.CyclesPerMicrosecond()
	if cost := s.lockCost(h); cost > 0 && len(h.PCPUs) > 0 && h.PCPUs[0].Current != nil {
		h.PCPUs[0].Current.AddOverhead(cost*cpm, cpm)
	}
}
