// Package specfield machine-checks the spec surface contract (DESIGN.md
// §8, §13): the versioned wire structs in internal/spec are the public
// API, and every exported field they declare must be a real, finished
// part of it. Concretely, each exported field of an exported struct in
// internal/spec must:
//
//  1. carry a json tag — the wire name is chosen deliberately, never
//     defaulted to the Go identifier;
//  2. be consumed outside the spec package — the compile layer (or
//     another consumer) must read it, otherwise the field is dead wire
//     surface that deserializes into nothing;
//  3. participate in validation or defaulting — its json name appears in
//     a spec-package string literal (the validation field-path messages),
//     or the field is read in its declaring package's Validate or
//     Normalize pass, or it is a bool (every bool value is valid).
//
// A field that legitimately needs no validation (a seed: every int64 is
// valid) is waived with `//vet:spec <reason>` on the field.
package specfield

import (
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"strings"

	"vprobe/internal/analysis/framework"
)

// Analyzer is the spec-field contract check.
var Analyzer = &framework.ModuleAnalyzer{
	Name: "specfield",
	Doc: "require every exported internal/spec field to carry a json tag, " +
		"be consumed by the compile layer, and be validated or defaulted " +
		"(suppress with //vet:spec <reason>)",
	Run:        run,
	Directives: []string{"spec"},
}

func run(pass *framework.ModulePass) (any, error) {
	spec := pass.FindPackage("internal/spec")
	if spec == nil {
		return nil, nil // module without a spec layer: nothing to check
	}

	// Every string literal in the spec package: the validation messages
	// carry json field paths ("vms[0].vcpus"), so a field's json name
	// appearing here is evidence the validator talks about it.
	literals := collectStrings(spec)

	// Objects read inside spec's own Validate/Normalize declarations.
	validated := usesInside(spec, map[string]bool{"Validate": true, "Normalize": true})

	// Objects read by any other loaded package (the compile layer).
	consumed := map[types.Object]bool{}
	for _, pkg := range pass.Pkgs {
		if pkg == spec {
			continue
		}
		for _, obj := range pkg.Info.Uses {
			if v, ok := obj.(*types.Var); ok && v.IsField() {
				consumed[obj] = true
			}
		}
	}

	for _, f := range spec.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok || !ts.Name.IsExported() {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				checkField(pass, spec, ts.Name.Name, field, literals, validated, consumed)
			}
			return false
		})
	}
	return nil, nil
}

func checkField(pass *framework.ModulePass, spec *framework.Package, structName string,
	field *ast.Field, literals []string, validated, consumed map[types.Object]bool) {
	for _, name := range field.Names {
		if !name.IsExported() {
			continue
		}
		obj := spec.Info.Defs[name]
		if obj == nil {
			continue
		}
		report := func(format string, args ...any) {
			if pass.Suppressed(name.Pos(), "spec") {
				return
			}
			pass.Reportf(name.Pos(), format, args...)
		}

		jsonName := jsonTagName(field)
		if jsonName == "" {
			report("spec field %s.%s has no json tag: wire names are part of the "+
				"versioned API and must be explicit", structName, name.Name)
			continue
		}
		if !consumed[obj] {
			report("spec field %s.%s (json %q) is never read outside internal/spec: "+
				"the compile layer must consume every wire field", structName, name.Name, jsonName)
		}
		if validated[obj] || isBool(obj) {
			continue
		}
		if !mentioned(literals, jsonName) {
			report("spec field %s.%s (json %q) is neither validated nor defaulted: "+
				"reference it in Validate/Normalize or waive with //vet:spec <reason>",
				structName, name.Name, jsonName)
		}
	}
}

// jsonTagName extracts the json wire name from a struct field tag,
// ignoring options after the comma. Returns "" for missing tags and "-".
func jsonTagName(field *ast.Field) string {
	if field.Tag == nil {
		return ""
	}
	tag := strings.Trim(field.Tag.Value, "`")
	name := reflect.StructTag(tag).Get("json")
	if i := strings.IndexByte(name, ','); i >= 0 {
		name = name[:i]
	}
	if name == "-" {
		return ""
	}
	return name
}

// collectStrings gathers the value of every string literal in the package
// except struct field tags — a field's own `json:"name"` tag must not
// count as the validator mentioning it.
func collectStrings(pkg *framework.Package) []string {
	var out []string
	for _, f := range pkg.Files {
		tags := map[*ast.BasicLit]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			if field, ok := n.(*ast.Field); ok && field.Tag != nil {
				tags[field.Tag] = true
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.BasicLit); ok && lit.Kind == token.STRING && !tags[lit] {
				out = append(out, strings.Trim(lit.Value, "`\""))
			}
			return true
		})
	}
	return out
}

// mentioned reports whether any collected literal contains name as a
// whole json path segment (bounded by non-identifier characters), so
// "vcpus" matches "vms[0].vcpus" but not "maxvcpus".
func mentioned(literals []string, name string) bool {
	for _, lit := range literals {
		for i := 0; ; {
			j := strings.Index(lit[i:], name)
			if j < 0 {
				break
			}
			start := i + j
			end := start + len(name)
			leftOK := start == 0 || !isWordByte(lit[start-1])
			rightOK := end == len(lit) || !isWordByte(lit[end])
			if leftOK && rightOK {
				return true
			}
			i = start + 1
		}
	}
	return false
}

func isWordByte(b byte) bool {
	return b == '_' || ('a' <= b && b <= 'z') || ('A' <= b && b <= 'Z') || ('0' <= b && b <= '9')
}

// usesInside returns the objects referenced within the package's
// top-level declarations whose names are in fns.
func usesInside(pkg *framework.Package, fns map[string]bool) map[types.Object]bool {
	out := map[types.Object]bool{}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fns[fd.Name.Name] {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					if obj := pkg.Info.Uses[id]; obj != nil {
						out[obj] = true
					}
				}
				return true
			})
		}
	}
	return out
}

func isBool(obj types.Object) bool {
	b, ok := obj.Type().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Bool
}
