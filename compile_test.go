package vprobe_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"vprobe"
	"vprobe/internal/spec"
)

// runScenarioSpec pushes a scenario through the full wire path — JSON
// encode, decode, CompileScenario — runs it, and returns the report text
// plus the event stream rendered one line per event.
func runScenarioSpec(t *testing.T, s spec.ScenarioV1) (string, []string) {
	t.Helper()
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var decoded spec.ScenarioV1
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	var events []string
	sim, horizon, err := vprobe.CompileScenario(decoded, vprobe.CompileOptions{
		Events: vprobe.EventFunc(func(ev vprobe.Event) {
			events = append(events, fmt.Sprintf("%v %s %s", ev.At, ev.Kind, ev.Detail))
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sim.RunContext(context.Background(), horizon)
	if err != nil {
		t.Fatal(err)
	}
	return rep.String(), events
}

// runScenarioDirect hand-builds the equivalent Config/VMConfig calls.
func runScenarioDirect(t *testing.T, s spec.ScenarioV1) (string, []string) {
	t.Helper()
	n := s.Normalize()
	var events []string
	sim, err := vprobe.NewSimulator(vprobe.Config{
		Scheduler:     vprobe.Scheduler(n.Scheduler),
		Topology:      vprobe.Topology(n.Topology),
		Seed:          n.Seed,
		SamplePeriod:  n.SamplePeriod.Std(),
		DynamicBounds: n.DynamicBounds,
		PageMigration: n.PageMigration,
		Events: vprobe.EventFunc(func(ev vprobe.Event) {
			events = append(events, fmt.Sprintf("%v %s %s", ev.At, ev.Kind, ev.Detail))
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range n.VMs {
		mp := vprobe.MemFill
		if v.Memory == "stripe" {
			mp = vprobe.MemStripe
		}
		vm, err := sim.AddVM(vprobe.VMConfig{
			Name: v.Name, MemoryMB: v.MemoryMB, VCPUs: v.VCPUs,
			Memory: mp, FillGuestIdle: v.FillGuestIdle,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, app := range v.Apps {
			switch {
			case app.Name != "":
				err = vm.RunApp(app.Name)
			case app.Server == "memcached":
				err = vm.RunMemcached(app.Load)
			case app.Server == "redis":
				err = vm.RunRedis(app.Load)
			}
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	rep, err := sim.RunContext(context.Background(), n.Horizon.Std())
	if err != nil {
		t.Fatal(err)
	}
	return rep.String(), events
}

// compareRuns fails unless both paths produced byte-identical output.
func compareRuns(t *testing.T, s spec.ScenarioV1) {
	t.Helper()
	specRep, specEvents := runScenarioSpec(t, s)
	directRep, directEvents := runScenarioDirect(t, s)
	if specRep != directRep {
		t.Errorf("report diverges:\n--- spec ---\n%s--- direct ---\n%s", specRep, directRep)
	}
	if len(specEvents) != len(directEvents) {
		t.Fatalf("event counts diverge: %d vs %d", len(specEvents), len(directEvents))
	}
	for i := range specEvents {
		if specEvents[i] != directEvents[i] {
			t.Fatalf("event %d diverges:\n  spec:   %s\n  direct: %s",
				i, specEvents[i], directEvents[i])
		}
	}
}

// TestScenarioRoundTripGrid pins byte-identical spec-vs-direct runs for
// every preset topology crossed with every scheduler.
func TestScenarioRoundTripGrid(t *testing.T) {
	for _, topo := range spec.Topologies() {
		for _, sch := range spec.Schedulers() {
			t.Run(topo+"/"+sch, func(t *testing.T) {
				compareRuns(t, spec.ScenarioV1{
					Topology:  topo,
					Scheduler: sch,
					Seed:      11,
					Horizon:   spec.Duration(400 * time.Millisecond),
					VMs: []spec.VMV1{
						{Name: "vm1", MemoryMB: 4096, VCPUs: 2, Memory: "stripe",
							Apps: []spec.AppV1{{Name: "soplex"}, {Name: "hungry"}}},
						{Name: "vm2", MemoryMB: 2048, VCPUs: 1, FillGuestIdle: true,
							Apps: []spec.AppV1{{Name: "libquantum"}}},
					},
				})
			})
		}
	}
}

// TestScenarioRoundTripWorkloads covers every catalog workload plus both
// typed server forms at a fixed topology and scheduler.
func TestScenarioRoundTripWorkloads(t *testing.T) {
	for _, app := range spec.Apps() {
		t.Run(app, func(t *testing.T) {
			compareRuns(t, spec.ScenarioV1{
				Scheduler: "vprobe",
				Seed:      5,
				Horizon:   spec.Duration(300 * time.Millisecond),
				VMs: []spec.VMV1{{Name: "vm", MemoryMB: 4096, VCPUs: 2,
					Apps: []spec.AppV1{{Name: app}}}},
			})
		})
	}
	for _, srv := range []spec.AppV1{{Server: "memcached", Load: 64}, {Server: "redis", Load: 4000}} {
		t.Run(srv.Server, func(t *testing.T) {
			compareRuns(t, spec.ScenarioV1{
				Seed:    5,
				Horizon: spec.Duration(300 * time.Millisecond),
				VMs: []spec.VMV1{{Name: "srv", MemoryMB: 8192, VCPUs: 2,
					FillGuestIdle: true, Apps: []spec.AppV1{srv}}}})
		})
	}
}

// TestClusterRoundTripPolicies pins byte-identical spec-vs-direct cluster
// runs for every placement policy, with the spec path exercised at worker
// counts 1, 4, and 8 against one direct baseline.
func TestClusterRoundTripPolicies(t *testing.T) {
	for _, policy := range spec.Policies() {
		policy := policy
		t.Run(policy, func(t *testing.T) {
			base := spec.ClusterV1{
				Hosts:   2,
				Policy:  policy,
				Seed:    9,
				Horizon: spec.Duration(45 * time.Second),
			}
			n := base.Normalize()
			direct, err := vprobe.RunCluster(context.Background(), vprobe.ClusterConfig{
				Hosts:             n.Hosts,
				Topology:          vprobe.Topology(n.Topology),
				Scheduler:         vprobe.Scheduler(n.Scheduler),
				Policy:            vprobe.Policy(n.Policy),
				Seed:              n.Seed,
				ArrivalsPerSecond: n.ArrivalsPerSecond,
				MeanLifetime:      n.MeanLifetime.Std(),
				Horizon:           n.Horizon.Std(),
				Mix:               n.Mix,
				RebalancePeriod:   n.RebalancePeriod.Std(),
				Workers:           1,
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 4, 8} {
				s := base
				s.Workers = workers
				data, err := json.Marshal(s)
				if err != nil {
					t.Fatal(err)
				}
				var decoded spec.ClusterV1
				if err := json.Unmarshal(data, &decoded); err != nil {
					t.Fatal(err)
				}
				cfg, err := vprobe.CompileCluster(decoded, vprobe.CompileOptions{})
				if err != nil {
					t.Fatal(err)
				}
				rep, err := vprobe.RunCluster(context.Background(), cfg)
				if err != nil {
					t.Fatal(err)
				}
				if rep.String() != direct.String() {
					t.Errorf("workers=%d diverges from direct baseline:\n--- spec ---\n%s--- direct ---\n%s",
						workers, rep.String(), direct.String())
				}
			}
		})
	}
}

// TestClusterRoundTripMixes covers the remaining cluster axis: each
// workload mix compiles and matches its direct equivalent.
func TestClusterRoundTripMixes(t *testing.T) {
	for _, mix := range spec.Mixes() {
		mix := mix
		t.Run(mix, func(t *testing.T) {
			s := spec.ClusterV1{Hosts: 2, Mix: mix, Seed: 3,
				Horizon: spec.Duration(30 * time.Second)}
			cfg, err := vprobe.CompileCluster(s, vprobe.CompileOptions{})
			if err != nil {
				t.Fatal(err)
			}
			specRep, err := vprobe.RunCluster(context.Background(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			n := s.Normalize()
			directRep, err := vprobe.RunCluster(context.Background(), vprobe.ClusterConfig{
				Hosts: n.Hosts, Topology: vprobe.Topology(n.Topology),
				Scheduler: vprobe.Scheduler(n.Scheduler), Policy: vprobe.Policy(n.Policy),
				Seed: n.Seed, ArrivalsPerSecond: n.ArrivalsPerSecond,
				MeanLifetime: n.MeanLifetime.Std(), Horizon: n.Horizon.Std(),
				Mix: n.Mix, RebalancePeriod: n.RebalancePeriod.Std(),
			})
			if err != nil {
				t.Fatal(err)
			}
			if specRep.String() != directRep.String() {
				t.Errorf("mix %q diverges:\n--- spec ---\n%s--- direct ---\n%s",
					mix, specRep.String(), directRep.String())
			}
		})
	}
}

// TestClusterRoundTripControlPlane pins the control-plane fields through
// the spec path: a spec with every mechanism on runs byte-identical to the
// hand-built ClusterConfig, and the new report fields come through.
func TestClusterRoundTripControlPlane(t *testing.T) {
	s := spec.ClusterV1{
		Hosts:             2,
		Seed:              5,
		ArrivalsPerSecond: 0.8,
		MeanLifetime:      spec.Duration(150 * time.Second),
		Horizon:           spec.Duration(90 * time.Second),
		Preempt:           true,
		Gang:              true,
		GangFraction:      0.2,
		Backfill:          true,
		DeschedulePeriod:  spec.Duration(15 * time.Second),
	}
	cfg, err := vprobe.CompileCluster(s, vprobe.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	specRep, err := vprobe.RunCluster(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := s.Normalize()
	directRep, err := vprobe.RunCluster(context.Background(), vprobe.ClusterConfig{
		Hosts: n.Hosts, Topology: vprobe.Topology(n.Topology),
		Scheduler: vprobe.Scheduler(n.Scheduler), Policy: vprobe.Policy(n.Policy),
		Seed: n.Seed, ArrivalsPerSecond: n.ArrivalsPerSecond,
		MeanLifetime: n.MeanLifetime.Std(), Horizon: n.Horizon.Std(),
		Mix: n.Mix, RebalancePeriod: n.RebalancePeriod.Std(),
		Preempt: n.Preempt, Gang: n.Gang, GangFraction: n.GangFraction,
		GangSize: n.GangSize, Backfill: n.Backfill,
		DeschedulePeriod: n.DeschedulePeriod.Std(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if specRep.String() != directRep.String() {
		t.Errorf("control-plane spec diverges:\n--- spec ---\n%s--- direct ---\n%s",
			specRep.String(), directRep.String())
	}
	if len(specRep.PerPriority) != 3 {
		t.Fatalf("PerPriority has %d classes, want 3", len(specRep.PerPriority))
	}
	if specRep.Preemptions != directRep.Preemptions ||
		specRep.GangsAdmitted != directRep.GangsAdmitted ||
		specRep.Backfills != directRep.Backfills ||
		specRep.DeschedMoves != directRep.DeschedMoves {
		t.Error("control-plane counters diverge between spec and direct runs")
	}
}

// TestCompileValidationSentinels asserts compile failures surface the
// public sentinels for errors.Is.
func TestCompileValidationSentinels(t *testing.T) {
	vm := spec.VMV1{Name: "vm", MemoryMB: 1024, VCPUs: 1}
	if _, _, err := vprobe.CompileScenario(spec.ScenarioV1{Version: "v2",
		VMs: []spec.VMV1{vm}}, vprobe.CompileOptions{}); !errors.Is(err, vprobe.ErrSpecVersion) {
		t.Errorf("version error = %v, want ErrSpecVersion", err)
	}
	if _, _, err := vprobe.CompileScenario(spec.ScenarioV1{Topology: "toaster",
		VMs: []spec.VMV1{vm}}, vprobe.CompileOptions{}); !errors.Is(err, vprobe.ErrInvalidSpec) {
		t.Errorf("topology error = %v, want ErrInvalidSpec", err)
	}
	if _, err := vprobe.CompileCluster(spec.ClusterV1{Policy: "chaos"},
		vprobe.CompileOptions{}); !errors.Is(err, vprobe.ErrInvalidSpec) {
		t.Errorf("policy error = %v, want ErrInvalidSpec", err)
	}
	if !strings.Contains(fmt.Sprint(vprobe.ErrInvalidSpec), "spec:") {
		t.Error("ErrInvalidSpec should render with its spec: prefix")
	}
}

// TestSimulatorSingleUse is the ErrAlreadyRun regression test: a second
// Run on the same Simulator — completed or cancelled — must fail with the
// sentinel instead of silently continuing from consumed state.
func TestSimulatorSingleUse(t *testing.T) {
	build := func() *vprobe.Simulator {
		t.Helper()
		sim, err := vprobe.NewSimulator(vprobe.Config{Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		vm, err := sim.AddVM(vprobe.VMConfig{Name: "vm", MemoryMB: 1024, VCPUs: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := vm.RunApp("hungry"); err != nil {
			t.Fatal(err)
		}
		return sim
	}

	sim := build()
	if _, err := sim.Run(50 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(50 * time.Millisecond); !errors.Is(err, vprobe.ErrAlreadyRun) {
		t.Fatalf("second Run = %v, want ErrAlreadyRun", err)
	}

	// A cancelled run also consumes the value.
	sim = build()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sim.RunContext(ctx, time.Hour); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run = %v, want context.Canceled", err)
	}
	if _, err := sim.Run(50 * time.Millisecond); !errors.Is(err, vprobe.ErrAlreadyRun) {
		t.Fatalf("Run after cancelled run = %v, want ErrAlreadyRun", err)
	}

	// A pre-start validation failure does not consume the value.
	sim = build()
	if _, err := sim.Run(-time.Second); err == nil {
		t.Fatal("negative horizon accepted")
	}
	if _, err := sim.Run(50 * time.Millisecond); err != nil {
		t.Fatalf("Run after rejected horizon = %v, want success", err)
	}
}
