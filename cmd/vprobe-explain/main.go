// Command vprobe-explain answers placement provenance questions over a
// recorded span file (as written by vprobe-cluster -spans, vprobe-trace
// -spans, or the /v1/runs/{id}/spans endpoint of vprobe-serve): why a VM
// landed on its host, why another host was not chosen, why a VM was
// rejected, and who preempted it — each backed by the per-plugin
// filter/score breakdown the placement engine actually recorded at
// decision time.
//
// Usage:
//
//	vprobe-explain -spans file.jsonl list
//	vprobe-explain -spans file.jsonl summary
//	vprobe-explain -spans file.jsonl why <vm>
//	vprobe-explain -spans file.jsonl why-not <vm> <host>
//	vprobe-explain -spans file.jsonl rejected <vm>
//	vprobe-explain -spans file.jsonl preempted <vm>
//	vprobe-explain -spans file.jsonl timeline <vm>
//	vprobe-explain -validate-chrome file.json
//
// -validate-chrome checks a Chrome trace-event export (vprobe-cluster
// -chrome) for structural validity — the span twin of the Prometheus
// exposition validator — and prints the event count.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"vprobe/internal/telemetry"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  %[1]s -spans file.jsonl list                 recorded VMs, one per line
  %[1]s -spans file.jsonl summary              span counts by kind
  %[1]s -spans file.jsonl why <vm>             why did <vm> land on its host
  %[1]s -spans file.jsonl why-not <vm> <host>  why was <host> not chosen
  %[1]s -spans file.jsonl rejected <vm>        why was <vm> rejected
  %[1]s -spans file.jsonl preempted <vm>       who preempted <vm>, at what cost
  %[1]s -spans file.jsonl timeline <vm>        <vm>'s full span timeline
  %[1]s -validate-chrome file.json             validate a Chrome trace export
`, os.Args[0])
	os.Exit(2)
}

func main() {
	spansPath := flag.String("spans", "", "span JSONL file to query (vprobe-cluster -spans output)")
	validateChrome := flag.String("validate-chrome", "", "validate this Chrome trace-event JSON file and exit")
	flag.Usage = usage
	flag.Parse()

	if *validateChrome != "" {
		data, err := os.ReadFile(*validateChrome)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		n, err := telemetry.ValidateChromeTrace(data)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("valid Chrome trace: %d events\n", n)
		return
	}
	if *spansPath == "" || flag.NArg() == 0 {
		usage()
	}
	f, err := os.Open(*spansPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	out, err := query(f, flag.Args())
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Print(out)
}

// query loads the span stream and answers one subcommand — separated from
// main so tests can drive the CLI end to end.
func query(r io.Reader, args []string) (string, error) {
	spans, err := telemetry.ReadSpans(r)
	if err != nil {
		return "", err
	}
	ix := telemetry.NewSpanIndex(spans)
	cmd := args[0]
	need := func(n int, form string) error {
		if len(args) != n {
			return fmt.Errorf("vprobe-explain: %s needs %q", cmd, form)
		}
		return nil
	}
	switch cmd {
	case "list":
		if err := need(1, "list"); err != nil {
			return "", err
		}
		out := ""
		for _, vm := range ix.VMs() {
			out += vm + "\n"
		}
		return out, nil
	case "summary":
		if err := need(1, "summary"); err != nil {
			return "", err
		}
		return ix.Summary(), nil
	case "why":
		if err := need(2, "why <vm>"); err != nil {
			return "", err
		}
		return ix.ExplainWhy(args[1])
	case "why-not":
		if err := need(3, "why-not <vm> <host>"); err != nil {
			return "", err
		}
		return ix.ExplainWhyNot(args[1], args[2])
	case "rejected":
		if err := need(2, "rejected <vm>"); err != nil {
			return "", err
		}
		return ix.ExplainRejected(args[1])
	case "preempted":
		if err := need(2, "preempted <vm>"); err != nil {
			return "", err
		}
		return ix.ExplainPreempted(args[1])
	case "timeline":
		if err := need(2, "timeline <vm>"); err != nil {
			return "", err
		}
		return ix.ExplainVM(args[1])
	default:
		return "", fmt.Errorf("vprobe-explain: unknown subcommand %q (have list, summary, why, why-not, rejected, preempted, timeline)", cmd)
	}
}
