package experiments

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"vprobe/internal/harness"
	"vprobe/internal/sched"
)

// suiteOpts is a cheap but non-trivial configuration: small scale, one
// seed, two schedulers.
func suiteOpts() Options {
	return Options{
		Scale:      0.06,
		Repeats:    1,
		Seed:       7,
		Schedulers: []sched.Kind{sched.KindCredit, sched.KindVProbe},
	}
}

// suiteFingerprint renders every result to its full textual and CSV form,
// so any divergence — values, ordering, formatting — shows up.
func suiteFingerprint(t *testing.T, items []SuiteItem) string {
	t.Helper()
	var b strings.Builder
	for _, item := range items {
		if item.Err != nil {
			t.Fatalf("%s: %v", item.Experiment.ID, item.Err)
		}
		b.WriteString(item.Result.String())
		if err := item.Result.WriteCSV(&b); err != nil {
			t.Fatal(err)
		}
	}
	return b.String()
}

// TestSuiteDeterministicAcrossWorkers asserts the tentpole guarantee: the
// same root seed produces byte-identical output at 1, 4, and GOMAXPROCS
// workers.
func TestSuiteDeterministicAcrossWorkers(t *testing.T) {
	ids := []string{"fig3", "table3"}
	counts := []int{1, 4, 0} // 0 = GOMAXPROCS
	var want string
	for i, w := range counts {
		opts := suiteOpts()
		opts.Workers = w
		items, err := RunSuite(context.Background(), ids, opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		got := suiteFingerprint(t, items)
		if i == 0 {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("workers=%d output differs from workers=%d", w, counts[0])
		}
	}
}

// TestSuiteOrderAndEvents asserts items come back in request order and the
// progress stream brackets the run.
func TestSuiteOrderAndEvents(t *testing.T) {
	var mu atomic.Int64
	kinds := make(chan harness.EventKind, 256)
	opts := suiteOpts()
	opts.Workers = 2
	opts.Events = harness.SinkFunc(func(ev harness.Event) {
		mu.Add(1)
		select {
		case kinds <- ev.Kind:
		default:
		}
	})
	ids := []string{"table3", "fig3"} // deliberately not sorted
	items, err := RunSuite(context.Background(), ids, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 2 || items[0].Experiment.ID != "table3" || items[1].Experiment.ID != "fig3" {
		t.Fatalf("items out of request order: %v, %v",
			items[0].Experiment.ID, items[1].Experiment.ID)
	}
	for _, item := range items {
		if item.Err != nil {
			t.Fatalf("%s: %v", item.Experiment.ID, item.Err)
		}
		if item.Result == nil || item.Result.ID != item.Experiment.ID {
			t.Fatalf("%s: bad result %+v", item.Experiment.ID, item.Result)
		}
		if item.Wall <= 0 {
			t.Errorf("%s: no wall time recorded", item.Experiment.ID)
		}
		if item.SimTime <= 0 {
			t.Errorf("%s: no simulated time accumulated", item.Experiment.ID)
		}
	}
	close(kinds)
	seen := map[harness.EventKind]int{}
	for k := range kinds {
		seen[k]++
	}
	if seen[harness.EventSuiteStarted] != 1 || seen[harness.EventSuiteFinished] != 1 {
		t.Errorf("suite events wrong: %v", seen)
	}
	if seen[harness.EventExperimentStarted] != 2 || seen[harness.EventExperimentFinished] != 2 {
		t.Errorf("experiment events wrong: %v", seen)
	}
	if seen[harness.EventScenarioFinished] == 0 {
		t.Error("no scenario events emitted")
	}
}

func TestSuiteUnknownID(t *testing.T) {
	if _, err := RunSuite(context.Background(), []string{"fig99"}, suiteOpts()); err == nil {
		t.Fatal("unknown id accepted")
	}
}

// TestSuiteCancellation cancels mid-run and asserts a prompt return, per-
// item context errors for whatever did not finish, and no leaked worker
// goroutines.
func TestSuiteCancellation(t *testing.T) {
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	opts := suiteOpts()
	opts.Workers = 2
	// Cancel as soon as the first simulation inside any experiment reports
	// completion, so cancellation lands while work is genuinely in flight.
	var once atomic.Bool
	opts.Events = harness.SinkFunc(func(ev harness.Event) {
		if ev.Kind == harness.EventScenarioFinished && once.CompareAndSwap(false, true) {
			cancel()
		}
	})
	defer cancel()

	start := time.Now()
	items, err := RunSuite(ctx, []string{"fig3", "table3", "fig1"}, opts)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > 30*time.Second {
		t.Fatalf("cancellation took %v — not prompt", elapsed)
	}
	if len(items) != 3 {
		t.Fatalf("got %d items, want 3", len(items))
	}
	for _, item := range items {
		if item.Experiment == nil {
			t.Fatal("item missing its experiment")
		}
		if item.Result == nil && item.Err == nil {
			t.Errorf("%s: neither result nor error after cancellation",
				item.Experiment.ID)
		}
		if item.Err != nil && !errors.Is(item.Err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", item.Experiment.ID, item.Err)
		}
	}

	// Workers must have exited: poll because goroutine teardown is async.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

// TestSuiteTimeout asserts opts.Timeout caps one experiment without
// failing its siblings.
func TestSuiteTimeout(t *testing.T) {
	opts := suiteOpts()
	opts.Workers = 1
	opts.Timeout = time.Nanosecond // everything times out instantly
	items, err := RunSuite(context.Background(), []string{"fig3"}, opts)
	if err != nil {
		t.Fatalf("suite-level err = %v, want per-item errors only", err)
	}
	if items[0].Err == nil || !errors.Is(items[0].Err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", items[0].Err)
	}
}

// TestExperimentRunContextCancelled asserts the public RunContext path
// propagates cancellation.
func TestExperimentRunContextCancelled(t *testing.T) {
	e, err := ByID("fig3")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.RunContext(ctx, suiteOpts()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
