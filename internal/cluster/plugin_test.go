package cluster

import (
	"errors"
	"strings"
	"testing"

	"vprobe/internal/mem"
)

func view(index int, freePerNode []int64, totalMB int64, guestVCPUs, cap int) *HostView {
	hv := &HostView{
		Index:         index,
		Name:          "host" + string(rune('0'+index)),
		Nodes:         len(freePerNode),
		CPUs:          cap / 3,
		FreePerNodeMB: freePerNode,
		TotalMB:       totalMB,
		GuestVCPUs:    guestVCPUs,
		VCPUCap:       cap,
	}
	for _, f := range freePerNode {
		hv.FreeMB += f
	}
	return hv
}

func TestCapacityFilter(t *testing.T) {
	f := CapacityFilter{}
	spec := &VMSpec{Name: "vm", MemoryMB: 4096, VCPUs: 4}

	if err := f.Filter(spec, view(0, []int64{4096, 4096}, 24576, 0, 24)); err != nil {
		t.Fatalf("fitting VM filtered: %v", err)
	}
	if err := f.Filter(spec, view(0, []int64{1024, 1024}, 24576, 0, 24)); err == nil {
		t.Fatal("memory-starved host admitted")
	}
	if err := f.Filter(spec, view(0, []int64{8192, 8192}, 24576, 22, 24)); err == nil {
		t.Fatal("vcpu-overcommitted host admitted")
	}
}

func TestNUMAFitFilter(t *testing.T) {
	spec := &VMSpec{Name: "vm", MemoryMB: 6000, VCPUs: 4}

	// 4 nodes with 2000 MB each: total 8000 covers the VM, but no 2 nodes do.
	hv := view(0, []int64{2000, 2000, 2000, 2000}, 65536, 0, 48)
	if err := (CapacityFilter{}).Filter(spec, hv); err != nil {
		t.Fatalf("capacity filter should pass on total: %v", err)
	}
	if err := (NUMAFitFilter{MaxSplit: 2}).Filter(spec, hv); err == nil {
		t.Fatal("VM needing a 3-way split admitted with MaxSplit=2")
	}
	if err := (NUMAFitFilter{MaxSplit: 3}).Filter(spec, hv); err != nil {
		t.Fatalf("3-way split should fit with MaxSplit=3: %v", err)
	}

	// Uneven free memory: the two largest chunks are what counts.
	hv = view(0, []int64{500, 4000, 2500, 100}, 65536, 0, 48)
	if err := (NUMAFitFilter{MaxSplit: 2}).Filter(spec, hv); err != nil {
		t.Fatalf("4000+2500 >= 6000 should fit: %v", err)
	}
}

func TestScorerOrdering(t *testing.T) {
	spec := &VMSpec{Name: "vm", MemoryMB: 2048, VCPUs: 2}
	empty := view(0, []int64{12288, 12288}, 24576, 0, 24)
	full := view(1, []int64{2048, 1024}, 24576, 18, 24)

	if (LeastLoadedScore{}).Score(spec, empty) <= (LeastLoadedScore{}).Score(spec, full) {
		t.Fatal("least-loaded should prefer the empty host")
	}
	if (PackScore{}).Score(spec, full) <= (PackScore{}).Score(spec, empty) {
		t.Fatal("pack should prefer the full host")
	}

	oneNode := view(2, []int64{4096, 0}, 24576, 0, 24)
	split := view(3, []int64{1024, 1024}, 24576, 0, 24)
	if (NUMAFitScore{}).Score(spec, oneNode) <= (NUMAFitScore{}).Score(spec, split) {
		t.Fatal("numa-fit should prefer the single-node-fitting host")
	}

	calm := view(4, []int64{8192, 8192}, 24576, 4, 24)
	loud := view(5, []int64{8192, 8192}, 24576, 4, 24)
	loud.LLCPressure = 60
	if (LLCBalanceScore{}).Score(spec, calm) <= (LLCBalanceScore{}).Score(spec, loud) {
		t.Fatal("llc-balance should prefer the quiet host")
	}
}

func TestPipelinePlace(t *testing.T) {
	pl, err := NewPipeline("spread")
	if err != nil {
		t.Fatal(err)
	}
	spec := &VMSpec{Name: "vm", MemoryMB: 2048, VCPUs: 2}
	views := []*HostView{
		view(0, []int64{2048, 2048}, 24576, 18, 24),
		view(1, []int64{12288, 12288}, 24576, 0, 24),
	}
	hv, plan, err := pl.Place(spec, views)
	if err != nil {
		t.Fatal(err)
	}
	if hv.Index != 1 {
		t.Fatalf("spread picked host %d, want the empty host 1", hv.Index)
	}
	if plan.Policy != mem.PolicyStripe {
		t.Fatalf("spread plan = %v, want stripe", plan.Policy)
	}
}

func TestPipelineTieBreak(t *testing.T) {
	pl := &Pipeline{
		Name:    "flat",
		Filters: []FilterPlugin{CapacityFilter{}},
		Scorers: nil, // all scores zero: pure tie
	}
	spec := &VMSpec{Name: "vm", MemoryMB: 1024, VCPUs: 1}
	views := []*HostView{
		view(2, []int64{8192, 8192}, 24576, 0, 24),
		view(0, []int64{8192, 8192}, 24576, 0, 24),
		view(1, []int64{8192, 8192}, 24576, 0, 24),
	}
	hv, _, err := pl.Place(spec, views)
	if err != nil {
		t.Fatal(err)
	}
	if hv.Index != 0 {
		t.Fatalf("tie broke to host %d, want lowest index 0", hv.Index)
	}
}

func TestPipelineNoHostFits(t *testing.T) {
	pl, err := NewPipeline("numa")
	if err != nil {
		t.Fatal(err)
	}
	spec := &VMSpec{Name: "vm", MemoryMB: 64 * 1024, VCPUs: 2}
	views := []*HostView{view(0, []int64{8192, 8192}, 24576, 0, 24)}
	_, _, err = pl.Place(spec, views)
	if !errors.Is(err, ErrNoHostFits) {
		t.Fatalf("err = %v, want ErrNoHostFits", err)
	}
	if !strings.Contains(err.Error(), "capacity") {
		t.Fatalf("veto reason missing plugin name: %v", err)
	}
}

// TestNUMAFitScoreZeroMemory is the NaN regression: a zero-memory spec on
// a host whose best node has zero free memory used to compute 0/0.
func TestNUMAFitScoreZeroMemory(t *testing.T) {
	spec := &VMSpec{Name: "vm", MemoryMB: 0, VCPUs: 1}
	drained := view(0, []int64{0, 0}, 24576, 0, 24)
	got := (NUMAFitScore{}).Score(spec, drained)
	if got != got { // NaN is the one value that != itself
		t.Fatal("zero-memory spec on a drained host scores NaN")
	}
	if got != 60 {
		t.Fatalf("zero-memory fit on a drained host scores %v, want 60", got)
	}
	// And the guard must not change scores where bestFree > 0.
	roomy := view(1, []int64{4096, 1024}, 24576, 0, 24)
	if got := (NUMAFitScore{}).Score(spec, roomy); got != 100 {
		t.Fatalf("zero-memory spec with full headroom scores %v, want 100", got)
	}
}

// TestPipelineVetoCap checks the every-host-filtered error path at scale:
// reasons come out sorted and capped at 8 with a "… and N more" tail.
func TestPipelineVetoCap(t *testing.T) {
	pl := &Pipeline{Name: "flat", Filters: []FilterPlugin{CapacityFilter{}}}
	spec := &VMSpec{Name: "vm", MemoryMB: 64 * 1024, VCPUs: 2}
	var views []*HostView
	for i := 0; i < 12; i++ {
		views = append(views, view(i, []int64{1024, 1024}, 24576, 0, 24))
	}
	_, _, err := pl.Place(spec, views)
	if !errors.Is(err, ErrNoHostFits) {
		t.Fatalf("err = %v, want ErrNoHostFits", err)
	}
	msg := err.Error()
	if !strings.Contains(msg, "… and 4 more") {
		t.Fatalf("12 vetoes not capped at 8: %v", msg)
	}
	if got := strings.Count(msg, "capacity:"); got != 8 {
		t.Fatalf("%d rendered reasons, want 8: %v", got, msg)
	}
	// Sorted: host0 and host1 survive the cap, and in order.
	if !strings.Contains(msg, "host0") || strings.Index(msg, "host0") > strings.Index(msg, "host1") {
		t.Fatalf("capped reasons not sorted: %v", msg)
	}

	// At or under the cap no tail is rendered.
	_, _, err = pl.Place(spec, views[:8])
	if err == nil || strings.Contains(err.Error(), "more") {
		t.Fatalf("8 vetoes should render uncapped: %v", err)
	}
}

// TestNUMAFitFilterSplitEdges pins the MaxSplit edge cases: a split wider
// than the host degrades to summing every node, and a non-positive split
// normalizes to 1.
func TestNUMAFitFilterSplitEdges(t *testing.T) {
	hv := view(0, []int64{2000, 2000, 2000, 2000}, 65536, 0, 48)
	spec := &VMSpec{Name: "vm", MemoryMB: 8000, VCPUs: 4}

	// MaxSplit 16 on a 4-node host: all 8000 MB are available.
	if err := (NUMAFitFilter{MaxSplit: 16}).Filter(spec, hv); err != nil {
		t.Fatalf("split wider than the host should sum all nodes: %v", err)
	}
	if err := (NUMAFitFilter{MaxSplit: 16}).Filter(
		&VMSpec{Name: "vm", MemoryMB: 8001, VCPUs: 4}, hv); err == nil {
		t.Fatal("8001 MB admitted against 8000 MB of total free")
	}

	// MaxSplit <= 0 normalizes to 1: only the best node counts.
	small := &VMSpec{Name: "vm", MemoryMB: 2000, VCPUs: 2}
	big := &VMSpec{Name: "vm", MemoryMB: 2001, VCPUs: 2}
	for _, split := range []int{0, -3} {
		f := NUMAFitFilter{MaxSplit: split}
		if err := f.Filter(small, hv); err != nil {
			t.Fatalf("MaxSplit=%d should admit a single-node fit: %v", split, err)
		}
		if err := f.Filter(big, hv); err == nil {
			t.Fatalf("MaxSplit=%d admitted a VM larger than any node", split)
		}
	}
}

func TestPolicyRegistry(t *testing.T) {
	names := Policies()
	if len(names) < 3 {
		t.Fatalf("want >= 3 registered policies, have %v", names)
	}
	for _, n := range names {
		pl, err := NewPipeline(n)
		if err != nil {
			t.Fatalf("NewPipeline(%q): %v", n, err)
		}
		if pl.Name != n || len(pl.Filters) == 0 {
			t.Fatalf("policy %q malformed: %+v", n, pl)
		}
	}
	if _, err := NewPipeline("roulette"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}
