package workload

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSpec parses a compact workload specification of the form
//
//	"soplex:4,hungry:8"           — four soplex instances, eight burners
//	"memcached@64:8"              — eight memcached workers at concurrency 64
//	"redis@2000:4, lu:2"          — servers take a load parameter after '@'
//	"mcf"                         — a bare name means one instance
//
// into a profile list. Parameterised servers (memcached, redis) accept an
// '@load' suffix; fixed catalog profiles do not.
func ParseSpec(spec string) ([]*Profile, error) {
	var out []*Profile
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name := part
		count := 1
		if i := strings.LastIndex(part, ":"); i >= 0 {
			n, err := strconv.Atoi(strings.TrimSpace(part[i+1:]))
			if err != nil || n < 1 {
				return nil, fmt.Errorf("workload: bad count in %q", part)
			}
			name = strings.TrimSpace(part[:i])
			count = n
		}
		load := 0
		if i := strings.Index(name, "@"); i >= 0 {
			n, err := strconv.Atoi(strings.TrimSpace(name[i+1:]))
			if err != nil || n < 1 {
				return nil, fmt.Errorf("workload: bad load in %q", part)
			}
			load = n
			name = strings.TrimSpace(name[:i])
		}
		var base *Profile
		switch name {
		case "memcached":
			if load == 0 {
				return nil, fmt.Errorf("workload: %q needs a load, e.g. memcached@64", part)
			}
			base = Memcached(load)
		case "redis":
			if load == 0 {
				return nil, fmt.Errorf("workload: %q needs a load, e.g. redis@2000", part)
			}
			base = Redis(load)
		default:
			if load != 0 {
				return nil, fmt.Errorf("workload: %q does not take a load parameter", name)
			}
			p, err := ByName(name)
			if err != nil {
				return nil, err
			}
			base = p
		}
		for i := 0; i < count; i++ {
			out = append(out, base.Clone())
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("workload: empty spec %q", spec)
	}
	return out, nil
}
