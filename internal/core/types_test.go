package core

import (
	"testing"

	"vprobe/internal/numa"
	"vprobe/internal/pmu"
)

func TestClassifyEquation3(t *testing.T) {
	b := DefaultBounds()
	// Paper §IV-A: low=3, high=20 with the Fig. 3 measurements.
	cases := []struct {
		app      string
		pressure float64
		want     VCPUType
	}{
		{"povray", 0.48, TypeFR},
		{"ep", 2.01, TypeFR},
		{"lu", 15.38, TypeFI},
		{"mg", 16.33, TypeFI},
		{"milc", 21.68, TypeT},
		{"libquantum", 22.41, TypeT},
		// Boundary semantics of Eq. 3: R < low is FR, low <= R < high
		// is FI, R >= high is T.
		{"at-low", 3, TypeFI},
		{"below-low", 2.999, TypeFR},
		{"at-high", 20, TypeT},
		{"below-high", 19.999, TypeFI},
		{"zero", 0, TypeFR},
	}
	for _, c := range cases {
		if got := b.Classify(c.pressure); got != c.want {
			t.Errorf("%s (R=%v): classified %v, want %v", c.app, c.pressure, got, c.want)
		}
	}
}

func TestBoundsValidate(t *testing.T) {
	if err := DefaultBounds().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Bounds{Low: -1, High: 5}).Validate(); err == nil {
		t.Fatal("negative low accepted")
	}
	if err := (Bounds{Low: 10, High: 5}).Validate(); err == nil {
		t.Fatal("inverted bounds accepted")
	}
}

func TestMemoryIntensive(t *testing.T) {
	if TypeFR.MemoryIntensive() {
		t.Fatal("LLC-FR is not memory intensive")
	}
	if !TypeFI.MemoryIntensive() || !TypeT.MemoryIntensive() {
		t.Fatal("LLC-FI and LLC-T are memory intensive")
	}
}

func TestTypeString(t *testing.T) {
	if TypeFR.String() != "LLC-FR" || TypeFI.String() != "LLC-FI" || TypeT.String() != "LLC-T" {
		t.Fatal("type names diverge from the paper")
	}
	if VCPUType(7).String() == "" {
		t.Fatal("unknown type stringer empty")
	}
}

func TestAnalyzer(t *testing.T) {
	a := NewAnalyzer()
	// libquantum-like window: RPTI 22.41, mostly node-1 accesses.
	d := pmu.Delta{
		Instructions: 1e9,
		LLCRef:       22.41e6,
		LLCMiss:      13e6,
		Node:         []float64{3e6, 10e6},
		Remote:       3e6,
	}
	s := a.Analyze(7, d)
	if s.VCPU != 7 {
		t.Fatalf("VCPU id = %d", s.VCPU)
	}
	if s.Pressure < 22.40 || s.Pressure > 22.42 {
		t.Fatalf("pressure = %v, want ~22.41", s.Pressure)
	}
	if s.Type != TypeT {
		t.Fatalf("type = %v, want LLC-T", s.Type)
	}
	if s.Affinity != 1 {
		t.Fatalf("affinity = %v, want 1 (Eq. 1 argmax)", s.Affinity)
	}
}

func TestAnalyzerEmptyWindow(t *testing.T) {
	a := NewAnalyzer()
	s := a.Analyze(1, pmu.Delta{})
	if s.Type != TypeFR {
		t.Fatalf("idle window type = %v, want LLC-FR", s.Type)
	}
	if s.Affinity != numa.NoNode {
		t.Fatalf("idle window affinity = %v, want NoNode", s.Affinity)
	}
}

func TestAnalyzerAlphaScaling(t *testing.T) {
	a := &Analyzer{Alpha: 500, Bounds: DefaultBounds()}
	d := pmu.Delta{Instructions: 1000, LLCRef: 10}
	if got := a.Analyze(0, d).Pressure; got != 5 {
		t.Fatalf("pressure with alpha=500: %v, want 5", got)
	}
}
