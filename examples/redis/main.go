// Redis scenario: four redis-server instances answer a GET-heavy load from
// four benchmark drivers in a second VM (the paper's Fig. 7 setup). The
// example measures sustained throughput over a fixed window under each
// scheduler.
//
//	go run ./examples/redis
package main

import (
	"fmt"
	"log"
	"time"

	"vprobe"
)

func main() {
	const connections = 4000
	fmt.Printf("redis scenario: throughput at %d parallel connections\n\n", connections)

	var baseline float64
	for _, scheduler := range vprobe.Schedulers() {
		report, err := run(scheduler, connections)
		if err != nil {
			log.Fatal(err)
		}
		tput := report.TotalRequests() / report.End.Seconds()
		marker := ""
		if scheduler == vprobe.SchedulerCredit {
			baseline = tput
		} else if baseline > 0 {
			marker = fmt.Sprintf("  (%+.1f%% vs Credit)", 100*(tput/baseline-1))
		}
		fmt.Printf("%-8s %9.0f req/s%s\n", scheduler, tput, marker)
	}
}

func run(scheduler vprobe.Scheduler, connections int) (*vprobe.Report, error) {
	sim, err := vprobe.NewSimulator(vprobe.Config{Scheduler: scheduler, Seed: 3})
	if err != nil {
		return nil, err
	}

	servers, err := sim.AddVM(vprobe.VMConfig{
		Name: "redis-vm", MemoryMB: 15 * 1024, VCPUs: 8,
		Memory: vprobe.MemStripe, FillGuestIdle: true,
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < 4; i++ {
		if err := servers.RunRedis(connections); err != nil {
			return nil, err
		}
	}

	// The load generators are CPU-bound driver processes.
	clients, err := sim.AddVM(vprobe.VMConfig{
		Name: "bench-vm", MemoryMB: 5 * 1024, VCPUs: 8, FillGuestIdle: true,
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < 4; i++ {
		if err := clients.RunApp("hungry"); err != nil {
			return nil, err
		}
	}

	burner, err := sim.AddVM(vprobe.VMConfig{Name: "burner", MemoryMB: 1024, VCPUs: 8})
	if err != nil {
		return nil, err
	}
	for i := 0; i < 8; i++ {
		if err := burner.RunApp("hungry"); err != nil {
			return nil, err
		}
	}

	return sim.Run(30 * time.Second)
}
