package xen

import (
	"context"
	"fmt"

	"vprobe/internal/core"
	"vprobe/internal/mem"
	"vprobe/internal/numa"
	"vprobe/internal/perf"
	"vprobe/internal/pmu"
	"vprobe/internal/sim"
	"vprobe/internal/workload"
)

// EventKind labels a structured scheduling event.
type EventKind string

// Scheduling event kinds.
const (
	// EventDispatch: a VCPU starts a quantum on a PCPU.
	EventDispatch EventKind = "dispatch"
	// EventAppFinish: a VCPU's app completed all its work.
	EventAppFinish EventKind = "app-finish"
	// EventBlock: a VCPU blocked (timer, I/O, barrier, network wait).
	EventBlock EventKind = "block"
	// EventGuestMove: the guest OS parked a thread on another VCPU.
	EventGuestMove EventKind = "guest-move"
	// EventDomPause / EventDomResume / EventDomDestroy: domain lifecycle.
	EventDomPause   EventKind = "domain-pause"
	EventDomResume  EventKind = "domain-resume"
	EventDomDestroy EventKind = "domain-destroy"
)

// Event is one structured scheduling trace record. The typed fields carry
// machine-readable identities; Detail is the human-readable rendering (the
// exact line the old string trace hook used to receive).
type Event struct {
	At   sim.Time
	Kind EventKind
	// VCPU is the subject VCPU, -1 when the event is not VCPU-scoped.
	VCPU VCPUID
	// CPU is the PCPU involved, -1 when none.
	CPU numa.CPUID
	// Node is the NUMA node involved, numa.NoNode when placement is not
	// part of the event.
	Node numa.NodeID
	// App names the workload on the subject VCPU, when it has one.
	App    string
	Detail string
}

// String renders the event as a trace line.
func (ev Event) String() string { return ev.Detail }

// Hypervisor ties the machine model, the performance model, the domains,
// and a scheduling policy into one simulation.
type Hypervisor struct {
	Engine *sim.Engine
	Top    *numa.Topology
	Perf   *perf.System
	Alloc  *mem.Allocator
	RNG    *sim.RNG
	Config Config

	Policy  Policy
	PCPUs   []*PCPU
	Domains []*Domain

	vcpus    []*VCPU
	vcpuByID map[VCPUID]*VCPU
	nextVCPU VCPUID
	nextDom  DomID

	// Migrator, when non-nil, enables the §VI page-migration extension.
	Migrator *mem.Migrator

	// SampleOverhead accumulates the paper's "overhead time": PMU data
	// collection plus periodical partitioning (Table III).
	SampleOverhead sim.Duration

	watch   []*Domain
	started bool

	// EventFn, when set, receives structured scheduling events. Emission
	// (including Detail formatting) is skipped entirely when nil, so
	// tracing is free when off.
	EventFn func(Event)

	// Tele, when set (AttachTelemetry), is the pre-bound metric handle
	// set. Hot paths guard on nil so telemetry-off runs pay one branch.
	Tele *Telemetry
	// Spans is the span handle set (nil when tracing is off; see
	// spans.go). The cluster layer leaves this nil on its hosts and
	// records spans on the cluster engine instead.
	Spans *Spans

	placeCursor int

	// Reusable steal-path buffers (single-threaded per hypervisor, so one
	// set suffices): QueueViews' per-node view map, Algorithm 2's scratch,
	// the cached per-node steal visit orders (topology is immutable), and
	// SampleAll's stat buffer.
	views       map[numa.NodeID][]core.QueueView
	stealBufs   core.StealScratch
	nodeOrders  [][]numa.NodeID
	statScratch []core.Stat
}

// New builds a hypervisor on the given topology with a scheduling policy.
func New(top *numa.Topology, policy Policy, cfg Config) *Hypervisor {
	h := &Hypervisor{
		Engine:   sim.NewEngine(),
		Top:      top,
		Perf:     perf.NewSystem(top),
		Alloc:    mem.NewAllocator(top),
		RNG:      sim.NewRNG(cfg.Seed),
		Config:   cfg,
		Policy:   policy,
		vcpuByID: make(map[VCPUID]*VCPU),
	}
	for cpu := 0; cpu < top.NumCPUs(); cpu++ {
		p := &PCPU{
			ID:   numa.CPUID(cpu),
			Node: top.NodeOf(numa.CPUID(cpu)),
		}
		// Pre-bind the per-PCPU callbacks once: the quantum/kick/boot hot
		// paths then re-arm pooled events instead of allocating closures.
		p.quantum = h.Engine.NewTimer("quantum", func(*sim.Engine) { h.endQuantum(p) })
		p.kickFn = func(*sim.Engine) { h.schedule(p) }
		h.PCPUs = append(h.PCPUs, p)
	}
	return h
}

// emit delivers a structured scheduling event. The Detail line is only
// formatted when a listener is attached.
func (h *Hypervisor) emit(kind EventKind, vcpu VCPUID, cpu numa.CPUID,
	node numa.NodeID, app, format string, args ...any) {
	if h.EventFn == nil {
		return
	}
	h.EventFn(Event{
		At:   h.Engine.Now(),
		Kind: kind,
		VCPU: vcpu,
		CPU:  cpu,
		Node: node,
		App:  app,
		//vet:alloc formatting happens only past the EventFn nil check: tracing is opt-in and off on the benchmarked path
		Detail: fmt.Sprintf(format, args...),
	})
}

// CreateDomain builds a VM with the given memory size (allocated with the
// given placement policy) and VCPU count. VCPUs start without apps
// (guest-idle, permanently blocked) until AttachApp. It refuses to run
// after Start; dynamic hosts (the cluster layer) use AddDomain +
// ActivateDomain instead.
func (h *Hypervisor) CreateDomain(name string, memMB int64, vcpus int, pol mem.Policy) (*Domain, error) {
	if h.started {
		return nil, fmt.Errorf("xen: CreateDomain after Start")
	}
	return h.AddDomain(name, memMB, vcpus, pol, 0)
}

// AddDomain is CreateDomain without the pre-Start restriction: it builds
// the domain and reserves its memory (honouring preferred for
// mem.PolicyLocal) but does not place its VCPUs. Domains added to a
// running hypervisor stay inert — memory reserved, VCPUs blocked — until
// apps are attached and ActivateDomain is called, which models the
// allocate → build → unpause sequence of a real domain creation or an
// incoming live migration.
func (h *Hypervisor) AddDomain(name string, memMB int64, vcpus int, pol mem.Policy, preferred numa.NodeID) (*Domain, error) {
	if vcpus <= 0 {
		return nil, fmt.Errorf("xen: domain %q with %d VCPUs", name, vcpus)
	}
	dist, err := h.Alloc.Alloc(memMB, pol, preferred)
	if err != nil {
		return nil, fmt.Errorf("xen: domain %q: %w", name, err)
	}
	d := &Domain{ID: h.nextDom, Name: name, MemoryMB: memMB, MemDist: dist}
	h.nextDom++
	for i := 0; i < vcpus; i++ {
		v := &VCPU{
			ID:           h.nextVCPU,
			Dom:          d,
			Counters:     pmu.NewCounters(h.Top.NumNodes()),
			Sampler:      pmu.NewSampler(h.Top.NumNodes()),
			OnPCPU:       -1,
			PinnedPCPU:   -1,
			Priority:     PrioUnder,
			LastSocket:   numa.NoNode,
			NodeAffinity: numa.NoNode,
			AssignedNode: numa.NoNode,
			pendingNode:  numa.NoNode,
		}
		h.nextVCPU++
		v.wakeTimer = h.Engine.NewTimer("wake", func(*sim.Engine) { h.wake(v, v.wakeLast) })
		d.VCPUs = append(d.VCPUs, v)
		h.vcpus = append(h.vcpus, v)
		h.vcpuByID[v.ID] = v
	}
	h.Domains = append(h.Domains, d)
	h.Spans.domainAdded(d)
	return d, nil
}

// AttachApp binds an application profile to the domain's idx-th VCPU
// (guest-level thread pinning, one app instance per VCPU).
func (h *Hypervisor) AttachApp(d *Domain, idx int, app *workload.Profile) (*VCPU, error) {
	if idx < 0 || idx >= len(d.VCPUs) {
		return nil, fmt.Errorf("xen: domain %q has no VCPU %d", d.Name, idx)
	}
	if err := app.Validate(); err != nil {
		return nil, err
	}
	v := d.VCPUs[idx]
	if v.App != nil {
		return nil, fmt.Errorf("xen: VCPU %d already has app %q", v.ID, v.App.Name)
	}
	v.App = app
	return v, nil
}

// Pin hard-pins a VCPU to a PCPU (Fig. 3 calibration setup).
func (h *Hypervisor) Pin(v *VCPU, cpu numa.CPUID) error {
	if int(cpu) < 0 || int(cpu) >= len(h.PCPUs) {
		return fmt.Errorf("xen: pin to invalid PCPU %d", cpu)
	}
	v.PinnedPCPU = cpu
	return nil
}

// WatchDomains makes the simulation stop once every listed domain has
// finished all attached apps.
func (h *Hypervisor) WatchDomains(ds ...*Domain) { h.watch = ds }

// AllVCPUs returns every VCPU in creation order.
func (h *Hypervisor) AllVCPUs() []*VCPU { return h.vcpus }

// VCPUByID looks up a VCPU.
func (h *Hypervisor) VCPUByID(id VCPUID) *VCPU { return h.vcpuByID[id] }

// ActiveVCPUs counts runnable or running VCPUs.
func (h *Hypervisor) ActiveVCPUs() int {
	n := 0
	for _, v := range h.vcpus {
		if v.State == StateRunnable || v.State == StateRunning {
			n++
		}
	}
	return n
}

// Start performs initial placement and arms the tickers. It must be called
// exactly once before Run.
func (h *Hypervisor) Start() error {
	if h.started {
		return fmt.Errorf("xen: Start called twice")
	}
	h.started = true

	for _, d := range h.Domains {
		h.placeDomain(d)
	}

	// Credit tick: debit running VCPUs, fire policy tick hook.
	h.Engine.Every(h.Config.TickPeriod, h.Config.TickPeriod, "tick", func(*sim.Engine) {
		for _, p := range h.PCPUs {
			if p.Current == nil {
				continue
			}
			p.Current.Credits -= h.Config.CreditsPerTick
			if p.Current.Credits < -h.Config.CreditCap {
				p.Current.Credits = -h.Config.CreditCap
			}
			if p.Current.Credits < 0 {
				p.Current.Priority = PrioOver
			}
			h.Policy.OnTick(h, p.Current)
		}
	})

	// Credit accounting + contention epoch.
	h.Engine.Every(h.Config.AccountPeriod, h.Config.AccountPeriod, "account", func(e *sim.Engine) {
		h.accountCredits()
		h.Perf.EndEpoch(e.Now())
	})

	// Sampling period for PMU-driven policies.
	if period := h.Policy.Period(); period > 0 {
		h.Engine.Every(period, period, "period", func(*sim.Engine) {
			h.Policy.OnPeriod(h)
		})
	}

	// Guest-OS thread re-placement: inside each VM, threads occasionally
	// park on different VCPUs. Invisible to the hypervisor except through
	// the PMU signature changing under it.
	if h.Config.GuestThreadMigrationMean > 0 {
		for _, d := range h.Domains {
			h.armGuestMigration(d)
		}
	}

	// First dispatch on every PCPU.
	for _, p := range h.PCPUs {
		h.Engine.Schedule(0, "boot", p.kickFn)
	}
	return nil
}

// placeDomain performs initial placement of a domain's app-carrying VCPUs:
// each lands on a seeded random permutation of the PCPUs — a freshly
// booted guest's thread layout has no node balance guarantee, which is
// what leaves unbalanced LLC pressure for the partitioning mechanism to
// repair.
//
// Page placement is deferred: an app allocates during its first-touch
// window, accessing the VM-wide layout meanwhile; its pages then
// concentrate on the node where it actually ran (see finishFirstTouch).
func (h *Hypervisor) placeDomain(d *Domain) {
	d.activated = true
	perm := h.RNG.Perm(len(h.PCPUs))
	slot := 0
	for _, v := range d.VCPUs {
		if v.App == nil {
			continue
		}
		var p *PCPU
		if v.PinnedPCPU >= 0 {
			p = h.PCPUs[v.PinnedPCPU]
		} else {
			p = h.PCPUs[perm[slot%len(perm)]]
			slot++
		}
		v.StartNode = p.Node
		v.PageDist = d.MemDist.CloneInto(v.PageDist)
		v.nodeTime = make([]sim.Duration, h.Top.NumNodes())
		v.State = StateRunnable
		p.Enqueue(v)
		vv := v
		h.Engine.Schedule(h.Config.FirstTouchDelay, "first-touch", func(*sim.Engine) {
			h.finishFirstTouch(vv)
		})
	}
}

// armGuestMigration schedules the recurring guest-thread re-placement
// events for one domain.
func (h *Hypervisor) armGuestMigration(d *Domain) {
	var arm func(*sim.Engine)
	arm = func(*sim.Engine) {
		if d.Destroyed {
			return
		}
		h.swapGuestThreads(d)
		wait := sim.Duration(h.RNG.Exp(float64(h.Config.GuestThreadMigrationMean)))
		if wait < sim.Millisecond {
			wait = sim.Millisecond
		}
		h.Engine.Schedule(wait, "guest-migrate", arm)
	}
	wait := sim.Duration(h.RNG.Exp(float64(h.Config.GuestThreadMigrationMean)))
	h.Engine.Schedule(wait, "guest-migrate", arm)
}

// ActivateDomain places a domain added (via AddDomain) after Start: its
// app-carrying VCPUs enter run queues, first-touch windows open, the
// guest-thread migration timer arms, and idle PCPUs are kicked to pick the
// new work up. Domains present before Start are activated by Start itself.
func (h *Hypervisor) ActivateDomain(d *Domain) error {
	if !h.started {
		return fmt.Errorf("xen: ActivateDomain before Start")
	}
	if d.activated {
		return fmt.Errorf("xen: domain %q already activated", d.Name)
	}
	if d.Destroyed {
		return fmt.Errorf("xen: domain %q is destroyed", d.Name)
	}
	h.placeDomain(d)
	if h.Config.GuestThreadMigrationMean > 0 {
		h.armGuestMigration(d)
	}
	h.kickIdle()
	return nil
}

// accountCredits is the 30ms credit-accounting tick, a per-quantum root
// of the allocation-free contract.
//
//vprobe:hotpath
func (h *Hypervisor) accountCredits() {
	active := h.ActiveVCPUs()
	if active == 0 {
		return
	}
	// Total credits minted per accounting period: CreditsPerTick per
	// tick per PCPU, shared equally among active VCPUs (all domains
	// have equal weight in the paper's experiments).
	ticks := int(h.Config.AccountPeriod / h.Config.TickPeriod)
	total := ticks * h.Config.CreditsPerTick * len(h.PCPUs)
	share := total / active
	for _, v := range h.vcpus {
		if v.State != StateRunnable && v.State != StateRunning {
			continue
		}
		v.Credits += share
		if v.Credits > h.Config.CreditCap {
			v.Credits = h.Config.CreditCap
		}
		if v.State != StateRunning && v.Priority != PrioBoost {
			v.Priority = priorityFromCredits(v)
		}
	}
	h.repickRunning()
}

// repickRunning models csched_vcpu_acct's periodic _csched_cpu_pick: at
// every accounting period, each running VCPU re-evaluates its placement
// and migrates (at quantum end) toward the least-loaded PCPU if that is
// distinctly better. In stock Credit the candidate set spans the whole
// machine — NUMA-obliviously bouncing memory-intensive VCPUs across
// sockets; NUMA-aware policies (vProbe, LB) restrict it to the local node
// so only partitioning or explicit remote stealing crosses sockets.
func (h *Hypervisor) repickRunning() {
	aware := h.Policy.NUMAAwareBalance()
	for _, p := range h.PCPUs {
		v := p.Current
		if v == nil || v.PinnedPCPU >= 0 || v.pendingNode != numa.NoNode {
			continue
		}
		if h.RNG.Float64() >= h.Config.RepickProb {
			continue
		}
		// Index-based candidate scan: same visit order as the old
		// throwaway candidate slice, without building it.
		var best *PCPU
		if aware {
			for _, cpu := range h.Top.CPUsOf(p.Node) {
				q := h.PCPUs[cpu]
				if q == p {
					continue
				}
				if best == nil || q.Workload < best.Workload {
					best = q
				}
			}
		} else {
			for _, q := range h.PCPUs {
				if q == p {
					continue
				}
				if best == nil || q.Workload < best.Workload {
					best = q
				}
			}
		}
		if best != nil && best.Workload+1 < p.Workload {
			v.pendingNode = best.Node
		}
	}
}

// schedule dispatches the next VCPU on p if p is idle.
//
//vprobe:hotpath
func (h *Hypervisor) schedule(p *PCPU) {
	if p.Current != nil {
		return
	}
	v := h.Policy.PickNext(h, p)
	if v == nil {
		if !p.idle {
			p.idle = true
			p.IdleSince = h.Engine.Now()
		}
		return
	}
	if p.idle {
		p.IdleTime += h.Engine.Now().Sub(p.IdleSince)
		p.idle = false
	}
	h.dispatch(p, v)
}

func (h *Hypervisor) dispatch(p *PCPU, v *VCPU) {
	cpm := h.Top.CyclesPerMicrosecond()
	if p.lastVCPU != v {
		v.Switches++
		cost := h.Config.ContextSwitchMicros
		if h.Policy.UsesPMU() {
			// Perfctr-Xen counter save/restore around the switch.
			cost += h.Config.PMUUpdateMicros
			h.SampleOverhead += sim.Duration(h.Config.PMUUpdateMicros)
		}
		v.AddOverhead(cost*cpm, cpm)
	}
	if v.OnPCPU != p.ID && v.OnPCPU >= 0 {
		v.Migrations++
	}
	if v.LastSocket != p.Node {
		if v.LastSocket != numa.NoNode {
			// Cross-socket move: the hot set must be refetched.
			if ph := v.Phase(); ph != nil {
				v.ColdLines = h.Perf.ColdLinesFor(ph)
			}
			v.NodeMoves++
		}
		v.LastSocket = p.Node
	}

	v.State = StateRunning
	v.OnPCPU = p.ID
	p.Current = v
	if v.Priority == PrioBoost {
		v.Priority = priorityFromCredits(v)
	}

	req := perf.Request{
		Profile:         v.App,
		InstrDone:       v.InstrDone,
		Quantum:         h.Config.Timeslice,
		RunNode:         p.Node,
		PageDist:        v.PageDist,
		CoRunnerRPTI:    h.coRunnerRPTI(p, v),
		ColdLines:       v.ColdLines,
		OverheadCycles:  v.pendingOverhead,
		MaxInstructions: v.RemainingInstructions(),
	}
	if v.App.Endless() {
		req.MaxInstructions = 0
	}
	if v.App.BurstMicros > 0 {
		if b := sim.Duration(v.App.BurstMicros); b < req.Quantum {
			req.Quantum = b
		}
	}
	v.pendingOverhead = 0

	// Optional page migration extension: pages drift toward the node the
	// VCPU runs on, at a CPU cost charged to this quantum.
	if h.Migrator != nil {
		cycles := h.Migrator.Step(v.PageDist, p.Node, h.Config.Timeslice, v.App.FootprintMB)
		req.OverheadCycles += cycles
	}

	// The outcome lands in the VCPU's reusable buffer; the flight state
	// and the quantum-end timer are the PCPU's own, so the whole dispatch
	// is allocation-free in steady state.
	h.Perf.ExecuteInto(&v.out, req)
	out := &v.out
	if out.Used <= 0 {
		out.Used = sim.Microsecond
	}
	if h.Tele != nil {
		h.Tele.Dispatches.Inc()
	}
	if h.EventFn != nil {
		// Guarded at the call site, not just inside emit: boxing the
		// variadic args allocates before emit's own nil check runs, and
		// dispatch is the hot path that must stay allocation-free.
		//vet:alloc args box only on the traced path; the call-site guard keeps the untraced quantum allocation-free
		h.emit(EventDispatch, v.ID, p.ID, p.Node, v.App.Name,
			"pcpu%d run vcpu%d (%s) %.1fms", p.ID, v.ID, v.App.Name, out.Used.Millis())
	}
	p.flight = flight{v: v, origCold: v.ColdLines, start: h.Engine.Now()}
	p.quantum.Arm(out.Used)
}

// flight is one in-progress quantum (active while v != nil). The outcome
// lives in v.out and the deadline in the owning PCPU's quantum timer.
type flight struct {
	v        *VCPU
	origCold float64
	start    sim.Time
}

// priorityFromCredits maps a credit balance to UNDER/OVER.
func priorityFromCredits(v *VCPU) Priority {
	if v.Credits >= 0 {
		return PrioUnder
	}
	return PrioOver
}

// preempt truncates the quantum in flight on p (a BOOST wakeup arrived).
// The partial work is accounted proportionally and the displaced VCPU is
// requeued; p then reschedules, picking up the BOOST VCPU.
func (h *Hypervisor) preempt(p *PCPU) {
	if p.flight.v == nil {
		return
	}
	p.quantum.Stop()
	h.endQuantum(p)
}

// coRunnerRPTI sums the reference intensity competing with v for p's
// socket LLC during this quantum: other VCPUs currently executing on the
// socket at full weight, plus VCPUs queued on the socket's PCPUs at
// QueuedLLCWeight — their cache residency persists across the time-slicing
// even while they wait.
func (h *Hypervisor) coRunnerRPTI(p *PCPU, v *VCPU) float64 {
	var sum float64
	for _, cpu := range h.Top.CPUsOf(p.Node) {
		q := h.PCPUs[cpu]
		if q != p && q.Current != nil && q.Current != v {
			if ph := q.Current.Phase(); ph != nil {
				sum += ph.RPTI
			}
		}
		for _, w := range q.Queue() {
			if w == v {
				continue
			}
			if ph := w.Phase(); ph != nil {
				sum += h.Config.QueuedLLCWeight * ph.RPTI
			}
		}
	}
	return sum
}

// endQuantum retires the quantum in flight on p: execution accounting,
// preemption bookkeeping, and the next dispatch.
//
//vprobe:hotpath
func (h *Hypervisor) endQuantum(p *PCPU) {
	if p.flight.v == nil || p.Current != p.flight.v {
		return
	}
	v := p.flight.v
	origCold := p.flight.origCold
	start := p.flight.start
	p.flight.v = nil
	// out is the VCPU's reusable outcome buffer, scaled in place on
	// preemption; nothing reads it after this function consumes it.
	out := &v.out
	preempted := false
	if elapsed := h.Engine.Now().Sub(start); elapsed < out.Used {
		// Preempted mid-quantum: account the completed fraction.
		preempted = true
		frac := float64(elapsed) / float64(out.Used)
		out.Instructions *= frac
		out.Cycles *= frac
		out.LLCRef *= frac
		out.LLCMiss *= frac
		out.Remote *= frac
		for i := range out.Node {
			out.Node[i] *= frac
		}
		out.ColdLines = origCold + (out.ColdLines-origCold)*frac
		out.Used = elapsed
	}
	v.Counters.Add(pmu.Delta{
		Instructions: out.Instructions,
		Cycles:       out.Cycles,
		LLCRef:       out.LLCRef,
		LLCMiss:      out.LLCMiss,
		Node:         out.Node,
		Remote:       out.Remote,
	})
	h.Perf.Record(*out, p.Node)
	v.InstrDone += out.Instructions
	v.ColdLines = out.ColdLines
	v.RunTime += out.Used
	if !v.firstTouched && v.nodeTime != nil {
		v.nodeTime[p.Node] += out.Used
	}
	if v.firstTouched && v.App.PageDriftPerSecond > 0 {
		v.PageDist.ShiftToward(p.Node, v.App.PageDriftPerSecond*out.Used.Seconds())
	}
	p.BusyTime += out.Used
	p.Current = nil
	p.lastVCPU = v
	if h.Tele != nil {
		h.Tele.QuantumUS.Observe(float64(out.Used))
	}

	finished := !v.App.Endless() && v.RemainingInstructions() <= 0.5
	switch {
	case finished:
		v.Done = true
		v.FinishTime = h.Engine.Now()
		v.State = StateBlocked
		v.OnPCPU = -1
		if h.EventFn != nil {
			// Call-site guard like dispatch's: arg boxing must not
			// allocate when no listener is attached.
			//vet:alloc args box only on the traced path, once per app lifetime
			h.emit(EventAppFinish, v.ID, p.ID, p.Node, v.App.Name,
				"vcpu%d (%s) finished", v.ID, v.App.Name)
		}
		h.checkWatch()
	case !preempted && v.App.BlockProb > 0 && h.RNG.Float64() < v.App.BlockProb:
		// The guest blocks (timer, I/O, barrier, network wait). The
		// VCPU leaves the run queues; its wakeup re-enqueues it where
		// it last ran, and idle PCPUs may steal it from there — the
		// churn that makes load-balance policy matter.
		v.State = StateBlocked
		wait := sim.Duration(h.RNG.Exp(v.App.BlockMicrosMean))
		if wait < sim.Microsecond {
			wait = sim.Microsecond
		}
		if h.EventFn != nil {
			// Call-site guard like dispatch's: arg boxing must not
			// allocate on the untraced hot path.
			//vet:alloc args box only on the traced path; the call-site guard keeps the untraced quantum allocation-free
			h.emit(EventBlock, v.ID, p.ID, p.Node, v.App.Name,
				"vcpu%d (%s) blocks %v", v.ID, v.App.Name, wait)
		}
		v.wakeLast = p
		v.wakeTimer.Arm(wait)
	default:
		target := p
		switch {
		case v.PinnedPCPU >= 0:
			target = h.PCPUs[v.PinnedPCPU]
		case v.pendingNode != numa.NoNode:
			target = h.leastLoadedPCPU(v.pendingNode)
			v.pendingNode = numa.NoNode
		}
		v.Priority = priorityFromCredits(v)
		h.enqueue(target, v)
		if target != p {
			h.kickIdle()
		}
	}
	h.schedule(p)
}

// wake re-enqueues a blocked VCPU on the PCPU it last ran on (pinned
// VCPUs on their pin; a pending partition assignment is honoured) with
// Xen's BOOST priority: it preempts a lower-priority runner on the target
// PCPU immediately, which keeps short housekeeping bursts from languishing
// in queues.
//
//vprobe:hotpath
func (h *Hypervisor) wake(v *VCPU, last *PCPU) {
	if v.Done || v.paused || v.State != StateBlocked || v.App == nil {
		return
	}
	target := last
	switch {
	case v.PinnedPCPU >= 0:
		target = h.PCPUs[v.PinnedPCPU]
	case v.pendingNode != numa.NoNode:
		target = h.leastLoadedPCPU(v.pendingNode)
		v.pendingNode = numa.NoNode
	}
	v.Priority = PrioBoost
	h.enqueue(target, v)
	if target.Current != nil && target.Current.Priority > PrioBoost {
		h.preempt(target)
	} else {
		h.kickIdle()
		h.schedule(target)
	}
}

// swapGuestThreads models the guest scheduler moving a busy thread onto a
// previously housekeeping-only VCPU of the same domain. The thread's state
// (progress, pages, counters) travels with it; the VCPUs' hypervisor-side
// scheduling state (queue position, credits, measured characteristics)
// stays put — so the analyzer's view of both VCPUs is stale until the next
// sampling period.
func (h *Hypervisor) swapGuestThreads(d *Domain) {
	var apps, parks []*VCPU
	for _, v := range d.VCPUs {
		if v.App == nil || v.State == StateRunning || v.PinnedPCPU >= 0 || v.Done {
			continue
		}
		if v.App.BurstMicros > 0 {
			parks = append(parks, v)
		} else if v.App.Server {
			// Request-driven threads park elsewhere routinely (wake
			// balancing); CPU-bound batch threads only occasionally.
			apps = append(apps, v)
		} else if !v.App.Endless() && h.RNG.Float64() < h.Config.BatchMigrationFraction {
			apps = append(apps, v)
		}
	}
	if len(apps) == 0 || len(parks) == 0 {
		return
	}
	a := apps[h.RNG.Intn(len(apps))]
	b := parks[h.RNG.Intn(len(parks))]
	a.App, b.App = b.App, a.App
	a.InstrDone, b.InstrDone = b.InstrDone, a.InstrDone
	a.Counters, b.Counters = b.Counters, a.Counters
	a.Sampler, b.Sampler = b.Sampler, a.Sampler
	a.PageDist, b.PageDist = b.PageDist, a.PageDist
	a.ColdLines, b.ColdLines = b.ColdLines, a.ColdLines
	a.firstTouched, b.firstTouched = b.firstTouched, a.firstTouched
	a.nodeTime, b.nodeTime = b.nodeTime, a.nodeTime
	// The thread arrives with a cold cache on its new VCPU's socket.
	if ph := b.Phase(); ph != nil {
		b.ColdLines = h.Perf.ColdLinesFor(ph)
	}
	h.emit(EventGuestMove, b.ID, -1, numa.NoNode, b.App.Name,
		"guest %s: thread %s moved vcpu%d -> vcpu%d", d.Name, b.App.Name, a.ID, b.ID)
}

// finishFirstTouch settles an app's page placement at the end of its
// allocation window: pages concentrate (by FirstTouchLocality) on the node
// where the VCPU spent the most run time, masked by the VM's actual
// machine-memory layout.
func (h *Hypervisor) finishFirstTouch(v *VCPU) {
	if v.firstTouched || v.App == nil || v.Done {
		return
	}
	v.firstTouched = true
	node := v.StartNode
	var best sim.Duration = -1
	for n, t := range v.nodeTime {
		if t > best {
			best = t
			node = numa.NodeID(n)
		}
	}
	v.PageDist = mem.FirstTouchInto(v.PageDist, v.Dom.MemDist, node, h.Config.FirstTouchLocality)
}

// enqueue timestamps the VCPU for cache-hot protection and inserts it.
func (h *Hypervisor) enqueue(p *PCPU, v *VCPU) {
	v.lastQueuedAt = h.Engine.Now()
	p.Enqueue(v)
}

// cacheHot reports whether v ran too recently to be stolen.
func (h *Hypervisor) cacheHot(v *VCPU) bool {
	return float64(h.Engine.Now().Sub(v.lastQueuedAt)) < h.Config.CacheHotMicros
}

// checkWatch stops the engine when all watched domains are done.
func (h *Hypervisor) checkWatch() {
	if len(h.watch) == 0 {
		return
	}
	for _, d := range h.watch {
		if !d.AllDone() {
			return
		}
	}
	h.Engine.Stop()
}

// kickIdle re-dispatches every idle PCPU (new work may have appeared).
func (h *Hypervisor) kickIdle() {
	for _, p := range h.PCPUs {
		if p.Current == nil {
			h.Engine.Schedule(0, "kick", p.kickFn)
		}
	}
}

// leastLoadedPCPU returns the PCPU on node with the smallest Workload
// (ties toward the lowest id).
func (h *Hypervisor) leastLoadedPCPU(node numa.NodeID) *PCPU {
	var best *PCPU
	for _, cpu := range h.Top.CPUsOf(node) {
		p := h.PCPUs[cpu]
		if best == nil || p.Workload < best.Workload {
			best = p
		}
	}
	return best
}

// MigrateToNode moves a VCPU toward a node: queued VCPUs move immediately
// to the node's least-loaded PCPU; running VCPUs migrate when their
// current quantum ends. Pinned VCPUs never move.
func (h *Hypervisor) MigrateToNode(v *VCPU, node numa.NodeID) {
	if v.PinnedPCPU >= 0 || int(node) < 0 || int(node) >= h.Top.NumNodes() {
		return
	}
	switch v.State {
	case StateRunning:
		if h.PCPUs[v.OnPCPU].Node != node {
			v.pendingNode = node
		}
	case StateRunnable:
		cur := h.PCPUs[v.OnPCPU]
		if cur.Node == node {
			return
		}
		if cur.Remove(v) {
			h.enqueue(h.leastLoadedPCPU(node), v)
			h.kickIdle()
		}
	}
}

// Run advances the simulation until the horizon or until watched domains
// complete, and returns the stop time.
func (h *Hypervisor) Run(horizon sim.Duration) sim.Time {
	//vet:ctx compat wrapper for pre-context callers; a background context never cancels
	end, err := h.RunContext(context.Background(), horizon)
	if err != nil {
		panic(err) // background context never cancels; only Start can fail
	}
	return end
}

// RunContext is Run with cooperative cancellation: the engine polls ctx
// periodically and a cancelled context halts the simulation, returning the
// clock position the run was interrupted at together with the context's
// error. Start errors are returned rather than panicking.
func (h *Hypervisor) RunContext(ctx context.Context, horizon sim.Duration) (sim.Time, error) {
	if !h.started {
		if err := h.Start(); err != nil {
			return h.Engine.Now(), err
		}
	}
	_, err := h.Engine.RunUntilContext(ctx, sim.Time(horizon))
	return h.Engine.Now(), err
}

// TotalBusyTime sums PCPU busy time (the Table III denominator).
func (h *Hypervisor) TotalBusyTime() sim.Duration {
	var t sim.Duration
	for _, p := range h.PCPUs {
		t += p.BusyTime
	}
	return t
}

// OverheadFraction returns the paper's Table III metric: overhead time as
// a fraction of total execution time.
func (h *Hypervisor) OverheadFraction() float64 {
	busy := h.TotalBusyTime()
	if busy <= 0 {
		return 0
	}
	return float64(h.SampleOverhead) / float64(busy)
}
