package experiments

import (
	"context"
	"fmt"

	"vprobe/internal/mem"
	"vprobe/internal/metrics"
	"vprobe/internal/numa"
	"vprobe/internal/sched"
	"vprobe/internal/sim"
	"vprobe/internal/workload"
	"vprobe/internal/xen"
)

// scenario is the paper's standard three-VM setup (§V-A1):
//
//	VM1 — 15 GB split across both nodes, 8 VCPUs, the measured workload
//	VM2 — 5 GB, 8 VCPUs, the interfering copy of the workload
//	VM3 — 1 GB, 8 VCPUs, eight hungry loops consuming spare CPU
type scenario struct {
	H             *xen.Hypervisor
	VM1, VM2, VM3 *xen.Domain
}

// policyFor builds a fresh policy instance for a run.
func policyFor(kind sched.Kind) (xen.Policy, error) {
	return sched.New(kind)
}

// newScenario builds the standard setup with apps1 in VM1 and apps2 in
// VM2 (attached to the first VCPUs of each domain; remaining VCPUs are
// guest-idle). Profiles are cloned and scaled by opts.Scale.
func newScenario(kind sched.Kind, apps1, apps2 []*workload.Profile, opts Options) (*scenario, error) {
	pol, err := policyFor(kind)
	if err != nil {
		return nil, err
	}
	cfg := xen.DefaultConfig()
	cfg.Seed = opts.Seed
	h := xen.New(numa.XeonE5620(), pol, cfg)

	vm1, err := h.CreateDomain("VM1", 15*1024, 8, mem.PolicyStripe)
	if err != nil {
		return nil, err
	}
	vm2, err := h.CreateDomain("VM2", 5*1024, 8, mem.PolicyFill)
	if err != nil {
		return nil, err
	}
	vm3, err := h.CreateDomain("VM3", 1*1024, 8, mem.PolicyFill)
	if err != nil {
		return nil, err
	}

	attach := func(d *xen.Domain, apps []*workload.Profile) error {
		if len(apps) > len(d.VCPUs) {
			return fmt.Errorf("experiments: %d apps for %d VCPUs in %s",
				len(apps), len(d.VCPUs), d.Name)
		}
		for i, app := range apps {
			p := app.Clone()
			if !p.Server && p.TotalInstructions < 1e17 {
				p.TotalInstructions *= opts.Scale
			} else if p.Server && p.TotalInstructions > 0 {
				p.TotalInstructions *= opts.Scale
			}
			if _, err := h.AttachApp(d, i, p); err != nil {
				return err
			}
		}
		return nil
	}
	if err := attach(vm1, padGuestIdle(apps1, len(vm1.VCPUs))); err != nil {
		return nil, err
	}
	if err := attach(vm2, padGuestIdle(apps2, len(vm2.VCPUs))); err != nil {
		return nil, err
	}
	var hungry []*workload.Profile
	for i := 0; i < 8; i++ {
		hungry = append(hungry, workload.Hungry())
	}
	if err := attach(vm3, hungry); err != nil {
		return nil, err
	}
	return &scenario{H: h, VM1: vm1, VM2: vm2, VM3: vm3}, nil
}

// runMeasured runs the scenario until VM1 finishes (batch workloads) or
// the horizon (servers), returning VM1's per-app runs and the stop time.
// Cancelling ctx aborts the simulation promptly with the context's error.
func (s *scenario) runMeasured(ctx context.Context, opts Options) ([]metrics.AppRun, sim.Time, error) {
	s.H.WatchDomains(s.VM1)
	end, err := s.H.RunContext(ctx, opts.Horizon)
	if err != nil {
		return nil, end, err
	}
	return metrics.CollectDomain(s.VM1, end), end, nil
}

// padGuestIdle appends guest-housekeeping profiles so the VM's remaining
// VCPUs behave like real guest-idle VCPUs (periodic timer/daemon bursts)
// instead of never existing. These bursts create the idle windows that
// drive work stealing on real systems.
func padGuestIdle(apps []*workload.Profile, vcpus int) []*workload.Profile {
	out := append([]*workload.Profile(nil), apps...)
	for len(out) < vcpus {
		out = append(out, workload.GuestIdle())
	}
	return out
}

// replicate returns n clones of a profile.
func replicate(p *workload.Profile, n int) []*workload.Profile {
	out := make([]*workload.Profile, n)
	for i := range out {
		out[i] = p.Clone()
	}
	return out
}

// specWorkloads returns the Fig. 4 workload table: for each named
// workload, the instance lists for VM1 and VM2. mcf's footprint forces the
// paper's 6/2 split (§V-B1); mix runs one instance of each app.
func specWorkloads() []struct {
	Name         string
	Apps1, Apps2 []*workload.Profile
} {
	return []struct {
		Name         string
		Apps1, Apps2 []*workload.Profile
	}{
		{"soplex", replicate(workload.Soplex(), 4), replicate(workload.Soplex(), 4)},
		{"libquantum", replicate(workload.Libquantum(), 4), replicate(workload.Libquantum(), 4)},
		{"mcf", replicate(workload.MCF(), 6), replicate(workload.MCF(), 2)},
		{"milc", replicate(workload.Milc(), 4), replicate(workload.Milc(), 4)},
		{"mix", mixApps(), mixApps()},
	}
}

// mixApps is the Fig. 4 "mix" workload: one instance of each SPEC app.
func mixApps() []*workload.Profile {
	return []*workload.Profile{
		workload.Soplex(), workload.Libquantum(), workload.MCF(), workload.Milc(),
	}
}

// npbWorkloads returns the Fig. 5 table: each NPB app with four threads in
// both VM1 and VM2.
func npbWorkloads() []struct {
	Name string
	App  *workload.Profile
} {
	return []struct {
		Name string
		App  *workload.Profile
	}{
		{"bt", workload.BT()},
		{"cg", workload.CG()},
		{"lu", workload.LU()},
		{"mg", workload.MG()},
		{"sp", workload.SP()},
	}
}
