package mem

import (
	"fmt"
	"math"

	"vprobe/internal/numa"
)

// Policy selects how an allocation is spread across nodes.
type Policy int

const (
	// PolicyFill packs the allocation onto the lowest-numbered node with
	// free memory, spilling to the next node when full. This approximates
	// Xen 4.0.1's non-NUMA-aware domain builder.
	PolicyFill Policy = iota
	// PolicyStripe spreads the allocation evenly across all nodes with
	// capacity — the paper's "memory split into two nodes" setup for VM1.
	PolicyStripe
	// PolicyLocal places everything on a preferred node, spilling in
	// fill order only when the preferred node is full.
	PolicyLocal
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyFill:
		return "fill"
	case PolicyStripe:
		return "stripe"
	case PolicyLocal:
		return "local"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Allocator tracks free machine memory per node and produces distribution
// vectors for VM allocations.
type Allocator struct {
	top  *numa.Topology
	free []int64 // MB per node
}

// NewAllocator returns an allocator covering the whole machine.
func NewAllocator(top *numa.Topology) *Allocator {
	a := &Allocator{top: top, free: make([]int64, top.NumNodes())}
	for _, n := range top.Nodes() {
		a.free[n.ID] = n.MemoryMB
	}
	return a
}

// FreeMB returns the free memory on node id.
func (a *Allocator) FreeMB(id numa.NodeID) int64 { return a.free[id] }

// TotalFreeMB returns machine-wide free memory.
func (a *Allocator) TotalFreeMB() int64 {
	var t int64
	for _, f := range a.free {
		t += f
	}
	return t
}

// Alloc reserves sizeMB according to the policy and returns the resulting
// node distribution of the allocation. preferred is used by PolicyLocal and
// ignored otherwise.
func (a *Allocator) Alloc(sizeMB int64, policy Policy, preferred numa.NodeID) (Dist, error) {
	if sizeMB <= 0 {
		return nil, fmt.Errorf("mem: allocation of %d MB", sizeMB)
	}
	if sizeMB > a.TotalFreeMB() {
		return nil, fmt.Errorf("mem: allocation of %d MB exceeds %d MB free", sizeMB, a.TotalFreeMB())
	}
	n := a.top.NumNodes()
	got := make([]int64, n)
	remaining := sizeMB

	takeFrom := func(node int, want int64) {
		if want <= 0 || a.free[node] <= 0 {
			return
		}
		take := want
		if take > a.free[node] {
			take = a.free[node]
		}
		a.free[node] -= take
		got[node] += take
		remaining -= take
	}

	switch policy {
	case PolicyFill:
		for node := 0; node < n && remaining > 0; node++ {
			takeFrom(node, remaining)
		}
	case PolicyStripe:
		// Repeatedly spread the remainder evenly over nodes that still
		// have room; two passes suffice for any capacity pattern but
		// loop until settled for robustness.
		for remaining > 0 {
			withRoom := 0
			for node := 0; node < n; node++ {
				if a.free[node] > 0 {
					withRoom++
				}
			}
			if withRoom == 0 {
				break
			}
			per := remaining / int64(withRoom)
			if per == 0 {
				per = 1
			}
			before := remaining
			for node := 0; node < n && remaining > 0; node++ {
				want := per
				if want > remaining {
					want = remaining
				}
				takeFrom(node, want)
			}
			if remaining == before {
				break
			}
		}
	case PolicyLocal:
		if int(preferred) < 0 || int(preferred) >= n {
			return nil, fmt.Errorf("mem: PolicyLocal with invalid node %d", preferred)
		}
		takeFrom(int(preferred), remaining)
		for node := 0; node < n && remaining > 0; node++ {
			takeFrom(node, remaining)
		}
	default:
		return nil, fmt.Errorf("mem: unknown policy %v", policy)
	}

	if remaining > 0 {
		// Roll back: capacity checked up front, so this is a bug guard.
		for node := range got {
			a.free[node] += got[node]
		}
		return nil, fmt.Errorf("mem: internal: %d MB unplaced", remaining)
	}

	d := make(Dist, n)
	for node := range got {
		d[node] = float64(got[node]) / float64(sizeMB)
	}
	return d, nil
}

// Release returns sizeMB distributed as d to the free pools.
func (a *Allocator) Release(d Dist, sizeMB int64) {
	for node := range d {
		back := int64(d[node]*float64(sizeMB) + 0.5)
		a.free[node] += back
		if a.free[node] > a.top.Node(numa.NodeID(node)).MemoryMB {
			a.free[node] = a.top.Node(numa.NodeID(node)).MemoryMB
		}
	}
}

// FirstTouch derives an application's page distribution from its VM's
// machine-memory distribution and the node the owning VCPU ran on when the
// application started. locality is the first-touch weight: 1 means pages
// land entirely on the start node (subject to the VM actually having memory
// there), 0 means pages follow the VM's layout.
//
// The guest OS's first-touch allocation can only use machine frames the VM
// owns, so the concentrated component is masked by the VM distribution and
// renormalised before blending.
func FirstTouch(vmDist Dist, startNode numa.NodeID, locality float64) Dist {
	return FirstTouchInto(nil, vmDist, startNode, locality)
}

// FirstTouchInto is FirstTouch writing into a caller-owned vector: dst is
// reused when it has the capacity and the result is returned. dst may be
// nil but must not alias vmDist. The arithmetic matches FirstTouch exactly
// (same blend and renormalisation), so swapping one for the other cannot
// change simulation output.
//
//vprobe:hotpath
func FirstTouchInto(dst, vmDist Dist, startNode numa.NodeID, locality float64) Dist {
	if cap(dst) < len(vmDist) {
		dst = make(Dist, len(vmDist)) //vet:alloc only when the caller-owned buffer is too small; steady state passes pre-grown vectors
	}
	dst = dst[:len(vmDist)]
	w := math.Max(0, math.Min(1, locality))
	if vmDist.LocalFraction(startNode) > 0 {
		for i := range dst {
			c := 0.0
			if numa.NodeID(i) == startNode {
				c = 1
			}
			dst[i] = w*c + (1-w)*vmDist[i]
		}
	} else {
		// VM has no memory on the start node: the guest allocates from
		// wherever the VM has frames.
		for i := range dst {
			dst[i] = w*vmDist[i] + (1-w)*vmDist[i]
		}
	}
	dst.Normalize()
	return dst
}
