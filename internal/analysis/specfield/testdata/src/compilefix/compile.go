// Package compilefix is the fixture compile layer: it consumes the spec
// fields, which is rule 2 of the contract.
package compilefix

import "internal/spec"

// Compile lowers a scenario; every field it touches counts as consumed.
func Compile(s *spec.ScenarioV1) int {
	n := s.VCPUs
	if s.Debug {
		n++
	}
	if s.Version != "" {
		n++
	}
	n += int(s.Seed % 2)
	n += s.Loose
	return n
}
