package xen

import (
	"testing"
)

func mkv(id VCPUID, prio Priority) *VCPU {
	return &VCPU{ID: id, Priority: prio, PinnedPCPU: -1, OnPCPU: -1}
}

func TestEnqueuePriorityOrdering(t *testing.T) {
	p := &PCPU{ID: 0}
	a := mkv(1, PrioOver)
	b := mkv(2, PrioUnder)
	c := mkv(3, PrioOver)
	d := mkv(4, PrioUnder)
	p.Enqueue(a)
	p.Enqueue(b)
	p.Enqueue(c)
	p.Enqueue(d)
	// UNDER VCPUs (b, d in FIFO order) come before OVER (a, c).
	want := []VCPUID{2, 4, 1, 3}
	for i, v := range p.Queue() {
		if v.ID != want[i] {
			t.Fatalf("queue order = %v at %d, want %v", v.ID, i, want)
		}
	}
	if p.Workload != 4 {
		t.Fatalf("workload = %d", p.Workload)
	}
}

func TestDequeueFIFO(t *testing.T) {
	p := &PCPU{ID: 0}
	p.Enqueue(mkv(1, PrioUnder))
	p.Enqueue(mkv(2, PrioUnder))
	if v := p.Dequeue(); v.ID != 1 {
		t.Fatalf("dequeued %d", v.ID)
	}
	if v := p.Dequeue(); v.ID != 2 {
		t.Fatalf("dequeued %d", v.ID)
	}
	if p.Dequeue() != nil {
		t.Fatal("dequeue from empty returned non-nil")
	}
	if p.Workload != 0 {
		t.Fatalf("workload = %d", p.Workload)
	}
}

func TestRemove(t *testing.T) {
	p := &PCPU{ID: 0}
	a, b := mkv(1, PrioUnder), mkv(2, PrioUnder)
	p.Enqueue(a)
	p.Enqueue(b)
	if !p.Remove(b) {
		t.Fatal("Remove failed")
	}
	if p.Remove(b) {
		t.Fatal("double Remove succeeded")
	}
	if p.QueueLen() != 1 || p.Workload != 1 {
		t.Fatalf("len=%d workload=%d", p.QueueLen(), p.Workload)
	}
}

func TestStealableExcludesPinned(t *testing.T) {
	p := &PCPU{ID: 0}
	a := mkv(1, PrioUnder)
	b := mkv(2, PrioUnder)
	b.PinnedPCPU = 0
	p.Enqueue(a)
	p.Enqueue(b)
	s := p.Stealable()
	if len(s) != 1 || s[0].ID != 1 {
		t.Fatalf("stealable = %v", s)
	}
}

func TestVCPUStateStrings(t *testing.T) {
	if StateBlocked.String() != "blocked" || StateRunnable.String() != "runnable" || StateRunning.String() != "running" {
		t.Fatal("state names wrong")
	}
	if VCPUState(9).String() == "" {
		t.Fatal("unknown state stringer empty")
	}
}
