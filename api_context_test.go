package vprobe_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"vprobe"
)

// TestSentinelErrors asserts each sentinel survives the wrapping the public
// API applies, so errors.Is-based handling works.
func TestSentinelErrors(t *testing.T) {
	t.Run("unknown topology", func(t *testing.T) {
		_, err := vprobe.NewSimulator(vprobe.Config{Topology: "toaster"})
		if !errors.Is(err, vprobe.ErrUnknownTopology) {
			t.Fatalf("err = %v, want ErrUnknownTopology", err)
		}
	})
	t.Run("unknown scheduler", func(t *testing.T) {
		_, err := vprobe.NewSimulator(vprobe.Config{Scheduler: "fifo"})
		if !errors.Is(err, vprobe.ErrUnknownScheduler) {
			t.Fatalf("err = %v, want ErrUnknownScheduler", err)
		}
	})
	t.Run("no free vcpu", func(t *testing.T) {
		sim, err := vprobe.NewSimulator(vprobe.Config{})
		if err != nil {
			t.Fatal(err)
		}
		vm, err := sim.AddVM(vprobe.VMConfig{Name: "tiny", MemoryMB: 1024, VCPUs: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := vm.RunApp("hungry"); err != nil {
			t.Fatal(err)
		}
		if err := vm.RunApp("hungry"); !errors.Is(err, vprobe.ErrNoFreeVCPU) {
			t.Fatalf("err = %v, want ErrNoFreeVCPU", err)
		}
	})
	t.Run("already started", func(t *testing.T) {
		sim, err := vprobe.NewSimulator(vprobe.Config{})
		if err != nil {
			t.Fatal(err)
		}
		vm, err := sim.AddVM(vprobe.VMConfig{Name: "vm", MemoryMB: 1024, VCPUs: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := vm.RunApp("hungry"); err != nil {
			t.Fatal(err)
		}
		if _, err := sim.Run(10 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
		_, err = sim.AddVM(vprobe.VMConfig{Name: "late", MemoryMB: 1024, VCPUs: 1})
		if !errors.Is(err, vprobe.ErrAlreadyStarted) {
			t.Fatalf("err = %v, want ErrAlreadyStarted", err)
		}
	})
}

// TestTypedEvents asserts Config.Events receives structured events whose
// typed fields agree with the rendered detail line.
func TestTypedEvents(t *testing.T) {
	var events []vprobe.Event
	sim, err := vprobe.NewSimulator(vprobe.Config{
		Scheduler: vprobe.SchedulerVProbe,
		Seed:      1,
		Events:    vprobe.EventFunc(func(ev vprobe.Event) { events = append(events, ev) }),
	})
	if err != nil {
		t.Fatal(err)
	}
	vm, err := sim.AddVM(vprobe.VMConfig{
		Name: "vm", MemoryMB: 4 * 1024, VCPUs: 2, FillGuestIdle: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.RunApp("soplex"); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no events delivered")
	}
	sawDispatch := false
	for _, ev := range events {
		if ev.Kind == "" || ev.Detail == "" {
			t.Fatalf("untyped event: %+v", ev)
		}
		if ev.String() != ev.Detail {
			t.Fatalf("String() != Detail: %+v", ev)
		}
		if ev.Kind == vprobe.EventDispatch {
			sawDispatch = true
			if ev.VCPU < 0 {
				t.Fatalf("dispatch without VCPU: %+v", ev)
			}
			if ev.Node < 0 {
				t.Fatalf("dispatch without node: %+v", ev)
			}
		}
	}
	if !sawDispatch {
		t.Fatal("no dispatch events in a 2s run")
	}
}

// TestTraceAdapterMatchesDeprecatedTrace asserts the deprecated Config.Trace
// hook and a TraceAdapter sink observe identical lines.
func TestTraceAdapterMatchesDeprecatedTrace(t *testing.T) {
	run := func(cfg vprobe.Config) []string {
		t.Helper()
		sim, err := vprobe.NewSimulator(cfg)
		if err != nil {
			t.Fatal(err)
		}
		vm, err := sim.AddVM(vprobe.VMConfig{Name: "vm", MemoryMB: 2 * 1024, VCPUs: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := vm.RunApp("soplex"); err != nil {
			t.Fatal(err)
		}
		if _, err := sim.Run(500 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
		return nil
	}
	var viaTrace, viaAdapter []string
	run(vprobe.Config{Seed: 3, Trace: func(at time.Duration, line string) {
		viaTrace = append(viaTrace, at.String()+" "+line)
	}})
	run(vprobe.Config{Seed: 3, Events: vprobe.TraceAdapter(func(at time.Duration, line string) {
		viaAdapter = append(viaAdapter, at.String()+" "+line)
	})})
	if len(viaTrace) == 0 {
		t.Fatal("deprecated Trace hook saw nothing")
	}
	if len(viaTrace) != len(viaAdapter) {
		t.Fatalf("line counts differ: %d vs %d", len(viaTrace), len(viaAdapter))
	}
	for i := range viaTrace {
		if viaTrace[i] != viaAdapter[i] {
			t.Fatalf("line %d differs:\n  trace:   %s\n  adapter: %s",
				i, viaTrace[i], viaAdapter[i])
		}
	}
}

// TestRunContextCancelled asserts a cancelled context interrupts the
// simulation with a wrapped context error.
func TestRunContextCancelled(t *testing.T) {
	sim, err := vprobe.NewSimulator(vprobe.Config{})
	if err != nil {
		t.Fatal(err)
	}
	vm, err := sim.AddVM(vprobe.VMConfig{Name: "vm", MemoryMB: 1024, VCPUs: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := vm.RunApp("hungry"); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = sim.RunContext(ctx, time.Hour)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestTypedServerHelpers asserts RunMemcached/RunRedis attach servers and
// the deprecated RunServer shim still dispatches to the same profiles.
func TestTypedServerHelpers(t *testing.T) {
	build := func(attach func(vm *vprobe.VM) error) *vprobe.Report {
		t.Helper()
		sim, err := vprobe.NewSimulator(vprobe.Config{Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		vm, err := sim.AddVM(vprobe.VMConfig{
			Name: "srv", MemoryMB: 8 * 1024, VCPUs: 4, FillGuestIdle: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := attach(vm); err != nil {
			t.Fatal(err)
		}
		rep, err := sim.Run(2 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	typed := build(func(vm *vprobe.VM) error { return vm.RunRedis(4000) })
	if typed.TotalRequests() <= 0 {
		t.Fatal("RunRedis served no requests")
	}
	shim := build(func(vm *vprobe.VM) error { return vm.RunServer("redis", 4000) })
	if typed.TotalRequests() != shim.TotalRequests() {
		t.Fatalf("RunRedis (%v reqs) and RunServer shim (%v reqs) diverge",
			typed.TotalRequests(), shim.TotalRequests())
	}

	mc := build(func(vm *vprobe.VM) error { return vm.RunMemcached(64) })
	if mc.TotalRequests() <= 0 {
		t.Fatal("RunMemcached served no requests")
	}

	sim, err := vprobe.NewSimulator(vprobe.Config{})
	if err != nil {
		t.Fatal(err)
	}
	vm, err := sim.AddVM(vprobe.VMConfig{Name: "x", MemoryMB: 1024, VCPUs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.RunServer("etcd", 1); err == nil {
		t.Fatal("unknown server kind accepted")
	}
}
