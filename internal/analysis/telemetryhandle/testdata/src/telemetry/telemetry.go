// Package telemetry is the fixture counterpart of internal/telemetry:
// just enough surface for handle-set detection.
package telemetry

// Counter is a monotonically increasing handle.
type Counter struct{ n int64 }

// Inc bumps the counter.
func (c *Counter) Inc() { c.n++ }

// Gauge is a set-to-value handle.
type Gauge struct{ v float64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.v = v }
