package harness

import (
	"testing"
	"time"
)

func TestStopwatchElapsed(t *testing.T) {
	sw := StartStopwatch()
	if d := sw.Elapsed(); d < 0 {
		t.Fatalf("Elapsed() = %v, want >= 0", d)
	}
	time.Sleep(time.Millisecond)
	if d := sw.Elapsed(); d < time.Millisecond {
		t.Fatalf("Elapsed() = %v after 1ms sleep, want >= 1ms", d)
	}
}

func TestStopwatchMonotone(t *testing.T) {
	sw := StartStopwatch()
	a := sw.Elapsed()
	b := sw.Elapsed()
	if b < a {
		t.Fatalf("Elapsed went backwards: %v then %v", a, b)
	}
}
