package spec_test

import (
	"errors"
	"testing"

	"vprobe/internal/spec"
)

// TestTraceKeyExcluded pins the cache contract for the flight recorder:
// trace and trace_limit are diagnostic toggles that never change results,
// so — like workers and place_check — they must not change the canonical
// key on either spec.
func TestTraceKeyExcluded(t *testing.T) {
	sc := spec.ScenarioV1{VMs: []spec.VMV1{{Name: "a", MemoryMB: 512, VCPUs: 1}}}
	traced := sc
	traced.Trace = true
	traced.TraceLimit = 4096
	if traced.Key() != sc.Key() {
		t.Error("Trace/TraceLimit changed the scenario key")
	}

	cl := spec.ClusterV1{Hosts: 2, Seed: 5}
	clTraced := cl
	clTraced.Trace = true
	clTraced.TraceLimit = 4096
	if clTraced.Key() != cl.Key() {
		t.Error("Trace/TraceLimit changed the cluster key")
	}
}

// TestTraceValidation covers the trace config's error paths on both specs.
func TestTraceValidation(t *testing.T) {
	base := spec.ScenarioV1{VMs: []spec.VMV1{{Name: "a", MemoryMB: 512, VCPUs: 1}}}
	good := base
	good.Trace = true
	good.TraceLimit = 1000
	if err := good.Validate(); err != nil {
		t.Fatalf("valid traced scenario rejected: %v", err)
	}
	negative := base
	negative.Trace = true
	negative.TraceLimit = -1
	if err := negative.Validate(); !errors.Is(err, spec.ErrInvalid) {
		t.Fatalf("negative trace_limit error = %v, want ErrInvalid", err)
	}
	limitOnly := base
	limitOnly.TraceLimit = 10
	if err := limitOnly.Validate(); !errors.Is(err, spec.ErrInvalid) {
		t.Fatalf("trace_limit without trace error = %v, want ErrInvalid", err)
	}

	cl := spec.ClusterV1{Hosts: 2}
	clGood := cl
	clGood.Trace = true
	if err := clGood.Validate(); err != nil {
		t.Fatalf("valid traced cluster rejected: %v", err)
	}
	clBad := cl
	clBad.TraceLimit = 5
	if err := clBad.Validate(); !errors.Is(err, spec.ErrInvalid) {
		t.Fatalf("cluster trace_limit without trace error = %v, want ErrInvalid", err)
	}
}
