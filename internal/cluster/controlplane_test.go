package cluster

import (
	"context"
	"fmt"
	"regexp"
	"strings"
	"testing"

	"vprobe/internal/sim"
)

// overloadCfg is a single host drowning in long-lived arrivals: heads
// block, retries pile up, rejections happen — the control plane's natural
// habitat.
func overloadCfg() Config {
	return Config{
		Hosts:             1,
		Horizon:           120 * sim.Second,
		Seed:              5,
		ArrivalsPerSecond: 1.0,
		MeanLifetime:      500 * sim.Second,
		Workers:           1,
	}
}

func TestClusterPreempts(t *testing.T) {
	cfg := overloadCfg()
	cfg.Hosts = 2
	cfg.Preempt = true
	rep, log := runWith(t, cfg)
	if rep.Preemptions == 0 {
		t.Fatal("an overloaded cluster with preemption on never preempted")
	}
	if got := strings.Count(log, string(EventVMPreempted)); got != rep.Preemptions {
		t.Fatalf("%d vm-preempt events, stats say %d", got, rep.Preemptions)
	}
	if rep.PreemptKills > rep.Preemptions {
		t.Fatalf("kills %d > preemptions %d", rep.PreemptKills, rep.Preemptions)
	}
	// Preemption exists to serve the higher classes: at equal load it must
	// not make the critical class wait longer than the no-preemption
	// baseline does.
	base := cfg
	base.Preempt = false
	baseRep, _ := runWith(t, base)
	crit := func(r *Report) PriorityReport {
		for _, p := range r.PerPriority {
			if p.Class == "critical" {
				return p
			}
		}
		t.Fatal("per-priority table missing the critical class")
		return PriorityReport{}
	}
	with, without := crit(rep), crit(baseRep)
	if with.Placed == 0 {
		t.Fatal("no critical VM ever placed")
	}
	if with.MeanWait > without.MeanWait {
		t.Fatalf("critical mean wait %v with preemption, %v without",
			with.MeanWait, without.MeanWait)
	}
}

func TestClusterGangAllOrNothing(t *testing.T) {
	cfg := Config{
		Hosts:             3,
		Horizon:           120 * sim.Second,
		Seed:              9,
		ArrivalsPerSecond: 0.5,
		MeanLifetime:      90 * sim.Second,
		GangFraction:      0.4,
		GangSize:          3,
		Gang:              true,
		Workers:           1,
	}
	rep, log := runWith(t, cfg)
	if rep.GangsAdmitted == 0 {
		t.Fatal("no gang admitted at 40% gang fraction")
	}
	if got := strings.Count(log, string(EventGangAdmitted)); got != rep.GangsAdmitted {
		t.Fatalf("%d gang-admit events, stats say %d", got, rep.GangsAdmitted)
	}
	// All-or-nothing: every gang-admit names a distinct group and its full
	// member count.
	admitRe := regexp.MustCompile(`gang (g\d+) admitted: (\d+) VMs`)
	admitted := map[string]bool{}
	for _, m := range admitRe.FindAllStringSubmatch(log, -1) {
		admitted[m[1]] = true
		if m[2] != fmt.Sprint(cfg.GangSize) {
			t.Fatalf("gang %s admitted with %s VMs, want %d", m[1], m[2], cfg.GangSize)
		}
	}
	if len(admitted) != rep.GangsAdmitted {
		t.Fatalf("admitted %d distinct gangs, stats say %d", len(admitted), rep.GangsAdmitted)
	}
}

// TestClusterGangLoadInvariance is the equal-load guarantee: toggling the
// gang admission mechanism must not change the arrival stream (VMs, sizes,
// priorities, times) — only what admission does with it.
func TestClusterGangLoadInvariance(t *testing.T) {
	arrivals := func(gang bool) string {
		cfg := Config{
			Hosts:             2,
			Horizon:           90 * sim.Second,
			Seed:              4,
			ArrivalsPerSecond: 0.6,
			GangFraction:      0.3,
			Gang:              gang,
			Workers:           1,
		}
		var log strings.Builder
		cfg.Events = func(ev Event) {
			if ev.Kind == EventVMArrive {
				fmt.Fprintf(&log, "%v %s %s\n", ev.At, ev.VM, ev.Detail)
			}
		}
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		return log.String()
	}
	on, off := arrivals(true), arrivals(false)
	if on == "" || on != off {
		t.Fatal("arrival stream differs between gang admission on and off")
	}
}

func TestClusterBackfills(t *testing.T) {
	// Churn on one host: departures keep opening small holes while large
	// heads stay blocked in backoff — the hole/head mix backfill needs.
	cfg := Config{
		Hosts:             1,
		Horizon:           180 * sim.Second,
		Seed:              5,
		ArrivalsPerSecond: 0.9,
		MeanLifetime:      60 * sim.Second,
		Backfill:          true,
		Workers:           1,
	}
	rep, log := runWith(t, cfg)
	if rep.Backfills == 0 {
		t.Fatal("a churning overloaded host with backfill on never backfilled")
	}
	if got := strings.Count(log, string(EventBackfill)); got != rep.Backfills {
		t.Fatalf("%d vm-backfill events, stats say %d", got, rep.Backfills)
	}
	// Backfill strictly adds placements over the blocking baseline.
	base := cfg
	base.Backfill = false
	baseRep, _ := runWith(t, base)
	if rep.Placed < baseRep.Placed {
		t.Fatalf("backfill placed %d < baseline %d", rep.Placed, baseRep.Placed)
	}
}

func TestClusterDeschedules(t *testing.T) {
	cfg := Config{
		Hosts:             3,
		Horizon:           240 * sim.Second,
		Seed:              3,
		ArrivalsPerSecond: 0.25,
		MeanLifetime:      40 * sim.Second,
		Policy:            "spread", // scatter VMs so hosts fragment
		DeschedulePeriod:  10 * sim.Second,
		RebalancePeriod:   -1, // isolate the descheduler
		Workers:           1,
	}
	rep, log := runWith(t, cfg)
	if rep.DeschedMoves == 0 {
		t.Fatal("a fragmented low-load cluster never descheduled")
	}
	if got := strings.Count(log, string(EventDeschedule)); got != rep.DeschedMoves {
		t.Fatalf("%d deschedule events, stats say %d", got, rep.DeschedMoves)
	}
	if rep.Migrations < rep.DeschedMoves {
		t.Fatalf("migrations %d < deschedule moves %d", rep.Migrations, rep.DeschedMoves)
	}
}

// TestControlPlaneDeterministicAcrossWorkers is the subsystem's acceptance
// bar: with every mechanism enabled at once, a fixed seed produces
// byte-identical reports and event logs at workers 1, 4, and 8.
func TestControlPlaneDeterministicAcrossWorkers(t *testing.T) {
	base := Config{
		Hosts:             3,
		Horizon:           120 * sim.Second,
		Seed:              6,
		ArrivalsPerSecond: 0.8,
		MeanLifetime:      150 * sim.Second,
		Preempt:           true,
		Gang:              true,
		GangFraction:      0.2,
		Backfill:          true,
		DeschedulePeriod:  15 * sim.Second,
	}
	var wantRep, wantLog string
	for _, workers := range []int{1, 4, 8} {
		cfg := base
		cfg.Workers = workers
		rep, log := runWith(t, cfg)
		if wantRep == "" {
			wantRep, wantLog = rep.String(), log
			continue
		}
		if rep.String() != wantRep {
			t.Fatalf("report diverges at workers=%d:\n--- workers=1\n%s\n--- workers=%d\n%s",
				workers, wantRep, workers, rep.String())
		}
		if log != wantLog {
			t.Fatalf("event log diverges at workers=%d", workers)
		}
	}
}

// ---- admission retry queue (satellite coverage) ----

// TestRetryBackoffSchedule checks the linear backoff contract: attempt k
// re-queues with delay k*RetryBackoff, visible in the retry events.
func TestRetryBackoffSchedule(t *testing.T) {
	cfg := overloadCfg()
	_, log := runWith(t, cfg)
	re := regexp.MustCompile(`vm (vm\d+) queued \(attempt (\d+), retry in ([^)]+)\)`)
	matches := re.FindAllStringSubmatch(log, -1)
	if len(matches) == 0 {
		t.Fatal("no retry events in an overloaded run")
	}
	backoff := 5 * sim.Second // the default RetryBackoff
	for _, m := range matches {
		var attempt int
		fmt.Sscanf(m[2], "%d", &attempt)
		want := (backoff * sim.Duration(attempt)).String()
		if m[3] != want {
			t.Fatalf("vm %s attempt %d retries in %s, want %s", m[1], attempt, m[3], want)
		}
	}
}

// TestRetryRejectionOrdering checks the MaxRetries contract: a rejected VM
// reports MaxRetries+1 attempts, and its rejection is the last event it
// ever emits.
func TestRetryRejectionOrdering(t *testing.T) {
	cfg := overloadCfg()
	cfg.MaxRetries = 2
	var events []Event
	cfg.Events = func(ev Event) { events = append(events, ev) }
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	lastKind := map[string]EventKind{}
	retries := map[string]int{}
	rejected := map[string]bool{}
	for _, ev := range events {
		lastKind[ev.VM] = ev.Kind
		switch ev.Kind {
		case EventVMRetry:
			retries[ev.VM]++
		case EventVMReject:
			rejected[ev.VM] = true
			if !strings.Contains(ev.Detail, fmt.Sprintf("after %d attempts", cfg.MaxRetries+1)) {
				t.Fatalf("rejection after wrong attempt count: %q", ev.Detail)
			}
		}
	}
	if len(rejected) == 0 {
		t.Fatal("overloaded host with MaxRetries=2 rejected nothing")
	}
	for vm := range rejected {
		if lastKind[vm] != EventVMReject {
			t.Fatalf("vm %s emitted %s after its rejection", vm, lastKind[vm])
		}
		if retries[vm] != cfg.MaxRetries {
			t.Fatalf("vm %s rejected after %d retry events, want %d",
				vm, retries[vm], cfg.MaxRetries)
		}
	}
}

// TestRetryInterleavingDeterministic pins the retry/arrival interleaving:
// an overloaded run (dense retries racing fresh arrivals) must be
// byte-identical at workers 1, 4, and 8.
func TestRetryInterleavingDeterministic(t *testing.T) {
	var wantRep, wantLog string
	for _, workers := range []int{1, 4, 8} {
		cfg := overloadCfg()
		cfg.Hosts = 2
		cfg.Workers = workers
		rep, log := runWith(t, cfg)
		if wantRep == "" {
			wantRep, wantLog = rep.String(), log
			continue
		}
		if rep.String() != wantRep {
			t.Fatalf("report diverges at workers=%d", workers)
		}
		if log != wantLog {
			t.Fatalf("event log diverges at workers=%d", workers)
		}
	}
}
