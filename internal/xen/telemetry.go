package xen

import (
	"vprobe/internal/core"
	"vprobe/internal/telemetry"
)

// quantumBucketsUS are the quantum-length histogram bounds in
// microseconds: sub-millisecond housekeeping bursts up to the full 30 ms
// timeslice (+Inf catches configs with longer slices).
var quantumBucketsUS = []float64{100, 1000, 5000, 10000, 20000, 30000}

// Telemetry is the hypervisor's pre-bound handle set. All handles are
// registered once by AttachTelemetry; hot paths guard on h.Tele != nil
// and then update plain fields — no lookups, no allocation. The gauges
// are refreshed by the sampler hook just before each snapshot.
type Telemetry struct {
	// Dispatches counts quantum dispatches (Algorithm 2 runs once per
	// idle-PCPU dispatch attempt).
	Dispatches *telemetry.Counter
	// StealsLocal / StealsRemote count work-stealing migrations by
	// whether the victim queue was on the stealer's node.
	StealsLocal  *telemetry.Counter
	StealsRemote *telemetry.Counter
	// Reassignments counts Algorithm 1 per-period VCPU->node assignments.
	Reassignments *telemetry.Counter
	// QuantumUS observes the effective length of every completed quantum.
	QuantumUS *telemetry.Histogram
	// CensusFR/FI/T hold the LLC class census of the last sampling period
	// (Eq. 3): frequent, infrequent, and trivial LLC-access VCPUs.
	CensusFR *telemetry.Gauge
	CensusFI *telemetry.Gauge
	CensusT  *telemetry.Gauge
	// RunqDepth is the total number of queued (runnable, not running)
	// VCPUs at sample time.
	RunqDepth *telemetry.Gauge
	// RemoteRatio is the lifetime remote-access ratio across all VCPUs.
	RemoteRatio *telemetry.Gauge
	// OverheadUS is the cumulative sampling+partitioning overhead time
	// (the Table III numerator) in microseconds.
	OverheadUS *telemetry.Gauge
	// EventsFired / EventsPending / EventPoolSize expose the sim layer:
	// cumulative events executed, queue depth, and free-list size.
	EventsFired   *telemetry.Gauge
	EventsPending *telemetry.Gauge
	EventPoolSize *telemetry.Gauge
	// EventsPerQuantum is engine events fired per dispatch over the last
	// sample interval.
	EventsPerQuantum *telemetry.Gauge

	h             *Hypervisor
	lastFired     uint64
	lastDispatchN float64
}

// PolicyTelemetry is implemented by scheduling policies that export their
// own series (e.g. BRM's global-lock convoy metrics). AttachTelemetry
// forwards the registry and label set to the hypervisor's policy when it
// implements this.
type PolicyTelemetry interface {
	AttachTelemetry(reg *telemetry.Registry, labels ...telemetry.Label)
}

// AttachTelemetry registers the hypervisor's series in reg (tagged with
// labels, e.g. host="host3" in a cluster), binds the handle set to h, and
// hooks the gauge refresh into s. Call it once per hypervisor, before the
// sampler starts. Attaching telemetry never changes simulation results:
// updates are write-only stores and the sample hook only reads.
func AttachTelemetry(h *Hypervisor, s *telemetry.Sampler, labels ...telemetry.Label) *Telemetry {
	reg := s.Registry()
	t := &Telemetry{
		Dispatches: reg.Counter("xen_dispatches_total",
			"Quantum dispatches (VCPU starts running on a PCPU).", labels...),
		StealsLocal: reg.Counter("xen_steals_total",
			"Work-stealing migrations by victim locality.",
			append([]telemetry.Label{{Key: "kind", Value: "local"}}, labels...)...),
		StealsRemote: reg.Counter("xen_steals_total",
			"Work-stealing migrations by victim locality.",
			append([]telemetry.Label{{Key: "kind", Value: "remote"}}, labels...)...),
		Reassignments: reg.Counter("xen_partition_reassignments_total",
			"Algorithm 1 VCPU-to-node assignments applied at period ends.", labels...),
		QuantumUS: reg.Histogram("xen_quantum_us",
			"Effective quantum length in microseconds.", quantumBucketsUS, labels...),
		CensusFR: reg.Gauge("xen_llc_class_vcpus",
			"VCPUs per LLC class in the last sampling period.",
			append([]telemetry.Label{{Key: "class", Value: "fr"}}, labels...)...),
		CensusFI: reg.Gauge("xen_llc_class_vcpus",
			"VCPUs per LLC class in the last sampling period.",
			append([]telemetry.Label{{Key: "class", Value: "fi"}}, labels...)...),
		CensusT: reg.Gauge("xen_llc_class_vcpus",
			"VCPUs per LLC class in the last sampling period.",
			append([]telemetry.Label{{Key: "class", Value: "t"}}, labels...)...),
		RunqDepth: reg.Gauge("xen_runq_depth",
			"Queued runnable VCPUs across all PCPUs.", labels...),
		RemoteRatio: reg.Gauge("xen_remote_access_ratio",
			"Lifetime remote-memory-access ratio.", labels...),
		OverheadUS: reg.Gauge("xen_sample_overhead_us",
			"Cumulative PMU sampling and partitioning overhead (Table III numerator).",
			labels...),
		EventsFired: reg.Gauge("sim_events_fired",
			"Cumulative simulation events executed.", labels...),
		EventsPending: reg.Gauge("sim_events_pending",
			"Events waiting in the engine queue.", labels...),
		EventPoolSize: reg.Gauge("sim_event_pool_size",
			"Recycled events in the engine free list.", labels...),
		EventsPerQuantum: reg.Gauge("sim_events_per_quantum",
			"Engine events fired per dispatch over the last sample interval.",
			labels...),
		h: h,
	}
	h.Tele = t
	s.OnSample(t.sample)
	if pt, ok := h.Policy.(PolicyTelemetry); ok {
		pt.AttachTelemetry(reg, labels...)
	}
	return t
}

// NoteSteal classifies one successful steal. Policies call it after
// removing the victim from its queue; local reports whether the victim
// queue was on the stealing PCPU's node.
func (t *Telemetry) NoteSteal(local bool) {
	if local {
		t.StealsLocal.Inc()
	} else {
		t.StealsRemote.Inc()
	}
}

// sample refreshes the derived gauges. It must only read: the sampler
// runs it between simulation events, and byte-identical results with
// telemetry on or off depend on it having no side effects on the model.
func (t *Telemetry) sample() {
	h := t.h
	depth := 0
	for _, p := range h.PCPUs {
		depth += p.QueueLen()
	}
	t.RunqDepth.Set(float64(depth))

	var total, remote float64
	for _, v := range h.vcpus {
		total += v.Counters.Total()
		remote += v.Counters.Remote
	}
	ratio := 0.0
	if total > 0 {
		ratio = remote / total
	}
	t.RemoteRatio.Set(ratio)
	t.OverheadUS.Set(float64(h.SampleOverhead))

	fired := h.Engine.Fired()
	t.EventsFired.Set(float64(fired))
	t.EventsPending.Set(float64(h.Engine.Pending()))
	t.EventPoolSize.Set(float64(h.Engine.PoolSize()))
	dispatches := t.Dispatches.Value()
	if dq := dispatches - t.lastDispatchN; dq > 0 {
		t.EventsPerQuantum.Set(float64(fired-t.lastFired) / dq)
	} else {
		t.EventsPerQuantum.Set(0)
	}
	t.lastFired, t.lastDispatchN = fired, dispatches
}

// noteCensus publishes the period's LLC class census from the analyzer
// stats (called by SampleAll while the stats are hot).
func (t *Telemetry) noteCensus(stats []core.Stat) {
	var fr, fi, tr float64
	for i := range stats {
		switch stats[i].Type {
		case core.TypeFR:
			fr++
		case core.TypeFI:
			fi++
		case core.TypeT:
			tr++
		}
	}
	t.CensusFR.Set(fr)
	t.CensusFI.Set(fi)
	t.CensusT.Set(tr)
}
