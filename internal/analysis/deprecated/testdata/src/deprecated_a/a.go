// Package deprecated_a is the deprecated fixture: callers of the root
// package's legacy surface.
package deprecated_a

import "vprobe"

// Trace is a local type with a same-named field: not the vprobe shim,
// never flagged.
type Trace struct {
	Trace string
}

// RunServer is a local function shadowing the shim name: not flagged.
func RunServer() {}

func useField(f func(string)) vprobe.Config {
	var cfg vprobe.Config
	cfg.Trace = f // want `vprobe.Trace is deprecated`
	return vprobe.Config{
		Trace: f, // want `vprobe.Trace is deprecated`
	}
}

func useShim(vm *vprobe.VM) error {
	if err := vm.RunServer("memcached", 8); err != nil { // want `vprobe.RunServer is deprecated`
		return err
	}
	return vm.RunApp("soplex") // the supported path stays clean
}

func local() {
	RunServer()
	t := Trace{Trace: "mine"}
	_ = t.Trace
}

func sanctioned(vm *vprobe.VM, f func(string)) {
	var cfg vprobe.Config
	cfg.Trace = f //vet:deprecated compat bridge keeps the old hook alive
	//vet:deprecated exercising the shim on purpose
	_ = vm.RunServer("redis", 2)
	_ = cfg
}

// method value references are uses too.
func methodValue(vm *vprobe.VM) func(string, int) error {
	return vm.RunServer // want `vprobe.RunServer is deprecated`
}
