package vprobe_test

import (
	"strings"
	"testing"
	"time"

	"vprobe"
	"vprobe/internal/workload"
)

func buildStandard(t *testing.T, cfg vprobe.Config) (*vprobe.Simulator, *vprobe.VM) {
	t.Helper()
	sim, err := vprobe.NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	vm1, err := sim.AddVM(vprobe.VMConfig{
		Name: "vm1", MemoryMB: 15 * 1024, VCPUs: 8,
		Memory: vprobe.MemStripe, FillGuestIdle: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := vm1.RunProfile(workload.Soplex().Scale(0.15)); err != nil {
			t.Fatal(err)
		}
	}
	vm3, err := sim.AddVM(vprobe.VMConfig{Name: "vm3", MemoryMB: 1024, VCPUs: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := vm3.RunApp("hungry"); err != nil {
			t.Fatal(err)
		}
	}
	return sim, vm1
}

func TestAPIEndToEnd(t *testing.T) {
	sim, vm1 := buildStandard(t, vprobe.Config{Scheduler: vprobe.SchedulerVProbe, Seed: 2})
	report, err := sim.RunWatching(10*time.Minute, vm1)
	if err != nil {
		t.Fatal(err)
	}
	apps := report.VMApps("vm1")
	if len(apps) != 4 {
		t.Fatalf("vm1 apps = %d, want 4 (background load must be filtered)", len(apps))
	}
	for _, a := range apps {
		if !a.Finished {
			t.Fatalf("app %s unfinished at %v", a.App, report.End)
		}
		if a.TotalAccesses <= 0 || a.RemoteRatio < 0 || a.RemoteRatio > 1 {
			t.Fatalf("bad counters: %+v", a)
		}
	}
	if !report.AllFinished() {
		t.Fatal("AllFinished = false with all apps done")
	}
	if report.MeanExecTime("vm1") <= 0 {
		t.Fatal("MeanExecTime = 0")
	}
	if report.CPUBusy <= 0 {
		t.Fatal("no busy time recorded")
	}
	if report.OverheadFraction <= 0 {
		t.Fatal("vProbe overhead not reported")
	}
	s := report.String()
	for _, want := range []string{"vprobe", "vm1", "soplex"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report missing %q:\n%s", want, s)
		}
	}
}

func TestAPIDefaults(t *testing.T) {
	sim, err := vprobe.NewSimulator(vprobe.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if sim.Hypervisor().Top.NumNodes() != 2 {
		t.Fatal("default topology is not the Table I machine")
	}
}

func TestAPIErrors(t *testing.T) {
	if _, err := vprobe.NewSimulator(vprobe.Config{Topology: "laptop"}); err == nil {
		t.Fatal("unknown topology accepted")
	}
	if _, err := vprobe.NewSimulator(vprobe.Config{Scheduler: "fifo"}); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
	sim, _ := vprobe.NewSimulator(vprobe.Config{})
	vm, err := sim.AddVM(vprobe.VMConfig{Name: "v", MemoryMB: 1024, VCPUs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.RunApp("doom"); err == nil {
		t.Fatal("unknown app accepted")
	}
	if err := vm.RunApp("povray"); err != nil {
		t.Fatal(err)
	}
	if err := vm.RunApp("povray"); err == nil {
		t.Fatal("attach beyond VCPU count accepted")
	}
	if err := vm.RunServer("etcd", 1); err == nil {
		t.Fatal("unknown server kind accepted")
	}
	if _, err := sim.Run(-time.Second); err == nil {
		t.Fatal("negative horizon accepted")
	}
	if _, err := sim.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.AddVM(vprobe.VMConfig{Name: "late", MemoryMB: 64, VCPUs: 1}); err == nil {
		t.Fatal("AddVM after Run accepted")
	}
}

func TestAPISchedulersList(t *testing.T) {
	ss := vprobe.Schedulers()
	if len(ss) != 5 || ss[0] != vprobe.SchedulerCredit || ss[1] != vprobe.SchedulerVProbe {
		t.Fatalf("Schedulers() = %v", ss)
	}
}

func TestAPIDeterminism(t *testing.T) {
	run := func() time.Duration {
		sim, vm1 := buildStandard(t, vprobe.Config{Scheduler: vprobe.SchedulerVProbe, Seed: 9})
		report, err := sim.RunWatching(10*time.Minute, vm1)
		if err != nil {
			t.Fatal(err)
		}
		return report.End
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same-seed runs differ: %v vs %v", a, b)
	}
}

func TestAPITraceHook(t *testing.T) {
	lines := 0
	sim, err := vprobe.NewSimulator(vprobe.Config{
		Trace: func(at time.Duration, line string) { lines++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	vm, _ := sim.AddVM(vprobe.VMConfig{Name: "v", MemoryMB: 1024, VCPUs: 1})
	vm.RunApp("hungry")
	if _, err := sim.Run(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if lines == 0 {
		t.Fatal("trace hook never fired")
	}
}

func TestAPISamplePeriodOverride(t *testing.T) {
	sim, vm1 := buildStandard(t, vprobe.Config{
		Scheduler:    vprobe.SchedulerVProbe,
		SamplePeriod: 100 * time.Millisecond,
		Seed:         2,
	})
	report, err := sim.RunWatching(10*time.Minute, vm1)
	if err != nil {
		t.Fatal(err)
	}
	// 10x the sampling rate: overhead fraction must exceed the default
	// period's.
	simDefault, vmD := buildStandard(t, vprobe.Config{Scheduler: vprobe.SchedulerVProbe, Seed: 2})
	reportDefault, err := simDefault.RunWatching(10*time.Minute, vmD)
	if err != nil {
		t.Fatal(err)
	}
	if report.OverheadFraction <= reportDefault.OverheadFraction {
		t.Fatalf("100ms period overhead %v not above 1s period %v",
			report.OverheadFraction, reportDefault.OverheadFraction)
	}
}

func TestAPIUMATopologySafe(t *testing.T) {
	// NUMA-aware policies must run without incident on a single node.
	sim, err := vprobe.NewSimulator(vprobe.Config{
		Scheduler: vprobe.SchedulerVProbe,
		Topology:  vprobe.TopologyUMA,
	})
	if err != nil {
		t.Fatal(err)
	}
	vm, err := sim.AddVM(vprobe.VMConfig{Name: "v", MemoryMB: 4096, VCPUs: 4, FillGuestIdle: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := vm.RunProfile(workload.Libquantum().Scale(0.05)); err != nil {
			t.Fatal(err)
		}
	}
	report, err := sim.Run(5 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range report.VMApps("v") {
		if a.RemoteRatio != 0 {
			t.Fatalf("UMA produced remote accesses: %+v", a)
		}
	}
}

func TestAPIPageMigrationReducesRemote(t *testing.T) {
	run := func(migrate bool) float64 {
		sim, vm1 := buildStandard(t, vprobe.Config{
			Scheduler:     vprobe.SchedulerCredit,
			Seed:          4,
			PageMigration: migrate,
		})
		report, err := sim.RunWatching(10*time.Minute, vm1)
		if err != nil {
			t.Fatal(err)
		}
		var remote, total float64
		for _, a := range report.VMApps("vm1") {
			remote += a.RemoteAccesses
			total += a.TotalAccesses
		}
		return remote / total
	}
	plain := run(false)
	migrated := run(true)
	if migrated >= plain {
		t.Fatalf("page migration did not reduce remote ratio: %.3f vs %.3f", migrated, plain)
	}
}
