package perf

import (
	"math"
	"testing"
	"testing/quick"

	"vprobe/internal/mem"
	"vprobe/internal/numa"
	"vprobe/internal/sim"
	"vprobe/internal/workload"
)

func testSystem() *System {
	return NewSystem(numa.XeonE5620())
}

func baseRequest(p *workload.Profile) Request {
	return Request{
		Profile:  p,
		Quantum:  30 * sim.Millisecond,
		RunNode:  0,
		PageDist: mem.Concentrated(2, 0),
	}
}

func TestExecuteBasicAccounting(t *testing.T) {
	s := testSystem()
	r := baseRequest(workload.Soplex())
	o := s.Execute(r)
	if o.Instructions <= 0 {
		t.Fatal("no instructions retired")
	}
	// RPTI relation: refs = instr * rpti/1000 for the active phase.
	wantRefs := o.Instructions * 16.0 / 1000
	if math.Abs(o.LLCRef-wantRefs) > 1e-6*wantRefs {
		t.Fatalf("LLCRef = %v, want %v", o.LLCRef, wantRefs)
	}
	if o.LLCMiss > o.LLCRef {
		t.Fatal("misses exceed references")
	}
	var nodeSum float64
	for _, v := range o.Node {
		nodeSum += v
	}
	if math.Abs(nodeSum-o.LLCMiss) > 1e-6*o.LLCMiss {
		t.Fatalf("node accesses %v != misses %v", nodeSum, o.LLCMiss)
	}
	if o.Remote != 0 {
		t.Fatalf("all-local pages produced %v remote accesses", o.Remote)
	}
	if o.Used != r.Quantum {
		t.Fatalf("uncapped run used %v, want full quantum %v", o.Used, r.Quantum)
	}
}

func TestRemotePagesAreRemoteAccesses(t *testing.T) {
	s := testSystem()
	r := baseRequest(workload.Libquantum())
	r.PageDist = mem.Dist{0.3, 0.7}
	o := s.Execute(r)
	want := o.LLCMiss * 0.7
	if math.Abs(o.Remote-want) > 1e-6*want {
		t.Fatalf("remote = %v, want %v", o.Remote, want)
	}
}

func TestRemoteLatencySlowsExecution(t *testing.T) {
	s := testSystem()
	local := baseRequest(workload.Libquantum())
	remote := baseRequest(workload.Libquantum())
	remote.PageDist = mem.Concentrated(2, 1)
	lo := s.Execute(local)
	ro := s.Execute(remote)
	if ro.Instructions >= lo.Instructions {
		t.Fatalf("remote run retired %v >= local %v", ro.Instructions, lo.Instructions)
	}
	// A compute-bound app barely cares.
	localC := baseRequest(workload.Povray())
	remoteC := baseRequest(workload.Povray())
	remoteC.PageDist = mem.Concentrated(2, 1)
	lc := s.Execute(localC)
	rc := s.Execute(remoteC)
	slowdownMem := lo.Instructions / ro.Instructions
	slowdownCPU := lc.Instructions / rc.Instructions
	if slowdownCPU > 1.02 {
		t.Fatalf("povray remote slowdown %v, want ~1", slowdownCPU)
	}
	if slowdownMem < 1.10 {
		t.Fatalf("libquantum remote slowdown %v, want >= 1.10", slowdownMem)
	}
}

func TestLLCContentionRaisesMissRate(t *testing.T) {
	s := testSystem()
	alone := baseRequest(workload.LU())
	crowded := baseRequest(workload.LU())
	crowded.CoRunnerRPTI = 60 // three thrashing co-runners
	oa := s.Execute(alone)
	oc := s.Execute(crowded)
	if oc.MissRate <= oa.MissRate {
		t.Fatalf("contended miss rate %v <= solo %v", oc.MissRate, oa.MissRate)
	}
	if oc.Instructions >= oa.Instructions {
		t.Fatal("LLC contention did not slow execution")
	}
	// Thrashers barely react to co-runners (already missing).
	ta := baseRequest(workload.Libquantum())
	tc := baseRequest(workload.Libquantum())
	tc.CoRunnerRPTI = 60
	soloT := s.Execute(ta)
	contT := s.Execute(tc)
	reactFI := oc.MissRate - oa.MissRate
	reactT := contT.MissRate - soloT.MissRate
	if reactT >= reactFI {
		t.Fatalf("thrasher reacted more (%v) than fitting app (%v)", reactT, reactFI)
	}
}

func TestEffectiveShare(t *testing.T) {
	if got := EffectiveShareKB(12288, 20, 20); got != 6144 {
		t.Fatalf("equal split share = %v", got)
	}
	if got := EffectiveShareKB(12288, 20, 0); got != 12288 {
		t.Fatalf("solo share = %v", got)
	}
	if got := EffectiveShareKB(12288, 0, 20); got != 0 {
		t.Fatalf("zero-intensity share = %v", got)
	}
	if got := EffectiveShareKB(12288, 20, -5); got != 12288 {
		t.Fatalf("negative co-runner share = %v", got)
	}
}

func TestColdLinesInflateMisses(t *testing.T) {
	s := testSystem()
	warm := baseRequest(workload.LU())
	cold := baseRequest(workload.LU())
	cold.ColdLines = s.ColdLinesFor(&workload.LU().Phases[0])
	ow := s.Execute(warm)
	oc := s.Execute(cold)
	if oc.MissRate <= ow.MissRate {
		t.Fatalf("cold miss rate %v <= warm %v", oc.MissRate, ow.MissRate)
	}
	if oc.Instructions >= ow.Instructions {
		t.Fatal("cold cache did not slow execution")
	}
	if oc.ColdLines >= cold.ColdLines {
		t.Fatal("refill debt did not shrink")
	}
	// Debt eventually drains to zero.
	r := cold
	r.ColdLines = 1000
	o := s.Execute(r)
	if o.ColdLines != 0 {
		t.Fatalf("tiny debt not fully drained: %v left", o.ColdLines)
	}
}

func TestMaxInstructionsCapsQuantum(t *testing.T) {
	s := testSystem()
	r := baseRequest(workload.Povray())
	full := s.Execute(r)
	r.MaxInstructions = full.Instructions / 2
	capped := s.Execute(r)
	if math.Abs(capped.Instructions-r.MaxInstructions) > 1 {
		t.Fatalf("capped instructions = %v, want %v", capped.Instructions, r.MaxInstructions)
	}
	if capped.Used >= full.Used {
		t.Fatalf("capped run used %v, full %v", capped.Used, full.Used)
	}
}

func TestOverheadCyclesReduceWork(t *testing.T) {
	s := testSystem()
	r := baseRequest(workload.Soplex())
	clean := s.Execute(r)
	r.OverheadCycles = 0.5 * float64(r.Quantum.Micros()) * s.Topology().CyclesPerMicrosecond()
	loaded := s.Execute(r)
	ratio := loaded.Instructions / clean.Instructions
	if math.Abs(ratio-0.5) > 0.01 {
		t.Fatalf("half-quantum overhead retired ratio %v, want ~0.5", ratio)
	}
	// Overhead exceeding the quantum retires nothing.
	r.OverheadCycles = 10 * float64(r.Quantum.Micros()) * s.Topology().CyclesPerMicrosecond()
	starved := s.Execute(r)
	if starved.Instructions != 0 {
		t.Fatalf("fully-starved quantum retired %v", starved.Instructions)
	}
}

func TestZeroQuantum(t *testing.T) {
	s := testSystem()
	r := baseRequest(workload.Soplex())
	r.Quantum = 0
	o := s.Execute(r)
	if o.Instructions != 0 || o.LLCMiss != 0 {
		t.Fatalf("zero quantum did work: %+v", o)
	}
	if len(o.Node) != 2 {
		t.Fatal("zero quantum outcome missing node vector")
	}
}

func TestContentionFeedbackLoop(t *testing.T) {
	s := testSystem()
	r := baseRequest(workload.Libquantum())
	before := s.Execute(r)

	// Saturate node 0's IMC for an epoch: 4 thrashers for a full second.
	for i := 0; i < 40; i++ {
		for j := 0; j < 4; j++ {
			o := s.Execute(Request{
				Profile: workload.Libquantum(), Quantum: 25 * sim.Millisecond,
				RunNode: 0, PageDist: mem.Concentrated(2, 0), CoRunnerRPTI: 67,
			})
			s.Record(o, 0)
		}
	}
	s.EndEpoch(sim.Time(sim.Second))
	if s.IMCMultiplier(0) <= 1.01 {
		t.Fatalf("IMC multiplier did not rise: %v", s.IMCMultiplier(0))
	}
	if s.IMCMultiplier(1) > 1.01 {
		t.Fatalf("idle node's IMC multiplier rose: %v", s.IMCMultiplier(1))
	}
	after := s.Execute(r)
	if after.Instructions >= before.Instructions {
		t.Fatal("IMC contention did not slow execution")
	}

	// Quiet epochs decay back toward 1.
	for i := 0; i < 20; i++ {
		s.EndEpoch(sim.Time(sim.Second) + sim.Time(i+1)*sim.Time(sim.Second))
	}
	if s.IMCMultiplier(0) > 1.01 {
		t.Fatalf("multiplier did not decay: %v", s.IMCMultiplier(0))
	}
}

func TestLinkContention(t *testing.T) {
	s := testSystem()
	// Heavy cross-node traffic.
	for i := 0; i < 40; i++ {
		o := s.Execute(Request{
			Profile: workload.Libquantum(), Quantum: 25 * sim.Millisecond,
			RunNode: 0, PageDist: mem.Concentrated(2, 1),
		})
		s.Record(o, 0)
		s.Record(o, 0)
		s.Record(o, 0)
		s.Record(o, 0)
	}
	s.EndEpoch(sim.Time(sim.Second))
	if s.LinkMultiplier(0, 1) <= 1.0 {
		t.Fatalf("link multiplier did not rise: %v", s.LinkMultiplier(0, 1))
	}
	if s.LinkMultiplier(0, 1) != s.LinkMultiplier(1, 0) {
		t.Fatal("link multiplier not symmetric")
	}
	if s.LinkMultiplier(0, 0) != 1 {
		t.Fatal("self-link multiplier != 1")
	}
}

func TestMultipliersBounded(t *testing.T) {
	s := testSystem()
	// Absurd traffic must still produce finite multipliers.
	o := Outcome{Node: []float64{1e15, 1e15}, LLCMiss: 2e15}
	s.Record(o, 0)
	s.EndEpoch(sim.Time(sim.Millisecond))
	maxMult := 1 / (1 - Defaults().UtilCap) * 1.01
	if s.IMCMultiplier(0) > maxMult || math.IsInf(s.IMCMultiplier(0), 0) {
		t.Fatalf("IMC multiplier unbounded: %v", s.IMCMultiplier(0))
	}
}

func TestEndEpochZeroElapsedSafe(t *testing.T) {
	s := testSystem()
	s.EndEpoch(0)
	s.EndEpoch(0) // must not divide by zero
	if s.IMCMultiplier(0) != 1 {
		t.Fatalf("multiplier changed on zero-length epoch: %v", s.IMCMultiplier(0))
	}
}

func TestPhaseSelectionAffectsOutcome(t *testing.T) {
	s := testSystem()
	p := workload.Soplex() // phase 2 has higher RPTI
	early := baseRequest(p)
	late := baseRequest(p)
	late.InstrDone = 0.9 * p.TotalInstructions
	oe := s.Execute(early)
	ol := s.Execute(late)
	if ol.LLCRef/ol.Instructions <= oe.LLCRef/oe.Instructions {
		t.Fatal("late phase should have higher reference intensity")
	}
}

func TestExecuteDeterministic(t *testing.T) {
	a := testSystem()
	b := testSystem()
	r := baseRequest(workload.MCF())
	oa := a.Execute(r)
	ob := b.Execute(r)
	if oa.Instructions != ob.Instructions || oa.LLCMiss != ob.LLCMiss {
		t.Fatal("identical requests produced different outcomes")
	}
}

func TestOutcomeInvariants(t *testing.T) {
	s := testSystem()
	apps := workload.Catalog()
	check := func(app8, node8, co8 uint8, dist0 float64) bool {
		names := workload.Names(apps)
		p := apps[names[int(app8)%len(names)]]
		if math.IsNaN(dist0) || math.IsInf(dist0, 0) {
			return true
		}
		f := math.Abs(dist0)
		f -= math.Floor(f)
		r := Request{
			Profile:      p,
			Quantum:      10 * sim.Millisecond,
			RunNode:      numa.NodeID(int(node8) % 2),
			PageDist:     mem.Dist{f, 1 - f},
			CoRunnerRPTI: float64(co8 % 80),
		}
		o := s.Execute(r)
		if o.Instructions < 0 || o.LLCMiss < 0 || o.LLCMiss > o.LLCRef+1e-9 {
			return false
		}
		if o.MissRate < 0 || o.MissRate > 1 {
			return false
		}
		if o.Remote < -1e-9 || o.Remote > o.LLCMiss+1e-9 {
			return false
		}
		return o.Used <= r.Quantum && o.Used >= 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
