package vprobe

import (
	"time"

	"vprobe/internal/cluster"
	"vprobe/internal/xen"
)

// EventKind labels a scheduling event.
type EventKind string

// Scheduling event kinds delivered to Config.Events.
const (
	// EventDispatch: a VCPU starts a quantum on a PCPU.
	EventDispatch EventKind = EventKind(xen.EventDispatch)
	// EventAppFinish: an application completed all its work.
	EventAppFinish EventKind = EventKind(xen.EventAppFinish)
	// EventBlock: a VCPU blocked (timer, I/O, barrier, network wait).
	EventBlock EventKind = EventKind(xen.EventBlock)
	// EventGuestMove: the guest OS parked a thread on another VCPU.
	EventGuestMove EventKind = EventKind(xen.EventGuestMove)
	// EventDomPause / EventDomResume / EventDomDestroy: domain lifecycle.
	EventDomPause   EventKind = EventKind(xen.EventDomPause)
	EventDomResume  EventKind = EventKind(xen.EventDomResume)
	EventDomDestroy EventKind = EventKind(xen.EventDomDestroy)
)

// Cluster-scoped event kinds delivered to ClusterConfig.Events. These
// describe VM admission, placement, and inter-host migration rather than
// single-host scheduling; their events carry Host and VM instead of
// VCPU/Node.
const (
	// EventVMArrive: a VM entered the admission queue.
	EventVMArrive EventKind = EventKind(cluster.EventVMArrive)
	// EventVMPlace: a VM was placed on a host (admission or migration).
	EventVMPlace EventKind = EventKind(cluster.EventVMPlace)
	// EventVMRetry: placement failed; the VM re-queued with backoff.
	EventVMRetry EventKind = EventKind(cluster.EventVMRetry)
	// EventVMReject: the VM exhausted its retries and was rejected.
	EventVMReject EventKind = EventKind(cluster.EventVMReject)
	// EventVMDepart: a VM reached the end of its lifetime.
	EventVMDepart EventKind = EventKind(cluster.EventVMDepart)
	// EventMigrateStart / EventMigrateDone: inter-host live migration.
	EventMigrateStart EventKind = EventKind(cluster.EventMigrateStart)
	EventMigrateDone  EventKind = EventKind(cluster.EventMigrateDone)
	// EventVMPreempted: a lower-priority VM was evicted (migrated or
	// killed and requeued) to admit a higher-priority arrival.
	EventVMPreempted EventKind = EventKind(cluster.EventVMPreempted)
	// EventGangAdmitted: a VM group was placed all-or-nothing.
	EventGangAdmitted EventKind = EventKind(cluster.EventGangAdmitted)
	// EventBackfill: a small VM jumped the admission queue into a hole
	// that could not delay the blocked head.
	EventBackfill EventKind = EventKind(cluster.EventBackfill)
	// EventDeschedule: the defragmentation pass drained a VM off an
	// underloaded host.
	EventDeschedule EventKind = EventKind(cluster.EventDeschedule)
)

// Event is one structured scheduling trace record. The typed fields carry
// machine-readable identities; Detail is the human-readable rendering.
type Event struct {
	// At is the virtual time of the event.
	At time.Duration
	// Kind labels what happened.
	Kind EventKind
	// VCPU is the machine-wide VCPU id, -1 when the event is not
	// VCPU-scoped (e.g. domain lifecycle).
	VCPU int
	// Node is the NUMA node involved, -1 when placement is not part of
	// the event.
	Node int
	// App names the workload on the subject VCPU, when it has one.
	App string
	// Host names the cluster host involved; empty for single-host
	// scheduling events.
	Host string
	// VM names the cluster VM involved; empty for single-host scheduling
	// events.
	VM string
	// Detail is the formatted trace line.
	Detail string
}

// String renders the event as a trace line.
func (ev Event) String() string { return ev.Detail }

// EventSink consumes scheduling events during a run.
type EventSink interface {
	HandleEvent(Event)
}

// EventFunc adapts a function to EventSink.
type EventFunc func(Event)

// HandleEvent calls f.
func (f EventFunc) HandleEvent(ev Event) { f(ev) }

// TraceAdapter converts typed events into the formatted lines of the old
// Config.Trace signature. It exists so callers migrating off the deprecated
// string hook can keep their formatting code while switching to Events.
func TraceAdapter(fn func(at time.Duration, line string)) EventSink {
	return EventFunc(func(ev Event) { fn(ev.At, ev.Detail) })
}

// eventFanout builds the xen-level event hook dispatching to the
// configured sinks (nil when tracing is off).
func eventFanout(sinks ...EventSink) func(xen.Event) {
	var active []EventSink
	for _, s := range sinks {
		if s != nil {
			active = append(active, s)
		}
	}
	if len(active) == 0 {
		return nil
	}
	return func(xe xen.Event) {
		ev := Event{
			At:     time.Duration(xe.At) * time.Microsecond,
			Kind:   EventKind(xe.Kind),
			VCPU:   int(xe.VCPU),
			Node:   int(xe.Node),
			App:    xe.App,
			Detail: xe.Detail,
		}
		for _, s := range active {
			s.HandleEvent(ev)
		}
	}
}
