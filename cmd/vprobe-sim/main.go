// Command vprobe-sim runs the paper-reproduction experiments and prints
// their tables.
//
// Usage:
//
//	vprobe-sim [-scale f] [-seed n] [-workers n] [-timeout d] [-list] [experiment ...]
//
// Without arguments it runs every registered experiment. Experiment ids
// match the paper's artifacts: table1, fig1, fig3, fig4, fig5, fig6, fig7,
// fig8, table3, plus the ablation experiments.
//
// Experiments (and the simulations inside each) run in parallel across
// -workers OS threads; results are identical at every worker count. SIGINT
// or SIGTERM cancels the run promptly. Progress events stream to stderr,
// and with -out they are also exported as events.jsonl next to the CSV/JSON
// result files.
//
// With -metrics FILE the command instead runs one instrumented standard
// scenario (a measured VM under the vprobe scheduler beside a cache-hungry
// burner VM) and exports telemetry: the final state of every series as
// Prometheus text exposition to FILE, and the per-period time series as
// JSON Lines next to it (FILE with a .jsonl suffix). -metrics-every sets
// the virtual-time sampling period.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"vprobe"
	"vprobe/internal/experiments"
	"vprobe/internal/harness"
)

func main() {
	scale := flag.Float64("scale", experiments.DefaultScale,
		"workload scale factor (1.0 = paper-sized runs)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	workers := flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 0, "per-experiment wall-clock limit (0 = none)")
	quiet := flag.Bool("q", false, "suppress progress output on stderr")
	list := flag.Bool("list", false, "list experiments and exit")
	out := flag.String("out", "", "directory for CSV/JSON result and JSONL event exports")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile (taken after the run) to this file")
	metrics := flag.String("metrics", "", "run the instrumented standard scenario and write Prometheus metrics to this file (plus a .jsonl time series next to it)")
	metricsEvery := flag.Duration("metrics-every", time.Second, "virtual-time sampling period for -metrics")
	spansOut := flag.String("spans", "", "run the standard scenario and write its span flight recorder as JSONL to this file")
	chromeOut := flag.String("chrome", "", "run the standard scenario and write its spans as Chrome trace-event JSON to this file")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [flags] [experiment ...]\n\nexperiments:\n", os.Args[0])
		for _, e := range experiments.All() {
			fmt.Fprintf(os.Stderr, "  %-18s %s\n", e.ID, e.Title)
		}
		fmt.Fprintln(os.Stderr, "\nflags:")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-18s %s\n    paper: %s\n", e.ID, e.Title, e.Paper)
		}
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *metrics != "" || *spansOut != "" || *chromeOut != "" {
		if flag.NArg() > 0 {
			fmt.Fprintf(os.Stderr, "-metrics/-spans/-chrome run the standard scenario; unexpected experiments: %v\n", flag.Args())
			os.Exit(2)
		}
		if err := runStandard(ctx, *metrics, *metricsEvery, *seed, *spansOut, *chromeOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	var sinks []harness.Sink
	if !*quiet {
		sinks = append(sinks, harness.NewConsole(os.Stderr))
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f, err := os.Create(filepath.Join(*out, "events.jsonl"))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		sinks = append(sinks, harness.NewJSONL(f))
	}
	opts := experiments.Options{
		Seed:    *seed,
		Scale:   *scale,
		Workers: *workers,
		Timeout: *timeout,
	}
	if len(sinks) > 0 {
		opts.Events = harness.Multi(sinks...)
	}

	stopProfiles, perr := harness.StartProfiles(*cpuprofile, *memprofile)
	if perr != nil {
		fmt.Fprintln(os.Stderr, perr)
		os.Exit(1)
	}

	start := time.Now()
	items, err := experiments.RunSuite(ctx, flag.Args(), opts)
	// Profiles cover the simulation itself, not result formatting.
	if perr := stopProfiles(); perr != nil {
		fmt.Fprintln(os.Stderr, perr)
		os.Exit(1)
	}
	if err != nil && len(items) == 0 {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	failed := false
	for _, item := range items {
		id := item.Experiment.ID
		if item.Err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, item.Err)
			failed = true
			continue
		}
		fmt.Print(item.Result.String())
		if *out != "" {
			paths, err := item.Result.Export(*out)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: export: %v\n", id, err)
				failed = true
			} else {
				fmt.Printf("(exported %v)\n", paths)
			}
		}
		fmt.Println()
		// Timing goes to stderr: stdout stays byte-identical across runs
		// and worker counts.
		if !*quiet {
			fmt.Fprintf(os.Stderr, "(%s ran in %.1fs, simulated %.0fs)\n",
				id, item.Wall.Seconds(), item.SimTime.Seconds())
		}
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "total wall time %.1fs\n", time.Since(start).Seconds())
	}
	if failed || err != nil {
		os.Exit(1)
	}
}

// runStandard runs the instrumented standard scenario for 30 virtual
// seconds: a measured VM (striped memory, four soplex instances, guest
// housekeeping on the rest) under the vprobe scheduler, beside a burner VM
// of endless cache-hungry apps that keeps every PCPU contended to the
// horizon. With promPath the final series go there and the per-period time
// series next to it as JSON Lines; with spansPath/chromePath the span
// flight recorder is exported as JSONL / Chrome trace-event JSON.
func runStandard(ctx context.Context, promPath string, every time.Duration, seed uint64, spansPath, chromePath string) error {
	var tele *vprobe.Telemetry
	if promPath != "" {
		tele = vprobe.NewTelemetry(vprobe.TelemetryOptions{Every: every})
	}
	var tracing *vprobe.Tracing
	if spansPath != "" || chromePath != "" {
		tracing = vprobe.NewTracing(vprobe.TracingOptions{})
	}
	s, err := vprobe.NewSimulator(vprobe.Config{
		Scheduler: vprobe.SchedulerVProbe,
		Seed:      seed,
		Telemetry: tele,
		Spans:     tracing,
	})
	if err != nil {
		return err
	}
	vm, err := s.AddVM(vprobe.VMConfig{
		Name: "measured", MemoryMB: 8 * 1024, VCPUs: 8,
		Memory: vprobe.MemStripe, FillGuestIdle: true,
	})
	if err != nil {
		return err
	}
	for i := 0; i < 4; i++ {
		if err := vm.RunApp("soplex"); err != nil {
			return err
		}
	}
	burner, err := s.AddVM(vprobe.VMConfig{Name: "burner", MemoryMB: 1024, VCPUs: 8})
	if err != nil {
		return err
	}
	for i := 0; i < 8; i++ {
		if err := burner.RunApp("hungry"); err != nil {
			return err
		}
	}
	report, err := s.RunContext(ctx, 30*time.Second)
	if err != nil {
		return err
	}
	fmt.Print(report)
	if tele != nil {
		if err := writeMetrics(tele, promPath); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "(%d samples -> %s, %s)\n",
			tele.Samples(), promPath, jsonlPath(promPath))
	}
	if tracing != nil {
		if err := writeSpanExports(tracing, spansPath, chromePath); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "(%d spans recorded, %d dropped)\n",
			tracing.Spans(), tracing.Dropped())
	}
	return nil
}

// writeSpanExports writes the flight recorder to the requested files.
func writeSpanExports(tracing *vprobe.Tracing, spansPath, chromePath string) error {
	write := func(path string, export func(*os.File) error) error {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := export(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := write(spansPath, func(f *os.File) error { return tracing.WriteSpans(f) }); err != nil {
		return err
	}
	return write(chromePath, func(f *os.File) error { return tracing.WriteChromeTrace(f) })
}

// jsonlPath places the time-series export next to the Prometheus file.
func jsonlPath(promPath string) string {
	return strings.TrimSuffix(promPath, ".prom") + ".jsonl"
}

// writeMetrics exports a collector: final state as Prometheus text to
// promPath, time series as JSON Lines next to it.
func writeMetrics(tele *vprobe.Telemetry, promPath string) error {
	pf, err := os.Create(promPath)
	if err != nil {
		return err
	}
	if err := tele.WritePrometheus(pf); err != nil {
		pf.Close()
		return err
	}
	if err := pf.Close(); err != nil {
		return err
	}
	jf, err := os.Create(jsonlPath(promPath))
	if err != nil {
		return err
	}
	if err := tele.WriteJSONL(jf); err != nil {
		jf.Close()
		return err
	}
	return jf.Close()
}
