package sim

import "math"

// RNG is a small, fast, deterministic random number generator based on
// SplitMix64. It is not safe for concurrent use; each simulation owns one.
//
// The engine deliberately avoids math/rand so that the stream is stable
// across Go releases and so that sub-streams can be forked reproducibly.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. A zero seed is remapped to a
// fixed odd constant so the zero value is still usable.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &RNG{state: seed}
}

// Fork derives an independent generator from the current one, keyed by id.
// Forked streams are stable: the same parent seed and id always yield the
// same child stream regardless of how much the parent has been consumed
// before other forks.
func (r *RNG) Fork(id uint64) *RNG {
	// Mix the parent's seed-derived state with the id through one SplitMix
	// round so sibling forks are decorrelated.
	z := r.state + 0x9e3779b97f4a7c15*(id+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return NewRNG(z ^ (z >> 31))
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Exp returns an exponentially distributed value with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Normal returns a normally distributed value (Box–Muller).
func (r *RNG) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Jitter returns v multiplied by a uniform factor in [1-f, 1+f]. f is
// clamped to [0, 1]. Used to add bounded noise to model parameters without
// risking negative values for f <= 1.
func (r *RNG) Jitter(v, f float64) float64 {
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	return v * (1 + f*(2*r.Float64()-1))
}

// Pick returns a uniformly chosen index weighted by w; the weights must be
// non-negative and not all zero, otherwise Pick returns len(w)-1.
func (r *RNG) Pick(w []float64) int {
	var total float64
	for _, x := range w {
		if x > 0 {
			total += x
		}
	}
	if total <= 0 {
		return len(w) - 1
	}
	t := r.Float64() * total
	for i, x := range w {
		if x <= 0 {
			continue
		}
		t -= x
		if t < 0 {
			return i
		}
	}
	return len(w) - 1
}
