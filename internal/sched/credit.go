// Package sched implements the five VCPU scheduling policies the paper
// evaluates (§V-A2): the default Xen Credit scheduler, vProbe, the two
// single-mechanism ablations VCPU-P and LB, and the BRM comparator of Rao
// et al. (HPCA'13).
//
// Each policy plugs into internal/xen's Policy interface; the paper's
// algorithms themselves live in internal/core.
package sched

import (
	"vprobe/internal/sim"
	"vprobe/internal/xen"
)

// Credit is the default Xen Credit scheduler: per-PCPU run queues with
// UNDER/OVER priorities and NUMA-oblivious work stealing. It neither reads
// the PMU nor repartitions anything.
type Credit struct{}

// NewCredit returns the baseline policy.
func NewCredit() *Credit { return &Credit{} }

// Name implements xen.Policy.
func (*Credit) Name() string { return "Credit" }

// UsesPMU implements xen.Policy.
func (*Credit) UsesPMU() bool { return false }

// NUMAAwareBalance implements xen.Policy: stock Credit re-picks placement
// across the whole machine.
func (*Credit) NUMAAwareBalance() bool { return false }

// PickNext implements xen.Policy, mirroring csched_schedule: run the local
// head if it is UNDER; otherwise try to steal an UNDER VCPU from a peer
// (id-order scan, NUMA-oblivious); fall back to the local head, then to
// stealing anything.
func (*Credit) PickNext(h *xen.Hypervisor, p *xen.PCPU) *xen.VCPU {
	if p.HeadIsRunnableUnder() {
		return h.NextLocal(p)
	}
	if v := h.CreditSteal(p, p.PeekHead() == nil); v != nil {
		return v
	}
	return h.NextLocal(p)
}

// OnTick implements xen.Policy (no PMU work).
func (*Credit) OnTick(*xen.Hypervisor, *xen.VCPU) {}

// Period implements xen.Policy (no sampling).
func (*Credit) Period() sim.Duration { return 0 }

// OnPeriod implements xen.Policy.
func (*Credit) OnPeriod(*xen.Hypervisor) {}
