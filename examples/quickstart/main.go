// Quickstart: run the same memory-intensive workload under the stock Xen
// Credit scheduler and under vProbe on the paper's two-socket Xeon E5620
// machine, and compare completion times and remote-access ratios.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"vprobe"
)

func main() {
	fmt.Println("vProbe quickstart: 4x soplex + interference, Credit vs vProbe")
	fmt.Println()

	var baseline time.Duration
	for _, scheduler := range []vprobe.Scheduler{vprobe.SchedulerCredit, vprobe.SchedulerVProbe} {
		report, err := run(scheduler)
		if err != nil {
			log.Fatal(err)
		}
		mean := report.MeanExecTime("workload-vm")
		fmt.Printf("%s\n", report)
		if scheduler == vprobe.SchedulerCredit {
			baseline = mean
		} else if baseline > 0 {
			improvement := 100 * (1 - float64(mean)/float64(baseline))
			fmt.Printf("vProbe improvement over Credit: %.1f%%\n", improvement)
		}
		fmt.Println()
	}
}

func run(scheduler vprobe.Scheduler) (*vprobe.Report, error) {
	sim, err := vprobe.NewSimulator(vprobe.Config{
		Scheduler: scheduler,
		Seed:      7,
	})
	if err != nil {
		return nil, err
	}

	// The measured VM: four LP-solver instances, memory striped across
	// both NUMA nodes (the paper's VM1 setup).
	vm1, err := sim.AddVM(vprobe.VMConfig{
		Name: "workload-vm", MemoryMB: 15 * 1024, VCPUs: 8,
		Memory: vprobe.MemStripe, FillGuestIdle: true,
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < 4; i++ {
		if err := vm1.RunApp("soplex"); err != nil {
			return nil, err
		}
	}

	// An interfering VM running the same workload.
	vm2, err := sim.AddVM(vprobe.VMConfig{
		Name: "interference-vm", MemoryMB: 5 * 1024, VCPUs: 8,
		FillGuestIdle: true,
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < 4; i++ {
		if err := vm2.RunApp("soplex"); err != nil {
			return nil, err
		}
	}

	// CPU burners soaking up the slack (the paper's VM3).
	vm3, err := sim.AddVM(vprobe.VMConfig{
		Name: "burner-vm", MemoryMB: 1024, VCPUs: 8,
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < 8; i++ {
		if err := vm3.RunApp("hungry"); err != nil {
			return nil, err
		}
	}

	return sim.RunWatching(20*time.Minute, vm1)
}
