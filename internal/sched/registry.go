package sched

import (
	"fmt"
	"sort"

	"vprobe/internal/xen"
)

// Kind names a scheduling policy for CLI/experiment selection.
type Kind string

// The five policies of the paper's evaluation (§V-A2).
const (
	KindCredit Kind = "credit"
	KindVProbe Kind = "vprobe"
	KindVCPUP  Kind = "vcpu-p"
	KindLB     Kind = "lb"
	KindBRM    Kind = "brm"
)

// Kinds returns all registered kinds in a stable order.
func Kinds() []Kind {
	ks := []Kind{KindCredit, KindVProbe, KindVCPUP, KindLB, KindBRM}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

// PaperOrder returns the kinds in the order the paper's figures list them.
func PaperOrder() []Kind {
	return []Kind{KindCredit, KindVProbe, KindVCPUP, KindLB, KindBRM}
}

// New constructs a fresh policy of the given kind. Policies are stateful
// (analyzers, RNG use); never share one across simulations.
func New(kind Kind) (xen.Policy, error) {
	switch kind {
	case KindCredit:
		return NewCredit(), nil
	case KindVProbe:
		return NewVProbe(), nil
	case KindVCPUP:
		return NewVCPUP(), nil
	case KindLB:
		return NewLB(), nil
	case KindBRM:
		return NewBRM(), nil
	default:
		return nil, fmt.Errorf("sched: unknown policy kind %q (have %v)", kind, Kinds())
	}
}

// MustNew is New for known-good kinds.
func MustNew(kind Kind) xen.Policy {
	p, err := New(kind)
	if err != nil {
		panic(err)
	}
	return p
}
