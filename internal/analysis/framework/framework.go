// Package framework is a minimal, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer holds a name, a doc
// string, and a Run function; a Pass hands the Run function one typechecked
// package plus a Report callback for diagnostics.
//
// The build environment for this repository is a zero-dependency module (no
// network, no module proxy), so the real x/tools framework cannot be pulled
// in. The types here keep the same field names and shapes as x/tools so
// that, the day the dependency can be pinned, migrating an analyzer is a
// one-line import change. See DESIGN.md §8 "Determinism contract".
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static check. It mirrors analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -only filters.
	Name string
	// Doc is the one-paragraph help text (first line is the summary).
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) (any, error)
	// Directives lists the //vet:<name> suppression names this analyzer
	// honours; the driver uses the union to report dangling directives.
	Directives []string
}

// Diagnostic is one finding, anchored at a token position. It mirrors
// analysis.Diagnostic (minus suggested fixes).
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one typechecked package through an Analyzer.Run call. It
// mirrors analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)

	// directives maps filename -> line -> directives present on that
	// line, built lazily from the files' comments.
	directives map[string]map[int][]Directive
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// DirectivePrefix introduces suppression comments: `//vet:<name>` on the
// flagged line, or alone on the line directly above it. Anything after the
// name (separated by a space) is free-form justification.
const DirectivePrefix = "vet:"

// Directive is one parsed `//vet:<name> <reason>` suppression comment.
// The reason is everything after the name, trimmed; analyzers that require
// written justification (hotpath's //vet:alloc) check Reason != "".
type Directive struct {
	// Name is the directive identifier after the vet: prefix.
	Name string
	// Reason is the free-form justification following the name.
	Reason string
	// Pos is where the comment starts.
	Pos token.Pos
}

// Suppressed reports whether a `//vet:<name>` directive covers pos: on the
// same line as pos or on the line immediately above.
func (p *Pass) Suppressed(pos token.Pos, name string) bool {
	_, ok := p.Suppression(pos, name)
	return ok
}

// Suppression returns the `//vet:<name>` directive covering pos (same line
// or the line immediately above), so analyzers can inspect the written
// reason.
func (p *Pass) Suppression(pos token.Pos, name string) (Directive, bool) {
	if p.directives == nil {
		p.directives = collectDirectives(p.Fset, p.Files)
	}
	return lookupDirective(p.directives, p.Fset, pos, name)
}

// lookupDirective finds a directive named name covering pos in a
// filename -> line -> directives index.
func lookupDirective(idx map[string]map[int][]Directive, fset *token.FileSet,
	pos token.Pos, name string) (Directive, bool) {
	position := fset.Position(pos)
	lines := idx[position.Filename]
	for _, line := range []int{position.Line, position.Line - 1} {
		for _, d := range lines[line] {
			if d.Name == name {
				return d, true
			}
		}
	}
	return Directive{}, false
}

// collectDirectives scans every comment of every file for //vet: markers,
// keyed by the line the comment starts on.
func collectDirectives(fset *token.FileSet, files []*ast.File) map[string]map[int][]Directive {
	out := make(map[string]map[int][]Directive)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if !strings.HasPrefix(text, DirectivePrefix) {
					continue
				}
				name := strings.TrimPrefix(text, DirectivePrefix)
				reason := ""
				if i := strings.IndexAny(name, " \t—"); i >= 0 {
					name, reason = name[:i], strings.TrimLeft(name[i:], " \t—")
				}
				if name == "" {
					continue
				}
				pos := fset.Position(c.Pos())
				if out[pos.Filename] == nil {
					out[pos.Filename] = make(map[int][]Directive)
				}
				out[pos.Filename][pos.Line] = append(out[pos.Filename][pos.Line],
					Directive{Name: name, Reason: strings.TrimSpace(reason), Pos: c.Pos()})
			}
		}
	}
	return out
}

// RunAnalyzer applies a to pkg and returns the diagnostics sorted by
// position. Errors from the analyzer itself (not findings) are returned.
func RunAnalyzer(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Report:    func(d Diagnostic) { diags = append(diags, d) },
	}
	if _, err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
	}
	sortDiagnostics(pkg.Fset, diags)
	return diags, nil
}

// sortDiagnostics orders findings by file, then line, then column, then
// message, so vprobe-vet output is stable run to run (the linter holds
// itself to the determinism contract it enforces).
func sortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	key := func(d Diagnostic) string {
		p := fset.Position(d.Pos)
		return fmt.Sprintf("%s\x00%08d\x00%08d\x00%s", p.Filename, p.Line, p.Column, d.Message)
	}
	for i := 1; i < len(diags); i++ {
		for j := i; j > 0 && key(diags[j]) < key(diags[j-1]); j-- {
			diags[j], diags[j-1] = diags[j-1], diags[j]
		}
	}
}
