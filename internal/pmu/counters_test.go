package pmu

import (
	"math"
	"testing"
	"testing/quick"

	"vprobe/internal/numa"
)

func delta(instr, ref, miss float64, node []float64, remote float64) Delta {
	return Delta{Instructions: instr, Cycles: instr * 1.2, LLCRef: ref,
		LLCMiss: miss, Node: node, Remote: remote}
}

func TestAddAndSnapshot(t *testing.T) {
	c := NewCounters(2)
	c.Add(delta(1000, 20, 5, []float64{3, 2}, 2))
	c.Add(delta(500, 10, 1, []float64{1, 0}, 0))
	if c.Instructions != 1500 || c.LLCRef != 30 || c.LLCMiss != 6 {
		t.Fatalf("counters = %+v", c)
	}
	if c.Node[0] != 4 || c.Node[1] != 2 {
		t.Fatalf("node counts = %v", c.Node)
	}
	if c.Total() != 6 {
		t.Fatalf("Total = %v", c.Total())
	}
	snap := c.Snapshot()
	c.Add(delta(1, 1, 1, []float64{1, 1}, 1))
	if snap.Instructions != 1500 || snap.Node[0] != 4 {
		t.Fatal("snapshot aliased live counters")
	}
}

func TestRPTIMatchesEquation2(t *testing.T) {
	// Eq. 2: R = LLCref/InstrRetired * alpha, alpha = 1000.
	d := delta(2_000_000, 44_820, 0, []float64{0, 0}, 0)
	if got := d.RPTI(); math.Abs(got-22.41) > 1e-9 {
		t.Fatalf("RPTI = %v, want 22.41", got)
	}
	if got := d.Pressure(1000); got != d.RPTI() {
		t.Fatalf("Pressure(1000) = %v != RPTI %v", got, d.RPTI())
	}
	if got := d.Pressure(500); math.Abs(got-11.205) > 1e-9 {
		t.Fatalf("Pressure(500) = %v", got)
	}
}

func TestZeroWindowSafety(t *testing.T) {
	var d Delta
	if d.RPTI() != 0 || d.MissRate() != 0 || d.IPC() != 0 || d.RemoteRatio() != 0 {
		t.Fatal("zero delta should report zeros, not NaN")
	}
	if d.AffinityNode() != numa.NoNode {
		t.Fatalf("AffinityNode of empty window = %v, want NoNode", d.AffinityNode())
	}
}

func TestAffinityNodeArgmax(t *testing.T) {
	d := delta(1, 1, 1, []float64{5, 9, 3}, 0)
	if d.AffinityNode() != 1 {
		t.Fatalf("affinity = %v, want 1", d.AffinityNode())
	}
	// Ties break low.
	d2 := delta(1, 1, 1, []float64{4, 4}, 0)
	if d2.AffinityNode() != 0 {
		t.Fatalf("tie affinity = %v, want 0", d2.AffinityNode())
	}
}

func TestRemoteRatio(t *testing.T) {
	d := delta(1, 1, 1, []float64{30, 70}, 70)
	if got := d.RemoteRatio(); math.Abs(got-0.7) > 1e-12 {
		t.Fatalf("remote ratio = %v", got)
	}
}

func TestSamplerWindows(t *testing.T) {
	c := NewCounters(2)
	s := NewSampler(2)
	c.Add(delta(1000, 100, 10, []float64{6, 4}, 4))
	w1 := s.Sample(c)
	if w1.Instructions != 1000 || w1.Node[1] != 4 {
		t.Fatalf("window 1 = %+v", w1)
	}
	c.Add(delta(500, 50, 5, []float64{5, 0}, 0))
	w2 := s.Sample(c)
	if w2.Instructions != 500 || w2.LLCRef != 50 || w2.Node[0] != 5 || w2.Node[1] != 0 {
		t.Fatalf("window 2 = %+v", w2)
	}
	// Empty window.
	w3 := s.Sample(c)
	if w3.Instructions != 0 || w3.AffinityNode() != numa.NoNode {
		t.Fatalf("window 3 = %+v", w3)
	}
}

func TestSamplerSumsToCounters(t *testing.T) {
	check := func(parts []uint16) bool {
		c := NewCounters(2)
		s := NewSampler(2)
		var sumInstr, sumRef float64
		for _, p := range parts {
			d := delta(float64(p), float64(p)/10, float64(p)/100,
				[]float64{float64(p) / 200, float64(p) / 300}, 0)
			c.Add(d)
			w := s.Sample(c)
			sumInstr += w.Instructions
			sumRef += w.LLCRef
		}
		return math.Abs(sumInstr-c.Instructions) < 1e-6 && math.Abs(sumRef-c.LLCRef) < 1e-6
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestIPCAndMissRate(t *testing.T) {
	d := Delta{Instructions: 100, Cycles: 200, LLCRef: 10, LLCMiss: 4}
	if d.IPC() != 0.5 {
		t.Fatalf("IPC = %v", d.IPC())
	}
	if d.MissRate() != 0.4 {
		t.Fatalf("miss rate = %v", d.MissRate())
	}
}

func TestDeltaString(t *testing.T) {
	d := delta(1000, 100, 10, []float64{6, 4}, 4)
	if s := d.String(); s == "" {
		t.Fatal("empty String()")
	}
}
