// Span tracing over virtual time: the "flight recorder" for placement
// decisions. A Tracer records parent/child spans (VM lifecycle, placement
// decisions, per-plugin filter/score verdicts, migration and preemption
// chains) into preallocated chunked storage. Span IDs are derived
// deterministically from the run seed and the record sequence number, so
// two runs of the same seed — at any worker count — produce byte-identical
// span files. Recording never mutates model state, consumes randomness, or
// schedules events: simulation output is byte-identical with tracing on or
// off.
package telemetry

import (
	"vprobe/internal/sim"
)

// SpanKind classifies a span. Kinds are closed strings (not an enum int)
// so span files stay self-describing in JSONL and Chrome exports.
type SpanKind string

const (
	SpanRun        SpanKind = "run"        // whole run, root of the tree
	SpanDomain     SpanKind = "domain"     // single-host domain lifetime
	SpanVM         SpanKind = "vm"         // cluster VM lifecycle: arrive→depart/reject
	SpanPlace      SpanKind = "place"      // one placement decision
	SpanFilter     SpanKind = "filter"     // per-plugin filter verdict within a decision
	SpanScore      SpanKind = "score"      // per-plugin score of the winner
	SpanCandidate  SpanKind = "candidate"  // per-host total in the decision's top-N
	SpanMigrate    SpanKind = "migrate"    // live migration, priced by the page-copy model
	SpanPreempt    SpanKind = "preempt"    // victim eviction on behalf of a beneficiary
	SpanGang       SpanKind = "gang"       // all-or-nothing gang admission
	SpanBackfill   SpanKind = "backfill"   // small VM admitted past a blocked head
	SpanDeschedule SpanKind = "deschedule" // consolidation drain decision
	SpanRetry      SpanKind = "retry"      // admission retry with backoff
	SpanReject     SpanKind = "reject"     // terminal admission rejection
	SpanPoint      SpanKind = "point"      // generic instant annotation
)

// Span is one recorded interval (or instant) of virtual time. Score and
// Cost are optional decorations: Score carries a plugin or total placement
// score, Cost carries a virtual-time price from the migration cost model
// (e.g. a migration blackout). The zero End on an open span is resolved by
// CloseOpen at the run horizon.
type Span struct {
	ID     uint64
	Parent uint64 // 0 for roots
	Kind   SpanKind
	Name   string
	Host   string
	VM     string
	Start  sim.Time
	End    sim.Time
	Score  float64
	Cost   sim.Duration
	Detail string

	hasScore bool
	hasCost  bool
	open     bool
}

// SpanRef is a handle to a recorded span: an index into the tracer's
// storage, stable for the tracer's lifetime. NoSpan is the nil handle;
// every Tracer method accepts it and does nothing, so call sites can
// thread refs without guarding each decoration.
type SpanRef int32

// NoSpan is the absent span handle (dropped by limit, or tracing off).
const NoSpan SpanRef = -1

// spanChunkRows is the per-chunk span count. Chunked storage means a
// recorded span never moves: refs and interior pointers stay valid while
// the tracer grows, and appends never copy earlier chunks.
const spanChunkRows = 1024

// DefaultSpanLimit bounds a tracer that was not given an explicit limit.
// One decision records ~10 spans; a million spans covers ~100k placement
// decisions — far past any committed experiment — while bounding the
// recorder to tens of MB.
const DefaultSpanLimit = 1 << 20

// Tracer records spans with deterministic IDs. It is not safe for
// concurrent use: in cluster runs all recording happens on the cluster
// engine goroutine (decisions are serialized there even at workers 8),
// and single-host runs are single-threaded.
type Tracer struct {
	seed    uint64
	limit   int
	chunks  [][]Span
	n       int
	dropped int
}

// NewTracer builds a tracer whose span IDs derive from seed. A
// non-positive limit defaults to DefaultSpanLimit; once the limit is
// reached further Begin/Point calls return NoSpan and count as dropped.
func NewTracer(seed uint64, limit int) *Tracer {
	if limit <= 0 {
		limit = DefaultSpanLimit
	}
	return &Tracer{seed: seed, limit: limit}
}

// splitmix64 is the SplitMix64 output function: a bijective mixer, so
// distinct sequence numbers never collide for a fixed seed.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// spanID derives the deterministic ID of the seq-th span of this run.
func (t *Tracer) spanID(seq int) uint64 {
	id := splitmix64(t.seed ^ splitmix64(uint64(seq)+1))
	if id == 0 {
		id = 1 // 0 means "no parent" on the wire
	}
	return id
}

// span returns the storage of ref, or nil for NoSpan.
func (t *Tracer) span(ref SpanRef) *Span {
	if t == nil || ref < 0 || int(ref) >= t.n {
		return nil
	}
	return &t.chunks[ref/spanChunkRows][ref%spanChunkRows]
}

// Begin records an open span starting at 'at' under parent (NoSpan for a
// root) and returns its handle. Returns NoSpan once the limit is reached.
func (t *Tracer) Begin(at sim.Time, parent SpanRef, kind SpanKind, host, vm, name string) SpanRef {
	if t == nil {
		return NoSpan
	}
	if t.n >= t.limit {
		t.dropped++
		return NoSpan
	}
	if t.n == len(t.chunks)*spanChunkRows {
		t.chunks = append(t.chunks, make([]Span, spanChunkRows))
	}
	ref := SpanRef(t.n)
	t.n++
	var pid uint64
	if ps := t.span(parent); ps != nil {
		pid = ps.ID
	}
	*t.span(ref) = Span{
		ID: t.spanID(int(ref)), Parent: pid, Kind: kind, Name: name,
		Host: host, VM: vm, Start: at, End: at, open: true,
	}
	return ref
}

// End closes ref at 'at'. Closing NoSpan or an already-closed span is a
// no-op.
func (t *Tracer) End(ref SpanRef, at sim.Time) {
	if s := t.span(ref); s != nil && s.open {
		s.End = at
		s.open = false
	}
}

// Point records a closed instant span (Start == End) and returns its
// handle so callers may still decorate it.
func (t *Tracer) Point(at sim.Time, parent SpanRef, kind SpanKind, host, vm, name, detail string) SpanRef {
	ref := t.Begin(at, parent, kind, host, vm, name)
	if s := t.span(ref); s != nil {
		s.Detail = detail
		s.open = false
	}
	return ref
}

// SetScore decorates ref with a score.
func (t *Tracer) SetScore(ref SpanRef, score float64) {
	if s := t.span(ref); s != nil {
		s.Score = score
		s.hasScore = true
	}
}

// SetCost decorates ref with a virtual-time cost from the cost model.
func (t *Tracer) SetCost(ref SpanRef, cost sim.Duration) {
	if s := t.span(ref); s != nil {
		s.Cost = cost
		s.hasCost = true
	}
}

// SetDetail replaces ref's detail string.
func (t *Tracer) SetDetail(ref SpanRef, detail string) {
	if s := t.span(ref); s != nil {
		s.Detail = detail
	}
}

// Note appends a "; "-separated clause to ref's detail string.
func (t *Tracer) Note(ref SpanRef, clause string) {
	if s := t.span(ref); s != nil {
		if s.Detail != "" {
			s.Detail += "; "
		}
		s.Detail += clause
	}
}

// CloseOpen closes every still-open span at 'at' (the run horizon), so
// exports never contain open intervals.
func (t *Tracer) CloseOpen(at sim.Time) {
	if t == nil {
		return
	}
	for i := 0; i < t.n; i++ {
		if s := t.span(SpanRef(i)); s.open {
			s.End = at
			s.open = false
		}
	}
}

// Len returns the number of recorded spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return t.n
}

// Dropped returns the number of spans discarded by the limit.
func (t *Tracer) Dropped() int {
	if t == nil {
		return 0
	}
	return t.dropped
}

// Spans returns a copy of the recorded spans in record order.
func (t *Tracer) Spans() []Span {
	if t == nil || t.n == 0 {
		return nil
	}
	out := make([]Span, t.n)
	for i := range out {
		out[i] = *t.span(SpanRef(i))
	}
	return out
}

// hostOrder returns the distinct non-empty host names of spans in
// first-seen record order; used by the Chrome export's thread mapping.
func hostOrder(spans []Span) []string {
	seen := map[string]bool{}
	var order []string
	for i := range spans {
		h := spans[i].Host
		if h != "" && !seen[h] {
			seen[h] = true
			order = append(order, h)
		}
	}
	return order
}
