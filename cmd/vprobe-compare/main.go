// Command vprobe-compare runs the same workload under several schedulers
// and prints a side-by-side comparison — the quickest way to explore how a
// custom VM/workload mix responds to each policy.
//
// Usage:
//
//	vprobe-compare [-w "soplex:4"] [-i "soplex:4"] [-sched credit,vprobe,lb] \
//	               [-seeds 3] [-scale 0.5] [-horizon 600]
//
// -w is the measured VM's workload spec, -i the interfering VM's (see
// internal/workload.ParseSpec for the syntax). A third VM always runs
// eight hungry loops, as in the paper's standard setup.
//
// The (scheduler, seed) grid runs in parallel across -workers OS threads;
// the table is identical at every worker count. SIGINT/SIGTERM cancels.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"vprobe/internal/harness"
	"vprobe/internal/mem"
	"vprobe/internal/metrics"
	"vprobe/internal/numa"
	"vprobe/internal/sched"
	"vprobe/internal/sim"
	"vprobe/internal/workload"
	"vprobe/internal/xen"
)

func main() {
	wSpec := flag.String("w", "soplex:4", "measured VM workload spec")
	iSpec := flag.String("i", "soplex:4", "interfering VM workload spec")
	schedList := flag.String("sched", "credit,vprobe,vcpu-p,lb,brm", "schedulers to compare")
	seeds := flag.Int("seeds", 3, "seeds to average over")
	scale := flag.Float64("scale", 0.5, "workload scale factor")
	horizon := flag.Float64("horizon", 1200, "virtual-time cap in seconds")
	topoName := flag.String("topo", "xeon-e5620", "topology preset name or JSON file path")
	workers := flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	top, err := numa.Resolve(*topoName)
	if err != nil {
		fatal(err)
	}

	apps1, err := workload.ParseSpec(*wSpec)
	if err != nil {
		fatal(err)
	}
	apps2, err := workload.ParseSpec(*iSpec)
	if err != nil {
		fatal(err)
	}
	if len(apps1) > 8 || len(apps2) > 8 {
		fatal(fmt.Errorf("at most 8 apps per VM (got %d / %d)", len(apps1), len(apps2)))
	}

	var kinds []sched.Kind
	for _, name := range strings.Split(*schedList, ",") {
		kinds = append(kinds, sched.Kind(strings.TrimSpace(name)))
	}

	// One job per (scheduler, seed) cell, assembled in grid order so the
	// printed table never depends on completion order.
	n := len(kinds) * *seeds
	cells, err := harness.Map(ctx, *workers, n,
		func(ctx context.Context, i int) (oneResult, error) {
			kind := kinds[i / *seeds]
			s := i % *seeds
			return runOnce(ctx, top, kind, apps1, apps2, uint64(s+1), *scale, *horizon)
		})
	if err != nil {
		fatal(err)
	}

	t := metrics.NewTable(
		fmt.Sprintf("workload %q vs interference %q (%d seeds, scale %.2f)",
			*wSpec, *iSpec, *seeds, *scale),
		"scheduler", "exec(s)", "remote", "page-remote", "moves/app", "overhead")
	for ki, kind := range kinds {
		var execs, remotes, pages, moves, overheads []float64
		for _, res := range cells[ki**seeds : (ki+1)**seeds] {
			execs = append(execs, res.exec)
			remotes = append(remotes, res.remote)
			pages = append(pages, res.page)
			moves = append(moves, res.moves)
			overheads = append(overheads, res.overhead)
		}
		t.AddRow(string(kind),
			fmt.Sprintf("%.2f", sim.Mean(execs)),
			metrics.Pct(sim.Mean(remotes)),
			metrics.Pct(sim.Mean(pages)),
			fmt.Sprintf("%.1f", sim.Mean(moves)),
			fmt.Sprintf("%.5f%%", 100*sim.Mean(overheads)))
	}
	fmt.Print(t.String())
}

type oneResult struct {
	exec, remote, page, moves, overhead float64
}

func runOnce(ctx context.Context, top *numa.Topology, kind sched.Kind, apps1, apps2 []*workload.Profile, seed uint64, scale, horizon float64) (oneResult, error) {
	pol, err := sched.New(kind)
	if err != nil {
		return oneResult{}, err
	}
	cfg := xen.DefaultConfig()
	cfg.Seed = seed
	h := xen.New(top, pol, cfg)

	vm1, err := h.CreateDomain("VM1", 15*1024, 8, mem.PolicyStripe)
	if err != nil {
		return oneResult{}, err
	}
	vm2, err := h.CreateDomain("VM2", 5*1024, 8, mem.PolicyFill)
	if err != nil {
		return oneResult{}, err
	}
	vm3, err := h.CreateDomain("VM3", 1024, 8, mem.PolicyFill)
	if err != nil {
		return oneResult{}, err
	}
	attach := func(d *xen.Domain, apps []*workload.Profile) error {
		for i, app := range apps {
			p := app.Clone()
			if p.TotalInstructions > 0 && p.TotalInstructions < 1e17 {
				p.TotalInstructions *= scale
			}
			if _, err := h.AttachApp(d, i, p); err != nil {
				return err
			}
		}
		for i := len(apps); i < len(d.VCPUs); i++ {
			if _, err := h.AttachApp(d, i, workload.GuestIdle()); err != nil {
				return err
			}
		}
		return nil
	}
	if err := attach(vm1, apps1); err != nil {
		return oneResult{}, err
	}
	if err := attach(vm2, apps2); err != nil {
		return oneResult{}, err
	}
	for i := 0; i < 8; i++ {
		if _, err := h.AttachApp(vm3, i, workload.Hungry()); err != nil {
			return oneResult{}, err
		}
	}
	h.WatchDomains(vm1)
	end, err := h.RunContext(ctx, sim.DurationFromSeconds(horizon))
	if err != nil {
		return oneResult{}, err
	}
	runs := metrics.CollectDomain(vm1, end)
	var mv float64
	for _, r := range runs {
		mv += float64(r.NodeMoves)
	}
	if len(runs) > 0 {
		mv /= float64(len(runs))
	}
	return oneResult{
		exec:     metrics.AvgExecSeconds(runs),
		remote:   metrics.AvgRemoteRatio(runs),
		page:     metrics.AvgPageRemoteRatio(runs),
		moves:    mv,
		overhead: h.OverheadFraction(),
	}, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vprobe-compare:", err)
	os.Exit(1)
}
