package xen

import (
	"math"

	"vprobe/internal/core"
	"vprobe/internal/numa"
	"vprobe/internal/sim"
)

func mathSqrt(x float64) float64   { return math.Sqrt(x) }
func mathMax(a, b float64) float64 { return math.Max(a, b) }

// Policy is a pluggable VCPU scheduling policy. The hypervisor drives the
// mechanics (quanta, ticks, credit accounting); the policy decides which
// VCPU a PCPU runs next and what happens at each sampling period.
type Policy interface {
	// Name identifies the policy in reports ("Credit", "vProbe", ...).
	Name() string
	// UsesPMU reports whether the policy virtualizes PMU counters
	// (adds Perfctr-Xen save/restore cost on context switches).
	UsesPMU() bool
	// NUMAAwareBalance reports whether the periodic placement re-pick
	// (csched_vcpu_acct's _csched_cpu_pick) is restricted to the local
	// node. Stock Credit (and VCPU-P, BRM) answer false — the
	// NUMA-oblivious behaviour §II-B measures.
	NUMAAwareBalance() bool
	// PickNext chooses the next VCPU for the idle PCPU p and removes it
	// from whatever queue holds it (the Hypervisor steal helpers do
	// this). Returning nil leaves p idle until a kick.
	PickNext(h *Hypervisor, p *PCPU) *VCPU
	// OnTick runs once per running VCPU per 10 ms tick (PMU refresh
	// costs, BRM's lock acquisition, ...).
	OnTick(h *Hypervisor, v *VCPU)
	// Period is the sampling period; <= 0 disables OnPeriod.
	Period() sim.Duration
	// OnPeriod runs at every sampling-period boundary.
	OnPeriod(h *Hypervisor)
}

// --- Reusable policy building blocks -----------------------------------

// NextLocal pops the head of p's own run queue.
func (h *Hypervisor) NextLocal(p *PCPU) *VCPU {
	return p.Dequeue()
}

// HeadIsRunnableUnder reports whether p's queue head exists and has UNDER
// priority or better (BOOST). Xen's csched_schedule only falls into load
// balancing when the local candidate is OVER (or absent); both the default
// and the NUMA-aware balancers share that trigger.
func (p *PCPU) HeadIsRunnableUnder() bool {
	head := p.PeekHead()
	return head != nil && head.Priority <= PrioUnder
}

// CreditSteal implements the default Credit scheduler's NUMA-oblivious
// work stealing: scan peer PCPUs in id order starting after p, looking for
// an UNDER-priority VCPU; when anyPriority is set (the stealing PCPU has
// nothing at all), a second pass settles for any stealable VCPU. The scan
// order crosses node boundaries freely — exactly the behaviour §II-B
// blames for remote-access inflation.
func (h *Hypervisor) CreditSteal(p *PCPU, anyPriority bool) *VCPU {
	n := len(h.PCPUs)
	passes := 1
	if anyPriority {
		passes = 2
	}
	for pass := 0; pass < passes; pass++ {
		for i := 1; i < n; i++ {
			q := h.PCPUs[(int(p.ID)+i)%n]
			// Cross-socket theft only repairs a real imbalance (the
			// migration costs the victim its cache state); the check is
			// queue-length based and still NUMA-oblivious about *which*
			// VCPU moves.
			if pass == 0 && q.Node != p.Node && q.Workload < p.QueueLen()+1 {
				continue
			}
			// Index-based scan of the victim queue (no Stealable slice).
			for qi := 0; qi < len(q.queue); qi++ {
				v := q.queue[qi]
				if !v.CanSteal() {
					continue
				}
				if pass == 0 && v.Priority > PrioUnder {
					continue
				}
				if pass == 0 && h.cacheHot(v) {
					continue
				}
				q.Remove(v)
				if h.Tele != nil {
					h.Tele.NoteSteal(q.Node == p.Node)
				}
				return v
			}
		}
	}
	return nil
}

// QueueViews builds Algorithm 2's per-node view of all run queues,
// excluding p's own queue. With underOnly set, only UNDER-priority VCPUs
// are visible (the head-is-OVER balancing path must not trade an OVER
// VCPU for another OVER VCPU). VCPUs partition-assigned to a node other
// than the stealer's are not offered for cross-node theft: the assignment
// holds until the next sampling period.
//
// The returned map and its Runnable slices are owned by the hypervisor and
// reused on the next call; callers must consume them before then.
func (h *Hypervisor) QueueViews(except *PCPU, underOnly bool) map[numa.NodeID][]core.QueueView {
	if h.views == nil {
		h.views = make(map[numa.NodeID][]core.QueueView, h.Top.NumNodes()) //vet:alloc built once on first use, then reused every call
	}
	// Reset by node id, not by ranging the map: map iteration order is
	// nondeterministic and this path feeds the scheduler.
	for n := 0; n < h.Top.NumNodes(); n++ {
		h.views[numa.NodeID(n)] = h.views[numa.NodeID(n)][:0]
	}
	for _, q := range h.PCPUs {
		if q == except {
			continue
		}
		view := core.QueueView{CPU: q.ID, Workload: q.Workload}
		run := q.stealScratch[:0]
		for qi := 0; qi < len(q.queue); qi++ {
			v := q.queue[qi]
			if !v.CanSteal() {
				continue
			}
			if underOnly && v.Priority > PrioUnder {
				continue
			}
			if underOnly && h.cacheHot(v) {
				continue
			}
			if v.AssignedNode != numa.NoNode && except != nil && v.AssignedNode != except.Node {
				continue
			}
			//vet:alloc q.stealScratch is reused; grows to queue depth during warmup
			run = append(run, core.RunnableVCPU{
				VCPU:     int(v.ID),
				Pressure: v.LLCPressure,
			})
		}
		q.stealScratch = run
		view.Runnable = run
		h.views[q.Node] = append(h.views[q.Node], view) //vet:alloc per-node slices grow to PCPU count during warmup, then reused
	}
	return h.views
}

// NUMAAwareSteal applies the paper's Algorithm 2: steal the
// lowest-pressure runnable VCPU from the most loaded PCPU of the local
// node, falling back to remote nodes in distance order. underOnly
// restricts candidates to UNDER priority (head-is-OVER trigger);
// localOnly suppresses the remote fallback entirely.
func (h *Hypervisor) NUMAAwareSteal(p *PCPU, underOnly, localOnly bool) *VCPU {
	views := h.QueueViews(p, underOnly)
	var order []numa.NodeID
	if !localOnly {
		// The visit order depends only on the (immutable) topology; compute
		// it once per node and cache it.
		if h.nodeOrders == nil {
			h.nodeOrders = make([][]numa.NodeID, h.Top.NumNodes()) //vet:alloc topology-sized cache built once on first steal
		}
		order = h.nodeOrders[p.Node]
		if order == nil {
			order = core.NodeOrderFrom(h.Top, p.Node)
			h.nodeOrders[p.Node] = order
		}
	}
	d, ok := h.stealBufs.PickSteal(p.Node, order, views)
	if !ok {
		return nil
	}
	v := h.vcpuByID[VCPUID(d.VCPU)]
	if v == nil {
		return nil
	}
	if !h.PCPUs[d.From].Remove(v) {
		return nil
	}
	if h.Tele != nil {
		h.Tele.NoteSteal(h.PCPUs[d.From].Node == p.Node)
	}
	return v
}

// SampleAll samples every app-carrying VCPU's PMU window and returns the
// analyzer stats, charging the per-VCPU collection cost. This is the PMU
// data analyzer's period-end pass (§III-B). The returned slice is owned by
// the hypervisor and reused on the next call.
func (h *Hypervisor) SampleAll(an *core.Analyzer) []core.Stat {
	stats := h.statScratch[:0]
	cpm := h.Top.CyclesPerMicrosecond()
	for _, v := range h.vcpus {
		if v.App == nil {
			continue
		}
		d := v.Sampler.Sample(v.Counters)
		if h.Config.PMUNoiseFactor > 0 && d.Instructions > 0 {
			// Finite-window measurement noise: counter multiplexing and
			// interrupt skew make short windows unreliable.
			sd := h.Config.PMUNoiseFactor * mathSqrt(1e9/mathMax(d.Instructions, 1e6))
			d.LLCRef *= mathMax(0, h.RNG.Normal(1, sd))
		}
		s := an.Analyze(int(v.ID), d)
		v.NodeAffinity = s.Affinity
		v.LLCPressure = s.Pressure
		v.Type = s.Type
		v.AddOverhead(h.Config.PMUUpdateMicros*cpm, cpm)
		h.SampleOverhead += sim.Duration(h.Config.PMUUpdateMicros)
		stats = append(stats, s) //vet:alloc h.statScratch is reused; grows to VCPU count during warmup
	}
	h.statScratch = stats
	if h.Tele != nil {
		h.Tele.noteCensus(stats)
	}
	return stats
}

// ApplyPartition migrates VCPUs according to Algorithm 1's assignments and
// charges the partitioning pass cost.
func (h *Hypervisor) ApplyPartition(as []core.Assignment) {
	cpm := h.Top.CyclesPerMicrosecond()
	cost := h.Config.PartitionFixedMicros + h.Config.PartitionPerVCPUMicros*float64(len(as))
	h.SampleOverhead += sim.Duration(cost)
	if h.Tele != nil {
		h.Tele.Reassignments.Add(float64(len(as)))
	}
	// The pass runs in hypervisor context on one PCPU; charge whoever is
	// running there.
	if len(h.PCPUs) > 0 && h.PCPUs[0].Current != nil {
		h.PCPUs[0].Current.AddOverhead(cost*cpm, cpm)
	}
	//vet:alloc per-period partition application (1s simulated cadence); part of Algorithm 1's tracked per-period cost
	assigned := make(map[VCPUID]bool, len(as))
	for _, a := range as {
		v := h.vcpuByID[VCPUID(a.VCPU)]
		if v == nil {
			continue
		}
		assigned[v.ID] = true
		v.AssignedNode = a.Node
		h.MigrateToNode(v, a.Node)
	}
	// VCPUs that dropped out of the memory-intensive set lose their
	// assignment and return to default balancing.
	for _, v := range h.vcpus {
		if v.App != nil && !assigned[v.ID] {
			v.AssignedNode = numa.NoNode
		}
	}
}
