package experiments

import (
	"context"
	"fmt"

	"vprobe/internal/harness"
	"vprobe/internal/metrics"
	"vprobe/internal/sched"
	"vprobe/internal/sim"
	"vprobe/internal/workload"
)

// seedOut is one simulation's measured output.
type seedOut struct {
	runs []metrics.AppRun
	end  sim.Time
}

// batchOut collects one (workload, scheduler) measurement across seeds.
type batchOut struct {
	seeds []seedOut
}

// runSchedulers executes the standard scenario once per scheduler kind and
// seed; same-seed runs across schedulers share the initial placement, so
// per-seed normalization compares like with like.
//
// The (scheduler, seed) grid is fanned out across opts.Workers simulations
// at a time. Each run's seed derives from (opts.Seed, repeat index) only,
// and results are assembled in grid order, so the output is identical at
// every worker count. label prefixes progress-event scenario names.
func runSchedulers(ctx context.Context, label string, apps1, apps2 []*workload.Profile, opts Options) (map[sched.Kind]batchOut, error) {
	n := len(opts.Schedulers) * opts.Repeats
	flat, err := harness.Map(ctx, harness.Workers(opts.Workers, n), n,
		func(ctx context.Context, i int) (seedOut, error) {
			k := opts.Schedulers[i/opts.Repeats]
			r := i % opts.Repeats
			ropts := opts
			ropts.Seed = opts.Seed + uint64(r)
			sc, err := newScenario(k, apps1, apps2, ropts)
			if err != nil {
				return seedOut{}, fmt.Errorf("%s: %w", k, err)
			}
			runs, end, err := sc.runMeasured(ctx, ropts)
			if err != nil {
				return seedOut{}, fmt.Errorf("%s/seed%d: %w", k, r, err)
			}
			opts.emitScenario(scenarioName(label, string(k), r), end)
			return seedOut{runs: runs, end: end}, nil
		})
	if err != nil {
		return nil, err
	}
	out := make(map[sched.Kind]batchOut, len(opts.Schedulers))
	for ki, k := range opts.Schedulers {
		out[k] = batchOut{seeds: flat[ki*opts.Repeats : (ki+1)*opts.Repeats]}
	}
	return out, nil
}

// scenarioName builds a progress-event label like "soplex/vprobe/seed0".
func scenarioName(label, kind string, repeat int) string {
	if label == "" {
		return fmt.Sprintf("%s/seed%d", kind, repeat)
	}
	return fmt.Sprintf("%s/%s/seed%d", label, kind, repeat)
}

// baselineKind picks the normalization baseline: Credit when present.
func baselineKind(opts Options) sched.Kind {
	for _, k := range opts.Schedulers {
		if k == sched.KindCredit {
			return k
		}
	}
	return opts.Schedulers[0]
}

// execMetric computes the workload's execution-time scalar: per-instance
// average for single-app workloads, per-app-normalized average for mixes
// (the paper's Fig. 4 mix rule), latest-thread for multi-threaded apps.
func execMetric(runs []metrics.AppRun, mixBase map[string]float64, threaded bool) float64 {
	if mixBase != nil {
		// Average of per-app normalized execution times.
		byApp := map[string][]float64{}
		for _, r := range runs {
			byApp[r.App] = append(byApp[r.App], r.ExecTime.Seconds())
		}
		// Iterate apps in sorted order: float addition is not associative,
		// so summing in map order would make the mix metric run-dependent.
		var sum float64
		var n int
		for _, app := range metrics.SortedKeys(byApp) {
			base := mixBase[app]
			if base <= 0 {
				continue
			}
			sum += sim.Mean(byApp[app]) / base
			n++
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}
	if threaded {
		return metrics.MaxExecSeconds(runs)
	}
	return metrics.AvgExecSeconds(runs)
}

// mixBaseline extracts the per-app mean execution times of the baseline
// run, for the mix normalization rule.
func mixBaseline(runs []metrics.AppRun) map[string]float64 {
	byApp := map[string][]float64{}
	for _, r := range runs {
		byApp[r.App] = append(byApp[r.App], r.ExecTime.Seconds())
	}
	out := make(map[string]float64, len(byApp))
	for app, times := range byApp {
		out[app] = sim.Mean(times)
	}
	return out
}

// addNormalizedFigure builds the paper's three normalized panels (execution
// time, total accesses, remote accesses) for a set of labelled workloads.
func addNormalizedFigure(r *Result, title string, labels []string,
	outs map[string]map[sched.Kind]batchOut, opts Options, threaded bool) {

	base := baselineKind(opts)
	panels := []struct {
		name   string
		series string
	}{
		{title + "(a) Normalized Execution Time", "exec"},
		{title + "(b) Normalized Total Memory Accesses", "total"},
		{title + "(c) Normalized Remote Memory Accesses", "remote"},
	}
	for _, panel := range panels {
		cols := append([]string{"workload"}, schedColumns(opts)...)
		t := metrics.NewTable(panel.name, cols...)
		for _, label := range labels {
			byKind := outs[label]
			baseOut := byKind[base]
			isMix := label == "mix"

			cells := []string{label}
			for _, k := range opts.Schedulers {
				o := byKind[k]
				var ratios []float64
				for sidx := range o.seeds {
					runs := o.seeds[sidx].runs
					baseRuns := baseOut.seeds[sidx].runs
					var v, baseVal float64
					switch panel.series {
					case "exec":
						if isMix {
							v = execMetric(runs, mixBaseline(baseRuns), threaded)
							baseVal = 1
						} else {
							v = execMetric(runs, nil, threaded)
							baseVal = execMetric(baseRuns, nil, threaded)
						}
					case "total":
						v = metrics.SumTotal(runs)
						baseVal = metrics.SumTotal(baseRuns)
					case "remote":
						v = metrics.SumRemote(runs)
						baseVal = metrics.SumRemote(baseRuns)
					}
					if baseVal > 0 {
						ratios = append(ratios, v/baseVal)
					}
				}
				norm := sim.Mean(ratios)
				r.Set(panel.series+"/"+schedLabel(k), label, norm)
				cells = append(cells, metrics.F(norm))
			}
			t.AddRow(cells...)
		}
		t.AddNote("normalized to %s = 1.0, averaged over %d seeds", base, opts.Repeats)
		r.Tables = append(r.Tables, t)
	}
}

func schedColumns(opts Options) []string {
	cols := make([]string, 0, len(opts.Schedulers))
	for _, k := range opts.Schedulers {
		cols = append(cols, schedLabel(k))
	}
	return cols
}

func runFig4(ctx context.Context, opts Options) (*Result, error) {
	opts = opts.normalized()
	r := &Result{ID: "fig4", Title: "SPEC CPU2006 under five schedulers (paper Fig. 4)"}
	outs := map[string]map[sched.Kind]batchOut{}
	var labels []string
	for _, w := range specWorkloads() {
		m, err := runSchedulers(ctx, w.Name, w.Apps1, w.Apps2, opts)
		if err != nil {
			return nil, err
		}
		outs[w.Name] = m
		labels = append(labels, w.Name)
	}
	addNormalizedFigure(r, "Fig. 4", labels, outs, opts, false)
	return r, nil
}

func runFig5(ctx context.Context, opts Options) (*Result, error) {
	opts = opts.normalized()
	r := &Result{ID: "fig5", Title: "NPB (4 threads) under five schedulers (paper Fig. 5)"}
	outs := map[string]map[sched.Kind]batchOut{}
	var labels []string
	for _, w := range npbWorkloads() {
		m, err := runSchedulers(ctx, w.Name, replicate(w.App, 4), replicate(w.App, 4), opts)
		if err != nil {
			return nil, err
		}
		outs[w.Name] = m
		labels = append(labels, w.Name)
	}
	addNormalizedFigure(r, "Fig. 5", labels, outs, opts, true)
	return r, nil
}

// runFig1 reproduces §II-B: the remote memory access ratio of
// memory-intensive applications under the unmodified Credit scheduler.
// The reported number is the page-level metric (fraction of pages touched
// from a remote node at least once per analysis window); the access-level
// ratio is included as a note column. See DESIGN.md for why the paper's
// >80% figures imply the page-level reading.
func runFig1(ctx context.Context, opts Options) (*Result, error) {
	opts = opts.normalized()
	r := &Result{ID: "fig1", Title: "Remote memory access ratio under Credit (paper Fig. 1)"}
	t := metrics.NewTable("Fig. 1", "workload", "page-remote", "access-remote")
	type w struct {
		name         string
		apps1, apps2 []*workload.Profile
	}
	ws := []w{
		{"bt", replicate(workload.BT(), 4), replicate(workload.BT(), 4)},
		{"lu", replicate(workload.LU(), 4), replicate(workload.LU(), 4)},
		{"sp", replicate(workload.SP(), 4), replicate(workload.SP(), 4)},
		{"soplex", replicate(workload.Soplex(), 4), replicate(workload.Soplex(), 4)},
		{"mcf", replicate(workload.MCF(), 6), replicate(workload.MCF(), 2)},
		{"milc", replicate(workload.Milc(), 4), replicate(workload.Milc(), 4)},
		{"libquantum", replicate(workload.Libquantum(), 4), replicate(workload.Libquantum(), 4)},
	}
	type ratios struct{ page, access float64 }
	rows, err := harness.Map(ctx, harness.Workers(opts.Workers, len(ws)), len(ws),
		func(ctx context.Context, i int) (ratios, error) {
			sc, err := newScenario(sched.KindCredit, ws[i].apps1, ws[i].apps2, opts)
			if err != nil {
				return ratios{}, err
			}
			runs, end, err := sc.runMeasured(ctx, opts)
			if err != nil {
				return ratios{}, fmt.Errorf("%s: %w", ws[i].name, err)
			}
			opts.emitScenario(ws[i].name+"/credit", end)
			return ratios{
				page:   metrics.AvgPageRemoteRatio(runs),
				access: metrics.AvgRemoteRatio(runs),
			}, nil
		})
	if err != nil {
		return nil, err
	}
	for i, w := range ws {
		r.Set("page-remote/credit", w.name, rows[i].page)
		r.Set("access-remote/credit", w.name, rows[i].access)
		t.AddRow(w.name, metrics.Pct(rows[i].page), metrics.Pct(rows[i].access))
	}
	t.AddNote("paper: all > 80%% except soplex (77.41%%)")
	r.Tables = append(r.Tables, t)
	return r, nil
}

func init() {
	register(&Experiment{
		ID:    "fig1",
		Title: "Remote memory access ratio under Credit",
		Paper: "Fig. 1: >80% remote ratio for memory-intensive apps (soplex 77.41%)",
		run:   runFig1,
	})
	register(&Experiment{
		ID:    "fig4",
		Title: "SPEC CPU2006 comparison",
		Paper: "Fig. 4: vProbe best everywhere; soplex +32.5% vs Credit; BRM <= Credit",
		run:   runFig4,
	})
	register(&Experiment{
		ID:    "fig5",
		Title: "NPB comparison",
		Paper: "Fig. 5: vProbe best; sp +45.2% vs Credit; LB total accesses rise on bt/lu/sp",
		run:   runFig5,
	})
}
