// Package telemetryhandle machine-checks the pre-bound telemetry handle
// pattern (DESIGN.md §7, §13): hot-path code never does a map lookup or a
// registry call per event — it dereferences handles (*telemetry.Counter,
// *telemetry.Gauge, *telemetry.Histogram) pre-bound into a handle-set
// struct at attach time, and because telemetry is optional the handle set
// pointer may be nil. Every hot-path dereference of a handle field
// through a possibly-nil handle-set pointer must therefore sit under a
// syntactic nil guard of that same pointer:
//
//	if v.Tele != nil {
//	        v.Tele.Dispatches.Inc()
//	}
//
// or behind an early return (`if v.Tele == nil { return }`). The check
// runs only over functions reachable from //vprobe:hotpath roots — cold
// paths (attach, export, tests) construct their handle sets locally and
// are free to assume them non-nil. Waive a site where the surrounding
// code guarantees binding with `//vet:handle <reason>`.
package telemetryhandle

import (
	"go/ast"
	"go/token"
	"go/types"

	"vprobe/internal/analysis/framework"
	"vprobe/internal/analysis/hotpath"
)

// Analyzer is the nil-guarded pre-bound handle check.
var Analyzer = &framework.ModuleAnalyzer{
	Name: "telemetryhandle",
	Doc: "require hot-path telemetry handle dereferences to sit under a nil " +
		"guard of the handle-set pointer (suppress with //vet:handle <reason>)",
	Run:        run,
	Directives: []string{"handle"},
}

func run(pass *framework.ModulePass) (any, error) {
	handleTypes := findHandleTypes(pass)
	if len(handleTypes) == 0 {
		return nil, nil
	}
	handleSets := findHandleSets(pass, handleTypes)
	if len(handleSets) == 0 {
		return nil, nil
	}

	reachable := hotReachable(pass)

	for _, pkg := range pass.Pkgs {
		if pkg.Types.Name() == "telemetry" {
			continue // the handle implementation itself
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok || !reachable[fn] {
					continue
				}
				if recvIsHandleSet(fn, handleSets) {
					continue // attach/bind methods on the handle set itself
				}
				checkBody(pass, pkg, fd, handleSets)
			}
		}
	}
	return nil, nil
}

// findHandleTypes collects the named handle value types: Counter, Gauge,
// Histogram, and the span Tracer declared in any loaded package named
// "telemetry". The Tracer counts as a handle: hot-reachable code must
// reach it through a pre-bound, nil-guarded handle set (xen.Spans,
// cluster's span recorder), never via a map or registry lookup.
func findHandleTypes(pass *framework.ModulePass) map[*types.TypeName]bool {
	out := map[*types.TypeName]bool{}
	for _, pkg := range pass.Pkgs {
		if pkg.Types.Name() != "telemetry" {
			continue
		}
		for _, name := range []string{"Counter", "Gauge", "Histogram", "Tracer"} {
			if tn, ok := pkg.Types.Scope().Lookup(name).(*types.TypeName); ok {
				out[tn] = true
			}
		}
	}
	return out
}

// findHandleSets collects every named struct type with at least one field
// that is a pointer to a handle type — the pre-bound handle sets.
func findHandleSets(pass *framework.ModulePass, handleTypes map[*types.TypeName]bool) map[*types.Named]bool {
	out := map[*types.Named]bool{}
	for _, pkg := range pass.Pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			st, ok := named.Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				if isHandlePtr(st.Field(i).Type(), handleTypes) {
					out[named] = true
					break
				}
			}
		}
	}
	return out
}

func isHandlePtr(t types.Type, handleTypes map[*types.TypeName]bool) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	return ok && handleTypes[named.Obj()]
}

// handleSetPtr reports whether t is a pointer to a handle-set struct.
func handleSetPtr(t types.Type, sets map[*types.Named]bool) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	return ok && sets[named]
}

func recvIsHandleSet(fn *types.Func, sets map[*types.Named]bool) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && sets[named]
}

// hotReachable runs the same reachability walk as the hotpath analyzer:
// //vprobe:hotpath roots plus everything the call graph reaches from them.
func hotReachable(pass *framework.ModulePass) map[*types.Func]bool {
	g := framework.BuildCallGraph(pass.Pkgs)
	reachable := map[*types.Func]bool{}
	var queue []*types.Func
	for _, pkg := range pass.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || !framework.FuncAnnotated(fd, hotpath.Marker) {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok && !reachable[fn] {
					reachable[fn] = true
					queue = append(queue, fn)
				}
			}
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		node := g.Nodes[fn]
		if node == nil {
			continue
		}
		for _, callee := range node.Callees {
			if !reachable[callee] {
				reachable[callee] = true
				queue = append(queue, callee)
			}
		}
	}
	return reachable
}

// guard is one syntactic nil check of a base expression: uses of the same
// base within span are considered guarded.
type guard struct {
	base string
	lo   token.Pos
	hi   token.Pos
}

// checkBody flags handle-field selections through a possibly-nil
// handle-set pointer that no guard covers.
func checkBody(pass *framework.ModulePass, pkg *framework.Package, fd *ast.FuncDecl,
	sets map[*types.Named]bool) {
	var guards []guard
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		for _, base := range nilCheckedBases(pkg, ifs.Cond, token.NEQ) {
			guards = append(guards, guard{base: base, lo: ifs.Body.Pos(), hi: ifs.Body.End()})
		}
		if terminates(ifs.Body) {
			for _, base := range nilCheckedBases(pkg, ifs.Cond, token.EQL) {
				guards = append(guards, guard{base: base, lo: ifs.End(), hi: fd.Body.End()})
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		baseType := pkg.Info.TypeOf(sel.X)
		if baseType == nil || !handleSetPtr(baseType, sets) {
			return true
		}
		base := types.ExprString(sel.X)
		for _, g := range guards {
			if g.base == base && sel.Pos() >= g.lo && sel.Pos() < g.hi {
				return true
			}
		}
		if d, ok := pass.Suppression(sel.Pos(), "handle"); ok {
			if d.Reason == "" {
				pass.Reportf(sel.Pos(), "//vet:handle requires a written reason")
			}
			return true
		}
		pass.Reportf(sel.Pos(), "telemetry handle field %s read through possibly-nil %s "+
			"on the hot path; guard with `if %s != nil` (pre-bound handle pattern)",
			sel.Sel.Name, base, base)
		return true
	})
}

// nilCheckedBases extracts from a condition the expressions compared
// against nil with the given operator, descending through && conjuncts.
func nilCheckedBases(pkg *framework.Package, cond ast.Expr, op token.Token) []string {
	var out []string
	var walk func(e ast.Expr)
	walk = func(e ast.Expr) {
		be, ok := ast.Unparen(e).(*ast.BinaryExpr)
		if !ok {
			return
		}
		if be.Op == token.LAND {
			walk(be.X)
			walk(be.Y)
			return
		}
		if be.Op != op {
			return
		}
		if isNil(pkg, be.Y) {
			out = append(out, types.ExprString(be.X))
		} else if isNil(pkg, be.X) {
			out = append(out, types.ExprString(be.Y))
		}
	}
	walk(cond)
	return out
}

func isNil(pkg *framework.Package, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNilObj := pkg.Info.Uses[id].(*types.Nil)
	return isNilObj || id.Name == "nil"
}

// terminates reports whether a block's last statement unconditionally
// leaves the enclosing flow (return, panic, continue, break, goto).
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		call, ok := last.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		return ok && id.Name == "panic"
	}
	return false
}
