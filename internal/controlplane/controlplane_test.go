package controlplane

import (
	"testing"

	"vprobe/internal/sim"
)

// capFits is the test FitFunc: total free memory covers the request and
// the VCPU cap holds — the CapacityFilter shape.
func capFits(req Request, h *HostCap) bool {
	return req.MemoryMB <= h.FreeMB() && h.GuestVCPUs+req.VCPUs <= h.VCPUCap
}

func TestPriorityRoundTrip(t *testing.T) {
	for _, p := range Priorities() {
		got, err := ParsePriority(p.String())
		if err != nil || got != p {
			t.Fatalf("ParsePriority(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePriority("urgent"); err == nil {
		t.Fatal("unknown priority accepted")
	}
	if !(BestEffort < Standard && Standard < Critical) {
		t.Fatal("priority order broken")
	}
	if !(BestEffort.Weight() < Standard.Weight() && Standard.Weight() < Critical.Weight()) {
		t.Fatal("weights not increasing with class")
	}
}

func TestTakeHelpers(t *testing.T) {
	free := []int64{100, 100, 100}
	takes, short := TakeFill(free, 150)
	if short != 0 {
		t.Fatalf("fill short %d", short)
	}
	if takes[0] != 100 || takes[1] != 50 || takes[2] != 0 {
		t.Fatalf("fill takes %v", takes)
	}
	if free[0] != 0 || free[1] != 50 {
		t.Fatalf("fill free %v", free)
	}

	free = []int64{100, 100, 100}
	takes, short = TakeLocal(free, 120, 2)
	if short != 0 || takes[2] != 100 || takes[0] != 20 {
		t.Fatalf("local takes %v short %d", takes, short)
	}

	free = []int64{100, 100, 100}
	takes, short = TakeStripe(free, 90)
	if short != 0 || takes[0] != 30 || takes[1] != 30 || takes[2] != 30 {
		t.Fatalf("stripe takes %v short %d", takes, short)
	}

	free = []int64{10, 10}
	_, short = TakeFill(free, 50)
	if short != 30 {
		t.Fatalf("overfull fill short %d, want 30", short)
	}
}

func TestPlanPreemptionMinimalAndCheapest(t *testing.T) {
	req := Request{ID: 99, MemoryMB: 4000, VCPUs: 4, Priority: Critical}
	// Host 0: one big cheap victim suffices. Host 1: needs two pricier
	// victims. The plan must pick host 0's single victim.
	hosts := []*HostCap{
		{
			Index: 0, FreePerNodeMB: []int64{500, 500}, GuestVCPUs: 10, VCPUCap: 24,
			Victims: []Victim{
				{ID: 1, MemoryMB: 4000, VCPUs: 4, Priority: BestEffort,
					FreesPerNodeMB: []int64{2000, 2000}, CostCycles: 100},
				{ID: 2, MemoryMB: 2000, VCPUs: 2, Priority: BestEffort,
					FreesPerNodeMB: []int64{1000, 1000}, CostCycles: 50},
			},
		},
		{
			Index: 1, FreePerNodeMB: []int64{0, 0}, GuestVCPUs: 12, VCPUCap: 24,
			Victims: []Victim{
				{ID: 3, MemoryMB: 2000, VCPUs: 2, Priority: Standard,
					FreesPerNodeMB: []int64{1000, 1000}, CostCycles: 200},
				{ID: 4, MemoryMB: 2000, VCPUs: 2, Priority: Standard,
					FreesPerNodeMB: []int64{1000, 1000}, CostCycles: 200},
			},
		},
	}
	plan := PlanPreemption(req, hosts, capFits)
	if plan == nil {
		t.Fatal("no plan found")
	}
	if plan.HostIndex != 0 {
		t.Fatalf("picked host %d, want 0", plan.HostIndex)
	}
	// Greedy adds victim 2 (cheaper) then victim 1; the prune pass must
	// drop victim 2 because victim 1 alone frees enough.
	if len(plan.VictimIDs) != 1 || plan.VictimIDs[0] != 1 {
		t.Fatalf("victims %v, want [1] (minimal set)", plan.VictimIDs)
	}
	if plan.CostCycles != 100 {
		t.Fatalf("cost %v, want 100", plan.CostCycles)
	}
}

func TestPlanPreemptionRespectsPriority(t *testing.T) {
	// Victims at or above the arrival's class are untouchable.
	req := Request{ID: 9, MemoryMB: 2000, VCPUs: 2, Priority: Standard}
	hosts := []*HostCap{{
		Index: 0, FreePerNodeMB: []int64{0, 0}, GuestVCPUs: 8, VCPUCap: 24,
		Victims: []Victim{
			{ID: 1, MemoryMB: 4000, VCPUs: 4, Priority: Standard,
				FreesPerNodeMB: []int64{2000, 2000}, CostCycles: 10},
			{ID: 2, MemoryMB: 4000, VCPUs: 4, Priority: Critical,
				FreesPerNodeMB: []int64{2000, 2000}, CostCycles: 10},
		},
	}}
	if plan := PlanPreemption(req, hosts, capFits); plan != nil {
		t.Fatalf("preempted equal/higher priority: %+v", plan)
	}
}

func TestShadowReservation(t *testing.T) {
	req := Request{ID: 7, MemoryMB: 3000, VCPUs: 2, Priority: Standard}
	hosts := []*HostCap{
		{Index: 0, FreePerNodeMB: []int64{1000, 0}, GuestVCPUs: 10, VCPUCap: 24},
		{Index: 1, FreePerNodeMB: []int64{500, 500}, GuestVCPUs: 10, VCPUCap: 24},
	}
	deps := []Departure{
		{At: 30 * sim.Time(sim.Second), HostIndex: 1, ID: 4,
			FreesPerNodeMB: []int64{1000, 1000}, VCPUs: 2},
		{At: 10 * sim.Time(sim.Second), HostIndex: 0, ID: 3,
			FreesPerNodeMB: []int64{2000, 0}, VCPUs: 2},
	}
	res := ShadowReservation(req, hosts, deps, capFits, nil)
	if !res.Found || res.HostIndex != 0 || res.At != 10*sim.Time(sim.Second) {
		t.Fatalf("reservation %+v, want host 0 at 10s", res)
	}

	// A candidate on the reserved host that eats the headroom delays the
	// head; on the other host it cannot.
	onReserved := Placement{HostIndex: 0, TakesPerNode: []int64{1000, 0}, VCPUs: 2}
	if CanBackfill(req, res, hosts, deps, capFits, onReserved) {
		t.Fatal("backfill allowed to consume the reserved capacity")
	}
	elsewhere := Placement{HostIndex: 1, TakesPerNode: []int64{500, 0}, VCPUs: 2}
	if !CanBackfill(req, res, hosts, deps, capFits, elsewhere) {
		t.Fatal("backfill on a non-reserved host blocked")
	}

	// No reservation at all: nothing to delay.
	huge := Request{ID: 8, MemoryMB: 1 << 40, VCPUs: 2, Priority: Standard}
	noRes := ShadowReservation(huge, hosts, deps, capFits, nil)
	if noRes.Found {
		t.Fatal("impossible request found a reservation")
	}
	if !CanBackfill(huge, noRes, hosts, deps, capFits, onReserved) {
		t.Fatal("backfill blocked behind an unplaceable head")
	}
}

func TestPlanDrain(t *testing.T) {
	hosts := []*HostCap{
		{Index: 0, FreePerNodeMB: []int64{8000, 8000}, GuestVCPUs: 4, VCPUCap: 24, LiveVMs: 2,
			Victims: []Victim{
				{ID: 10, MemoryMB: 2000, VCPUs: 2, Priority: Standard},
				{ID: 11, MemoryMB: 2000, VCPUs: 2, Priority: BestEffort},
			}},
		{Index: 1, FreePerNodeMB: []int64{6000, 6000}, GuestVCPUs: 8, VCPUCap: 24, LiveVMs: 3,
			Victims: []Victim{ // one resident pinned: not fully movable
				{ID: 20, MemoryMB: 2000, VCPUs: 2, Priority: Standard},
				{ID: 21, MemoryMB: 2000, VCPUs: 2, Priority: Standard},
			}},
		{Index: 2, FreePerNodeMB: []int64{12000, 12000}, GuestVCPUs: 2, VCPUCap: 24, LiveVMs: 1,
			Victims: []Victim{
				{ID: 30, MemoryMB: 4000, VCPUs: 2, Priority: Standard},
			}},
	}
	plan := PlanDrain(hosts, capFits)
	if plan == nil {
		t.Fatal("no drain plan")
	}
	// Host 2 is the emptiest fully-movable host.
	if plan.HostIndex != 2 {
		t.Fatalf("drained host %d, want 2", plan.HostIndex)
	}
	if len(plan.Moves) != 1 || plan.Moves[0].VictimID != 30 {
		t.Fatalf("moves %+v", plan.Moves)
	}
	if plan.Moves[0].TargetHost == 2 {
		t.Fatal("victim re-placed on the drained host")
	}

	// With every host pinned, no plan exists.
	for _, h := range hosts {
		h.Victims = nil
	}
	if plan := PlanDrain(hosts, capFits); plan != nil {
		t.Fatalf("drained a pinned cluster: %+v", plan)
	}
}
