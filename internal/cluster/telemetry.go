package cluster

import (
	"vprobe/internal/controlplane"
	"vprobe/internal/numa"
	"vprobe/internal/telemetry"
	"vprobe/internal/xen"
)

// clusterTelemetry is the cluster's pre-bound handle set: admission and
// migration gauges plus per-host load gauges. Host-internal series
// (dispatches, steals, quantum histogram, ...) are registered separately
// per host by xen.AttachTelemetry with a host label.
type clusterTelemetry struct {
	c *Cluster

	// Lifecycle totals mirroring Cluster.stats. They are monotone but
	// exported as gauges because the sampler copies the model's own
	// counters instead of double-counting events.
	arrivals   *telemetry.Gauge
	placed     *telemetry.Gauge
	retries    *telemetry.Gauge
	rejected   *telemetry.Gauge
	departed   *telemetry.Gauge
	migrations *telemetry.Gauge

	// pending is the admission queue depth (arrived VMs awaiting
	// placement, including those between retries); inFlight counts VMs in
	// a migration blackout.
	pending  *telemetry.Gauge
	inFlight *telemetry.Gauge

	// Control-plane activity, mirroring the preemption, gang, backfill,
	// and descheduler counters.
	preemptions  *telemetry.Gauge
	preemptKills *telemetry.Gauge
	gangs        *telemetry.Gauge
	backfills    *telemetry.Gauge
	deschedMoves *telemetry.Gauge

	// waitHist records arrival-to-first-placement latency per priority
	// class, observed at admission time (not sampled), indexed by
	// controlplane.Priority.
	waitHist [3]*telemetry.Histogram

	// Per-host load, indexed like Cluster.hosts.
	hostVMs      []*telemetry.Gauge
	hostVCPUs    []*telemetry.Gauge
	hostPressure []*telemetry.Gauge
	hostRemote   []*telemetry.Gauge
	hostFreeMB   []*telemetry.Gauge
}

// attachTelemetry registers the cluster's series in the sampler's registry
// and hooks the refresh. The cluster hook is registered FIRST: it advances
// every host engine to the sample time (exactly the sync any cluster event
// performs, so results stay byte-identical), and the per-host xen hooks
// registered below then read fresh state.
func (c *Cluster) attachTelemetry(s *telemetry.Sampler) {
	reg := s.Registry()
	t := &clusterTelemetry{
		c: c,
		arrivals: reg.Gauge("cluster_vm_arrivals",
			"VM requests that have entered the cluster."),
		placed: reg.Gauge("cluster_vm_placed",
			"Successful placements, including re-placements after migration."),
		retries: reg.Gauge("cluster_vm_retries",
			"Placement attempts re-queued with backoff."),
		rejected: reg.Gauge("cluster_vm_rejected",
			"VMs rejected after exhausting placement retries."),
		departed: reg.Gauge("cluster_vm_departed",
			"VMs whose lifetime ended and were torn down."),
		migrations: reg.Gauge("cluster_vm_migrations",
			"Inter-host live migrations started by the rebalancer."),
		pending: reg.Gauge("cluster_admission_queue_depth",
			"Arrived VMs awaiting placement (including retry backoff)."),
		inFlight: reg.Gauge("cluster_migrations_in_flight",
			"VMs currently in a migration copy blackout."),
		preemptions: reg.Gauge("cluster_vm_preemptions",
			"Lower-priority VMs evicted to admit higher-priority arrivals."),
		preemptKills: reg.Gauge("cluster_vm_preempt_kills",
			"Preemption victims killed and requeued (no host fit them)."),
		gangs: reg.Gauge("cluster_gangs_admitted",
			"VM groups placed all-or-nothing."),
		backfills: reg.Gauge("cluster_vm_backfills",
			"VMs that jumped the blocked admission queue into a hole."),
		deschedMoves: reg.Gauge("cluster_deschedule_moves",
			"Defragmentation migrations made by the descheduler."),
	}
	waitBounds := []float64{0.5, 1, 2, 5, 10, 20, 40, 80, 160}
	for _, p := range controlplane.Priorities() {
		t.waitHist[p] = reg.Histogram("cluster_admission_wait_seconds",
			"Arrival-to-first-placement latency by priority class.",
			waitBounds, telemetry.Label{Key: "priority", Value: p.String()})
	}
	c.tel = t
	s.OnSample(t.sample)
	for _, ho := range c.hosts {
		label := telemetry.Label{Key: "host", Value: ho.Name}
		t.hostVMs = append(t.hostVMs, reg.Gauge("cluster_host_vms",
			"Live VMs on the host.", label))
		t.hostVCPUs = append(t.hostVCPUs, reg.Gauge("cluster_host_guest_vcpus",
			"Guest VCPUs of live domains on the host (overcommit figure).", label))
		t.hostPressure = append(t.hostPressure, reg.Gauge("cluster_host_llc_pressure",
			"Per-socket average LLC pressure of the host's active VCPUs.", label))
		t.hostRemote = append(t.hostRemote, reg.Gauge("cluster_host_remote_ratio",
			"Lifetime remote-access ratio of the host.", label))
		t.hostFreeMB = append(t.hostFreeMB, reg.Gauge("cluster_host_free_mb",
			"Free guest memory on the host in MB.", label))
		xen.AttachTelemetry(ho.H, s, label)
	}
}

// sample refreshes the cluster gauges. Reads only — except for the host
// sync, which advances host engines to the sample time exactly as the next
// cluster event would, so the simulation outcome is unchanged.
func (t *clusterTelemetry) sample() {
	c := t.c
	if !c.sync() {
		return
	}
	t.arrivals.Set(float64(c.stats.Arrivals))
	t.placed.Set(float64(c.stats.Placed))
	t.retries.Set(float64(c.stats.Retries))
	t.rejected.Set(float64(c.stats.Rejected))
	t.departed.Set(float64(c.stats.Departed))
	t.migrations.Set(float64(c.stats.Migrations))
	t.preemptions.Set(float64(c.stats.Preemptions))
	t.preemptKills.Set(float64(c.stats.PreemptKills))
	t.gangs.Set(float64(c.stats.GangsAdmitted))
	t.backfills.Set(float64(c.stats.Backfills))
	t.deschedMoves.Set(float64(c.stats.DeschedMoves))

	pending, inFlight := 0, 0
	for _, vm := range c.vms {
		switch vm.state {
		case statePending:
			pending++
		case stateMigrating:
			inFlight++
		}
	}
	t.pending.Set(float64(pending))
	t.inFlight.Set(float64(inFlight))

	for i, ho := range c.hosts {
		t.hostVMs[i].Set(float64(len(ho.VMs)))
		t.hostVCPUs[i].Set(float64(ho.guestVCPUs()))
		t.hostPressure[i].Set(ho.llcPressure())
		// The lifetime ratio, not intervalRemoteRatio: the latter advances
		// the rebalancer's snapshot and would perturb its decisions.
		t.hostRemote[i].Set(ho.remoteRatio())
		var free float64
		for n := 0; n < ho.Top.NumNodes(); n++ {
			free += float64(ho.H.Alloc.FreeMB(numa.NodeID(n)))
		}
		t.hostFreeMB[i].Set(free)
	}
}
